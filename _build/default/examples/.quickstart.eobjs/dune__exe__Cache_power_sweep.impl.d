examples/cache_power_sweep.ml: Array List Pf_arm Pf_armgen Pf_cache Pf_cpu Pf_fits Pf_mibench Pf_power Pf_util Printf Sys
