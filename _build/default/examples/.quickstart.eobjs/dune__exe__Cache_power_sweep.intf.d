examples/cache_power_sweep.mli:
