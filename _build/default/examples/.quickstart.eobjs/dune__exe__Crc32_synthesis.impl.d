examples/crc32_synthesis.ml: Array List Pf_armgen Pf_fits Pf_mibench Pf_thumb Printf String
