examples/crc32_synthesis.mli:
