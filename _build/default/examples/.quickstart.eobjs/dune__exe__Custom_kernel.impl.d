examples/custom_kernel.ml: Pf_harness Pf_kir Pf_mibench Pf_power Pf_util Printf
