examples/quickstart.ml: List Pf_arm Pf_armgen Pf_cpu Pf_fits Pf_kir Pf_power Pf_util Printf String
