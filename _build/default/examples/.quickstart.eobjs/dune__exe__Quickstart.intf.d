examples/quickstart.mli:
