(* Cache design-space sweep: run one benchmark across I-cache sizes
   (4/8/16/32 KB) in both ISAs and tabulate miss rate, per-component cache
   power, and run time — the §6.3 trade-off ("simply reducing the size of
   the ARM cache is not going to help us much") made explorable.

     dune exec examples/cache_power_sweep.exe [benchmark]   (default jpeg) *)

let sizes_kb = [ 4; 8; 16; 32 ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jpeg" in
  let bench = Pf_mibench.Registry.find name in
  let program = bench.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:bench.Pf_mibench.Registry.unroll program
  in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  Printf.printf "benchmark: %s (ARM code %d B, FITS code %d B)\n\n" name
    (Pf_arm.Image.code_size_bytes image)
    tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits;
  let rows = ref [] in
  List.iter
    (fun kb ->
      let cache_cfg =
        Pf_cache.Icache.config ~size_bytes:(kb * 1024) ()
      in
      let arm = Pf_cpu.Arm_run.run ~cache_cfg image in
      let fits = Pf_fits.Run.run ~cache_cfg tr in
      let row isa miss_rate cycles (p : Pf_power.Account.report) =
        [
          Printf.sprintf "%dK" kb;
          isa;
          Printf.sprintf "%.1f" miss_rate;
          string_of_int cycles;
          Pf_util.Table.si p.Pf_power.Account.switching;
          Pf_util.Table.si p.Pf_power.Account.internal;
          Pf_util.Table.si p.Pf_power.Account.leakage;
          Pf_util.Table.si
            (p.Pf_power.Account.total /. float_of_int p.Pf_power.Account.cycles);
        ]
      in
      rows :=
        row "FITS" fits.Pf_fits.Run.miss_rate_per_million
          fits.Pf_fits.Run.cycles fits.Pf_fits.Run.power
        :: row "ARM" arm.Pf_cpu.Arm_run.miss_rate_per_million
             arm.Pf_cpu.Arm_run.cycles arm.Pf_cpu.Arm_run.power
        :: !rows)
    sizes_kb;
  print_string
    (Pf_util.Table.render
       ~header:
         [ "size"; "isa"; "miss/M"; "cycles"; "E_switch"; "E_int"; "E_leak";
           "avg power" ]
       (List.rev !rows))
