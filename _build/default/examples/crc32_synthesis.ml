(* The paper's own running example: CRC32 (Figure 2 shows the instruction
   formats FITS synthesizes for it).  This example prints the complete
   synthesized ISA — opcode groups, sub-operations, immediate policies —
   the head of the immediate dictionary, and a side-by-side disassembly of
   the first instructions of both binaries.

     dune exec examples/crc32_synthesis.exe *)

let () =
  let bench = Pf_mibench.Registry.find "crc32" in
  let program = bench.Pf_mibench.Registry.program ~scale:1 in
  let image = Pf_armgen.Compile.program program in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let spec = tr.Pf_fits.Translate.spec in

  print_endline "=== synthesized instruction set for CRC32 ===";
  print_string (Pf_fits.Spec.describe spec);

  print_endline "\n=== immediate dictionary (head) ===";
  Array.iteri
    (fun idx v -> if idx < 16 then Printf.printf "  [%2d] 0x%08x\n" idx v)
    spec.Pf_fits.Spec.dict;

  print_endline "\n=== first 24 FITS instructions ===";
  let lines = String.split_on_char '\n' (Pf_fits.Translate.disassemble tr) in
  List.iteri (fun k l -> if k < 24 then print_endline l) lines;

  print_endline "\n=== mapping summary ===";
  let st = tr.Pf_fits.Translate.stats in
  Printf.printf "ARM instructions: %d, FITS instructions: %d\n"
    st.Pf_fits.Translate.arm_insns st.Pf_fits.Translate.fits_insns;
  Printf.printf "one-to-one: %.1f%% static\n"
    (Pf_fits.Translate.static_mapping_rate tr);
  Printf.printf "code: %d B (ARM) -> %d B (FITS)\n"
    st.Pf_fits.Translate.code_bytes_arm
    st.Pf_fits.Translate.code_bytes_fits;
  (* compare against the fixed-encoding Thumb baseline of Figure 5 *)
  let thumb = Pf_thumb.Translate.estimate image in
  Printf.printf "Thumb estimate: %d B (%.1f%% saving vs FITS' %.1f%%)\n"
    thumb.Pf_thumb.Translate.thumb_bytes
    (Pf_thumb.Translate.size_saving thumb)
    (Pf_fits.Translate.code_size_saving tr)
