(* Quickstart: the whole PowerFITS pipeline on a small program.

   Write a kernel in the KIR DSL, compile it to the ARM-like ISA, profile
   it, synthesize an application-specific 16-bit FITS ISA, translate the
   binary, and simulate both on the SA-1100-like core — comparing code
   size, fetch traffic and I-cache power.

     dune exec examples/quickstart.exe *)

let dot_product =
  let open Pf_kir.Build in
  program
    [ garray "a" W32 256; garray "b" W32 256 ]
    [
      func "fill" []
        [
          let_ "seed" (i 1);
          for_ "k" (i 0) (i 256)
            [
              set "seed" (v "seed" *% i 75 +% i 74);
              setidx32 "a" (v "k") (band (v "seed") (i 0xFFF));
              setidx32 "b" (v "k") (band (shr (v "seed") (i 4)) (i 0xFFF));
            ];
        ];
      func "dot" [ "n" ]
        [
          let_ "acc" (i 0);
          for_ "k" (i 0) (v "n")
            [
              set "acc"
                (v "acc" +% idx32 "a" (v "k") *% idx32 "b" (v "k"));
            ];
          ret (v "acc");
        ];
      func "main" []
        [
          do_ "fill" [];
          (* run the kernel a few times so the dynamic profile is loopy *)
          let_ "sum" (i 0);
          for_ "rep" (i 0) (i 64)
            [ set "sum" (bxor (v "sum") (call "dot" [ i 256 ])) ];
          print_int (v "sum");
        ];
    ]

let () =
  (* 1. compile to the 32-bit ARM-like ISA *)
  let image = Pf_armgen.Compile.program dot_product in
  Printf.printf "ARM code size: %d bytes\n"
    (Pf_arm.Image.code_size_bytes image);

  (* 2. profile one run (static + dynamic requirements, paper Fig. 1) *)
  let profile, output = Pf_fits.Profile.profile_run image in
  Printf.printf "program output: %s" output;
  Printf.printf "dynamic instructions: %d\n\n" profile.Pf_fits.Profile.dyn_insns;

  (* 3. synthesize the application-specific 16-bit instruction set *)
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  Printf.printf "synthesized %d application-specific opcodes; %s\n"
    (List.length syn.Pf_fits.Synthesis.ais)
    (String.concat ", "
       (List.map (fun (o : Pf_fits.Spec.opdef) -> o.Pf_fits.Spec.name)
          syn.Pf_fits.Synthesis.ais));

  (* 4. translate the ARM binary to the synthesized ISA *)
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  Printf.printf "static 1-to-1 mapping: %.1f%%\n"
    (Pf_fits.Translate.static_mapping_rate tr);
  Printf.printf "FITS code size: %d bytes (%.1f%% smaller)\n\n"
    tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits
    (Pf_fits.Translate.code_size_saving tr);

  (* 5. simulate both on the same 16 KB I-cache core *)
  let arm = Pf_cpu.Arm_run.run image in
  let fits = Pf_fits.Run.run tr in
  let show name ~fetches ~(p : Pf_power.Account.report) ~cycles =
    Printf.printf "%-6s fetch accesses %-9d cycles %-9d cache energy %.3g\n"
      name fetches cycles p.Pf_power.Account.total
  in
  show "ARM16" ~fetches:arm.Pf_cpu.Arm_run.fetch_accesses
    ~p:arm.Pf_cpu.Arm_run.power ~cycles:arm.Pf_cpu.Arm_run.cycles;
  show "FITS16" ~fetches:fits.Pf_fits.Run.fetch_accesses
    ~p:fits.Pf_fits.Run.power ~cycles:fits.Pf_fits.Run.cycles;
  let saving =
    Pf_util.Stats.saving
      ~baseline:arm.Pf_cpu.Arm_run.power.Pf_power.Account.switching
      fits.Pf_fits.Run.power.Pf_power.Account.switching
  in
  Printf.printf "\nI-cache switching power saving: %.1f%%\n" saving;
  assert (fits.Pf_fits.Run.output = arm.Pf_cpu.Arm_run.output)
