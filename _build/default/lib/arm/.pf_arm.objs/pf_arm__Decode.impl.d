lib/arm/decode.ml: Bits Encode Insn Pf_util
