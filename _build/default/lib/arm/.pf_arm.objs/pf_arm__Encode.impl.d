lib/arm/encode.ml: Format Insn List Pf_util
