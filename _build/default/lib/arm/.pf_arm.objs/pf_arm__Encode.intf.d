lib/arm/encode.mli: Insn
