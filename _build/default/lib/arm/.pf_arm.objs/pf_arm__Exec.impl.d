lib/arm/exec.ml: Array Bits Bool Buffer Bytes Char Format Image Insn Int32 List Pf_util Printf
