lib/arm/exec.mli: Buffer Bytes Image Insn
