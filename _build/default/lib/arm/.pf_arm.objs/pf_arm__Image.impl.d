lib/arm/image.ml: Array Buffer Decode Insn List Printf
