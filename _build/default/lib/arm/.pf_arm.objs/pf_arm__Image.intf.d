lib/arm/image.mli: Insn
