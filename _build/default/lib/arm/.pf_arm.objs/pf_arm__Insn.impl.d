lib/arm/insn.ml: Format List Pf_util
