open Insn
open Pf_util

let dp_of_code = function
  | 0 -> AND | 1 -> EOR | 2 -> SUB | 3 -> RSB | 4 -> ADD | 5 -> ADC
  | 6 -> SBC | 7 -> RSC | 8 -> TST | 9 -> TEQ | 10 -> CMP | 11 -> CMN
  | 12 -> ORR | 13 -> MOV | 14 -> BIC | _ -> MVN

let shift_of_code = function 0 -> LSL | 1 -> LSR | 2 -> ASR | _ -> ROR

let decode_op2 w =
  if Bits.extract w ~lo:25 ~width:1 = 1 then
    Some (Imm { value = w land 0xFF; rot = Bits.extract w ~lo:8 ~width:4 })
  else if Bits.extract w ~lo:4 ~width:1 = 0 then
    let rm = w land 0xF in
    let k = shift_of_code (Bits.extract w ~lo:5 ~width:2) in
    let n = Bits.extract w ~lo:7 ~width:5 in
    if k = LSL && n = 0 then Some (Reg rm) else Some (Reg_shift (rm, k, n))
  else if Bits.extract w ~lo:7 ~width:1 = 0 then
    let rm = w land 0xF in
    let k = shift_of_code (Bits.extract w ~lo:5 ~width:2) in
    Some (Reg_shift_reg (rm, k, Bits.extract w ~lo:8 ~width:4))
  else None

let reglist_of_bits bits =
  let rec go r acc =
    if r < 0 then acc
    else go (r - 1) (if bits land (1 lsl r) <> 0 then r :: acc else acc)
  in
  go 15 []

let decode word =
  let word = Bits.u32 word in
  match Encode.cond_of_code (Bits.extract word ~lo:28 ~width:4) with
  | None -> None
  | Some cond -> (
      let bits lo width = Bits.extract word ~lo ~width in
      let bit n = bits n 1 = 1 in
      if word land 0x0FFF_FFF0 = 0x012F_FF10 then
        Some (Bx { cond; rm = word land 0xF })
      else
        match bits 25 3 with
        | 0b101 ->
            let offset = Bits.sign_extend ~width:24 (word land 0xFF_FFFF) * 4 in
            Some (B { cond; link = bit 24; offset })
        | 0b100 ->
            let rn = bits 16 4 in
            let regs = reglist_of_bits (word land 0xFFFF) in
            if rn <> sp || (not (bit 21)) || regs = [] then None
            else if bit 20 && (not (bit 24)) && bit 23 then
              Some (Pop { cond; regs })
            else if (not (bit 20)) && bit 24 && not (bit 23) then
              Some (Push { cond; regs })
            else None
        | 0b010 | 0b011 ->
            if not (bit 24) then None
            else
              let load = bit 20 and rn = bits 16 4 and rd = bits 12 4 in
              let width = if bit 22 then Byte else Word in
              let writeback = bit 21 in
              let neg = not (bit 23) in
              if bit 25 then
                if bit 4 then None
                else if neg then None
                else
                  let rm = word land 0xF in
                  let k = shift_of_code (bits 5 2) in
                  let sh = bits 7 5 in
                  Some
                    (Mem { cond; load; width; signed = false; rd; rn;
                           offset = Ofs_reg (rm, k, sh); writeback })
              else
                let m = word land 0xFFF in
                let ofs = if neg then -m else m in
                Some
                  (Mem { cond; load; width; signed = false; rd; rn;
                         offset = Ofs_imm ofs; writeback })
        | 0b000 when word land 0xF0 = 0x90 && bits 22 6 = 0 ->
            let acc = if bit 21 then Some (bits 12 4) else None in
            Some
              (Mul { cond; s = bit 20; rd = bits 16 4; rm = word land 0xF;
                     rs = bits 8 4; acc })
        | 0b000 when bit 7 && bit 4 && bits 5 2 <> 0 ->
            (* extra load/store: half and signed-byte transfers *)
            if not (bit 24) then None
            else
              let load = bit 20 and rn = bits 16 4 and rd = bits 12 4 in
              let signed = bit 6 and half = bit 5 in
              let width = if half then Half else Byte in
              if (not half) && not signed then None
              else if (not load) && signed then None
              else
                let writeback = bit 21 in
                let neg = not (bit 23) in
                if bit 22 then
                  let m = (bits 8 4 lsl 4) lor (word land 0xF) in
                  let ofs = if neg then -m else m in
                  Some
                    (Mem { cond; load; width; signed; rd; rn;
                           offset = Ofs_imm ofs; writeback })
                else if neg || bits 8 4 <> 0 then None
                else
                  Some
                    (Mem { cond; load; width; signed; rd; rn;
                           offset = Ofs_reg (word land 0xF, LSL, 0);
                           writeback })
        | 0b000 | 0b001 -> (
            let op = dp_of_code (bits 21 4) in
            let s = bit 20 in
            (match op with
            | TST | TEQ | CMP | CMN when not s -> None
            | _ -> (
                match decode_op2 word with
                | None -> None
                | Some op2 ->
                    let s =
                      match op with
                      | TST | TEQ | CMP | CMN -> false
                      | _ -> s
                    in
                    Some
                      (Dp { cond; op; s; rd = bits 12 4; rn = bits 16 4; op2 })))
            )
        | 0b111 when bits 24 1 = 1 ->
            Some (Swi { cond; number = word land 0xFF_FFFF })
        | _ -> None)
