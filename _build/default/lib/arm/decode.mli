(** Inverse of {!Encode}: recover an instruction from a 32-bit word.

    Decoding is used by the simulator to pre-decode program images and by
    the round-trip tests; [decode (Encode.encode i) = Some i] holds for
    every canonical instruction. *)

val decode : int -> Insn.t option
(** [decode word] is the instruction encoded by [word], or [None] when the
    word does not match any instruction pattern (e.g. a literal-pool
    constant that happens not to be a valid encoding). *)
