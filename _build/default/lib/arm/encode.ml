open Insn

exception Unencodable of string

let fail fmt = Format.kasprintf (fun s -> raise (Unencodable s)) fmt

let cond_code = function
  | EQ -> 0 | NE -> 1 | CS -> 2 | CC -> 3 | MI -> 4 | PL -> 5 | VS -> 6
  | VC -> 7 | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11 | GT -> 12 | LE -> 13
  | AL -> 14

let cond_of_code = function
  | 0 -> Some EQ | 1 -> Some NE | 2 -> Some CS | 3 -> Some CC | 4 -> Some MI
  | 5 -> Some PL | 6 -> Some VS | 7 -> Some VC | 8 -> Some HI | 9 -> Some LS
  | 10 -> Some GE | 11 -> Some LT | 12 -> Some GT | 13 -> Some LE
  | 14 -> Some AL | _ -> None

let dp_code = function
  | AND -> 0 | EOR -> 1 | SUB -> 2 | RSB -> 3 | ADD -> 4 | ADC -> 5
  | SBC -> 6 | RSC -> 7 | TST -> 8 | TEQ -> 9 | CMP -> 10 | CMN -> 11
  | ORR -> 12 | MOV -> 13 | BIC -> 14 | MVN -> 15

let shift_code = function LSL -> 0 | LSR -> 1 | ASR -> 2 | ROR -> 3

let check_reg r = if r < 0 || r > 15 then fail "bad register r%d" r

let op2_bits = function
  | Imm { value; rot } ->
      if value < 0 || value > 0xFF then fail "imm8 out of range: %d" value;
      if rot < 0 || rot > 15 then fail "rot out of range: %d" rot;
      (1 lsl 25) lor (rot lsl 8) lor value
  | Reg r ->
      check_reg r;
      r
  | Reg_shift (r, k, n) ->
      check_reg r;
      if n < 0 || n > 31 then fail "shift amount out of range: %d" n;
      (n lsl 7) lor (shift_code k lsl 5) lor r
  | Reg_shift_reg (r, k, rs) ->
      check_reg r;
      check_reg rs;
      (rs lsl 8) lor (shift_code k lsl 5) lor 0x10 lor r

let bool_bit b pos = if b then 1 lsl pos else 0

let encode insn =
  let cond = cond_code (cond_of insn) lsl 28 in
  match insn with
  | Dp { op; s; rd; rn; op2; _ } ->
      check_reg rd;
      check_reg rn;
      (* compare-class operations always set flags: S is hard-wired to 1 *)
      let s =
        match op with TST | TEQ | CMP | CMN -> true | _ -> s
      in
      cond lor (dp_code op lsl 21) lor bool_bit s 20 lor (rn lsl 16)
      lor (rd lsl 12) lor op2_bits op2
  | Mul { s; rd; rm; rs; acc; _ } ->
      check_reg rd;
      check_reg rm;
      check_reg rs;
      let rn, abit = match acc with Some rn -> (rn, 1 lsl 21) | None -> (0, 0) in
      check_reg rn;
      cond lor abit lor bool_bit s 20 lor (rd lsl 16) lor (rn lsl 12)
      lor (rs lsl 8) lor 0x90 lor rm
  | Mem { load; width = Half; signed; rd; rn; offset; writeback; _ }
  | Mem { load; width = Byte; signed = (true as signed); rd; rn; offset;
          writeback; _ } ->
      (* "extra" load/store encoding: halfword and signed-byte transfers *)
      let is_half =
        match insn with Mem { width = Half; _ } -> true | _ -> false
      in
      check_reg rd;
      check_reg rn;
      if (not load) && signed then fail "signed store";
      let sbit = bool_bit signed 6 and hbit = bool_bit is_half 5 in
      let base =
        cond lor (1 lsl 24) lor bool_bit writeback 21 lor bool_bit load 20
        lor (rn lsl 16) lor (rd lsl 12) lor 0x90 lor sbit lor hbit
      in
      (match offset with
      | Ofs_imm n ->
          let u, m = if n >= 0 then (1, n) else (0, -n) in
          if m > 0xFF then fail "half/sbyte offset out of range: %d" n;
          base lor (1 lsl 22) lor (u lsl 23)
          lor ((m lsr 4) lsl 8) lor (m land 0xF)
      | Ofs_reg (rm, LSL, 0) ->
          check_reg rm;
          base lor (1 lsl 23) lor rm
      | Ofs_reg _ -> fail "shifted register offset on half/sbyte access")
  | Mem { load; width; signed = _; rd; rn; offset; writeback; _ } ->
      check_reg rd;
      check_reg rn;
      let bbit = bool_bit (width = Byte) 22 in
      let base =
        cond lor (1 lsl 26) lor (1 lsl 24) lor bbit lor bool_bit writeback 21
        lor bool_bit load 20 lor (rn lsl 16) lor (rd lsl 12)
      in
      (match offset with
      | Ofs_imm n ->
          let u, m = if n >= 0 then (1, n) else (0, -n) in
          if m > 0xFFF then fail "word/byte offset out of range: %d" n;
          base lor (u lsl 23) lor m
      | Ofs_reg (rm, k, sh) ->
          check_reg rm;
          if sh < 0 || sh > 31 then fail "offset shift out of range: %d" sh;
          base lor (1 lsl 25) lor (1 lsl 23) lor (sh lsl 7)
          lor (shift_code k lsl 5) lor rm)
  | Push { regs; _ } | Pop { regs; _ } ->
      if regs = [] then fail "empty register list";
      let reglist =
        List.fold_left
          (fun acc r ->
            check_reg r;
            acc lor (1 lsl r))
          0 regs
      in
      let is_pop = match insn with Pop _ -> true | _ -> false in
      let mode =
        if is_pop then (0 lsl 24) lor (1 lsl 23) (* IA *)
        else (1 lsl 24) lor (0 lsl 23) (* DB *)
      in
      cond lor (1 lsl 27) lor mode lor (1 lsl 21) lor bool_bit is_pop 20
      lor (sp lsl 16) lor reglist
  | B { link; offset; _ } ->
      if offset land 3 <> 0 then fail "unaligned branch offset: %d" offset;
      let words = offset asr 2 in
      if not (Pf_util.Bits.fits_signed ~width:24 words) then
        fail "branch offset out of range: %d" offset;
      cond lor (0b101 lsl 25) lor bool_bit link 24
      lor Pf_util.Bits.zero_extend ~width:24 words
  | Bx { rm; _ } ->
      check_reg rm;
      cond lor 0x012FFF10 lor rm
  | Swi { number; _ } ->
      if number < 0 || number > 0xFF_FFFF then fail "swi number: %d" number;
      cond lor (0xF lsl 24) lor number

let branch_range = (1 lsl 23) * 4 - 4
