(** Binary encoding of the ARM-like ISA into 32-bit words.

    The layout follows the classic ARM scheme (condition in the top nibble,
    data-processing with a 12-bit shifter operand, ...).  Encoding exists so
    that program images are genuine word streams: the I-cache and the power
    model observe real bit patterns, and literal pools live in the same
    address space as code. *)

exception Unencodable of string

val cond_code : Insn.cond -> int
val cond_of_code : int -> Insn.cond option

val encode : Insn.t -> int
(** [encode insn] is the 32-bit word for [insn].
    @raise Unencodable if a field does not fit (e.g. a memory offset beyond
    the addressing-mode range, or a branch offset beyond 24 bits). *)

val branch_range : int
(** Maximum forward byte offset reachable by [B]/[BL]. *)
