type t = {
  code_base : int;
  words : int array;
  insns : Insn.t option array;
  entry : int;
  data_base : int;
  data_init : (int * int array) list;
  mem_size : int;
  symbols : (string * int) list;
}

let make ?(code_base = 0x8000) ?(data_base = 0x10_0000)
    ?(mem_size = 8 * 1024 * 1024) ?(data_init = []) ?(symbols = [])
    ?code_mask ~entry words =
  let code_bytes = Array.length words * 4 in
  if code_base land 3 <> 0 then invalid_arg "Image.make: unaligned code_base";
  if code_base + code_bytes > data_base then
    invalid_arg "Image.make: code overlaps data segment";
  if entry < code_base || entry >= code_base + code_bytes then
    invalid_arg "Image.make: entry outside code";
  if mem_size <= data_base then invalid_arg "Image.make: memory too small";
  List.iter
    (fun (addr, ws) ->
      if addr < data_base || addr + (Array.length ws * 4) > mem_size then
        invalid_arg "Image.make: data blob outside data segment")
    data_init;
  (match code_mask with
  | Some m when Array.length m <> Array.length words ->
      invalid_arg "Image.make: code_mask length mismatch"
  | Some _ | None -> ());
  let insns =
    Array.mapi
      (fun idx w ->
        match code_mask with
        | Some m when not m.(idx) -> None
        | Some _ | None -> Decode.decode w)
      words
  in
  { code_base; words; insns; entry; data_base; data_init; mem_size; symbols }

let code_size_bytes t = Array.length t.words * 4
let code_end t = t.code_base + code_size_bytes t
let in_code t addr = addr >= t.code_base && addr < code_end t

let insn_at t addr =
  if (not (in_code t addr)) || addr land 3 <> 0 then None
  else t.insns.((addr - t.code_base) lsr 2)

let word_at t addr =
  if (not (in_code t addr)) || addr land 3 <> 0 then
    invalid_arg "Image.word_at"
  else t.words.((addr - t.code_base) lsr 2)

let symbol t name = List.assoc name t.symbols

let disassemble t =
  let buf = Buffer.create 4096 in
  let sym_at addr =
    List.filter_map
      (fun (name, a) -> if a = addr then Some name else None)
      t.symbols
  in
  Array.iteri
    (fun i word ->
      let addr = t.code_base + (i * 4) in
      List.iter
        (fun name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name))
        (sym_at addr);
      let text =
        match t.insns.(i) with
        | Some insn -> Insn.to_string insn
        | None -> Printf.sprintf ".word 0x%08x" word
      in
      Buffer.add_string buf (Printf.sprintf "  %06x:  %08x  %s\n" addr word text))
    t.words;
  Buffer.contents buf
