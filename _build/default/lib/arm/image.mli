(** Executable program images.

    An image is the output of the compiler/linker: a word stream at
    [code_base] (encoded instructions interleaved with literal-pool
    constants), initialized data at [data_base], and an entry point.  The
    instruction words are pre-decoded once so the simulator does not pay
    decode cost on every fetch; the raw words remain available because the
    I-cache and power models work on real bit patterns. *)

type t = private {
  code_base : int;
  words : int array;              (** code segment, one 32-bit word each *)
  insns : Insn.t option array;    (** pre-decoded view of [words] *)
  entry : int;                    (** entry address *)
  data_base : int;
  data_init : (int * int array) list;  (** (address, words) blobs *)
  mem_size : int;                 (** total simulated memory, bytes *)
  symbols : (string * int) list;  (** function name -> address *)
}

val make :
  ?code_base:int ->
  ?data_base:int ->
  ?mem_size:int ->
  ?data_init:(int * int array) list ->
  ?symbols:(string * int) list ->
  ?code_mask:bool array ->
  entry:int ->
  int array ->
  t
(** [make ~entry words] builds an image.  Defaults: code at [0x8000], data
    at [0x100000], 8 MiB of memory.  [code_mask] marks which words are
    instructions (default: all); words masked off — literal-pool data —
    pre-decode to [None] so no consumer mistakes pool constants for
    instructions.  Raises [Invalid_argument] if segments overlap or the
    entry point lies outside the code segment. *)

val code_size_bytes : t -> int

val code_end : t -> int
(** First address past the code segment. *)

val in_code : t -> int -> bool

val insn_at : t -> int -> Insn.t option
(** Pre-decoded instruction at an address ([None] for pool data or
    out-of-segment addresses). *)

val word_at : t -> int -> int
(** Raw code word at an aligned code address. *)

val symbol : t -> string -> int
(** @raise Not_found if the symbol is not defined. *)

val disassemble : t -> string
(** Human-readable listing of the whole code segment. *)
