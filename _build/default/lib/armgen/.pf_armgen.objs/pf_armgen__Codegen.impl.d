lib/armgen/codegen.ml: Array Format Hashtbl List Mach Option Pf_arm Pf_kir Pf_util
