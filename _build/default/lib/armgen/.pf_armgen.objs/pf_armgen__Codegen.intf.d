lib/armgen/codegen.mli: Mach Pf_kir
