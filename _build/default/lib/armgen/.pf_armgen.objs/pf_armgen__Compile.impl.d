lib/armgen/compile.ml: Codegen Link Normalize Pf_arm Pf_kir Runtime
