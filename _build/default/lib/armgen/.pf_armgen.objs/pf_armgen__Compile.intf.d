lib/armgen/compile.mli: Pf_arm Pf_kir
