lib/armgen/link.ml: Array Bytes Char Format Hashtbl Int32 List Mach Pf_arm Pf_kir Pf_util
