lib/armgen/link.mli: Mach Pf_arm Pf_kir
