lib/armgen/mach.ml: Array Format List Pf_arm
