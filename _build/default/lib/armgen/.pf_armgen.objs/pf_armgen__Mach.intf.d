lib/armgen/mach.mli: Format Pf_arm
