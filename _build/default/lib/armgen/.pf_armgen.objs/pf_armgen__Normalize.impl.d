lib/armgen/normalize.ml: List Pf_kir Printf
