lib/armgen/normalize.mli: Pf_kir
