lib/armgen/runtime.ml: List Pf_kir
