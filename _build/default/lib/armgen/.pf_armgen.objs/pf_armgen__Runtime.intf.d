lib/armgen/runtime.mli: Pf_kir
