(** KIR-to-ARM code generation.

    A classic one-pass baseline code generator: locals live in callee-saved
    registers (r4..r10) with overflow in frame slots, expressions evaluate
    on a small scratch-register stack (r0-r3, r12, r11), conditions compile
    to CMP + conditional branch, and comparisons materialize through
    conditional moves.  Address-mode selection fuses [base + const] and
    [base + (index << k)] into the ARM addressing modes.

    Requires the input to be validated, division-expanded
    ({!Runtime.expand_div}) and call-normalized ({!Normalize.program}). *)

exception Compile_error of string

val compile_fun : Pf_kir.Ast.func -> Mach.fundef

val compile_program : Pf_kir.Ast.program -> Mach.fundef list
(** All functions, in program order.  Does not include the start stub —
    that is the linker's job. *)
