(** The full KIR-to-image pipeline:
    validate -> expand division -> normalize calls -> codegen -> link. *)

val program :
  ?code_base:int ->
  ?data_base:int ->
  ?mem_size:int ->
  ?unroll:int ->
  Pf_kir.Ast.program ->
  Pf_arm.Image.t
(** [unroll] (default 1 = off) applies {!Pf_kir.Transform.unroll} before
    lowering — the knob that gives codec-class benchmarks their realistic
    instruction footprints. *)

val run :
  ?max_steps:int ->
  Pf_arm.Image.t ->
  string
(** Convenience: execute an image to completion and return its printed
    output (used heavily by tests). *)
