open Pf_kir.Ast
module A = Pf_arm.Insn

exception Link_error of string

let error fmt = Format.kasprintf (fun s -> raise (Link_error s)) fmt

(* Pack initializer elements into little-endian words. *)
let pack_words scale length init =
  let bytes = Bytes.make (((length * scale_bytes scale) + 3) land lnot 3) '\000' in
  (match init with
  | None -> ()
  | Some a ->
      Array.iteri
        (fun idx value ->
          let off = idx * scale_bytes scale in
          match scale with
          | W8 -> Bytes.set bytes off (Char.chr (value land 0xFF))
          | W16 -> Bytes.set_uint16_le bytes off (value land 0xFFFF)
          | W32 ->
              Bytes.set_int32_le bytes off
                (Int32.of_int (Pf_util.Bits.u32 value)))
        a);
  Array.init
    (Bytes.length bytes / 4)
    (fun w -> Int32.to_int (Bytes.get_int32_le bytes (w * 4)) land 0xFFFF_FFFF)

let layout_globals ~data_base globals =
  let tbl = Hashtbl.create 16 in
  let next = ref data_base in
  let blobs = ref [] in
  List.iter
    (fun g ->
      let addr = (!next + 3) land lnot 3 in
      Hashtbl.replace tbl g.gname addr;
      (match g.init with
      | Some _ -> blobs := (addr, pack_words g.gscale g.length g.init) :: !blobs
      | None -> ());
      next := addr + (g.length * scale_bytes g.gscale))
    globals;
  (tbl, List.rev !blobs, !next)

let start_stub =
  { Mach.fname = "_start";
    items = [ Mach.Call "main"; Mach.Insn (A.Swi { cond = AL; number = 0 }) ] }

(* LDR literal reach is +-4095 bytes from pc+8; keep a safety margin for
   the pool's own size. *)
let pool_reach = 3600

(* Placed emission stream: every entry occupies one word. *)
type emission =
  | E_insn of Pf_arm.Insn.t
  | E_branch of { cond : A.cond; link : bool; target : [ `Label of Mach.label | `Func of string | `Addr of int ] }
  | E_pool_load of { rd : A.reg; const : int }  (* resolved via pool_of_use *)
  | E_word of int                                (* pool data *)

type placed = {
  fname : string;
  base : int;
  stream : emission array;          (* one word each *)
  label_addr : (Mach.label, int) Hashtbl.t;
  pool_of_use : (int, int) Hashtbl.t;  (* use address -> pool entry address *)
  size_words : int;
}

(* Place one function: assign addresses, insert literal pools on the fly
   (a final pool after the epilogue, plus branch-over pools whenever a
   pending literal would fall out of LDR range). *)
let place ~base (fdef : Mach.fundef) ~global_addr =
  let label_addr = Hashtbl.create 16 in
  let pool_of_use = Hashtbl.create 16 in
  let stream = ref [] in
  let addr = ref base in
  let pending = ref [] in   (* (use_addr, const), oldest first *)
  let push e =
    stream := e :: !stream;
    addr := !addr + 4
  in
  let flush_pool ~jump_over =
    if !pending <> [] then begin
      if jump_over then begin
        let n_distinct =
          List.length
            (List.sort_uniq compare (List.map snd !pending))
        in
        push (E_branch { cond = A.AL; link = false;
                         target = `Addr (!addr + 4 + (4 * n_distinct)) })
      end;
      let consts = List.sort_uniq compare (List.map snd !pending) in
      let entry_addr = Hashtbl.create 8 in
      List.iter
        (fun c ->
          Hashtbl.replace entry_addr c !addr;
          push (E_word c))
        consts;
      List.iter
        (fun (use, c) ->
          let target = Hashtbl.find entry_addr c in
          if target - (use + 8) > 4095 || target - (use + 8) < -4095 then
            error "%s: literal pool out of range even after split"
              fdef.Mach.fname;
          Hashtbl.replace pool_of_use use target)
        !pending;
      pending := []
    end
  in
  let maybe_flush () =
    match List.rev !pending with
    | [] -> ()
    | (oldest, _) :: _ ->
        let projected =
          !addr + 8 + (4 * List.length !pending) - oldest
        in
        if projected > pool_reach then flush_pool ~jump_over:true
  in
  let const_load rd c =
    pending := (!addr, Pf_util.Bits.u32 c) :: !pending;
    push (E_pool_load { rd; const = Pf_util.Bits.u32 c })
  in
  List.iter
    (fun item ->
      (match item with
      | Mach.Label l -> Hashtbl.replace label_addr l !addr
      | Mach.Insn i -> push (E_insn i)
      | Mach.Branch { cond; target } ->
          push (E_branch { cond; link = false; target = `Label target })
      | Mach.Call f -> push (E_branch { cond = A.AL; link = true; target = `Func f })
      | Mach.Load_const (rd, c) -> const_load rd c
      | Mach.Load_global (rd, g) -> (
          let a =
            match Hashtbl.find_opt global_addr g with
            | Some a -> a
            | None -> error "undefined global %s" g
          in
          match A.encode_imm_operand a with
          | Some op2 ->
              push (E_insn (A.Dp { cond = AL; op = MOV; s = false; rd;
                                   rn = 0; op2 }))
          | None -> const_load rd a));
      maybe_flush ())
    fdef.Mach.items;
  flush_pool ~jump_over:false;
  {
    fname = fdef.Mach.fname;
    base;
    stream = Array.of_list (List.rev !stream);
    label_addr;
    pool_of_use;
    size_words = (!addr - base) / 4;
  }

let emit_placed (p : placed) ~func_addr ~out =
  Array.iteri
    (fun idx emission ->
      let addr = p.base + (4 * idx) in
      let word =
        match emission with
        | E_word w -> w
        | E_insn i -> (
            try Pf_arm.Encode.encode i
            with Pf_arm.Encode.Unencodable msg ->
              error "%s: cannot encode %s: %s" p.fname (A.to_string i) msg)
        | E_pool_load { rd; const } ->
            let target =
              match Hashtbl.find_opt p.pool_of_use addr with
              | Some t -> t
              | None -> error "%s: unresolved literal %d" p.fname const
            in
            Pf_arm.Encode.encode
              (A.Mem { cond = AL; load = true; width = Word; signed = false;
                       rd; rn = A.pc; offset = Ofs_imm (target - (addr + 8));
                       writeback = false })
        | E_branch { cond; link; target } ->
            let ta =
              match target with
              | `Addr a -> a
              | `Label l -> (
                  match Hashtbl.find_opt p.label_addr l with
                  | Some a -> a
                  | None -> error "%s: unresolved label L%d" p.fname l)
              | `Func f -> (
                  match Hashtbl.find_opt func_addr f with
                  | Some a -> a
                  | None -> error "call to undefined function %s" f)
            in
            Pf_arm.Encode.encode
              (A.B { cond; link; offset = ta - (addr + 8) })
      in
      out := word :: !out)
    p.stream

let link ?(code_base = 0x8000) ?(data_base = 0x10_0000)
    ?(mem_size = 8 * 1024 * 1024) fundefs globals =
  if not (List.exists (fun f -> f.Mach.fname = "main") fundefs) then
    error "no main function";
  let global_addr, data_init, data_end = layout_globals ~data_base globals in
  if data_end > mem_size - 65536 then
    error "globals leave no room for the stack";
  let fundefs = start_stub :: fundefs in
  let placed = ref [] in
  let base = ref code_base in
  List.iter
    (fun fdef ->
      let p = place ~base:!base fdef ~global_addr in
      placed := p :: !placed;
      base := !base + (4 * p.size_words))
    fundefs;
  let placed = List.rev !placed in
  if !base > data_base then
    error "code segment overflows into the data segment (%d bytes)"
      (!base - code_base);
  let func_addr = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace func_addr p.fname p.base) placed;
  let out = ref [] in
  List.iter (fun p -> emit_placed p ~func_addr ~out) placed;
  let words = Array.of_list (List.rev !out) in
  let code_mask =
    let mask = ref [] in
    List.iter
      (fun p ->
        Array.iter
          (fun e ->
            mask := (match e with E_word _ -> false | _ -> true) :: !mask)
          p.stream)
      placed;
    Array.of_list (List.rev !mask)
  in
  let symbols =
    List.map (fun p -> (p.fname, p.base)) placed
    @ List.of_seq (Hashtbl.to_seq global_addr)
  in
  Pf_arm.Image.make ~code_base ~data_base ~mem_size ~data_init ~symbols
    ~code_mask
    ~entry:(Hashtbl.find func_addr "_start")
    words
