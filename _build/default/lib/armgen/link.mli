(** Layout and linking: turn compiled functions into an executable image.

    The linker synthesizes the [_start] stub (call main, SWI #0), assigns
    addresses to globals and functions, places one literal pool after each
    function for the constants it loads, resolves labels and calls into
    PC-relative branches, and packs global initializers into data words. *)

exception Link_error of string

val link :
  ?code_base:int ->
  ?data_base:int ->
  ?mem_size:int ->
  Mach.fundef list ->
  Pf_kir.Ast.global list ->
  Pf_arm.Image.t
(** [link fundefs globals] produces a loadable image.  [fundefs] must
    define ["main"].
    @raise Link_error on branch/pool offsets out of range or missing
    symbols. *)
