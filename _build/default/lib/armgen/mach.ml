type label = int

type item =
  | Insn of Pf_arm.Insn.t
  | Label of label
  | Branch of { cond : Pf_arm.Insn.cond; target : label }
  | Call of string
  | Load_const of Pf_arm.Insn.reg * int
  | Load_global of Pf_arm.Insn.reg * string

type fundef = {
  fname : string;
  items : item list;
}

let size_words = function
  | Label _ -> 0
  | Insn _ | Branch _ | Call _ | Load_const _ | Load_global _ -> 1

let callee_saved_used items =
  let used = Array.make 16 false in
  let mark r = if r >= 4 && r <= 11 then used.(r) <- true in
  List.iter
    (fun item ->
      match item with
      | Insn i ->
          List.iter mark (Pf_arm.Insn.regs_read i);
          List.iter mark (Pf_arm.Insn.regs_written i)
      | Load_const (r, _) | Load_global (r, _) -> mark r
      | Label _ | Branch _ | Call _ -> ())
    items;
  List.filter (fun r -> used.(r)) [ 4; 5; 6; 7; 8; 9; 10; 11 ]

let pp_item ppf = function
  | Insn i -> Pf_arm.Insn.pp ppf i
  | Label l -> Format.fprintf ppf "L%d:" l
  | Branch { cond; target } ->
      Format.fprintf ppf "b%s L%d"
        (match cond with Pf_arm.Insn.AL -> "" | _ -> ".cc")
        target
  | Call f -> Format.fprintf ppf "bl %s" f
  | Load_const (r, c) -> Format.fprintf ppf "ldr r%d, =%d" r c
  | Load_global (r, g) -> Format.fprintf ppf "ldr r%d, =%s" r g
