(** Pre-link machine code: instructions plus the symbolic items the linker
    resolves (labels, calls by name, constants that may need a literal
    pool, global addresses). *)

type label = int

type item =
  | Insn of Pf_arm.Insn.t
  | Label of label
  | Branch of { cond : Pf_arm.Insn.cond; target : label }
  | Call of string                      (** BL to a function by name *)
  | Load_const of Pf_arm.Insn.reg * int (** constant needing a literal pool *)
  | Load_global of Pf_arm.Insn.reg * string (** address of a global *)

type fundef = {
  fname : string;
  items : item list;
}

val size_words : item -> int
(** Words the item occupies once linked (labels are 0, everything else 1). *)

val callee_saved_used : item list -> Pf_arm.Insn.reg list
(** Which of r4..r11 the items read or write, ascending. *)

val pp_item : Format.formatter -> item -> unit
