open Pf_kir.Ast

let is_simple = function
  | Int _ | Var _ | Global_addr _ -> true
  | Load _ | Binop _ | Unop _ | Cmp _ | Call _ -> false

let rec contains_call = function
  | Int _ | Var _ | Global_addr _ -> false
  | Load { addr; _ } -> contains_call addr
  | Binop (_, a, b) | Cmp (_, a, b) -> contains_call a || contains_call b
  | Unop (_, a) -> contains_call a
  | Call _ -> true

type ctx = { mutable fresh : int }

let fresh_var ctx =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "$t%d" ctx.fresh

(* Rewrite [e], emitting hoisted statements through [emit].  When [top] is
   true the expression is the full right-hand side of a Let/Assign/Expr, so
   a call may remain in place. *)
let rec rw_expr ctx emit ~top e =
  match e with
  | Int _ | Var _ | Global_addr _ -> e
  | Load l -> Load { l with addr = rw_expr ctx emit ~top:false l.addr }
  | Binop (op, a, b) ->
      Binop (op, rw_expr ctx emit ~top:false a, rw_expr ctx emit ~top:false b)
  | Unop (op, a) -> Unop (op, rw_expr ctx emit ~top:false a)
  | Cmp (op, a, b) ->
      Cmp (op, rw_expr ctx emit ~top:false a, rw_expr ctx emit ~top:false b)
  | Call (f, args) ->
      let args =
        List.map
          (fun a ->
            let a = rw_expr ctx emit ~top:false a in
            if is_simple a then a
            else begin
              let t = fresh_var ctx in
              emit (Let (t, a));
              Var t
            end)
          args
      in
      let call = Call (f, args) in
      if top then call
      else begin
        let t = fresh_var ctx in
        emit (Let (t, call));
        Var t
      end

let rw_top ctx emit e = rw_expr ctx emit ~top:true e
let rw_sub ctx emit e = rw_expr ctx emit ~top:false e

let rec rw_stmt ctx s =
  let hoisted = ref [] in
  let emit s = hoisted := s :: !hoisted in
  let finish s = List.rev (s :: !hoisted) in
  match s with
  | Let (x, e) -> finish (Let (x, rw_top ctx emit e))
  | Assign (x, e) -> finish (Assign (x, rw_top ctx emit e))
  | Store { scale; addr; value } ->
      let addr = rw_sub ctx emit addr in
      let value = rw_sub ctx emit value in
      finish (Store { scale; addr; value })
  | If (c, t, e) ->
      let c = rw_sub ctx emit c in
      finish (If (c, rw_block ctx t, rw_block ctx e))
  | While (c, body) ->
      let body = rw_block ctx body in
      if contains_call c then begin
        (* The condition must be re-evaluated each iteration, so its call
           hoisting has to live inside the loop. *)
        let pre = ref [] in
        let emit_in s = pre := s :: !pre in
        let c = rw_sub ctx emit_in c in
        let test = If (Cmp (Eq, c, Int 0), [ Break ], []) in
        finish (While (Int 1, List.rev !pre @ [ test ] @ body))
      end
      else finish (While (c, body))
  | For (x, lo, hi, body) ->
      let lo = rw_sub ctx emit lo in
      let hi = rw_sub ctx emit hi in
      let hi =
        if is_simple hi then hi
        else begin
          (* the bound is evaluated once; keep it in a temp *)
          let t = fresh_var ctx in
          emit (Let (t, hi));
          Var t
        end
      in
      finish (For (x, lo, hi, rw_block ctx body))
  | Expr e -> finish (Expr (rw_top ctx emit e))
  | Return (Some e) -> finish (Return (Some (rw_sub ctx emit e)))
  | Return None | Break | Continue -> finish s
  | Print_int e -> finish (Print_int (rw_sub ctx emit e))
  | Print_char e -> finish (Print_char (rw_sub ctx emit e))

and rw_block ctx stmts =
  List.concat_map
    (fun s ->
      (* temps never live across statements: reuse their names (and thus
         their register/slot homes) statement by statement *)
      ctx.fresh <- 0;
      rw_stmt ctx s)
    stmts

let program (p : program) =
  let funcs =
    List.map
      (fun f ->
        let ctx = { fresh = 0 } in
        { f with body = rw_block ctx f.body })
      p.funcs
  in
  { p with funcs }
