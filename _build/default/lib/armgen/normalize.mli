(** Call normalization (A-normal form for calls).

    After this pass, every [Call] appears only as the immediate right-hand
    side of a [Let]/[Assign] or as a standalone [Expr], and every call
    argument is simple (a constant, variable, or global address).  The code
    generator relies on this: at a call site the expression scratch stack
    is empty and arguments can be moved straight into r0-r3. *)

val program : Pf_kir.Ast.program -> Pf_kir.Ast.program
