open Pf_kir.Ast
open Pf_kir.Build

let function_names = [ "__udiv32"; "__urem32"; "__sdiv32"; "__srem32" ]

(* Restoring shift-subtract division, 32 iterations; quotient in the return
   value, remainder left in the [__divrem_r] cell.  Divide-by-zero yields 0
   for both, matching the reference evaluator. *)
let udiv32 =
  func "__udiv32" [ "n"; "d" ]
    [
      when_ (v "d" =% i 0) [ setidx32 "__divrem_r" (i 0) (i 0); ret (i 0) ];
      let_ "q" (i 0);
      let_ "r" (i 0);
      let_ "j" (i 31);
      while_ (v "j" >=% i 0)
        [
          (* [hi] is the bit shifted out of r: if set, the true remainder
             exceeds 32 bits and the subtraction below is always due. *)
          let_ "hi" (shr (v "r") (i 31));
          set "r" (bor (shl (v "r") (i 1)) (band (shr (v "n") (v "j")) (i 1)));
          when_ (bor (v "hi") (uge (v "r") (v "d")) <>% i 0)
            [
              set "r" (v "r" -% v "d");
              set "q" (bor (v "q") (shl (i 1) (v "j")));
            ];
          set "j" (v "j" -% i 1);
        ];
      setidx32 "__divrem_r" (i 0) (v "r");
      ret (v "q");
    ]

let urem32 =
  func "__urem32" [ "n"; "d" ]
    [
      do_ "__udiv32" [ v "n"; v "d" ];
      ret (idx32 "__divrem_r" (i 0));
    ]

(* Signed division truncates toward zero, as in C. *)
let sdiv32 =
  func "__sdiv32" [ "a"; "b" ]
    [
      let_ "na" (i 0);
      let_ "nb" (i 0);
      when_ (v "a" <% i 0) [ set "na" (i 1); set "a" (neg (v "a")) ];
      when_ (v "b" <% i 0) [ set "nb" (i 1); set "b" (neg (v "b")) ];
      let_ "q" (call "__udiv32" [ v "a"; v "b" ]);
      if_ (bxor (v "na") (v "nb") <>% i 0) [ ret (neg (v "q")) ] [ ret (v "q") ];
    ]

let srem32 =
  func "__srem32" [ "a"; "b" ]
    [
      let_ "na" (i 0);
      when_ (v "a" <% i 0) [ set "na" (i 1); set "a" (neg (v "a")) ];
      when_ (v "b" <% i 0) [ set "b" (neg (v "b")) ];
      let_ "r" (call "__urem32" [ v "a"; v "b" ]);
      if_ (v "na" <>% i 0) [ ret (neg (v "r")) ] [ ret (v "r") ];
    ]

let scratch_global = garray "__divrem_r" W32 1

let call_name = function
  | Div -> Some "__sdiv32"
  | Rem -> Some "__srem32"
  | Udiv -> Some "__udiv32"
  | Urem -> Some "__urem32"
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr | Sar -> None

let rec rewrite_expr e =
  match e with
  | Int _ | Var _ | Global_addr _ -> e
  | Load l -> Load { l with addr = rewrite_expr l.addr }
  | Binop (op, a, b) -> (
      let a = rewrite_expr a and b = rewrite_expr b in
      match call_name op with
      | Some f -> Call (f, [ a; b ])
      | None -> Binop (op, a, b))
  | Unop (op, a) -> Unop (op, rewrite_expr a)
  | Cmp (op, a, b) -> Cmp (op, rewrite_expr a, rewrite_expr b)
  | Call (f, args) -> Call (f, List.map rewrite_expr args)

let rec rewrite_stmt s =
  match s with
  | Let (x, e) -> Let (x, rewrite_expr e)
  | Assign (x, e) -> Assign (x, rewrite_expr e)
  | Store { scale; addr; value } ->
      Store { scale; addr = rewrite_expr addr; value = rewrite_expr value }
  | If (c, t, e) ->
      If (rewrite_expr c, List.map rewrite_stmt t, List.map rewrite_stmt e)
  | While (c, body) -> While (rewrite_expr c, List.map rewrite_stmt body)
  | For (x, lo, hi, body) ->
      For (x, rewrite_expr lo, rewrite_expr hi, List.map rewrite_stmt body)
  | Expr e -> Expr (rewrite_expr e)
  | Return (Some e) -> Return (Some (rewrite_expr e))
  | Return None | Break | Continue -> s
  | Print_int e -> Print_int (rewrite_expr e)
  | Print_char e -> Print_char (rewrite_expr e)

let calls_function name p =
  let found = ref false in
  let rec expr = function
    | Int _ | Var _ | Global_addr _ -> ()
    | Load { addr; _ } -> expr addr
    | Binop (_, a, b) | Cmp (_, a, b) ->
        expr a;
        expr b
    | Unop (_, a) -> expr a
    | Call (f, args) ->
        if f = name then found := true;
        List.iter expr args
  in
  let rec stmt = function
    | Let (_, e) | Assign (_, e) | Expr e | Return (Some e) | Print_int e
    | Print_char e ->
        expr e
    | Store { addr; value; _ } ->
        expr addr;
        expr value
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | While (c, body) ->
        expr c;
        List.iter stmt body
    | For (_, lo, hi, body) ->
        expr lo;
        expr hi;
        List.iter stmt body
    | Return None | Break | Continue -> ()
  in
  List.iter (fun f -> List.iter stmt f.body) p.funcs;
  !found

let expand_div (p : program) =
  let funcs = List.map (fun f -> { f with body = List.map rewrite_stmt f.body }) p.funcs in
  let p = { p with funcs } in
  (* Append runtime functions transitively: srem needs urem needs udiv. *)
  let need_srem = calls_function "__srem32" p in
  let need_sdiv = calls_function "__sdiv32" p in
  let need_urem = calls_function "__urem32" p || need_srem in
  let need_udiv = calls_function "__udiv32" p || need_urem || need_sdiv in
  let extra =
    List.concat
      [
        (if need_udiv then [ udiv32 ] else []);
        (if need_urem then [ urem32 ] else []);
        (if need_sdiv then [ sdiv32 ] else []);
        (if need_srem then [ srem32 ] else []);
      ]
  in
  if extra = [] then p
  else
    { funcs = p.funcs @ extra; globals = p.globals @ [ scratch_global ] }
