(** Software runtime for operations the ARM-like core lacks in hardware.

    The SA-1100 has no divider, so KIR division and remainder lower to
    calls into shift-subtract routines.  The routines are themselves KIR
    functions appended to the program — they are compiled, profiled and
    FITS-translated like any other application code, exactly as libgcc
    division helpers would be in a real MiBench binary. *)

val expand_div : Pf_kir.Ast.program -> Pf_kir.Ast.program
(** Replace [Div]/[Rem]/[Udiv]/[Urem] binops with calls and append the
    runtime functions that are actually needed. *)

val function_names : string list
(** Names reserved by the runtime (["__udiv32"], ...). *)
