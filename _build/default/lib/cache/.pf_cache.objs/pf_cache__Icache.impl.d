lib/cache/icache.ml: Array Bits Hashtbl Pf_util
