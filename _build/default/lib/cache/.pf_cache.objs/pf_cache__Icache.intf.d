lib/cache/icache.mli:
