lib/cpu/arm_run.ml: Array List Pf_arm Pf_cache Pf_power Pipeline
