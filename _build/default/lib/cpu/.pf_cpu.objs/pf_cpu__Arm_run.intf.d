lib/cpu/arm_run.mli: Pf_arm Pf_cache Pf_power Pipeline
