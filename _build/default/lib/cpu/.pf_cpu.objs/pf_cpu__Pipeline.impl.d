lib/cpu/pipeline.ml: Pf_cache Pf_power
