lib/cpu/pipeline.mli: Pf_cache Pf_power
