(** Run an ARM image through the full stack: architectural interpreter +
    I-cache + pipeline timing + power accounting.  This produces the ARM16
    and ARM8 data points of the paper's four simulated configurations. *)

type result = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  output : string;              (** program's printed output *)
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
      (** the fixed 8 KB data cache (constant across configurations) *)
  power : Pf_power.Account.report;
}

val dcache_cfg : Pf_cache.Icache.config
(** The fixed SA-1100-like 8 KB data cache used by both runners. *)

val run :
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?max_steps:int ->
  Pf_arm.Image.t ->
  result
(** Default cache: 16 KB, 32-byte blocks, 32-way (the SA-1100 I-cache). *)

(** Per-instruction metadata used by the timing model; exposed for the FITS
    runner which shares the pipeline. *)
module Meta : sig
  val classify : Pf_arm.Insn.t -> Pipeline.insn_class
  val read_mask : Pf_arm.Insn.t -> int
  val write_mask : Pf_arm.Insn.t -> int
end
