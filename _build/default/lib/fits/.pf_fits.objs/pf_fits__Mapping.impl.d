lib/fits/mapping.ml: Array Bits Format List Opkey Option Pf_arm Pf_util Spec
