lib/fits/mapping.mli: Pf_arm Spec
