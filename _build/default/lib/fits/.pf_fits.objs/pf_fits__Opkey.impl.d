lib/fits/opkey.ml: Hashtbl Pf_arm Printf Stdlib String
