lib/fits/opkey.mli: Hashtbl Pf_arm
