lib/fits/profile.ml: Array Buffer Fun Hashtbl List Opkey Pf_arm Pf_util Printf Stats
