lib/fits/profile.mli: Hashtbl Opkey Pf_arm Pf_util Stats
