lib/fits/regfile.ml: Fun List Pf_util Printf Profile Stats
