lib/fits/regfile.mli: Profile
