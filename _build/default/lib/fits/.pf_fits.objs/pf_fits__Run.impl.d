lib/fits/run.ml: Array List Mapping Pf_arm Pf_cache Pf_cpu Pf_power Printf Translate
