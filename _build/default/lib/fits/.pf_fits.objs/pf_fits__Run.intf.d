lib/fits/run.mli: Pf_cache Pf_cpu Pf_power Translate
