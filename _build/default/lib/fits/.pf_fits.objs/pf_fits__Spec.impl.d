lib/fits/spec.ml: Array Bits Buffer Opkey Pf_arm Pf_util Printf
