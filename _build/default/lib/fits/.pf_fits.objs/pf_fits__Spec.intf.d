lib/fits/spec.mli: Opkey Pf_arm
