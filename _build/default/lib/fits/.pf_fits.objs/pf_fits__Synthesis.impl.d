lib/fits/synthesis.ml: Array Hashtbl List Logs Mapping Opkey Pf_arm Pf_util Printf Spec Stats String
