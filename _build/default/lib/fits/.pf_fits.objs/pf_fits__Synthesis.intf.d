lib/fits/synthesis.mli: Pf_arm Spec
