lib/fits/translate.ml: Array Bits Buffer Fun Hashtbl List Mapping Option Pf_arm Pf_util Printf Spec Stats
