lib/fits/translate.mli: Hashtbl Mapping Pf_arm Spec
