module A = Pf_arm.Insn

type shape =
  | Sh_reg
  | Sh_imm
  | Sh_shift_imm of A.shift_kind * int
  | Sh_shift_reg of A.shift_kind

type mem_mode =
  | M_imm
  | M_reg
  | M_reg_shift of int

type t =
  | K_dp of { op : A.dp_op; shape : shape; s : bool; two_op : bool }
  | K_mul of { acc : bool }
  | K_mem of { load : bool; width : A.mem_width; signed : bool;
               mode : mem_mode; writeback : bool }
  | K_push
  | K_pop
  | K_branch of { cond : A.cond; link : bool }
  | K_bx
  | K_swi

type predicated = { key : t; cond : A.cond }

let shape_of_op2 = function
  | A.Imm _ -> Sh_imm
  | A.Reg _ -> Sh_reg
  | A.Reg_shift (_, k, n) -> Sh_shift_imm (k, n)
  | A.Reg_shift_reg (_, k, _) -> Sh_shift_reg k

let mode_of_offset = function
  | A.Ofs_imm _ -> M_imm
  | A.Ofs_reg (_, A.LSL, 0) -> M_reg
  | A.Ofs_reg (_, _, k) -> M_reg_shift k

let of_insn (i : A.t) =
  let cond = A.cond_of i in
  match i with
  | A.Dp { op; s; rd; rn; op2; _ } ->
      let commutative =
        match op with
        | A.ADD | A.AND | A.ORR | A.EOR -> true
        | _ -> false
      in
      let two_op =
        match op with
        | A.MOV | A.MVN | A.TST | A.TEQ | A.CMP | A.CMN -> true
        | A.AND | A.EOR | A.SUB | A.RSB | A.ADD | A.ADC | A.SBC | A.RSC
        | A.ORR | A.BIC -> (
            rd = rn
            ||
            (* commutative destructive form: rd = rm works after a swap *)
            match op2 with
            | A.Reg rm -> commutative && rd = rm
            | A.Imm _ | A.Reg_shift _ | A.Reg_shift_reg _ -> false)
      in
      { key = K_dp { op; shape = shape_of_op2 op2; s; two_op }; cond }
  | A.Mul { acc; _ } -> { key = K_mul { acc = acc <> None }; cond }
  | A.Mem { load; width; signed; offset; writeback; _ } ->
      { key = K_mem { load; width; signed; mode = mode_of_offset offset;
                      writeback };
        cond }
  | A.Push _ -> { key = K_push; cond }
  | A.Pop _ -> { key = K_pop; cond }
  | A.B { link; cond; _ } -> { key = K_branch { cond; link }; cond = A.AL }
  | A.Bx _ -> { key = K_bx; cond }
  | A.Swi _ -> { key = K_swi; cond }

let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash

let shape_str = function
  | Sh_reg -> "rr"
  | Sh_imm -> "ri"
  | Sh_shift_imm (k, n) ->
      Printf.sprintf "r%s%d" (String.lowercase_ascii (A.shift_name k)) n
  | Sh_shift_reg k ->
      Printf.sprintf "r%sr" (String.lowercase_ascii (A.shift_name k))

let width_str (w : A.mem_width) signed =
  match (w, signed) with
  | A.Word, _ -> "w"
  | A.Byte, false -> "b"
  | A.Byte, true -> "sb"
  | A.Half, false -> "h"
  | A.Half, true -> "sh"

let to_string = function
  | K_dp { op; shape; s; two_op } ->
      Printf.sprintf "%s%s%s.%s"
        (A.dp_name op)
        (if s then "s" else "")
        (if two_op then "2" else "3")
        (shape_str shape)
  | K_mul { acc } -> if acc then "mla" else "mul"
  | K_mem { load; width; signed; mode; writeback } ->
      Printf.sprintf "%s.%s%s%s"
        (if load then "ldr" else "str")
        (width_str width signed)
        (match mode with
        | M_imm -> "+i"
        | M_reg -> "+r"
        | M_reg_shift k -> Printf.sprintf "+r<<%d" k)
        (if writeback then "!" else "")
  | K_push -> "push"
  | K_pop -> "pop"
  | K_branch { cond; link } ->
      Printf.sprintf "%s.%s"
        (if link then "bl" else "b")
        (match A.cond_suffix cond with "" -> "al" | s -> s)
  | K_bx -> "bx"
  | K_swi -> "swi"

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
