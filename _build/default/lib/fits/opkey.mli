(** Operation keys: the unit of instruction-set synthesis.

    A key identifies "one kind of 16-bit instruction" — the ARM operation
    together with the operand shape and predication that a synthesized
    FITS opcode would have to cover.  Profiling counts keys; synthesis
    allocates encoding space to keys; translation maps an ARM instruction
    one-to-one exactly when its key was synthesized and its operands fit
    the synthesized fields. *)

type shape =
  | Sh_reg                         (** third operand is a plain register *)
  | Sh_imm                         (** third operand is an immediate *)
  | Sh_shift_imm of Pf_arm.Insn.shift_kind * int
      (** register shifted by a fixed amount — the amount is part of the
          key because a programmable decoder can bake it into an opcode *)
  | Sh_shift_reg of Pf_arm.Insn.shift_kind

type mem_mode =
  | M_imm                          (** base + immediate displacement *)
  | M_reg                          (** base + register *)
  | M_reg_shift of int             (** base + (register << k) *)

type t =
  | K_dp of { op : Pf_arm.Insn.dp_op; shape : shape; s : bool;
              two_op : bool }
      (** [two_op] marks destructive form (rd = rn), which fits the
          cheaper two-operand encoding of §3.3 *)
  | K_mul of { acc : bool }
  | K_mem of { load : bool; width : Pf_arm.Insn.mem_width; signed : bool;
               mode : mem_mode; writeback : bool }
  | K_push
  | K_pop
  | K_branch of { cond : Pf_arm.Insn.cond; link : bool }
  | K_bx
  | K_swi

type predicated = { key : t; cond : Pf_arm.Insn.cond }
(** A key together with its predicate.  Branches carry their condition in
    the key itself; for every other instruction [cond <> AL] means the
    operation is conditionally executed. *)

val of_insn : Pf_arm.Insn.t -> predicated

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val width_str : Pf_arm.Insn.mem_width -> bool -> string
(* e.g. ["w"], ["sb"]; second arg = signedness *)

val to_string : t -> string
(** e.g. ["add.ri"], ["ldr.w+i"], ["b.ne"]. *)

module Tbl : Hashtbl.S with type key = t
