(** The FITS profiler (paper §3.2, the "profile" stage of Figure 1).

    Produces "an extensive requirement analysis related to each element
    that makes up an instruction set": opcode usage (by {!Opkey.t}),
    predication, operand shapes, immediate-field value distributions split
    into the three categories of §3.3 (operate immediates, memory
    displacements, branch displacements), and register pressure.  Both
    static (code image) and dynamic (execution-weighted) views are kept —
    static drives code size, dynamic drives power and performance. *)

open Pf_util

type t = {
  static_keys : (Opkey.predicated, int) Hashtbl.t;
  dyn_keys : (Opkey.predicated, int) Hashtbl.t;
  imm_op_static : Stats.histogram;   (** operate-immediate values *)
  imm_op_dyn : Stats.histogram;
  mem_ofs_static : Stats.histogram;  (** memory displacement bytes *)
  mem_ofs_dyn : Stats.histogram;
  branch_disp_static : Stats.histogram; (** branch displacement bytes *)
  reg_static : Stats.histogram;      (** register numbers read/written *)
  reg_dyn : Stats.histogram;
  mutable static_insns : int;
  mutable dyn_insns : int;
}

val create : unit -> t

val add : t -> ?dyn_weight:int -> Pf_arm.Insn.t -> unit
(** Record one static instruction executed [dyn_weight] times
    (0 = never executed; it still counts statically). *)

val of_image : Pf_arm.Image.t -> t
(** Static-only profile of an image. *)

val profile_run :
  ?max_steps:int -> Pf_arm.Image.t -> t * string
(** Execute the image once and return the full static+dynamic profile and
    the program output (so callers can validate the run). *)

val dyn_key_count : t -> Opkey.predicated -> int
val static_key_count : t -> Opkey.predicated -> int

val keys_by_dyn_weight : t -> (Opkey.predicated * int) list
(** All observed keys, heaviest dynamic count first. *)

val registers_by_use : t -> int list
(** Register numbers sorted by descending dynamic use. *)

val summary : t -> string
(** Human-readable profile report. *)
