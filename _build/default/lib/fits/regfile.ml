open Pf_util

type report = {
  distinct_used : int;
  hot_order : int list;
  coverage_top8 : float;
  feasible_3bit : bool;
  recommended_bits : int;
}

let analyze (p : Profile.t) =
  let used =
    List.filter
      (fun r -> Stats.count p.Profile.reg_static r > 0)
      (List.init 16 Fun.id)
  in
  let hot_order =
    List.filter
      (fun r -> Stats.count p.Profile.reg_static r > 0)
      (Profile.registers_by_use p)
  in
  let top8 = List.filteri (fun i _ -> i < 8) hot_order in
  let coverage_top8 =
    Stats.coverage p.Profile.reg_dyn (fun r -> List.mem r top8)
  in
  let feasible_3bit = List.length used <= 8 in
  {
    distinct_used = List.length used;
    hot_order;
    coverage_top8;
    feasible_3bit;
    recommended_bits = (if feasible_3bit then 3 else 4);
  }

let describe r =
  Printf.sprintf
    "register organization: %d architectural names used; top-8 cover %.1f%% \
     of dynamic accesses; 3-bit register fields %s -> %d-bit fields \
     synthesized\n"
    r.distinct_used
    (100.0 *. r.coverage_top8)
    (if r.feasible_3bit then "feasible" else "infeasible")
    r.recommended_bits
