(** Register-organization synthesis analysis (paper §3.3).

    FITS trades register-file size and encoding width against spill
    frequency: a 3-bit register field would widen every immediate/opcode
    field, but is only sound if the program's code can live in eight
    architectural names.  This module answers that question from a
    profile: which registers are hot, what a remapped 8-register file
    would cover, and whether the narrow encoding is feasible at all. *)

type report = {
  distinct_used : int;
      (** architectural registers the program names at all *)
  hot_order : int list;
      (** registers by descending dynamic use *)
  coverage_top8 : float;
      (** fraction of dynamic register accesses hitting the 8 hottest *)
  feasible_3bit : bool;
      (** true iff static code references at most 8 distinct registers —
          the condition under which a 3-bit field needs no code changes *)
  recommended_bits : int;
      (** 3 when feasible, else 4 *)
}

val analyze : Profile.t -> report

val describe : report -> string
