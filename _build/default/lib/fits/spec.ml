module A = Pf_arm.Insn
open Pf_util

type imm_policy =
  | Imm_none
  | Imm_lit of { scale : int }
  | Imm_dict

type format =
  | Fmt_operate3
  | Fmt_operate2
  | Fmt_memory
  | Fmt_branch12
  | Fmt_bcc
  | Fmt_movd
  | Fmt_system

type system_op =
  | Sys_swi
  | Sys_bx
  | Sys_jalr
  | Sys_push of int
  | Sys_pop of int
  | Sys_skip of A.cond

type opdef = {
  id : int;
  name : string;
  key : Opkey.t option;
  cond : A.cond;
  imm : imm_policy;
  fmt : format;
  group : int;
  sub : int;
  sys : system_op option;
}

type sis = {
  mov_rr : opdef; mov_ri : opdef; movd4 : opdef; mvn_rr : opdef;
  add2 : opdef; sub2 : opdef; cmp_rr : opdef; cmp_ri : opdef;
  and2 : opdef; orr2 : opdef; eor2 : opdef; bic2 : opdef;
  lsl2i : opdef; lsr2i : opdef; asr2i : opdef; orr2i : opdef;
  ror2i : opdef; lsl2r : opdef; lsr2r : opdef; asr2r : opdef;
  ror2r : opdef; tst_rr : opdef; cmn_rr : opdef; adc2 : opdef;
  sbc2 : opdef; rsb2i : opdef; mul2 : opdef;
  ldrw : opdef; strw : opdef; ldrb : opdef; strb : opdef;
  b_al : opdef; bl_al : opdef; bcc : opdef; movd8 : opdef;
  swi : opdef; bx : opdef; jalr : opdef; push : opdef; pop : opdef;
  skip : opdef;
}

type t = {
  reg_bits : int;
  ops : opdef array;
  sis : sis;
  dict : int array;
  reglists : A.reg list array;
  groups_used : int;
  free_subops : int;
}

let max_groups = 16
let dict_capacity = 256
let temp_reg = 16
let shift_amount_wildcard = -1

let dict_index t v =
  let v = Bits.u32 v in
  let rec go i =
    if i >= Array.length t.dict then None
    else if t.dict.(i) = v then Some i
    else go (i + 1)
  in
  go 0

let reglist_index t regs =
  let rec go i =
    if i >= Array.length t.reglists then None
    else if t.reglists.(i) = regs then Some i
    else go (i + 1)
  in
  go 0

let encode _t op ~rc ~ra ~oprd =
  let g = op.group lsl 12 in
  match op.fmt with
  | Fmt_operate3 | Fmt_memory ->
      g lor ((rc land 0xF) lsl 8) lor ((ra land 0xF) lsl 4) lor (oprd land 0xF)
  | Fmt_operate2 ->
      g lor ((op.sub land 0xF) lsl 8) lor ((rc land 0xF) lsl 4)
      lor (oprd land 0xF)
  | Fmt_branch12 -> g lor (oprd land 0xFFF)
  | Fmt_bcc -> g lor ((rc land 0xF) lsl 8) lor (oprd land 0xFF)
  | Fmt_movd -> g lor ((rc land 0xF) lsl 8) lor (oprd land 0xFF)
  | Fmt_system -> g lor ((op.sub land 0xF) lsl 8) lor (oprd land 0xFF)

(* Base ISA: the fixed groups.  Sub-op and group numbers are stable so
   encodings are deterministic across programs (only AIS differs). *)
let base ~dict_head ~reglists =
  let counter = ref (-1) in
  let mk ?key ?(cond = A.AL) ?(imm = Imm_none) ?sys ~fmt ~group ~sub name =
    incr counter;
    { id = !counter; name; key; cond; imm; fmt; group; sub; sys }
  in
  let dp2 ?imm ~sub name op shape =
    mk ~key:(Opkey.K_dp { op; shape; s = false; two_op = true })
      ?imm ~fmt:Fmt_operate2 ~group:0 ~sub name
  in
  let dp2b ?imm ~sub name op shape =
    mk ~key:(Opkey.K_dp { op; shape; s = false; two_op = true })
      ?imm ~fmt:Fmt_operate2 ~group:1 ~sub name
  in
  let lit = Imm_lit { scale = 0 } in
  let wild k = Opkey.Sh_shift_imm (k, shift_amount_wildcard) in
  (* group 0 *)
  let mov_rr = dp2 ~sub:0 "mov.rr" A.MOV Opkey.Sh_reg in
  let mov_ri = dp2 ~imm:lit ~sub:1 "mov.ri" A.MOV Opkey.Sh_imm in
  let movd4 = dp2 ~imm:Imm_dict ~sub:2 "mov.rd" A.MOV Opkey.Sh_imm in
  let mvn_rr = dp2 ~sub:3 "mvn.rr" A.MVN Opkey.Sh_reg in
  let add2 = dp2 ~sub:4 "add2.rr" A.ADD Opkey.Sh_reg in
  let sub2 = dp2 ~sub:5 "sub2.rr" A.SUB Opkey.Sh_reg in
  let cmp_rr = dp2 ~sub:6 "cmp.rr" A.CMP Opkey.Sh_reg in
  let cmp_ri = dp2 ~imm:lit ~sub:7 "cmp.ri" A.CMP Opkey.Sh_imm in
  let and2 = dp2 ~sub:8 "and2.rr" A.AND Opkey.Sh_reg in
  let orr2 = dp2 ~sub:9 "orr2.rr" A.ORR Opkey.Sh_reg in
  let eor2 = dp2 ~sub:10 "eor2.rr" A.EOR Opkey.Sh_reg in
  let bic2 = dp2 ~sub:11 "bic2.rr" A.BIC Opkey.Sh_reg in
  let lsl2i = dp2 ~imm:lit ~sub:12 "lsl2.ri" A.MOV (wild A.LSL) in
  let lsr2i = dp2 ~imm:lit ~sub:13 "lsr2.ri" A.MOV (wild A.LSR) in
  let asr2i = dp2 ~imm:lit ~sub:14 "asr2.ri" A.MOV (wild A.ASR) in
  let orr2i = dp2 ~imm:lit ~sub:15 "orr2.ri" A.ORR Opkey.Sh_imm in
  (* group 1 *)
  let ror2i = dp2b ~imm:lit ~sub:0 "ror2.ri" A.MOV (wild A.ROR) in
  let lsl2r = dp2b ~sub:1 "lsl2.rr" A.MOV (Opkey.Sh_shift_reg A.LSL) in
  let lsr2r = dp2b ~sub:2 "lsr2.rr" A.MOV (Opkey.Sh_shift_reg A.LSR) in
  let asr2r = dp2b ~sub:3 "asr2.rr" A.MOV (Opkey.Sh_shift_reg A.ASR) in
  let ror2r = dp2b ~sub:4 "ror2.rr" A.MOV (Opkey.Sh_shift_reg A.ROR) in
  let tst_rr = dp2b ~sub:5 "tst.rr" A.TST Opkey.Sh_reg in
  let cmn_rr = dp2b ~sub:6 "cmn.rr" A.CMN Opkey.Sh_reg in
  let adc2 = dp2b ~sub:7 "adc2.rr" A.ADC Opkey.Sh_reg in
  let sbc2 = dp2b ~sub:8 "sbc2.rr" A.SBC Opkey.Sh_reg in
  let rsb2i = dp2b ~imm:lit ~sub:9 "rsb2.ri" A.RSB Opkey.Sh_imm in
  let mul2 =
    mk ~key:(Opkey.K_mul { acc = false }) ~fmt:Fmt_operate2 ~group:1 ~sub:10
      "mul2.rr"
  in
  let mem ~group ~scale name ~load ~width =
    mk
      ~key:(Opkey.K_mem
              { load; width; signed = false; mode = Opkey.M_imm;
                writeback = false })
      ~imm:(Imm_lit { scale }) ~fmt:Fmt_memory ~group ~sub:0 name
  in
  let ldrw = mem ~group:2 ~scale:2 "ldr.w+i" ~load:true ~width:A.Word in
  let strw = mem ~group:3 ~scale:2 "str.w+i" ~load:false ~width:A.Word in
  let ldrb = mem ~group:4 ~scale:0 "ldr.b+i" ~load:true ~width:A.Byte in
  let strb = mem ~group:5 ~scale:0 "str.b+i" ~load:false ~width:A.Byte in
  let b_al =
    mk ~key:(Opkey.K_branch { cond = A.AL; link = false }) ~fmt:Fmt_branch12
      ~group:6 ~sub:0 "b"
  in
  let bl_al =
    mk ~key:(Opkey.K_branch { cond = A.AL; link = true }) ~fmt:Fmt_branch12
      ~group:7 ~sub:0 "bl"
  in
  let bcc = mk ~fmt:Fmt_bcc ~group:8 ~sub:0 "b.cc" in
  let movd8 = mk ~fmt:Fmt_movd ~group:9 ~sub:0 "movD" in
  let sysop ~sub name sys ?key () =
    mk ?key ~sys ~fmt:Fmt_system ~group:10 ~sub name
  in
  let swi = sysop ~sub:0 "swi" Sys_swi ~key:Opkey.K_swi () in
  let bx = sysop ~sub:1 "bx" Sys_bx ~key:Opkey.K_bx () in
  let jalr = sysop ~sub:2 "jalr" Sys_jalr () in
  let push = sysop ~sub:3 "push" (Sys_push 0) ~key:Opkey.K_push () in
  let pop = sysop ~sub:4 "pop" (Sys_pop 0) ~key:Opkey.K_pop () in
  let skip = sysop ~sub:5 "sk.cc" (Sys_skip A.AL) () in
  let sis =
    { mov_rr; mov_ri; movd4; mvn_rr; add2; sub2; cmp_rr; cmp_ri; and2; orr2;
      eor2; bic2; lsl2i; lsr2i; asr2i; orr2i; ror2i; lsl2r; lsr2r; asr2r;
      ror2r; tst_rr; cmn_rr; adc2; sbc2; rsb2i; mul2; ldrw; strw; ldrb; strb;
      b_al; bl_al; bcc; movd8; swi; bx; jalr; push; pop; skip }
  in
  let ops =
    [| mov_rr; mov_ri; movd4; mvn_rr; add2; sub2; cmp_rr; cmp_ri; and2; orr2;
       eor2; bic2; lsl2i; lsr2i; asr2i; orr2i; ror2i; lsl2r; lsr2r; asr2r;
       ror2r; tst_rr; cmn_rr; adc2; sbc2; rsb2i; mul2; ldrw; strw; ldrb; strb;
       b_al; bl_al; bcc; movd8; swi; bx; jalr; push; pop; skip |]
  in
  {
    reg_bits = 4;
    ops;
    sis;
    dict = Array.map Bits.u32 dict_head;
    reglists;
    groups_used = 11;
    free_subops = 5 + 10; (* group 1 spare + system group spare *)
  }

let with_ais t ais =
  let ops = Array.append t.ops (Array.of_list ais) in
  let groups_used =
    Array.fold_left (fun acc op -> max acc (op.group + 1)) 0 ops
  in
  { t with ops; groups_used }

let with_data_plane t ~dict ~reglists =
  { t with dict = Array.map Bits.u32 dict; reglists }

let fmt_name = function
  | Fmt_operate3 -> "op3"
  | Fmt_operate2 -> "op2"
  | Fmt_memory -> "mem"
  | Fmt_branch12 -> "b12"
  | Fmt_bcc -> "bcc"
  | Fmt_movd -> "movd"
  | Fmt_system -> "sys"

let describe t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "FITS ISA: %d opcodes in %d/%d groups, %d dictionary entries, %d register lists\n"
    (Array.length t.ops) t.groups_used max_groups (Array.length t.dict)
    (Array.length t.reglists);
  Array.iter
    (fun op ->
      Printf.bprintf buf "  [%2d.%-2d] %-4s %-12s%s%s\n" op.group op.sub
        (fmt_name op.fmt) op.name
        (match op.imm with
        | Imm_none -> ""
        | Imm_lit { scale } ->
            if scale = 0 then " lit" else Printf.sprintf " lit<<%d" scale
        | Imm_dict -> " dict")
        (match op.cond with A.AL -> "" | c -> " ?" ^ A.cond_suffix c))
    t.ops;
  Buffer.contents buf
