(** Synthesized FITS instruction-set specifications.

    A specification describes one application's 16-bit ISA: which
    operations got opcodes, in which format, with which immediate policy,
    plus the contents of the programmable immediate dictionary and
    register-list table.  It is the output of {!Synthesis} and the input
    of {!Translate}.

    {2 Encoding capacity model}

    Every instruction is 16 bits with a 4-bit primary opcode: 16 {e groups}
    (paper Figure 2 formats).  A group is spent on one of:

    - {b Operate3}: [op(4) rc(4) ra(4) oprd(4)] — one three-operand
      operation per group; [oprd] is a register, a 4-bit literal, or a
      dictionary index, fixed per opcode.
    - {b Operate2}: [op(4) sub(4) rd(4) oprd(4)] — sixteen two-operand
      sub-operations per group ([rd] is both source and destination).
    - {b Memory}: [op(4) rd(4) rb(4) oprd(4)] — one load/store per group;
      [oprd] is a width-scaled displacement or an index register.
    - {b Branch}: [op(4) disp(12)] — displacement in 16-bit units.
    - {b Bcc}: [op(4) cond(4) disp(8)] — all conditional branches in one
      group with a short displacement.
    - {b MovD}: [op(4) rd(4) idx(8)] — load one of 256 dictionary
      constants (the §3.3 immediate-synthesis mechanism).
    - {b System}: [op(4) sub(4) arg(8)] — SWI, BX, JALR (branch-register
      with link), PUSH/POP (arg indexes a synthesized register-list
      table), and SK<cc> (skip-next-n, the predication fallback). *)

module A = Pf_arm.Insn

type imm_policy =
  | Imm_none
  | Imm_lit of { scale : int }
      (** 4-bit literal, value = field * 2^scale *)
  | Imm_dict                       (** 4-bit dictionary index (entries 0-15) *)

type format =
  | Fmt_operate3
  | Fmt_operate2
  | Fmt_memory
  | Fmt_branch12
  | Fmt_bcc
  | Fmt_movd
  | Fmt_system

(** System sub-operations (fixed semantics, decoder-assigned encodings). *)
type system_op =
  | Sys_swi
  | Sys_bx
  | Sys_jalr                       (** call through register *)
  | Sys_push of int                (** register-list table index *)
  | Sys_pop of int
  | Sys_skip of A.cond             (** skip next [arg] instructions unless
                                       [cond] holds *)

type opdef = {
  id : int;
  name : string;
  key : Opkey.t option;       (** the ARM operation key covered (1-to-1) *)
  cond : A.cond;              (** baked-in predicate (AL = none) *)
  imm : imm_policy;
  fmt : format;
  group : int;                (** primary opcode *)
  sub : int;                  (** sub-opcode within the group, else 0 *)
  sys : system_op option;     (** for [Fmt_system] ops *)
}

(** Handles to the base-and-supplemental instruction sets (paper §3.3:
    BIS = operations found across all applications, SIS = the additions
    that make the ISA Turing-complete and give every ARM instruction a
    finite expansion).  The translator's fallback sequences are built
    exclusively from these. *)
type sis = {
  mov_rr : opdef; mov_ri : opdef; movd4 : opdef; mvn_rr : opdef;
  add2 : opdef; sub2 : opdef; cmp_rr : opdef; cmp_ri : opdef;
  and2 : opdef; orr2 : opdef; eor2 : opdef; bic2 : opdef;
  lsl2i : opdef; lsr2i : opdef; asr2i : opdef; orr2i : opdef;
  ror2i : opdef; lsl2r : opdef; lsr2r : opdef; asr2r : opdef;
  ror2r : opdef; tst_rr : opdef; cmn_rr : opdef; adc2 : opdef;
  sbc2 : opdef; rsb2i : opdef; mul2 : opdef;
  ldrw : opdef; strw : opdef; ldrb : opdef; strb : opdef;
  b_al : opdef; bl_al : opdef; bcc : opdef; movd8 : opdef;
  swi : opdef; bx : opdef; jalr : opdef; push : opdef; pop : opdef;
  skip : opdef;
}

type t = {
  reg_bits : int;             (** register field width (4 in this model) *)
  ops : opdef array;
  sis : sis;
  dict : int array;           (** immediate dictionary, by index *)
  reglists : A.reg list array;(** PUSH/POP register-list table *)
  groups_used : int;
  free_subops : int;          (** unallocated operate2 sub-slots *)
}

val max_groups : int
(** 16 primary opcode groups. *)

val dict_capacity : int
(** 256 dictionary entries. *)

val temp_reg : int
(** The over-provisioned datapath register (16, beyond ARM's r0-r15) that
    fallback expansions use as scratch — a FITS core exposes more physical
    registers than the source ISA names (paper §3.1). *)

val shift_amount_wildcard : int
(** [-1]: in a [Sh_shift_imm] key of an opdef, matches any amount 0..15
    carried in the literal field (used by the SIS shift sub-ops). *)

val base : dict_head:int array -> reglists:A.reg list array -> t
(** The pre-AIS specification: the two operate2 groups holding BIS + SIS
    sub-ops, word/byte loads and stores, B/BL, the compact conditional
    branch group, MovD and the system group — 11 of the 16 primary groups,
    leaving 5 for application-specific synthesis. *)

val dict_index : t -> int -> int option
(** Index of a value in the dictionary, if present. *)

val reglist_index : t -> A.reg list -> int option

val with_ais : t -> opdef list -> t
(** Extend the spec with application-specific ops (ids/groups/subs must
    already be assigned consistently by the synthesizer). *)

val with_data_plane : t -> dict:int array -> reglists:A.reg list array -> t
(** Keep the opcode assignment (the "control plane" burned into the
    programmable instruction decoder) but swap the per-application data
    tables — immediate dictionary and register-list table.  This is the
    §3.1 upgrade scenario: reconfiguring the decoder for new software
    without re-synthesizing opcodes, and the basis of the
    cross-application reuse study in bench/main.exe. *)

val encode : t -> opdef -> rc:int -> ra:int -> oprd:int -> int
(** Pack fields into the 16-bit word for [opdef].  Field meaning depends
    on the format; unused fields must be 0.  For branches [oprd] is the
    12- or 8-bit displacement field (in 16-bit units, already encoded as
    unsigned); for movd/system [oprd] is the 8-bit argument. *)

val describe : t -> string
(** Human-readable ISA listing (one line per opcode). *)
