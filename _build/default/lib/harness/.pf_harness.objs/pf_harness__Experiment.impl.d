lib/harness/experiment.ml: Array List Pf_arm Pf_armgen Pf_cache Pf_cpu Pf_fits Pf_mibench Pf_power Pf_thumb
