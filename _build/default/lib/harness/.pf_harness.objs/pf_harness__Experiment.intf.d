lib/harness/experiment.mli: Pf_cache Pf_mibench Pf_power
