lib/harness/figures.ml: Experiment List Pf_power Pf_util Printf Stats Table
