(** The paper's experimental setup (§5): each benchmark is compiled to the
    ARM-like ISA, profiled, FITS-synthesized and translated, then simulated
    on four processor configurations that differ only in ISA and I-cache
    size — ARM16, ARM8, FITS16, FITS8 (16 KB / 8 KB, 32-byte blocks,
    32-way, SA-1100-like dual-issue core at a fixed clock).

    Every run cross-checks program output across all configurations: a
    result is only reported if the ARM and FITS executions printed exactly
    the same thing. *)

type per_config = {
  instructions : int;     (** source (ARM) instructions retired *)
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;   (** misses per million accesses (Figure 13) *)
  dcache_miss_rate_pm : float;
      (** the fixed 8 KB data cache (constant across configurations) *)
  power : Pf_power.Account.report;
}

type bench_result = {
  name : string;
  category : string;
  arm16 : per_config;
  arm8 : per_config;
  fits16 : per_config;
  fits8 : per_config;
  static_map_pct : float;        (** Figure 3 *)
  dyn_map_pct : float;           (** Figure 4 *)
  expansion_hist : (int * int) list;
  code_arm : int;
  code_thumb : int;
  code_fits : int;
  datapath_off : float;          (** Figure 12's decoder-deactivation term *)
  ais_ops : int;
  dict_entries : int;
  outputs_consistent : bool;
}

val cache_16k : Pf_cache.Icache.config
val cache_8k : Pf_cache.Icache.config

val run_benchmark :
  ?scale:int ->
  ?classify:bool ->
  Pf_mibench.Registry.benchmark ->
  bench_result
(** Full pipeline for one benchmark (default scale 1). *)

val run_all : ?scale:int -> unit -> bench_result list
(** All 21 benchmarks (Figures 3-5 use these). *)

val power_rows : bench_result list -> bench_result list
(** Restrict to the 19-benchmark power suite with the [gsm] rename. *)
