open Pf_util

type figure = {
  id : string;
  title : string;
  unit_ : string;
  series : string list;
  rows : (string * float list) list;
  average : float list;
}

let make ~id ~title ~unit_ ~series rows =
  let n = List.length series in
  List.iter
    (fun (_, vs) -> assert (List.length vs = n))
    rows;
  let average =
    List.init n (fun k ->
        Stats.mean (List.map (fun (_, vs) -> List.nth vs k) rows))
  in
  { id; title; unit_; series; rows; average }

let render f =
  let header = ("benchmark" :: f.series) @ [] in
  let body =
    List.map
      (fun (label, vs) -> label :: List.map Table.pct vs)
      f.rows
    @ [ "AVERAGE" :: List.map Table.pct f.average ]
  in
  Printf.sprintf "%s: %s (%s)\n%s" f.id f.title f.unit_
    (Table.render ~header body)

open Experiment

let saving get (r : bench_result) (c : per_config) =
  Stats.saving ~baseline:(get r.arm16.power) (get c.power)

let three_config ~id ~title ~unit_ get results =
  make ~id ~title ~unit_ ~series:[ "FITS16"; "FITS8"; "ARM8" ]
    (List.map
       (fun r ->
         ( r.name,
           [ saving get r r.fits16; saving get r r.fits8; saving get r r.arm8 ]
         ))
       results)

let fig3 results =
  make ~id:"fig3" ~title:"ARM-to-FITS static mapping (1-to-1)" ~unit_:"%"
    ~series:[ "static" ]
    (List.map (fun r -> (r.name, [ r.static_map_pct ])) results)

let fig4 results =
  make ~id:"fig4" ~title:"ARM-to-FITS dynamic mapping (1-to-1)" ~unit_:"%"
    ~series:[ "dynamic" ]
    (List.map (fun r -> (r.name, [ r.dyn_map_pct ])) results)

let fig5 results =
  make ~id:"fig5" ~title:"Code size footprint (normalized to ARM)" ~unit_:"%"
    ~series:[ "ARM"; "THUMB"; "FITS" ]
    (List.map
       (fun r ->
         let arm = float_of_int r.code_arm in
         ( r.name,
           [
             100.0;
             Stats.percent (float_of_int r.code_thumb) arm;
             Stats.percent (float_of_int r.code_fits) arm;
           ] ))
       results)

let breakdown (c : per_config) =
  let p = c.power in
  let t = p.Pf_power.Account.total in
  [
    Stats.percent p.Pf_power.Account.switching t;
    Stats.percent p.Pf_power.Account.internal t;
    Stats.percent p.Pf_power.Account.leakage t;
  ]

let fig6 results =
  let sub tag pick =
    make ~id:("fig6" ^ tag)
      ~title:("I-cache power breakdown, " ^ tag) ~unit_:"%"
      ~series:[ "switching"; "internal"; "leakage" ]
      (List.map (fun r -> (r.name, breakdown (pick r))) results)
  in
  [
    sub "ARM16" (fun r -> r.arm16);
    sub "ARM8" (fun r -> r.arm8);
    sub "FITS16" (fun r -> r.fits16);
    sub "FITS8" (fun r -> r.fits8);
  ]

let fig7 =
  three_config ~id:"fig7" ~title:"I-cache switching power saving" ~unit_:"%"
    (fun p -> p.Pf_power.Account.switching)

let fig8 =
  three_config ~id:"fig8" ~title:"I-cache internal power saving" ~unit_:"%"
    (fun p -> p.Pf_power.Account.internal)

let fig9 =
  three_config ~id:"fig9" ~title:"I-cache leakage power saving" ~unit_:"%"
    (fun p -> p.Pf_power.Account.leakage)

let fig10 results =
  make ~id:"fig10" ~title:"I-cache peak power saving" ~unit_:"%"
    ~series:[ "FITS16"; "FITS8"; "ARM8" ]
    (List.map
       (fun r ->
         let base = r.arm16.power.Pf_power.Account.peak_power in
         let s (c : per_config) =
           Stats.saving ~baseline:base c.power.Pf_power.Account.peak_power
         in
         (r.name, [ s r.fits16; s r.fits8; s r.arm8 ]))
       results)

(* power = energy / time; configurations run for different cycle counts *)
let avg_power (c : per_config) =
  c.power.Pf_power.Account.total /. float_of_int c.cycles

let fig11 results =
  make ~id:"fig11" ~title:"Total I-cache power saving" ~unit_:"%"
    ~series:[ "FITS16"; "FITS8"; "ARM8" ]
    (List.map
       (fun r ->
         let base = avg_power r.arm16 in
         let s c = Stats.saving ~baseline:base (avg_power c) in
         (r.name, [ s r.fits16; s r.fits8; s r.arm8 ]))
       results)

let fig12 results =
  make ~id:"fig12" ~title:"Total chip power saving" ~unit_:"%"
    ~series:[ "FITS16"; "FITS8"; "ARM8" ]
    (List.map
       (fun r ->
         let baseline =
           {
             Pf_power.Chip.icache_energy = r.arm16.power.Pf_power.Account.total;
             cycles = r.arm16.cycles;
           }
         in
         let s ?datapath_off (c : per_config) =
           Pf_power.Chip.chip_saving ~baseline
             ~icache_energy:c.power.Pf_power.Account.total ~cycles:c.cycles
             ?datapath_off ()
         in
         ( r.name,
           [
             s ~datapath_off:r.datapath_off r.fits16;
             s ~datapath_off:r.datapath_off r.fits8;
             s r.arm8;
           ] ))
       results)

let fig13 results =
  make ~id:"fig13" ~title:"I-cache miss rate" ~unit_:"misses/M accesses"
    ~series:[ "ARM16"; "ARM8"; "FITS16"; "FITS8" ]
    (List.map
       (fun r ->
         ( r.name,
           [
             r.arm16.miss_rate_pm; r.arm8.miss_rate_pm;
             r.fits16.miss_rate_pm; r.fits8.miss_rate_pm;
           ] ))
       results)

let fig14 results =
  make ~id:"fig14" ~title:"Instructions per cycle" ~unit_:"IPC"
    ~series:[ "ARM16"; "ARM8"; "FITS16"; "FITS8" ]
    (List.map
       (fun r ->
         (r.name, [ r.arm16.ipc; r.arm8.ipc; r.fits16.ipc; r.fits8.ipc ]))
       results)

let power_figures results =
  fig6 results
  @ [
      fig7 results; fig8 results; fig9 results; fig10 results;
      fig11 results; fig12 results; fig13 results; fig14 results;
    ]

let mapping_figures results = [ fig3 results; fig4 results; fig5 results ]
