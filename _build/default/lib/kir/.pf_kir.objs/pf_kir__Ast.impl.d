lib/kir/ast.ml:
