lib/kir/ast.mli:
