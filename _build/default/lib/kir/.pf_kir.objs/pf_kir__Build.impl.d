lib/kir/build.ml: Array Ast
