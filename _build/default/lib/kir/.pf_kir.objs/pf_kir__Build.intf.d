lib/kir/build.mli: Ast
