lib/kir/eval.ml: Array Ast Bits Bool Buffer Bytes Char Format Hashtbl Int32 List Pf_util Validate
