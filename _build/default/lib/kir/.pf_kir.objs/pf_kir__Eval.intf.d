lib/kir/eval.mli: Ast
