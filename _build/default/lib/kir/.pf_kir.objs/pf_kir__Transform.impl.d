lib/kir/transform.ml: Ast List
