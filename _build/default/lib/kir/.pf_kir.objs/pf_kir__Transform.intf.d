lib/kir/transform.mli: Ast
