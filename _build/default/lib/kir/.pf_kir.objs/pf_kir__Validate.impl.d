lib/kir/validate.ml: Array Ast Format Hashtbl List Printf
