lib/kir/validate.mli: Ast
