type scale = W8 | W16 | W32

type binop =
  | Add | Sub | Mul
  | Div | Rem
  | Udiv | Urem
  | And | Or | Xor
  | Shl
  | Shr
  | Sar

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge

type unop = Neg | Bnot

type expr =
  | Int of int
  | Var of string
  | Global_addr of string
  | Load of { scale : scale; signed : bool; addr : expr }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cmp of cmp * expr * expr
  | Call of string * expr list

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Store of { scale : scale; addr : expr; value : expr }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Expr of expr
  | Return of expr option
  | Break
  | Continue
  | Print_int of expr
  | Print_char of expr

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type global = {
  gname : string;
  gscale : scale;
  length : int;
  init : int array option;
}

type program = {
  funcs : func list;
  globals : global list;
}

let scale_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4

let entry_name = "main"
