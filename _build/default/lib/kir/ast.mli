(** The kernel intermediate representation (KIR).

    KIR is a small, C-like structured language in which the MiBench-workalike
    benchmarks are written.  It has 32-bit integer scalars, global arrays of
    8/16/32-bit elements, functions with up to four parameters, and
    structured control flow.  The [armgen] library compiles it to the
    ARM-like ISA; {!Eval} interprets it directly so compiled programs can be
    cross-checked against reference semantics. *)

type scale = W8 | W16 | W32
(** Element width of a memory access or global array. *)

type binop =
  | Add | Sub | Mul
  | Div | Rem          (** signed; lowered to runtime calls *)
  | Udiv | Urem        (** unsigned; lowered to runtime calls *)
  | And | Or | Xor
  | Shl
  | Shr                (** logical right shift *)
  | Sar                (** arithmetic right shift *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge
(** [Lt]..[Ge] are signed; [Ult]..[Uge] unsigned. *)

type unop = Neg | Bnot

type expr =
  | Int of int                      (** 32-bit constant *)
  | Var of string                   (** local variable or parameter *)
  | Global_addr of string           (** address of a global array *)
  | Load of { scale : scale; signed : bool; addr : expr }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cmp of cmp * expr * expr        (** 1 if true, 0 otherwise *)
  | Call of string * expr list

type stmt =
  | Let of string * expr            (** declare-and-initialize a local *)
  | Assign of string * expr
  | Store of { scale : scale; addr : expr; value : expr }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** [For (i, lo, hi, body)]: i from lo while i < hi (signed), step 1.
          [hi] is evaluated once, before the loop. *)
  | Expr of expr                    (** evaluate for side effects *)
  | Return of expr option
  | Break
  | Continue
  | Print_int of expr               (** SWI print: result channel *)
  | Print_char of expr

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type global = {
  gname : string;
  gscale : scale;
  length : int;                 (** number of elements *)
  init : int array option;      (** initial element values, else zeros *)
}

type program = {
  funcs : func list;
  globals : global list;
}

val scale_bytes : scale -> int

val entry_name : string
(** The function where execution starts: ["main"] (no parameters). *)
