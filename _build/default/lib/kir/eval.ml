open Ast
open Pf_util

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type result = { output : string; steps : int }

exception Return_exc of int
exception Break_exc
exception Continue_exc

type state = {
  mem : Bytes.t;
  global_addr : (string, int) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  out : Buffer.t;
  mutable steps : int;
  max_steps : int;
}

(* ARM-style shift: amount is the low byte of the rhs; >= 32 saturates. *)
let shift_semantics kind x amount =
  let amount = amount land 0xFF in
  match kind with
  | `Shl -> if amount >= 32 then 0 else Bits.u32 (x lsl amount)
  | `Shr -> if amount >= 32 then 0 else x lsr amount
  | `Sar ->
      let s = Bits.to_signed32 x in
      if amount >= 32 then if s < 0 then 0xFFFF_FFFF else 0
      else Bits.u32 (s asr amount)

let binop op a b =
  let sa = Bits.to_signed32 a and sb = Bits.to_signed32 b in
  match op with
  | Add -> Bits.u32 (a + b)
  | Sub -> Bits.u32 (a - b)
  | Mul -> Bits.u32 (a * b)
  | Div -> if b = 0 then 0 else Bits.u32 (sa / sb)
  | Rem -> if b = 0 then 0 else Bits.u32 (sa mod sb)
  | Udiv -> if b = 0 then 0 else a / b
  | Urem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> shift_semantics `Shl a b
  | Shr -> shift_semantics `Shr a b
  | Sar -> shift_semantics `Sar a b

let compare_op op a b =
  let sa = Bits.to_signed32 a and sb = Bits.to_signed32 b in
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> sa < sb
    | Le -> sa <= sb
    | Gt -> sa > sb
    | Ge -> sa >= sb
    | Ult -> a < b
    | Ule -> a <= b
    | Ugt -> a > b
    | Uge -> a >= b
  in
  Bool.to_int r

let check_range st addr len what =
  if addr < 0 || addr + len > Bytes.length st.mem then
    error "%s out of range: 0x%x" what addr

let load st scale signed addr =
  match scale with
  | W8 ->
      check_range st addr 1 "load";
      let x = Char.code (Bytes.get st.mem addr) in
      if signed then Bits.u32 (Bits.sign_extend ~width:8 x) else x
  | W16 ->
      if addr land 1 <> 0 then error "unaligned half load: 0x%x" addr;
      check_range st addr 2 "load";
      let x = Bytes.get_uint16_le st.mem addr in
      if signed then Bits.u32 (Bits.sign_extend ~width:16 x) else x
  | W32 ->
      if addr land 3 <> 0 then error "unaligned word load: 0x%x" addr;
      check_range st addr 4 "load";
      Int32.to_int (Bytes.get_int32_le st.mem addr) land 0xFFFF_FFFF

let store st scale addr value =
  match scale with
  | W8 ->
      check_range st addr 1 "store";
      Bytes.set st.mem addr (Char.chr (value land 0xFF))
  | W16 ->
      if addr land 1 <> 0 then error "unaligned half store: 0x%x" addr;
      check_range st addr 2 "store";
      Bytes.set_uint16_le st.mem addr (value land 0xFFFF)
  | W32 ->
      if addr land 3 <> 0 then error "unaligned word store: 0x%x" addr;
      check_range st addr 4 "store";
      Bytes.set_int32_le st.mem addr (Int32.of_int (Bits.u32 value))

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step budget exhausted"

let rec eval_expr st env = function
  | Int n -> Bits.u32 n
  | Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> error "unbound variable %s" x)
  | Global_addr g -> (
      match Hashtbl.find_opt st.global_addr g with
      | Some a -> a
      | None -> error "unbound global %s" g)
  | Load { scale; signed; addr } ->
      load st scale signed (eval_expr st env addr)
  | Binop (op, a, b) ->
      let a = eval_expr st env a in
      let b = eval_expr st env b in
      binop op a b
  | Unop (Neg, a) -> Bits.u32 (-eval_expr st env a)
  | Unop (Bnot, a) -> Bits.u32 (lnot (eval_expr st env a))
  | Cmp (op, a, b) ->
      let a = eval_expr st env a in
      let b = eval_expr st env b in
      compare_op op a b
  | Call (f, args) ->
      let vals = List.map (eval_expr st env) args in
      call_func st f vals

and call_func st name args =
  match Hashtbl.find_opt st.funcs name with
  | None -> error "undefined function %s" name
  | Some f ->
      let env = Hashtbl.create 16 in
      List.iter2 (fun p a -> Hashtbl.replace env p a) f.params args;
      (try
         exec_block st env f.body;
         0
       with Return_exc v -> v)

and exec_block st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env stmt =
  tick st;
  match stmt with
  | Let (x, e) | Assign (x, e) -> Hashtbl.replace env x (eval_expr st env e)
  | Store { scale; addr; value } ->
      let a = eval_expr st env addr in
      let v = eval_expr st env value in
      store st scale a v
  | If (c, t, e) ->
      if eval_expr st env c <> 0 then exec_block st env t
      else exec_block st env e
  | While (c, body) ->
      let rec loop () =
        (* charge each condition evaluation so empty loops still consume
           the step budget *)
        tick st;
        if eval_expr st env c <> 0 then begin
          (try exec_block st env body with Continue_exc -> ());
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | For (x, lo, hi, body) ->
      (* the induction variable is bound before the bound is evaluated,
         matching the compiler's lowering *)
      let lo = eval_expr st env lo in
      Hashtbl.replace env x lo;
      let hi = Bits.to_signed32 (eval_expr st env hi) in
      let rec loop () =
        let iv = Bits.to_signed32 (Hashtbl.find env x) in
        if iv < hi then begin
          (try exec_block st env body with Continue_exc -> ());
          (* re-read: the body may assign the induction variable *)
          let iv' = Hashtbl.find env x in
          Hashtbl.replace env x (Bits.u32 (iv' + 1));
          tick st;
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | Expr e -> ignore (eval_expr st env e)
  | Return (Some e) -> raise (Return_exc (eval_expr st env e))
  | Return None -> raise (Return_exc 0)
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Print_int e ->
      let x = eval_expr st env e in
      Buffer.add_string st.out (string_of_int (Bits.to_signed32 x));
      Buffer.add_char st.out '\n'
  | Print_char e ->
      Buffer.add_char st.out (Char.chr (eval_expr st env e land 0xFF))

let layout_globals (p : program) =
  let tbl = Hashtbl.create 16 in
  let next = ref 16 in
  List.iter
    (fun g ->
      let addr = (!next + 3) land lnot 3 in
      Hashtbl.replace tbl g.gname addr;
      next := addr + (g.length * scale_bytes g.gscale))
    p.globals;
  (tbl, !next)

let run ?(max_steps = 200_000_000) (p : program) =
  Validate.check_exn p;
  let global_addr, size = layout_globals p in
  let st =
    { mem = Bytes.make (size + 16) '\000';
      global_addr;
      funcs = Hashtbl.create 16;
      out = Buffer.create 256;
      steps = 0;
      max_steps }
  in
  List.iter (fun f -> Hashtbl.replace st.funcs f.name f) p.funcs;
  List.iter
    (fun g ->
      match g.init with
      | None -> ()
      | Some a ->
          let base = Hashtbl.find global_addr g.gname in
          Array.iteri
            (fun idx value ->
              store st g.gscale (base + (idx * scale_bytes g.gscale)) value)
            a)
    p.globals;
  ignore (call_func st entry_name []);
  { output = Buffer.contents st.out; steps = st.steps }
