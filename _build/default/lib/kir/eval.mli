(** Reference interpreter for KIR.

    The evaluator defines the source-language semantics independently of the
    compiler: 32-bit wraparound arithmetic, ARM-style shift semantics
    (amount taken from the low byte, shifts >= 32 saturate), and
    division-by-zero yielding zero.  The test suite compares its printed
    output against the output of compiled images. *)

exception Runtime_error of string

type result = {
  output : string;          (** text from [Print_int]/[Print_char] *)
  steps : int;              (** statements executed *)
}

val run : ?max_steps:int -> Ast.program -> result
(** Evaluate the program from [main].
    @raise Runtime_error on memory faults or step exhaustion
    (default 200 million). *)
