open Ast

(* Does this statement list contain a loop (at any depth)? *)
let rec has_loop stmts =
  List.exists
    (function
      | While _ | For _ -> true
      | If (_, t, e) -> has_loop t || has_loop e
      | Let _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue
      | Print_int _ | Print_char _ ->
          false)
    stmts

(* Break/Continue appearing at this loop's own level (not inside nested
   loops — irrelevant here because unroll candidates contain none). *)
let rec has_direct_break stmts =
  List.exists
    (function
      | Break | Continue -> true
      | If (_, t, e) -> has_direct_break t || has_direct_break e
      | While _ | For _ -> false
      | Let _ | Assign _ | Store _ | Expr _ | Return _ | Print_int _
      | Print_char _ ->
          false)
    stmts

let rec binds_var x stmts =
  List.exists
    (function
      | Let (y, _) | Assign (y, _) -> x = y
      | For (y, _, _, body) -> x = y || binds_var x body
      | While (_, body) -> binds_var x body
      | If (_, t, e) -> binds_var x t || binds_var x e
      | Store _ | Expr _ | Return _ | Break | Continue | Print_int _
      | Print_char _ ->
          false)
    stmts

(* [Return] inside an unrolled copy is fine (it leaves the function), but a
   body that can return makes the trip-count bookkeeping irrelevant anyway;
   keep it simple and allow it. *)
let unrollable x body =
  (not (has_loop body)) && (not (has_direct_break body))
  && not (binds_var x body)

let rec unroll_stmt ~factor s =
  match s with
  | For (x, Int lo, Int hi, body)
    when factor > 1 && unrollable x body && hi > lo
         && hi - lo <= max 8 (2 * factor) ->
      (* small constant trip count: unroll completely *)
      let bump = Assign (x, Binop (Add, Var x, Int 1)) in
      Let (x, Int lo)
      :: List.concat (List.init (hi - lo) (fun _ -> body @ [ bump ]))
  | For (x, lo, hi, body) when factor > 1 && unrollable x body ->
      let lim = x ^ "$lim" in
      let bump = Assign (x, Binop (Add, Var x, Int 1)) in
      let copies =
        List.concat (List.init factor (fun _ -> body @ [ bump ]))
      in
      [
        Let (x, lo);
        Let (lim, hi);
        While
          ( Cmp (Lt, Binop (Add, Var x, Int (factor - 1)), Var lim),
            copies );
        While (Cmp (Lt, Var x, Var lim), body @ [ bump ]);
      ]
  | For (x, lo, hi, body) -> [ For (x, lo, hi, unroll_block ~factor body) ]
  | While (c, body) -> [ While (c, unroll_block ~factor body) ]
  | If (c, t, e) -> [ If (c, unroll_block ~factor t, unroll_block ~factor e) ]
  | Let _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue
  | Print_int _ | Print_char _ ->
      [ s ]

and unroll_block ~factor stmts = List.concat_map (unroll_stmt ~factor) stmts

let unroll ~factor (p : program) =
  if factor <= 1 then p
  else
    { p with
      funcs =
        List.map
          (fun f -> { f with body = unroll_block ~factor f.body })
          p.funcs }

let count_loops (p : program) =
  let total = ref 0 and candidates = ref 0 in
  let rec stmt = function
    | For (x, _, _, body) ->
        incr total;
        if unrollable x body then incr candidates;
        List.iter stmt body
    | While (_, body) -> List.iter stmt body
    | If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | Let _ | Assign _ | Store _ | Expr _ | Return _ | Break | Continue
    | Print_int _ | Print_char _ ->
        ()
  in
  List.iter (fun f -> List.iter stmt f.body) p.funcs;
  (!total, !candidates)
