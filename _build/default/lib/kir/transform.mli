(** Source-level optimization passes.

    {!unroll} performs innermost-loop unrolling, the classic embedded-
    compiler optimization (and the reason real codec binaries are much
    larger than their textbook cores).  It is semantics-preserving: the
    test suite checks that unrolled programs print exactly what the
    original prints. *)

val unroll : factor:int -> Ast.program -> Ast.program
(** Unroll every innermost [For] loop by [factor].  A loop qualifies when
    its body contains no other loop, no [Break]/[Continue] targeting it,
    and does not rebind or assign the induction variable.  [factor <= 1]
    is the identity. *)

val count_loops : Ast.program -> int * int
(** (total for-loops, unrollable innermost for-loops) — used by reports
    and tests. *)
