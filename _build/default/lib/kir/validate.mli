(** Static well-formedness checks for KIR programs.

    Run before compilation or evaluation; catches undefined
    variables/functions/globals, arity errors (including the four-argument
    ABI limit), duplicate definitions, and misplaced [Break]/[Continue]. *)

type error = { where : string; what : string }

val check : Ast.program -> (unit, error list) result

val check_exn : Ast.program -> unit
(** @raise Invalid_argument with a readable message on the first error. *)
