lib/mibench/adpcm.ml: Gen Pf_kir
