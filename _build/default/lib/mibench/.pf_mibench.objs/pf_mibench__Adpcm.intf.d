lib/mibench/adpcm.mli: Pf_kir
