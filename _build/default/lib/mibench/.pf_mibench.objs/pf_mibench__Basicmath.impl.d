lib/mibench/basicmath.ml: Pf_kir
