lib/mibench/basicmath.mli: Pf_kir
