lib/mibench/bitcount.ml: Array Pf_kir
