lib/mibench/bitcount.mli: Pf_kir
