lib/mibench/blowfish.ml: Gen Pf_kir
