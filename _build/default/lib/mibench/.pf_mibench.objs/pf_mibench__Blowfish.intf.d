lib/mibench/blowfish.mli: Pf_kir
