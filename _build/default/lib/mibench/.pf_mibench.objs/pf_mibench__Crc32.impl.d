lib/mibench/crc32.ml: Gen Pf_kir
