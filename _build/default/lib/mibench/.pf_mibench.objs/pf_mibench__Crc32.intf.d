lib/mibench/crc32.mli: Pf_kir
