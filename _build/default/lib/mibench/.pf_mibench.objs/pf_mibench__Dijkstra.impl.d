lib/mibench/dijkstra.ml: Array Pf_kir Pf_util
