lib/mibench/dijkstra.mli: Pf_kir
