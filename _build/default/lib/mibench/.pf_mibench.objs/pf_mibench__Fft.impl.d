lib/mibench/fft.ml: Gen Pf_kir
