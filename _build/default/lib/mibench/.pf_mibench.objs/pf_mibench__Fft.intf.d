lib/mibench/fft.mli: Pf_kir
