lib/mibench/gen.ml: Array Char Float Pf_util Rng
