lib/mibench/gen.mli:
