lib/mibench/gsm.ml: Gen Pf_kir
