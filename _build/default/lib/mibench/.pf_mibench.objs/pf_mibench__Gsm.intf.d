lib/mibench/gsm.mli: Pf_kir
