lib/mibench/ispell.ml: Array Buffer Char Gen List Pf_kir String
