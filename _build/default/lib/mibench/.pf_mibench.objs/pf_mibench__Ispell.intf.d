lib/mibench/ispell.mli: Pf_kir
