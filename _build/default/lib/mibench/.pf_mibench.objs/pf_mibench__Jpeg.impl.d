lib/mibench/jpeg.ml: Array Float Gen Pf_kir
