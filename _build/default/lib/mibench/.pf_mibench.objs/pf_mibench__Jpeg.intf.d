lib/mibench/jpeg.mli: Pf_kir
