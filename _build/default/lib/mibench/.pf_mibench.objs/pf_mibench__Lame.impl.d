lib/mibench/lame.ml: Array Float Gen Pf_kir
