lib/mibench/lame.mli: Pf_kir
