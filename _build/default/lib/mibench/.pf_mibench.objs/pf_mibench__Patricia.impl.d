lib/mibench/patricia.ml: Pf_kir
