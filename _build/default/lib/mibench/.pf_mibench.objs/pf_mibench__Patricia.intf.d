lib/mibench/patricia.mli: Pf_kir
