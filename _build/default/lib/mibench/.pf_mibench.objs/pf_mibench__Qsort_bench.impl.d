lib/mibench/qsort_bench.ml: Gen Pf_kir
