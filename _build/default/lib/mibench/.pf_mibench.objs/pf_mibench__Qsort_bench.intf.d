lib/mibench/qsort_bench.mli: Pf_kir
