lib/mibench/registry.ml: Adpcm Basicmath Bitcount Blowfish Crc32 Dijkstra Fft Gsm Ispell Jpeg Lame List Patricia Pf_kir Qsort_bench Rijndael Sha1 Stringsearch Susan
