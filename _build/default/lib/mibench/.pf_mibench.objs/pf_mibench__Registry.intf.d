lib/mibench/registry.mli: Pf_kir
