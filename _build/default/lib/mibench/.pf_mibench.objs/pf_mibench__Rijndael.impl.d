lib/mibench/rijndael.ml: Gen Pf_kir
