lib/mibench/rijndael.mli: Pf_kir
