lib/mibench/sha1.ml: Array Gen Pf_kir
