lib/mibench/sha1.mli: Pf_kir
