lib/mibench/stringsearch.ml: Array Gen Pf_kir Pf_util
