lib/mibench/stringsearch.mli: Pf_kir
