lib/mibench/susan.ml: Array Float Gen List Pf_kir
