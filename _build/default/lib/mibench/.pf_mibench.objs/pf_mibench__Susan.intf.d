lib/mibench/susan.mli: Pf_kir
