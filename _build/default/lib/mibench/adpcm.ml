(* MiBench telecomm/adpcm: IMA ADPCM voice codec (encode and decode are
   separate benchmarks, as in the suite).  The decode benchmark first
   encodes the stream — it needs a bitstream to decode — then measures
   reconstruction drift. *)

open Pf_kir.Build

let name_encode = "adpcm.encode"
let name_decode = "adpcm.decode"

let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table =
  [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let clamp_stmts value lo hi =
  [
    when_ (v value <% i lo) [ set value (i lo) ];
    when_ (v value >% i hi) [ set value (i hi) ];
  ]

(* sample in [p]..: signed 16-bit value loaded via load16s *)
let common_globals ~n ~seed =
  [
    garray_init "pcm" W16 (Gen.samples16 ~seed n);
    garray "code" W8 n;
    garray "out" W16 n;
    garray_init "steps" W32 step_table;
    garray_init "idxtab" W32 index_table;
  ]

let encoder =
  func "adpcm_encode" [ "n" ]
    [
      let_ "pred" (i 0);
      let_ "index" (i 0);
      for_ "k" (i 0) (v "n")
        ([
          let_ "sample" (load16s (gaddr "pcm" +% shl (v "k") (i 1)));
          let_ "step" (idx32 "steps" (v "index"));
          let_ "diff" (v "sample" -% v "pred");
          let_ "sign" (i 0);
          when_ (v "diff" <% i 0)
            [ set "sign" (i 8); set "diff" (neg (v "diff")) ];
          (* 3-bit magnitude quantization *)
          let_ "delta" (i 0);
          let_ "vpdiff" (shr (v "step") (i 3));
          when_ (v "diff" >=% v "step")
            [
              set "delta" (i 4);
              set "diff" (v "diff" -% v "step");
              set "vpdiff" (v "vpdiff" +% v "step");
            ];
          let_ "half" (shr (v "step") (i 1));
          when_ (v "diff" >=% v "half")
            [
              set "delta" (bor (v "delta") (i 2));
              set "diff" (v "diff" -% v "half");
              set "vpdiff" (v "vpdiff" +% v "half");
            ];
          let_ "quarter" (shr (v "step") (i 2));
          when_ (v "diff" >=% v "quarter")
            [
              set "delta" (bor (v "delta") (i 1));
              set "vpdiff" (v "vpdiff" +% v "quarter");
            ];
          if_ (v "sign" <>% i 0)
            [ set "pred" (v "pred" -% v "vpdiff") ]
            [ set "pred" (v "pred" +% v "vpdiff") ];
        ]
        @ clamp_stmts "pred" (-32768) 32767
        @ [
            set "index" (v "index" +% idx32 "idxtab" (bor (v "delta") (v "sign")));
          ]
        @ clamp_stmts "index" 0 88
        @ [ setidx8 "code" (v "k") (bor (v "delta") (v "sign")) ]);
      ret (v "pred");
    ]

let decoder =
  func "adpcm_decode" [ "n" ]
    [
      let_ "pred" (i 0);
      let_ "index" (i 0);
      for_ "k" (i 0) (v "n")
        ([
           let_ "delta" (idx8 "code" (v "k"));
           let_ "step" (idx32 "steps" (v "index"));
           let_ "vpdiff" (shr (v "step") (i 3));
           when_ (band (v "delta") (i 4) <>% i 0)
             [ set "vpdiff" (v "vpdiff" +% v "step") ];
           when_ (band (v "delta") (i 2) <>% i 0)
             [ set "vpdiff" (v "vpdiff" +% shr (v "step") (i 1)) ];
           when_ (band (v "delta") (i 1) <>% i 0)
             [ set "vpdiff" (v "vpdiff" +% shr (v "step") (i 2)) ];
           if_ (band (v "delta") (i 8) <>% i 0)
             [ set "pred" (v "pred" -% v "vpdiff") ]
             [ set "pred" (v "pred" +% v "vpdiff") ];
         ]
        @ clamp_stmts "pred" (-32768) 32767
        @ [
            set "index" (v "index" +% idx32 "idxtab" (v "delta"));
          ]
        @ clamp_stmts "index" 0 88
        @ [ setidx16 "out" (v "k") (band (v "pred") (i 0xFFFF)) ]);
      ret (v "pred");
    ]

let checksum_code n =
  [
    let_ "cks" (i 0);
    for_ "k" (i 0) (i n)
      [ set "cks" (bxor (v "cks" *% i 33) (idx8 "code" (v "k"))) ];
    print_int (v "cks");
  ]

let program_encode ~scale =
  let n = 6144 * scale in
  program
    (common_globals ~n ~seed:0xADE)
    [
      encoder;
      func "main" []
        ([ let_ "p" (call "adpcm_encode" [ i n ]); print_int (v "p") ]
        @ checksum_code n);
    ]

let program_decode ~scale =
  let n = 6144 * scale in
  program
    (common_globals ~n ~seed:0xADD)
    [
      encoder;
      decoder;
      func "main" []
        [
          do_ "adpcm_encode" [ i n ];
          let_ "p" (call "adpcm_decode" [ i n ]);
          print_int (v "p");
          (* reconstruction drift: mean absolute error proxy *)
          let_ "err" (i 0);
          for_ "k" (i 0) (i n)
            [
              let_ "d"
                (load16s (gaddr "pcm" +% shl (v "k") (i 1))
                -% load16s (gaddr "out" +% shl (v "k") (i 1)));
              when_ (v "d" <% i 0) [ set "d" (neg (v "d")) ];
              set "err" (v "err" +% v "d");
            ];
          print_int (v "err" /% i n);
        ];
    ]
