(** MiBench telecomm/adpcm: IMA ADPCM voice codec.  Encode and decode are
    separate benchmarks (the decoder first encodes — it needs a
    bitstream), as in the suite. *)

val name_encode : string
val name_decode : string
val program_encode : scale:int -> Pf_kir.Ast.program
val program_decode : scale:int -> Pf_kir.Ast.program
