(* MiBench automotive/basicmath, fixed-point substitution.

   The original exercises cube roots, square roots, angle conversions and
   integer math on a scalar stream.  Our core has no FPU (and KIR no
   floats), so the same kernels run in integer/Q16 arithmetic: binary
   integer square root, bit-by-bit integer cube root, Q16 degree<->radian
   conversion, and a GCD loop.  This benchmark is excluded from the power
   study, as in the paper (S5). *)

open Pf_kir.Build

let name = "basicmath"

let program ~scale =
  let iters = 2500 * scale in
  program []
    [
      func "isqrt" [ "x" ]
        [
          let_ "res" (i 0);
          let_ "bit" (shl (i 1) (i 30));
          while_ (ugt (v "bit") (v "x")) [ set "bit" (shr (v "bit") (i 2)) ];
          while_ (v "bit" <>% i 0)
            [
              if_ (uge (v "x") (v "res" +% v "bit"))
                [
                  set "x" (v "x" -% v "res" -% v "bit");
                  set "res" (shr (v "res") (i 1) +% v "bit");
                ]
                [ set "res" (shr (v "res") (i 1)) ];
              set "bit" (shr (v "bit") (i 2));
            ];
          ret (v "res");
        ];
      func "icbrt" [ "x" ]
        [
          let_ "y" (i 0);
          let_ "s" (i 30);
          while_ (v "s" >=% i 0)
            [
              set "y" (shl (v "y") (i 1));
              let_ "b" (v "y" *% v "y" *% i 3 +% v "y" *% i 3 +% i 1);
              when_ (uge (shr (v "x") (v "s")) (v "b"))
                [
                  set "x" (v "x" -% shl (v "b") (v "s"));
                  set "y" (v "y" +% i 1);
                ];
              set "s" (v "s" -% i 3);
            ];
          ret (v "y");
        ];
      func "gcd" [ "a"; "b" ]
        [
          while_ (v "b" <>% i 0)
            [
              let_ "t" (urem (v "a") (v "b"));
              set "a" (v "b");
              set "b" (v "t");
            ];
          ret (v "a");
        ];
      (* degrees -> radians in Q16: x * 2*pi/360 *)
      func "deg2rad_q16" [ "deg" ]
        [ ret (shr (v "deg" *% i 1144) (i 6)) ];
      func "rad2deg_q16" [ "rad" ]
        [ ret (shr (v "rad" *% i 3754936) (i 16)) ];
      func "main" []
        [
          let_ "seed" (i 7);
          let_ "sq" (i 0);
          let_ "cb" (i 0);
          let_ "gc" (i 0);
          let_ "an" (i 0);
          for_ "k" (i 0) (i iters)
            [
              set "seed" (v "seed" *% i 1103515245 +% i 12345);
              let_ "x" (shr (v "seed") (i 4));
              set "sq" (v "sq" +% call "isqrt" [ v "x" ]);
              set "cb" (v "cb" +% call "icbrt" [ v "x" ]);
              when_ (band (v "k") (i 7) =% i 0)
                [
                  set "gc"
                    (v "gc"
                    +% call "gcd"
                         [
                           band (v "x") (i 0xFFFF) +% i 1;
                           band (shr (v "x") (i 8)) (i 0xFFFF) +% i 1;
                         ]);
                ];
              let_ "deg" (urem (v "x") (i 360));
              let_ "rad" (call "deg2rad_q16" [ v "deg" ]);
              set "an"
                (v "an" +% (call "rad2deg_q16" [ v "rad" ] -% v "deg"));
            ];
          print_int (v "sq");
          print_int (v "cb");
          print_int (v "gc");
          print_int (v "an");
        ];
    ]
