(** MiBench automotive/basicmath, fixed-point substitution: integer square
    root, bit-at-a-time cube root, GCD, and Q16 angle conversions over a
    scalar stream.  Excluded from the power study, as in the paper. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
