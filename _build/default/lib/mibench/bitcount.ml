(* MiBench automotive/bitcount: the same value stream counted with five
   different bit-counting algorithms (table lookup, nibble table, sparse
   ones, dense zeros, SWAR reduction), as in the original's rotating set
   of counters. *)

open Pf_kir.Build

let name = "bitcount"

let nibble_table = Array.init 16 (fun n ->
    let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
    pop n)

let program ~scale =
  let iters = 6000 * scale in
  program
    [ garray_init "nib_tab" W8 nibble_table; garray "byte_tab" W8 256 ]
    [
      func "init_byte_tab" []
        [
          for_ "n" (i 0) (i 256)
            [
              setidx8 "byte_tab" (v "n")
                (idx8 "nib_tab" (band (v "n") (i 15))
                +% idx8 "nib_tab" (band (shr (v "n") (i 4)) (i 15)));
            ];
        ];
      func "bc_sparse" [ "x" ]
        [
          let_ "n" (i 0);
          while_ (v "x" <>% i 0)
            [ incr_ "n"; set "x" (band (v "x") (v "x" -% i 1)) ];
          ret (v "n");
        ];
      func "bc_dense" [ "x" ]
        [
          let_ "n" (i 32);
          set "x" (bnot (v "x"));
          while_ (v "x" <>% i 0)
            [ set "n" (v "n" -% i 1); set "x" (band (v "x") (v "x" -% i 1)) ];
          ret (v "n");
        ];
      func "bc_table" [ "x" ]
        [
          ret
            (idx8 "byte_tab" (band (v "x") (i 255))
            +% idx8 "byte_tab" (band (shr (v "x") (i 8)) (i 255))
            +% idx8 "byte_tab" (band (shr (v "x") (i 16)) (i 255))
            +% idx8 "byte_tab" (shr (v "x") (i 24)));
        ];
      func "bc_nibble" [ "x" ]
        [
          let_ "n" (i 0);
          while_ (v "x" <>% i 0)
            [
              set "n" (v "n" +% idx8 "nib_tab" (band (v "x") (i 15)));
              set "x" (shr (v "x") (i 4));
            ];
          ret (v "n");
        ];
      func "bc_swar" [ "x" ]
        [
          set "x" (v "x" -% band (shr (v "x") (i 1)) (i 0x55555555));
          set "x"
            (band (v "x") (i 0x33333333)
            +% band (shr (v "x") (i 2)) (i 0x33333333));
          set "x" (band (v "x" +% shr (v "x") (i 4)) (i 0x0F0F0F0F));
          ret (shr (band (v "x" *% i 0x01010101) (i 0xFF000000)) (i 24));
        ];
      func "main" []
        [
          do_ "init_byte_tab" [];
          let_ "seed" (i 0x12345);
          let_ "s1" (i 0);
          let_ "s2" (i 0);
          let_ "s3" (i 0);
          let_ "s4" (i 0);
          let_ "s5" (i 0);
          for_ "k" (i 0) (i iters)
            [
              set "seed" (v "seed" *% i 1103515245 +% i 12345);
              set "s1" (v "s1" +% call "bc_sparse" [ v "seed" ]);
              set "s2" (v "s2" +% call "bc_dense" [ v "seed" ]);
              set "s3" (v "s3" +% call "bc_table" [ v "seed" ]);
              set "s4" (v "s4" +% call "bc_nibble" [ v "seed" ]);
              set "s5" (v "s5" +% call "bc_swar" [ v "seed" ]);
            ];
          print_int (v "s1");
          print_int (v "s2" -% v "s1");
          print_int (v "s3" -% v "s1");
          print_int (v "s4" -% v "s1");
          print_int (v "s5" -% v "s1");
        ];
    ]
