(** MiBench automotive/bitcount: one pseudo-random value stream counted
    with five bit-counting algorithms (sparse, dense, byte table, nibble
    table, SWAR), mirroring the original's rotating counter set. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
