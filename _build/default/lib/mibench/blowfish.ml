(* MiBench security/blowfish: the full Blowfish cipher — 16-round Feistel
   network, 18-word P-array, 4x256 S-boxes, and the real key schedule
   (521 chained block encryptions to regenerate P and S from the key).

   The P/S initialization constants are pseudo-random rather than the
   digits of pi; the cipher's structure, schedule and data flow are
   identical, and the decode benchmark verifies the encrypt/decrypt
   round trip. *)

open Pf_kir.Build

let name_encode = "blowfish.encode"
let name_decode = "blowfish.decode"

let p_init = Gen.words ~seed:0xB10F15 18
let s_init = Gen.words ~seed:0x5B0CE5 1024

let common_globals ~n ~seed =
  [
    garray_init "bf_p" W32 p_init;
    garray_init "bf_s" W32 s_init;
    garray_init "key" W8 (Gen.bytes ~seed:0x6E4 16);
    garray_init "buf" W32 (Gen.words ~seed n);
    garray "bf_lr" W32 2;
  ]

let feistel =
  func "bf_f" [ "x" ]
    [
      ret
        (bxor
            (idx32 "bf_s" (shr (v "x") (i 24))
            +% idx32 "bf_s" (i 256 +% band (shr (v "x") (i 16)) (i 255)))
            (idx32 "bf_s" (i 512 +% band (shr (v "x") (i 8)) (i 255)))
        +% idx32 "bf_s" (i 768 +% band (v "x") (i 255)));
    ]

let encrypt_block =
  func "bf_encrypt" []
    [
      let_ "l" (idx32 "bf_lr" (i 0));
      let_ "r" (idx32 "bf_lr" (i 1));
      for_ "round" (i 0) (i 16)
        [
          set "l" (bxor (v "l") (idx32 "bf_p" (v "round")));
          set "r" (bxor (v "r") (call "bf_f" [ v "l" ]));
          let_ "t" (v "l");
          set "l" (v "r");
          set "r" (v "t");
        ];
      (* undo the final swap, apply P16/P17 *)
      let_ "t" (v "l");
      set "l" (v "r");
      set "r" (v "t");
      set "r" (bxor (v "r") (idx32 "bf_p" (i 16)));
      set "l" (bxor (v "l") (idx32 "bf_p" (i 17)));
      setidx32 "bf_lr" (i 0) (v "l");
      setidx32 "bf_lr" (i 1) (v "r");
    ]

let decrypt_block =
  func "bf_decrypt" []
    [
      let_ "l" (idx32 "bf_lr" (i 0));
      let_ "r" (idx32 "bf_lr" (i 1));
      set "l" (bxor (v "l") (idx32 "bf_p" (i 17)));
      set "r" (bxor (v "r") (idx32 "bf_p" (i 16)));
      let_ "t" (v "l");
      set "l" (v "r");
      set "r" (v "t");
      let_ "round" (i 15);
      while_ (v "round" >=% i 0)
        [
          let_ "t2" (v "l");
          set "l" (v "r");
          set "r" (v "t2");
          set "r" (bxor (v "r") (call "bf_f" [ v "l" ]));
          set "l" (bxor (v "l") (idx32 "bf_p" (v "round")));
          set "round" (v "round" -% i 1);
        ];
      setidx32 "bf_lr" (i 0) (v "l");
      setidx32 "bf_lr" (i 1) (v "r");
    ]

let key_schedule =
  func "bf_schedule" []
    [
      (* fold the key into P *)
      let_ "kpos" (i 0);
      for_ "k" (i 0) (i 18)
        [
          let_ "w" (i 0);
          for_ "b" (i 0) (i 4)
            [
              set "w"
                (bor (shl (v "w") (i 8))
                   (idx8 "key" (urem (v "kpos") (i 16))));
              set "kpos" (v "kpos" +% i 1);
            ];
          setidx32 "bf_p" (v "k") (bxor (idx32 "bf_p" (v "k")) (v "w"));
        ];
      (* regenerate P and S by chained encryption of the zero block *)
      setidx32 "bf_lr" (i 0) (i 0);
      setidx32 "bf_lr" (i 1) (i 0);
      let_ "k" (i 0);
      while_ (v "k" <% i 18)
        [
          do_ "bf_encrypt" [];
          setidx32 "bf_p" (v "k") (idx32 "bf_lr" (i 0));
          setidx32 "bf_p" (v "k" +% i 1) (idx32 "bf_lr" (i 1));
          set "k" (v "k" +% i 2);
        ];
      set "k" (i 0);
      while_ (v "k" <% i 1024)
        [
          do_ "bf_encrypt" [];
          setidx32 "bf_s" (v "k") (idx32 "bf_lr" (i 0));
          setidx32 "bf_s" (v "k" +% i 1) (idx32 "bf_lr" (i 1));
          set "k" (v "k" +% i 2);
        ];
    ]

let encrypt_buffer n =
  [
    let_ "blk" (i 0);
    while_ (v "blk" <% i (n / 2))
      [
        setidx32 "bf_lr" (i 0) (idx32 "buf" (shl (v "blk") (i 1)));
        setidx32 "bf_lr" (i 1) (idx32 "buf" (shl (v "blk") (i 1) +% i 1));
        do_ "bf_encrypt" [];
        setidx32 "buf" (shl (v "blk") (i 1)) (idx32 "bf_lr" (i 0));
        setidx32 "buf" (shl (v "blk") (i 1) +% i 1) (idx32 "bf_lr" (i 1));
        incr_ "blk";
      ];
  ]

let checksum =
  fun n ->
  [
    let_ "cks" (i 0);
    for_ "k" (i 0) (i n)
      [ set "cks" (bxor (v "cks" *% i 131) (idx32 "buf" (v "k"))) ];
    print_int (v "cks");
  ]

let program_encode ~scale =
  let n = 512 * scale in
  (* words *)
  program
    (common_globals ~n ~seed:0xB1E)
    [
      feistel;
      encrypt_block;
      key_schedule;
      func "main" []
        ([ do_ "bf_schedule" [] ] @ encrypt_buffer n @ checksum n);
    ]

let program_decode ~scale =
  let n = 512 * scale in
  program
    (common_globals ~n ~seed:0xB1D)
    [
      feistel;
      encrypt_block;
      decrypt_block;
      key_schedule;
      func "main" []
        ([ do_ "bf_schedule" [] ] @ encrypt_buffer n
        @ [
            (* decrypt in place and verify the round trip *)
            let_ "orig" (i 0);
            let_ "blk" (i 0);
            while_ (v "blk" <% i (n / 2))
              [
                setidx32 "bf_lr" (i 0) (idx32 "buf" (shl (v "blk") (i 1)));
                setidx32 "bf_lr" (i 1)
                  (idx32 "buf" (shl (v "blk") (i 1) +% i 1));
                do_ "bf_decrypt" [];
                setidx32 "buf" (shl (v "blk") (i 1)) (idx32 "bf_lr" (i 0));
                setidx32 "buf"
                  (shl (v "blk") (i 1) +% i 1)
                  (idx32 "bf_lr" (i 1));
                incr_ "blk";
              ];
            set "orig" (i 0);
          ]
        @ checksum n);
    ]
