(** MiBench security/blowfish: the full 16-round Feistel cipher with the
    real key schedule (521 chained block encryptions regenerate P and S).
    P/S initialization constants are pseudo-random rather than digits of
    pi; the decode benchmark verifies decrypt(encrypt(x)) = x. *)

val name_encode : string
val name_decode : string
val program_encode : scale:int -> Pf_kir.Ast.program
val program_decode : scale:int -> Pf_kir.Ast.program
