(* MiBench telecomm/CRC32: table-driven CRC-32 over a byte stream.  The
   table is built at startup (as in the original), then the buffer is
   checksummed in one pass — the paper's own running example (Figure 2
   shows the instruction formats synthesized for this program). *)

open Pf_kir.Build

let name = "crc32"

let program ~scale =
  let n = 8192 * scale in
  program
    [
      garray "crc_tab" W32 256;
      garray_init "data" W8 (Gen.bytes ~seed:0xC3C32 n);
    ]
    [
      func "init_table" []
        [
          for_ "n" (i 0) (i 256)
            [
              let_ "c" (v "n");
              for_ "k" (i 0) (i 8)
                [
                  if_ (band (v "c") (i 1) <>% i 0)
                    [ set "c" (bxor (i 0xEDB88320) (shr (v "c") (i 1))) ]
                    [ set "c" (shr (v "c") (i 1)) ];
                ];
              setidx32 "crc_tab" (v "n") (v "c");
            ];
        ];
      func "crc_buffer" [ "ptr"; "len" ]
        [
          let_ "crc" (i 0xFFFFFFFF);
          let_ "p" (v "ptr");
          let_ "end" (v "ptr" +% v "len");
          while_ (ult (v "p") (v "end"))
            [
              let_ "byte" (load8u (v "p"));
              set "crc"
                (bxor
                   (idx32 "crc_tab" (band (bxor (v "crc") (v "byte")) (i 0xFF)))
                   (shr (v "crc") (i 8)));
              set "p" (v "p" +% i 1);
            ];
          ret (bnot (v "crc"));
        ];
      func "main" []
        [
          do_ "init_table" [];
          let_ "c1" (call "crc_buffer" [ gaddr "data"; i (n / 2) ]);
          let_ "c2"
            (call "crc_buffer" [ gaddr "data" +% i (n / 2); i (n / 2) ]);
          print_int (v "c1");
          print_int (v "c2");
          print_int (bxor (v "c1") (v "c2"));
        ];
    ]
