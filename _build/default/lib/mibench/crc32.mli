(** MiBench telecomm/CRC32: table-driven CRC-32 over a byte stream — the
    program the paper itself uses to illustrate the synthesized
    instruction formats (Figure 2). *)

val name : string

val program : scale:int -> Pf_kir.Ast.program
(** Builds the CRC table at startup, then checksums [8192 * scale] bytes
    in two passes; prints both CRCs and their xor. *)
