(* MiBench network/dijkstra: repeated single-source shortest paths over a
   dense adjacency matrix, selecting the next node by linear scan exactly
   as the original does (no priority queue). *)

open Pf_kir.Build

let name = "dijkstra"

let nodes = 64
let inf = 0x3FFFFFFF

let adjacency ~seed =
  let rng = Pf_util.Rng.create seed in
  Array.init (nodes * nodes) (fun idx ->
      let r = idx / nodes and c = idx mod nodes in
      if r = c then 0
      else if Pf_util.Rng.int rng 100 < 18 then 1 + Pf_util.Rng.int rng 99
      else inf)

let program ~scale =
  let sources = 3 * scale in
  program
    [
      garray_init "adj" W32 (adjacency ~seed:0xD1785);
      garray "dist" W32 nodes;
      garray "visited" W32 nodes;
    ]
    [
      func "shortest" [ "src" ]
        [
          for_ "k" (i 0) (i nodes)
            [
              setidx32 "dist" (v "k") (i inf);
              setidx32 "visited" (v "k") (i 0);
            ];
          setidx32 "dist" (v "src") (i 0);
          for_ "round" (i 0) (i nodes)
            [
              (* pick the unvisited node with the smallest distance *)
              let_ "best" (i (-1));
              let_ "bestd" (i inf);
              for_ "k" (i 0) (i nodes)
                [
                  when_
                    (band
                       (idx32 "visited" (v "k") =% i 0)
                       (idx32 "dist" (v "k") <% v "bestd")
                    <>% i 0)
                    [
                      set "best" (v "k");
                      set "bestd" (idx32 "dist" (v "k"));
                    ];
                ];
              when_ (v "best" <% i 0) [ break_ ];
              setidx32 "visited" (v "best") (i 1);
              let_ "row" (gaddr "adj" +% shl (v "best" *% i nodes) (i 2));
              for_ "k" (i 0) (i nodes)
                [
                  let_ "w" (load32 (v "row" +% shl (v "k") (i 2)));
                  when_ (v "w" <% i inf)
                    [
                      let_ "nd" (v "bestd" +% v "w");
                      when_ (v "nd" <% idx32 "dist" (v "k"))
                        [ setidx32 "dist" (v "k") (v "nd") ];
                    ];
                ];
            ];
          let_ "sum" (i 0);
          for_ "k" (i 0) (i nodes)
            [
              when_ (idx32 "dist" (v "k") <% i inf)
                [ set "sum" (v "sum" +% idx32 "dist" (v "k")) ];
            ];
          ret (v "sum");
        ];
      func "main" []
        [
          let_ "acc" (i 0);
          for_ "s" (i 0) (i sources)
            [
              set "acc"
                (v "acc"
                +% call "shortest" [ urem (v "s" *% i 17) (i nodes) ]);
            ];
          print_int (v "acc");
        ];
    ]
