(** MiBench network/dijkstra: repeated single-source shortest paths over a
    dense adjacency matrix with linear-scan node selection (no priority
    queue), exactly like the original. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
