(* MiBench telecomm/fft: in-place radix-2 decimation-in-time FFT in Q14
   fixed point with per-stage scaling (the standard integer-FFT guard
   against overflow), over several audio frames. *)

open Pf_kir.Build

let name = "fft"

let size = 256

let program ~scale =
  let frames = 3 * scale in
  let input = Gen.samples16 ~seed:0xFF7 (size * frames) in
  program
    [
      garray_init "input" W16 input;
      garray "re" W32 size;
      garray "im" W32 size;
      garray_init "sine" W32 (Gen.sine_q14 size);
    ]
    [
      (* bit reversal permutation *)
      func "bitrev" []
        [
          let_ "j" (i 0);
          for_ "k" (i 0) (i (size - 1))
            [
              when_ (v "k" <% v "j")
                [
                  let_ "tr" (idx32 "re" (v "k"));
                  setidx32 "re" (v "k") (idx32 "re" (v "j"));
                  setidx32 "re" (v "j") (v "tr");
                  let_ "ti" (idx32 "im" (v "k"));
                  setidx32 "im" (v "k") (idx32 "im" (v "j"));
                  setidx32 "im" (v "j") (v "ti");
                ];
              let_ "m" (i (size / 2));
              while_ (band (v "m" >=% i 1) (v "j" >=% v "m") <>% i 0)
                [ set "j" (v "j" -% v "m"); set "m" (shr (v "m") (i 1)) ];
              set "j" (v "j" +% v "m");
            ];
        ];
      func "fft" []
        [
          do_ "bitrev" [];
          let_ "span" (i 1);
          let_ "stage" (i 0);
          while_ (v "span" <% i size)
            [
              let_ "step" (shl (v "span") (i 1));
              let_ "tstep" (i size /% v "step");
              for_ "grp" (i 0) (v "span")
                [
                  let_ "angle" (v "grp" *% v "tstep");
                  let_ "wr"
                    (load32
                       (gaddr "sine"
                       +% shl
                            (band (v "angle" +% i (size / 4)) (i (size - 1)))
                            (i 2)));
                  let_ "wi" (neg (idx32 "sine" (v "angle")));
                  let_ "p" (v "grp");
                  while_ (v "p" <% i size)
                    [
                      let_ "q" (v "p" +% v "span");
                      let_ "xr" (idx32 "re" (v "q"));
                      let_ "xi" (idx32 "im" (v "q"));
                      let_ "tr"
                        (sar (v "wr" *% v "xr" -% v "wi" *% v "xi") (i 14));
                      let_ "ti"
                        (sar (v "wr" *% v "xi" +% v "wi" *% v "xr") (i 14));
                      let_ "ur" (idx32 "re" (v "p"));
                      let_ "ui" (idx32 "im" (v "p"));
                      (* scale each stage by 1/2 to stay within Q14 range *)
                      setidx32 "re" (v "q") (sar (v "ur" -% v "tr") (i 1));
                      setidx32 "im" (v "q") (sar (v "ui" -% v "ti") (i 1));
                      setidx32 "re" (v "p") (sar (v "ur" +% v "tr") (i 1));
                      setidx32 "im" (v "p") (sar (v "ui" +% v "ti") (i 1));
                      set "p" (v "p" +% v "step");
                    ];
                ];
              set "span" (v "step");
              incr_ "stage";
            ];
        ];
      func "main" []
        [
          let_ "acc" (i 0);
          for_ "f" (i 0) (i frames)
            [
              for_ "k" (i 0) (i size)
                [
                  setidx32 "re" (v "k")
                    (sar
                       (load16s
                          (gaddr "input"
                          +% shl (v "f" *% i size +% v "k") (i 1)))
                       (i 2));
                  setidx32 "im" (v "k") (i 0);
                ];
              do_ "fft" [];
              (* spectral energy checksum over the low bins *)
              for_ "k" (i 0) (i (size / 4))
                [
                  let_ "r" (idx32 "re" (v "k"));
                  let_ "m" (idx32 "im" (v "k"));
                  set "acc"
                    (bxor (v "acc" *% i 17)
                       (v "r" *% v "r" +% v "m" *% v "m"));
                ];
            ];
          print_int (v "acc");
        ];
    ]
