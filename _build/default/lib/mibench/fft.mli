(** MiBench telecomm/fft: radix-2 decimation-in-time FFT in Q14 fixed
    point with per-stage scaling, over several audio frames. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
