open Pf_util

let bytes ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng 256)

let words ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int32u rng)

let samples16 ~seed n =
  let rng = Rng.create seed in
  let f1 = 0.013 +. Rng.float rng 0.01 in
  let f2 = 0.037 +. Rng.float rng 0.01 in
  let f3 = 0.21 +. Rng.float rng 0.05 in
  Array.init n (fun i ->
      let t = float_of_int i in
      let v =
        (8000.0 *. sin (f1 *. t))
        +. (3000.0 *. sin (f2 *. t))
        +. (900.0 *. sin (f3 *. t))
        +. float_of_int (Rng.int rng 201 - 100)
      in
      int_of_float v land 0xFFFF)

let text ~seed n =
  let rng = Rng.create seed in
  let buf = Array.make n (Char.code ' ') in
  let i = ref 0 in
  while !i < n do
    let word_len = 2 + Rng.int rng 9 in
    (* bias letter choice so common substrings recur, like natural text *)
    let base = Char.code 'a' + Rng.int rng 6 in
    for _ = 1 to word_len do
      if !i < n then begin
        let c =
          if Rng.int rng 3 = 0 then Char.code 'a' + Rng.int rng 26
          else base + Rng.int rng 8
        in
        buf.(!i) <- min c (Char.code 'z');
        incr i
      end
    done;
    if !i < n then begin
      buf.(!i) <- Char.code ' ';
      incr i
    end
  done;
  buf

let image8 ~seed ~width ~height =
  let rng = Rng.create seed in
  let cx = float_of_int (Rng.int rng width) in
  let cy = float_of_int (Rng.int rng height) in
  let gx = Rng.float rng 2.0 in
  let gy = Rng.float rng 2.0 in
  Array.init (width * height) (fun idx ->
      let x = float_of_int (idx mod width) in
      let y = float_of_int (idx / width) in
      let grad = (gx *. x) +. (gy *. y) in
      let dx = x -. cx and dy = y -. cy in
      let blob = 90.0 *. exp (-.((dx *. dx) +. (dy *. dy)) /. 200.0) in
      let noise = float_of_int (Rng.int rng 11) -. 5.0 in
      let v = 60.0 +. grad +. blob +. noise in
      max 0 (min 255 (int_of_float v)))

(* AES S-box: multiplicative inverse in GF(2^8) followed by the affine
   transform. *)
let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then (a lsl 1) lxor 0x11B else a lsl 1 in
      go a (b lsr 1) acc
  in
  go a b 0

let gf_inv a =
  if a = 0 then 0
  else
    let rec search x = if gf_mul a x = 1 then x else search (x + 1) in
    search 1

let aes_sbox =
  Array.init 256 (fun a ->
      let x = gf_inv a in
      let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xFF in
      x lxor rot x 1 lxor rot x 2 lxor rot x 3 lxor rot x 4 lxor 0x63)

let aes_inv_sbox =
  let inv = Array.make 256 0 in
  Array.iteri (fun i v -> inv.(v) <- i) aes_sbox;
  inv

let sine_q14 n =
  Array.init n (fun i ->
      let v = sin (2.0 *. Float.pi *. float_of_int i /. float_of_int n) in
      int_of_float (Float.round (v *. 16384.0)) land 0xFFFF_FFFF)
