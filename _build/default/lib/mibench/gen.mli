(** Deterministic input and table generation for the benchmark suite.

    All benchmark inputs are synthesized host-side with the seeded PRNG so
    every run of every experiment sees identical data (MiBench ships fixed
    input files; this is our equivalent). *)

val bytes : seed:int -> int -> int array
(** [n] uniform bytes (0..255). *)

val words : seed:int -> int -> int array
(** [n] uniform 32-bit values. *)

val samples16 : seed:int -> int -> int array
(** [n] smooth 16-bit signed audio-like samples (sum of a few detuned
    sawtooth/triangle partials plus noise), as unsigned 16-bit words. *)

val text : seed:int -> int -> int array
(** [n] bytes of word-like lowercase text with spaces ('a'..'z', ' '). *)

val image8 : seed:int -> width:int -> height:int -> int array
(** Smooth grayscale image bytes (low-frequency gradients + blobs) —
    realistic input for the image kernels. *)

val aes_sbox : int array
(** The real AES S-box (computed, not transcribed). *)

val aes_inv_sbox : int array

val sine_q14 : int -> int array
(** [sine_q14 n] = first quarter-extended full sine table of length [n],
    values in Q1.14 stored as signed-in-u32. *)
