(* MiBench telecomm/gsm: a GSM-06.10-flavoured LPC voice codec in fixed
   point.  Encode runs the full RPE-LTP pipeline shape: preprocessing
   (offset compensation + pre-emphasis), autocorrelation, Schur recursion
   for reflection coefficients, log-area-ratio quantization, per-subframe
   long-term-prediction lag search, and RPE grid selection + APCM
   quantization.  Decode reverses the quantization and synthesis.  The
   decode benchmark encodes first (it needs a bitstream), as the suite's
   paired encode/decode programs do. *)

open Pf_kir.Build

let name_encode = "gsm.encode"
let name_decode = "gsm.decode"

let frame = 160
let subframe = 40

let common_globals ~frames ~seed =
  let n = frame * (frames + 1) in
  [
    garray_init "pcm" W16 (Gen.samples16 ~seed n);
    garray "x" W32 (frame * 2);      (* preprocessed, plus history *)
    garray "acf" W32 9;
    garray "refl" W32 8;
    garray "lar" W32 8;
    garray "pp" W32 9;               (* Schur workspace *)
    garray "kk" W32 9;
    garray "lags" W32 4;
    garray "gains" W32 4;
    garray "grid" W32 4;
    garray "rpe" W32 (4 * 13);
    garray "xmax" W32 4;
    garray "hist" W32 frame;         (* LTP history (reconstructed) *)
    garray "outsp" W32 frame;        (* decoded samples of the subframe set *)
  ]

let preprocess =
  func "preprocess" [ "off" ]
    [
      let_ "prev" (i 0);
      let_ "emph" (i 0);
      for_ "k" (i 0) (i frame)
        [
          let_ "s" (load16s (gaddr "pcm" +% shl (v "off" +% v "k") (i 1)));
          (* offset compensation: s - 0.999*prev accumulator *)
          let_ "so" (v "s" -% sar (v "prev" *% i 32735) (i 15));
          set "prev" (v "so");
          (* pre-emphasis then scale to 10 bits to keep autocorr in range *)
          let_ "e" (v "so" -% sar (v "emph" *% i 28180) (i 15));
          set "emph" (v "so");
          setidx32 "x" (v "k") (sar (v "e") (i 6));
        ];
    ]

let autocorrelation =
  func "autocorr" []
    [
      for_ "lag" (i 0) (i 9)
        [
          let_ "acc" (i 0);
          for_ "k" (v "lag") (i frame)
            [
              set "acc"
                (v "acc"
                +% idx32 "x" (v "k") *% idx32 "x" (v "k" -% v "lag"));
            ];
          setidx32 "acf" (v "lag") (v "acc");
        ];
    ]

(* Schur recursion: reflection coefficients in Q12 *)
let schur =
  func "schur" []
    [
      when_ (idx32 "acf" (i 0) =% i 0)
        [
          for_ "k" (i 0) (i 8) [ setidx32 "refl" (v "k") (i 0) ];
          ret0;
        ];
      for_ "k" (i 0) (i 9)
        [
          setidx32 "pp" (v "k") (idx32 "acf" (v "k"));
          setidx32 "kk" (v "k") (idx32 "acf" (v "k"));
        ];
      for_ "n" (i 0) (i 8)
        [
          let_ "den" (idx32 "pp" (i 0));
          when_ (v "den" =% i 0)
            [ setidx32 "refl" (v "n") (i 0); continue_ ];
          let_ "num" (idx32 "kk" (i 1));
          (* r = -num/den in Q12 *)
          let_ "r" (neg (shl (v "num") (i 12)) /% v "den");
          when_ (v "r" >% i 4095) [ set "r" (i 4095) ];
          when_ (v "r" <% neg (i 4095)) [ set "r" (neg (i 4095)) ];
          setidx32 "refl" (v "n") (v "r");
          (* update recursions *)
          for_ "m" (i 0) (i (8 - 1))
            [
              let_ "p0" (idx32 "pp" (v "m"));
              let_ "k1" (idx32 "kk" (v "m" +% i 1));
              setidx32 "pp" (v "m")
                (v "p0" +% sar (v "k1" *% v "r") (i 12));
              setidx32 "kk" (v "m" +% i 1)
                (v "k1" +% sar (v "p0" *% v "r") (i 12));
            ];
        ];
    ]

(* log-area-ratio-flavoured companding of the reflection coefficients *)
let lar_quantize =
  func "lar_quant" []
    [
      for_ "k" (i 0) (i 8)
        [
          let_ "r" (idx32 "refl" (v "k"));
          let_ "a" (v "r");
          when_ (v "a" <% i 0) [ set "a" (neg (v "a")) ];
          let_ "l" (i 0);
          if_ (v "a" <% i 2731) [ set "l" (v "a") ]
            [
              if_ (v "a" <% i 3544)
                [ set "l" (shl (v "a") (i 1) -% i 2731) ]
                [ set "l" (shl (v "a") (i 2) -% i 9819) ];
            ];
          when_ (v "r" <% i 0) [ set "l" (neg (v "l")) ];
          (* 6-bit code *)
          setidx32 "lar" (v "k") (sar (v "l") (i 7));
        ];
    ]

let ltp_search =
  func "ltp" [ "sub" ]
    [
      let_ "base" (v "sub" *% i subframe);
      let_ "best" (i 40);
      let_ "bestc" (i 0);
      let_ "lag" (i 40);
      while_ (v "lag" <=% i 120)
        [
          let_ "acc" (i 0);
          for_ "k" (i 0) (i subframe)
            [
              (* history index is in [40, 320): one conditional fold *)
              let_ "hidx" (v "base" +% v "k" -% v "lag" +% i frame);
              when_ (v "hidx" >=% i frame)
                [ set "hidx" (v "hidx" -% i frame) ];
              set "acc"
                (v "acc"
                +% idx32 "x" (v "base" +% v "k")
                   *% idx32 "hist" (v "hidx"));
            ];
          when_ (v "acc" >% v "bestc")
            [ set "bestc" (v "acc"); set "best" (v "lag") ];
          set "lag" (v "lag" +% i 1);
        ];
      setidx32 "lags" (v "sub") (v "best");
      (* 2-bit gain from the normalized peak *)
      let_ "g" (i 0);
      when_ (v "bestc" >% i 100000) [ set "g" (i 1) ];
      when_ (v "bestc" >% i 400000) [ set "g" (i 2) ];
      when_ (v "bestc" >% i 1600000) [ set "g" (i 3) ];
      setidx32 "gains" (v "sub") (v "g");
    ]

let rpe_encode =
  func "rpe_enc" [ "sub" ]
    [
      let_ "base" (v "sub" *% i subframe);
      (* choose the decimation grid with the most energy *)
      let_ "bestg" (i 0);
      let_ "beste" (i 0);
      for_ "g" (i 0) (i 3)
        [
          let_ "e" (i 0);
          let_ "k" (v "g");
          while_ (v "k" <% i subframe)
            [
              let_ "s" (idx32 "x" (v "base" +% v "k"));
              set "e" (v "e" +% sar (v "s" *% v "s") (i 4));
              set "k" (v "k" +% i 3);
            ];
          when_ (v "e" >% v "beste")
            [ set "beste" (v "e"); set "bestg" (v "g") ];
        ];
      setidx32 "grid" (v "sub") (v "bestg");
      (* block max *)
      let_ "mx" (i 1);
      let_ "k" (v "bestg");
      while_ (v "k" <% i subframe)
        [
          let_ "a" (idx32 "x" (v "base" +% v "k"));
          when_ (v "a" <% i 0) [ set "a" (neg (v "a")) ];
          when_ (v "a" >% v "mx") [ set "mx" (v "a") ];
          set "k" (v "k" +% i 3);
        ];
      setidx32 "xmax" (v "sub") (v "mx");
      (* APCM: 3-bit quantization against the block max *)
      let_ "j" (i 0);
      set "k" (v "bestg");
      while_ (v "k" <% i subframe)
        [
          let_ "s" (idx32 "x" (v "base" +% v "k"));
          let_ "q" (shl (v "s") (i 2) /% v "mx");
          when_ (v "q" >% i 3) [ set "q" (i 3) ];
          when_ (v "q" <% neg (i 4)) [ set "q" (neg (i 4)) ];
          setidx32 "rpe" (v "sub" *% i 13 +% v "j") (band (v "q") (i 7));
          set "j" (v "j" +% i 1);
          set "k" (v "k" +% i 3);
        ];
    ]

let frame_encode =
  func "encode_frame" [ "off" ]
    [
      do_ "preprocess" [ v "off" ];
      do_ "autocorr" [];
      do_ "schur" [];
      do_ "lar_quant" [];
      for_ "sub" (i 0) (i 4)
        [ do_ "ltp" [ v "sub" ]; do_ "rpe_enc" [ v "sub" ] ];
      (* update LTP history with the (roughly reconstructed) excitation *)
      for_ "k" (i 0) (i frame) [ setidx32 "hist" (v "k") (idx32 "x" (v "k")) ];
      (* frame checksum over all coded parameters *)
      let_ "cks" (i 0);
      for_ "k" (i 0) (i 8)
        [ set "cks" (bxor (v "cks" *% i 31) (idx32 "lar" (v "k"))) ];
      for_ "s" (i 0) (i 4)
        [
          set "cks" (bxor (v "cks" *% i 31) (idx32 "lags" (v "s")));
          set "cks" (bxor (v "cks" *% i 31) (idx32 "gains" (v "s")));
          set "cks" (bxor (v "cks" *% i 31) (idx32 "grid" (v "s")));
          for_ "j" (i 0) (i 13)
            [
              set "cks"
                (bxor (v "cks" *% i 31) (idx32 "rpe" (v "s" *% i 13 +% v "j")));
            ];
        ];
      ret (v "cks");
    ]

let frame_decode =
  func "decode_frame" []
    [
      (* inverse APCM + grid placement + LTP contribution + de-emphasis *)
      let_ "emph" (i 0);
      for_ "k" (i 0) (i frame) [ setidx32 "outsp" (v "k") (i 0) ];
      for_ "sub" (i 0) (i 4)
        [
          let_ "base" (v "sub" *% i subframe);
          let_ "g" (idx32 "grid" (v "sub"));
          let_ "mx" (idx32 "xmax" (v "sub"));
          let_ "j" (i 0);
          let_ "k" (v "g");
          while_ (v "k" <% i subframe)
            [
              let_ "q" (idx32 "rpe" (v "sub" *% i 13 +% v "j"));
              (* sign-extend the 3-bit code *)
              when_ (v "q" >% i 3) [ set "q" (v "q" -% i 8) ];
              setidx32 "outsp" (v "base" +% v "k")
                (sar (v "q" *% v "mx") (i 2));
              set "j" (v "j" +% i 1);
              set "k" (v "k" +% i 3);
            ];
          (* add scaled LTP history at the coded lag *)
          let_ "lag" (idx32 "lags" (v "sub"));
          let_ "gain" (idx32 "gains" (v "sub"));
          for_ "k2" (i 0) (i subframe)
            [
              let_ "hidx" (v "base" +% v "k2" -% v "lag" +% i frame);
              when_ (v "hidx" >=% i frame)
                [ set "hidx" (v "hidx" -% i frame) ];
              setidx32 "outsp" (v "base" +% v "k2")
                (idx32 "outsp" (v "base" +% v "k2")
                +% sar (idx32 "hist" (v "hidx") *% v "gain") (i 2));
            ];
        ];
      (* de-emphasis *)
      let_ "cks" (i 0);
      for_ "k" (i 0) (i frame)
        [
          let_ "s" (idx32 "outsp" (v "k") +% sar (v "emph" *% i 28180) (i 15));
          set "emph" (v "s");
          set "cks" (bxor (v "cks" *% i 33) (band (v "s") (i 0xFFFF)));
        ];
      ret (v "cks");
    ]

let program_encode ~scale =
  let frames = 4 * scale in
  program
    (common_globals ~frames ~seed:0x65E)
    [
      preprocess; autocorrelation; schur; lar_quantize; ltp_search;
      rpe_encode; frame_encode;
      func "main" []
        [
          let_ "acc" (i 0);
          for_ "f" (i 0) (i frames)
            [
              set "acc"
                (bxor (v "acc" *% i 7)
                   (call "encode_frame" [ v "f" *% i frame ]));
            ];
          print_int (v "acc");
        ];
    ]

let program_decode ~scale =
  let frames = 4 * scale in
  program
    (common_globals ~frames ~seed:0x65D)
    [
      preprocess; autocorrelation; schur; lar_quantize; ltp_search;
      rpe_encode; frame_encode; frame_decode;
      func "main" []
        [
          let_ "acc" (i 0);
          for_ "f" (i 0) (i frames)
            [
              do_ "encode_frame" [ v "f" *% i frame ];
              set "acc" (bxor (v "acc" *% i 7) (call "decode_frame" []));
            ];
          print_int (v "acc");
        ];
    ]
