(** MiBench telecomm/gsm: a GSM-06.10-flavoured RPE-LTP voice codec in
    fixed point (preprocessing, autocorrelation, Schur recursion, LAR
    quantization, LTP lag search, RPE grid selection + APCM).  The paper's
    power study keeps only the decoder, renamed "gsm". *)

val name_encode : string
val name_decode : string
val program_encode : scale:int -> Pf_kir.Ast.program
val program_decode : scale:int -> Pf_kir.Ast.program
