(* MiBench office/ispell: dictionary spell check — a chained hash table of
   words, lookups over a text with simple suffix stripping ("-s", "-ed",
   "-ing") for near-miss acceptance, as the real ispell's affix logic
   does in miniature. *)

open Pf_kir.Build

let name = "ispell"

let dict_words = 600
let buckets = 256
let word_bytes = 12    (* fixed slot: length byte + up to 11 chars *)

let build_dictionary ~seed =
  (* draw words from the same text distribution the check text uses *)
  let text = Gen.text ~seed (dict_words * 16) in
  let words = ref [] in
  let cur = Buffer.create 12 in
  Array.iter
    (fun c ->
      if c = Char.code ' ' then begin
        if Buffer.length cur >= 2 && List.length !words < dict_words then
          words := Buffer.contents cur :: !words;
        Buffer.clear cur
      end
      else if Buffer.length cur < 11 then Buffer.add_char cur (Char.chr c))
    text;
  List.rev !words

let program ~scale =
  let text_len = 8192 * scale in
  let dict = build_dictionary ~seed:0x15BE11 in
  let slots = Array.make (dict_words * word_bytes) 0 in
  List.iteri
    (fun idx w ->
      let base = idx * word_bytes in
      slots.(base) <- String.length w;
      String.iteri (fun j c -> slots.(base + 1 + j) <- Char.code c) w)
    dict;
  program
    [
      garray_init "slots" W8 slots;
      garray "heads" W32 buckets;       (* bucket -> slot index + 1 *)
      garray "next" W32 dict_words;     (* chain links, slot index + 1 *)
      garray_init "text" W8 (Gen.text ~seed:0x7E57 text_len);
      garray "word" W8 16;
    ]
    [
      func "hash" [ "ptr"; "len" ]
        [
          let_ "h" (i 5381);
          for_ "k" (i 0) (v "len")
            [
              set "h"
                (bxor (v "h" *% i 33) (load8u (v "ptr" +% v "k")));
            ];
          ret (band (v "h") (i (buckets - 1)));
        ];
      func "dict_insert" [ "slot" ]
        [
          let_ "base" (gaddr "slots" +% v "slot" *% i word_bytes);
          let_ "h" (call "hash" [ v "base" +% i 1; load8u (v "base") ]);
          setidx32 "next" (v "slot") (idx32 "heads" (v "h"));
          setidx32 "heads" (v "h") (v "slot" +% i 1);
        ];
      func "dict_lookup" [ "ptr"; "len" ]
        [
          when_ (bor (v "len" <% i 1) (v "len" >% i 11) <>% i 0)
            [ ret (i 0) ];
          let_ "h" (call "hash" [ v "ptr"; v "len" ]);
          let_ "cur" (idx32 "heads" (v "h"));
          while_ (v "cur" <>% i 0)
            [
              let_ "slot" (v "cur" -% i 1);
              let_ "base" (gaddr "slots" +% v "slot" *% i word_bytes);
              when_ (load8u (v "base") =% v "len")
                [
                  let_ "k" (i 0);
                  while_ (v "k" <% v "len")
                    [
                      when_
                        (load8u (v "base" +% i 1 +% v "k")
                        <>% load8u (v "ptr" +% v "k"))
                        [ break_ ];
                      incr_ "k";
                    ];
                  when_ (v "k" =% v "len") [ ret (i 1) ];
                ];
              set "cur" (idx32 "next" (v "slot"));
            ];
          ret (i 0);
        ];
      (* accept word, word-s, word-ed, word-ing *)
      func "check_word" [ "ptr"; "len" ]
        [
          when_ (call "dict_lookup" [ v "ptr"; v "len" ] <>% i 0)
            [ ret (i 1) ];
          when_
            (band (v "len" >% i 2)
               (load8u (v "ptr" +% v "len" -% i 1) =% i (Char.code 's'))
            <>% i 0)
            [
              when_ (call "dict_lookup" [ v "ptr"; v "len" -% i 1 ] <>% i 0)
                [ ret (i 1) ];
            ];
          when_
            (band (v "len" >% i 3)
               (band
                  (load8u (v "ptr" +% v "len" -% i 2) =% i (Char.code 'e'))
                  (load8u (v "ptr" +% v "len" -% i 1) =% i (Char.code 'd')))
            <>% i 0)
            [
              when_ (call "dict_lookup" [ v "ptr"; v "len" -% i 2 ] <>% i 0)
                [ ret (i 1) ];
            ];
          when_ (v "len" >% i 4)
            [
              when_
                (band
                   (load8u (v "ptr" +% v "len" -% i 3) =% i (Char.code 'i'))
                   (band
                      (load8u (v "ptr" +% v "len" -% i 2)
                      =% i (Char.code 'n'))
                      (load8u (v "ptr" +% v "len" -% i 1)
                      =% i (Char.code 'g')))
                <>% i 0)
                [
                  when_
                    (call "dict_lookup" [ v "ptr"; v "len" -% i 3 ] <>% i 0)
                    [ ret (i 1) ];
                ];
            ];
          ret (i 0);
        ];
      func "main" []
        [
          for_ "s" (i 0) (i dict_words) [ do_ "dict_insert" [ v "s" ] ];
          let_ "good" (i 0);
          let_ "bad" (i 0);
          let_ "p" (gaddr "text");
          let_ "endp" (gaddr "text" +% i text_len);
          while_ (ult (v "p") (v "endp"))
            [
              (* skip separators *)
              while_
                (band (ult (v "p") (v "endp"))
                   (load8u (v "p") =% i (Char.code ' '))
                <>% i 0)
                [ set "p" (v "p" +% i 1) ];
              when_ (uge (v "p") (v "endp")) [ break_ ];
              let_ "start" (v "p");
              while_
                (band (ult (v "p") (v "endp"))
                   (load8u (v "p") <>% i (Char.code ' '))
                <>% i 0)
                [ set "p" (v "p" +% i 1) ];
              if_ (call "check_word" [ v "start"; v "p" -% v "start" ] <>% i 0)
                [ incr_ "good" ]
                [ incr_ "bad" ];
            ];
          print_int (v "good");
          print_int (v "bad");
        ];
    ]
