(** MiBench office/ispell: chained-hash dictionary spell check with
    miniature affix stripping ("-s", "-ed", "-ing"). *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
