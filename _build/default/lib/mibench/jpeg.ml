(* MiBench consumer/jpeg (encoder core): per-8x8-block level shift, 2-D
   integer DCT (Q13 cosine table), reciprocal-multiply quantization,
   zigzag reordering, and run-length + category bit packing into an
   output stream — the compute pipeline of cjpeg's inner loop. *)

open Pf_kir.Build

let name = "jpeg"

let width = 64
let height = 64

(* C[u*8+x] = c(u)/2 * cos((2x+1) u pi / 16) in Q13 *)
let dct_table =
  Array.init 64 (fun idx ->
      let u = idx / 8 and x = idx mod 8 in
      let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
      let v =
        0.5 *. cu
        *. cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int u *. Float.pi /. 16.0)
      in
      int_of_float (Float.round (v *. 8192.0)) land 0xFFFFFFFF)

let quant_table =
  [|
    16; 11; 10; 16; 24; 40; 51; 61;
    12; 12; 14; 19; 26; 58; 60; 55;
    14; 13; 16; 24; 40; 57; 69; 56;
    14; 17; 22; 29; 51; 87; 80; 62;
    18; 22; 37; 56; 68; 109; 103; 77;
    24; 35; 55; 64; 81; 104; 113; 92;
    49; 64; 78; 87; 103; 121; 120; 101;
    72; 92; 95; 98; 112; 100; 103; 99;
  |]

let recip_table = Array.map (fun q -> (1 lsl 16) / q) quant_table

let zigzag =
  [|
    0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5;
    12; 19; 26; 33; 40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28;
    35; 42; 49; 56; 57; 50; 43; 36; 29; 22; 15; 23; 30; 37; 44; 51;
    58; 59; 52; 45; 38; 31; 39; 46; 53; 60; 61; 54; 47; 55; 62; 63;
  |]

let program ~scale =
  let images = scale in
  program
    [
      garray_init "img" W8 (Gen.image8 ~seed:0x91E6 ~width ~height);
      garray "blk" W32 64;      (* current block, level-shifted *)
      garray "tmp" W32 64;      (* DCT intermediate *)
      garray "coef" W32 64;     (* quantized, zigzagged *)
      garray_init "dctc" W32 dct_table;
      garray_init "recip" W32 recip_table;
      garray_init "qtab" W32 quant_table;
      garray_init "zig" W32 zigzag;
      garray "out" W8 16384;
      garray "bits" W32 3;      (* bitbuf, bitcnt, outpos *)
    ]
    [
      (* append [n] low bits of [val] to the output stream *)
      func "put_bits" [ "value"; "n" ]
        [
          let_ "buf"
            (bor
               (shl (idx32 "bits" (i 0)) (v "n"))
               (band (v "value") (shl (i 1) (v "n") -% i 1)));
          let_ "cnt" (idx32 "bits" (i 1) +% v "n");
          while_ (v "cnt" >=% i 8)
            [
              set "cnt" (v "cnt" -% i 8);
              let_ "pos" (idx32 "bits" (i 2));
              setidx8 "out" (v "pos")
                (band (shr (v "buf") (v "cnt")) (i 255));
              setidx32 "bits" (i 2) (v "pos" +% i 1);
            ];
          setidx32 "bits" (i 0)
            (band (v "buf") (shl (i 1) (v "cnt") -% i 1));
          setidx32 "bits" (i 1) (v "cnt");
        ];
      (* 1-D DCT of 8 values: src/dst strides allow row and column passes *)
      func "dct8" [ "src"; "dst"; "sstep"; "dstep" ]
        [
          for_ "u" (i 0) (i 8)
            [
              let_ "acc" (i 0);
              for_ "x" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    +% load32 (v "src" +% v "x" *% v "sstep")
                       *% idx32 "dctc" (shl (v "u") (i 3) +% v "x"));
                ];
              store32 (v "dst" +% v "u" *% v "dstep") (sar (v "acc") (i 13));
            ];
        ];
      func "encode_block" [ "bx"; "by" ]
        [
          (* load and level-shift *)
          for_ "y" (i 0) (i 8)
            [
              for_ "x" (i 0) (i 8)
                [
                  setidx32 "blk"
                    (shl (v "y") (i 3) +% v "x")
                    (idx8 "img"
                       ((v "by" *% i 8 +% v "y") *% i width
                       +% v "bx" *% i 8 +% v "x")
                    -% i 128);
                ];
            ];
          (* rows then columns *)
          for_ "r" (i 0) (i 8)
            [
              do_ "dct8"
                [
                  gaddr "blk" +% shl (v "r") (i 5); gaddr "tmp" +% shl (v "r") (i 5);
                  i 4; i 4;
                ];
            ];
          for_ "c" (i 0) (i 8)
            [
              do_ "dct8"
                [
                  gaddr "tmp" +% shl (v "c") (i 2); gaddr "blk" +% shl (v "c") (i 2);
                  i 32; i 32;
                ];
            ];
          (* quantize (reciprocal multiply) into zigzag order *)
          for_ "k" (i 0) (i 64)
            [
              let_ "src" (idx32 "zig" (v "k"));
              let_ "cf" (idx32 "blk" (v "src"));
              let_ "neg" (i 0);
              when_ (v "cf" <% i 0) [ set "neg" (i 1); set "cf" (neg (v "cf")) ];
              let_ "q" (shr (v "cf" *% idx32 "recip" (v "src")) (i 16));
              when_ (v "neg" <>% i 0) [ set "q" (neg (v "q")) ];
              setidx32 "coef" (v "k") (v "q");
            ];
          (* run-length + category coding *)
          let_ "run" (i 0);
          for_ "k" (i 0) (i 64)
            [
              let_ "q" (idx32 "coef" (v "k"));
              if_ (v "q" =% i 0) [ incr_ "run" ]
                [
                  while_ (v "run" >% i 15)
                    [
                      do_ "put_bits" [ i 0xF0; i 8 ];
                      set "run" (v "run" -% i 16);
                    ];
                  let_ "a" (v "q");
                  when_ (v "a" <% i 0) [ set "a" (neg (v "a")) ];
                  let_ "cat" (i 0);
                  let_ "m" (v "a");
                  while_ (v "m" <>% i 0)
                    [ incr_ "cat"; set "m" (shr (v "m") (i 1)) ];
                  do_ "put_bits"
                    [ bor (shl (v "run") (i 4)) (v "cat"); i 8 ];
                  (* one's-complement negative convention, like JPEG *)
                  when_ (v "q" <% i 0) [ set "a" (bnot (v "a")) ];
                  do_ "put_bits" [ v "a"; v "cat" ];
                  set "run" (i 0);
                ];
            ];
          do_ "put_bits" [ i 0; i 8 ];  (* end-of-block *)
        ];
      (* dequantize + inverse DCT: the encoder's distortion feedback loop *)
      func "idct8" [ "src"; "dst"; "sstep"; "dstep" ]
        [
          for_ "x" (i 0) (i 8)
            [
              let_ "acc" (i 0);
              for_ "u" (i 0) (i 8)
                [
                  set "acc"
                    (v "acc"
                    +% load32 (v "src" +% v "u" *% v "sstep")
                       *% idx32 "dctc" (shl (v "u") (i 3) +% v "x"));
                ];
              store32 (v "dst" +% v "x" *% v "dstep") (sar (v "acc") (i 12));
            ];
        ];
      func "reconstruct_error" [ "bx"; "by" ]
        [
          (* dequantize back out of zigzag order *)
          for_ "k" (i 0) (i 64)
            [
              let_ "dstq" (idx32 "zig" (v "k"));
              setidx32 "tmp" (v "dstq")
                (idx32 "coef" (v "k") *% idx32 "qtab" (v "dstq"));
            ];
          for_ "r" (i 0) (i 8)
            [
              do_ "idct8"
                [
                  gaddr "tmp" +% shl (v "r") (i 2); gaddr "blk" +% shl (v "r") (i 2);
                  i 32; i 32;
                ];
            ];
          for_ "c" (i 0) (i 8)
            [
              do_ "idct8"
                [
                  gaddr "blk" +% shl (v "c") (i 5); gaddr "tmp" +% shl (v "c") (i 5);
                  i 4; i 4;
                ];
            ];
          (* squared error against the source block *)
          let_ "err" (i 0);
          for_ "y" (i 0) (i 8)
            [
              for_ "x" (i 0) (i 8)
                [
                  let_ "orig"
                    (idx8 "img"
                       ((v "by" *% i 8 +% v "y") *% i width
                       +% v "bx" *% i 8 +% v "x")
                    -% i 128);
                  let_ "rec"
                    (sar (idx32 "tmp" (shl (v "y") (i 3) +% v "x")) (i 2));
                  let_ "d" (v "orig" -% v "rec");
                  set "err" (v "err" +% v "d" *% v "d");
                ];
            ];
          ret (v "err");
        ];
      func "main" []
        [
          for_ "pass" (i 0) (i images)
            [
              setidx32 "bits" (i 0) (i 0);
              setidx32 "bits" (i 1) (i 0);
              setidx32 "bits" (i 2) (i 0);
              let_ "sse" (i 0);
              for_ "by" (i 0) (i (height / 8))
                [
                  for_ "bx" (i 0) (i (width / 8))
                    [
                      do_ "encode_block" [ v "bx"; v "by" ];
                      set "sse"
                        (v "sse"
                        +% call "reconstruct_error" [ v "bx"; v "by" ]);
                    ];
                ];
              print_int (udiv (v "sse") (i (width * height)));
              let_ "bytes" (idx32 "bits" (i 2));
              print_int (v "bytes");
              let_ "cks" (i 0);
              for_ "k" (i 0) (v "bytes")
                [ set "cks" (bxor (v "cks" *% i 31) (idx8 "out" (v "k"))) ];
              print_int (v "cks");
            ];
        ];
    ]
