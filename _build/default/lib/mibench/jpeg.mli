(** MiBench consumer/jpeg (encoder core): per-8x8-block level shift, 2-D
    integer DCT (Q13), reciprocal-multiply quantization, zigzag + RLE +
    category bit packing, plus the dequantize/inverse-DCT distortion
    loop.  The largest I-footprint in the suite — the benchmark whose
    working set exceeds an 8 KB cache in ARM form but not in FITS form
    (the Figure 13 crossover). *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
