(* MiBench consumer/lame (encoder core): the MP3 front end in fixed point —
   512-tap windowing, 32-subband analysis matrixing (Q14 cosine bank),
   per-band scalefactor extraction and bit allocation by relative band
   energy, then quantization of the subband samples to the allocated
   widths with a final bit count. *)

open Pf_kir.Build

let name = "lame"

let taps = 512
let bands = 32

(* analysis window: sine window tapered (Q14) *)
let window_q14 =
  Array.init taps (fun k ->
      let x = (float_of_int k +. 0.5) /. float_of_int taps in
      let w = sin (Float.pi *. x) *. 0.9 in
      int_of_float (Float.round (w *. 16384.0)) land 0xFFFFFFFF)

(* matrixing bank: M[b][j] = cos((2b+1)(j-16) pi / 64), Q14, 32x64 *)
let bank_q14 =
  Array.init (bands * 64) (fun idx ->
      let b = idx / 64 and j = idx mod 64 in
      let v =
        cos
          (float_of_int ((2 * b) + 1)
          *. float_of_int (j - 16)
          *. Float.pi /. 64.0)
      in
      int_of_float (Float.round (v *. 16384.0)) land 0xFFFFFFFF)

let program ~scale =
  let granules = 8 * scale in
  let nsamples = taps + (32 * granules) in
  program
    [
      garray_init "pcm" W16 (Gen.samples16 ~seed:0x1A3E nsamples);
      garray_init "win" W32 window_q14;
      garray_init "bank" W32 bank_q14;
      garray "z" W32 taps;
      garray "y" W32 64;
      garray "sb" W32 bands;        (* subband samples of this granule *)
      garray "energy" W32 bands;
      garray "alloc" W32 bands;
    ]
    [
      (* one granule of polyphase analysis at sample offset [off] *)
      func "analyze" [ "off" ]
        [
          for_ "k" (i 0) (i taps)
            [
              let_ "x"
                (load16s (gaddr "pcm" +% shl (v "off" +% v "k") (i 1)));
              setidx32 "z" (v "k")
                (sar (v "x" *% idx32 "win" (v "k")) (i 14));
            ];
          for_ "j" (i 0) (i 64)
            [
              let_ "acc" (i 0);
              let_ "m" (i 0);
              while_ (v "m" <% i 8)
                [
                  set "acc"
                    (v "acc" +% idx32 "z" (v "j" +% shl (v "m") (i 6)));
                  incr_ "m";
                ];
              setidx32 "y" (v "j") (sar (v "acc") (i 3));
            ];
          for_ "b" (i 0) (i bands)
            [
              let_ "acc" (i 0);
              for_ "j" (i 0) (i 64)
                [
                  set "acc"
                    (v "acc"
                    +% sar
                         (idx32 "y" (v "j")
                         *% idx32 "bank" (shl (v "b") (i 6) +% v "j"))
                         (i 14));
                ];
              setidx32 "sb" (v "b") (v "acc");
            ];
        ];
      (* scalefactor: position of the highest magnitude bit per band *)
      func "scalefactors" []
        [
          for_ "b" (i 0) (i bands)
            [
              let_ "a" (idx32 "sb" (v "b"));
              when_ (v "a" <% i 0) [ set "a" (neg (v "a")) ];
              let_ "sf" (i 0);
              while_ (v "a" <>% i 0)
                [ incr_ "sf"; set "a" (shr (v "a") (i 1)) ];
              setidx32 "energy" (v "b")
                (idx32 "energy" (v "b") +% v "sf");
            ];
        ];
      (* crude psychoacoustic stand-in: bits by energy above the mean *)
      func "allocate" []
        [
          let_ "mean" (i 0);
          for_ "b" (i 0) (i bands)
            [ set "mean" (v "mean" +% idx32 "energy" (v "b")) ];
          set "mean" (v "mean" /% i bands);
          for_ "b" (i 0) (i bands)
            [
              let_ "d" (idx32 "energy" (v "b") -% v "mean");
              let_ "bits" (i 4 +% sar (v "d") (i 2));
              when_ (v "bits" <% i 0) [ set "bits" (i 0) ];
              when_ (v "bits" >% i 12) [ set "bits" (i 12) ];
              setidx32 "alloc" (v "b") (v "bits");
            ];
        ];
      func "quantize" []
        [
          let_ "total" (i 0);
          let_ "cks" (i 0);
          for_ "b" (i 0) (i bands)
            [
              let_ "bits" (idx32 "alloc" (v "b"));
              when_ (v "bits" >% i 0)
                [
                  let_ "s" (idx32 "sb" (v "b"));
                  let_ "q" (sar (v "s") (i 16 -% v "bits"));
                  set "cks" (bxor (v "cks" *% i 33) (v "q"));
                  set "total" (v "total" +% v "bits");
                ];
            ];
          setidx32 "energy" (i 0)
            (bxor (idx32 "energy" (i 0)) (band (v "cks") (i 0xFF)));
          ret (v "total");
        ];
      (* short-block path: three half-length transforms with attack
         detection, as the encoder's window switching does *)
      func "analyze_short" [ "off" ]
        [
          for_ "w" (i 0) (i 3)
            [
              for_ "k" (i 0) (i (taps / 4))
                [
                  let_ "x"
                    (load16s
                       (gaddr "pcm"
                       +% shl (v "off" +% shl (v "w") (i 4) +% v "k") (i 1)));
                  setidx32 "z" (v "k")
                    (sar (v "x" *% idx32 "win" (shl (v "k") (i 2))) (i 14));
                ];
              for_ "b" (i 0) (i bands)
                [
                  let_ "acc" (i 0);
                  let_ "j" (i 0);
                  while_ (v "j" <% i 16)
                    [
                      set "acc"
                        (v "acc"
                        +% sar
                             (idx32 "z" (shl (v "j") (i 3))
                             *% idx32 "bank" (shl (v "b") (i 6) +% v "j"))
                             (i 14));
                      incr_ "j";
                    ];
                  setidx32 "sb" (v "b")
                    (bxor (idx32 "sb" (v "b")) (v "acc"));
                ];
            ];
        ];
      (* attack detector: energy ratio between granule halves *)
      func "is_attack" [ "off" ]
        [
          let_ "e1" (i 0);
          let_ "e2" (i 0);
          for_ "k" (i 0) (i 16)
            [
              let_ "a" (load16s (gaddr "pcm" +% shl (v "off" +% v "k") (i 1)));
              set "e1" (v "e1" +% sar (v "a" *% v "a") (i 6));
              let_ "b2"
                (load16s
                   (gaddr "pcm" +% shl (v "off" +% i 16 +% v "k") (i 1)));
              set "e2" (v "e2" +% sar (v "b2" *% v "b2") (i 6));
            ];
          ret (v "e2" >% v "e1" *% i 4);
        ];
      func "main" []
        [
          let_ "bits_used" (i 0);
          let_ "shorts" (i 0);
          for_ "g" (i 0) (i granules)
            [
              do_ "analyze" [ shl (v "g") (i 5) ];
              when_ (call "is_attack" [ shl (v "g") (i 5) ] <>% i 0)
                [
                  do_ "analyze_short" [ shl (v "g") (i 5) ];
                  incr_ "shorts";
                ];
              do_ "scalefactors" [];
              do_ "allocate" [];
              set "bits_used" (v "bits_used" +% call "quantize" []);
            ];
          print_int (v "shorts");
          print_int (v "bits_used");
          let_ "e" (i 0);
          for_ "b" (i 0) (i bands)
            [ set "e" (bxor (v "e" *% i 17) (idx32 "energy" (v "b"))) ];
          print_int (v "e");
        ];
    ]
