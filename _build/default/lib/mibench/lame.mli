(** MiBench consumer/lame (MP3 front end): 512-tap windowing, 32-subband
    analysis matrixing (Q14), attack detection with a short-block path,
    scalefactors, energy-proportional bit allocation and quantization. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
