(* MiBench network/patricia: crit-bit (PATRICIA) trie over 32-bit keys
   (IP addresses in the original), array-backed nodes, insert + lookup
   streams with hit/miss accounting. *)

open Pf_kir.Build

let name = "patricia"

let program ~scale =
  let inserts = 1200 * scale in
  let lookups = 2 * inserts in
  let pool = (2 * inserts) + 4 in
  program
    [
      (* node arrays: internal nodes branch on [bit]; leaves hold [key].
         kind: 0 = free, 1 = internal, 2 = leaf *)
      garray "kind" W32 pool;
      garray "nbit" W32 pool;
      garray "left" W32 pool;
      garray "right" W32 pool;
      garray "nkey" W32 pool;
      garray "root" W32 1;
      garray "nnodes" W32 1;
    ]
    [
      func "alloc" []
        [
          let_ "n" (idx32 "nnodes" (i 0));
          setidx32 "nnodes" (i 0) (v "n" +% i 1);
          ret (v "n");
        ];
      func "walk" [ "key" ]
        [
          (* descend to the closest leaf *)
          let_ "n" (idx32 "root" (i 0));
          while_ (idx32 "kind" (v "n") =% i 1)
            [
              if_
                (band (shr (v "key") (idx32 "nbit" (v "n"))) (i 1) <>% i 0)
                [ set "n" (idx32 "right" (v "n")) ]
                [ set "n" (idx32 "left" (v "n")) ];
            ];
          ret (v "n");
        ];
      func "lookup" [ "key" ]
        [
          when_ (idx32 "root" (i 0) =% i 0) [ ret (i 0) ];
          let_ "leaf" (call "walk" [ v "key" ]);
          ret (idx32 "nkey" (v "leaf") =% v "key");
        ];
      func "insert" [ "key" ]
        [
          when_ (idx32 "root" (i 0) =% i 0)
            [
              let_ "leaf" (call "alloc" []);
              setidx32 "kind" (v "leaf") (i 2);
              setidx32 "nkey" (v "leaf") (v "key");
              setidx32 "root" (i 0) (v "leaf");
              ret (i 1);
            ];
          let_ "near" (idx32 "nkey" (call "walk" [ v "key" ]));
          when_ (v "near" =% v "key") [ ret (i 0) ];
          (* highest differing bit *)
          let_ "diff" (bxor (v "near") (v "key"));
          let_ "bitn" (i 31);
          while_ (band (shr (v "diff") (v "bitn")) (i 1) =% i 0)
            [ set "bitn" (v "bitn" -% i 1) ];
          (* re-descend until the branch bit is below bitn *)
          let_ "parent" (i (-1));
          let_ "cur" (idx32 "root" (i 0));
          while_
            (band (idx32 "kind" (v "cur") =% i 1)
               (idx32 "nbit" (v "cur") >% v "bitn")
            <>% i 0)
            [
              set "parent" (v "cur");
              if_
                (band (shr (v "key") (idx32 "nbit" (v "cur"))) (i 1) <>% i 0)
                [ set "cur" (idx32 "right" (v "cur")) ]
                [ set "cur" (idx32 "left" (v "cur")) ];
            ];
          let_ "leaf" (call "alloc" []);
          setidx32 "kind" (v "leaf") (i 2);
          setidx32 "nkey" (v "leaf") (v "key");
          let_ "inner" (call "alloc" []);
          setidx32 "kind" (v "inner") (i 1);
          setidx32 "nbit" (v "inner") (v "bitn");
          if_ (band (shr (v "key") (v "bitn")) (i 1) <>% i 0)
            [
              setidx32 "right" (v "inner") (v "leaf");
              setidx32 "left" (v "inner") (v "cur");
            ]
            [
              setidx32 "left" (v "inner") (v "leaf");
              setidx32 "right" (v "inner") (v "cur");
            ];
          if_ (v "parent" <% i 0)
            [ setidx32 "root" (i 0) (v "inner") ]
            [
              if_
                (band (shr (v "key") (idx32 "nbit" (v "parent"))) (i 1)
                <>% i 0)
                [ setidx32 "right" (v "parent") (v "inner") ]
                [ setidx32 "left" (v "parent") (v "inner") ];
            ];
          ret (i 1);
        ];
      func "main" []
        [
          setidx32 "nnodes" (i 0) (i 1);
          (* node 0 reserved as null *)
          let_ "seed" (i 0xACE1);
          let_ "added" (i 0);
          for_ "k" (i 0) (i inserts)
            [
              set "seed" (v "seed" *% i 1103515245 +% i 12345);
              set "added"
                (v "added" +% call "insert" [ band (v "seed") (i 0xFFFFF) ]);
            ];
          let_ "hits" (i 0);
          set "seed" (i 0xACE1);
          for_ "k" (i 0) (i lookups)
            [
              set "seed" (v "seed" *% i 1103515245 +% i 12345);
              let_ "key" (band (v "seed") (i 0xFFFFF));
              when_ (band (v "k") (i 1) =% i 1)
                [ set "key" (bxor (v "key") (i 0x55)) ];
              set "hits" (v "hits" +% call "lookup" [ v "key" ]);
            ];
          print_int (v "added");
          print_int (v "hits");
          print_int (idx32 "nnodes" (i 0));
        ];
    ]
