(** MiBench network/patricia: crit-bit (PATRICIA) trie over 32-bit keys
    with array-backed nodes; insert and lookup streams with hit/miss
    accounting. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
