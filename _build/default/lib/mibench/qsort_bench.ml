(* MiBench automotive/qsort: recursive quicksort (median-of-three pivot,
   insertion sort below a cutoff) over a pseudo-random word array, with a
   sortedness check and order-sensitive checksum. *)

open Pf_kir.Build

let name = "qsort"

let program ~scale =
  let n = 2048 * scale in
  program
    [ garray_init "arr" W32 (Gen.words ~seed:0x9507 n) ]
    [
      func "swap" [ "a"; "b" ]
        [
          let_ "t" (load32 (v "a"));
          store32 (v "a") (load32 (v "b"));
          store32 (v "b") (v "t");
        ];
      func "insertion" [ "lo"; "hi" ]
        [
          let_ "p" (v "lo" +% i 4);
          while_ (ule (v "p") (v "hi"))
            [
              let_ "key" (load32 (v "p"));
              let_ "q" (v "p" -% i 4);
              while_ (uge (v "q") (v "lo"))
                [
                  when_ (ule (load32 (v "q")) (v "key")) [ break_ ];
                  store32 (v "q" +% i 4) (load32 (v "q"));
                  set "q" (v "q" -% i 4);
                ];
              store32 (v "q" +% i 4) (v "key");
              set "p" (v "p" +% i 4);
            ];
        ];
      func "quicksort" [ "lo"; "hi" ]
        [
          when_ (ule (v "hi" -% v "lo") (i 40))
            [ do_ "insertion" [ v "lo"; v "hi" ]; ret0 ];
          (* median-of-three pivot selection *)
          let_ "mid" (v "lo" +% shl (shr (v "hi" -% v "lo") (i 3)) (i 2));
          when_ (ugt (load32 (v "lo")) (load32 (v "mid")))
            [ do_ "swap" [ v "lo"; v "mid" ] ];
          when_ (ugt (load32 (v "mid")) (load32 (v "hi")))
            [ do_ "swap" [ v "mid"; v "hi" ] ];
          when_ (ugt (load32 (v "lo")) (load32 (v "mid")))
            [ do_ "swap" [ v "lo"; v "mid" ] ];
          let_ "pivot" (load32 (v "mid"));
          let_ "a" (v "lo");
          let_ "b" (v "hi");
          while_ (i 1)
            [
              while_ (ult (load32 (v "a")) (v "pivot"))
                [ set "a" (v "a" +% i 4) ];
              while_ (ugt (load32 (v "b")) (v "pivot"))
                [ set "b" (v "b" -% i 4) ];
              when_ (uge (v "a") (v "b")) [ break_ ];
              do_ "swap" [ v "a"; v "b" ];
              set "a" (v "a" +% i 4);
              set "b" (v "b" -% i 4);
            ];
          do_ "quicksort" [ v "lo"; v "b" ];
          do_ "quicksort" [ v "b" +% i 4; v "hi" ];
        ];
      func "main" []
        [
          let_ "base" (gaddr "arr");
          do_ "quicksort" [ v "base"; v "base" +% i (4 * (n - 1)) ];
          let_ "sorted" (i 1);
          let_ "sum" (i 0);
          for_ "k" (i 0) (i (n - 1))
            [
              when_
                (ugt (idx32 "arr" (v "k")) (idx32 "arr" (v "k" +% i 1)))
                [ set "sorted" (i 0) ];
              set "sum"
                (bxor (v "sum" *% i 31) (idx32 "arr" (v "k")));
            ];
          print_int (v "sorted");
          print_int (v "sum");
        ];
    ]
