(** MiBench automotive/qsort: recursive quicksort (median-of-three +
    insertion sort below a cutoff) over a random word array; prints a
    sortedness flag and an order-sensitive checksum. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
