(* MiBench security/rijndael: AES-128, byte-oriented (real S-box computed
   over GF(2^8), key expansion, SubBytes/ShiftRows/MixColumns rounds) in
   ECB over a buffer.  The decode benchmark runs the inverse cipher and
   verifies the round trip. *)

open Pf_kir.Build

let name_encode = "rijndael.encode"
let name_decode = "rijndael.decode"

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let common_globals ~n ~seed =
  [
    garray_init "sbox" W8 Gen.aes_sbox;
    garray_init "inv_sbox" W8 Gen.aes_inv_sbox;
    garray_init "rcon" W8 rcon;
    garray_init "aes_key" W8 (Gen.bytes ~seed:0xAE5 16);
    garray "rk" W8 176;      (* 11 round keys *)
    garray_init "buf" W8 (Gen.bytes ~seed n);
    garray "st" W8 16;       (* the state block *)
  ]

(* xtime: multiply by 2 in GF(2^8) *)
let xtime =
  func "xtime" [ "x" ]
    [
      set "x" (shl (v "x") (i 1));
      when_ (band (v "x") (i 0x100) <>% i 0)
        [ set "x" (bxor (v "x") (i 0x11B)) ];
      ret (v "x");
    ]

let key_expand =
  func "key_expand" []
    [
      for_ "k" (i 0) (i 16) [ setidx8 "rk" (v "k") (idx8 "aes_key" (v "k")) ];
      for_ "w" (i 4) (i 44)
        [
          let_ "base" (shl (v "w") (i 2));
          let_ "prev" (v "base" -% i 4);
          let_ "b0" (idx8 "rk" (v "prev"));
          let_ "b1" (idx8 "rk" (v "prev" +% i 1));
          let_ "b2" (idx8 "rk" (v "prev" +% i 2));
          let_ "b3" (idx8 "rk" (v "prev" +% i 3));
          when_ (urem (v "w") (i 4) =% i 0)
            [
              (* RotWord + SubWord + Rcon *)
              let_ "t" (v "b0");
              set "b0"
                (bxor (idx8 "sbox" (v "b1"))
                   (idx8 "rcon" (udiv (v "w") (i 4) -% i 1)));
              set "b1" (idx8 "sbox" (v "b2"));
              set "b2" (idx8 "sbox" (v "b3"));
              set "b3" (idx8 "sbox" (v "t"));
            ];
          let_ "back" (v "base" -% i 16);
          setidx8 "rk" (v "base") (bxor (idx8 "rk" (v "back")) (v "b0"));
          setidx8 "rk" (v "base" +% i 1)
            (bxor (idx8 "rk" (v "back" +% i 1)) (v "b1"));
          setidx8 "rk" (v "base" +% i 2)
            (bxor (idx8 "rk" (v "back" +% i 2)) (v "b2"));
          setidx8 "rk" (v "base" +% i 3)
            (bxor (idx8 "rk" (v "back" +% i 3)) (v "b3"));
        ];
    ]

let add_round_key =
  func "add_round_key" [ "round" ]
    [
      let_ "base" (shl (v "round") (i 4));
      for_ "k" (i 0) (i 16)
        [
          setidx8 "st" (v "k")
            (bxor (idx8 "st" (v "k")) (idx8 "rk" (v "base" +% v "k")));
        ];
    ]

let sub_shift =
  (* SubBytes + ShiftRows fused (column-major state layout) *)
  func "sub_shift" []
    [
      for_ "k" (i 0) (i 16) [ setidx8 "st" (v "k") (idx8 "sbox" (idx8 "st" (v "k"))) ];
      (* row r rotates left by r; state index = col*4 + row *)
      let_ "t" (idx8 "st" (i 1));
      setidx8 "st" (i 1) (idx8 "st" (i 5));
      setidx8 "st" (i 5) (idx8 "st" (i 9));
      setidx8 "st" (i 9) (idx8 "st" (i 13));
      setidx8 "st" (i 13) (v "t");
      set "t" (idx8 "st" (i 2));
      setidx8 "st" (i 2) (idx8 "st" (i 10));
      setidx8 "st" (i 10) (v "t");
      set "t" (idx8 "st" (i 6));
      setidx8 "st" (i 6) (idx8 "st" (i 14));
      setidx8 "st" (i 14) (v "t");
      set "t" (idx8 "st" (i 15));
      setidx8 "st" (i 15) (idx8 "st" (i 11));
      setidx8 "st" (i 11) (idx8 "st" (i 7));
      setidx8 "st" (i 7) (idx8 "st" (i 3));
      setidx8 "st" (i 3) (v "t");
    ]

let inv_sub_shift =
  func "inv_sub_shift" []
    [
      (* inverse ShiftRows *)
      let_ "t" (idx8 "st" (i 13));
      setidx8 "st" (i 13) (idx8 "st" (i 9));
      setidx8 "st" (i 9) (idx8 "st" (i 5));
      setidx8 "st" (i 5) (idx8 "st" (i 1));
      setidx8 "st" (i 1) (v "t");
      set "t" (idx8 "st" (i 2));
      setidx8 "st" (i 2) (idx8 "st" (i 10));
      setidx8 "st" (i 10) (v "t");
      set "t" (idx8 "st" (i 6));
      setidx8 "st" (i 6) (idx8 "st" (i 14));
      setidx8 "st" (i 14) (v "t");
      set "t" (idx8 "st" (i 3));
      setidx8 "st" (i 3) (idx8 "st" (i 7));
      setidx8 "st" (i 7) (idx8 "st" (i 11));
      setidx8 "st" (i 11) (idx8 "st" (i 15));
      setidx8 "st" (i 15) (v "t");
      for_ "k" (i 0) (i 16)
        [ setidx8 "st" (v "k") (idx8 "inv_sbox" (idx8 "st" (v "k"))) ];
    ]

let mix_columns =
  func "mix_columns" []
    [
      for_ "c" (i 0) (i 4)
        [
          let_ "b" (shl (v "c") (i 2));
          let_ "a0" (idx8 "st" (v "b"));
          let_ "a1" (idx8 "st" (v "b" +% i 1));
          let_ "a2" (idx8 "st" (v "b" +% i 2));
          let_ "a3" (idx8 "st" (v "b" +% i 3));
          let_ "x" (bxor (bxor (v "a0") (v "a1")) (bxor (v "a2") (v "a3")));
          setidx8 "st" (v "b")
            (bxor (v "a0")
               (bxor (v "x") (call "xtime" [ bxor (v "a0") (v "a1") ])));
          setidx8 "st" (v "b" +% i 1)
            (bxor (v "a1")
               (bxor (v "x") (call "xtime" [ bxor (v "a1") (v "a2") ])));
          setidx8 "st" (v "b" +% i 2)
            (bxor (v "a2")
               (bxor (v "x") (call "xtime" [ bxor (v "a2") (v "a3") ])));
          setidx8 "st" (v "b" +% i 3)
            (bxor (v "a3")
               (bxor (v "x") (call "xtime" [ bxor (v "a3") (v "a0") ])));
        ];
    ]

(* gmul by 9/11/13/14 via xtime chains for the inverse MixColumns *)
let gmul =
  func "gmul" [ "a"; "m" ]
    [
      let_ "r" (i 0);
      let_ "x" (v "a");
      while_ (v "m" <>% i 0)
        [
          when_ (band (v "m") (i 1) <>% i 0)
            [ set "r" (bxor (v "r") (v "x")) ];
          set "x" (call "xtime" [ v "x" ]);
          set "m" (shr (v "m") (i 1));
        ];
      ret (v "r");
    ]

let inv_mix_columns =
  func "inv_mix_columns" []
    [
      for_ "c" (i 0) (i 4)
        [
          let_ "b" (shl (v "c") (i 2));
          let_ "a0" (idx8 "st" (v "b"));
          let_ "a1" (idx8 "st" (v "b" +% i 1));
          let_ "a2" (idx8 "st" (v "b" +% i 2));
          let_ "a3" (idx8 "st" (v "b" +% i 3));
          setidx8 "st" (v "b")
            (bxor
               (bxor (call "gmul" [ v "a0"; i 14 ]) (call "gmul" [ v "a1"; i 11 ]))
               (bxor (call "gmul" [ v "a2"; i 13 ]) (call "gmul" [ v "a3"; i 9 ])));
          setidx8 "st" (v "b" +% i 1)
            (bxor
               (bxor (call "gmul" [ v "a0"; i 9 ]) (call "gmul" [ v "a1"; i 14 ]))
               (bxor (call "gmul" [ v "a2"; i 11 ]) (call "gmul" [ v "a3"; i 13 ])));
          setidx8 "st" (v "b" +% i 2)
            (bxor
               (bxor (call "gmul" [ v "a0"; i 13 ]) (call "gmul" [ v "a1"; i 9 ]))
               (bxor (call "gmul" [ v "a2"; i 14 ]) (call "gmul" [ v "a3"; i 11 ])));
          setidx8 "st" (v "b" +% i 3)
            (bxor
               (bxor (call "gmul" [ v "a0"; i 11 ]) (call "gmul" [ v "a1"; i 13 ]))
               (bxor (call "gmul" [ v "a2"; i 9 ]) (call "gmul" [ v "a3"; i 14 ])));
        ];
    ]

let encrypt_block =
  func "aes_encrypt" []
    [
      do_ "add_round_key" [ i 0 ];
      for_ "round" (i 1) (i 10)
        [
          do_ "sub_shift" [];
          do_ "mix_columns" [];
          do_ "add_round_key" [ v "round" ];
        ];
      do_ "sub_shift" [];
      do_ "add_round_key" [ i 10 ];
    ]

let decrypt_block =
  func "aes_decrypt" []
    [
      do_ "add_round_key" [ i 10 ];
      do_ "inv_sub_shift" [];
      let_ "round" (i 9);
      while_ (v "round" >=% i 1)
        [
          do_ "add_round_key" [ v "round" ];
          do_ "inv_mix_columns" [];
          do_ "inv_sub_shift" [];
          set "round" (v "round" -% i 1);
        ];
      do_ "add_round_key" [ i 0 ];
    ]

let block_loop ~n fname =
  [
    let_ "blk" (i 0);
    while_ (v "blk" <% i (n / 16))
      [
        let_ "base" (shl (v "blk") (i 4));
        for_ "k" (i 0) (i 16)
          [ setidx8 "st" (v "k") (idx8 "buf" (v "base" +% v "k")) ];
        do_ fname [];
        for_ "k" (i 0) (i 16)
          [ setidx8 "buf" (v "base" +% v "k") (idx8 "st" (v "k")) ];
        incr_ "blk";
      ];
  ]

let checksum n =
  [
    let_ "cks" (i 0);
    for_ "k" (i 0) (i n)
      [ set "cks" (bxor (v "cks" *% i 131) (idx8 "buf" (v "k"))) ];
    print_int (v "cks");
  ]

let program_encode ~scale =
  let n = 768 * scale in
  program
    (common_globals ~n ~seed:0xAE0)
    [
      xtime; key_expand; add_round_key; sub_shift; mix_columns;
      encrypt_block;
      func "main" []
        ([ do_ "key_expand" [] ] @ block_loop ~n "aes_encrypt" @ checksum n);
    ]

let program_decode ~scale =
  let n = 768 * scale in
  program
    (common_globals ~n ~seed:0xAE1)
    [
      xtime; gmul; key_expand; add_round_key; sub_shift; inv_sub_shift;
      mix_columns; inv_mix_columns; encrypt_block; decrypt_block;
      func "main" []
        ([ do_ "key_expand" [] ]
        @ block_loop ~n "aes_encrypt"
        @ block_loop ~n "aes_decrypt"
        @ checksum n);
    ]
