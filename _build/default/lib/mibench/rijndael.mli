(** MiBench security/rijndael: byte-oriented AES-128 (computed S-box, key
    expansion, SubBytes/ShiftRows/MixColumns; GF multiplication chains for
    the inverse cipher) in ECB over a buffer, with a decode round-trip. *)

val name_encode : string
val name_decode : string
val program_encode : scale:int -> Pf_kir.Ast.program
val program_decode : scale:int -> Pf_kir.Ast.program
