(* MiBench security/sha: SHA-1 over a byte buffer, with proper padding and
   big-endian block handling. *)

open Pf_kir.Build

let name = "sha"

let rotl x n = bor (shl x (i n)) (shr x (i (32 - n)))

let program ~scale =
  let n = 4096 * scale in
  (* room for the 0x80 marker, zero pad and 8-byte length *)
  let buf = Array.append (Gen.bytes ~seed:0x54A1 n) (Array.make 128 0) in
  program
    [
      garray_init "msg" W8 buf;
      garray "h" W32 5;
      garray "w" W32 80;
    ]
    [
      func "load_be" [ "p" ]
        [
          ret
            (bor
               (bor
                  (shl (load8u (v "p")) (i 24))
                  (shl (load8u (v "p" +% i 1)) (i 16)))
               (bor
                  (shl (load8u (v "p" +% i 2)) (i 8))
                  (load8u (v "p" +% i 3))));
        ];
      func "process_block" [ "p" ]
        [
          for_ "t" (i 0) (i 16)
            [
              setidx32 "w" (v "t")
                (call "load_be" [ v "p" +% shl (v "t") (i 2) ]);
            ];
          for_ "t" (i 16) (i 80)
            [
              let_ "x"
                (bxor
                   (bxor (idx32 "w" (v "t" -% i 3)) (idx32 "w" (v "t" -% i 8)))
                   (bxor
                      (idx32 "w" (v "t" -% i 14))
                      (idx32 "w" (v "t" -% i 16))));
              setidx32 "w" (v "t") (rotl (v "x") 1);
            ];
          let_ "a" (idx32 "h" (i 0));
          let_ "b" (idx32 "h" (i 1));
          let_ "c" (idx32 "h" (i 2));
          let_ "d" (idx32 "h" (i 3));
          let_ "e" (idx32 "h" (i 4));
          let_ "f" (i 0);
          let_ "k" (i 0);
          for_ "t" (i 0) (i 80)
            [
              if_ (v "t" <% i 20)
                [
                  set "f"
                    (bor
                       (band (v "b") (v "c"))
                       (band (bnot (v "b")) (v "d")));
                  set "k" (i 0x5A827999);
                ]
                [
                  if_ (v "t" <% i 40)
                    [
                      set "f" (bxor (bxor (v "b") (v "c")) (v "d"));
                      set "k" (i 0x6ED9EBA1);
                    ]
                    [
                      if_ (v "t" <% i 60)
                        [
                          set "f"
                            (bor
                               (bor
                                  (band (v "b") (v "c"))
                                  (band (v "b") (v "d")))
                               (band (v "c") (v "d")));
                          set "k" (i 0x8F1BBCDC);
                        ]
                        [
                          set "f" (bxor (bxor (v "b") (v "c")) (v "d"));
                          set "k" (i 0xCA62C1D6);
                        ];
                    ];
                ];
              let_ "tmp"
                (rotl (v "a") 5 +% v "f" +% v "e" +% v "k"
                +% idx32 "w" (v "t"));
              set "e" (v "d");
              set "d" (v "c");
              set "c" (rotl (v "b") 30);
              set "b" (v "a");
              set "a" (v "tmp");
            ];
          setidx32 "h" (i 0) (idx32 "h" (i 0) +% v "a");
          setidx32 "h" (i 1) (idx32 "h" (i 1) +% v "b");
          setidx32 "h" (i 2) (idx32 "h" (i 2) +% v "c");
          setidx32 "h" (i 3) (idx32 "h" (i 3) +% v "d");
          setidx32 "h" (i 4) (idx32 "h" (i 4) +% v "e");
        ];
      func "main" []
        [
          setidx32 "h" (i 0) (i 0x67452301);
          setidx32 "h" (i 1) (i 0xEFCDAB89);
          setidx32 "h" (i 2) (i 0x98BADCFE);
          setidx32 "h" (i 3) (i 0x10325476);
          setidx32 "h" (i 4) (i 0xC3D2E1F0);
          (* pad: 0x80, zeros, 64-bit big-endian bit length *)
          let_ "len" (i n);
          setidx8 "msg" (v "len") (i 0x80);
          let_ "total" (band (v "len" +% i 9 +% i 63) (bnot (i 63)));
          let_ "bits" (shl (v "len") (i 3));
          setidx8 "msg" (v "total" -% i 4) (shr (v "bits") (i 24));
          setidx8 "msg" (v "total" -% i 3)
            (band (shr (v "bits") (i 16)) (i 255));
          setidx8 "msg" (v "total" -% i 2)
            (band (shr (v "bits") (i 8)) (i 255));
          setidx8 "msg" (v "total" -% i 1) (band (v "bits") (i 255));
          let_ "p" (gaddr "msg");
          let_ "endp" (gaddr "msg" +% v "total");
          while_ (ult (v "p") (v "endp"))
            [
              do_ "process_block" [ v "p" ];
              set "p" (v "p" +% i 64);
            ];
          for_ "k" (i 0) (i 5) [ print_int (idx32 "h" (v "k")) ];
        ];
    ]
