(** MiBench security/sha: SHA-1 with proper padding and big-endian block
    handling; prints the five digest words. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
