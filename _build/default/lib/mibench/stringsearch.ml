(* MiBench office/stringsearch: Boyer-Moore-Horspool search of several
   patterns over a synthetic text corpus.  Patterns are cut from the text
   itself so every search terminates with hits. *)

open Pf_kir.Build

let name = "stringsearch"

let npats = 8
let patlen = 8

let program ~scale =
  let n = 12288 * scale in
  let corpus = Gen.text ~seed:0x57A1 n in
  let rng = Pf_util.Rng.create 0xBEE in
  let pats =
    Array.init npats (fun _ ->
        let off = Pf_util.Rng.int rng (n - patlen) in
        Array.sub corpus off patlen)
  in
  let patterns_flat = Array.concat (Array.to_list pats) in
  program
    [
      garray_init "text" W8 corpus;
      garray_init "pats" W8 patterns_flat;
      garray "shift" W32 256;
    ]
    [
      func "build_shift" [ "pat"; "m" ]
        [
          for_ "c" (i 0) (i 256) [ setidx32 "shift" (v "c") (v "m") ];
          for_ "k" (i 0) (v "m" -% i 1)
            [
              setidx32 "shift"
                (load8u (v "pat" +% v "k"))
                (v "m" -% i 1 -% v "k");
            ];
        ];
      func "search" [ "pat"; "m"; "txt"; "n" ]
        [
          do_ "build_shift" [ v "pat"; v "m" ];
          let_ "count" (i 0);
          let_ "pos" (i 0);
          while_ (v "pos" <=% v "n" -% v "m")
            [
              let_ "j" (v "m" -% i 1);
              while_ (v "j" >=% i 0)
                [
                  when_
                    (load8u (v "txt" +% v "pos" +% v "j")
                    <>% load8u (v "pat" +% v "j"))
                    [ break_ ];
                  set "j" (v "j" -% i 1);
                ];
              when_ (v "j" <% i 0) [ incr_ "count" ];
              set "pos"
                (v "pos"
                +% idx32 "shift"
                     (load8u (v "txt" +% v "pos" +% v "m" -% i 1)));
            ];
          ret (v "count");
        ];
      func "main" []
        [
          let_ "total" (i 0);
          for_ "p" (i 0) (i npats)
            [
              let_ "hits"
                (call "search"
                   [
                     gaddr "pats" +% v "p" *% i patlen;
                     i patlen;
                     gaddr "text";
                     i n;
                   ]);
              set "total" (v "total" +% v "hits");
              print_int (v "hits");
            ];
          print_int (v "total");
        ];
    ]
