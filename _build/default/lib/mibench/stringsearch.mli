(** MiBench office/stringsearch: Boyer-Moore-Horspool search of several
    patterns (cut from the corpus itself, so hits are guaranteed) over a
    synthetic text. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
