(* MiBench automotive/susan: SUSAN low-level image processing — the USAN
   (Univalue Segment Assimilating Nucleus) edge response with the
   brightness-similarity lookup table, run at several thresholds, plus the
   3x3 smoothing pass. *)

open Pf_kir.Build

let name = "susan"

let width = 48
let height = 48

(* c(diff) = 100 * exp(-(diff/t)^6), t = 20 — host-computed LUT as in the
   original implementation. *)
let similarity_lut =
  Array.init 512 (fun k ->
      let diff = float_of_int (k - 255) in
      let x = diff /. 20.0 in
      let c = 100.0 *. exp (-.(x ** 6.0)) in
      int_of_float (Float.round c))

(* 37-pixel circular mask offsets (dx, dy) *)
let mask =
  [
    (-1, -3); (0, -3); (1, -3);
    (-2, -2); (-1, -2); (0, -2); (1, -2); (2, -2);
    (-3, -1); (-2, -1); (-1, -1); (0, -1); (1, -1); (2, -1); (3, -1);
    (-3, 0); (-2, 0); (-1, 0); (0, 0); (1, 0); (2, 0); (3, 0);
    (-3, 1); (-2, 1); (-1, 1); (0, 1); (1, 1); (2, 1); (3, 1);
    (-2, 2); (-1, 2); (0, 2); (1, 2); (2, 2);
    (-1, 3); (0, 3); (1, 3);
  ]

let mask_offsets = Array.of_list (List.map (fun (dx, dy) -> (dy * width) + dx) mask)

let program ~scale =
  let passes = scale in
  program
    [
      garray_init "img" W8 (Gen.image8 ~seed:0x5A5A ~width ~height);
      garray "smooth" W8 (width * height);
      garray_init "lut" W8 similarity_lut;
      garray_init "mask" W32 (Array.map (fun x -> x land 0xFFFFFFFF) mask_offsets);
      garray "edges" W32 1;
    ]
    [
      func "smooth3x3" []
        [
          for_ "y" (i 1) (i (height - 1))
            [
              for_ "x" (i 1) (i (width - 1))
                [
                  let_ "p" (gaddr "img" +% v "y" *% i width +% v "x");
                  let_ "sum"
                    (load8u (v "p" -% i (width + 1))
                    +% load8u (v "p" -% i width)
                    +% load8u (v "p" -% i (width - 1))
                    +% load8u (v "p" -% i 1)
                    +% load8u (v "p")
                    +% load8u (v "p" +% i 1)
                    +% load8u (v "p" +% i (width - 1))
                    +% load8u (v "p" +% i width)
                    +% load8u (v "p" +% i (width + 1)));
                  store8
                    (gaddr "smooth" +% v "y" *% i width +% v "x")
                    (v "sum" /% i 9);
                ];
            ];
        ];
      func "usan_pass" [ "thresh" ]
        [
          let_ "count" (i 0);
          let_ "resp" (i 0);
          for_ "y" (i 3) (i (height - 3))
            [
              for_ "x" (i 3) (i (width - 3))
                [
                  let_ "p" (gaddr "smooth" +% v "y" *% i width +% v "x");
                  let_ "center" (load8u (v "p"));
                  let_ "usan" (i 0);
                  for_ "m" (i 0) (i 37)
                    [
                      let_ "q" (load8u (v "p" +% idx32 "mask" (v "m")));
                      set "usan"
                        (v "usan"
                        +% idx8 "lut" (v "q" -% v "center" +% i 255));
                    ];
                  when_ (v "usan" <% v "thresh")
                    [
                      incr_ "count";
                      set "resp" (v "resp" +% (v "thresh" -% v "usan"));
                    ];
                ];
            ];
          setidx32 "edges" (i 0) (v "count");
          ret (v "resp");
        ];
      (* corner response: small-mask USAN with a centroid farness test *)
      func "corner_pass" [ "thresh" ]
        [
          let_ "corners" (i 0);
          for_ "y" (i 2) (i (height - 2))
            [
              for_ "x" (i 2) (i (width - 2))
                [
                  let_ "p" (gaddr "smooth" +% v "y" *% i width +% v "x");
                  let_ "center" (load8u (v "p"));
                  let_ "usan" (i 0);
                  let_ "cgx" (i 0);
                  let_ "cgy" (i 0);
                  for_ "dy" (neg (i 2)) (i 3)
                    [
                      for_ "dx" (neg (i 2)) (i 3)
                        [
                          let_ "q"
                            (load8u (v "p" +% v "dy" *% i width +% v "dx"));
                          let_ "c"
                            (idx8 "lut" (v "q" -% v "center" +% i 255));
                          set "usan" (v "usan" +% v "c");
                          set "cgx" (v "cgx" +% v "c" *% v "dx");
                          set "cgy" (v "cgy" +% v "c" *% v "dy");
                        ];
                    ];
                  when_ (v "usan" <% v "thresh")
                    [
                      (* centroid far from nucleus -> corner candidate *)
                      let_ "d2"
                        (v "cgx" *% v "cgx" +% v "cgy" *% v "cgy");
                      when_ (v "d2" >% v "usan" *% v "usan")
                        [ incr_ "corners" ];
                    ];
                ];
            ];
          ret (v "corners");
        ];
      func "main" []
        [
          do_ "smooth3x3" [];
          let_ "acc" (i 0);
          for_ "pass" (i 0) (i passes)
            [
              let_ "resp"
                (call "usan_pass" [ i 2700 +% v "pass" *% i 120 ]);
              set "acc" (bxor (v "acc" *% i 7) (v "resp"));
              print_int (idx32 "edges" (i 0));
              print_int (call "corner_pass" [ i 1500 +% v "pass" *% i 60 ]);
            ];
          print_int (v "acc");
        ];
    ]
