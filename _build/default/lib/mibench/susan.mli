(** MiBench automotive/susan: SUSAN image processing — 3x3 smoothing, the
    37-pixel USAN edge response with the brightness-similarity LUT, and a
    small-mask corner pass with the centroid test. *)

val name : string
val program : scale:int -> Pf_kir.Ast.program
