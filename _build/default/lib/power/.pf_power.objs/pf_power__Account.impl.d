lib/power/account.ml: Geometry
