lib/power/account.mli: Geometry
