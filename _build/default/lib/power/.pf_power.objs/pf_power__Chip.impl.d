lib/power/chip.ml:
