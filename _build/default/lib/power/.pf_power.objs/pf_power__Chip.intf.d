lib/power/chip.mli:
