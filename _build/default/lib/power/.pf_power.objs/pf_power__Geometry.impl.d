lib/power/geometry.ml: Pf_cache Pf_util
