lib/power/geometry.mli: Pf_cache
