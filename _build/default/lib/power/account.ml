module Params = struct
  type t = {
    k_access : float;
    k_output : float;
    k_refill_per_bit : float;
    k_internal_per_gate : float;
    k_leakage_per_gate : float;
    peak_window_cycles : int;
  }

  (* Calibration (see mli): with a 16 KB 32-way cache (~151 k gate
     equivalents), ~0.8 accesses/cycle and ~15 toggles/access, switching
     is ~33 %, internal ~55 % and leakage ~12 % of ARM16 I-cache power,
     matching Figure 6(a).  Switching is dominated by the per-access
     precharge/output-drive term [k_access], so halving fetch accesses
     (FITS) halves it, while same-width ARM8 saves almost nothing —
     the Figure 7 contrast. *)
  let default =
    {
      k_access = 34.0;
      k_output = 0.30;
      k_refill_per_bit = 3.0;
      k_internal_per_gate = 3.4e-4;
      k_leakage_per_gate = 7.5e-5;
      peak_window_cycles = 32;
    }
end

type t = {
  params : Params.t;
  geometry : Geometry.t;
  mutable e_switch : float;
  mutable e_internal : float;
  mutable e_leak : float;
  mutable cycles : int;
  (* peak tracking *)
  mutable window_switch : float;
  mutable window_cycles : int;
  mutable peak : float;
}

let create ?(params = Params.default) geometry =
  {
    params;
    geometry;
    e_switch = 0.0;
    e_internal = 0.0;
    e_leak = 0.0;
    cycles = 0;
    window_switch = 0.0;
    window_cycles = 0;
    peak = 0.0;
  }

let per_cycle_static t =
  let g = float_of_int t.geometry.Geometry.gate_count in
  (t.params.k_internal_per_gate *. g, t.params.k_leakage_per_gate *. g)

let on_access t ~toggles ~refilled_words =
  let e =
    t.params.k_access
    +. (t.params.k_output *. float_of_int toggles)
    +. (t.params.k_refill_per_bit *. float_of_int (refilled_words * 32))
  in
  t.e_switch <- t.e_switch +. e;
  t.window_switch <- t.window_switch +. e

let close_window t n =
  (* n cycles of this window: static power is constant per cycle, so the
     window power is switching/window + static. *)
  if n > 0 then begin
    let int_c, leak_c = per_cycle_static t in
    let power = (t.window_switch /. float_of_int n) +. int_c +. leak_c in
    if power > t.peak then t.peak <- power
  end;
  t.window_switch <- 0.0;
  t.window_cycles <- 0

let on_cycles t n =
  if n > 0 then begin
    let int_c, leak_c = per_cycle_static t in
    let fn = float_of_int n in
    t.e_internal <- t.e_internal +. (int_c *. fn);
    t.e_leak <- t.e_leak +. (leak_c *. fn);
    t.cycles <- t.cycles + n;
    t.window_cycles <- t.window_cycles + n;
    if t.window_cycles >= t.params.peak_window_cycles then
      close_window t t.window_cycles
  end

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;
  peak_power : float;
  cycles : int;
}

let report t =
  (* fold any open window into the peak before reporting *)
  if t.window_cycles > 0 then close_window t t.window_cycles;
  {
    switching = t.e_switch;
    internal = t.e_internal;
    leakage = t.e_leak;
    total = t.e_switch +. t.e_internal +. t.e_leak;
    peak_power = t.peak;
    cycles = t.cycles;
  }

let avg_power r = if r.cycles = 0 then 0.0 else r.total /. float_of_int r.cycles
