(** Sim-panalyzer-style power accounting for one instruction cache.

    Implements the paper's model (§4.1):  P = A·C·V²·f + V·I_leak, split as

    - {b switching} power: output drivers and address path, proportional to
      per-access bit toggles plus refill traffic on misses;
    - {b internal} power: clock/precharge power of the whole cache block,
      proportional to gate count, accrued every cycle the cache is on;
    - {b leakage} power: proportional to gate count and elapsed time;
    - {b peak} power: maximum power over any accounting window.

    Energies are in arbitrary consistent units; every figure reports
    ratios against the ARM16 baseline, where the units cancel. *)

module Params : sig
  type t = {
    k_access : float;
        (** fixed energy per access: bitline precharge, wordline drive and
            output-bus switching at a constant activity factor — the term
            that makes switching power proportional to fetch count *)
    k_output : float;
        (** energy per data-dependent output/address toggle *)
    k_refill_per_bit : float;
        (** energy per bit written on refill (switching component) *)
    k_internal_per_gate : float;
        (** per-gate per-cycle clock energy (internal component) *)
    k_leakage_per_gate : float;
        (** per-gate per-cycle leakage energy (static component) *)
    peak_window_cycles : int;
        (** window over which peak power is evaluated *)
  }

  val default : t
  (** Calibrated so an ARM16/SA-1100-like run shows the paper's Figure 6
      breakdown: internal > 50 %, switching ≈ a third, leakage ≈ a tenth
      (0.35 um process, where leakage is minor). *)
end

type t

val create : ?params:Params.t -> Geometry.t -> t

val on_access : t -> toggles:int -> refilled_words:int -> unit
(** Record one cache access (switching energy). *)

val on_cycles : t -> int -> unit
(** Advance simulated time: accrues internal and leakage energy and
    advances the peak-power window. *)

type report = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;          (** switching + internal + leakage *)
  peak_power : float;     (** max energy/cycle over any window *)
  cycles : int;
}

val report : t -> report

val avg_power : report -> float
(** Mean power in energy units per cycle. *)
