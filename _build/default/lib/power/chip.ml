type baseline = {
  icache_energy : float;
  cycles : int;
}

let icache_share = 0.27

let rest_energy_baseline (b : baseline) =
  b.icache_energy *. (1.0 -. icache_share) /. icache_share

let chip_energy ~baseline ~icache_energy ~cycles ?(datapath_off = 0.0) () =
  let rest0 = rest_energy_baseline baseline in
  let scale = float_of_int cycles /. float_of_int baseline.cycles in
  icache_energy +. (rest0 *. scale *. (1.0 -. datapath_off))

let chip_saving ~baseline ~icache_energy ~cycles ?datapath_off () =
  let e0 = baseline.icache_energy +. rest_energy_baseline baseline in
  let p0 = e0 /. float_of_int baseline.cycles in
  let e = chip_energy ~baseline ~icache_energy ~cycles ?datapath_off () in
  let p = e /. float_of_int cycles in
  100.0 *. (p0 -. p) /. p0
