(** Chip-level power model (paper §6.3, Figure 12).

    The StrongARM breakdown attributes 27 % of total chip power to the
    instruction cache [Montanaro et al.].  The rest of the chip is modeled
    as energy proportional to run time (it is clocked every cycle), with an
    optional reduction for FITS configurations where the programmable
    decoder leaves unmapped datapath units powered off (paper §3.2). *)

type baseline = {
  icache_energy : float;   (** ARM16 I-cache energy *)
  cycles : int;            (** ARM16 run cycles *)
}

val icache_share : float
(** 0.27 — I-cache fraction of total chip power on the StrongARM. *)

val chip_energy :
  baseline:baseline ->
  icache_energy:float ->
  cycles:int ->
  ?datapath_off:float ->
  unit ->
  float
(** Total chip energy of a configuration.  [datapath_off] is the fraction
    of non-cache power switched off by decoder deactivation (default 0). *)

val chip_saving :
  baseline:baseline ->
  icache_energy:float ->
  cycles:int ->
  ?datapath_off:float ->
  unit ->
  float
(** Percentage chip power saving vs the ARM16 baseline (power = E/T). *)
