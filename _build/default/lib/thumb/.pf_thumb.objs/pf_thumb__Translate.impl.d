lib/thumb/translate.ml: Array List Pf_arm Pf_util
