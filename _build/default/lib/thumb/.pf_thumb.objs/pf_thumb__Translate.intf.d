lib/thumb/translate.mli: Pf_arm
