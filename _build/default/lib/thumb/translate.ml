module A = Pf_arm.Insn

type estimate = {
  arm_bytes : int;
  thumb_bytes : int;
  halfwords : int;
  expanded : int;
}

(* Registers a Thumb compiler would reach with low-register forms: r0-r7
   plus the two scratch registers our ARM code generator uses (r11, r12) —
   recompiling for Thumb would simply allocate those scratches low, so
   charging a shuffle for them would overstate Thumb's cost. *)
let low r = r <= 7 || r = 11 || r = 12

(* A register Thumb data-processing cannot name directly costs a MOV
   shuffle through a low register. *)
let high_reg_penalty regs =
  List.length (List.filter (fun r -> r >= 8 && r <= 12) regs)

let dp_cost (op : A.dp_op) ~rd ~rn ~(op2 : A.operand2) ~two_op =
  let shift_move =
    (* LSL/LSR/ASR Rd, Rm, #imm and Rd, Rs are single Thumb instructions *)
    match (op, op2) with
    | A.MOV, A.Reg_shift (rm, _, _) -> low rm
    | A.MOV, A.Reg_shift_reg (rm, _, rs) -> low rm && low rs && rd = rm
    | _ -> false
  in
  if shift_move then (if low rd then 1 else 2)
  else
  let operand_cost =
    match op2 with
    | A.Reg rm -> if low rm then 0 else 1
    | A.Imm _ -> (
        match A.operand2_value op2 with
        | Some v when v <= 255 -> (
            (* imm8 forms exist for MOV/CMP/ADD/SUB only *)
            match op with
            | A.MOV | A.CMP | A.ADD | A.SUB -> 0
            | _ -> 1 (* build the constant first *))
        | Some _ -> 1 (* literal-pool load *)
        | None -> 1)
    | A.Reg_shift (rm, _, n) ->
        (if low rm then 0 else 1) + if n <= 31 then 1 else 2
    | A.Reg_shift_reg (rm, _, rs) ->
        (if low rm then 0 else 1) + if low rs then 1 else 2
  in
  let base =
    match op with
    | A.MOV | A.MVN | A.CMP | A.CMN | A.TST | A.TEQ -> 1
    | A.ADD | A.SUB ->
        (* three-address low-register ADD/SUB exists *)
        if two_op || (low rd && low rn) then 1 else 2
    | A.AND | A.EOR | A.ORR | A.BIC | A.ADC | A.SBC ->
        if two_op then 1 else 2 (* MOV rd, rn; OP rd, rm *)
    | A.RSB -> if two_op then 1 else 2 (* NEG-based *)
    | A.RSC -> 3
  in
  let shuffle =
    (if low rd || op = A.MOV || op = A.ADD || op = A.CMP then 0 else 1)
    + if low rn || op = A.MOV then 0 else 1
  in
  base + operand_cost + shuffle

let mem_cost ~(width : A.mem_width) ~(offset : A.mem_offset) ~rd ~rn
    ~writeback =
  let range_ok ofs =
    match width with
    | A.Word -> ofs >= 0 && ofs <= 124 && ofs land 3 = 0
    | A.Half -> ofs >= 0 && ofs <= 62 && ofs land 1 = 0
    | A.Byte -> ofs >= 0 && ofs <= 31
  in
  let addr_cost =
    match offset with
    | A.Ofs_imm ofs -> if range_ok ofs then 0 else 1
    | A.Ofs_reg (rx, A.LSL, 0) -> if low rx then 0 else 1
    | A.Ofs_reg (rx, _, _) -> 1 + if low rx then 0 else 1
  in
  let shuffle = (if low rd then 0 else 1) + if low rn || rn = 13 then 0 else 1 in
  (* pre-indexed writeback needs a separate address update *)
  1 + addr_cost + shuffle + if writeback then 1 else 0

let cost_of (insn : A.t) =
  let predication =
    match A.cond_of insn with
    | A.AL -> 0
    | _ -> ( match insn with A.B _ -> 0 | _ -> 1 (* branch around *))
  in
  predication
  +
  match insn with
  | A.Dp { op; rd; rn; op2; _ } ->
      let two_op =
        match op with
        | A.MOV | A.MVN | A.TST | A.TEQ | A.CMP | A.CMN -> true
        | _ -> rd = rn
      in
      dp_cost op ~rd ~rn ~op2 ~two_op
  | A.Mul { rd; rm; rs; acc; _ } ->
      (if rd = rm || rd = rs then 1 else 2)
      + (match acc with Some _ -> 1 | None -> 0)
      + high_reg_penalty [ rd; rm; rs ]
  | A.Mem { width; offset; rd; rn; writeback; load = _; signed; _ } ->
      mem_cost ~width ~offset ~rd ~rn ~writeback
      + (if signed then 0 else 0)
  | A.Push { regs; _ } | A.Pop { regs; _ } ->
      (* the low list plus LR/PC encode directly; each high register needs
         a MOV through a low one *)
      1 + List.length (List.filter (fun r -> r >= 8 && r <= 12) regs)
  | A.B { cond = A.AL; link = false; _ } -> 1
  | A.B { cond = A.AL; link = true; _ } -> 2 (* BL halfword pair *)
  | A.B _ -> 1
  | A.Bx _ -> 1
  | A.Swi _ -> 1

let estimate (image : Pf_arm.Image.t) =
  let halfwords = ref 0 in
  let expanded = ref 0 in
  let pool_bytes = ref 0 in
  Array.iter
    (fun insn ->
      match insn with
      | Some insn ->
          let c = cost_of insn in
          halfwords := !halfwords + c;
          if c > 1 then incr expanded
      | None -> pool_bytes := !pool_bytes + 4)
    image.Pf_arm.Image.insns;
  let arm_bytes = Pf_arm.Image.code_size_bytes image in
  {
    arm_bytes;
    thumb_bytes = (2 * !halfwords) + !pool_bytes;
    halfwords = !halfwords;
    expanded = !expanded;
  }

let size_saving e =
  Pf_util.Stats.saving
    ~baseline:(float_of_int e.arm_bytes)
    (float_of_int e.thumb_bytes)
