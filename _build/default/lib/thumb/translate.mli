(** Thumb-like 16-bit code-size model — the baseline FITS is compared
    against in Figure 5.

    Thumb is a fixed (non-synthesized) 16-bit encoding: two-operand only,
    most operations restricted to the eight low registers, 8-bit
    immediates, no predication, and BL split into a two-halfword pair.
    This module estimates, instruction by instruction, how many Thumb
    halfwords the program would need — the structural penalty a fixed
    16-bit ISA pays that an application-tuned one does not (paper §6.2:
    "THUMB is not able to utilize its instruction fields efficiently").

    It is a cost model, not an executable translator: only Figure 5 (code
    size) needs it. *)

type estimate = {
  arm_bytes : int;
  thumb_bytes : int;         (** 2 x halfwords + retained literal pools *)
  halfwords : int;
  expanded : int;            (** ARM instructions needing >1 halfword *)
}

val estimate : Pf_arm.Image.t -> estimate

val size_saving : estimate -> float
(** Percentage reduction vs the ARM image. *)

val cost_of : Pf_arm.Insn.t -> int
(** Halfwords needed for one ARM instruction (exposed for tests). *)
