lib/util/bits.ml:
