lib/util/bits.mli:
