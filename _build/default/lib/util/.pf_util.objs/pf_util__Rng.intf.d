lib/util/rng.mli:
