lib/util/stats.ml: Hashtbl List
