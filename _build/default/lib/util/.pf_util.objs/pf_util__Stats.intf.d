lib/util/stats.mli:
