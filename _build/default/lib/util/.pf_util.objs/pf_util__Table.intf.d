lib/util/table.mli:
