(** Bit-level helpers shared by the ISA encoders, the cache activity model
    and the power accounting.  All values are plain OCaml [int]s used as
    unsigned bit vectors of at most 32 significant bits unless stated
    otherwise. *)

val mask : int -> int
(** [mask w] is a value with the low [w] bits set. [w] must be in [0, 62]. *)

val extract : int -> lo:int -> width:int -> int
(** [extract x ~lo ~width] returns bits [lo .. lo+width-1] of [x],
    right-aligned. *)

val insert : int -> lo:int -> width:int -> int -> int
(** [insert x ~lo ~width v] returns [x] with bits [lo .. lo+width-1]
    replaced by the low [width] bits of [v]. *)

val sign_extend : width:int -> int -> int
(** [sign_extend ~width x] interprets the low [width] bits of [x] as a
    two's-complement number and returns the (possibly negative) value. *)

val zero_extend : width:int -> int -> int
(** Keep only the low [width] bits. *)

val fits_unsigned : width:int -> int -> bool
(** Does [x >= 0] fit in [width] unsigned bits? *)

val fits_signed : width:int -> int -> bool
(** Does [x] fit in [width] two's-complement bits? *)

val rotate_right32 : int -> int -> int
(** [rotate_right32 x r] rotates the low 32 bits of [x] right by [r]
    (r taken mod 32) and returns an unsigned 32-bit result. *)

val popcount : int -> int
(** Number of set bits. *)

val hamming : int -> int -> int
(** [hamming a b] is the number of differing bits — the toggle count when a
    bus transitions from value [a] to value [b]. *)

val is_power_of_two : int -> bool

val log2_exact : int -> int
(** [log2_exact n] for a positive power of two [n].
    @raise Invalid_argument otherwise. *)

val align_down : int -> int -> int
(** [align_down x a] rounds [x] down to a multiple of the power of two [a]. *)

val u32 : int -> int
(** Truncate to unsigned 32 bits. *)

val to_signed32 : int -> int
(** Reinterpret an unsigned 32-bit value as a signed 32-bit integer. *)
