(** Deterministic pseudo-random number generator (splitmix64).

    All workload input generation goes through this module so that every
    experiment is reproducible bit-for-bit across runs and machines,
    independently of the OCaml [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound > 0]. *)

val int32u : t -> int
(** A uniform unsigned 32-bit value. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-benchmark streams). *)
