type histogram = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

let histogram () = { tbl = Hashtbl.create 64; total = 0 }

let add h ?(weight = 1) key =
  (match Hashtbl.find_opt h.tbl key with
  | Some r -> r := !r + weight
  | None -> Hashtbl.add h.tbl key (ref weight));
  h.total <- h.total + weight

let count h key =
  match Hashtbl.find_opt h.tbl key with Some r -> !r | None -> 0

let total h = h.total
let distinct h = Hashtbl.length h.tbl

let sorted_desc h =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) h.tbl []
  |> List.sort (fun (k1, w1) (k2, w2) ->
         if w1 <> w2 then compare w2 w1 else compare k1 k2)

let top h n =
  let rec take n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
  in
  take n (sorted_desc h)

let coverage h pred =
  if h.total = 0 then 0.0
  else
    let covered =
      Hashtbl.fold (fun k r acc -> if pred k then acc + !r else acc) h.tbl 0
    in
    float_of_int covered /. float_of_int h.total

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.0
  | l ->
      let sum_logs =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive"
            else acc +. log x)
          0.0 l
      in
      exp (sum_logs /. float_of_int (List.length l))

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let saving ~baseline v =
  if baseline = 0.0 then 0.0 else 100.0 *. (baseline -. v) /. baseline
