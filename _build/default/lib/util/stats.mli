(** Small statistics toolkit used by the profiler and the harness. *)

type histogram
(** Frequency counts over integer keys. *)

val histogram : unit -> histogram
val add : histogram -> ?weight:int -> int -> unit
val count : histogram -> int -> int
val total : histogram -> int
(** Sum of all weights. *)

val distinct : histogram -> int
(** Number of distinct keys observed. *)

val sorted_desc : histogram -> (int * int) list
(** (key, weight) pairs, heaviest first; ties broken by smaller key. *)

val top : histogram -> int -> (int * int) list
(** The [n] heaviest entries. *)

val coverage : histogram -> (int -> bool) -> float
(** [coverage h pred] is the weight fraction of keys satisfying [pred];
    0.0 when the histogram is empty. *)

val mean : float list -> float
val geomean : float list -> float
(** Geometric mean; entries must be positive. *)

val percent : float -> float -> float
(** [percent part whole] = 100 * part / whole (0 if whole = 0). *)

val saving : baseline:float -> float -> float
(** [saving ~baseline v] = percentage reduction of [v] relative to
    [baseline]: 100 * (baseline - v) / baseline. *)
