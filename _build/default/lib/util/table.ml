type align = Left | Right

let pad a width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match a with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some l when List.length l = ncols -> l
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let all = header :: rows in
  List.iter
    (fun r ->
      if List.length r <> ncols then
        invalid_arg "Table.render: row length mismatch")
    rows;
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
      header
  in
  let line row =
    List.map2 (fun (w, a) cell -> pad a w cell) (List.combine widths aligns) row
    |> String.concat "  "
  in
  let sep =
    List.map (fun w -> String.make w '-') widths |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let pct x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let si x =
  let ax = Float.abs x in
  let scaled, suffix =
    if ax = 0.0 then (x, "")
    else if ax < 1e-6 then (x *. 1e9, "n")
    else if ax < 1e-3 then (x *. 1e6, "u")
    else if ax < 1.0 then (x *. 1e3, "m")
    else if ax < 1e3 then (x, "")
    else if ax < 1e6 then (x /. 1e3, "k")
    else if ax < 1e9 then (x /. 1e6, "M")
    else (x /. 1e9, "G")
  in
  Printf.sprintf "%.3g%s" scaled suffix
