(** Plain-text table rendering for the figure/benchmark reports. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] formats a padded ASCII table.  [align] gives the
    per-column alignment (default: first column left, rest right). *)

val pct : float -> string
(** Format a percentage with one decimal, e.g. ["49.4"]. *)

val f2 : float -> string
(** Two-decimal fixed-point formatting. *)

val si : float -> string
(** Engineering-style formatting with an SI suffix (n, u, m, "", k, M, G)
    chosen from magnitude, three significant digits. *)
