test/test_armgen_units.ml: Alcotest Array List Pf_arm Pf_armgen Pf_kir Printf String
