test/test_cache.ml: Alcotest List Pf_cache QCheck QCheck_alcotest
