test/test_compile.ml: Alcotest Array Fun List Pf_armgen Pf_kir Printf
