test/test_encode.ml: Alcotest List Pf_arm Printf QCheck QCheck_alcotest
