test/test_exec.ml: Alcotest Array Char List Option Pf_arm Pf_util
