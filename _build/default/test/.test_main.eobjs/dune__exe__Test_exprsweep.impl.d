test/test_exprsweep.ml: Alcotest List Pf_armgen Pf_kir
