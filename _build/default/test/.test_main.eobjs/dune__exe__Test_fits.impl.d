test/test_fits.ml: Alcotest Array Hashtbl Pf_armgen Pf_cpu Pf_fits Pf_kir Printf
