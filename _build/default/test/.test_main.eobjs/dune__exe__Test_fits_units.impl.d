test/test_fits_units.ml: Alcotest Array Hashtbl List Option Pf_arm Pf_armgen Pf_fits Pf_kir String
