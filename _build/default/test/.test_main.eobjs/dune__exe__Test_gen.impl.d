test/test_gen.ml: Alcotest Array Char Fun Hashtbl Option Pf_mibench Pf_util Printf
