test/test_harness.ml: Alcotest Array Float Lazy List Pf_armgen Pf_fits Pf_harness Pf_mibench Pf_power Pf_util Printf String
