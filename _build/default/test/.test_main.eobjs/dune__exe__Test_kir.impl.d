test/test_kir.ml: Alcotest Ast Eval List Pf_kir Pf_mibench Printf String Transform Validate
