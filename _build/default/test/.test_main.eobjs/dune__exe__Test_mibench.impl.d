test/test_mibench.ml: Alcotest Array List Pf_armgen Pf_harness Pf_kir Pf_mibench Pf_util String
