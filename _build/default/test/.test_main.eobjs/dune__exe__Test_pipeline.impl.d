test/test_pipeline.ml: Alcotest Pf_cache Pf_cpu Pf_power
