test/test_power.ml: Alcotest List Pf_cache Pf_power QCheck QCheck_alcotest
