test/test_random_programs.ml: Array Hashtbl List Pf_armgen Pf_fits Pf_kir Printf QCheck QCheck_alcotest
