test/test_thumb.ml: Alcotest List Option Pf_arm Pf_armgen Pf_mibench Pf_thumb Printf
