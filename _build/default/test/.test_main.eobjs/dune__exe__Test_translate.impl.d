test/test_translate.ml: Alcotest Array Hashtbl List Pf_arm Pf_armgen Pf_fits Pf_kir String
