test/test_util.ml: Alcotest Array Bits Fun List Pf_util QCheck QCheck_alcotest Rng Stats String Table
