(* Compiler-internals tests: literal-pool placement (including the
   mid-function pool splitting), ABI/prologue conventions, normalization
   invariants, and error paths. *)

open Pf_kir.Build
module A = Pf_arm.Insn

let compile ?unroll p = Pf_armgen.Compile.program ?unroll p

(* ---- literal pools ---- *)

let big_const k = i (0x10000 + (k * 0x2357))

let test_pool_dedup () =
  (* the same unencodable constant used repeatedly must appear once *)
  let p =
    program []
      [
        func "main" []
          (List.init 6 (fun _ -> print_int (i 0x12345678))
          @ [ print_int (i 0x12345678 +% i 1) ]);
      ]
  in
  let image = compile p in
  let pool_words =
    Array.to_list image.Pf_arm.Image.insns
    |> List.filter (fun x -> x = None)
  in
  (* one pool entry for the constant (0x12345679 is derived via add) *)
  Alcotest.(check int) "single pool entry" 1 (List.length pool_words);
  Alcotest.(check string) "still correct"
    ((Pf_kir.Eval.run p).Pf_kir.Eval.output)
    (Pf_armgen.Compile.run image)

let test_pool_splitting_large_function () =
  (* hundreds of distinct unencodable constants force branch-over pools *)
  let stmts =
    List.concat
      (List.init 400 (fun k ->
           [ set "acc" (bxor (v "acc") (big_const k)) ]))
  in
  let p =
    program []
      [ func "main" [] ((let_ "acc" (i 0) :: stmts) @ [ print_int (v "acc") ]) ]
  in
  let expected = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let image = compile p in
  Alcotest.(check string) "split pools execute correctly" expected
    (Pf_armgen.Compile.run image);
  (* there must be more than one data region (pool) inside main *)
  let regions = ref 0 in
  let in_pool = ref false in
  Array.iter
    (fun insn ->
      match insn with
      | None -> if not !in_pool then begin incr regions; in_pool := true end
      | Some _ -> in_pool := false)
    image.Pf_arm.Image.insns;
  Alcotest.(check bool)
    (Printf.sprintf "multiple pools (%d)" !regions)
    true (!regions >= 2)

let test_pool_values_in_memory () =
  (* a literal load must read exactly the constant from the code segment *)
  let p = program [] [ func "main" [] [ print_int (i 0x89ABCDEF) ] ] in
  let image = compile p in
  Alcotest.(check string) "value restored" "-1985229329\n"
    (Pf_armgen.Compile.run image)

(* ---- ABI and structure ---- *)

let test_callee_saved_discipline () =
  (* a function must preserve r4-r11 across calls: exercised by nesting *)
  let p =
    program []
      [
        func "clobber" [ "x" ]
          [
            let_ "a" (v "x" +% i 1);
            let_ "b" (v "a" *% i 3);
            let_ "c" (v "b" -% i 2);
            let_ "d" (v "c" *% v "c");
            ret (v "d");
          ];
        func "main" []
          [
            let_ "p" (i 10);
            let_ "q" (i 20);
            let_ "r" (i 30);
            let_ "s" (i 40);
            let_ "t" (i 50);
            let_ "u" (i 60);
            let_ "w" (i 70);
            do_ "clobber" [ i 5 ];
            (* all seven register-homed locals must survive *)
            print_int
              (v "p" +% v "q" +% v "r" +% v "s" +% v "t" +% v "u" +% v "w");
          ];
      ]
  in
  Alcotest.(check string) "locals survive calls" "280\n"
    (Pf_armgen.Compile.run (compile p))

let test_leaf_function_uses_bx () =
  (* leaf functions return via BX LR (no LR save) *)
  let p =
    program []
      [
        func "leaf" [ "x" ] [ ret (v "x" +% i 1) ];
        func "main" [] [ print_int (call "leaf" [ i 41 ]) ];
      ]
  in
  let image = compile p in
  let has_bx =
    Array.exists
      (function Some (A.Bx _) -> true | _ -> false)
      image.Pf_arm.Image.insns
  in
  Alcotest.(check bool) "bx lr present" true has_bx

let test_start_stub () =
  let p = program [] [ func "main" [] [ print_int (i 1) ] ] in
  let image = compile p in
  Alcotest.(check int) "entry at _start" image.Pf_arm.Image.entry
    (Pf_arm.Image.symbol image "_start");
  Alcotest.(check bool) "main symbol present" true
    (Pf_arm.Image.symbol image "main" > image.Pf_arm.Image.entry);
  (* _start is bl main; swi 0 *)
  match Pf_arm.Image.insn_at image image.Pf_arm.Image.entry with
  | Some (A.B { link = true; _ }) -> ()
  | _ -> Alcotest.fail "start stub must begin with BL main"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go k = k + n <= h && (String.sub hay k n = needle || go (k + 1)) in
  go 0

let test_disassembler_output () =
  let p = program [] [ func "main" [] [ print_int (i 7) ] ] in
  let image = compile p in
  let d = Pf_arm.Image.disassemble image in
  Alcotest.(check bool) "lists symbols" true (contains d "main:");
  Alcotest.(check bool) "shows swi" true (contains d "swi");
  Alcotest.(check bool) "marks pool data" true
    (contains d ".word" || not (contains d "0xdead"))

(* ---- error paths ---- *)

let test_deep_expression_rejected () =
  let rec deep n = if n = 0 then call "f" [ i 1 ] else deep (n - 1) +% deep (n - 1) in
  let p =
    program []
      [
        func "f" [ "x" ] [ ret (v "x") ];
        func "main" [] [ print_int (deep 5) ];
      ]
  in
  (* call-normalization flattens this, so it must actually compile *)
  Alcotest.(check string) "ANF keeps deep call trees compilable"
    (( Pf_kir.Eval.run p).Pf_kir.Eval.output)
    (Pf_armgen.Compile.run (compile p))

let test_runtime_division_linked_once () =
  let p =
    program []
      [
        func "main" []
          [ print_int (i 100 /% i 7); print_int (urem (i 100) (i 7)) ];
      ]
  in
  let image = compile p in
  Alcotest.(check bool) "udiv runtime linked" true
    (try ignore (Pf_arm.Image.symbol image "__udiv32"); true
     with Not_found -> false);
  Alcotest.(check string) "division works" "14\n2\n"
    (Pf_armgen.Compile.run image)

let tests =
  [
    Alcotest.test_case "pool dedup" `Quick test_pool_dedup;
    Alcotest.test_case "pool splitting in large functions" `Quick
      test_pool_splitting_large_function;
    Alcotest.test_case "pool values" `Quick test_pool_values_in_memory;
    Alcotest.test_case "callee-saved discipline" `Quick
      test_callee_saved_discipline;
    Alcotest.test_case "leaf returns via bx" `Quick test_leaf_function_uses_bx;
    Alcotest.test_case "start stub" `Quick test_start_stub;
    Alcotest.test_case "disassembler" `Quick test_disassembler_output;
    Alcotest.test_case "deep call trees" `Quick test_deep_expression_rejected;
    Alcotest.test_case "division runtime linking" `Quick
      test_runtime_division_linked_once;
  ]
