(* Cross-checks: compiled-and-simulated programs must print exactly what the
   KIR reference evaluator prints. *)

open Pf_kir.Build

let check_program ?(name = "program") p =
  let expected = (Pf_kir.Eval.run p).output in
  let image = Pf_armgen.Compile.program p in
  let actual = Pf_armgen.Compile.run image in
  Alcotest.(check string) name expected actual

let test_print_constant () =
  check_program
    (program []
       [ func "main" [] [ print_int (i 42); print_int (i (-7)) ] ])

let test_arith () =
  check_program
    (program []
       [
         func "main" []
           [
             let_ "a" (i 1000);
             let_ "b" (i 37);
             print_int (v "a" +% v "b");
             print_int (v "a" -% v "b");
             print_int (v "a" *% v "b");
             print_int (band (v "a") (v "b"));
             print_int (bor (v "a") (v "b"));
             print_int (bxor (v "a") (v "b"));
             print_int (shl (v "a") (i 3));
             print_int (shr (v "a") (i 2));
             print_int (sar (neg (v "a")) (i 2));
             print_int (bnot (v "a"));
             print_int (neg (v "b"));
           ];
       ])

let test_large_constants () =
  check_program
    (program []
       [
         func "main" []
           [
             print_int (i 0x12345678);
             print_int (i 0xFF00FF00);
             print_int (i 0xFFFFFFFF);
             print_int (i 0x80000000);
             print_int (i 0xFF0);
             print_int (i (-256));
           ];
       ])

let test_division () =
  check_program
    (program []
       [
         func "main" []
           [
             print_int (i 1000 /% i 37);
             print_int (i 1000 %+ i 37);
             print_int (neg (i 1000) /% i 37);
             print_int (neg (i 1000) %+ i 37);
             print_int (i 1000 /% neg (i 37));
             print_int (udiv (i 0xFFFFFFFF) (i 7));
             print_int (urem (i 0xFFFFFFFF) (i 7));
             print_int (i 5 /% i 0);
             print_int (i 5 %+ i 0);
           ];
       ])

let test_control_flow () =
  check_program
    (program []
       [
         func "main" []
           [
             let_ "acc" (i 0);
             for_ "k" (i 0) (i 10)
               [
                 if_ (band (v "k") (i 1) =% i 0)
                   [ set "acc" (v "acc" +% v "k") ]
                   [ set "acc" (v "acc" -% i 1) ];
               ];
             print_int (v "acc");
             let_ "n" (i 100);
             let_ "s" (i 0);
             while_ (v "n" >% i 0)
               [
                 when_ (v "n" =% i 50) [ set "n" (v "n" -% i 1); continue_ ];
                 when_ (v "n" <% i 10) [ break_ ];
                 set "s" (v "s" +% v "n");
                 set "n" (v "n" -% i 1);
               ];
             print_int (v "s");
             print_int (v "n");
           ];
       ])

let test_functions () =
  check_program
    (program []
       [
         func "fib" [ "n" ]
           [
             when_ (v "n" <% i 2) [ ret (v "n") ];
             ret (call "fib" [ v "n" -% i 1 ] +% call "fib" [ v "n" -% i 2 ]);
           ];
         func "sum4" [ "a"; "b"; "c"; "d" ]
           [ ret (v "a" +% v "b" +% v "c" +% v "d") ];
         func "main" []
           [
             print_int (call "fib" [ i 15 ]);
             print_int (call "sum4" [ i 1; i 2; i 3; i 4 ]);
             print_int (call "sum4" [ call "fib" [ i 5 ]; i 10; i 20; i 30 ]);
           ];
       ])

let test_globals_memory () =
  check_program
    (program
       [
         garray "buf" W32 64;
         garray_init "tab" W8 (Array.init 16 (fun k -> (k * 17) land 0xFF));
         garray "half" W16 32;
       ]
       [
         func "main" []
           [
             for_ "k" (i 0) (i 64) [ setidx32 "buf" (v "k") (v "k" *% v "k") ];
             print_int (idx32 "buf" (i 63));
             print_int (idx8 "tab" (i 15));
             setidx16 "half" (i 5) (i 0xBEEF);
             print_int (idx16 "half" (i 5));
             store16 (gaddr "half" +% i 8) (i 0x8000);
             print_int (load16s (gaddr "half" +% i 8));
             setidx8 "tab" (i 0) (i 0x80);
             print_int (load8s (gaddr "tab"));
             print_int (load8u (gaddr "tab"));
           ];
       ])

let test_many_locals () =
  (* more locals than register homes: forces frame slots *)
  let lets =
    List.init 12 (fun k -> let_ (Printf.sprintf "x%d" k) (i ((k * 13) + 1)))
  in
  let sum =
    List.fold_left
      (fun acc k -> acc +% v (Printf.sprintf "x%d" k))
      (i 0) (List.init 12 Fun.id)
  in
  check_program
    (program []
       [ func "main" [] (lets @ [ print_int sum;
                                   for_ "j" (i 0) (i 3)
                                     [ print_int (v "j" *% i 2) ] ]) ])

let test_shift_semantics () =
  check_program
    (program []
       [
         func "main" []
           [
             let_ "x" (i 0x80000001);
             let_ "k" (i 0);
             while_ (v "k" <=% i 40)
               [
                 print_int (shl (v "x") (v "k"));
                 print_int (shr (v "x") (v "k"));
                 print_int (sar (v "x") (v "k"));
                 set "k" (v "k" +% i 7);
               ];
           ];
       ])

let test_print_char () =
  check_program
    (program []
       [
         func "main" []
           [
             print_char (i 104);
             print_char (i 105);
             print_char (i 10);
           ];
       ])

let test_cmp_values () =
  check_program
    (program []
       [
         func "main" []
           [
             let_ "a" (i 5);
             let_ "b" (i 0xFFFFFFFB);
             print_int (v "a" <% v "b");
             print_int (ult (v "a") (v "b"));
             print_int (v "a" >=% v "b");
             print_int (uge (v "a") (v "b"));
             print_int ((v "a" =% v "b") +% (v "a" <>% v "b"));
           ];
       ])

let tests =
  [
    Alcotest.test_case "print constant" `Quick test_print_constant;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "large constants" `Quick test_large_constants;
    Alcotest.test_case "division runtime" `Quick test_division;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions and recursion" `Quick test_functions;
    Alcotest.test_case "globals and memory widths" `Quick test_globals_memory;
    Alcotest.test_case "frame slots" `Quick test_many_locals;
    Alcotest.test_case "shift semantics" `Quick test_shift_semantics;
    Alcotest.test_case "print char" `Quick test_print_char;
    Alcotest.test_case "comparison values" `Quick test_cmp_values;
  ]
