(* Encode/decode round-trip tests for the ARM-like ISA, including a QCheck
   generator of canonical instructions. *)

module A = Pf_arm.Insn

let roundtrip insn =
  match Pf_arm.Decode.decode (Pf_arm.Encode.encode insn) with
  | Some insn' -> insn' = insn
  | None -> false

let check_rt name insn =
  Alcotest.(check bool) (name ^ ": " ^ A.to_string insn) true (roundtrip insn)

let dp ?(cond = A.AL) ?(s = false) op rd rn op2 =
  A.Dp { cond; op; s; rd; rn; op2 }

let test_dp_roundtrip () =
  check_rt "add reg" (dp A.ADD 1 2 (A.Reg 3));
  check_rt "add imm" (dp A.ADD 1 2 (A.Imm { value = 0xFF; rot = 0 }));
  check_rt "add rot imm" (dp A.ADD 1 2 (A.Imm { value = 0x3F; rot = 4 }));
  check_rt "sub s" (dp ~s:true A.SUB 1 2 (A.Reg 3));
  check_rt "mov shift" (dp A.MOV 1 0 (A.Reg_shift (3, A.LSL, 5)));
  check_rt "mov lsr 31" (dp A.MOV 1 0 (A.Reg_shift (3, A.LSR, 31)));
  check_rt "mov shift reg" (dp A.MOV 1 0 (A.Reg_shift_reg (3, A.ASR, 4)));
  check_rt "cmp" (dp A.CMP 0 2 (A.Reg 3));
  check_rt "cmp imm" (dp A.CMP 0 2 (A.Imm { value = 10; rot = 0 }));
  check_rt "mvn" (dp A.MVN 7 0 (A.Reg 8));
  check_rt "conditional" (dp ~cond:A.NE A.ADD 1 2 (A.Reg 3));
  check_rt "bic" (dp A.BIC 12 11 (A.Reg_shift (10, A.ROR, 7)))

let test_mul_roundtrip () =
  check_rt "mul" (A.Mul { cond = A.AL; s = false; rd = 1; rm = 2; rs = 3;
                          acc = None });
  check_rt "mla"
    (A.Mul { cond = A.AL; s = false; rd = 1; rm = 2; rs = 3; acc = Some 4 });
  check_rt "muls"
    (A.Mul { cond = A.EQ; s = true; rd = 1; rm = 2; rs = 3; acc = None })

let mem ?(cond = A.AL) ?(signed = false) ?(writeback = false) ~load width rd
    rn offset =
  A.Mem { cond; load; width; signed; rd; rn; offset; writeback }

let test_mem_roundtrip () =
  check_rt "ldr imm" (mem ~load:true A.Word 1 2 (A.Ofs_imm 0x40));
  check_rt "ldr neg imm" (mem ~load:true A.Word 1 2 (A.Ofs_imm (-16)));
  check_rt "ldr max imm" (mem ~load:true A.Word 1 2 (A.Ofs_imm 4095));
  check_rt "str imm" (mem ~load:false A.Word 1 2 (A.Ofs_imm 8));
  check_rt "ldrb" (mem ~load:true A.Byte 1 2 (A.Ofs_imm 3));
  check_rt "strb" (mem ~load:false A.Byte 1 2 (A.Ofs_imm 3));
  check_rt "ldr reg" (mem ~load:true A.Word 1 2 (A.Ofs_reg (3, A.LSL, 0)));
  check_rt "ldr reg shift"
    (mem ~load:true A.Word 1 2 (A.Ofs_reg (3, A.LSL, 2)));
  check_rt "ldrb reg shift"
    (mem ~load:true A.Byte 1 2 (A.Ofs_reg (3, A.LSL, 1)));
  check_rt "ldrh" (mem ~load:true A.Half 1 2 (A.Ofs_imm 6));
  check_rt "ldrh neg" (mem ~load:true A.Half 1 2 (A.Ofs_imm (-6)));
  check_rt "ldrsh" (mem ~load:true ~signed:true A.Half 1 2 (A.Ofs_imm 6));
  check_rt "ldrsb" (mem ~load:true ~signed:true A.Byte 1 2 (A.Ofs_imm 1));
  check_rt "strh" (mem ~load:false A.Half 1 2 (A.Ofs_imm 2));
  check_rt "ldrh reg" (mem ~load:true A.Half 1 2 (A.Ofs_reg (3, A.LSL, 0)));
  check_rt "writeback" (mem ~load:true ~writeback:true A.Word 1 2 (A.Ofs_imm 4))

let test_block_branch_roundtrip () =
  check_rt "push" (A.Push { cond = A.AL; regs = [ 4; 5; 6; A.lr ] });
  check_rt "pop" (A.Pop { cond = A.AL; regs = [ 4; 5; 6; A.pc ] });
  check_rt "b fwd" (A.B { cond = A.AL; link = false; offset = 4096 });
  check_rt "b back" (A.B { cond = A.AL; link = false; offset = -4096 });
  check_rt "bne" (A.B { cond = A.NE; link = false; offset = 8 });
  check_rt "bl" (A.B { cond = A.AL; link = true; offset = 0 });
  check_rt "bx" (A.Bx { cond = A.AL; rm = A.lr });
  check_rt "swi" (A.Swi { cond = A.AL; number = 42 })

let test_unencodable () =
  let expect_fail name f =
    Alcotest.(check bool) name true
      (try
         ignore (Pf_arm.Encode.encode (f ()));
         false
       with Pf_arm.Encode.Unencodable _ -> true)
  in
  expect_fail "branch offset too far" (fun () ->
      A.B { cond = A.AL; link = false; offset = 1 lsl 26 });
  expect_fail "unaligned branch" (fun () ->
      A.B { cond = A.AL; link = false; offset = 2 });
  expect_fail "mem offset too big" (fun () ->
      mem ~load:true A.Word 1 2 (A.Ofs_imm 5000));
  expect_fail "half offset too big" (fun () ->
      mem ~load:true A.Half 1 2 (A.Ofs_imm 300));
  expect_fail "half shifted reg" (fun () ->
      mem ~load:true A.Half 1 2 (A.Ofs_reg (3, A.LSL, 1)));
  expect_fail "empty reglist" (fun () -> A.Push { cond = A.AL; regs = [] });
  expect_fail "signed store" (fun () ->
      mem ~load:false ~signed:true A.Half 1 2 (A.Ofs_imm 0))

let test_imm_operand_search () =
  let check_enc c =
    match A.encode_imm_operand c with
    | Some op2 ->
        Alcotest.(check (option int))
          (Printf.sprintf "imm %x resolves" c)
          (Some c) (A.operand2_value op2)
    | None -> Alcotest.failf "0x%x should be encodable" c
  in
  List.iter check_enc [ 0; 1; 255; 0x100; 0xFF00; 0x3FC; 0xFF000000; 0xC0000034 ];
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "imm %x not encodable" c)
        true
        (A.encode_imm_operand c = None))
    [ 0x101; 0x12345678; 0xFFFF ]

(* ---- property: random canonical instructions round-trip ---- *)

let reg_gen = QCheck.Gen.int_bound 15
let cond_gen =
  QCheck.Gen.oneofl
    [ A.EQ; A.NE; A.CS; A.CC; A.MI; A.PL; A.VS; A.VC; A.HI; A.LS; A.GE;
      A.LT; A.GT; A.LE; A.AL ]

let shift_gen = QCheck.Gen.oneofl [ A.LSL; A.LSR; A.ASR; A.ROR ]

let op2_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun r -> A.Reg r) reg_gen;
      map2
        (fun v rot -> A.Imm { value = v; rot })
        (int_bound 255) (int_bound 15);
      map3
        (fun r k n ->
          if k = A.LSL && n = 0 then A.Reg r else A.Reg_shift (r, k, n))
        reg_gen shift_gen (int_range 0 31);
      map3 (fun r k rs -> A.Reg_shift_reg (r, k, rs)) reg_gen shift_gen
        reg_gen;
    ]

let insn_gen =
  let open QCheck.Gen in
  let dp_gen =
    map3
      (fun (op, s) (rd, rn) (op2, cond) ->
        let s =
          match op with A.TST | A.TEQ | A.CMP | A.CMN -> false | _ -> s
        in
        A.Dp { cond; op; s; rd; rn; op2 })
      (pair
         (oneofl
            [ A.AND; A.EOR; A.SUB; A.RSB; A.ADD; A.ADC; A.SBC; A.RSC; A.TST;
              A.TEQ; A.CMP; A.CMN; A.ORR; A.MOV; A.BIC; A.MVN ])
         bool)
      (pair reg_gen reg_gen)
      (pair op2_gen cond_gen)
  in
  let mem_gen =
    map3
      (fun (load, width) (rd, rn) (ofs, cond) ->
        let signed = false in
        let offset =
          match (width, ofs) with
          | A.Half, `Imm n -> A.Ofs_imm (n mod 256)
          | _, `Imm n -> A.Ofs_imm n
          | A.Half, `Reg r -> A.Ofs_reg (r, A.LSL, 0)
          | _, `Reg r -> A.Ofs_reg (r, A.LSL, 2)
        in
        A.Mem { cond; load; width; signed; rd; rn; offset; writeback = false })
      (pair bool (oneofl [ A.Word; A.Byte; A.Half ]))
      (pair reg_gen reg_gen)
      (pair
         (oneof
            [ map (fun n -> `Imm n) (int_range (-4095) 4095);
              map (fun r -> `Reg r) reg_gen ])
         cond_gen)
  in
  let branch_gen =
    map3
      (fun link words cond -> A.B { cond; link; offset = words * 4 })
      bool
      (int_range (-100000) 100000)
      cond_gen
  in
  oneof
    [ dp_gen; mem_gen; branch_gen;
      map (fun (rm, cond) -> A.Bx { cond; rm }) (pair reg_gen cond_gen);
      map (fun (n, cond) -> A.Swi { cond; number = n })
        (pair (int_bound 0xFFFF) cond_gen) ]

let prop_roundtrip =
  QCheck.Test.make ~name:"random canonical instruction round-trips"
    ~count:2000
    (QCheck.make ~print:(fun i -> A.to_string i) insn_gen)
    (fun insn ->
      match Pf_arm.Decode.decode (Pf_arm.Encode.encode insn) with
      | Some insn' -> insn' = insn
      | None -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary words" ~count:2000
    (QCheck.map (fun x -> x land 0xFFFFFFFF) QCheck.int)
    (fun word ->
      ignore (Pf_arm.Decode.decode word);
      true)

let tests =
  [
    Alcotest.test_case "dp round-trips" `Quick test_dp_roundtrip;
    Alcotest.test_case "mul round-trips" `Quick test_mul_roundtrip;
    Alcotest.test_case "mem round-trips" `Quick test_mem_roundtrip;
    Alcotest.test_case "block/branch round-trips" `Quick
      test_block_branch_roundtrip;
    Alcotest.test_case "unencodable rejected" `Quick test_unencodable;
    Alcotest.test_case "imm operand search" `Quick test_imm_operand_search;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_decode_total;
  ]
