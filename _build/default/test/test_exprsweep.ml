(* Exhaustive differential sweep over two-operand expressions: every binop
   and comparison applied to a grid of boundary constants, checked
   evaluator-vs-compiled in three operand configurations (both variables,
   right immediate, left immediate).  This is the test that originally
   caught the shift-amount masking bug in operand fusion. *)

open Pf_kir.Ast

let consts =
  [ 0; 1; 2; 15; 16; 31; 32; 33; 255; 256; 4095; 0x12345678; 0x7FFFFFFF;
    0x80000000; 0xFFFFFFFF; -1; -206; -256 ]

let binops = [ Add; Sub; Mul; Div; Rem; Udiv; Urem; And; Or; Xor; Shl; Shr; Sar ]
let cmps = [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]

let check_program p ctx =
  let ev = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let image = Pf_armgen.Compile.program p in
  let out = Pf_armgen.Compile.run image in
  if ev <> out then
    Alcotest.failf "%s: eval=%S compiled=%S" ctx ev out

let body_for mk a b =
  [
    Let ("a", Int a);
    Let ("b", Int b);
    Print_int (mk (Var "a") (Var "b"));
    Print_int (mk (Var "a") (Int b));
    Print_int (mk (Int a) (Var "b"));
    Print_int (mk (Int a) (Int b));
  ]

let sweep name mk ops =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun op ->
          (* batch all constant pairs for one operator into one program so
             the sweep stays fast *)
          let body =
            List.concat_map
              (fun a -> List.concat_map (fun b -> body_for (mk op) a b) consts)
              consts
          in
          check_program
            { globals = [];
              funcs = [ { name = "main"; params = []; body } ] }
            name)
        ops)

let tests =
  [
    sweep "binops differential grid" (fun op a b -> Binop (op, a, b)) binops;
    sweep "comparison differential grid" (fun op a b -> Cmp (op, a, b)) cmps;
  ]
