(* End-to-end FITS checks: synthesize an ISA per program, translate, and
   run the 16-bit binary — the printed output must match both the ARM
   simulation and the KIR reference evaluator. *)

open Pf_kir.Build

let full_stack p =
  let expected = (Pf_kir.Eval.run p).output in
  let image = Pf_armgen.Compile.program p in
  let dyn_counts, arm_out = Pf_fits.Synthesis.dyn_counts_of_run image in
  Alcotest.(check string) "arm output" expected arm_out;
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let res = Pf_fits.Run.run tr in
  Alcotest.(check string) "fits output" expected res.Pf_fits.Run.output;
  (image, syn, tr, res)

let demo_program =
  program
    [ garray "tbl" W32 64; garray "bytes" W8 256 ]
    [
      func "mix" [ "x"; "y" ]
        [
          let_ "acc" (bxor (v "x") (shl (v "y") (i 3)));
          set "acc" (v "acc" +% shr (v "x") (i 7));
          ret (v "acc");
        ];
      func "main" []
        [
          for_ "k" (i 0) (i 64)
            [ setidx32 "tbl" (v "k") (call "mix" [ v "k"; v "k" *% i 3 ]) ];
          for_ "k" (i 0) (i 256)
            [ setidx8 "bytes" (v "k") (band (v "k" *% i 7) (i 255)) ];
          let_ "sum" (i 0);
          for_ "k" (i 0) (i 64)
            [
              set "sum" (bxor (v "sum") (idx32 "tbl" (v "k")));
              when_ (band (v "k") (i 3) =% i 0)
                [ set "sum" (v "sum" +% idx8 "bytes" (v "k")) ];
            ];
          print_int (v "sum");
          print_int (v "sum" /% i 17);
          print_int (urem (v "sum") (i 23));
        ];
    ]

let test_equivalence () = ignore (full_stack demo_program)

let test_mapping_rates () =
  let _, _, tr, res = full_stack demo_program in
  let static = Pf_fits.Translate.static_mapping_rate tr in
  Alcotest.(check bool)
    (Printf.sprintf "static mapping high (got %.1f%%)" static)
    true (static > 80.0);
  let dyn = res.Pf_fits.Run.dyn_one_to_one_pct in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic mapping high (got %.1f%%)" dyn)
    true (dyn > 85.0)

let test_code_size () =
  let _, _, tr, _ = full_stack demo_program in
  let saving = Pf_fits.Translate.code_size_saving tr in
  Alcotest.(check bool)
    (Printf.sprintf "code size saving near half (got %.1f%%)" saving)
    true
    (saving > 35.0 && saving <= 50.0)

let test_fetch_traffic_halves () =
  let image = Pf_armgen.Compile.program demo_program in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let arm = Pf_cpu.Arm_run.run image in
  let fits = Pf_fits.Run.run tr in
  let ratio =
    float_of_int fits.Pf_fits.Run.cache_accesses
    /. float_of_int arm.Pf_cpu.Arm_run.cache_accesses
  in
  Alcotest.(check bool)
    (Printf.sprintf "fetch accesses roughly halve (ratio %.2f)" ratio)
    true
    (ratio > 0.4 && ratio < 0.75)

let test_spec_wellformed () =
  let image = Pf_armgen.Compile.program demo_program in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let spec = syn.Pf_fits.Synthesis.spec in
  Alcotest.(check bool) "groups within budget" true
    (spec.Pf_fits.Spec.groups_used <= Pf_fits.Spec.max_groups);
  (* no two ops share an encoding slot *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (od : Pf_fits.Spec.opdef) ->
      let slot = (od.Pf_fits.Spec.group, od.Pf_fits.Spec.sub) in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d.%d unique" (fst slot) (snd slot))
        false (Hashtbl.mem seen slot);
      Hashtbl.add seen slot ())
    spec.Pf_fits.Spec.ops;
  (* dictionary within capacity and duplicate-free *)
  let d = spec.Pf_fits.Spec.dict in
  Alcotest.(check bool) "dict within capacity" true
    (Array.length d <= Pf_fits.Spec.dict_capacity);
  let dseen = Hashtbl.create 64 in
  Array.iter
    (fun value ->
      Alcotest.(check bool) "dict value unique" false (Hashtbl.mem dseen value);
      Hashtbl.add dseen value ())
    d

let test_recursive_program () =
  ignore
    (full_stack
       (program []
          [
            func "ack" [ "m"; "n" ]
              [
                when_ (v "m" =% i 0) [ ret (v "n" +% i 1) ];
                when_ (v "n" =% i 0) [ ret (call "ack" [ v "m" -% i 1; i 1 ]) ];
                ret
                  (call "ack"
                     [ v "m" -% i 1; call "ack" [ v "m"; v "n" -% i 1 ] ]);
              ];
            func "main" [] [ print_int (call "ack" [ i 2; i 3 ]) ];
          ]))

let test_memory_widths () =
  ignore
    (full_stack
       (program
          [ garray "h" W16 32 ]
          [
            func "main" []
              [
                for_ "k" (i 0) (i 32)
                  [ setidx16 "h" (v "k") (v "k" *% i 1021) ];
                let_ "s" (i 0);
                for_ "k" (i 0) (i 32)
                  [ set "s" (v "s" +% load16s (gaddr "h" +% shl (v "k") (i 1))) ];
                print_int (v "s");
              ];
          ]))

let tests =
  [
    Alcotest.test_case "arm/fits equivalence" `Quick test_equivalence;
    Alcotest.test_case "mapping rates" `Quick test_mapping_rates;
    Alcotest.test_case "code size halves" `Quick test_code_size;
    Alcotest.test_case "fetch traffic halves" `Quick test_fetch_traffic_halves;
    Alcotest.test_case "spec well-formed" `Quick test_spec_wellformed;
    Alcotest.test_case "recursion (ackermann)" `Quick test_recursive_program;
    Alcotest.test_case "halfword memory" `Quick test_memory_widths;
  ]
