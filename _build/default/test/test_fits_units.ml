(* Focused unit tests for the FITS core modules: operation keys, the base
   specification, coverage rules, expansion building blocks, and the
   register-organization analysis. *)

module A = Pf_arm.Insn
module K = Pf_fits.Opkey
module S = Pf_fits.Spec
module M = Pf_fits.Mapping

let dp ?(cond = A.AL) ?(s = false) op rd rn op2 = A.Dp { cond; op; s; rd; rn; op2 }
let imm v = Option.get (A.encode_imm_operand v)

let base_spec = S.base ~dict_head:[| 100; 200; 0xDEADBEEF |] ~reglists:[| [ 4; A.lr ] |]

(* ---- Opkey ---- *)

let test_opkey_two_op_detection () =
  let key i =
    match (K.of_insn i).K.key with
    | K.K_dp { two_op; _ } -> two_op
    | _ -> Alcotest.fail "expected dp key"
  in
  Alcotest.(check bool) "add rd=rn" true (key (dp A.ADD 1 1 (A.Reg 2)));
  Alcotest.(check bool) "add rd<>rn" false (key (dp A.ADD 1 2 (A.Reg 3)));
  Alcotest.(check bool) "commutative rd=rm" true (key (dp A.ADD 3 2 (A.Reg 3)));
  Alcotest.(check bool) "sub rd=rm is NOT two-op" false
    (key (dp A.SUB 3 2 (A.Reg 3)));
  Alcotest.(check bool) "mov always" true (key (dp A.MOV 1 0 (A.Reg 2)));
  Alcotest.(check bool) "cmp always" true (key (dp A.CMP 0 1 (imm 5)))

let test_opkey_shift_amount_in_key () =
  match (K.of_insn (dp A.ADD 1 2 (A.Reg_shift (3, A.LSL, 7)))).K.key with
  | K.K_dp { shape = K.Sh_shift_imm (A.LSL, 7); _ } -> ()
  | _ -> Alcotest.fail "shift amount must be part of the key"

let test_opkey_branch_cond () =
  match K.of_insn (A.B { cond = A.NE; link = false; offset = 0 }) with
  | { K.key = K.K_branch { cond = A.NE; link = false }; cond = A.AL } -> ()
  | _ -> Alcotest.fail "branch carries its condition in the key"

let test_opkey_strings () =
  Alcotest.(check string) "dp name" "add2.rr"
    (K.to_string (K.of_insn (dp A.ADD 1 1 (A.Reg 2))).K.key);
  Alcotest.(check string) "mem name" "ldr.w+i"
    (K.to_string
       (K.of_insn
          (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                   rd = 1; rn = 2; offset = A.Ofs_imm 8; writeback = false }))
       .K.key);
  Alcotest.(check string) "branch name" "b.ne"
    (K.to_string
       (K.of_insn (A.B { cond = A.NE; link = false; offset = 0 })).K.key)

(* ---- base spec ---- *)

let test_base_spec_layout () =
  Alcotest.(check int) "11 groups fixed" 11 base_spec.S.groups_used;
  Alcotest.(check int) "41 base opcodes" 41 (Array.length base_spec.S.ops);
  (* every op sits in a unique slot; operate2 sub-ops share groups 0/1 *)
  let slots = Hashtbl.create 64 in
  Array.iter
    (fun (od : S.opdef) ->
      Alcotest.(check bool) "slot unique" false
        (Hashtbl.mem slots (od.S.group, od.S.sub));
      Hashtbl.add slots (od.S.group, od.S.sub) ())
    base_spec.S.ops;
  Alcotest.(check (option int)) "dictionary lookup" (Some 2)
    (S.dict_index base_spec 0xDEADBEEF);
  Alcotest.(check (option int)) "dictionary miss" None
    (S.dict_index base_spec 42);
  Alcotest.(check (option int)) "register list lookup" (Some 0)
    (S.reglist_index base_spec [ 4; A.lr ])

let test_encoding_fields () =
  let s = base_spec.S.sis in
  (* operate2: group in [15:12], sub in [11:8], rd in [7:4], oprd in [3:0] *)
  let w = S.encode base_spec s.S.add2 ~rc:3 ~ra:0 ~oprd:7 in
  Alcotest.(check int) "operate2 encoding"
    ((s.S.add2.S.group lsl 12) lor (s.S.add2.S.sub lsl 8) lor (3 lsl 4) lor 7)
    w;
  let b = S.encode base_spec s.S.b_al ~rc:0 ~ra:0 ~oprd:0x7FF in
  Alcotest.(check int) "branch disp field" 0x7FF (b land 0xFFF);
  Alcotest.(check bool) "16-bit wide" true (w land lnot 0xFFFF = 0)

(* ---- coverage rules ---- *)

let covered insn = M.covered base_spec insn <> None

let test_base_coverage () =
  Alcotest.(check bool) "mov reg" true (covered (dp A.MOV 1 0 (A.Reg 2)));
  Alcotest.(check bool) "mov imm4" true (covered (dp A.MOV 1 0 (imm 15)));
  Alcotest.(check bool) "mov imm16 uncovered" false
    (covered (dp A.MOV 1 0 (imm 16)));
  Alcotest.(check bool) "mov dict-head imm" true
    (covered (dp A.MOV 1 0 (imm 200)));
  Alcotest.(check bool) "add destructive" true
    (covered (dp A.ADD 1 1 (A.Reg 2)));
  Alcotest.(check bool) "add 3-op uncovered in base" false
    (covered (dp A.ADD 1 2 (A.Reg 3)));
  Alcotest.(check bool) "ldr word small ofs" true
    (covered
       (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                rd = 1; rn = 2; offset = A.Ofs_imm 60; writeback = false }));
  Alcotest.(check bool) "ldr word misaligned ofs uncovered" false
    (covered
       (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                rd = 1; rn = 2; offset = A.Ofs_imm 62; writeback = false }));
  Alcotest.(check bool) "ldr word big ofs uncovered" false
    (covered
       (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                rd = 1; rn = 2; offset = A.Ofs_imm 64; writeback = false }));
  Alcotest.(check bool) "push with known list" true
    (covered (A.Push { cond = A.AL; regs = [ 4; A.lr ] }));
  Alcotest.(check bool) "push with unknown list uncovered" false
    (covered (A.Push { cond = A.AL; regs = [ 5; 6 ] }));
  Alcotest.(check bool) "swi" true
    (covered (A.Swi { cond = A.AL; number = 1 }));
  Alcotest.(check bool) "conditional op uncovered in base" false
    (covered (dp ~cond:A.EQ A.MOV 1 0 (imm 1)))

let test_destructive_shift_rule () =
  (* SIS lsl2.ri holds the amount in the field: requires rd = rm *)
  Alcotest.(check bool) "lsl rd=rm covered" true
    (covered (dp A.MOV 1 0 (A.Reg_shift (1, A.LSL, 3))));
  Alcotest.(check bool) "lsl rd<>rm uncovered" false
    (covered (dp A.MOV 1 0 (A.Reg_shift (2, A.LSL, 3))));
  Alcotest.(check bool) "lsl by reg rd=rm covered" true
    (covered (dp A.MOV 1 0 (A.Reg_shift_reg (1, A.LSL, 4))))

(* ---- expansion plans ---- *)

let plan_len insn = M.plan_length (M.plan base_spec ~pc:0x8000 insn)

let test_expansion_lengths () =
  Alcotest.(check int) "covered is 1" 1 (plan_len (dp A.MOV 1 0 (A.Reg 2)));
  Alcotest.(check int) "3-op add is 2" 2 (plan_len (dp A.ADD 1 2 (A.Reg 3)));
  Alcotest.(check int) "mov big imm is 1 (movD)" 1
    (plan_len (dp A.MOV 1 0 (imm 0xFF00)));
  Alcotest.(check int) "conditional mov is 2 (skip + op)" 2
    (plan_len (dp ~cond:A.EQ A.MOV 1 0 (imm 1)));
  Alcotest.(check int) "big-offset load is 3" 3
    (plan_len
       (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
                rd = 1; rn = 2; offset = A.Ofs_imm 4000; writeback = false }));
  Alcotest.(check int) "branches count 1 before layout" 1
    (plan_len (A.B { cond = A.AL; link = false; offset = 0x100000 }))

let test_expansion_micros_preserve_flags () =
  (* an expanded ADDS must still set flags exactly once, on its final step *)
  match M.plan base_spec ~pc:0 (dp ~s:true A.ADD 1 2 (A.Reg 3)) with
  | M.P_seq steps ->
      let sets_flags (fd : M.fdesc) =
        match fd.M.micro with
        | M.M_exec (A.Dp { s; _ }) -> s
        | M.M_dp32 { s; _ } -> s
        | _ -> false
      in
      Alcotest.(check int) "exactly one flag-setting step" 1
        (List.length (List.filter sets_flags steps));
      Alcotest.(check bool) "it is the last step" true
        (sets_flags (List.nth steps (List.length steps - 1)))
  | M.P_branch _ -> Alcotest.fail "not a branch"

let test_skip_encoding () =
  let fd = M.seq_skip base_spec ~cond:A.EQ ~count:3 in
  (match fd.M.micro with
  | M.M_exec (A.B { cond = A.NE; offset = 4; link = false }) -> ()
  | _ -> Alcotest.fail "skip 3 must be B.ne +4 (2*3-2)");
  Alcotest.(check bool) "count > 15 rejected" true
    (try
       ignore (M.seq_skip base_spec ~cond:A.EQ ~count:16);
       false
     with M.Unmappable _ -> true)

(* ---- register organization ---- *)

let test_regfile_analysis () =
  let image =
    Pf_armgen.Compile.program
      (let open Pf_kir.Build in
       program []
         [
           func "main" []
             [
               let_ "a" (i 1);
               let_ "b" (i 2);
               for_ "k" (i 0) (i 100) [ set "a" (v "a" +% v "b") ];
               print_int (v "a");
             ];
         ])
  in
  let profile, _ = Pf_fits.Profile.profile_run image in
  let r = Pf_fits.Regfile.analyze profile in
  Alcotest.(check bool) "uses several registers" true (r.Pf_fits.Regfile.distinct_used >= 4);
  Alcotest.(check bool) "coverage within [0,1]" true
    (r.Pf_fits.Regfile.coverage_top8 >= 0.0
    && r.Pf_fits.Regfile.coverage_top8 <= 1.0);
  Alcotest.(check bool) "hot list well-formed" true
    (List.length r.Pf_fits.Regfile.hot_order = r.Pf_fits.Regfile.distinct_used);
  Alcotest.(check int) "recommendation consistent"
    (if r.Pf_fits.Regfile.feasible_3bit then 3 else 4)
    r.Pf_fits.Regfile.recommended_bits;
  Alcotest.(check bool) "describe renders" true
    (String.length (Pf_fits.Regfile.describe r) > 40)

let tests =
  [
    Alcotest.test_case "opkey: two-op detection" `Quick
      test_opkey_two_op_detection;
    Alcotest.test_case "opkey: shift amount keyed" `Quick
      test_opkey_shift_amount_in_key;
    Alcotest.test_case "opkey: branch condition" `Quick test_opkey_branch_cond;
    Alcotest.test_case "opkey: names" `Quick test_opkey_strings;
    Alcotest.test_case "spec: base layout" `Quick test_base_spec_layout;
    Alcotest.test_case "spec: encoding fields" `Quick test_encoding_fields;
    Alcotest.test_case "mapping: base coverage" `Quick test_base_coverage;
    Alcotest.test_case "mapping: destructive shifts" `Quick
      test_destructive_shift_rule;
    Alcotest.test_case "mapping: expansion lengths" `Quick
      test_expansion_lengths;
    Alcotest.test_case "mapping: flags set once" `Quick
      test_expansion_micros_preserve_flags;
    Alcotest.test_case "mapping: skip instruction" `Quick test_skip_encoding;
    Alcotest.test_case "regfile analysis" `Quick test_regfile_analysis;
  ]
