(* Input/table generator tests — including checking the computed AES S-box
   against published values, which pins down the GF(2^8) arithmetic the
   rijndael benchmark rests on. *)

module G = Pf_mibench.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_aes_sbox_known_values () =
  (* FIPS-197 Figure 7 *)
  check_int "S[00]" 0x63 G.aes_sbox.(0x00);
  check_int "S[01]" 0x7C G.aes_sbox.(0x01);
  check_int "S[10]" 0xCA G.aes_sbox.(0x10);
  check_int "S[53]" 0xED G.aes_sbox.(0x53);
  check_int "S[AA]" 0xAC G.aes_sbox.(0xAA);
  check_int "S[FF]" 0x16 G.aes_sbox.(0xFF)

let test_aes_inverse () =
  for b = 0 to 255 do
    check_int
      (Printf.sprintf "inv(S[%02x])" b)
      b
      G.aes_inv_sbox.(G.aes_sbox.(b))
  done

let test_sbox_bijective () =
  let seen = Array.make 256 false in
  Array.iter (fun v -> seen.(v) <- true) G.aes_sbox;
  check_bool "S-box is a permutation" true (Array.for_all Fun.id seen)

let test_generators_deterministic () =
  Alcotest.(check (array int)) "bytes repeatable"
    (G.bytes ~seed:7 64) (G.bytes ~seed:7 64);
  check_bool "different seeds differ" true
    (G.bytes ~seed:7 64 <> G.bytes ~seed:8 64);
  Alcotest.(check (array int)) "samples repeatable"
    (G.samples16 ~seed:3 64) (G.samples16 ~seed:3 64)

let test_ranges () =
  Array.iter
    (fun b -> check_bool "byte range" true (b >= 0 && b < 256))
    (G.bytes ~seed:1 512);
  Array.iter
    (fun t ->
      check_bool "text is lowercase or space" true
        (t = Char.code ' ' || (t >= Char.code 'a' && t <= Char.code 'z')))
    (G.text ~seed:1 512);
  Array.iter
    (fun p -> check_bool "pixel range" true (p >= 0 && p < 256))
    (G.image8 ~seed:1 ~width:32 ~height:32)

let test_samples_look_like_audio () =
  (* signed 16-bit values stored as u16, with energy spread over time *)
  let s = G.samples16 ~seed:9 2048 in
  let signed v = if v >= 32768 then v - 65536 else v in
  let nonzero = Array.fold_left (fun a v -> if signed v <> 0 then a + 1 else a) 0 s in
  check_bool "mostly nonzero" true (nonzero > 1800);
  let max_abs = Array.fold_left (fun a v -> max a (abs (signed v))) 0 s in
  check_bool "bounded" true (max_abs < 32768);
  check_bool "uses real amplitude" true (max_abs > 4000)

let test_sine_table () =
  let t = G.sine_q14 256 in
  check_int "sin(0)" 0 t.(0);
  check_int "sin(pi/2)" 16384 t.(64);
  check_int "sin(pi)" 0 t.(128);
  (* odd symmetry in u32 two's complement *)
  check_int "sin(3pi/2)" (Pf_util.Bits.u32 (-16384)) t.(192)

let test_text_has_repeats () =
  (* string search needs recurring substrings, like natural language *)
  let t = G.text ~seed:5 4096 in
  let tbl = Hashtbl.create 512 in
  for k = 0 to Array.length t - 4 do
    let key = (t.(k), t.(k + 1), t.(k + 2), t.(k + 3)) in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  let max_rep = Hashtbl.fold (fun _ c m -> max c m) tbl 0 in
  check_bool "some 4-gram repeats" true (max_rep >= 3);
  check_bool "fewer distinct 4-grams than positions" true
    (Hashtbl.length tbl < Array.length t - 4)

let tests =
  [
    Alcotest.test_case "AES S-box (FIPS-197 values)" `Quick
      test_aes_sbox_known_values;
    Alcotest.test_case "AES inverse S-box" `Quick test_aes_inverse;
    Alcotest.test_case "S-box bijective" `Quick test_sbox_bijective;
    Alcotest.test_case "deterministic inputs" `Quick
      test_generators_deterministic;
    Alcotest.test_case "value ranges" `Quick test_ranges;
    Alcotest.test_case "audio-like samples" `Quick
      test_samples_look_like_audio;
    Alcotest.test_case "sine table" `Quick test_sine_table;
    Alcotest.test_case "text n-gram repeats" `Quick test_text_has_repeats;
  ]
