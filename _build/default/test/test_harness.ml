(* End-to-end figure-shape assertions: the qualitative claims of the
   paper's evaluation must hold on a cross-category mini-suite.  These are
   the tests that would catch a regression in the reproduction itself —
   e.g. FITS losing its switching-power advantage, or ARM8 suddenly
   beating FITS8 on misses. *)

module E = Pf_harness.Experiment

let mini_suite = [ "crc32"; "sha"; "jpeg"; "fft"; "ispell" ]

let results =
  lazy
    (List.map (fun n -> E.run_benchmark (Pf_mibench.Registry.find n))
       mini_suite)

let for_all_results name pred =
  List.iter
    (fun (r : E.bench_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s [%s]" name r.E.name)
        true (pred r))
    (Lazy.force results)

let switching (c : E.per_config) = c.E.power.Pf_power.Account.switching
let internal (c : E.per_config) = c.E.power.Pf_power.Account.internal
let leakage (c : E.per_config) = c.E.power.Pf_power.Account.leakage
let total_power (c : E.per_config) =
  c.E.power.Pf_power.Account.total /. float_of_int c.E.cycles

let saving get (r : E.bench_result) c =
  Pf_util.Stats.saving ~baseline:(get r.E.arm16) (get c)

let test_outputs_consistent () =
  for_all_results "all four configurations agree" (fun r ->
      r.E.outputs_consistent)

let test_fig3_4_mapping_band () =
  for_all_results "static mapping in the 90s" (fun r ->
      r.E.static_map_pct > 88.0 && r.E.static_map_pct <= 100.0);
  for_all_results "dynamic mapping in the 90s" (fun r ->
      r.E.dyn_map_pct > 90.0 && r.E.dyn_map_pct <= 100.0);
  for_all_results "expansions stay short (n <= 6)" (fun r ->
      List.for_all (fun (n, _) -> n <= 6) r.E.expansion_hist);
  (* across the suite, 1-to-2 dominates the expansions (paper: n = 2
     "almost always"); individual benchmarks may skew when they have only
     a handful of residual instructions *)
  let total, twos =
    List.fold_left
      (fun (t, d) (r : E.bench_result) ->
        List.fold_left
          (fun (t, d) (n, c) -> (t + c, if n = 2 then d + c else d))
          (t, d) r.E.expansion_hist)
      (0, 0) (Lazy.force results)
  in
  Alcotest.(check bool) "1-to-2 dominates across the suite" true
    (total = 0 || float_of_int twos >= 0.4 *. float_of_int total)

let test_fig5_code_size () =
  for_all_results "FITS cuts code nearly in half" (fun r ->
      let ratio = float_of_int r.E.code_fits /. float_of_int r.E.code_arm in
      ratio > 0.40 && ratio < 0.62);
  for_all_results "THUMB sits between ARM and FITS" (fun r ->
      r.E.code_fits < r.E.code_thumb && r.E.code_thumb < r.E.code_arm)

let test_fig7_switching () =
  for_all_results "FITS16 saves a big slice of switching power" (fun r ->
      saving switching r r.E.fits16 > 30.0);
  for_all_results "FITS8 too" (fun r -> saving switching r r.E.fits8 > 30.0);
  (* "ARM8 consumed as much overall switching power as the baseline" —
     and on thrashing benchmarks its refill traffic makes it LOSE power,
     so only the upper side is bounded *)
  for_all_results "ARM8 never saves switching power" (fun r ->
      saving switching r r.E.arm8 < 8.0)

let test_fig8_9_internal_leakage () =
  for_all_results "ARM8 internal ~ half (half the gates)" (fun r ->
      let s = saving internal r r.E.arm8 in
      s > 35.0 && s < 55.0);
  for_all_results "FITS8 internal ~ half" (fun r ->
      let s = saving internal r r.E.fits8 in
      s > 35.0 && s < 60.0);
  for_all_results "FITS16 internal saving is small" (fun r ->
      Float.abs (saving internal r r.E.fits16) < 15.0);
  for_all_results "leakage mirrors internal" (fun r ->
      Float.abs (saving leakage r r.E.arm8 -. saving internal r r.E.arm8)
      < 1.0)

let test_fig11_total_ordering () =
  (* the paper's Figure 11 ordering: FITS8 > ARM8 > FITS16 > 0 *)
  for_all_results "FITS8 beats ARM8" (fun r ->
      saving total_power r r.E.fits8 > saving total_power r r.E.arm8);
  for_all_results "ARM8 beats FITS16" (fun r ->
      saving total_power r r.E.arm8 > saving total_power r r.E.fits16);
  for_all_results "FITS16 still saves" (fun r ->
      saving total_power r r.E.fits16 > 0.0);
  for_all_results "FITS8 lands in the paper's band" (fun r ->
      let s = saving total_power r r.E.fits8 in
      s > 38.0 && s < 55.0)

let test_fig13_miss_rates () =
  (* "8 Kb caches for FITS have no more misses than 16 Kb for ARM" *)
  for_all_results "FITS8 misses <= ARM16 misses (small slack)" (fun r ->
      r.E.fits8.E.miss_rate_pm <= (r.E.arm16.E.miss_rate_pm *. 1.05) +. 5.0);
  for_all_results "ARM8 never beats ARM16" (fun r ->
      r.E.arm8.E.miss_rate_pm >= r.E.arm16.E.miss_rate_pm -. 1.0)

let test_fig13_jpeg_blowup () =
  (* jpeg's working set exceeds 8 KB: ARM8 must thrash while FITS8 holds *)
  let r =
    List.find (fun (r : E.bench_result) -> r.E.name = "jpeg")
      (Lazy.force results)
  in
  Alcotest.(check bool) "ARM8 thrashes on jpeg" true
    (r.E.arm8.E.miss_rate_pm > 10.0 *. r.E.arm16.E.miss_rate_pm);
  Alcotest.(check bool) "FITS8 does not" true
    (r.E.fits8.E.miss_rate_pm < 2.0 *. r.E.arm16.E.miss_rate_pm)

let test_fig14_ipc () =
  for_all_results "IPC comparable across ISAs" (fun r ->
      let base = r.E.arm16.E.ipc in
      Float.abs (r.E.fits16.E.ipc -. base) /. base < 0.20);
  for_all_results "IPC within the dual-issue envelope" (fun r ->
      List.for_all
        (fun (c : E.per_config) -> c.E.ipc > 0.3 && c.E.ipc <= 2.0)
        [ r.E.arm16; r.E.arm8; r.E.fits16; r.E.fits8 ])

let test_figure_rendering () =
  let rs = Lazy.force results in
  let figs =
    Pf_harness.Figures.mapping_figures rs
    @ Pf_harness.Figures.power_figures rs
  in
  Alcotest.(check int) "15 figures (3 mapping + 4 breakdowns + 8 power)" 15
    (List.length figs);
  List.iter
    (fun (f : Pf_harness.Figures.figure) ->
      let s = Pf_harness.Figures.render f in
      Alcotest.(check bool)
        (f.Pf_harness.Figures.id ^ " renders with average row")
        true
        (String.length s > 0
        && String.length f.Pf_harness.Figures.id > 0
        &&
        let has_avg = ref false in
        List.iter
          (fun line ->
            if String.length line >= 7 && String.sub line 0 7 = "AVERAGE"
            then has_avg := true)
          (String.split_on_char '\n' s);
        !has_avg);
      Alcotest.(check int)
        (f.Pf_harness.Figures.id ^ " row per benchmark")
        (List.length rs)
        (List.length f.Pf_harness.Figures.rows))
    figs

let test_ablation_knobs_monotone () =
  (* more AIS groups can only improve static mapping *)
  let image, dyn_counts =
    let b = Pf_mibench.Registry.find "sha" in
    let image =
      Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
        (b.Pf_mibench.Registry.program ~scale:1)
    in
    let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
    (image, dyn_counts)
  in
  let rate groups =
    let syn = Pf_fits.Synthesis.synthesize ~ais_groups:groups image ~dyn_counts in
    Pf_fits.Translate.static_mapping_rate
      (Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image)
  in
  let r0 = rate 0 and r2 = rate 2 and r5 = rate 5 in
  Alcotest.(check bool) "0 <= 2 groups" true (r0 <= r2 +. 0.01);
  Alcotest.(check bool) "2 <= 5 groups" true (r2 <= r5 +. 0.01);
  Alcotest.(check bool) "budget matters" true (r5 > r0)

let test_cross_application_correctness () =
  (* a foreign opcode plane with a local data plane must still execute
     correctly — this drives the fallback expansion paths hard *)
  let prep name =
    let b = Pf_mibench.Registry.find name in
    let image =
      Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
        (b.Pf_mibench.Registry.program ~scale:1)
    in
    let dyn_counts, out = Pf_fits.Synthesis.dyn_counts_of_run image in
    (image, dyn_counts, out)
  in
  let crc_image, crc_dyn, _ = prep "crc32" in
  let sha_image, sha_dyn, sha_out = prep "sha" in
  let crc_spec =
    (Pf_fits.Synthesis.synthesize crc_image ~dyn_counts:crc_dyn)
      .Pf_fits.Synthesis.spec
  in
  let dict, reglists = Pf_fits.Synthesis.data_plane sha_image ~dyn_counts:sha_dyn in
  let hybrid = Pf_fits.Spec.with_data_plane crc_spec ~dict ~reglists in
  let tr = Pf_fits.Translate.translate hybrid sha_image in
  let r = Pf_fits.Run.run tr in
  Alcotest.(check string) "sha runs correctly on crc32's opcodes" sha_out
    r.Pf_fits.Run.output;
  (* and its mapping rate must sit strictly below sha's own ISA *)
  let own_spec =
    (Pf_fits.Synthesis.synthesize sha_image ~dyn_counts:sha_dyn)
      .Pf_fits.Synthesis.spec
  in
  let own = Pf_fits.Translate.translate own_spec sha_image in
  Alcotest.(check bool) "own ISA maps better" true
    (Pf_fits.Translate.static_mapping_rate own
    > Pf_fits.Translate.static_mapping_rate tr)

let test_dcache_constant_across_configs () =
  (* the data cache is not a variable of the experiment: ARM16 and ARM8
     see identical data traffic; FITS sees the same program's traffic *)
  for_all_results "ARM d-miss rate identical across I-sizes" (fun r ->
      Float.abs
        (r.E.arm16.E.dcache_miss_rate_pm -. r.E.arm8.E.dcache_miss_rate_pm)
      < 0.001);
  (* FITS expansions can split or add individual accesses (e.g. a
     half-word store becomes two byte stores), so the per-access rate is
     only loosely preserved — the same ballpark, not equality *)
  for_all_results "FITS d-miss rate in ARM's ballpark" (fun r ->
      r.E.arm16.E.dcache_miss_rate_pm = 0.0
      || Float.abs
           (r.E.fits16.E.dcache_miss_rate_pm
           -. r.E.arm16.E.dcache_miss_rate_pm)
         /. r.E.arm16.E.dcache_miss_rate_pm
         < 0.6)

let test_synthesis_deterministic () =
  let b = Pf_mibench.Registry.find "fft" in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
      (b.Pf_mibench.Registry.program ~scale:1)
  in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let spec_of () =
    let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
    let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
    ( Array.map (fun (o : Pf_fits.Spec.opdef) -> o.Pf_fits.Spec.name)
        tr.Pf_fits.Translate.spec.Pf_fits.Spec.ops,
      tr.Pf_fits.Translate.spec.Pf_fits.Spec.dict,
      Array.map (fun (fi : Pf_fits.Translate.finsn) -> fi.Pf_fits.Translate.word)
        tr.Pf_fits.Translate.insns )
  in
  let a1, d1, w1 = spec_of () in
  let a2, d2, w2 = spec_of () in
  Alcotest.(check (array string)) "ops stable" a1 a2;
  Alcotest.(check (array int)) "dict stable" d1 d2;
  Alcotest.(check (array int)) "encodings stable" w1 w2

let tests =
  [
    Alcotest.test_case "outputs consistent" `Slow test_outputs_consistent;
    Alcotest.test_case "fig3/4: mapping band" `Slow test_fig3_4_mapping_band;
    Alcotest.test_case "fig5: code size" `Slow test_fig5_code_size;
    Alcotest.test_case "fig7: switching savings" `Slow test_fig7_switching;
    Alcotest.test_case "fig8/9: internal+leakage" `Slow
      test_fig8_9_internal_leakage;
    Alcotest.test_case "fig11: total power ordering" `Slow
      test_fig11_total_ordering;
    Alcotest.test_case "fig13: miss-rate claims" `Slow test_fig13_miss_rates;
    Alcotest.test_case "fig13: jpeg crossover" `Slow test_fig13_jpeg_blowup;
    Alcotest.test_case "fig14: IPC parity" `Slow test_fig14_ipc;
    Alcotest.test_case "figures render" `Slow test_figure_rendering;
    Alcotest.test_case "ablation monotonicity" `Slow
      test_ablation_knobs_monotone;
    Alcotest.test_case "cross-application hybrid ISA" `Slow
      test_cross_application_correctness;
    Alcotest.test_case "synthesis determinism" `Slow
      test_synthesis_deterministic;
    Alcotest.test_case "d-cache constancy" `Slow
      test_dcache_constant_across_configs;
  ]
