(* Thumb code-size model tests. *)

module A = Pf_arm.Insn
module T = Pf_thumb.Translate

let dp ?(cond = A.AL) ?(s = false) op rd rn op2 = A.Dp { cond; op; s; rd; rn; op2 }
let imm v = Option.get (A.encode_imm_operand v)

let check_cost name expected insn =
  Alcotest.(check int) (name ^ ": " ^ A.to_string insn) expected (T.cost_of insn)

let test_single_halfword_forms () =
  check_cost "mov low reg" 1 (dp A.MOV 1 0 (A.Reg 2));
  check_cost "mov imm8" 1 (dp A.MOV 1 0 (imm 200));
  check_cost "cmp imm8" 1 (dp A.CMP 0 1 (imm 10));
  check_cost "add destructive" 1 (dp A.ADD 1 1 (A.Reg 2));
  check_cost "add 3-address low" 1 (dp A.ADD 1 2 (A.Reg 3));
  check_cost "lsl imm" 1 (dp A.MOV 1 0 (A.Reg_shift (2, A.LSL, 4)));
  check_cost "uncond branch" 1 (A.B { cond = A.AL; link = false; offset = 8 });
  check_cost "cond branch" 1 (A.B { cond = A.NE; link = false; offset = 8 });
  check_cost "ldr small ofs" 1
    (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
             rd = 1; rn = 2; offset = A.Ofs_imm 16; writeback = false });
  check_cost "push low" 1 (A.Push { cond = A.AL; regs = [ 4; 5; A.lr ] });
  check_cost "swi" 1 (A.Swi { cond = A.AL; number = 1 })

let test_expanded_forms () =
  check_cost "bl is a pair" 2 (A.B { cond = A.AL; link = true; offset = 0 });
  check_cost "eor 3-address" 2 (dp A.EOR 1 2 (A.Reg 3));
  check_cost "big constant" 2 (dp A.MOV 1 0 (imm 0xFF00));
  check_cost "and imm needs construction" 2 (dp A.AND 1 1 (imm 200));
  check_cost "shifted operand" 2 (dp A.ADD 1 1 (A.Reg_shift (2, A.LSL, 3)));
  check_cost "conditional non-branch" 2 (dp ~cond:A.EQ A.MOV 1 0 (imm 1));
  check_cost "large mem offset" 2
    (A.Mem { cond = A.AL; load = true; width = A.Word; signed = false;
             rd = 1; rn = 2; offset = A.Ofs_imm 1024; writeback = false });
  check_cost "push high reg" 2 (A.Push { cond = A.AL; regs = [ 4; 8; A.lr ] })

let test_estimate_on_suite () =
  (* on real compiled programs the Thumb model must land in the published
     MiBench band: 25-40% smaller than ARM *)
  List.iter
    (fun name ->
      let b = Pf_mibench.Registry.find name in
      let image =
        Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll
          (b.Pf_mibench.Registry.program ~scale:1)
      in
      let e = T.estimate image in
      let saving = T.size_saving e in
      Alcotest.(check bool)
        (Printf.sprintf "%s saving %.1f%% within band" name saving)
        true
        (saving > 15.0 && saving < 45.0);
      Alcotest.(check bool) "halfwords accounted" true
        (2 * e.T.halfwords <= e.T.thumb_bytes))
    [ "crc32"; "sha"; "dijkstra"; "adpcm.encode" ]

let tests =
  [
    Alcotest.test_case "single-halfword forms" `Quick
      test_single_halfword_forms;
    Alcotest.test_case "expanded forms" `Quick test_expanded_forms;
    Alcotest.test_case "suite savings in band" `Quick test_estimate_on_suite;
  ]
