(* Translator-level tests: branch layout and demotion, predication via SK,
   dictionary assignment, instruction packing, and the profile module. *)

module A = Pf_arm.Insn

let build_program p =
  let image = Pf_armgen.Compile.program p in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  (image, Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image)

let run_fits tr = (Pf_fits.Run.run tr).Pf_fits.Run.output

(* a program whose main is long enough that early branches to the end
   exceed the 12-bit near range (+-4 KB) after translation *)
let far_branch_program =
  let open Pf_kir.Build in
  let filler =
    List.concat
      (List.init 40 (fun k ->
           [
             set "acc" (v "acc" +% i (k + 1));
             set "acc" (bxor (v "acc") (shl (v "acc") (i 3)));
             set "acc" (v "acc" -% shr (v "acc") (i 5));
             setidx32 "buf" (band (v "acc") (i 63)) (v "acc");
             set "acc" (v "acc" +% idx32 "buf" (i (k land 63)));
           ]))
  in
  program
    [ garray "buf" W32 64 ]
    [
      func "main" []
        ([ let_ "acc" (i 1);
           (* a conditional branch over the whole body *)
           when_ (v "acc" =% i 0) [ ret (i (-1)) ] ]
        @ filler
        @ [ print_int (v "acc") ]);
    ]

let test_layout_far_branches () =
  (* force far branches by unrolling the body hard *)
  let p = far_branch_program in
  let expected = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let image = Pf_armgen.Compile.program ~unroll:16 p in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  Alcotest.(check string) "far layout still correct" expected (run_fits tr)

let test_addr_map_monotonic () =
  let _, tr = build_program far_branch_program in
  let pairs =
    Hashtbl.fold (fun arm fits acc -> (arm, fits) :: acc)
      tr.Pf_fits.Translate.addr_of_arm []
    |> List.sort compare
  in
  let rec monotone = function
    | (_, f1) :: ((_, f2) :: _ as tl) -> f1 < f2 && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "FITS addresses preserve ARM order" true
    (monotone pairs);
  (* every FITS address is 2-byte aligned and in range *)
  Alcotest.(check bool) "alignment" true
    (List.for_all (fun (_, f) -> f land 1 = 0) pairs)

let test_packing_consistent () =
  let _, tr = build_program far_branch_program in
  Array.iteri
    (fun idx (fi : Pf_fits.Translate.finsn) ->
      let word = tr.Pf_fits.Translate.words.(idx / 2) in
      let half = if idx land 1 = 0 then word land 0xFFFF else word lsr 16 in
      if half <> fi.Pf_fits.Translate.word then
        Alcotest.failf "packing mismatch at %d" idx)
    tr.Pf_fits.Translate.insns;
  Alcotest.(check bool) "16-bit encodings" true
    (Array.for_all
       (fun (fi : Pf_fits.Translate.finsn) ->
         fi.Pf_fits.Translate.word land lnot 0xFFFF = 0)
       tr.Pf_fits.Translate.insns)

let test_group_accounting () =
  let _, tr = build_program far_branch_program in
  (* the group structure tiles the instruction stream: every instruction
     is part of exactly one group whose length matches its 'first' flags *)
  let insns = tr.Pf_fits.Translate.insns in
  let i = ref 0 in
  while !i < Array.length insns do
    let fi = insns.(!i) in
    if not fi.Pf_fits.Translate.first then
      Alcotest.failf "expected group start at %d" !i;
    let n = fi.Pf_fits.Translate.group_len in
    for k = 1 to n - 1 do
      if insns.(!i + k).Pf_fits.Translate.first then
        Alcotest.failf "unexpected group start inside group at %d" (!i + k)
    done;
    i := !i + n
  done

let test_dict_indices_in_range () =
  let _, tr = build_program far_branch_program in
  let spec = tr.Pf_fits.Translate.spec in
  Alcotest.(check bool) "dict fits capacity" true
    (Array.length spec.Pf_fits.Spec.dict <= Pf_fits.Spec.dict_capacity)

let test_predication_via_skip () =
  (* build a program rich in conditional moves (Cmp materialization) and
     check exact behaviour *)
  let open Pf_kir.Build in
  let p =
    program []
      [
        func "main" []
          [
            let_ "t" (i 0);
            for_ "k" (i 0) (i 50)
              [
                set "t"
                  (v "t"
                  +% (v "k" <% i 25)
                  +% shl (v "k" >=% i 25) (i 4));
              ];
            print_int (v "t");
          ];
      ]
  in
  let expected = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let _, tr = build_program p in
  Alcotest.(check string) "conditional execution preserved" expected
    (run_fits tr)

(* ---- profile module ---- *)

let test_profile_counts () =
  let open Pf_kir.Build in
  let p =
    program []
      [
        func "main" []
          [
            let_ "x" (i 0);
            for_ "k" (i 0) (i 10) [ set "x" (v "x" +% v "k") ];
            print_int (v "x");
          ];
      ]
  in
  let image = Pf_armgen.Compile.program p in
  let profile, out = Pf_fits.Profile.profile_run image in
  Alcotest.(check string) "profiled run output" "45\n" out;
  Alcotest.(check bool) "dynamic >= static" true
    (profile.Pf_fits.Profile.dyn_insns
    >= profile.Pf_fits.Profile.static_insns);
  (* the ADD in the loop must appear among the heaviest dynamic keys *)
  let heavy = Pf_fits.Profile.keys_by_dyn_weight profile in
  Alcotest.(check bool) "nonempty key ranking" true (List.length heavy > 5);
  let _, top_w = List.hd heavy in
  Alcotest.(check bool) "ranking is sorted" true
    (List.for_all (fun (_, w) -> w <= top_w) heavy);
  (* registers_by_use mentions all 16 *)
  Alcotest.(check int) "register ranking complete" 16
    (List.length (Pf_fits.Profile.registers_by_use profile));
  Alcotest.(check bool) "summary renders" true
    (String.length (Pf_fits.Profile.summary profile) > 100)

let test_static_profile_of_image () =
  let image =
    Pf_armgen.Compile.program
      (let open Pf_kir.Build in
       program [] [ func "main" [] [ print_int (i 1) ] ])
  in
  let profile = Pf_fits.Profile.of_image image in
  Alcotest.(check int) "no dynamic weight" 0
    profile.Pf_fits.Profile.dyn_insns;
  Alcotest.(check bool) "static instructions counted" true
    (profile.Pf_fits.Profile.static_insns > 5)

let test_static_only_synthesis () =
  (* the paper's flow uses profile data, but static-only synthesis (all
     dynamic counts zero) must still produce a working ISA *)
  let open Pf_kir.Build in
  let p =
    program
      [ garray "g" W32 16 ]
      [
        func "main" []
          [
            for_ "k" (i 0) (i 16) [ setidx32 "g" (v "k") (v "k" *% v "k") ];
            let_ "s" (i 0);
            for_ "k" (i 0) (i 16) [ set "s" (v "s" +% idx32 "g" (v "k")) ];
            print_int (v "s");
          ];
      ]
  in
  let expected = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let image = Pf_armgen.Compile.program p in
  let zeros = Array.make (Array.length image.Pf_arm.Image.words) 0 in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts:zeros in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  Alcotest.(check string) "static-only ISA executes" expected (run_fits tr)

let tests =
  [
    Alcotest.test_case "far branch layout" `Quick test_layout_far_branches;
    Alcotest.test_case "address map monotone" `Quick test_addr_map_monotonic;
    Alcotest.test_case "word packing" `Quick test_packing_consistent;
    Alcotest.test_case "group accounting" `Quick test_group_accounting;
    Alcotest.test_case "dictionary bounds" `Quick test_dict_indices_in_range;
    Alcotest.test_case "predication via skip" `Quick
      test_predication_via_skip;
    Alcotest.test_case "profile counts" `Quick test_profile_counts;
    Alcotest.test_case "static profile" `Quick test_static_profile_of_image;
    Alcotest.test_case "static-only synthesis" `Quick
      test_static_only_synthesis;
  ]
