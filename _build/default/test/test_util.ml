(* Unit and property tests for the pf_util substrate. *)

open Pf_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Bits ---- *)

let test_mask () =
  check_int "mask 0" 0 (Bits.mask 0);
  check_int "mask 1" 1 (Bits.mask 1);
  check_int "mask 8" 0xFF (Bits.mask 8);
  check_int "mask 32" 0xFFFFFFFF (Bits.mask 32);
  Alcotest.check_raises "mask -1" (Invalid_argument "Bits.mask") (fun () ->
      ignore (Bits.mask (-1)))

let test_extract_insert () =
  check_int "extract" 0xB (Bits.extract 0xAB ~lo:0 ~width:4);
  check_int "extract hi" 0xA (Bits.extract 0xAB ~lo:4 ~width:4);
  check_int "insert" 0xCB (Bits.insert 0xAB ~lo:4 ~width:4 0xC);
  check_int "insert keeps others" 0xA5
    (Bits.insert 0xA0 ~lo:0 ~width:4 0x5)

let test_sign_extend () =
  check_int "positive" 5 (Bits.sign_extend ~width:8 5);
  check_int "negative" (-1) (Bits.sign_extend ~width:8 0xFF);
  check_int "boundary" (-128) (Bits.sign_extend ~width:8 0x80);
  check_int "wide" (-1) (Bits.sign_extend ~width:32 0xFFFFFFFF)

let test_fits () =
  check_bool "unsigned in" true (Bits.fits_unsigned ~width:4 15);
  check_bool "unsigned out" false (Bits.fits_unsigned ~width:4 16);
  check_bool "unsigned neg" false (Bits.fits_unsigned ~width:4 (-1));
  check_bool "signed lo" true (Bits.fits_signed ~width:4 (-8));
  check_bool "signed out lo" false (Bits.fits_signed ~width:4 (-9));
  check_bool "signed hi" true (Bits.fits_signed ~width:4 7);
  check_bool "signed out hi" false (Bits.fits_signed ~width:4 8)

let test_rotate () =
  check_int "ror 8" 0x78123456 (Bits.rotate_right32 0x12345678 8);
  check_int "ror 0" 0x12345678 (Bits.rotate_right32 0x12345678 0);
  check_int "ror 32 = id" 0x12345678 (Bits.rotate_right32 0x12345678 32)

let test_popcount_hamming () =
  check_int "popcount 0" 0 (Bits.popcount 0);
  check_int "popcount ff" 8 (Bits.popcount 0xFF);
  check_int "hamming self" 0 (Bits.hamming 0xABCD 0xABCD);
  check_int "hamming" 1 (Bits.hamming 0 1)

let test_log2 () =
  check_int "log2 1" 0 (Bits.log2_exact 1);
  check_int "log2 1024" 10 (Bits.log2_exact 1024);
  check_bool "pow2 0" false (Bits.is_power_of_two 0);
  check_bool "pow2 3" false (Bits.is_power_of_two 3);
  check_bool "pow2 64" true (Bits.is_power_of_two 64)

let test_signed32 () =
  check_int "to_signed32 pos" 1 (Bits.to_signed32 1);
  check_int "to_signed32 neg" (-1) (Bits.to_signed32 0xFFFFFFFF);
  check_int "u32 wraps" 0 (Bits.u32 (1 lsl 32))

(* properties *)

let u32_gen = QCheck.map (fun x -> x land 0xFFFFFFFF) QCheck.int

let prop_extract_insert =
  QCheck.Test.make ~name:"insert then extract is identity" ~count:500
    (QCheck.triple u32_gen (QCheck.int_bound 28) (QCheck.int_bound 15))
    (fun (x, lo, v) ->
      Bits.extract (Bits.insert x ~lo ~width:4 v) ~lo ~width:4 = v land 0xF)

let prop_rotate_inverse =
  QCheck.Test.make ~name:"rotate right 32-r undoes rotate right r" ~count:500
    (QCheck.pair u32_gen (QCheck.int_bound 31))
    (fun (x, r) ->
      Bits.rotate_right32 (Bits.rotate_right32 x r) ((32 - r) land 31) = x)

let prop_hamming_triangle =
  QCheck.Test.make ~name:"hamming satisfies triangle inequality" ~count:500
    (QCheck.triple u32_gen u32_gen u32_gen)
    (fun (a, b, c) ->
      Bits.hamming a c <= Bits.hamming a b + Bits.hamming b c)

let prop_sign_extend_range =
  QCheck.Test.make ~name:"sign_extend lands in the signed range" ~count:500
    (QCheck.pair u32_gen (QCheck.int_range 1 32))
    (fun (x, w) ->
      let v = Bits.sign_extend ~width:w x in
      v >= -(1 lsl (w - 1)) && v < 1 lsl (w - 1))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  check_bool "split streams differ" true (xs <> ys)

let test_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 Fun.id) sorted

(* ---- Stats ---- *)

let test_histogram () =
  let h = Stats.histogram () in
  Stats.add h 5;
  Stats.add h 5;
  Stats.add h ~weight:3 7;
  check_int "count 5" 2 (Stats.count h 5);
  check_int "count 7" 3 (Stats.count h 7);
  check_int "count missing" 0 (Stats.count h 9);
  check_int "total" 5 (Stats.total h);
  check_int "distinct" 2 (Stats.distinct h);
  Alcotest.(check (list (pair int int)))
    "sorted desc" [ (7, 3); (5, 2) ] (Stats.sorted_desc h);
  Alcotest.(check (list (pair int int))) "top 1" [ (7, 3) ] (Stats.top h 1)

let test_coverage () =
  let h = Stats.histogram () in
  Stats.add h ~weight:3 1;
  Stats.add h ~weight:1 10;
  Alcotest.(check (float 1e-9)) "coverage" 0.75
    (Stats.coverage h (fun k -> k < 5))

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "saving" 25.0
    (Stats.saving ~baseline:4.0 3.0);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [])

(* ---- Table ---- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  check_bool "contains separator" true (String.contains s '-');
  let lines = String.split_on_char '\n' s in
  check_int "line count" 5 (List.length lines);
  (* header + sep + 2 rows + trailing newline *)
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.render: row length mismatch") (fun () ->
      ignore (Table.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_formatting () =
  Alcotest.(check string) "pct" "49.4" (Table.pct 49.42);
  Alcotest.(check string) "f2" "1.50" (Table.f2 1.5);
  Alcotest.(check string) "si k" "1.5k" (Table.si 1500.0);
  Alcotest.(check string) "si m" "2M" (Table.si 2e6)

let tests =
  [
    Alcotest.test_case "bits: mask" `Quick test_mask;
    Alcotest.test_case "bits: extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "bits: sign extend" `Quick test_sign_extend;
    Alcotest.test_case "bits: fits" `Quick test_fits;
    Alcotest.test_case "bits: rotate" `Quick test_rotate;
    Alcotest.test_case "bits: popcount/hamming" `Quick test_popcount_hamming;
    Alcotest.test_case "bits: log2/power-of-two" `Quick test_log2;
    Alcotest.test_case "bits: signed32" `Quick test_signed32;
    QCheck_alcotest.to_alcotest prop_extract_insert;
    QCheck_alcotest.to_alcotest prop_rotate_inverse;
    QCheck_alcotest.to_alcotest prop_hamming_triangle;
    QCheck_alcotest.to_alcotest prop_sign_extend_range;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "stats: histogram" `Quick test_histogram;
    Alcotest.test_case "stats: coverage" `Quick test_coverage;
    Alcotest.test_case "stats: means/savings" `Quick test_means;
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: formatting" `Quick test_formatting;
  ]
