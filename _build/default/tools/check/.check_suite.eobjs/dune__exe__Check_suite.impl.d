tools/check/check_suite.ml: List Pf_arm Pf_armgen Pf_kir Pf_mibench Printexc Printf String Unix
