tools/check/check_suite.mli:
