tools/check/diag.ml: Array Hashtbl List Option Pf_arm Pf_armgen Pf_fits Pf_mibench Printf Sys
