tools/check/diag.mli:
