tools/check/diag2.ml: Array Pf_arm Pf_armgen Pf_fits Pf_mibench Printf Sys
