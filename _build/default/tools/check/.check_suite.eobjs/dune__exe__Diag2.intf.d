tools/check/diag2.mli:
