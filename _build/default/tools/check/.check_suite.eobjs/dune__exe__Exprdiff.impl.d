tools/check/exprdiff.ml: List Pf_arm Pf_armgen Pf_kir Printf String
