tools/check/exprdiff.mli:
