tools/check/footprint.mli:
