tools/check/run_figs.ml: List Pf_harness Printf Unix
