tools/check/run_figs.mli:
