let () =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (b : Pf_mibench.Registry.benchmark) ->
      let t1 = Unix.gettimeofday () in
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      (try
         let ev = Pf_kir.Eval.run p in
         let image = Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p in
         let st = Pf_arm.Exec.create image in
         Pf_arm.Exec.run st ~on_step:(fun _ ~pc:_ _ _ -> ());
         let out = Pf_arm.Exec.output st in
         let ok = out = ev.Pf_kir.Eval.output in
         Printf.printf "%-18s %s  eval_steps=%-9d arm_steps=%-9d code=%dB  %.2fs\n%!"
           b.Pf_mibench.Registry.name
           (if ok then "OK " else "MISMATCH")
           ev.Pf_kir.Eval.steps st.Pf_arm.Exec.steps
           (Pf_arm.Image.code_size_bytes image)
           (Unix.gettimeofday () -. t1);
         if not ok then begin
           Printf.printf "  eval: %s\n  arm : %s\n"
             (String.concat "\\n" (String.split_on_char '\n' ev.Pf_kir.Eval.output))
             (String.concat "\\n" (String.split_on_char '\n' out))
         end
       with e -> Printf.printf "%-18s EXC %s\n%!" b.Pf_mibench.Registry.name (Printexc.to_string e)))
    Pf_mibench.Registry.all;
  Printf.printf "total %.2fs\n" (Unix.gettimeofday () -. t0)
