(* Diagnose residual 1-to-n mappings for one benchmark. *)
let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sha" in
  let b = Pf_mibench.Registry.find name in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image = Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let spec = syn.Pf_fits.Synthesis.spec in
  Printf.printf "%s\n" (Pf_fits.Spec.describe spec);
  (* aggregate residual expansions by opkey *)
  let tbl = Hashtbl.create 64 in
  let code_base = image.Pf_arm.Image.code_base in
  Array.iteri
    (fun idx insn ->
      match insn with
      | None -> ()
      | Some insn ->
          let pc = code_base + 4*idx in
          let plan = Pf_fits.Mapping.plan_in_image spec image ~pc insn in
          let len = Pf_fits.Mapping.plan_length plan in
          if len > 1 then begin
            let pk = Pf_fits.Opkey.of_insn insn in
            let key = (Pf_fits.Opkey.to_string pk.Pf_fits.Opkey.key,
                       Pf_arm.Insn.cond_suffix pk.Pf_fits.Opkey.cond, len) in
            let (s, d) = Option.value ~default:(0,0) (Hashtbl.find_opt tbl key) in
            Hashtbl.replace tbl key (s+1, d + dyn_counts.(idx))
          end)
    image.Pf_arm.Image.insns;
  let l = Hashtbl.fold (fun k v acc -> (k,v)::acc) tbl [] in
  let l = List.sort (fun (_,(_,d1)) (_,(_,d2)) -> compare d2 d1) l in
  Printf.printf "residual expansions (key, cond, len): static dyn\n";
  List.iteri (fun i ((k,c,len),(s,d)) ->
      if i < 25 then Printf.printf "  %-22s %-3s n=%d  static=%-5d dyn=%d\n" k c len s d) l
