(* Show concrete unmapped instructions of a given mnemonic. *)
let () =
  let name = Sys.argv.(1) in
  let b = Pf_mibench.Registry.find name in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image = Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let spec = syn.Pf_fits.Synthesis.spec in
  let code_base = image.Pf_arm.Image.code_base in
  let shown = ref 0 in
  Array.iteri
    (fun idx insn ->
      match insn with
      | None -> ()
      | Some insn ->
          let pc = code_base + 4*idx in
          let plan = Pf_fits.Mapping.plan_in_image spec image ~pc insn in
          let len = Pf_fits.Mapping.plan_length plan in
          if len > 1 && !shown < 40 && Pf_arm.Insn.is_mem insn then begin
            incr shown;
            Printf.printf "  %06x n=%d dyn=%-7d %s\n" pc len dyn_counts.(idx)
              (Pf_arm.Insn.to_string insn)
          end)
    image.Pf_arm.Image.insns
