(* Brute-force differential search over small expressions. *)
open Pf_kir.Ast
let consts = [0;1;2;15;31;32;33;255;256;4095;0x12345678;0x7FFFFFFF;0x80000000;0xFFFFFFFF;-1;-206;-256]
let binops = [Add;Sub;Mul;Div;Rem;Udiv;Urem;And;Or;Xor;Shl;Shr;Sar]
let cmps = [Eq;Ne;Lt;Le;Gt;Ge;Ult;Ule;Ugt;Uge]
let check e =
  let p = { globals = []; funcs = [ { name = "main"; params = []; body = [ Print_int e ] } ] } in
  let ev = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
  let image = Pf_armgen.Compile.program p in
  let st = Pf_arm.Exec.create image in
  Pf_arm.Exec.run st ~on_step:(fun _ ~pc:_ _ _ -> ());
  let out = Pf_arm.Exec.output st in
  if ev <> out then
    Printf.printf "MISMATCH eval=%s arm=%s\n%!" (String.trim ev) (String.trim out)
let () =
  List.iter (fun op ->
    List.iter (fun a ->
      List.iter (fun b ->
        check (Binop (op, Int a, Int b));
        (* also via variables so constant folding paths differ *)
        let p = { globals = []; funcs = [ { name = "main"; params = [];
          body = [ Let ("a", Int a); Let ("b", Int b);
                   Print_int (Binop (op, Var "a", Var "b"));
                   Print_int (Binop (op, Var "a", Int b));
                   Print_int (Binop (op, Int a, Var "b")) ] } ] } in
        let ev = (Pf_kir.Eval.run p).Pf_kir.Eval.output in
        let image = Pf_armgen.Compile.program p in
        let st = Pf_arm.Exec.create image in
        Pf_arm.Exec.run st ~on_step:(fun _ ~pc:_ _ _ -> ());
        let out = Pf_arm.Exec.output st in
        if ev <> out then
          Printf.printf "MISMATCH op a=%d b=%d\n eval=%s\n arm =%s\n%!" a b
            (String.concat "," (String.split_on_char '\n' ev))
            (String.concat "," (String.split_on_char '\n' out)))
        consts) consts) binops;
  List.iter (fun op ->
    List.iter (fun a ->
      List.iter (fun b ->
        check (Cmp (op, Int a, Int b)))
        consts) consts) cmps;
  print_endline "expression sweep done"
