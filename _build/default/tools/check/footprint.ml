let () =
  List.iter
    (fun (b : Pf_mibench.Registry.benchmark) ->
      let p = b.Pf_mibench.Registry.program ~scale:1 in
      let image = Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p in
      let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
      (* executed footprint: distinct 32-byte blocks with any execution,
         and the "hot" footprint: blocks covering 99% of dynamic count *)
      let blocks = Hashtbl.create 512 in
      Array.iteri (fun idx c ->
          if c > 0 then begin
            let blk = idx / 8 in
            let cur = Option.value ~default:0 (Hashtbl.find_opt blocks blk) in
            Hashtbl.replace blocks blk (cur + c)
          end) dyn_counts;
      let counts = Hashtbl.fold (fun _ c acc -> c :: acc) blocks [] in
      let sorted = List.sort (fun a b -> compare b a) counts in
      let total = List.fold_left (+) 0 sorted in
      let rec hot acc n = function
        | [] -> n
        | c :: tl -> if acc * 100 >= total * 95 then n else hot (acc+c) (n+1) tl
      in
      let hot_blocks = hot 0 0 sorted in
      Printf.printf "%-18s code=%-6d exec_fp=%-6d hot95_fp=%-6d\n%!"
        b.Pf_mibench.Registry.name
        (Pf_arm.Image.code_size_bytes image)
        (32 * Hashtbl.length blocks) (32 * hot_blocks))
    Pf_mibench.Registry.all
