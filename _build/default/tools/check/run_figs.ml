let () =
  let t0 = Unix.gettimeofday () in
  let all = Pf_harness.Experiment.run_all () in
  Printf.printf "ran %d benchmarks in %.1fs\n%!" (List.length all)
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun (r : Pf_harness.Experiment.bench_result) ->
      if not r.Pf_harness.Experiment.outputs_consistent then
        Printf.printf "INCONSISTENT OUTPUT: %s\n" r.Pf_harness.Experiment.name)
    all;
  let power = Pf_harness.Experiment.power_rows all in
  List.iter
    (fun f -> print_endline (Pf_harness.Figures.render f))
    (Pf_harness.Figures.mapping_figures all
    @ Pf_harness.Figures.power_figures power)
