(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation (§6, Figures 3-14), runs the DESIGN.md ablations, and times
   the simulator's building blocks with Bechamel.

   Figures print the same rows/series the paper reports: one row per
   benchmark, one column per configuration, plus the suite average quoted
   in the text.  Paper-vs-measured numbers are tracked in EXPERIMENTS.md. *)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* BENCH_sweep.json                                                    *)
(* ------------------------------------------------------------------ *)

(* Machine-readable timing record for the sweep (schema documented in
   EXPERIMENTS.md).  Hand-rolled JSON: the image deliberately carries no
   JSON library. *)

let jobs =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else
      match Sys.argv.(i) with
      | "--jobs" | "-j" when i + 1 < Array.length Sys.argv ->
          int_of_string_opt Sys.argv.(i + 1)
      | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" ->
          int_of_string_opt (String.sub s 7 (String.length s - 7))
      | _ -> scan (i + 1)
  in
  match scan 1 with
  | Some j when j >= 1 -> j
  | Some _ | None -> Pf_harness.Pool.default_jobs ()

(* `--engine reference|predecoded|compiled` pins the execution engine of
   the figures sweep, the headline aggregate and the `--check` gate
   (default: compiled, the fastest engine — the one whose regressions
   matter).  Every engine retires the identical architectural stream, so
   this changes throughput figures only, never results. *)
let engine_name = function
  | Pf_cpu.Arm_run.Reference -> "reference"
  | Pf_cpu.Arm_run.Predecoded -> "predecoded"
  | Pf_cpu.Arm_run.Compiled -> "compiled"

let engine =
  let of_name = function
    | "reference" -> Pf_cpu.Arm_run.Reference
    | "predecoded" -> Pf_cpu.Arm_run.Predecoded
    | "compiled" -> Pf_cpu.Arm_run.Compiled
    | s ->
        Printf.eprintf
          "bench: unknown --engine %s (want reference|predecoded|compiled)\n"
          s;
        exit 2
  in
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else
      match Sys.argv.(i) with
      | "--engine" when i + 1 < Array.length Sys.argv ->
          Some (of_name Sys.argv.(i + 1))
      | s when String.length s > 9 && String.sub s 0 9 = "--engine=" ->
          Some (of_name (String.sub s 9 (String.length s - 9)))
      | _ -> scan (i + 1)
  in
  match scan 1 with Some e -> e | None -> Pf_cpu.Arm_run.Compiled

(* `--check BASELINE.json` runs only the sequential sweep and compares its
   aggregate steps/sec against the committed baseline, exiting 2 on a
   >15% regression — the CI guard for simulator throughput. *)
let check_baseline =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else
      match Sys.argv.(i) with
      | "--check" when i + 1 < Array.length Sys.argv -> Some Sys.argv.(i + 1)
      | s when String.length s > 8 && String.sub s 0 8 = "--check=" ->
          Some (String.sub s 8 (String.length s - 8))
      | _ -> scan (i + 1)
  in
  scan 1

let phase_times : (string * float) list ref = ref []

let timed_phase name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  phase_times := (name, Unix.gettimeofday () -. t0) :: !phase_times;
  r

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> "unknown")
  with _ -> "unknown"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Aggregate simulation rate of a sweep: total source instructions retired
   over total per-row wall-clock, counting only rows that finished.  Under
   `--jobs 1` the row times sum to the sweep's wall-clock, so this is the
   sequential steps/sec figure the baseline records. *)
let row_insns (row : Pf_harness.Experiment.sweep_row) =
  match row.Pf_harness.Experiment.outcome with
  | Ok r ->
      (* source instructions retired across the two recorded executions
         plus the two replays *)
      r.Pf_harness.Experiment.arm16.Pf_harness.Experiment.instructions
      + r.Pf_harness.Experiment.arm8.Pf_harness.Experiment.instructions
      + r.Pf_harness.Experiment.fits16.Pf_harness.Experiment.instructions
      + r.Pf_harness.Experiment.fits8.Pf_harness.Experiment.instructions
  | Error _ -> 0

let aggregate_steps_per_sec (sweep : Pf_harness.Experiment.sweep) =
  let insns, sim_s =
    List.fold_left
      (fun (i, s) (row : Pf_harness.Experiment.sweep_row) ->
        if Result.is_ok row.Pf_harness.Experiment.outcome then
          (i + row_insns row, s +. row.Pf_harness.Experiment.elapsed_s)
        else (i, s))
      (0, 0.) sweep.Pf_harness.Experiment.rows
  in
  if sim_s > 0. then float_of_int insns /. sim_s else 0.

(* ------------------------------------------------------------------ *)
(* Explore (DSE) throughput                                            *)
(* ------------------------------------------------------------------ *)

(* Replay throughput of the design-space engine: a smoke-grid explore over
   a 3-benchmark subset, sequential, measured in trace events replayed per
   second of per-row wall clock.  This is the figure the full-grid sweep's
   runtime scales with, so it gets its own baseline in BENCH_sweep.json. *)
let explore_subset = [ "crc32"; "sha"; "fft" ]

let events_per_sec ?engine ~label space =
  let benchmarks = List.map Pf_mibench.Registry.find_exn explore_subset in
  let t = Pf_dse.Explore.run ~jobs:1 ?engine ~benchmarks space in
  let events = Pf_dse.Explore.replayed_events t in
  let sim_s =
    List.fold_left
      (fun s (r : Pf_dse.Explore.row) -> s +. r.Pf_dse.Explore.elapsed_s)
      0. t.Pf_dse.Explore.rows
  in
  if t.Pf_dse.Explore.completed < t.Pf_dse.Explore.total then begin
    Printf.printf "%s: only %d/%d benchmarks completed\n" label
      t.Pf_dse.Explore.completed t.Pf_dse.Explore.total;
    0.
  end
  else if sim_s > 0. then float_of_int events /. sim_s
  else 0.

let explore_events_per_sec () =
  events_per_sec ~label:"explore smoke" Pf_dse.Space.smoke

let run_explore_throughput () =
  heading
    (Printf.sprintf "explore throughput (smoke grid, %s, sequential)"
       (String.concat "/" explore_subset));
  let rate = explore_events_per_sec () in
  Printf.printf "replayed %s events/sec across the geometry grid\n"
    (Printf.sprintf "%.0f" rate);
  rate

(* Single-pass sweep throughput: the dense grid (~1058 geometries, 133
   stack profiles) over the same subset, sequential, with the engine
   pinned to [Sweep].  The unit matches the explore figure — trace
   events × geometries per second of per-row wall clock — so the ratio
   of the two rates is the sweep kernel's per-geometry speedup over
   replay. *)
let sweep_events_per_sec () =
  events_per_sec ~engine:Pf_dse.Space.Sweep ~label:"sweep dense"
    Pf_dse.Space.dense

let run_sweep_throughput ~explore_rate =
  heading
    (Printf.sprintf "sweep throughput (dense grid, %s, sequential)"
       (String.concat "/" explore_subset));
  let rate = sweep_events_per_sec () in
  Printf.printf "swept %.0f events/sec across the geometry grid\n" rate;
  if explore_rate > 0. && rate > 0. then
    Printf.printf "(%.1fx the replay engine's per-geometry rate)\n"
      (rate /. explore_rate);
  rate

(* ------------------------------------------------------------------ *)
(* Serve throughput                                                    *)
(* ------------------------------------------------------------------ *)

(* End-to-end service throughput: an in-process daemon (4 workers, fresh
   throwaway store, fsync off so the figure measures the service, not
   the disk) driven by the load generator with 1000 requests over 4
   client domains.  The small deterministic corpus repeats, so most
   requests are cache hits — this is the steady-state figure a warm
   daemon sustains, with p50/p99 request latency alongside. *)
let serve_requests = 1000
let serve_conns = 4

let run_serve_phase () =
  heading
    (Printf.sprintf "serve throughput (%d requests, %d client domains)"
       serve_requests serve_conns);
  let stamp = int_of_float (Unix.gettimeofday () *. 1000.) in
  let base = Filename.get_temp_dir_name () in
  let socket = Filename.concat base (Printf.sprintf "pf-bench-%d.sock" stamp) in
  let store_dir = Filename.concat base (Printf.sprintf "pf-bench-%d.store" stamp) in
  let cfg =
    {
      Pf_serve.Daemon.default_config with
      Pf_serve.Daemon.socket_path = socket;
      store_dir = Some store_dir;
      jobs = 4;
      fsync = false;
    }
  in
  let daemon = Domain.spawn (fun () -> Pf_serve.Daemon.run ~log:ignore cfg) in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try ignore (Pf_serve.Client.shutdown ~socket ()) with _ -> ());
        Domain.join daemon)
      (fun () ->
        Pf_serve.Loadgen.run ~socket ~requests:serve_requests
          ~conns:serve_conns ~seed:1 ())
  in
  (* throwaway store: the figure must start cold every run *)
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (try rm store_dir with Sys_error _ | Unix.Unix_error _ -> ());
  print_endline (Pf_serve.Loadgen.summary result);
  result

(* ------------------------------------------------------------------ *)
(* Population throughput                                               *)
(* ------------------------------------------------------------------ *)

(* Workload-generation + population-campaign throughput: a sequential
   seeded 96-program campaign (DESIGN.md §16).  Two figures come out:
   how fast the generator emits calibrated programs, and how fast the
   campaign simulates (trace-once ARM16 baseline + two FITS8 runs per
   program, shared synthesis included in the denominator). *)
let population_count = 96

let run_population_phase () =
  heading
    (Printf.sprintf "population throughput (%d programs, sequential)"
       population_count);
  let r =
    Pf_workgen.Population.run ~jobs:1 ~count:population_count ~seed:42 ()
  in
  let gen_rate =
    float_of_int r.Pf_workgen.Population.count
    /. Float.max 1e-9 r.Pf_workgen.Population.gen_s
  in
  let steps_rate =
    float_of_int r.Pf_workgen.Population.total_steps
    /. Float.max 1e-9 r.Pf_workgen.Population.eval_s
  in
  Printf.printf
    "generated %.0f programs/sec; campaign simulated %.0f src-insns/sec \
     (%d rows ok, %d failed, calib max chi2 %.4f)\n"
    gen_rate steps_rate
    (List.length r.Pf_workgen.Population.rows)
    (List.length r.Pf_workgen.Population.failures)
    r.Pf_workgen.Population.calib_max_distance;
  (gen_rate, steps_rate)

(* ------------------------------------------------------------------ *)
(* Multicore throughput                                                *)
(* ------------------------------------------------------------------ *)

(* Interleaving-machine throughput: a 4-core machine (one ARM benchmark
   image per core, private memories, seeded random scheduler) run to
   completion, measured in retired instructions per second of wall
   clock.  One machine slice retires at most one instruction, so this is
   also the slice rate — the figure the litmus seed sweeps (1000
   interleavings x 7 tests) scale with. *)
let mc_cores = [ "crc32"; "bitcount"; "sha"; "stringsearch" ]

let run_mc_phase () =
  heading
    (Printf.sprintf
       "multicore throughput (%d-core machine, seeded random scheduler)"
       (List.length mc_cores));
  let cores =
    Array.of_list
      (List.map
         (fun name ->
           let b = Pf_mibench.Registry.find name in
           let p = b.Pf_mibench.Registry.program ~scale:1 in
           let image =
             Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
           in
           (name, Pf_mc.Machine.arm_core image))
         mc_cores)
  in
  let sched =
    Pf_mc.Sched.create ~policy:Pf_mc.Sched.Seeded_random
      ~ncores:(Array.length cores) 1
  in
  let m = Pf_mc.Machine.create ~sched cores in
  let t0 = Unix.gettimeofday () in
  Pf_mc.Machine.run m;
  let el = Unix.gettimeofday () -. t0 in
  let r = Pf_mc.Machine.report m in
  let rate =
    if el > 0. then float_of_int r.Pf_mc.Machine.instructions /. el else 0.
  in
  Printf.printf "%d cores retired %d instructions over %d slices: %.0f \
                 insns/sec\n"
    (List.length mc_cores) r.Pf_mc.Machine.instructions
    r.Pf_mc.Machine.slices rate;
  rate

(* Baseline parser for `--check`.  Hand-rolled like the writer (no JSON
   library in the image): pull the `"instructions": N` / `"sim_s": X`
   pairs out of `"ok": true` benchmark rows — works on both schema 1 and
   schema 2 files, since the row shape never changed. *)
let baseline_aggregate file =
  let ic = open_in file in
  let insns = ref 0 and sim_s = ref 0. in
  let field line key =
    (* value substring following `"key": `, up to `,`/`}`/end *)
    let pat = Printf.sprintf "\"%s\": " key in
    let n = String.length pat and m = String.length line in
    let rec find i =
      if i + n > m then None
      else if String.sub line i n = pat then Some (i + n)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < m
          && (match line.[!stop] with ',' | '}' | ' ' -> false | _ -> true)
        do
          incr stop
        done;
        Some (String.sub line start (!stop - start))
  in
  (try
     while true do
       let line = input_line ic in
       match (field line "ok", field line "instructions", field line "sim_s")
       with
       | Some "true", Some i, Some s ->
           insns := !insns + int_of_string i;
           sim_s := !sim_s +. float_of_string s
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  if !sim_s > 0. then float_of_int !insns /. !sim_s
  else (
    Printf.eprintf "--check: no usable benchmark rows in %s\n" file;
    exit 2)

(* Top-level scalar of the baseline file, e.g. `"explore_events_per_sec":
   12345` — [None] when the key is absent (pre-schema-3 baselines). *)
let baseline_scalar file key =
  let ic = open_in file in
  let pat = Printf.sprintf "\"%s\": " key in
  let n = String.length pat in
  let value = ref None in
  (try
     while !value = None do
       let line = input_line ic in
       let m = String.length line in
       let rec find i =
         if i + n > m then ()
         else if String.sub line i n = pat then begin
           let stop = ref (i + n) in
           while
             !stop < m
             && (match line.[!stop] with
                | ',' | '}' | ' ' -> false
                | _ -> true)
           do
             incr stop
           done;
           value := float_of_string_opt (String.sub line (i + n) (!stop - i - n))
         end
         else find (i + 1)
       in
       find 0
     done
   with End_of_file -> ());
  close_in ic;
  !value

let run_check file =
  let baseline = baseline_aggregate file in
  heading
    (Printf.sprintf "throughput regression check vs %s (sequential sweep)"
       file);
  let sweep = timed_phase "check_sweep" (fun () ->
      Pf_harness.Experiment.run_all ~jobs:1 ~engine ())
  in
  Printf.printf "engine: %s\n" (engine_name engine);
  let current = aggregate_steps_per_sec sweep in
  let ratio = if baseline > 0. then current /. baseline else infinity in
  Printf.printf "baseline aggregate: %.0f steps/sec\n" baseline;
  Printf.printf "current aggregate:  %.0f steps/sec (%.2fx)\n" current ratio;
  if sweep.Pf_harness.Experiment.completed
     < sweep.Pf_harness.Experiment.total
  then begin
    Printf.printf "CHECK FAILED: %d/%d benchmarks completed\n"
      sweep.Pf_harness.Experiment.completed sweep.Pf_harness.Experiment.total;
    exit 2
  end;
  if ratio < 0.85 then begin
    Printf.printf
      "CHECK FAILED: aggregate steps/sec dropped %.1f%% (>15%% budget)\n"
      ((1. -. ratio) *. 100.);
    exit 2
  end;
  (match baseline_scalar file "explore_events_per_sec" with
  | None ->
      Printf.printf
        "(baseline predates explore throughput; skipping that gate)\n"
  | Some explore_base when explore_base > 0. ->
      let explore_now =
        timed_phase "check_explore" explore_events_per_sec
      in
      let er = explore_now /. explore_base in
      Printf.printf "baseline explore: %.0f events/sec\n" explore_base;
      Printf.printf "current explore:  %.0f events/sec (%.2fx)\n" explore_now
        er;
      if er < 0.85 then begin
        Printf.printf
          "CHECK FAILED: explore events/sec dropped %.1f%% (>15%% budget)\n"
          ((1. -. er) *. 100.);
        exit 2
      end
  | Some _ ->
      Printf.printf "--check: unusable explore_events_per_sec baseline\n";
      exit 2);
  (match baseline_scalar file "sweep_events_per_sec" with
  | None ->
      Printf.printf
        "(baseline predates sweep throughput; skipping that gate)\n"
  | Some sweep_base when sweep_base > 0. ->
      let sweep_now = timed_phase "check_sweep_engine" sweep_events_per_sec in
      let sr = sweep_now /. sweep_base in
      Printf.printf "baseline sweep: %.0f events/sec\n" sweep_base;
      Printf.printf "current sweep:  %.0f events/sec (%.2fx)\n" sweep_now sr;
      if sr < 0.85 then begin
        Printf.printf
          "CHECK FAILED: sweep events/sec dropped %.1f%% (>15%% budget)\n"
          ((1. -. sr) *. 100.);
        exit 2
      end
  | Some _ ->
      Printf.printf "--check: unusable sweep_events_per_sec baseline\n";
      exit 2);
  (match
     ( baseline_scalar file "population_gen_programs_per_sec",
       baseline_scalar file "population_steps_per_sec" )
   with
  | None, None ->
      Printf.printf
        "(baseline predates population throughput; skipping that gate)\n"
  | gen_base, steps_base ->
      let gen_now, steps_now =
        timed_phase "check_population" run_population_phase
      in
      let gate label base now =
        match base with
        | None ->
            Printf.printf "(baseline lacks population %s; skipping)\n" label
        | Some base when base > 0. ->
            let r = now /. base in
            Printf.printf "baseline population %s: %.0f/sec\n" label base;
            Printf.printf "current population %s:  %.0f/sec (%.2fx)\n" label
              now r;
            if r < 0.85 then begin
              Printf.printf
                "CHECK FAILED: population %s dropped %.1f%% (>15%% budget)\n"
                label
                ((1. -. r) *. 100.);
              exit 2
            end
        | Some _ ->
            Printf.printf "--check: unusable population %s baseline\n" label;
            exit 2
      in
      gate "gen_programs" gen_base gen_now;
      gate "steps" steps_base steps_now);
  (match baseline_scalar file "mc_steps_per_sec" with
  | None ->
      Printf.printf "(baseline predates mc throughput; skipping that gate)\n"
  | Some mc_base when mc_base > 0. ->
      let mc_now = timed_phase "check_mc" run_mc_phase in
      let mr = mc_now /. mc_base in
      Printf.printf "baseline mc: %.0f insns/sec\n" mc_base;
      Printf.printf "current mc:  %.0f insns/sec (%.2fx)\n" mc_now mr;
      if mr < 0.85 then begin
        Printf.printf
          "CHECK FAILED: mc insns/sec dropped %.1f%% (>15%% budget)\n"
          ((1. -. mr) *. 100.);
        exit 2
      end
  | Some _ ->
      Printf.printf "--check: unusable mc_steps_per_sec baseline\n";
      exit 2);
  Printf.printf "check OK: within the 15%% regression budget\n"

(* Per-engine throughput matrix: the same sequential 21-benchmark sweep
   under each execution engine.  Results are engine-invariant (the
   differential tests pin that), so the aggregates differ only in
   simulator speed — the compiled engine's speedup over the interpreters
   is the ratio of its row to theirs. *)
let engine_matrix () =
  heading "engine throughput matrix (sequential 21-benchmark sweep)";
  List.map
    (fun e ->
      let sweep = Pf_harness.Experiment.run_all ~jobs:1 ~engine:e () in
      let rate = aggregate_steps_per_sec sweep in
      Printf.printf "  %-10s %11.0f steps/sec (%d/%d benchmarks)\n"
        (engine_name e) rate sweep.Pf_harness.Experiment.completed
        sweep.Pf_harness.Experiment.total;
      (engine_name e, rate))
    [ Pf_cpu.Arm_run.Reference; Pf_cpu.Arm_run.Predecoded;
      Pf_cpu.Arm_run.Compiled ]

let write_sweep_json ~engine_rates ~explore_rate ~sweep_rate ~serve
    ~population:(pop_gen_rate, pop_steps_rate) ~mc_rate
    (sweep : Pf_harness.Experiment.sweep) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": 8,\n";
  Printf.bprintf b "  \"engine\": \"%s\",\n" (engine_name engine);
  Printf.bprintf b "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
  Printf.bprintf b "  \"jobs\": %d,\n" sweep.Pf_harness.Experiment.jobs;
  Printf.bprintf b "  \"completed\": %d,\n"
    sweep.Pf_harness.Experiment.completed;
  Printf.bprintf b "  \"total\": %d,\n" sweep.Pf_harness.Experiment.total;
  Printf.bprintf b "  \"aggregate_steps_per_sec\": %.0f,\n"
    (aggregate_steps_per_sec sweep);
  Buffer.add_string b "  \"aggregate_steps_per_sec_by_engine\": {\n";
  List.iteri
    (fun i (name, rate) ->
      Printf.bprintf b "    \"%s\": %.0f%s\n" name rate
        (if i = List.length engine_rates - 1 then "" else ","))
    engine_rates;
  Buffer.add_string b "  },\n";
  Printf.bprintf b "  \"explore_events_per_sec\": %.0f,\n" explore_rate;
  Printf.bprintf b "  \"sweep_events_per_sec\": %.0f,\n" sweep_rate;
  Printf.bprintf b "  \"serve_requests_per_sec\": %.0f,\n"
    serve.Pf_serve.Loadgen.throughput_rps;
  Printf.bprintf b "  \"serve\": %s,\n"
    (Pf_serve.Json.to_string (Pf_serve.Loadgen.to_json serve));
  Printf.bprintf b "  \"population_gen_programs_per_sec\": %.0f,\n"
    pop_gen_rate;
  Printf.bprintf b "  \"population_steps_per_sec\": %.0f,\n" pop_steps_rate;
  Printf.bprintf b "  \"mc_steps_per_sec\": %.0f,\n" mc_rate;
  Buffer.add_string b "  \"phases\": {\n";
  let phases = List.rev !phase_times in
  List.iteri
    (fun i (name, s) ->
      Printf.bprintf b "    \"%s\": %.3f%s\n" (json_escape name) s
        (if i = List.length phases - 1 then "" else ","))
    phases;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"benchmarks\": [\n";
  let rows = sweep.Pf_harness.Experiment.rows in
  List.iteri
    (fun i (row : Pf_harness.Experiment.sweep_row) ->
      let insns = row_insns row in
      let el = row.Pf_harness.Experiment.elapsed_s in
      Printf.bprintf b
        "    { \"name\": \"%s\", \"ok\": %b, \"sim_s\": %.3f, \
         \"instructions\": %d, \"steps_per_sec\": %.0f }%s\n"
        (json_escape row.Pf_harness.Experiment.bench)
        (Result.is_ok row.Pf_harness.Experiment.outcome)
        el insns
        (if el > 0. then float_of_int insns /. el else 0.)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Pf_util.Atomic_file.write ~path:"BENCH_sweep.json" (Buffer.contents b);
  Printf.printf "\n(wrote BENCH_sweep.json: jobs=%d, %d phases timed)\n"
    sweep.Pf_harness.Experiment.jobs (List.length phases)

(* ------------------------------------------------------------------ *)
(* Figures 3-14                                                        *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  heading "PowerFITS evaluation figures (21-benchmark suite, scale 1)";
  let t0 = Unix.gettimeofday () in
  let sweep = Pf_harness.Experiment.run_all ~jobs ~engine () in
  Printf.printf
    "(simulated %d/%d benchmarks x 4 configurations in %.1f s, jobs=%d, \
     engine=%s)\n"
    sweep.Pf_harness.Experiment.completed sweep.Pf_harness.Experiment.total
    (Unix.gettimeofday () -. t0)
    sweep.Pf_harness.Experiment.jobs (engine_name engine);
  Printf.printf "%s\n\n" (Pf_harness.Experiment.banner sweep);
  let all = Pf_harness.Experiment.completed_results sweep in
  List.iter
    (fun (r : Pf_harness.Experiment.bench_result) ->
      if not r.Pf_harness.Experiment.outputs_consistent then
        Printf.printf "OUTPUT MISMATCH on %s\n" r.Pf_harness.Experiment.name)
    all;
  let power = Pf_harness.Experiment.power_rows all in
  List.iter
    (fun f -> print_endline (Pf_harness.Figures.render f))
    (Pf_harness.Figures.mapping_figures all
    @ Pf_harness.Figures.power_figures power);
  (* headline numbers the abstract quotes *)
  heading "abstract headline (FITS8 vs ARM16 averages)";
  let avg get = Pf_util.Stats.mean (List.map get power) in
  let p (c : Pf_harness.Experiment.per_config) =
    c.Pf_harness.Experiment.power
  in
  let saving get (r : Pf_harness.Experiment.bench_result) =
    Pf_util.Stats.saving
      ~baseline:(get r.Pf_harness.Experiment.arm16)
      (get r.Pf_harness.Experiment.fits8)
  in
  Printf.printf "switching saving: %.1f%% (paper: 49.4%%)\n"
    (avg (saving (fun c -> (p c).Pf_power.Account.switching)));
  Printf.printf "internal saving:  %.1f%% (paper: 43.9%%)\n"
    (avg (saving (fun c -> (p c).Pf_power.Account.internal)));
  Printf.printf "leakage saving:   %.1f%% (paper: 14.9%%)\n"
    (avg (saving (fun c -> (p c).Pf_power.Account.leakage)));
  Printf.printf "total cache power saving: %.1f%% (paper: 46.6%%)\n"
    (avg (fun r ->
         let pw (c : Pf_harness.Experiment.per_config) =
           (p c).Pf_power.Account.total
           /. float_of_int c.Pf_harness.Experiment.cycles
         in
         Pf_util.Stats.saving
           ~baseline:(pw r.Pf_harness.Experiment.arm16)
           (pw r.Pf_harness.Experiment.fits8)));
  let peak_max =
    List.fold_left
      (fun acc (r : Pf_harness.Experiment.bench_result) ->
        max acc
          (Pf_util.Stats.saving
             ~baseline:
               (p r.Pf_harness.Experiment.arm16).Pf_power.Account.peak_power
             (p r.Pf_harness.Experiment.fits8).Pf_power.Account.peak_power))
      0.0 power
  in
  Printf.printf
    "peak power saving, best benchmark: %.1f%% (paper: up to 60.3%%)\n"
    peak_max;
  sweep

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

let ablation_subset = [ "crc32"; "sha"; "jpeg"; "adpcm.decode"; "fft" ]

let build name =
  let b = Pf_mibench.Registry.find name in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  (image, dyn_counts)

let mapping_with ?ais_groups ?dict_head ?allow_two_op_ais name =
  let image, dyn_counts = build name in
  let syn =
    Pf_fits.Synthesis.synthesize ?ais_groups ?dict_head ?allow_two_op_ais
      image ~dyn_counts
  in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let fits = Pf_fits.Run.run tr in
  ( Pf_fits.Translate.static_mapping_rate tr,
    fits.Pf_fits.Run.dyn_one_to_one_pct,
    Pf_fits.Translate.code_size_saving tr )

let three_col_table ~header ~labels f =
  let rows =
    List.map
      (fun (label, arg) ->
        let stats = List.map (fun n -> f arg n) ablation_subset in
        let avg g = Pf_util.Stats.mean (List.map g stats) in
        [
          label;
          Pf_util.Table.pct (avg (fun (s, _, _) -> s));
          Pf_util.Table.pct (avg (fun (_, d, _) -> d));
          Pf_util.Table.pct (avg (fun (_, _, c) -> c));
        ])
      labels
  in
  print_string (Pf_util.Table.render ~header rows)

let ablation_ais () =
  heading "ablation: AIS opcode-group budget (avg over 5 benchmarks)";
  three_col_table
    ~header:[ "AIS groups"; "static 1-1 %"; "dyn 1-1 %"; "code saving %" ]
    ~labels:(List.map (fun n -> (string_of_int n, n)) [ 0; 1; 2; 3; 4; 5 ])
    (fun groups name -> mapping_with ~ais_groups:groups name)

let ablation_dict () =
  heading "ablation: immediate-dictionary head size";
  three_col_table
    ~header:[ "dict head"; "static 1-1 %"; "dyn 1-1 %"; "code saving %" ]
    ~labels:(List.map (fun n -> (string_of_int n, n)) [ 0; 4; 8; 16 ])
    (fun head name -> mapping_with ~dict_head:head name)

let ablation_two_op () =
  heading "ablation: two-operand AIS sub-ops (the S3.3 heuristic)";
  three_col_table
    ~header:[ "AIS forms"; "static 1-1 %"; "dyn 1-1 %"; "code saving %" ]
    ~labels:[ ("2-op + 3-op", true); ("3-op only", false) ]
    (fun allow name -> mapping_with ~allow_two_op_ais:allow name)

let ablation_fetch_buffer () =
  heading "ablation: fetch-buffer reuse (switching power mechanism)";
  let rows =
    List.map
      (fun name ->
        let image, dyn_counts = build name in
        let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
        let tr =
          Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image
        in
        let arm = Pf_cpu.Arm_run.run image in
        let with_buffer = Pf_fits.Run.run tr in
        let without_buffer =
          Pf_fits.Run.run
            ~pipeline_cfg:
              { Pf_cpu.Pipeline.sa1100 with
                Pf_cpu.Pipeline.fetch_buffer = false }
            tr
        in
        let saving (r : Pf_fits.Run.result) =
          Pf_util.Stats.saving
            ~baseline:arm.Pf_cpu.Arm_run.power.Pf_power.Account.switching
            r.Pf_fits.Run.power.Pf_power.Account.switching
        in
        [
          name;
          Pf_util.Table.pct (saving with_buffer);
          Pf_util.Table.pct (saving without_buffer);
        ])
      ablation_subset
  in
  print_string
    (Pf_util.Table.render
       ~header:
         [ "benchmark"; "sw saving w/ buffer %"; "sw saving w/o buffer %" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Scale robustness                                                     *)
(* ------------------------------------------------------------------ *)

(* DESIGN.md substitutes the paper's ~1 B-instruction runs with small
   inputs, arguing that the reported *rates* are stable under input
   scaling.  Verify it: mapping rates and miss rates across scales. *)
let scale_robustness () =
  heading "scale robustness (rates must be stable as inputs grow)";
  let rows =
    List.concat_map
      (fun name ->
        List.map
          (fun scale ->
            let b = Pf_mibench.Registry.find name in
            let r = Pf_harness.Experiment.run_benchmark ~scale b in
            [
              name;
              string_of_int scale;
              string_of_int
                r.Pf_harness.Experiment.arm16
                  .Pf_harness.Experiment.instructions;
              Pf_util.Table.pct r.Pf_harness.Experiment.static_map_pct;
              Pf_util.Table.pct r.Pf_harness.Experiment.dyn_map_pct;
              Printf.sprintf "%.1f"
                r.Pf_harness.Experiment.arm16.Pf_harness.Experiment
                  .miss_rate_pm;
              Printf.sprintf "%.1f"
                r.Pf_harness.Experiment.fits8.Pf_harness.Experiment
                  .miss_rate_pm;
            ])
          [ 1; 2; 4 ])
      [ "crc32"; "sha"; "gsm" ]
  in
  print_string
    (Pf_util.Table.render
       ~header:
         [ "benchmark"; "scale"; "ARM insns"; "static 1-1 %"; "dyn 1-1 %";
           "ARM16 miss/M"; "FITS8 miss/M" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Extension: cross-application ISA reuse                              *)
(* ------------------------------------------------------------------ *)

(* How application-specific are the synthesized instruction sets?  Take
   the opcode plane synthesized for application A (the paper's post-
   fabrication decoder configuration), reload only the data plane
   (dictionary + register lists) for application B — the S3.1 software-
   upgrade scenario — and measure B's mapping rate.  The diagonal is each
   application's own ISA. *)
let cross_application () =
  heading "extension: cross-application ISA reuse (static 1-to-1 %)";
  let names = [ "crc32"; "sha"; "jpeg"; "fft" ] in
  let prepared =
    List.map
      (fun name ->
        let image, dyn_counts = build name in
        let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
        (name, image, dyn_counts, syn.Pf_fits.Synthesis.spec))
      names
  in
  let rows =
    List.map
      (fun (spec_from, _, _, spec) ->
        spec_from
        :: List.map
             (fun (_, image, dyn_counts, _) ->
               let dict, reglists =
                 Pf_fits.Synthesis.data_plane image ~dyn_counts
               in
               let hybrid =
                 Pf_fits.Spec.with_data_plane spec ~dict ~reglists
               in
               let tr = Pf_fits.Translate.translate hybrid image in
               Pf_util.Table.pct (Pf_fits.Translate.static_mapping_rate tr))
             prepared)
      prepared
  in
  print_string
    (Pf_util.Table.render
       ~header:("ISA from \\ program" :: names)
       rows);
  print_string
    "(diagonal = own ISA; off-diagonal drop = how application-specific\n\
     \ the synthesized opcodes are)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  heading "microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let crc_image, crc_dyn = build "crc32" in
  let syn = Pf_fits.Synthesis.synthesize crc_image ~dyn_counts:crc_dyn in
  let sample_insn =
    Pf_arm.Insn.Dp
      { cond = Pf_arm.Insn.AL; op = Pf_arm.Insn.ADD; s = false; rd = 1;
        rn = 2; op2 = Pf_arm.Insn.Reg_shift (3, Pf_arm.Insn.LSL, 2) }
  in
  let word = Pf_arm.Encode.encode sample_insn in
  let cache =
    Pf_cache.Icache.create (Pf_cache.Icache.config ~size_bytes:16384 ())
  in
  let addr = ref 0 in
  let tests =
    Test.make_grouped ~name:"powerfits"
      [
        Test.make ~name:"arm-encode"
          (Staged.stage (fun () -> Pf_arm.Encode.encode sample_insn));
        Test.make ~name:"arm-decode"
          (Staged.stage (fun () -> Pf_arm.Decode.decode word));
        Test.make ~name:"icache-access"
          (Staged.stage (fun () ->
               addr := (!addr + 4) land 0xFFFF;
               Pf_cache.Icache.access cache ~addr:!addr ~data:word));
        Test.make ~name:"exec-1k-insns"
          (Staged.stage (fun () ->
               let st = Pf_arm.Exec.create crc_image in
               let n = ref 0 in
               try
                 Pf_arm.Exec.run st ~on_step:(fun _ ~pc:_ _ _ ->
                     incr n;
                     if !n >= 1000 then raise Exit)
               with Exit -> ()));
        (let prog = Pf_arm.Pexec.compile crc_image in
         Test.make ~name:"pexec-1k-insns"
           (Staged.stage (fun () ->
                let st = Pf_arm.Exec.create crc_image in
                try Pf_arm.Pexec.run ~max_steps:1000 prog st
                with Pf_util.Sim_error.Error _ -> ())));
        Test.make ~name:"synthesize-crc32"
          (Staged.stage (fun () ->
               Pf_fits.Synthesis.synthesize crc_image ~dyn_counts:crc_dyn));
        Test.make ~name:"translate-crc32"
          (Staged.stage (fun () ->
               Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec
                 crc_image));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-28s %14.1f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)

let () =
  match check_baseline with
  | Some file -> run_check file
  | None ->
  let sweep = timed_phase "figures_sweep" run_figures in
  timed_phase "ablations" (fun () ->
      ablation_ais ();
      ablation_dict ();
      ablation_two_op ();
      ablation_fetch_buffer ());
  timed_phase "scale_robustness" scale_robustness;
  timed_phase "cross_application" cross_application;
  let engine_rates = timed_phase "engine_matrix" engine_matrix in
  let explore_rate = timed_phase "explore_smoke" run_explore_throughput in
  let sweep_rate =
    timed_phase "sweep_dense" (fun () -> run_sweep_throughput ~explore_rate)
  in
  let serve = timed_phase "serve_loadgen" run_serve_phase in
  let population = timed_phase "population" run_population_phase in
  let mc_rate = timed_phase "mc_machine" run_mc_phase in
  timed_phase "microbenchmarks" (fun () ->
      try microbenchmarks ()
      with e ->
        Printf.printf "microbenchmarks skipped: %s\n" (Printexc.to_string e));
  write_sweep_json ~engine_rates ~explore_rate ~sweep_rate ~serve ~population
    ~mc_rate sweep;
  print_newline ()
