(* bench/probe.exe — layer-by-layer steps/sec profiler.

   Times each layer of the simulation stack on a real benchmark
   (basicmath) plus tight microbenchmark loops over the per-step
   primitives, so a throughput regression can be attributed to a layer
   in seconds instead of re-running the full sweep.  No JSON, no
   baselines: this is the tool you run while optimizing; the CI guard is
   `main.exe --check BENCH_sweep.json`. *)

let time name f =
  let t0 = Unix.gettimeofday () in
  let steps = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-28s %10.3f s  %12.0f steps/sec\n" name dt
    (float_of_int steps /. dt)

let () =
  let b = Pf_mibench.Registry.find "basicmath" in
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  let prog = Pf_arm.Pexec.compile image in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  (* warmup *)
  let st = Pf_arm.Exec.create image in
  Pf_arm.Pexec.run prog st;
  time "pexec bare" (fun () ->
      let st = Pf_arm.Exec.create image in
      Pf_arm.Pexec.run prog st;
      st.Pf_arm.Exec.steps);
  time "arm_run full" (fun () ->
      let r = Pf_cpu.Arm_run.run image in
      r.Pf_cpu.Arm_run.instructions);
  time "arm_run + trace" (fun () ->
      let t = Pf_cpu.Trace.create ~isize:4 () in
      let r = Pf_cpu.Arm_run.run ~trace:t image in
      r.Pf_cpu.Arm_run.instructions);
  (let t = Pf_cpu.Trace.create ~isize:4 () in
   let r = Pf_cpu.Arm_run.run ~trace:t image in
   time "arm replay" (fun () ->
       let r2 =
         Pf_cpu.Arm_run.replay
           ~cache_cfg:(Pf_cache.Icache.config ~size_bytes:8192 ())
           ~output:r.Pf_cpu.Arm_run.output image t
       in
       r2.Pf_cpu.Arm_run.instructions));
  time "fits_run full" (fun () ->
      let r = Pf_fits.Run.run tr in
      r.Pf_fits.Run.fits_instructions);
  let n = 5_000_000 in
  let cfg16 = Pf_cache.Icache.config ~size_bytes:16384 () in
  (let c = Pf_cache.Icache.create cfg16 in
   time "icache access_fast x5M" (fun () ->
       let acc = ref 0 in
       for i = 0 to n - 1 do
         acc :=
           !acc
           + Pf_cache.Icache.access_fast c ~addr:(i * 4 land 0x7FF)
               ~data:(i * 1664525)
       done;
       ignore !acc;
       n));
  (let geometry = Pf_power.Geometry.of_config cfg16 in
   let a = Pf_power.Account.create geometry in
   time "account on_access+cycles x5M" (fun () ->
       for _ = 0 to n - 1 do
         Pf_power.Account.on_access a ~toggles:12 ~refilled_words:0;
         Pf_power.Account.on_cycles a 1
       done;
       n));
  (let cache = Pf_cache.Icache.create cfg16 in
   let account = Pf_power.Account.create (Pf_power.Geometry.of_config cfg16) in
   let pipe =
     Pf_cpu.Pipeline.create ~cache ~account
       ~fetch_data:(fun a -> a * 1664525)
       ()
   in
   time "pipeline issue x5M" (fun () ->
       for i = 0 to n - 1 do
         Pf_cpu.Pipeline.issue pipe ~backward:false ~mem_addr:(-1)
           ~dmisses:(-1)
           ~addr:(i * 4 land 0x7FF)
           ~size:4 ~cls:Pf_cpu.Pipeline.Alu ~reads:3 ~writes:4 ~taken:false
           ~mem_words:0
       done;
       n))
