(* bench/probe.exe — layer-by-layer steps/sec profiler.

   Times each layer of the simulation stack on a real benchmark
   (basicmath) plus tight microbenchmark loops over the per-step
   primitives, so a throughput regression can be attributed to a layer
   in seconds instead of re-running the full sweep.  No JSON, no
   baselines: this is the tool you run while optimizing; the CI guard is
   `main.exe --check BENCH_sweep.json`.

   Modes (for measuring the block-compiled engine per benchmark, not
   just in aggregate):

     probe.exe                    layer microbenchmarks (default)
     probe.exe --blocks  [b,...]  static + dynamic basic-block length
                                  histograms per benchmark (ARM + FITS)
     probe.exe --attrib  [b,...]  per-benchmark dispatch-vs-memory time
                                  attribution across the three engines *)

module Px = Pf_arm.Pexec
module Bx = Pf_arm.Bexec

let time name f =
  let t0 = Unix.gettimeofday () in
  let steps = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-28s %10.3f s  %12.0f steps/sec\n" name dt
    (float_of_int steps /. dt);
  flush stdout

let prepare (b : Pf_mibench.Registry.benchmark) =
  let p = b.Pf_mibench.Registry.program ~scale:1 in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  (image, tr)

let benchmarks_of_args args =
  match args with
  | [] -> Pf_mibench.Registry.all
  | names ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun n -> [ Pf_mibench.Registry.find n ])
            (String.split_on_char ',' n))
        names

(* ---- --blocks: basic-block length histograms --------------------------- *)

(* Architectural-only block-dispatch walk: same lazy block table and the
   same dynamic block sequence as the compiled engine (dispatch at the pc,
   execute the block's original micro-ops, follow the terminator), without
   the cache/pipeline/power stack — enough to weight each block by its
   dynamic dispatch count. *)
let walk_blocks ~isize ~code_base ~entry uops (st : Pf_arm.Exec.t) =
  let bx = Bx.create uops in
  let o = Pf_arm.Exec.outcome () in
  let n = Array.length uops in
  let shift = if isize = 4 then 2 else 1 in
  let pc = ref entry in
  while not st.Pf_arm.Exec.halted do
    if !pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
    else begin
      let idx = (!pc - code_base) asr shift in
      if idx < 0 || idx >= n then
        Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault
          ~where:"bench.probe" "fetch outside code at 0x%x" !pc;
      let b = Bx.block_at bx idx in
      b.Bx.execs <- b.Bx.execs + 1;
      let orig = b.Bx.orig in
      for i = 0 to b.Bx.len - 1 do
        Px.exec st o orig.(i)
      done;
      pc :=
        (if b.Bx.has_term then o.Pf_arm.Exec.next_pc
         else !pc + (b.Bx.len * isize))
    end
  done;
  bx

let histogram bx =
  let max_len = ref 0 in
  Bx.iter_built bx (fun b -> if b.Bx.len > !max_len then max_len := b.Bx.len);
  let static = Array.make (!max_len + 1) 0 in
  let dyn = Array.make (!max_len + 1) 0 in
  Bx.iter_built bx (fun b ->
      static.(b.Bx.len) <- static.(b.Bx.len) + 1;
      dyn.(b.Bx.len) <- dyn.(b.Bx.len) + b.Bx.execs);
  (static, dyn)

let print_histogram name bx =
  let static, dyn = histogram bx in
  let total_dispatch = Array.fold_left ( + ) 0 dyn in
  let total_insns =
    let t = ref 0 in
    Array.iteri (fun len d -> t := !t + (len * d)) dyn;
    !t
  in
  Printf.printf "  %-10s blocks=%d dispatches=%d insns=%d avg_len=%.2f\n"
    name (Bx.blocks_built bx) total_dispatch total_insns
    (if total_dispatch = 0 then 0.0
     else float_of_int total_insns /. float_of_int total_dispatch);
  Printf.printf "    len:  static  dynamic  insn-weighted%%\n";
  Array.iteri
    (fun len s ->
      if s > 0 || dyn.(len) > 0 then
        Printf.printf "    %3d: %7d %8d  %6.2f\n" len s dyn.(len)
          (if total_insns = 0 then 0.0
           else
             100.0 *. float_of_int (len * dyn.(len)) /. float_of_int total_insns))
    static

let mode_blocks args =
  List.iter
    (fun (b : Pf_mibench.Registry.benchmark) ->
      let name = b.Pf_mibench.Registry.name in
      let image, tr = prepare b in
      Printf.printf "%s:\n" name;
      let prog = Px.compile image in
      let st = Pf_arm.Exec.create image in
      let abx =
        walk_blocks ~isize:4 ~code_base:prog.Px.code_base
          ~entry:st.Pf_arm.Exec.regs.(15) prog.Px.uops st
      in
      print_histogram "arm" abx;
      let fuops =
        Array.mapi
          (fun idx fi ->
            let pc = tr.Pf_fits.Translate.code_base + (2 * idx) in
            match fi.Pf_fits.Translate.micro with
            | Pf_fits.Mapping.M_exec insn -> Px.of_insn ~isize:2 ~pc insn
            | Pf_fits.Mapping.M_dp32 { op; s; rd; rn; value; cond } ->
                Px.dp_value ~isize:2 ~pc ~cond ~op ~s ~rd ~rn ~value
            | Pf_fits.Mapping.M_jalr rm -> Px.jalr ~pc ~rm
            | Pf_fits.Mapping.M_undef why -> Px.undef ~isize:2 ~pc ~why)
          tr.Pf_fits.Translate.insns
      in
      let fst_ = Pf_arm.Exec.create tr.Pf_fits.Translate.image in
      let fbx =
        walk_blocks ~isize:2 ~code_base:tr.Pf_fits.Translate.code_base
          ~entry:tr.Pf_fits.Translate.entry fuops fst_
      in
      print_histogram "fits" fbx;
      flush stdout)
    (benchmarks_of_args args)

(* ---- --attrib: dispatch vs memory attribution -------------------------- *)

(* Per benchmark: the bare interpreter rate isolates dispatch+execute
   cost; the full-stack rate adds the fetch/cache/pipeline/power side
   ("memory").  The compiled engine's dispatch cost is then its total
   minus the (engine-independent) memory side. *)
let mode_attrib args =
  Printf.printf
    "%-12s %9s %9s %9s  %8s %8s %8s %8s\n" "benchmark" "pre_M/s" "cmp_M/s"
    "speedup" "disp_ns" "mem_ns" "cdisp_ns" "insns";
  List.iter
    (fun (b : Pf_mibench.Registry.benchmark) ->
      let name = b.Pf_mibench.Registry.name in
      let image, _ = prepare b in
      let prog = Px.compile image in
      let rate f =
        (* warm, then best of two timed runs *)
        ignore (f ());
        let best = ref infinity and steps = ref 0 in
        for _ = 1 to 2 do
          let t0 = Unix.gettimeofday () in
          steps := f ();
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        (float_of_int !steps /. !best, !steps)
      in
      let bare, _ =
        rate (fun () ->
            let st = Pf_arm.Exec.create image in
            Px.run prog st;
            st.Pf_arm.Exec.steps)
      in
      let pre, insns =
        rate (fun () ->
            (Pf_cpu.Arm_run.run image).Pf_cpu.Arm_run.instructions)
      in
      let cmp, _ =
        rate (fun () ->
            (Pf_cpu.Arm_run.run ~engine:Pf_cpu.Arm_run.Compiled image)
              .Pf_cpu.Arm_run.instructions)
      in
      let ns r = 1e9 /. r in
      let mem_ns = ns pre -. ns bare in
      Printf.printf "%-12s %9.1f %9.1f %8.2fx  %8.1f %8.1f %8.1f %8d\n" name
        (pre /. 1e6) (cmp /. 1e6) (cmp /. pre) (ns bare) mem_ns
        (Float.max 0.0 (ns cmp -. mem_ns))
        insns;
      flush stdout)
    (benchmarks_of_args args)

(* ---- default: layer microbenchmarks ------------------------------------ *)

let mode_layers () =
  let b = Pf_mibench.Registry.find "basicmath" in
  let image, tr = prepare b in
  let prog = Px.compile image in
  (* warmup *)
  let st = Pf_arm.Exec.create image in
  Px.run prog st;
  time "pexec bare" (fun () ->
      let st = Pf_arm.Exec.create image in
      Px.run prog st;
      st.Pf_arm.Exec.steps);
  time "arm_run full (pre)" (fun () ->
      let r = Pf_cpu.Arm_run.run image in
      r.Pf_cpu.Arm_run.instructions);
  time "arm_run full (cmp)" (fun () ->
      let r = Pf_cpu.Arm_run.run ~engine:Pf_cpu.Arm_run.Compiled image in
      r.Pf_cpu.Arm_run.instructions);
  time "arm_run + trace (pre)" (fun () ->
      let t = Pf_cpu.Trace.create ~isize:4 () in
      let r = Pf_cpu.Arm_run.run ~trace:t image in
      r.Pf_cpu.Arm_run.instructions);
  time "arm_run + trace (cmp)" (fun () ->
      let t = Pf_cpu.Trace.create ~isize:4 () in
      let r =
        Pf_cpu.Arm_run.run ~engine:Pf_cpu.Arm_run.Compiled ~trace:t image
      in
      r.Pf_cpu.Arm_run.instructions);
  (let t = Pf_cpu.Trace.create ~isize:4 () in
   let r = Pf_cpu.Arm_run.run ~trace:t image in
   time "arm replay" (fun () ->
       let r2 =
         Pf_cpu.Arm_run.replay
           ~cache_cfg:(Pf_cache.Icache.config ~size_bytes:8192 ())
           ~output:r.Pf_cpu.Arm_run.output image t
       in
       r2.Pf_cpu.Arm_run.instructions));
  time "fits_run full (pre)" (fun () ->
      let r = Pf_fits.Run.run tr in
      r.Pf_fits.Run.fits_instructions);
  time "fits_run full (cmp)" (fun () ->
      let r = Pf_fits.Run.run ~engine:Pf_fits.Run.Compiled tr in
      r.Pf_fits.Run.fits_instructions);
  let n = 5_000_000 in
  let cfg16 = Pf_cache.Icache.config ~size_bytes:16384 () in
  (let c = Pf_cache.Icache.create cfg16 in
   time "icache access_fast x5M" (fun () ->
       let acc = ref 0 in
       for i = 0 to n - 1 do
         acc :=
           !acc
           + Pf_cache.Icache.access_fast c ~addr:(i * 4 land 0x7FF)
               ~data:(i * 1664525)
       done;
       ignore !acc;
       n));
  (let geometry = Pf_power.Geometry.of_config cfg16 in
   let a = Pf_power.Account.create geometry in
   time "account on_access+cycles x5M" (fun () ->
       for _ = 0 to n - 1 do
         Pf_power.Account.on_access a ~toggles:12 ~refilled_words:0;
         Pf_power.Account.on_cycles a 1
       done;
       n));
  (let cache = Pf_cache.Icache.create cfg16 in
   let account = Pf_power.Account.create (Pf_power.Geometry.of_config cfg16) in
   let pipe =
     Pf_cpu.Pipeline.create ~cache ~account
       ~fetch_data:(fun a -> a * 1664525)
       ()
   in
   time "pipeline issue x5M" (fun () ->
       for i = 0 to n - 1 do
         Pf_cpu.Pipeline.issue pipe ~backward:false ~mem_addr:(-1)
           ~dmisses:(-1)
           ~addr:(i * 4 land 0x7FF)
           ~size:4 ~cls:Pf_cpu.Pipeline.Alu ~reads:3 ~writes:4 ~taken:false
           ~mem_words:0
       done;
       n))

let () =
  match Array.to_list Sys.argv with
  | _ :: "--blocks" :: rest -> mode_blocks rest
  | _ :: "--attrib" :: rest -> mode_attrib rest
  | _ -> mode_layers ()
