(* powerfits — command-line front end for the PowerFITS reproduction.

   Subcommands walk the paper's flow (Figure 1): list the benchmark suite,
   profile a program, synthesize its FITS ISA, disassemble either binary,
   run one of the four simulated configurations, or regenerate the
   evaluation figures. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Print synthesis debug logging.")

let find_bench name =
  try Pf_mibench.Registry.find_exn name
  with Pf_util.Sim_error.Error e ->
    Printf.eprintf "powerfits: %s\n" (Pf_util.Sim_error.to_string e);
    exit 2

let build ?(scale = 1) (b : Pf_mibench.Registry.benchmark) =
  let p = b.Pf_mibench.Registry.program ~scale in
  Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let benchmarks_arg =
  Arg.(value & opt (some string) None
       & info [ "benchmarks" ] ~docv:"A,B,C"
           ~doc:"Comma-separated benchmark subset (default: the whole \
                 suite).  Unknown names are rejected with the list of \
                 valid names.")

let parse_bench_list s =
  let names =
    List.filter (fun n -> n <> "") (String.split_on_char ',' s)
  in
  if names = [] then begin
    Printf.eprintf "powerfits: --benchmarks needs at least one name\n";
    exit 2
  end;
  List.map find_bench names

let resolve_benchmarks = function
  | None -> Pf_mibench.Registry.all
  | Some s -> parse_bench_list s

(* run/inject historically take one positional BENCHMARK; --benchmarks
   iterates the same command over a subset instead. *)
let bench_opt_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let resolve_bench_selection ~cmd positional benchmarks =
  match (positional, benchmarks) with
  | Some _, Some _ ->
      Printf.eprintf
        "powerfits %s: give either a positional BENCHMARK or --benchmarks, \
         not both\n"
        cmd;
      exit 2
  | Some name, None -> [ find_bench name ]
  | None, Some s -> parse_bench_list s
  | None, None ->
      Printf.eprintf
        "powerfits %s: name a BENCHMARK (or use --benchmarks A,B,C); try \
         `powerfits list'\n"
        cmd;
      exit 2

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N"
         ~doc:"Input-size multiplier (default 1).")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for sweeps and campaigns (default: the \
                 host's recommended domain count).  $(b,--jobs 1) runs \
                 sequentially; results are identical for every value.")

let resolve_jobs = function
  (* a malformed --jobs fails as a structured Invalid_config everywhere,
     same as any other bad configuration (the top-level handler turns it
     into the Sim_error exit code) *)
  | Some j -> Pf_util.Pool.validate_jobs ~where:"cli" j
  | None -> Pf_harness.Pool.default_jobs ()

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-11s %s\n" "benchmark" "category" "power-study";
    List.iter
      (fun (b : Pf_mibench.Registry.benchmark) ->
        Printf.printf "%-18s %-11s %s\n" b.Pf_mibench.Registry.name
          b.Pf_mibench.Registry.category
          (if b.Pf_mibench.Registry.power_study then "yes" else "no"))
      Pf_mibench.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 21-benchmark suite.")
    Term.(const run $ const ())

(* ---- profile ---- *)

let profile_cmd =
  let run name scale =
    let image = build ~scale (find_bench name) in
    let profile, _ = Pf_fits.Profile.profile_run image in
    print_string (Pf_fits.Profile.summary profile);
    print_string (Pf_fits.Regfile.describe (Pf_fits.Regfile.analyze profile))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a benchmark: opcode mix, immediates, register pressure.")
    Term.(const run $ bench_arg $ scale_arg)

(* ---- synth ---- *)

let synth_cmd =
  let run name scale verbose =
    setup_logs verbose;
    let image = build ~scale (find_bench name) in
    let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
    let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
    let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
    print_string (Pf_fits.Spec.describe tr.Pf_fits.Translate.spec);
    let st = tr.Pf_fits.Translate.stats in
    Printf.printf
      "\nstatic mapping: %.1f%% 1-to-1 (%d of %d ARM instructions)\n"
      (Pf_fits.Translate.static_mapping_rate tr)
      st.Pf_fits.Translate.one_to_one st.Pf_fits.Translate.arm_insns;
    List.iter
      (fun (n, c) -> Printf.printf "  1-to-%d: %d instructions\n" n c)
      st.Pf_fits.Translate.expansion_hist;
    Printf.printf "code size: ARM %d B -> FITS %d B (%.1f%% saving)\n"
      st.Pf_fits.Translate.code_bytes_arm st.Pf_fits.Translate.code_bytes_fits
      (Pf_fits.Translate.code_size_saving tr)
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize a benchmark's FITS ISA and report mapping statistics.")
    Term.(const run $ bench_arg $ scale_arg $ verbose_arg)

(* ---- disasm ---- *)

let disasm_cmd =
  let fits_flag =
    Arg.(value & flag & info [ "fits" ] ~doc:"Disassemble the FITS binary.")
  in
  let run name scale fits =
    let image = build ~scale (find_bench name) in
    if fits then begin
      let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
      let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
      let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
      print_string (Pf_fits.Translate.disassemble tr)
    end
    else print_string (Pf_arm.Image.disassemble image)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a benchmark's ARM or FITS binary.")
    Term.(const run $ bench_arg $ scale_arg $ fits_flag)

(* ---- run ---- *)

let config_arg =
  let cfg_conv =
    Arg.enum
      [ ("arm16", `Arm16); ("arm8", `Arm8); ("fits16", `Fits16);
        ("fits8", `Fits8) ]
  in
  Arg.(value & opt cfg_conv `Arm16
       & info [ "config" ] ~docv:"CONFIG"
           ~doc:"Processor configuration: arm16, arm8, fits16 or fits8.")

let max_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "max-steps" ] ~docv:"N"
           ~doc:"Step-budget watchdog; exceeding it fails with a structured \
                 timeout (exit code 4).")

(* Execution-engine selector shared by `run` and `figures`.  Distinct
   from `explore --engine replay|sweep`, which picks how the DSE grid is
   evaluated; this one picks how an instruction stream is *executed*.
   Every engine retires the identical architectural stream (pinned by the
   three-way differential tests), so it affects simulator speed only. *)
let exec_engine_arg =
  let engine_conv =
    Arg.enum
      [ ("reference", Pf_cpu.Arm_run.Reference);
        ("predecoded", Pf_cpu.Arm_run.Predecoded);
        ("compiled", Pf_cpu.Arm_run.Compiled) ]
  in
  Arg.(value & opt engine_conv Pf_cpu.Arm_run.Compiled
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,reference) (decode-as-you-go \
                 interpreter), $(b,predecoded) (micro-op interpreter) or \
                 $(b,compiled) (basic-block compiler, the default).  \
                 Results are engine-invariant; only simulation speed \
                 changes.")

let fits_engine = function
  | Pf_cpu.Arm_run.Reference -> Pf_fits.Run.Reference
  | Pf_cpu.Arm_run.Predecoded -> Pf_fits.Run.Predecoded
  | Pf_cpu.Arm_run.Compiled -> Pf_fits.Run.Compiled

let run_cmd =
  let run_one ~scale ~config ~max_steps ~engine b =
    let image = build ~scale b in
    let cache_cfg =
      match config with
      | `Arm16 | `Fits16 -> Pf_dse.Space.cache_16k
      | `Arm8 | `Fits8 -> Pf_dse.Space.cache_8k
    in
    let print_common ~instrs ~cycles ~ipc ~accesses ~misses ~mr
        (p : Pf_power.Account.report) output =
      Printf.printf "instructions: %d\ncycles: %d\nIPC: %.2f\n" instrs cycles
        ipc;
      Printf.printf "I-cache accesses: %d  misses: %d (%.1f /M)\n" accesses
        misses mr;
      Printf.printf
        "I-cache energy: switching %.3g  internal %.3g  leakage %.3g  \
         (peak power %.3g)\n"
        p.Pf_power.Account.switching p.Pf_power.Account.internal
        p.Pf_power.Account.leakage p.Pf_power.Account.peak_power;
      Printf.printf "--- program output ---\n%s" output
    in
    match config with
    | `Arm16 | `Arm8 ->
        let r = Pf_cpu.Arm_run.run ~engine ~cache_cfg ?max_steps image in
        print_common ~instrs:r.Pf_cpu.Arm_run.instructions
          ~cycles:r.Pf_cpu.Arm_run.cycles ~ipc:r.Pf_cpu.Arm_run.ipc
          ~accesses:r.Pf_cpu.Arm_run.cache_accesses
          ~misses:r.Pf_cpu.Arm_run.cache_misses
          ~mr:r.Pf_cpu.Arm_run.miss_rate_per_million r.Pf_cpu.Arm_run.power
          r.Pf_cpu.Arm_run.output
    | `Fits16 | `Fits8 ->
        let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
        let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
        let tr =
          Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image
        in
        let r =
          Pf_fits.Run.run ~engine:(fits_engine engine) ~cache_cfg ?max_steps
            tr
        in
        Printf.printf "dynamic 1-to-1 mapping: %.1f%%\n"
          r.Pf_fits.Run.dyn_one_to_one_pct;
        print_common ~instrs:r.Pf_fits.Run.arm_instructions
          ~cycles:r.Pf_fits.Run.cycles ~ipc:r.Pf_fits.Run.ipc
          ~accesses:r.Pf_fits.Run.cache_accesses
          ~misses:r.Pf_fits.Run.cache_misses
          ~mr:r.Pf_fits.Run.miss_rate_per_million r.Pf_fits.Run.power
          r.Pf_fits.Run.output
  in
  let run name benchmarks scale config max_steps engine jobs =
    (* a single-configuration simulation has no sweep to spread across
       domains; --jobs is accepted for symmetry with figures/inject *)
    ignore (resolve_jobs jobs);
    let benches = resolve_bench_selection ~cmd:"run" name benchmarks in
    let many = List.length benches > 1 in
    List.iter
      (fun (b : Pf_mibench.Registry.benchmark) ->
        if many then
          Printf.printf "=== %s ===\n" b.Pf_mibench.Registry.name;
        run_one ~scale ~config ~max_steps ~engine b)
      benches
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate one benchmark (or a --benchmarks subset) on one of the \
          four configurations.")
    Term.(const run $ bench_opt_arg $ benchmarks_arg $ scale_arg
          $ config_arg $ max_steps_arg $ exec_engine_arg $ jobs_arg)

(* ---- figures ---- *)

let figures_cmd =
  let only =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"FIG"
             ~doc:"Print a single figure (fig3..fig14).")
  in
  let run scale only benchmarks engine jobs =
    let jobs = resolve_jobs jobs in
    let benchmarks = resolve_benchmarks benchmarks in
    let sweep =
      Pf_harness.Experiment.run_all ~scale ~benchmarks ~engine ~jobs ()
    in
    Printf.eprintf "%s\n%!" (Pf_harness.Experiment.banner sweep);
    let all = Pf_harness.Experiment.completed_results sweep in
    let divergent =
      List.exists
        (fun (r : Pf_harness.Experiment.bench_result) ->
          not r.Pf_harness.Experiment.outputs_consistent)
        all
      || List.exists
           (fun (row : Pf_harness.Experiment.sweep_row) ->
             match row.Pf_harness.Experiment.outcome with
             | Error e ->
                 e.Pf_util.Sim_error.kind = Pf_util.Sim_error.Divergence
             | Ok _ -> false)
           sweep.Pf_harness.Experiment.rows
    in
    List.iter
      (fun (r : Pf_harness.Experiment.bench_result) ->
        if not r.Pf_harness.Experiment.outputs_consistent then
          Printf.eprintf "DIVERGENT: inconsistent outputs on %s\n"
            r.Pf_harness.Experiment.name)
      all;
    let power = Pf_harness.Experiment.power_rows all in
    let figs =
      Pf_harness.Figures.mapping_figures all
      @ Pf_harness.Figures.power_figures power
    in
    let figs =
      match only with
      | None -> figs
      | Some id ->
          List.filter
            (fun (f : Pf_harness.Figures.figure) ->
              String.length f.Pf_harness.Figures.id >= String.length id
              && String.sub f.Pf_harness.Figures.id 0 (String.length id) = id)
            figs
    in
    List.iter (fun f -> print_endline (Pf_harness.Figures.render f)) figs;
    (* partial figures still print above; the exit code says what broke:
       3 = a divergence, 4 = some other benchmark failure *)
    if divergent then exit 3
    else if sweep.Pf_harness.Experiment.completed
            < sweep.Pf_harness.Experiment.total
    then exit 4
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Run the experiment (optionally on a --benchmarks subset) and \
          print every evaluation figure.")
    Term.(const run $ scale_arg $ only $ benchmarks_arg $ exec_engine_arg
          $ jobs_arg)

(* ---- inject ---- *)

let inject_cmd =
  let target_arg =
    let tconv =
      Arg.enum
        [ ("decoder", Pf_fault.Injector.Decoder);
          ("dict", Pf_fault.Injector.Dict);
          ("icache", Pf_fault.Injector.Icache);
          ("regs", Pf_fault.Injector.Regs) ]
    in
    Arg.(value & opt tconv Pf_fault.Injector.Decoder
         & info [ "target" ] ~docv:"TARGET"
             ~doc:"Structure to corrupt: decoder, dict, icache or regs.")
  in
  let rate_arg =
    Arg.(value & opt float 1e-4
         & info [ "rate" ] ~docv:"R"
             ~doc:"Per-bit flip probability (0 disables injection).")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign RNG seed; same seed replays the same flips.")
  in
  let trials_arg =
    Arg.(value & opt int 20
         & info [ "trials" ] ~docv:"N" ~doc:"Injection runs (default 20).")
  in
  let parity_arg =
    Arg.(value & flag
         & info [ "parity" ]
             ~doc:"Model parity-protected arrays and report coverage.")
  in
  let cfg_arg =
    let cconv = Arg.enum [ ("fits16", `Fits16); ("fits8", `Fits8) ] in
    Arg.(value & opt cconv `Fits16
         & info [ "config" ] ~docv:"CONFIG"
             ~doc:"FITS configuration under injection: fits16 or fits8.")
  in
  let run name benchmarks scale target rate seed trials parity config jobs =
    let jobs = resolve_jobs jobs in
    if rate < 0. || rate > 1. then begin
      Printf.eprintf "inject: --rate must be in [0,1]\n";
      exit 2
    end;
    let benches = resolve_bench_selection ~cmd:"inject" name benchmarks in
    let many = List.length benches > 1 in
    List.iter
      (fun (b : Pf_mibench.Registry.benchmark) ->
        if many then
          Printf.printf "=== %s ===\n" b.Pf_mibench.Registry.name;
        let image = build ~scale b in
        let dyn_counts, reference =
          Pf_fits.Synthesis.dyn_counts_of_run image
        in
        let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
        let tr =
          Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image
        in
        let cache_cfg =
          match config with
          | `Fits16 -> Pf_dse.Space.cache_16k
          | `Fits8 -> Pf_dse.Space.cache_8k
        in
        let report =
          Pf_fault.Campaign.run ~trials ~parity ~cache_cfg ~jobs ~target
            ~rate ~seed ~reference tr
        in
        print_string (Pf_fault.Campaign.to_string report))
      benches
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Run a seeded fault-injection campaign against a benchmark's (or \
          a --benchmarks subset's) FITS machine and classify the outcomes.")
    Term.(const run $ bench_opt_arg $ benchmarks_arg $ scale_arg
          $ target_arg $ rate_arg $ seed_arg $ trials_arg $ parity_arg
          $ cfg_arg $ jobs_arg)

(* ---- multi ---- *)

let multi_cmd =
  let programs_arg =
    Arg.(value & opt (some string) None
         & info [ "programs" ] ~docv:"A,B,C"
             ~doc:"Programs forming the suite (default: all 21).  The \
                   shared ISA is synthesized from exactly these.")
  in
  let weighting_arg =
    Arg.(value & opt string "dynamic"
         & info [ "weighting" ] ~docv:"SCHEME"
             ~doc:"Per-program weighting for the merged profile: \
                   $(b,dynamic) (raw dynamic-instruction counts), \
                   $(b,uniform) (every program normalized to a common \
                   budget), or $(b,name=W,name=W,...) custom integer \
                   weights.")
  in
  let loo_arg =
    Arg.(value & flag
         & info [ "loo" ]
             ~doc:"Also run the leave-one-out campaign: each program is \
                   evaluated under the ISA synthesized from every other \
                   program.")
  in
  let dict_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "dict-budget" ] ~docv:"N"
             ~doc:"Shared-dictionary entry budget (default: capacity \
                   minus a 64-entry reloadable per-program tail).")
  in
  let run programs weighting loo dict_budget scale jobs =
    let jobs = resolve_jobs jobs in
    let weighting =
      match Pf_multi.Weighting.of_string weighting with
      | Ok w -> w
      | Error msg ->
          Printf.eprintf "powerfits multi: %s\n" msg;
          exit 2
    in
    let benches = resolve_benchmarks programs in
    let campaign =
      Pf_multi.Eval.run ~weighting ?dict_budget ~loo ~scale ~jobs benches
    in
    Printf.eprintf "%s\n%!" (Pf_multi.Eval.banner campaign);
    print_string
      (Pf_multi.Suite.coverage_table campaign.Pf_multi.Eval.c_shared);
    print_newline ();
    print_string (Pf_multi.Eval.table campaign);
    print_newline ();
    List.iter
      (fun f -> print_endline (Pf_harness.Figures.render f))
      (Pf_multi.Eval.figures campaign);
    print_endline (Pf_multi.Eval.summary campaign);
    if Pf_multi.Eval.divergent campaign <> [] then exit 3
    else if campaign.Pf_multi.Eval.c_completed < campaign.Pf_multi.Eval.c_total
    then exit 4
  in
  Cmd.v
    (Cmd.info "multi"
       ~doc:
         "Multi-program ISA synthesis: build one shared FITS ISA for a \
          program suite and measure how every program fares under its \
          per-app, the shared, and (with $(b,--loo)) its leave-one-out \
          ISA.")
    Term.(const run $ programs_arg $ weighting_arg $ loo_arg
          $ dict_budget_arg $ scale_arg $ jobs_arg)

(* ---- population ---- *)

let population_cmd =
  let count_arg =
    Arg.(value & opt int 1000
         & info [ "count" ] ~docv:"N"
             ~doc:"Number of programs to generate and evaluate.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Population seed.  Program $(i,i) is generated from a \
                   splitmix of (S, i), so the population is reproducible \
                   and independent of $(b,--jobs).")
  in
  let adaptive_arg =
    Arg.(value & flag
         & info [ "adaptive" ]
             ~doc:"Also run phase-adaptive resynthesis: segment the \
                   fleet schedule by opcode-mix drift, synthesize \
                   per-phase dictionary/register-list tables over the \
                   shared opcode plane, and report static-vs-adaptive \
                   energy including decoder data-plane reload charges.")
  in
  let dict_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "dict-budget" ] ~docv:"N"
             ~doc:"Shared-dictionary entry budget (default: capacity \
                   minus a 64-entry reloadable per-program tail).")
  in
  let show_program_arg =
    Arg.(value & opt (some int) None
         & info [ "show-program" ] ~docv:"K"
             ~doc:"Print the canonical rendering of generated program K \
                   to stdout and exit (no evaluation).")
  in
  let run count seed adaptive dict_budget show_program max_steps jobs =
    let jobs = resolve_jobs jobs in
    match show_program with
    | Some k ->
        if k < 0 || k >= count then begin
          Printf.eprintf
            "powerfits population: --show-program %d out of range [0, %d)\n"
            k count;
          exit 2
        end;
        let model = Pf_workgen.Calibrate.reference () in
        let p = Pf_workgen.Generate.program ~model ~seed ~index:k in
        print_string (Pf_workgen.Generate.render p)
    | None ->
        let r =
          Pf_workgen.Population.run ~jobs ?dict_budget ?max_steps ~adaptive
            ~count ~seed ()
        in
        Printf.eprintf
          "population: %d programs, jobs=%d, gen %.2fs, eval %.2fs \
           (%.0f src-insns/s)\n%!"
          r.Pf_workgen.Population.count r.Pf_workgen.Population.jobs
          r.Pf_workgen.Population.gen_s r.Pf_workgen.Population.eval_s
          (float_of_int r.Pf_workgen.Population.total_steps
          /. Float.max 1e-9 r.Pf_workgen.Population.eval_s);
        print_string (Pf_workgen.Population.report r);
        if
          List.exists
            (fun row -> not row.Pf_workgen.Population.r_output_ok)
            r.Pf_workgen.Population.rows
        then exit 3
        else if r.Pf_workgen.Population.failures <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:
         "Fleet-scale campaign over a generated workload population: \
          synthesize calibrated programs from a seed, build one shared \
          FITS ISA across all of them, and report the shared-ISA \
          power-saving degradation distribution (with $(b,--adaptive), \
          also phase-adaptive data-plane resynthesis).")
    Term.(const run $ count_arg $ seed_arg $ adaptive_arg $ dict_budget_arg
          $ show_program_arg $ max_steps_arg $ jobs_arg)

(* ---- explore ---- *)

let explore_cmd =
  let module D = Pf_dse in
  let grid_arg =
    Arg.(value & opt string "full"
         & info [ "grid" ] ~docv:"GRID"
             ~doc:"Design-space grid: $(b,smoke) (6 geometries), $(b,full) \
                   (36 geometries), $(b,dense) (1058 geometries, evaluated \
                   by the single-pass sweep engine), or a spec like \
                   $(b,sizes=1k,4k,16k;blocks=16,32;assocs=2,32;dicts=none,96) \
                   (sizes/blocks take a k suffix; dicts caps the FITS \
                   dictionary, $(b,none) = the uncapped per-app flow).")
  in
  let engine_arg =
    Arg.(value & opt (some string) None
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Force the evaluation engine: $(b,replay) (one trace \
                   replay per geometry) or $(b,sweep) (one stack-distance \
                   pass per trace, all geometries at once).  Default: \
                   chosen per grid density.  Results are bit-identical \
                   either way.")
  in
  let cross_check_arg =
    Arg.(value & flag
         & info [ "cross-check" ]
             ~doc:"After the sweep, re-evaluate the paper-point geometries \
                   with the replay-engine oracle and require every \
                   overlapping point to be bit-identical (floats compared \
                   by their IEEE bits).  Exits 5 on any mismatch.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write every evaluated point as CSV to FILE ($(b,-) for \
                   stdout).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the full result as JSON to FILE ($(b,-) for \
                   stdout).")
  in
  let paper_tag (p : D.Explore.point) =
    match p.D.Explore.variant with
    | D.Explore.Arm -> D.Space.paper_point ~arm:true p.D.Explore.geometry
    | D.Explore.Fits None -> D.Space.paper_point ~arm:false p.D.Explore.geometry
    | D.Explore.Fits (Some _) -> None
  in
  let point_row front (p : D.Explore.point) =
    let m = p.D.Explore.metrics in
    let pw = m.D.Explore.power in
    [
      D.Space.label p.D.Explore.geometry;
      D.Explore.variant_label p.D.Explore.variant;
      Pf_util.Table.si pw.Pf_power.Account.total;
      Pf_util.Table.si (Pf_power.Account.avg_power pw);
      Printf.sprintf "%.2f" m.D.Explore.ipc;
      Printf.sprintf "%.1f" m.D.Explore.miss_rate_pm;
      Pf_util.Table.si (float_of_int m.D.Explore.gate_count);
      (if List.exists (fun (q, _) -> q == p) front.D.Pareto.frontier then "*"
       else "");
      (match paper_tag p with Some tag -> "= " ^ tag | None -> "");
    ]
  in
  let header =
    [ "geometry"; "isa"; "E_total"; "avg power"; "IPC"; "miss/M"; "gates";
      "pareto"; "paper" ]
  in
  (* bit-exact point comparison for --cross-check: ints by =, floats by
     their IEEE-754 bits, so "equal" means reproducible, not just close *)
  let points_bit_identical (a : D.Explore.point) (b : D.Explore.point) =
    let fbits = Int64.bits_of_float in
    let ma = a.D.Explore.metrics and mb = b.D.Explore.metrics in
    let pa = ma.D.Explore.power and pb = mb.D.Explore.power in
    a.D.Explore.variant = b.D.Explore.variant
    && a.D.Explore.geometry = b.D.Explore.geometry
    && ma.D.Explore.instructions = mb.D.Explore.instructions
    && ma.D.Explore.cycles = mb.D.Explore.cycles
    && fbits ma.D.Explore.ipc = fbits mb.D.Explore.ipc
    && ma.D.Explore.fetch_accesses = mb.D.Explore.fetch_accesses
    && ma.D.Explore.cache_accesses = mb.D.Explore.cache_accesses
    && ma.D.Explore.cache_misses = mb.D.Explore.cache_misses
    && fbits ma.D.Explore.miss_rate_pm = fbits mb.D.Explore.miss_rate_pm
    && fbits ma.D.Explore.dcache_miss_rate_pm
       = fbits mb.D.Explore.dcache_miss_rate_pm
    && fbits pa.Pf_power.Account.switching
       = fbits pb.Pf_power.Account.switching
    && fbits pa.Pf_power.Account.internal = fbits pb.Pf_power.Account.internal
    && fbits pa.Pf_power.Account.leakage = fbits pb.Pf_power.Account.leakage
    && fbits pa.Pf_power.Account.total = fbits pb.Pf_power.Account.total
    && fbits pa.Pf_power.Account.peak_power
       = fbits pb.Pf_power.Account.peak_power
    && pa.Pf_power.Account.cycles = pb.Pf_power.Account.cycles
    && ma.D.Explore.gate_count = mb.D.Explore.gate_count
  in
  let cross_check ~scale ~max_steps ~jobs ~benches space (t : D.Explore.t) =
    let oracle_space =
      D.Space.make
        ~sizes:[ 8 * 1024; 16 * 1024 ]
        ~dict_budgets:space.D.Space.dict_budgets ()
    in
    let oracle_geoms =
      List.filter
        (fun g -> List.mem g t.D.Explore.geometries)
        (D.Space.geometries oracle_space)
    in
    if oracle_geoms = [] then begin
      Printf.eprintf
        "cross-check: grid contains no paper-point geometry, nothing to \
         compare\n%!";
      exit 2
    end;
    Printf.eprintf
      "cross-check: re-evaluating %d paper-point geometries with the \
       replay oracle\n%!"
      (List.length oracle_geoms);
    let oracle =
      D.Explore.run ~scale ?max_steps ~jobs ~engine:D.Space.Replay
        ~benchmarks:benches oracle_space
    in
    let compared = ref 0 and mismatched = ref 0 in
    List.iter
      (fun (ob : D.Explore.bench_run) ->
        match
          List.find_opt
            (fun (b : D.Explore.bench_run) ->
              b.D.Explore.name = ob.D.Explore.name)
            (D.Explore.completed_runs t)
        with
        | None -> ()
        | Some br ->
            List.iter
              (fun (op : D.Explore.point) ->
                if List.mem op.D.Explore.geometry oracle_geoms then begin
                  match
                    List.find_opt
                      (fun (p : D.Explore.point) ->
                        p.D.Explore.variant = op.D.Explore.variant
                        && p.D.Explore.geometry = op.D.Explore.geometry)
                      br.D.Explore.points
                  with
                  | None ->
                      incr mismatched;
                      Printf.eprintf
                        "cross-check: %s %s %s missing from the sweep \
                         output\n%!"
                        br.D.Explore.name
                        (D.Explore.variant_label op.D.Explore.variant)
                        (D.Space.label op.D.Explore.geometry)
                  | Some p ->
                      incr compared;
                      if not (points_bit_identical p op) then begin
                        incr mismatched;
                        Printf.eprintf
                          "cross-check: MISMATCH at %s %s %s (sweep vs \
                           replay oracle)\n%!"
                          br.D.Explore.name
                          (D.Explore.variant_label op.D.Explore.variant)
                          (D.Space.label op.D.Explore.geometry)
                      end
                end)
              ob.D.Explore.points)
      (D.Explore.completed_runs oracle);
    if !mismatched > 0 then begin
      Printf.eprintf "cross-check: %d of %d points differ from the oracle\n%!"
        !mismatched
        (!compared + !mismatched);
      exit 5
    end
    else
      Printf.eprintf
        "cross-check: %d points bit-identical to the replay oracle\n%!"
        !compared
  in
  let run grid benchmarks scale max_steps jobs engine do_cross csv json =
    let jobs = resolve_jobs jobs in
    let space =
      match D.Space.of_string grid with
      | Ok s -> s
      | Error msg ->
          Printf.eprintf "powerfits explore: %s\n" msg;
          exit 2
    in
    let engine =
      match engine with
      | None -> None
      | Some e -> (
          match D.Space.engine_of_string e with
          | Ok e -> Some e
          | Error msg ->
              Printf.eprintf "powerfits explore: %s\n" msg;
              exit 2)
    in
    let benches = resolve_benchmarks benchmarks in
    Printf.eprintf "explore: %s\n%!"
      (D.Space.describe ~benchmarks:(List.length benches) space);
    let t =
      D.Explore.run ~scale ?max_steps ~jobs ?engine ~benchmarks:benches space
    in
    Printf.eprintf "%s\n%!" (D.Explore.banner t);
    if do_cross then cross_check ~scale ~max_steps ~jobs ~benches space t;
    let emit what path content =
      match path with
      | "-" -> print_string content
      | path ->
          (* atomic publication: a crash (or a concurrent reader) never
             sees a torn artifact *)
          Pf_util.Atomic_file.write ~path content;
          Printf.eprintf "explore: wrote %s to %s\n%!" what path
    in
    Option.iter (fun p -> emit "CSV" p (D.Explore.to_csv t)) csv;
    Option.iter (fun p -> emit "JSON" p (D.Explore.to_json t)) json;
    (match D.Explore.aggregate t with
    | [] -> ()
    | agg ->
        let front = D.Explore.frontier_of agg in
        Printf.printf
          "== suite aggregate: Pareto frontier over (E_total v, IPC ^, \
           miss/M v, gates v) ==\n";
        let frontier_points = List.map fst front.D.Pareto.frontier in
        print_string
          (Pf_util.Table.render ~header
             (List.map (point_row front) frontier_points));
        Printf.printf "%d of %d points on the frontier, %d dominated\n\n"
          (List.length frontier_points)
          front.D.Pareto.total front.D.Pareto.dominated;
        (* where do the paper's four configurations sit? *)
        let paper_pts =
          List.filter (fun p -> paper_tag p <> None) agg
        in
        let off_frontier =
          List.filter
            (fun p ->
              not
                (List.exists (fun (q, _) -> q == p) front.D.Pareto.frontier))
            paper_pts
        in
        if off_frontier <> [] then begin
          Printf.printf "== paper points dominated by the explored space ==\n";
          print_string
            (Pf_util.Table.render ~header
               (List.map (point_row front) off_frontier));
          print_newline ()
        end);
    (match D.Explore.completed_runs t with
    | [] -> ()
    | runs ->
        Printf.printf "== per-benchmark frontiers ==\n";
        let rows =
          List.map
            (fun (br : D.Explore.bench_run) ->
              let front = D.Explore.frontier_of br.D.Explore.points in
              let paper_on_front =
                List.filter_map
                  (fun (p, _) -> paper_tag p)
                  front.D.Pareto.frontier
              in
              [
                br.D.Explore.name;
                string_of_int front.D.Pareto.total;
                string_of_int (List.length front.D.Pareto.frontier);
                string_of_int front.D.Pareto.dominated;
                (if paper_on_front = [] then "-"
                 else String.concat "," paper_on_front);
              ])
            runs
        in
        print_string
          (Pf_util.Table.render
             ~header:
               [ "benchmark"; "points"; "frontier"; "dominated";
                 "paper on frontier" ]
             rows));
    (* exit codes as in run/figures: 3 = divergence, 4 = incomplete sweep *)
    if D.Explore.diverged t then exit 3
    else if t.D.Explore.completed < t.D.Explore.total then exit 4
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Design-space exploration: sweep cache geometries (and FITS \
          dictionary budgets) over the suite — one execution per ISA per \
          benchmark, then either one cheap replay per geometry or, for \
          dense grids, one single-pass stack-distance sweep per trace \
          covering every geometry at once — and report deterministic \
          Pareto frontiers with the paper's four configurations \
          annotated.")
    Term.(const run $ grid_arg $ benchmarks_arg $ scale_arg $ max_steps_arg
          $ jobs_arg $ engine_arg $ cross_check_arg $ csv_arg $ json_arg)

(* ---- serve ---- *)

let serve_cmd =
  (* --crash-at N:POINT arms a store-write crash: on the N-th time an
     atomic store write reaches POINT, the process exits 42 on the spot —
     file descriptors abandoned, temp files left torn, exactly what
     kill -9 mid-write leaves behind.  The exit lives here in the CLI
     (lib/serve is lint-banned from exiting); the library hook only
     answers the "should I die here?" question. *)
  let crash_of_spec spec =
    let fail () =
      Printf.eprintf
        "powerfits serve: bad --crash-at %S (want N:POINT with POINT one \
         of %s)\n"
        spec
        (String.concat "|"
           (List.map Pf_util.Atomic_file.crash_point_name
              Pf_util.Atomic_file.all_crash_points));
      exit 2
    in
    match String.index_opt spec ':' with
    | None -> fail ()
    | Some i -> (
        let n = String.sub spec 0 i in
        let pname = String.sub spec (i + 1) (String.length spec - i - 1) in
        match
          (int_of_string_opt n, Pf_util.Atomic_file.crash_point_of_string pname)
        with
        | Some n, Some point when n >= 1 ->
            let count = ref 0 in
            fun p ->
              if p = point then begin
                incr count;
                if !count = n then begin
                  Printf.eprintf "serve: injected crash at write %d (%s)\n%!"
                    n pname;
                  exit 42
                end
              end;
              false
        | _ -> fail ())
  in
  let run socket store jobs queue_cap budget_s max_steps max_requests no_fsync
      crash_at selftest =
    match selftest with
    | Some dir ->
        (* store-fault campaign: crash at every point, flip/truncate
           records, prove nothing committed is lost and nothing corrupt
           is served *)
        let r = Pf_fault.Storefault.run ~dir ~seed:7 () in
        print_endline (Pf_fault.Storefault.banner r);
        if r.Pf_fault.Storefault.survived < r.Pf_fault.Storefault.total then
          exit 4
    | None ->
        let jobs = resolve_jobs jobs in
        let cfg =
          {
            Pf_serve.Daemon.socket_path = socket;
            store_dir = store;
            jobs;
            queue_capacity = queue_cap;
            budget_s;
            default_max_steps = max_steps;
            fsync = not no_fsync;
            crash = Option.map crash_of_spec crash_at;
            max_requests;
          }
        in
        Pf_serve.Daemon.run cfg
  in
  let socket_arg =
    Arg.(value
         & opt string Pf_serve.Daemon.default_config.Pf_serve.Daemon.socket_path
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Content-addressed artifact store directory (created if \
                   missing; recovered and verified on startup).  Without \
                   it every request recomputes.")
  in
  let queue_cap_arg =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission-queue bound; requests beyond it get a \
                   structured `overloaded' reply (backpressure).")
  in
  let budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget-s" ] ~docv:"SECONDS"
             ~doc:"Default per-request wall-clock budget (60s if unset); \
                   over-budget requests degrade to half scale instead of \
                   failing.")
  in
  let max_requests_arg =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Stop after accepting N connections (self-stopping test \
                   daemons).")
  in
  let no_fsync_arg =
    Arg.(value & flag
         & info [ "no-fsync" ]
             ~doc:"Skip fsync on store writes (tests only: a machine \
                   crash may then lose — but still never tear — recent \
                   entries).")
  in
  let crash_at_arg =
    Arg.(value & opt (some string) None
         & info [ "crash-at" ] ~docv:"N:POINT"
             ~doc:"Fault injection: exit(42) when the N-th store write \
                   reaches POINT (mid-write|after-write|before-rename|\
                   after-rename), simulating kill -9 at the worst \
                   instant.")
  in
  let selftest_arg =
    Arg.(value & opt (some string) None
         & info [ "selftest" ] ~docv:"DIR"
             ~doc:"Run the store-fault campaign (crash points x \
                   corruption) in DIR instead of serving; exit 4 if any \
                   trial fails.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running synthesis service on a Unix-domain socket: \
          length-prefixed JSON requests (synthesize / evaluate / \
          explore-point / status), bounded admission onto a domain \
          pool, and a crash-safe content-addressed artifact store with \
          startup recovery.")
    Term.(const run $ socket_arg $ store_arg $ jobs_arg $ queue_cap_arg
          $ budget_arg $ max_steps_arg $ max_requests_arg $ no_fsync_arg
          $ crash_at_arg $ selftest_arg)

(* ---- report ---- *)

let report_cmd =
  let run name scale =
    let b = find_bench name in
    let r = Pf_harness.Experiment.run_benchmark ~scale b in
    let e = r.Pf_harness.Experiment.arm16 in
    Printf.printf "# %s (%s)\n\n" r.Pf_harness.Experiment.name
      r.Pf_harness.Experiment.category;
    Printf.printf "consistent outputs across all configurations: %b\n\n"
      r.Pf_harness.Experiment.outputs_consistent;
    Printf.printf "## translation\n\n";
    Printf.printf "- static 1-to-1 mapping: %.1f%%\n"
      r.Pf_harness.Experiment.static_map_pct;
    Printf.printf "- dynamic 1-to-1 mapping: %.1f%%\n"
      r.Pf_harness.Experiment.dyn_map_pct;
    List.iter
      (fun (n, c) -> Printf.printf "- 1-to-%d expansions: %d\n" n c)
      r.Pf_harness.Experiment.expansion_hist;
    Printf.printf "- AIS opcodes: %d, dictionary entries: %d\n"
      r.Pf_harness.Experiment.ais_ops r.Pf_harness.Experiment.dict_entries;
    Printf.printf
      "- code bytes: ARM %d, THUMB(est) %d, FITS %d (%.1f%% saving)\n\n"
      r.Pf_harness.Experiment.code_arm r.Pf_harness.Experiment.code_thumb
      r.Pf_harness.Experiment.code_fits
      (Pf_util.Stats.saving
         ~baseline:(float_of_int r.Pf_harness.Experiment.code_arm)
         (float_of_int r.Pf_harness.Experiment.code_fits));
    Printf.printf "## four configurations\n\n";
    let rows =
      List.map
        (fun (label, (c : Pf_harness.Experiment.per_config)) ->
          let p = c.Pf_harness.Experiment.power in
          [
            label;
            string_of_int c.Pf_harness.Experiment.cycles;
            Printf.sprintf "%.2f" c.Pf_harness.Experiment.ipc;
            Printf.sprintf "%.1f" c.Pf_harness.Experiment.miss_rate_pm;
            Pf_util.Table.si p.Pf_power.Account.switching;
            Pf_util.Table.si p.Pf_power.Account.internal;
            Pf_util.Table.si p.Pf_power.Account.leakage;
            Printf.sprintf "%.1f"
              (Pf_util.Stats.saving
                 ~baseline:
                   (e.Pf_harness.Experiment.power.Pf_power.Account.total
                   /. float_of_int e.Pf_harness.Experiment.cycles)
                 (p.Pf_power.Account.total
                 /. float_of_int c.Pf_harness.Experiment.cycles));
          ])
        [
          ("ARM16", r.Pf_harness.Experiment.arm16);
          ("ARM8", r.Pf_harness.Experiment.arm8);
          ("FITS16", r.Pf_harness.Experiment.fits16);
          ("FITS8", r.Pf_harness.Experiment.fits8);
        ]
    in
    print_string
      (Pf_util.Table.render
         ~header:
           [ "config"; "cycles"; "IPC"; "miss/M"; "E_sw"; "E_int"; "E_leak";
             "power saving %" ]
         rows)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full per-benchmark report: translation, four configurations.")
    Term.(const run $ bench_arg $ scale_arg)

(* ---- mc ---- *)

let mc_sched_arg =
  Arg.(value & opt string "random"
       & info [ "sched" ] ~docv:"POLICY"
           ~doc:"Core interleaving policy: $(b,rr) (round-robin) or \
                 $(b,random) (seeded-random, default).  Runs are \
                 bit-identical for a given policy and seed.")

let resolve_sched s =
  match Pf_mc.Sched.policy_of_string s with
  | Some p -> p
  | None ->
      Printf.eprintf "powerfits mc: unknown --sched %s (rr|random)\n" s;
      exit 2

let mc_litmus ~policy ~seeds ~jobs test =
  let tests =
    match test with
    | None -> Pf_mc.Litmus.tests
    | Some name -> (
        match Pf_mc.Litmus.find name with
        | Some t -> [ t ]
        | None ->
            Printf.eprintf "powerfits mc: unknown litmus test %s (have: %s)\n"
              name
              (String.concat ", "
                 (List.map (fun t -> t.Pf_mc.Model.name) Pf_mc.Litmus.tests));
            exit 2)
  in
  let results =
    List.map (fun t -> Pf_mc.Litmus.run ~policy ~seeds ~jobs t) tests
  in
  List.iter
    (fun (r : Pf_mc.Litmus.result) ->
      Printf.printf "%s: seeds=%d sched=%s allowed=%d observed=%d\n"
        r.Pf_mc.Litmus.name r.Pf_mc.Litmus.seeds
        (Pf_mc.Sched.policy_to_string r.Pf_mc.Litmus.policy)
        (List.length r.Pf_mc.Litmus.allowed)
        (List.length r.Pf_mc.Litmus.observed);
      List.iter
        (fun (o, c) ->
          Printf.printf "  %6d  %-32s %s\n" c o
            (if List.mem o r.Pf_mc.Litmus.allowed then "allowed"
             else "FORBIDDEN"))
        r.Pf_mc.Litmus.observed)
    results;
  let forbidden =
    List.fold_left
      (fun a (r : Pf_mc.Litmus.result) ->
        List.fold_left (fun a (_, c) -> a + c) a r.Pf_mc.Litmus.forbidden)
      0 results
  in
  Printf.printf "summary: tests=%d seeds=%d forbidden=%d\n"
    (List.length results) seeds forbidden;
  if forbidden > 0 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Divergence ~where:"mc.litmus"
      "%d observed outcome(s) outside the memory model's allowed set"
      forbidden

let mc_workload ~policy ~seed ~cores ~benchmarks ~isa ~scale ~max_steps =
  let pool =
    match benchmarks with
    | Some s -> parse_bench_list s
    | None ->
        let n = if cores > 0 then cores else 2 in
        let rec take k = function
          | b :: rest when k > 0 -> b :: take (k - 1) rest
          | _ -> []
        in
        take n Pf_mibench.Registry.all
  in
  let ncores = if cores > 0 then cores else List.length pool in
  if ncores < 1 || ncores > 8 then begin
    Printf.eprintf "powerfits mc: --cores must be in 1..8 (got %d)\n" ncores;
    exit 2
  end;
  let pool = Array.of_list pool in
  let mk i =
    let b = pool.(i mod Array.length pool) in
    let image = build ~scale b in
    let step =
      match isa with
      | "arm" -> Pf_mc.Machine.arm_core ?max_steps image
      | "fits" -> Pf_mc.Machine.fits_core ?max_steps image
      | _ ->
          Printf.eprintf "powerfits mc: unknown --isa %s (arm|fits)\n" isa;
          exit 2
    in
    (Printf.sprintf "%d:%s" i b.Pf_mibench.Registry.name, step)
  in
  let cores = Array.init ncores mk in
  let sched = Pf_mc.Sched.create ~policy ~ncores seed in
  (* independent kernels, private memories: no shared window, so no
     coherence layer — the mc workload mode measures multicore power
     accounting and scheduling, not data sharing *)
  let m = Pf_mc.Machine.create ~sched cores in
  Pf_mc.Machine.run m;
  let r = Pf_mc.Machine.report m in
  let rows =
    Array.to_list
      (Array.map
         (fun (label, (c : Pf_cpu.Step.result)) ->
           [
             label;
             string_of_int c.Pf_cpu.Step.instructions;
             string_of_int c.Pf_cpu.Step.src_instructions;
             string_of_int c.Pf_cpu.Step.cycles;
             Printf.sprintf "%.3f" c.Pf_cpu.Step.ipc;
             Printf.sprintf "%.1f" c.Pf_cpu.Step.miss_rate_per_million;
             Pf_util.Table.si c.Pf_cpu.Step.power.Pf_power.Account.total;
           ])
         r.Pf_mc.Machine.cores)
  in
  print_string
    (Pf_util.Table.render
       ~header:
         [ "core"; "insns"; "src-insns"; "cycles"; "IPC"; "miss/M"; "E_total" ]
       rows);
  Printf.printf "machine: cores=%d sched=%s seed=%d slices=%d cycles=%d\n"
    (Array.length r.Pf_mc.Machine.cores)
    (Pf_mc.Sched.policy_to_string policy)
    seed r.Pf_mc.Machine.slices r.Pf_mc.Machine.cycles;
  let p = r.Pf_mc.Machine.power in
  Printf.printf
    "energy: switching=%s internal=%s leakage=%s total=%s peak-bound=%s\n"
    (Pf_util.Table.si p.Pf_mc.Machine.switching)
    (Pf_util.Table.si p.Pf_mc.Machine.internal)
    (Pf_util.Table.si p.Pf_mc.Machine.leakage)
    (Pf_util.Table.si p.Pf_mc.Machine.total)
    (Pf_util.Table.si p.Pf_mc.Machine.peak_power)

let mc_cmd =
  let litmus_arg =
    Arg.(value & flag
         & info [ "litmus" ]
             ~doc:"Run the litmus suite: classic weak-memory tests across \
                   many seeded interleavings, every observed outcome \
                   checked against the operational memory model.  A \
                   forbidden outcome exits 3.")
  in
  let test_arg =
    Arg.(value & opt (some string) None
         & info [ "test" ] ~docv:"NAME"
             ~doc:"Run a single litmus test (default: the whole suite).")
  in
  let seeds_arg =
    Arg.(value & opt int 1000
         & info [ "seeds" ] ~docv:"N"
             ~doc:"Seeded interleavings per litmus test (default 1000).")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"Scheduler seed for workload mode (default 1).")
  in
  let cores_arg =
    Arg.(value & opt int 0
         & info [ "cores" ] ~docv:"N"
             ~doc:"Core count, 1-8 (default: one per --benchmarks entry, \
                   or 2).  Benchmarks are cycled when N exceeds the list.")
  in
  let isa_arg =
    Arg.(value & opt string "arm"
         & info [ "isa" ] ~docv:"ISA"
             ~doc:"Core ISA for workload mode: $(b,arm) or $(b,fits) \
                   (per-core application-specific synthesis).")
  in
  let max_steps_arg =
    Arg.(value & opt (some int) None
         & info [ "max-steps" ] ~docv:"N"
             ~doc:"Per-core watchdog budget (default 500M).")
  in
  let run litmus test seeds sched_s seed cores benchmarks isa scale max_steps
      jobs verbose =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let policy = resolve_sched sched_s in
    if litmus then mc_litmus ~policy ~seeds ~jobs test
    else mc_workload ~policy ~seed ~cores ~benchmarks ~isa ~scale ~max_steps
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Shared-memory multicore simulation: private I-caches with \
          per-core PowerFITS accounting, write-through snooping \
          coherence, deterministic seeded interleaving, and a \
          litmus-test harness checked against an operational memory \
          model.")
    Term.(const run $ litmus_arg $ test_arg $ seeds_arg $ mc_sched_arg
          $ seed_arg $ cores_arg $ benchmarks_arg $ isa_arg $ scale_arg
          $ max_steps_arg $ jobs_arg $ verbose_arg)

let main =
  Cmd.group
    (Cmd.info "powerfits" ~version:"1.0"
       ~doc:
         "Reproduction of PowerFITS (ISPASS 2005): application-specific \
          instruction-set synthesis for I-cache power.")
    [ list_cmd; profile_cmd; synth_cmd; disasm_cmd; run_cmd; report_cmd;
      figures_cmd; inject_cmd; multi_cmd; population_cmd; explore_cmd;
      serve_cmd; mc_cmd ]

let () =
  (* Structured simulation faults carry their own exit code: 3 for a
     divergence, 4 for any other failure (decode/memory fault, watchdog). *)
  try exit (Cmd.eval ~catch:false main)
  with Pf_util.Sim_error.Error e ->
    Printf.eprintf "powerfits: %s\n" (Pf_util.Sim_error.to_string e);
    exit (Pf_util.Sim_error.exit_code e)
