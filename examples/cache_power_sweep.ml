(* Cache design-space sweep: explore one benchmark across I-cache sizes
   (4/8/16/32 KB) in both ISAs and tabulate miss rate, per-component cache
   power, and run time — the §6.3 trade-off ("simply reducing the size of
   the ARM cache is not going to help us much") made explorable.

   Built on the Pf_dse subsystem: each ISA executes once, every geometry
   is a cheap trace replay, and the Pareto module marks the non-dominated
   points over (energy, IPC, miss rate, area).

     dune exec examples/cache_power_sweep.exe [benchmark]   (default jpeg) *)

module Dse = Pf_dse

let space =
  Dse.Space.make ~sizes:[ 4 * 1024; 8 * 1024; 16 * 1024; 32 * 1024 ] ()

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jpeg" in
  let bench = Pf_mibench.Registry.find_exn name in
  let t = Dse.Explore.run ~jobs:1 ~benchmarks:[ bench ] space in
  print_endline (Dse.Explore.banner t);
  match Dse.Explore.completed_runs t with
  | [] -> exit 4
  | br :: _ ->
      Printf.printf "benchmark: %s (%d trace events replayed)\n\n" br.name
        br.Dse.Explore.replayed_events;
      let front = Dse.Explore.frontier_of br.Dse.Explore.points in
      let row (p : Dse.Explore.point) =
        let m = p.Dse.Explore.metrics in
        let pw = m.Dse.Explore.power in
        [
          Dse.Space.label p.Dse.Explore.geometry;
          Dse.Explore.variant_label p.Dse.Explore.variant;
          Printf.sprintf "%.1f" m.Dse.Explore.miss_rate_pm;
          string_of_int m.Dse.Explore.cycles;
          Pf_util.Table.si pw.Pf_power.Account.switching;
          Pf_util.Table.si pw.Pf_power.Account.internal;
          Pf_util.Table.si pw.Pf_power.Account.leakage;
          Pf_util.Table.si (Pf_power.Account.avg_power pw);
          (if List.exists (fun (q, _) -> q == p) front.Dse.Pareto.frontier
           then "*"
           else "");
        ]
      in
      print_string
        (Pf_util.Table.render
           ~header:
             [ "geometry"; "isa"; "miss/M"; "cycles"; "E_switch"; "E_int";
               "E_leak"; "avg power"; "pareto" ]
           (List.map row br.Dse.Explore.points));
      Printf.printf "\n%d of %d points on the Pareto frontier (%d dominated)\n"
        (List.length front.Dse.Pareto.frontier)
        front.Dse.Pareto.total front.Dse.Pareto.dominated
