(* Bring your own kernel: a Galois-LFSR stream "cipher" written against
   the public KIR API, validated against the reference evaluator, then
   carried through the complete four-configuration experiment exactly like
   a suite benchmark.  Use this as the template for adding workloads.

     dune exec examples/custom_kernel.exe *)

let lfsr_kernel =
  let open Pf_kir.Build in
  program
    [ garray "out" W8 4096 ]
    [
      func "lfsr_byte" [ "state" ]
        [
          (* eight Galois steps produce one byte *)
          let_ "b" (i 0);
          for_ "k" (i 0) (i 8)
            [
              set "b" (bor (shl (v "b") (i 1)) (band (v "state") (i 1)));
              if_ (band (v "state") (i 1) <>% i 0)
                [ set "state" (bxor (shr (v "state") (i 1)) (i 0xEDB88320)) ]
                [ set "state" (shr (v "state") (i 1)) ];
            ];
          (* return the byte; the caller re-derives the state *)
          ret (v "b");
        ];
      func "main" []
        [
          let_ "state" (i 0xDEADBEEF);
          let_ "mix" (i 0);
          for_ "n" (i 0) (i 4096)
            [
              let_ "b" (call "lfsr_byte" [ v "state" ]);
              set "state" (bxor (v "state" *% i 69069) (v "b"));
              setidx8 "out" (v "n") (v "b");
              set "mix" (bxor (v "mix" *% i 31) (v "b"));
            ];
          print_int (v "mix");
        ];
    ]

let () =
  (* the reference evaluator defines the expected behaviour *)
  let expected = (Pf_kir.Eval.run lfsr_kernel).Pf_kir.Eval.output in
  Printf.printf "reference output: %s" expected;

  (* wrap it as a suite benchmark and reuse the paper's whole experiment *)
  let bench =
    {
      Pf_mibench.Registry.name = "lfsr";
      result_name = "lfsr";
      category = "custom";
      program = (fun ~scale:_ -> lfsr_kernel);
      power_study = true;
      unroll = 4;
    }
  in
  let r = Pf_harness.Experiment.run_benchmark bench in
  assert r.Pf_harness.Experiment.outputs_consistent;
  Printf.printf "\nstatic mapping %.1f%%, dynamic %.1f%%\n"
    r.Pf_harness.Experiment.static_map_pct r.Pf_harness.Experiment.dyn_map_pct;
  let row name (c : Pf_harness.Experiment.per_config) =
    Printf.printf "%-7s cycles %-9d IPC %.2f  miss/M %-7.1f  cache E %.3g\n"
      name c.Pf_harness.Experiment.cycles c.Pf_harness.Experiment.ipc
      c.Pf_harness.Experiment.miss_rate_pm
      c.Pf_harness.Experiment.power.Pf_power.Account.total
  in
  row "ARM16" r.Pf_harness.Experiment.arm16;
  row "ARM8" r.Pf_harness.Experiment.arm8;
  row "FITS16" r.Pf_harness.Experiment.fits16;
  row "FITS8" r.Pf_harness.Experiment.fits8;
  let base =
    r.Pf_harness.Experiment.arm16.Pf_harness.Experiment.power
      .Pf_power.Account.total
    /. float_of_int r.Pf_harness.Experiment.arm16.Pf_harness.Experiment.cycles
  in
  let fits8 =
    r.Pf_harness.Experiment.fits8.Pf_harness.Experiment.power
      .Pf_power.Account.total
    /. float_of_int r.Pf_harness.Experiment.fits8.Pf_harness.Experiment.cycles
  in
  Printf.printf "\ntotal I-cache power saving (FITS8 vs ARM16): %.1f%%\n"
    (Pf_util.Stats.saving ~baseline:base fits8)
