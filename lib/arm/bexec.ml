(* Basic-block compiler over predecoded micro-ops.

   The per-instruction engines ([Pexec.run], the Arm_run/Fits.Run loops)
   pay a dispatch, an outcome reset, a condition test, a pc store and a
   bounds check for every dynamic instruction.  Straight-line code makes
   almost all of that constant: between one control transfer and the
   next, the pc advances by [isize], conditions are statically AL for the
   bulk of instructions, and most flag writes are overwritten before
   anything reads them.

   This module discovers basic blocks lazily — a block per entry pc, so
   indirect branches into the middle of an already-built block simply
   build a second (overlapping) block starting there — and compiles each
   into a flat superblock: the micro-op array slice plus a per-instruction
   *shape* that tells the driver how little work each step needs:

     [sh_nop]   a compare whose flag results are all dead within the
                block — executing it would change nothing observable, so
                the driver only counts the step and issues/records the
                (unchanged) pipeline event;
     [sh_dp]    unconditional DP-family op that cannot write the pc —
                executed by [Pexec.exec_dp_nr] (no cond test, no outcome
                resets), issued via the pipeline's Alu fast slot;
     [sh_gen]   anything else that does not end the block (conditional
                ops, memory, mul, push/pop) — full [Pexec.exec] + issue;
     [sh_term]  the block terminator — full execution, and the dynamic
                next-pc decides where the driver dispatches next.

   Dead-flag elision is a backward liveness walk per block: exits assume
   all flags live (the next block may read them), so architectural flag
   state is exact at every block boundary; within the block, a flag write
   wholly covered by later writes (with no intervening read) is dropped —
   compares become [sh_nop], S-suffixed register ops lose their [s] bit
   via [Pexec.elide_flags].  Pipeline metadata always comes from the
   original micro-op, so the issued/recorded event stream is bit-identical
   to the per-instruction engines'.

   Legality fallback: blocks whose leader is an undef slot (data words,
   corrupted decoder entries) and any micro-op with an out-of-range
   dispatch code mark the block [fallback]; the driver then single-steps
   it with the exact per-instruction loop body, reproducing that engine's
   fault pcs and messages. *)

let sh_nop = 0
let sh_dp = 1
let sh_gen = 2
let sh_term = 3

(* Condition-flag bitmask: N, Z, C, V. *)
let f_n = 1
let f_z = 2
let f_c = 4
let f_v = 8
let f_all = 15

let dp_family (u : Pexec.uop) = u.Pexec.code <= Pexec.k_dp_shift_reg

let is_compare (u : Pexec.uop) =
  match u.Pexec.op with
  | Insn.TST | Insn.TEQ | Insn.CMP | Insn.CMN -> true
  | _ -> false

(* Which flags a micro-op writes.  Arithmetic S-ops and CMP/CMN set NZCV;
   logical S-ops and TST/TEQ set NZC (V untouched, C from the shifter);
   MULS sets NZ ([Exec.set_nz]).  Everything else writes none. *)
let flag_writes (u : Pexec.uop) =
  if dp_family u then
    match u.Pexec.op with
    | Insn.CMP | Insn.CMN -> f_all
    | Insn.TST | Insn.TEQ -> f_n lor f_z lor f_c
    | Insn.ADD | Insn.ADC | Insn.SUB | Insn.SBC | Insn.RSB | Insn.RSC ->
        if u.Pexec.s then f_all else 0
    | Insn.AND | Insn.EOR | Insn.ORR | Insn.BIC | Insn.MOV | Insn.MVN ->
        if u.Pexec.s then f_n lor f_z lor f_c else 0
  else if u.Pexec.code = Pexec.k_mul && u.Pexec.s then f_n lor f_z
  else 0

let cond_reads : Insn.cond -> int = function
  | Insn.EQ | Insn.NE -> f_z
  | Insn.CS | Insn.CC -> f_c
  | Insn.MI | Insn.PL -> f_n
  | Insn.VS | Insn.VC -> f_v
  | Insn.HI | Insn.LS -> f_c lor f_z
  | Insn.GE | Insn.LT -> f_n lor f_v
  | Insn.GT | Insn.LE -> f_n lor f_z lor f_v
  | Insn.AL -> 0

(* Which flags a micro-op reads: its condition, C as a data input
   (ADC/SBC/RSC), and C through the shifter when a logical S-op or
   TST/TEQ can propagate the *current* carry into the flags — possible
   for rot-0 immediates ([carry = -1]), plain registers (shift by 0) and
   register-specified shifts (a runtime amount of 0 keeps C).  Constant
   nonzero shifts always produce their own carry-out. *)
let flag_reads (u : Pexec.uop) =
  let r = cond_reads u.Pexec.cond in
  if dp_family u then
    let data_c =
      match u.Pexec.op with
      | Insn.ADC | Insn.SBC | Insn.RSC -> f_c
      | _ -> 0
    in
    let shifter_c =
      let wants_sc =
        match u.Pexec.op with
        | Insn.TST | Insn.TEQ -> true
        | Insn.AND | Insn.EOR | Insn.ORR | Insn.BIC | Insn.MOV | Insn.MVN ->
            u.Pexec.s
        | _ -> false
      in
      if
        wants_sc
        && (u.Pexec.code = Pexec.k_dp_reg
           || u.Pexec.code = Pexec.k_dp_shift_reg
           || (u.Pexec.code = Pexec.k_dp_imm && u.Pexec.carry < 0))
      then f_c
      else 0
    in
    r lor data_c lor shifter_c
  else r

(* Does executing this micro-op end the block?  Anything that can write
   the pc, plus SWI (halt / host-call side effects order against the
   fetch stream).  Conditional branches terminate too: whether they are
   taken is dynamic. *)
let terminates (u : Pexec.uop) =
  let c = u.Pexec.code in
  if c <= Pexec.k_dp_shift_reg then u.Pexec.rd = 15 && not (is_compare u)
  else
    c = Pexec.k_b || c = Pexec.k_bx || c = Pexec.k_jalr || c = Pexec.k_swi
    || (c = Pexec.k_mul && u.Pexec.rd = 15)
    || ((c = Pexec.k_mem || c = Pexec.k_mem_reg)
       && u.Pexec.load && u.Pexec.rd = 15)
    || (c = Pexec.k_pop && Array.exists (fun r -> r = 15) u.Pexec.rlist)

type block = {
  start : int;            (* leader index into the program's uop array *)
  len : int;
  xuops : Pexec.uop array; (* executed forms (possibly flag-elided) *)
  orig : Pexec.uop array;  (* original forms: metadata, fallback execution *)
  shapes : int array;
  has_term : bool;         (* false: capped block, falls through *)
  fallback : bool;         (* drive per-instruction (undef leader, bad code) *)
  mutable execs : int;     (* dynamic dispatch count (probe histograms) *)
}

type t = {
  uops : Pexec.uop array;
  max_len : int;
  blocks : block option array;  (* lazily built, indexed by leader *)
  mutable built : int;
}

let default_max_len = 64

let create ?(max_len = default_max_len) (uops : Pexec.uop array) =
  {
    uops;
    max_len = (if max_len < 1 then 1 else max_len);
    blocks = Array.make (Array.length uops) None;
    built = 0;
  }

let slots t = Array.length t.uops

let legal_code c = c >= 0 && c <= Pexec.code_undef

let build t s =
  let uops = t.uops in
  let n = Array.length uops in
  let leader = uops.(s) in
  if leader.Pexec.code = Pexec.code_undef then
    (* undef leader: the driver's per-instruction path raises the
       engine-specific decode fault at exactly this pc *)
    {
      start = s;
      len = 1;
      xuops = [| leader |];
      orig = [| leader |];
      shapes = [| sh_gen |];
      has_term = false;
      fallback = true;
      execs = 0;
    }
  else begin
    (* extend until a terminator, an undef slot, the code end, or the
       length cap; capped/cut blocks fall through to the next leader *)
    let e = ref s in
    let stop = ref false in
    while not !stop do
      let u = uops.(!e) in
      if terminates u then begin
        incr e;
        stop := true
      end
      else begin
        incr e;
        if
          !e >= n
          || !e - s >= t.max_len
          || uops.(!e).Pexec.code = Pexec.code_undef
        then stop := true
      end
    done;
    let len = !e - s in
    let orig = Array.sub uops s len in
    let xuops = Array.copy orig in
    let has_term = terminates orig.(len - 1) in
    let illegal = ref false in
    let shapes =
      Array.init len (fun i ->
          let u = orig.(i) in
          if not (legal_code u.Pexec.code) then illegal := true;
          if i = len - 1 && has_term then sh_term
          else if
            dp_family u
            && (match u.Pexec.cond with Insn.AL -> true | _ -> false)
            && (is_compare u || u.Pexec.rd <> 15)
          then sh_dp
          else sh_gen)
    in
    (* Backward flag-liveness walk; exits conservatively read all flags,
       so the terminator (processed against dead = 0) is never elided and
       architectural flags are exact at every block boundary.  A fully
       dead compare writes nothing observable whether its condition
       passes or not, so it skips execution entirely ([sh_nop]); a dead
       S-suffixed register op keeps its register write but drops the [s]
       bit. *)
    let dead = ref 0 in
    for i = len - 1 downto 0 do
      let u = orig.(i) in
      let fw = flag_writes u in
      let fr = flag_reads u in
      if fw <> 0 && fw land lnot !dead = 0 && shapes.(i) <> sh_term then
        if is_compare u then shapes.(i) <- sh_nop
        else xuops.(i) <- Pexec.elide_flags u;
      dead := (!dead lor fw) land lnot fr
    done;
    {
      start = s;
      len;
      xuops;
      orig;
      shapes;
      has_term;
      fallback = !illegal;
      execs = 0;
    }
  end

let block_at t s =
  match Array.unsafe_get t.blocks s with
  | Some b -> b
  | None ->
      let b = build t s in
      t.blocks.(s) <- Some b;
      t.built <- t.built + 1;
      b

let blocks_built t = t.built

let iter_built t f =
  Array.iter (function None -> () | Some b -> f b) t.blocks
