(** Basic-block compiler over predecoded micro-ops.

    Groups straight-line runs of {!Pexec.uop}s into superblocks so the
    engines dispatch once per block instead of once per instruction:
    within a block the pc is an arithmetic progression, bounds and undef
    checks are settled at compile time, and a per-instruction {e shape}
    tells the driver the cheapest sound way to execute each step.  A
    backward flag-liveness pass elides condition-flag writes that are
    provably dead within the block (exits assume all flags live, so
    architectural flag state is exact at every block boundary).

    Blocks are discovered lazily, one per entry pc: an indirect branch
    into the middle of an existing block just builds another (overlapping)
    block starting there.  The executed and recorded event stream is
    bit-identical to the per-instruction engines' — asserted by the
    three-way differential tests. *)

(** {2 Shapes}

    What the driver must do for one instruction of a block. *)

val sh_nop : int
(** Dead compare: skip execution (count the step, issue/record the
    unchanged pipeline event). *)

val sh_dp : int
(** Unconditional non-pc-writing DP op: execute with
    {!Pexec.exec_dp_nr}, issue via [Pipeline.issue_alu]. *)

val sh_gen : int
(** General non-terminating op: full {!Pexec.exec} + full issue; control
    still falls through. *)

val sh_term : int
(** Block terminator: full execution; the dynamic next-pc decides the
    next dispatch. *)

type block = {
  start : int;             (** leader index into the program's uop array *)
  len : int;
  xuops : Pexec.uop array; (** executed forms (possibly flag-elided) *)
  orig : Pexec.uop array;  (** original forms: event metadata, fallback *)
  shapes : int array;
  has_term : bool;
      (** false: block was cut by the length cap, code end or an undef
          slot, and falls through to [start + len] *)
  fallback : bool;
      (** drive this block with the exact per-instruction loop body
          (undef leader, or an out-of-range dispatch code) *)
  mutable execs : int;     (** dynamic dispatch count (probe histograms) *)
}

type t

val default_max_len : int
(** Block length cap (64): longer straight-line runs split into chained
    fall-through blocks, bounding the per-dispatch watchdog/deadline
    granularity adjustment. *)

val create : ?max_len:int -> Pexec.uop array -> t
(** Lazy block table over a predecoded program ([Pexec.program.uops] or
    the FITS translated stream).  No blocks are built until
    {!block_at}. *)

val slots : t -> int
(** Static slots == [Array.length uops]; valid leader indices. *)

val block_at : t -> int -> block
(** The block whose leader is slot [s], building (and caching) it on
    first use.  [s] must be in [\[0, slots t)]. *)

val blocks_built : t -> int

val iter_built : t -> (block -> unit) -> unit
(** Iterate the blocks built so far, in leader order — probe's static
    and dynamic ([execs]-weighted) block-length histograms. *)

(**/**)

(* Analysis predicates, exposed for tests and the probe tool. *)
val terminates : Pexec.uop -> bool
val flag_writes : Pexec.uop -> int
val flag_reads : Pexec.uop -> int
