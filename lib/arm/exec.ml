open Insn
open Pf_util

let where = "arm.exec"

let memory_fault fmt = Sim_error.raisef Sim_error.Memory_fault ~where fmt
let decode_fault fmt = Sim_error.raisef Sim_error.Decode_fault ~where fmt

type t = {
  regs : int array;
  mutable nf : bool;
  mutable zf : bool;
  mutable cf : bool;
  mutable vf : bool;
  mem : Bytes.t;
  image : Image.t;
  mutable halted : bool;
  out : Buffer.t;
  mutable steps : int;
}

let halt_sentinel = 0xFFFF_FFF0

type outcome = {
  mutable executed : bool;
  mutable branch_taken : bool;
  mutable next_pc : int;
  mutable mem_addr : int;
  mutable mem_is_load : bool;
  mutable mem_words : int;
}

let outcome () =
  { executed = false; branch_taken = false; next_pc = 0; mem_addr = -1;
    mem_is_load = false; mem_words = 0 }

let create (image : Image.t) =
  let mem = Bytes.make image.Image.mem_size '\000' in
  let store_word_raw addr v =
    Bytes.set_int32_le mem addr (Int32.of_int (Bits.u32 v))
  in
  Array.iteri
    (fun i w -> store_word_raw (image.Image.code_base + (i * 4)) w)
    image.Image.words;
  List.iter
    (fun (addr, ws) ->
      Array.iteri (fun i w -> store_word_raw (addr + (i * 4)) w) ws)
    image.Image.data_init;
  (* 17 registers: r0-r15 plus one over-provisioned scratch register used
     by FITS micro-operation expansions (never encodable, never named by
     compiled ARM code). *)
  let regs = Array.make 17 0 in
  regs.(sp) <- image.Image.mem_size - 16;
  regs.(lr) <- halt_sentinel;
  regs.(pc) <- image.Image.entry;
  { regs; nf = false; zf = false; cf = false; vf = false; mem; image;
    halted = false; out = Buffer.create 64; steps = 0 }

let check_range t addr len =
  if addr < 0 || addr + len > Bytes.length t.mem then
    memory_fault "memory access out of range: 0x%x" addr

let load_word t addr =
  if addr land 3 <> 0 then memory_fault "unaligned word load: 0x%x" addr;
  check_range t addr 4;
  Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFF_FFFF

let store_word t addr v =
  if addr land 3 <> 0 then memory_fault "unaligned word store: 0x%x" addr;
  check_range t addr 4;
  Bytes.set_int32_le t.mem addr (Int32.of_int (Bits.u32 v))

let load_byte t addr =
  check_range t addr 1;
  Char.code (Bytes.get t.mem addr)

let store_byte t addr v =
  check_range t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xFF))

let load_half t addr =
  if addr land 1 <> 0 then memory_fault "unaligned half load: 0x%x" addr;
  check_range t addr 2;
  Bytes.get_uint16_le t.mem addr

let store_half t addr v =
  if addr land 1 <> 0 then memory_fault "unaligned half store: 0x%x" addr;
  check_range t addr 2;
  Bytes.set_uint16_le t.mem addr (v land 0xFFFF)

(* Reading r15 yields the address of the instruction plus 8, as on ARM. *)
let read_reg t ~pc r = if r = Insn.pc then Bits.u32 (pc + 8) else t.regs.(r)

let cond_passed t = function
  | AL -> true
  | EQ -> t.zf
  | NE -> not t.zf
  | CS -> t.cf
  | CC -> not t.cf
  | MI -> t.nf
  | PL -> not t.nf
  | VS -> t.vf
  | VC -> not t.vf
  | HI -> t.cf && not t.zf
  | LS -> (not t.cf) || t.zf
  | GE -> t.nf = t.vf
  | LT -> t.nf <> t.vf
  | GT -> (not t.zf) && t.nf = t.vf
  | LE -> t.zf || t.nf <> t.vf

(* Shifter: value and carry-out of an operand2, per ARM's barrel shifter. *)
let shift_value_carry t x kind amount =
  if amount = 0 then (x, t.cf)
  else
    match kind with
    | LSL ->
        if amount > 32 then (0, false)
        else if amount = 32 then (0, x land 1 = 1)
        else
          (Bits.u32 (x lsl amount), x land (1 lsl (32 - amount)) <> 0)
    | LSR ->
        if amount > 32 then (0, false)
        else if amount = 32 then (0, x land 0x8000_0000 <> 0)
        else (x lsr amount, x land (1 lsl (amount - 1)) <> 0)
    | ASR ->
        let s = Bits.to_signed32 x in
        if amount >= 32 then
          let v = if s < 0 then 0xFFFF_FFFF else 0 in
          (v, s < 0)
        else (Bits.u32 (s asr amount), x land (1 lsl (amount - 1)) <> 0)
    | ROR ->
        let amount = amount land 31 in
        if amount = 0 then (x, x land 0x8000_0000 <> 0)
        else (Bits.rotate_right32 x amount, x land (1 lsl (amount - 1)) <> 0)

let operand2 t ~pc = function
  | Imm { value; rot } ->
      let v = Bits.rotate_right32 value (2 * rot) in
      let carry = if rot = 0 then t.cf else v land 0x8000_0000 <> 0 in
      (v, carry)
  | Reg r -> (read_reg t ~pc r, t.cf)
  | Reg_shift (r, kind, amount) ->
      shift_value_carry t (read_reg t ~pc r) kind amount
  | Reg_shift_reg (r, kind, rs) ->
      let amount = read_reg t ~pc rs land 0xFF in
      shift_value_carry t (read_reg t ~pc r) kind amount

let set_nz t result =
  t.nf <- result land 0x8000_0000 <> 0;
  t.zf <- result = 0

(* a + b + cin with flag computation; inputs are u32. *)
let add_with_flags t ~set_flags a b cin =
  let sum = a + b + cin in
  let result = Bits.u32 sum in
  if set_flags then begin
    set_nz t result;
    t.cf <- sum > 0xFFFF_FFFF;
    t.vf <- lnot (a lxor b) land (a lxor result) land 0x8000_0000 <> 0
  end;
  result

let sub_with_flags t ~set_flags a b cin =
  (* a - b - (1 - cin), expressed as a + ~b + cin *)
  add_with_flags t ~set_flags a (Bits.u32 (lnot b)) cin

let mem_width_access t ~load ~width ~signed ~addr =
  match (load, width) with
  | true, Word -> load_word t addr
  | true, Byte ->
      let v = load_byte t addr in
      if signed then Bits.u32 (Bits.sign_extend ~width:8 v) else v
  | true, Half ->
      let v = load_half t addr in
      if signed then Bits.u32 (Bits.sign_extend ~width:16 v) else v
  | false, _ -> 0

(* Core data-processing semantics, shared by the ordinary operand2 path
   and the FITS dictionary-operand path. *)
let dp_apply t ~op ~s ~rd ~write_rd a b shifter_carry =
  let logical result =
    if s then begin
      set_nz t result;
      t.cf <- shifter_carry
    end;
    result
  in
  match (op : Insn.dp_op) with
  | AND -> write_rd rd (logical (a land b))
  | EOR -> write_rd rd (logical (a lxor b))
  | ORR -> write_rd rd (logical (a lor b))
  | BIC -> write_rd rd (logical (a land lnot b land 0xFFFF_FFFF))
  | MOV -> write_rd rd (logical b)
  | MVN -> write_rd rd (logical (Bits.u32 (lnot b)))
  | ADD -> write_rd rd (add_with_flags t ~set_flags:s a b 0)
  | ADC -> write_rd rd (add_with_flags t ~set_flags:s a b (Bool.to_int t.cf))
  | SUB -> write_rd rd (sub_with_flags t ~set_flags:s a b 1)
  | RSB -> write_rd rd (sub_with_flags t ~set_flags:s b a 1)
  | SBC -> write_rd rd (sub_with_flags t ~set_flags:s a b (Bool.to_int t.cf))
  | RSC -> write_rd rd (sub_with_flags t ~set_flags:s b a (Bool.to_int t.cf))
  | TST ->
      let r = a land b in
      set_nz t r;
      t.cf <- shifter_carry
  | TEQ ->
      let r = a lxor b in
      set_nz t r;
      t.cf <- shifter_carry
  | CMP -> ignore (sub_with_flags t ~set_flags:true a b 1)
  | CMN -> ignore (add_with_flags t ~set_flags:true a b 0)

let execute ?(isize = 4) t ~pc insn (o : outcome) =
  o.executed <- false;
  o.branch_taken <- false;
  o.next_pc <- pc + isize;
  o.mem_addr <- -1;
  o.mem_is_load <- false;
  o.mem_words <- 0;
  t.steps <- t.steps + 1;
  if not (cond_passed t (cond_of insn)) then ()
  else begin
    o.executed <- true;
    let write_rd rd v =
      if rd = Insn.pc then begin
        o.branch_taken <- true;
        o.next_pc <- Bits.u32 v land lnot (isize - 1)
      end
      else t.regs.(rd) <- Bits.u32 v
    in
    match insn with
    | Dp { op; s; rd; rn; op2; _ } ->
        let a = read_reg t ~pc rn in
        let b, shifter_carry = operand2 t ~pc op2 in
        dp_apply t ~op ~s ~rd ~write_rd a b shifter_carry
    | Mul { s; rd; rm; rs; acc; _ } ->
        let a = read_reg t ~pc rm and b = read_reg t ~pc rs in
        let base = match acc with Some rn -> read_reg t ~pc rn | None -> 0 in
        let result = Bits.u32 ((a * b) + base) in
        if s then set_nz t result;
        write_rd rd result
    | Mem { load; width; signed; rd; rn; offset; writeback; _ } ->
        let base = read_reg t ~pc rn in
        let ofs =
          match offset with
          | Ofs_imm n -> n
          | Ofs_reg (rm, kind, amount) ->
              fst (shift_value_carry t (read_reg t ~pc rm) kind amount)
        in
        let addr = Bits.u32 (base + ofs) in
        o.mem_addr <- addr;
        o.mem_is_load <- load;
        o.mem_words <- 1;
        if writeback then t.regs.(rn) <- addr;
        if load then write_rd rd (mem_width_access t ~load ~width ~signed ~addr)
        else begin
          let v = read_reg t ~pc rd in
          match width with
          | Word -> store_word t addr v
          | Byte -> store_byte t addr v
          | Half -> store_half t addr v
        end
    | Push { regs; _ } ->
        let n = List.length regs in
        let base = t.regs.(sp) - (4 * n) in
        o.mem_addr <- base;
        o.mem_is_load <- false;
        o.mem_words <- n;
        List.iteri
          (fun i r -> store_word t (base + (4 * i)) (read_reg t ~pc r))
          regs;
        t.regs.(sp) <- base
    | Pop { regs; _ } ->
        let n = List.length regs in
        let base = t.regs.(sp) in
        o.mem_addr <- base;
        o.mem_is_load <- true;
        o.mem_words <- n;
        t.regs.(sp) <- base + (4 * n);
        List.iteri
          (fun i r ->
            let v = load_word t (base + (4 * i)) in
            if r = Insn.pc then begin
              o.branch_taken <- true;
              o.next_pc <- v land lnot (isize - 1)
            end
            else t.regs.(r) <- v)
          regs
    | B { link; offset; _ } ->
        if link then t.regs.(lr) <- Bits.u32 (pc + isize);
        o.branch_taken <- true;
        (* branch base is two instruction slots ahead, as on ARM (pc+8) *)
        o.next_pc <- Bits.u32 (pc + (2 * isize) + offset)
    | Bx { rm; _ } ->
        o.branch_taken <- true;
        o.next_pc <- read_reg t ~pc rm land lnot (isize - 1)
    | Swi { number; _ } -> (
        match number with
        | 0 -> t.halted <- true
        | 1 ->
            Buffer.add_string t.out
              (string_of_int (Bits.to_signed32 t.regs.(0)));
            Buffer.add_char t.out '\n'
        | 2 -> Buffer.add_char t.out (Char.chr (t.regs.(0) land 0xFF))
        | 3 ->
            Buffer.add_string t.out (Printf.sprintf "%08x" t.regs.(0));
            Buffer.add_char t.out '\n'
        | n -> decode_fault "unknown swi #%d" n)
  end

let execute_dp_value ?(isize = 4) t ~pc ~cond ~op ~s ~rd ~rn ~value
    (o : outcome) =
  o.executed <- false;
  o.branch_taken <- false;
  o.next_pc <- pc + isize;
  o.mem_addr <- -1;
  o.mem_is_load <- false;
  o.mem_words <- 0;
  t.steps <- t.steps + 1;
  if cond_passed t cond then begin
    o.executed <- true;
    let write_rd rd v =
      if rd = Insn.pc then begin
        o.branch_taken <- true;
        o.next_pc <- Bits.u32 v land lnot (isize - 1)
      end
      else t.regs.(rd) <- Bits.u32 v
    in
    let a = read_reg t ~pc rn in
    dp_apply t ~op ~s ~rd ~write_rd a (Bits.u32 value) t.cf
  end

(* Poll the wall-clock deadline once every 64k instructions: frequent
   enough to cut off a runaway loop within milliseconds, rare enough that
   the clock read never shows up in a profile. *)
let deadline_mask = 0xFFFF

let run ?(max_steps = 500_000_000) ?deadline t ~on_step =
  let o = outcome () in
  while not t.halted do
    let pc = t.regs.(Insn.pc) in
    if pc = halt_sentinel then t.halted <- true
    else begin
      if t.steps >= max_steps then
        Sim_error.raisef Sim_error.Watchdog_timeout ~where
          "step budget exhausted (%d)" max_steps;
      if t.steps land deadline_mask = 0 then Deadline.check ~where deadline;
      match Image.insn_at t.image pc with
      | None -> decode_fault "undecodable instruction fetch at 0x%x" pc
      | Some insn ->
          execute t ~pc insn o;
          t.regs.(Insn.pc) <- o.next_pc;
          on_step t ~pc insn o
    end
  done

let output t = Buffer.contents t.out
