(** Architectural interpreter for the ARM-like ISA.

    [Exec] owns the machine state (registers, NZCV flags, byte-addressed
    memory loaded with the program image) and executes one decoded
    instruction at a time.  It is deliberately decoupled from *fetch*: the
    plain ARM runner steps through the image, while the FITS runner feeds
    the same state with micro-operations produced by the programmable
    decoder — both share these semantics, mirroring how a FITS core keeps
    the host datapath (paper §3.1). *)

(** All failures raise {!Pf_util.Sim_error.Error}: [Memory_fault] for
    unaligned or out-of-range accesses, [Decode_fault] for undecodable
    words and unknown SWIs, [Watchdog_timeout] for step-budget
    exhaustion. *)

type t = {
  regs : int array;
      (** 17 registers, unsigned 32-bit: r0-r15 plus one over-provisioned
          scratch (index 16) used by FITS expansion micro-ops *)
  mutable nf : bool;
  mutable zf : bool;
  mutable cf : bool;
  mutable vf : bool;
  mem : Bytes.t;
  image : Image.t;
  mutable halted : bool;
  out : Buffer.t;          (** text written by SWI print calls *)
  mutable steps : int;     (** dynamic instruction count *)
}

val halt_sentinel : int
(** Address preloaded into [lr] at startup; returning to it halts. *)

val create : Image.t -> t
(** Fresh state: memory holds the code and initialized data, [sp] points to
    the top of memory, [lr] to {!halt_sentinel}, [pc] to the entry point. *)

(** Result of executing one instruction; a single mutable record is reused
    across steps to keep the simulator allocation-free on the hot path. *)
type outcome = {
  mutable executed : bool;       (** condition passed *)
  mutable branch_taken : bool;
  mutable next_pc : int;
  mutable mem_addr : int;        (** effective address, [-1] if none *)
  mutable mem_is_load : bool;
  mutable mem_words : int;       (** words transferred (push/pop > 1) *)
}

val outcome : unit -> outcome

val execute : ?isize:int -> t -> pc:int -> Insn.t -> outcome -> unit
(** Execute one instruction whose address is [pc].  Updates registers,
    flags and memory; fills the outcome (including [next_pc]).  Does not
    itself advance any program counter.

    [isize] (default 4) is the instruction's size in bytes: it controls the
    fall-through [next_pc] and the return address stored by branch-and-link.
    The FITS runner passes 2, executing the same micro-operation semantics
    at 16-bit granularity. *)

val execute_dp_value :
  ?isize:int ->
  t ->
  pc:int ->
  cond:Insn.cond ->
  op:Insn.dp_op ->
  s:bool ->
  rd:int ->
  rn:int ->
  value:int ->
  outcome ->
  unit
(** Data-processing with a raw 32-bit second operand (no shifter): the
    semantics of a FITS instruction whose operand comes from the immediate
    dictionary.  The shifter carry-out is the current C flag. *)

val load_word : t -> int -> int
(** Read a word of simulated memory (for result checking). *)

val store_word : t -> int -> int -> unit

val load_byte : t -> int -> int

(** {2 Engine internals}

    Shared with {!Pexec}, the predecoded engine, so both interpreters
    use the very same flag and memory semantics (the differential tests
    assert the results are bit-identical). *)

val store_byte : t -> int -> int -> unit
val load_half : t -> int -> int
val store_half : t -> int -> int -> unit

val cond_passed : t -> Insn.cond -> bool

val set_nz : t -> int -> unit
(** Set N/Z from a u32 result. *)

val add_with_flags : t -> set_flags:bool -> int -> int -> int -> int
(** [add_with_flags t ~set_flags a b cin] is the u32 of [a + b + cin],
    updating NZCV when [set_flags]. *)

val sub_with_flags : t -> set_flags:bool -> int -> int -> int -> int
(** [a - b - (1 - cin)], expressed as [a + lnot b + cin]. *)

val deadline_mask : int
(** The execute loops poll their wall-clock deadline whenever
    [steps land deadline_mask = 0] — every 65536 instructions. *)

val run :
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  t ->
  on_step:(t -> pc:int -> Insn.t -> outcome -> unit) ->
  unit
(** Fetch-execute loop from the current [pc] until halt (SWI #0 or return
    to the sentinel).  Raises [Sim_error.Error] with [Watchdog_timeout] on
    [max_steps] exhaustion (default 500 million) — runaway programs are a
    bug, not a result — or when the monotonic-clock [deadline] (polled
    every [deadline_mask + 1] steps) expires. *)

val output : t -> string
(** Everything printed through SWI so far. *)
