type reg = int

let sp = 13
let lr = 14
let pc = 15

type cond =
  | EQ | NE | CS | CC | MI | PL | VS | VC
  | HI | LS | GE | LT | GT | LE | AL

type shift_kind = LSL | LSR | ASR | ROR

type operand2 =
  | Imm of { value : int; rot : int }
  | Reg of reg
  | Reg_shift of reg * shift_kind * int
  | Reg_shift_reg of reg * shift_kind * reg

type dp_op =
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC
  | TST | TEQ | CMP | CMN | ORR | MOV | BIC | MVN

type mem_width = Word | Byte | Half

type mem_offset =
  | Ofs_imm of int
  | Ofs_reg of reg * shift_kind * int

type t =
  | Dp of { cond : cond; op : dp_op; s : bool; rd : reg; rn : reg;
            op2 : operand2 }
  | Mul of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg;
             acc : reg option }
  | Mem of { cond : cond; load : bool; width : mem_width; signed : bool;
             rd : reg; rn : reg; offset : mem_offset; writeback : bool }
  | Push of { cond : cond; regs : reg list }
  | Pop of { cond : cond; regs : reg list }
  | B of { cond : cond; link : bool; offset : int }
  | Bx of { cond : cond; rm : reg }
  | Swi of { cond : cond; number : int }

let encode_imm_operand c =
  let c = Pf_util.Bits.u32 c in
  let rec try_rot rot =
    if rot > 15 then None
    else
      let v = Pf_util.Bits.rotate_right32 c (32 - (2 * rot)) land 0xFFFF_FFFF in
      (* v rotated right by 2*rot must give back c *)
      if v land 0xFF = v && Pf_util.Bits.rotate_right32 v (2 * rot) = c then
        Some (Imm { value = v; rot })
      else try_rot (rot + 1)
  in
  if c land 0xFF = c then Some (Imm { value = c; rot = 0 }) else try_rot 1

let operand2_value = function
  | Imm { value; rot } -> Some (Pf_util.Bits.rotate_right32 value (2 * rot))
  | Reg _ | Reg_shift _ | Reg_shift_reg _ -> None

let is_branch = function
  | B _ | Bx _ -> true
  | Dp _ | Mul _ | Mem _ | Push _ | Pop _ | Swi _ -> false

let is_mem = function
  | Mem _ | Push _ | Pop _ -> true
  | Dp _ | Mul _ | B _ | Bx _ | Swi _ -> false

let writes_pc = function
  | B _ | Bx _ -> true
  | Pop { regs; _ } -> List.mem pc regs
  | Dp { rd; op; _ } ->
      (match op with
      | TST | TEQ | CMP | CMN -> false
      | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | ORR | MOV | BIC | MVN
        -> rd = pc)
  | Mem { load; rd; _ } -> load && rd = pc
  | Mul _ | Push _ | Swi _ -> false

let cond_of = function
  | Dp { cond; _ } | Mul { cond; _ } | Mem { cond; _ } | Push { cond; _ }
  | Pop { cond; _ } | B { cond; _ } | Bx { cond; _ } | Swi { cond; _ } ->
      cond

let dedup l =
  List.fold_left (fun acc r -> if List.mem r acc then acc else r :: acc) [] l
  |> List.rev

let op2_reads = function
  | Imm _ -> []
  | Reg r -> [ r ]
  | Reg_shift (r, _, _) -> [ r ]
  | Reg_shift_reg (r, _, rs) -> [ r; rs ]

let regs_read = function
  | Dp { op; rn; op2; _ } ->
      let rn_used =
        match op with MOV | MVN -> [] | _ -> [ rn ]
      in
      dedup (rn_used @ op2_reads op2)
  | Mul { rm; rs; acc; _ } ->
      dedup ([ rm; rs ] @ match acc with Some rn -> [ rn ] | None -> [])
  | Mem { load; rd; rn; offset; _ } ->
      let ofs = match offset with Ofs_imm _ -> [] | Ofs_reg (r, _, _) -> [ r ] in
      dedup ((rn :: ofs) @ if load then [] else [ rd ])
  | Push { regs; _ } -> dedup (sp :: regs)
  | Pop _ -> [ sp ]
  | B _ -> []
  | Bx { rm; _ } -> [ rm ]
  | Swi _ -> [ 0; 1; 2 ]

let regs_written = function
  | Dp { op; rd; _ } ->
      (match op with
      | TST | TEQ | CMP | CMN -> []
      | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | ORR | MOV | BIC | MVN
        -> [ rd ])
  | Mul { rd; _ } -> [ rd ]
  | Mem { load; rd; rn; writeback; _ } ->
      let wb = if writeback then [ rn ] else [] in
      if load then rd :: wb else wb
  | Push _ -> [ sp ]
  | Pop { regs; _ } -> dedup (sp :: regs)
  | B { link; _ } -> if link then [ lr ] else []
  | Bx _ -> []
  | Swi _ -> [ 0 ]

(* Register bitmasks, computed without intermediate lists: the per-step
   loops consume these (17 bits: r0-r14 + the FITS scratch r16; pc is
   never tracked as a data dependency, matching the list-based
   [regs_read]/[regs_written] with their r15 filter). *)
let reg_bit r = if r = pc then 0 else 1 lsl r

let list_mask base regs = List.fold_left (fun m r -> m lor reg_bit r) base regs

let op2_read_mask = function
  | Imm _ -> 0
  | Reg r | Reg_shift (r, _, _) -> reg_bit r
  | Reg_shift_reg (r, _, rs) -> reg_bit r lor reg_bit rs

let read_mask = function
  | Dp { op; rn; op2; _ } ->
      (match op with MOV | MVN -> 0 | _ -> reg_bit rn) lor op2_read_mask op2
  | Mul { rm; rs; acc; _ } ->
      reg_bit rm lor reg_bit rs
      lor (match acc with Some rn -> reg_bit rn | None -> 0)
  | Mem { load; rd; rn; offset; _ } ->
      reg_bit rn
      lor (match offset with Ofs_imm _ -> 0 | Ofs_reg (r, _, _) -> reg_bit r)
      lor (if load then 0 else reg_bit rd)
  | Push { regs; _ } -> list_mask (reg_bit sp) regs
  | Pop _ -> reg_bit sp
  | B _ -> 0
  | Bx { rm; _ } -> reg_bit rm
  | Swi _ -> 0b111

let write_mask = function
  | Dp { op; rd; _ } ->
      (match op with
      | TST | TEQ | CMP | CMN -> 0
      | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | ORR | MOV | BIC | MVN
        -> reg_bit rd)
  | Mul { rd; _ } -> reg_bit rd
  | Mem { load; rd; rn; writeback; _ } ->
      (if load then reg_bit rd else 0) lor (if writeback then reg_bit rn else 0)
  | Push _ -> reg_bit sp
  | Pop { regs; _ } -> list_mask (reg_bit sp) regs
  | B { link; _ } -> if link then reg_bit lr else 0
  | Bx _ -> 0
  | Swi _ -> 1

let cond_suffix = function
  | EQ -> "eq" | NE -> "ne" | CS -> "cs" | CC -> "cc"
  | MI -> "mi" | PL -> "pl" | VS -> "vs" | VC -> "vc"
  | HI -> "hi" | LS -> "ls" | GE -> "ge" | LT -> "lt"
  | GT -> "gt" | LE -> "le" | AL -> ""

let dp_name = function
  | AND -> "and" | EOR -> "eor" | SUB -> "sub" | RSB -> "rsb"
  | ADD -> "add" | ADC -> "adc" | SBC -> "sbc" | RSC -> "rsc"
  | TST -> "tst" | TEQ -> "teq" | CMP -> "cmp" | CMN -> "cmn"
  | ORR -> "orr" | MOV -> "mov" | BIC -> "bic" | MVN -> "mvn"

let width_suffix width signed =
  match (width, signed) with
  | Word, _ -> ""
  | Byte, false -> "b"
  | Byte, true -> "sb"
  | Half, false -> "h"
  | Half, true -> "sh"

let mnemonic = function
  | Dp { op; _ } -> dp_name op
  | Mul { acc = None; _ } -> "mul"
  | Mul { acc = Some _; _ } -> "mla"
  | Mem { load; width; signed; _ } ->
      (if load then "ldr" else "str") ^ width_suffix width signed
  | Push _ -> "push"
  | Pop _ -> "pop"
  | B { link = false; _ } -> "b"
  | B { link = true; _ } -> "bl"
  | Bx _ -> "bx"
  | Swi _ -> "swi"

let shift_name = function
  | LSL -> "lsl" | LSR -> "lsr" | ASR -> "asr" | ROR -> "ror"

let pp_reg ppf r =
  if r = sp then Format.pp_print_string ppf "sp"
  else if r = lr then Format.pp_print_string ppf "lr"
  else if r = pc then Format.pp_print_string ppf "pc"
  else Format.fprintf ppf "r%d" r

let pp_op2 ppf = function
  | Imm { value; rot } ->
      Format.fprintf ppf "#%d" (Pf_util.Bits.rotate_right32 value (2 * rot))
  | Reg r -> pp_reg ppf r
  | Reg_shift (r, _, 0) -> pp_reg ppf r
  | Reg_shift (r, k, n) ->
      Format.fprintf ppf "%a, %s #%d" pp_reg r (shift_name k) n
  | Reg_shift_reg (r, k, rs) ->
      Format.fprintf ppf "%a, %s %a" pp_reg r (shift_name k) pp_reg rs

let pp_reglist ppf regs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_reg)
    regs

let pp ppf insn =
  let c = cond_suffix (cond_of insn) in
  match insn with
  | Dp { op; s; rd; rn; op2; _ } -> (
      let sfx = if s then "s" else "" in
      match op with
      | MOV | MVN ->
          Format.fprintf ppf "%s%s%s %a, %a" (dp_name op) c sfx pp_reg rd
            pp_op2 op2
      | TST | TEQ | CMP | CMN ->
          Format.fprintf ppf "%s%s %a, %a" (dp_name op) c pp_reg rn pp_op2 op2
      | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | ORR | BIC ->
          Format.fprintf ppf "%s%s%s %a, %a, %a" (dp_name op) c sfx pp_reg rd
            pp_reg rn pp_op2 op2)
  | Mul { s; rd; rm; rs; acc = None; _ } ->
      Format.fprintf ppf "mul%s%s %a, %a, %a" c
        (if s then "s" else "")
        pp_reg rd pp_reg rm pp_reg rs
  | Mul { s; rd; rm; rs; acc = Some rn; _ } ->
      Format.fprintf ppf "mla%s%s %a, %a, %a, %a" c
        (if s then "s" else "")
        pp_reg rd pp_reg rm pp_reg rs pp_reg rn
  | Mem { rd; rn; offset; writeback; _ } ->
      let wb = if writeback then "!" else "" in
      (match offset with
      | Ofs_imm 0 ->
          Format.fprintf ppf "%s%s %a, [%a]%s" (mnemonic insn) c pp_reg rd
            pp_reg rn wb
      | Ofs_imm n ->
          Format.fprintf ppf "%s%s %a, [%a, #%d]%s" (mnemonic insn) c pp_reg rd
            pp_reg rn n wb
      | Ofs_reg (rm, _, 0) ->
          Format.fprintf ppf "%s%s %a, [%a, %a]%s" (mnemonic insn) c pp_reg rd
            pp_reg rn pp_reg rm wb
      | Ofs_reg (rm, k, sh) ->
          Format.fprintf ppf "%s%s %a, [%a, %a, %s #%d]%s" (mnemonic insn) c
            pp_reg rd pp_reg rn pp_reg rm (shift_name k) sh wb)
  | Push { regs; _ } -> Format.fprintf ppf "push%s %a" c pp_reglist regs
  | Pop { regs; _ } -> Format.fprintf ppf "pop%s %a" c pp_reglist regs
  | B { link; offset; _ } ->
      Format.fprintf ppf "%s%s .%+d" (if link then "bl" else "b") c offset
  | Bx { rm; _ } -> Format.fprintf ppf "bx%s %a" c pp_reg rm
  | Swi { number; _ } -> Format.fprintf ppf "swi%s #%d" c number

let to_string insn = Format.asprintf "%a" pp insn
