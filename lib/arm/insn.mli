(** The 32-bit ARM-like instruction set.

    This is a clean-room model of a StrongARM-class ISA: 16 registers
    (r13 = sp, r14 = lr, r15 = pc), NZCV condition flags, fully predicated
    instructions, data-processing with a shifter operand, multiply,
    single/multiple load-store, branches and software interrupts.  It is the
    *source* ISA that FITS profiles and translates (paper §3, §5). *)

type reg = int
(** Register number, 0..15. *)

val sp : reg
val lr : reg
val pc : reg

type cond =
  | EQ | NE | CS | CC | MI | PL | VS | VC
  | HI | LS | GE | LT | GT | LE | AL

type shift_kind = LSL | LSR | ASR | ROR

type operand2 =
  | Imm of { value : int; rot : int }
      (** An 8-bit immediate [value] rotated right by [2*rot]; the resolved
          32-bit constant is [Bits.rotate_right32 value (2*rot)]. *)
  | Reg of reg
  | Reg_shift of reg * shift_kind * int  (** Register with immediate shift. *)
  | Reg_shift_reg of reg * shift_kind * reg
      (** Register shifted by the low byte of another register. *)

type dp_op =
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC
  | TST | TEQ | CMP | CMN | ORR | MOV | BIC | MVN

type mem_width = Word | Byte | Half

type mem_offset =
  | Ofs_imm of int                        (** signed byte offset *)
  | Ofs_reg of reg * shift_kind * int     (** +/- register with shift *)

type t =
  | Dp of { cond : cond; op : dp_op; s : bool; rd : reg; rn : reg;
            op2 : operand2 }
  | Mul of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg;
             acc : reg option }
      (** [acc = Some rn] is multiply-accumulate (MLA). *)
  | Mem of { cond : cond; load : bool; width : mem_width; signed : bool;
             rd : reg; rn : reg; offset : mem_offset; writeback : bool }
      (** Pre-indexed addressing: address = rn +/- offset; [writeback]
          updates rn with the effective address. *)
  | Push of { cond : cond; regs : reg list }   (** STMDB sp!, {regs} *)
  | Pop of { cond : cond; regs : reg list }    (** LDMIA sp!, {regs} *)
  | B of { cond : cond; link : bool; offset : int }
      (** Byte offset relative to pc+8, as in ARM. *)
  | Bx of { cond : cond; rm : reg }            (** Branch to register. *)
  | Swi of { cond : cond; number : int }

val encode_imm_operand : int -> operand2 option
(** Find an [Imm] encoding for a 32-bit constant, if one exists. *)

val operand2_value : operand2 -> int option
(** The constant denoted by an [Imm] operand, if it is one. *)

val is_branch : t -> bool
val is_mem : t -> bool
val writes_pc : t -> bool
(** Does the instruction (architecturally) write the program counter — i.e.
    branches, pops containing pc, and data-processing with rd = pc? *)

val cond_of : t -> cond

val regs_read : t -> reg list
(** Source registers, without duplicates, excluding pc for branches. *)

val regs_written : t -> reg list

val reg_bit : reg -> int
(** [1 lsl r], except 0 for pc — the pc is sequenced by the loop itself,
    never tracked as a register dependency. *)

val read_mask : t -> int
(** Source registers as a 17-bit mask (r0-r14 plus the FITS scratch r16),
    equal to folding {!reg_bit} over {!regs_read} but with no intermediate
    list — the predecoder calls this once per static instruction. *)

val write_mask : t -> int
(** Destination registers as a 17-bit mask; see {!read_mask}. *)

val mnemonic : t -> string
(** Short opcode mnemonic, e.g. ["add"], ["ldrb"], ["bl"]. *)

val dp_name : dp_op -> string
val shift_name : shift_kind -> string

val cond_suffix : cond -> string
(** ["eq"], ["ne"], ... and [""] for [AL]. *)

val pp : Format.formatter -> t -> unit
(** Disassembly-style rendering (offsets printed numerically). *)

val to_string : t -> string
