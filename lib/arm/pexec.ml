(* Predecoded micro-op engine.

   [Exec.execute] re-derives per *dynamic* step facts that only depend on
   the *static* instruction: the rotated immediate and its carry mode, the
   shifter configuration, push/pop register lists (walked as OCaml lists,
   with [List.length] per execution), the branch target, the fall-through
   pc, and the pipeline metadata.  It also allocates on every step — the
   [(value, carry)] tuple of [operand2]/[shift_value_carry] and the
   [write_rd] closure built inside each [execute] call.

   This module compiles each static instruction once into a flat [uop]
   record of immediates (ints, constant constructors, one int array for
   register lists), then executes it with zero per-step heap allocation:
   the shifter returns value and carry packed into one tagged int (carry in
   bit 32, value in bits 0-31), and the destination write is a plain
   function call.  Flag and memory semantics are shared with [Exec]
   ([add_with_flags], [set_nz], the load/store helpers), and the
   differential tests assert bit-identical results against the reference
   interpreter on the full benchmark suite. *)

open Pf_util

let where = "arm.exec"

let decode_fault fmt = Sim_error.raisef Sim_error.Decode_fault ~where fmt

(* Dispatch codes, ordered roughly by dynamic frequency. *)
let k_dp_imm = 0       (* operand2 = resolved immediate *)
let k_dp_reg = 1       (* operand2 = register (incl. shift-by-0) *)
let k_dp_shift_imm = 2 (* operand2 = register, constant shift *)
let k_dp_shift_reg = 3 (* operand2 = register shifted by register *)
let k_mem = 4          (* load/store, immediate offset *)
let k_mem_reg = 5      (* load/store, shifted-register offset *)
let k_mul = 6
let k_push = 7
let k_pop = 8
let k_b = 9
let k_bx = 10
let k_swi = 11
let k_jalr = 12        (* FITS return-branch micro-op *)
let k_undef = 13
let code_undef = k_undef

(* Pipeline class codes; same numbering as [Pf_cpu.Trace.cls_code]. *)
let cls_alu = 0
let cls_mul = 1
let cls_load = 2
let cls_store = 3
let cls_branch = 4
let cls_system = 5

type uop = {
  code : int;
  cond : Insn.cond;
  op : Insn.dp_op;          (* DP only *)
  s : bool;
  rd : int;
  rn : int;
  rm : int;
  rs : int;
  kind : Insn.shift_kind;
  amount : int;             (* constant shift amount *)
  imm : int;                (* resolved DP immediate / mem offset / swi # *)
  carry : int;              (* DP immediate carry: -1 = keep C, else 0/1 *)
  load : bool;
  width : Insn.mem_width;
  signed : bool;
  writeback : bool;
  link : bool;
  acc : int;                (* MLA accumulator register, -1 = none *)
  rlist : int array;        (* push/pop registers *)
  nregs : int;
  target : int;             (* resolved B target (pc + 2*isize + offset) *)
  fall : int;               (* pc + isize *)
  pc8 : int;                (* u32 (pc + 8): the value r15 reads as *)
  lr_val : int;             (* return address stored by BL / JALR *)
  align : int;              (* lnot (isize - 1): pc alignment mask *)
  src_pc : int;
  (* static pipeline metadata (shared by the ARM and FITS runners) *)
  cls : int;
  reads : int;
  writes : int;
  backward : bool;
  why : string;             (* undef diagnostic *)
}

type program = {
  uops : uop array;
  code_base : int;
  entry : int;
}

(* ---- predecode --------------------------------------------------------- *)

let base ~isize ~pc =
  {
    code = k_undef; cond = Insn.AL; op = Insn.AND; s = false; rd = 0; rn = 0;
    rm = 0; rs = 0; kind = Insn.LSL; amount = 0; imm = 0; carry = -1;
    load = false; width = Insn.Word; signed = false; writeback = false;
    link = false; acc = -1; rlist = [||]; nregs = 0; target = 0;
    fall = pc + isize; pc8 = Bits.u32 (pc + 8); lr_val = Bits.u32 (pc + isize);
    align = lnot (isize - 1); src_pc = pc; cls = cls_alu; reads = 0;
    writes = 0; backward = false; why = "";
  }

let classify_code (i : Insn.t) =
  match i with
  | Insn.B _ | Insn.Bx _ -> cls_branch
  | Insn.Mul _ -> cls_mul
  | Insn.Mem { load = true; _ } | Insn.Pop _ -> cls_load
  | Insn.Mem { load = false; _ } | Insn.Push _ -> cls_store
  | Insn.Swi _ -> cls_system
  | Insn.Dp _ -> if Insn.writes_pc i then cls_branch else cls_alu

let of_insn ~isize ~pc (i : Insn.t) =
  let b = base ~isize ~pc in
  let u =
    match i with
    | Insn.Dp { cond; op; s; rd; rn; op2 } -> (
        let t = { b with cond; op; s; rd; rn } in
        match op2 with
        | Insn.Imm { value; rot } ->
            let v = Bits.rotate_right32 value (2 * rot) in
            (* rot = 0 keeps the current C flag; otherwise the carry-out
               is bit 31 of the rotated constant — resolved here, once *)
            let carry =
              if rot = 0 then -1
              else if v land 0x8000_0000 <> 0 then 1
              else 0
            in
            { t with code = k_dp_imm; imm = v; carry }
        | Insn.Reg r -> { t with code = k_dp_reg; rm = r }
        | Insn.Reg_shift (r, _, 0) ->
            (* shift by 0 is the identity with carry = C: a plain register *)
            { t with code = k_dp_reg; rm = r }
        | Insn.Reg_shift (r, kind, amount) ->
            { t with code = k_dp_shift_imm; rm = r; kind; amount }
        | Insn.Reg_shift_reg (r, kind, rs) ->
            { t with code = k_dp_shift_reg; rm = r; kind; rs })
    | Insn.Mul { cond; s; rd; rm; rs; acc } ->
        { b with code = k_mul; cond; s; rd; rm; rs;
          acc = (match acc with Some r -> r | None -> -1) }
    | Insn.Mem { cond; load; width; signed; rd; rn; offset; writeback } -> (
        let t = { b with cond; load; width; signed; rd; rn; writeback } in
        match offset with
        | Insn.Ofs_imm n -> { t with code = k_mem; imm = n }
        | Insn.Ofs_reg (r, kind, amount) ->
            { t with code = k_mem_reg; rm = r; kind; amount })
    | Insn.Push { cond; regs } ->
        { b with code = k_push; cond; rlist = Array.of_list regs;
          nregs = List.length regs }
    | Insn.Pop { cond; regs } ->
        { b with code = k_pop; cond; rlist = Array.of_list regs;
          nregs = List.length regs }
    | Insn.B { cond; link; offset } ->
        { b with code = k_b; cond; link;
          target = Bits.u32 (pc + (2 * isize) + offset) }
    | Insn.Bx { cond; rm } -> { b with code = k_bx; cond; rm }
    | Insn.Swi { cond; number } -> { b with code = k_swi; cond; imm = number }
  in
  { u with cls = classify_code i; reads = Insn.read_mask i;
    writes = Insn.write_mask i;
    backward = (match i with Insn.B { offset; _ } -> offset < 0 | _ -> false) }

(* FITS micro-op whose operand2 comes from the immediate dictionary:
   semantics of [Exec.execute_dp_value] (shifter carry = current C).
   Class and masks mirror the FITS runner's historical metadata: always
   [Alu], destination counted even for compare ops. *)
let dp_value ~isize ~pc ~cond ~op ~s ~rd ~rn ~value =
  { (base ~isize ~pc) with
    code = k_dp_imm; cond; op; s; rd; rn; imm = Bits.u32 value; carry = -1;
    cls = cls_alu;
    reads = (match op with Insn.MOV | Insn.MVN -> 0 | _ -> Insn.reg_bit rn);
    writes = Insn.reg_bit rd }

(* FITS expansion-group return branch: lr := pc + 2, pc := rm & ~1. *)
let jalr ~pc ~rm =
  { (base ~isize:2 ~pc) with
    code = k_jalr; rm; lr_val = pc + 2; cls = cls_branch;
    reads = Insn.reg_bit rm; writes = Insn.reg_bit Insn.lr }

let undef ~isize ~pc ~why = { (base ~isize ~pc) with code = k_undef; why }

let compile (image : Image.t) =
  let cb = image.Image.code_base in
  {
    uops =
      Array.mapi
        (fun idx mi ->
          let pc = cb + (4 * idx) in
          match mi with
          | Some i -> of_insn ~isize:4 ~pc i
          | None -> undef ~isize:4 ~pc ~why:"data word")
        image.Image.insns;
    code_base = cb;
    entry = image.Image.entry;
  }

(* ---- execution --------------------------------------------------------- *)

(* Barrel shifter with the carry packed into bit 32 of the result — the
   allocation-free equivalent of [Exec.shift_value_carry], branch for
   branch. *)
let cbit = 1 lsl 32

let[@inline] pack v c = if c then v lor cbit else v

let shift_pack cf x kind amount =
  if amount = 0 then pack x cf
  else
    match (kind : Insn.shift_kind) with
    | Insn.LSL ->
        if amount > 32 then 0
        else if amount = 32 then pack 0 (x land 1 = 1)
        else pack (Bits.u32 (x lsl amount)) (x land (1 lsl (32 - amount)) <> 0)
    | Insn.LSR ->
        if amount > 32 then 0
        else if amount = 32 then pack 0 (x land 0x8000_0000 <> 0)
        else pack (x lsr amount) (x land (1 lsl (amount - 1)) <> 0)
    | Insn.ASR ->
        let s = Bits.to_signed32 x in
        if amount >= 32 then pack (if s < 0 then 0xFFFF_FFFF else 0) (s < 0)
        else pack (Bits.u32 (s asr amount)) (x land (1 lsl (amount - 1)) <> 0)
    | Insn.ROR ->
        let amount = amount land 31 in
        if amount = 0 then pack x (x land 0x8000_0000 <> 0)
        else
          pack (Bits.rotate_right32 x amount)
            (x land (1 lsl (amount - 1)) <> 0)

let[@inline] shift_val x kind amount =
  shift_pack false x kind amount land 0xFFFF_FFFF

(* Reading r15 yields pc + 8, as in [Exec.read_reg]. *)
let[@inline] rr (st : Exec.t) u r =
  if r = 15 then u.pc8 else st.Exec.regs.(r)

(* Destination write: rd = pc redirects (aligned), like the [write_rd]
   closure [Exec.execute] builds per call — here a static function. *)
let[@inline] wr (st : Exec.t) (o : Exec.outcome) align rd v =
  if rd = 15 then begin
    o.Exec.branch_taken <- true;
    o.Exec.next_pc <- Bits.u32 v land align
  end
  else st.Exec.regs.(rd) <- Bits.u32 v

(* [Exec.dp_apply] with the write inlined (no closures). *)
let dp (st : Exec.t) (o : Exec.outcome) u a b sc =
  match u.op with
  | Insn.AND ->
      let r = a land b in
      if u.s then begin Exec.set_nz st r; st.Exec.cf <- sc end;
      wr st o u.align u.rd r
  | Insn.EOR ->
      let r = a lxor b in
      if u.s then begin Exec.set_nz st r; st.Exec.cf <- sc end;
      wr st o u.align u.rd r
  | Insn.ORR ->
      let r = a lor b in
      if u.s then begin Exec.set_nz st r; st.Exec.cf <- sc end;
      wr st o u.align u.rd r
  | Insn.BIC ->
      let r = a land lnot b land 0xFFFF_FFFF in
      if u.s then begin Exec.set_nz st r; st.Exec.cf <- sc end;
      wr st o u.align u.rd r
  | Insn.MOV ->
      if u.s then begin Exec.set_nz st b; st.Exec.cf <- sc end;
      wr st o u.align u.rd b
  | Insn.MVN ->
      let r = Bits.u32 (lnot b) in
      if u.s then begin Exec.set_nz st r; st.Exec.cf <- sc end;
      wr st o u.align u.rd r
  | Insn.ADD -> wr st o u.align u.rd (Exec.add_with_flags st ~set_flags:u.s a b 0)
  | Insn.ADC ->
      wr st o u.align u.rd
        (Exec.add_with_flags st ~set_flags:u.s a b (Bool.to_int st.Exec.cf))
  | Insn.SUB -> wr st o u.align u.rd (Exec.sub_with_flags st ~set_flags:u.s a b 1)
  | Insn.RSB -> wr st o u.align u.rd (Exec.sub_with_flags st ~set_flags:u.s b a 1)
  | Insn.SBC ->
      wr st o u.align u.rd
        (Exec.sub_with_flags st ~set_flags:u.s a b (Bool.to_int st.Exec.cf))
  | Insn.RSC ->
      wr st o u.align u.rd
        (Exec.sub_with_flags st ~set_flags:u.s b a (Bool.to_int st.Exec.cf))
  | Insn.TST ->
      let r = a land b in
      Exec.set_nz st r;
      st.Exec.cf <- sc
  | Insn.TEQ ->
      let r = a lxor b in
      Exec.set_nz st r;
      st.Exec.cf <- sc
  | Insn.CMP -> ignore (Exec.sub_with_flags st ~set_flags:true a b 1)
  | Insn.CMN -> ignore (Exec.add_with_flags st ~set_flags:true a b 0)

(* Flag-elided copy for the block compiler: same dispatch and register
   semantics minus the condition-flag writes.  Pipeline metadata
   (cls/reads/writes/backward) is deliberately untouched so the issued and
   recorded event stream is identical to the unelided instruction's.
   [uop] is private; this is the one sanctioned way to derive a variant. *)
let elide_flags u = { u with s = false }

(* DP-family execution specialized to the block compiler's [sh_dp] shape:
   unconditional (no [cond_passed] test) and never writing the pc (the
   caller proves rd <> 15 for writing forms), so the outcome record needs
   no resetting — control flow is straight-line by construction.  Flag and
   value semantics are [dp]'s, case for case. *)
let exec_dp_nr (st : Exec.t) (o : Exec.outcome) u =
  st.Exec.steps <- st.Exec.steps + 1;
  let code = u.code in
  if code = k_dp_imm then begin
    let a = rr st u u.rn in
    let sc = if u.carry < 0 then st.Exec.cf else u.carry = 1 in
    dp st o u a u.imm sc
  end
  else if code = k_dp_reg then dp st o u (rr st u u.rn) (rr st u u.rm) st.Exec.cf
  else if code = k_dp_shift_imm then begin
    let p = shift_pack st.Exec.cf (rr st u u.rm) u.kind u.amount in
    dp st o u (rr st u u.rn) (p land 0xFFFF_FFFF) (p land cbit <> 0)
  end
  else begin
    let amount = rr st u u.rs land 0xFF in
    let p = shift_pack st.Exec.cf (rr st u u.rm) u.kind amount in
    dp st o u (rr st u u.rn) (p land 0xFFFF_FFFF) (p land cbit <> 0)
  end

let exec (st : Exec.t) (o : Exec.outcome) u =
  o.Exec.executed <- false;
  o.Exec.branch_taken <- false;
  o.Exec.next_pc <- u.fall;
  o.Exec.mem_addr <- -1;
  o.Exec.mem_is_load <- false;
  o.Exec.mem_words <- 0;
  st.Exec.steps <- st.Exec.steps + 1;
  if Exec.cond_passed st u.cond then begin
    o.Exec.executed <- true;
    let code = u.code in
    if code = k_dp_imm then begin
      let a = rr st u u.rn in
      let sc = if u.carry < 0 then st.Exec.cf else u.carry = 1 in
      dp st o u a u.imm sc
    end
    else if code = k_dp_reg then dp st o u (rr st u u.rn) (rr st u u.rm) st.Exec.cf
    else if code = k_dp_shift_imm then begin
      let p = shift_pack st.Exec.cf (rr st u u.rm) u.kind u.amount in
      dp st o u (rr st u u.rn) (p land 0xFFFF_FFFF) (p land cbit <> 0)
    end
    else if code = k_dp_shift_reg then begin
      let amount = rr st u u.rs land 0xFF in
      let p = shift_pack st.Exec.cf (rr st u u.rm) u.kind amount in
      dp st o u (rr st u u.rn) (p land 0xFFFF_FFFF) (p land cbit <> 0)
    end
    else if code = k_mem || code = k_mem_reg then begin
      let basev = rr st u u.rn in
      let ofs =
        if code = k_mem then u.imm
        else shift_val (rr st u u.rm) u.kind u.amount
      in
      let addr = Bits.u32 (basev + ofs) in
      o.Exec.mem_addr <- addr;
      o.Exec.mem_is_load <- u.load;
      o.Exec.mem_words <- 1;
      if u.writeback then st.Exec.regs.(u.rn) <- addr;
      if u.load then begin
        let v =
          match u.width with
          | Insn.Word -> Exec.load_word st addr
          | Insn.Byte ->
              let v = Exec.load_byte st addr in
              if u.signed then Bits.u32 (Bits.sign_extend ~width:8 v) else v
          | Insn.Half ->
              let v = Exec.load_half st addr in
              if u.signed then Bits.u32 (Bits.sign_extend ~width:16 v) else v
        in
        wr st o u.align u.rd v
      end
      else begin
        let v = rr st u u.rd in
        match u.width with
        | Insn.Word -> Exec.store_word st addr v
        | Insn.Byte -> Exec.store_byte st addr v
        | Insn.Half -> Exec.store_half st addr v
      end
    end
    else if code = k_mul then begin
      let a = rr st u u.rm and b = rr st u u.rs in
      let acc = if u.acc >= 0 then rr st u u.acc else 0 in
      let r = Bits.u32 ((a * b) + acc) in
      if u.s then Exec.set_nz st r;
      wr st o u.align u.rd r
    end
    else if code = k_push then begin
      let n = u.nregs in
      let basev = st.Exec.regs.(13) - (4 * n) in
      o.Exec.mem_addr <- basev;
      o.Exec.mem_is_load <- false;
      o.Exec.mem_words <- n;
      for i = 0 to n - 1 do
        Exec.store_word st (basev + (4 * i)) (rr st u u.rlist.(i))
      done;
      st.Exec.regs.(13) <- basev
    end
    else if code = k_pop then begin
      let n = u.nregs in
      let basev = st.Exec.regs.(13) in
      o.Exec.mem_addr <- basev;
      o.Exec.mem_is_load <- true;
      o.Exec.mem_words <- n;
      st.Exec.regs.(13) <- basev + (4 * n);
      for i = 0 to n - 1 do
        let v = Exec.load_word st (basev + (4 * i)) in
        let r = u.rlist.(i) in
        if r = 15 then begin
          o.Exec.branch_taken <- true;
          o.Exec.next_pc <- v land u.align
        end
        else st.Exec.regs.(r) <- v
      done
    end
    else if code = k_b then begin
      if u.link then st.Exec.regs.(14) <- u.lr_val;
      o.Exec.branch_taken <- true;
      o.Exec.next_pc <- u.target
    end
    else if code = k_bx then begin
      o.Exec.branch_taken <- true;
      o.Exec.next_pc <- rr st u u.rm land u.align
    end
    else if code = k_swi then begin
      match u.imm with
      | 0 -> st.Exec.halted <- true
      | 1 ->
          Buffer.add_string st.Exec.out
            (string_of_int (Bits.to_signed32 st.Exec.regs.(0)));
          Buffer.add_char st.Exec.out '\n'
      | 2 -> Buffer.add_char st.Exec.out (Char.chr (st.Exec.regs.(0) land 0xFF))
      | 3 ->
          Buffer.add_string st.Exec.out
            (Printf.sprintf "%08x" st.Exec.regs.(0));
          Buffer.add_char st.Exec.out '\n'
      | n -> decode_fault "unknown swi #%d" n
    end
    else if code = k_jalr then begin
      st.Exec.regs.(14) <- u.lr_val;
      o.Exec.branch_taken <- true;
      o.Exec.next_pc <- st.Exec.regs.(u.rm) land lnot 1
    end
    else decode_fault "undecodable instruction fetch at 0x%x" u.src_pc
  end

(* ---- drivers ----------------------------------------------------------- *)

(* Same shell as [Exec.run] — same watchdog, deadline polling and fault
   conditions (including unaligned or out-of-code fetches) — minus the
   per-step callback. *)
let run ?(max_steps = 500_000_000) ?deadline (p : program) (st : Exec.t) =
  let o = Exec.outcome () in
  let uops = p.uops in
  let n = Array.length uops in
  let cb = p.code_base in
  while not st.Exec.halted do
    let pc = st.Exec.regs.(15) in
    if pc = Exec.halt_sentinel then st.Exec.halted <- true
    else begin
      if st.Exec.steps >= max_steps then
        Sim_error.raisef Sim_error.Watchdog_timeout ~where
          "step budget exhausted (%d)" max_steps;
      if st.Exec.steps land Exec.deadline_mask = 0 then
        Deadline.check ~where deadline;
      let off = pc - cb in
      let idx = off lsr 2 in
      if off < 0 || off land 3 <> 0 || idx >= n then
        decode_fault "undecodable instruction fetch at 0x%x" pc;
      let u = uops.(idx) in
      if u.code = k_undef then
        decode_fault "undecodable instruction fetch at 0x%x" pc;
      exec st o u;
      st.Exec.regs.(15) <- o.Exec.next_pc
    end
  done

(* [run] plus a per-site execution histogram — the profiling loop of
   [Synthesis.dyn_counts_of_run] and [Profile.profile_run]. *)
let run_counting ?(max_steps = 500_000_000) ?deadline (p : program)
    (st : Exec.t) ~counts =
  let o = Exec.outcome () in
  let uops = p.uops in
  let n = Array.length uops in
  let cb = p.code_base in
  while not st.Exec.halted do
    let pc = st.Exec.regs.(15) in
    if pc = Exec.halt_sentinel then st.Exec.halted <- true
    else begin
      if st.Exec.steps >= max_steps then
        Sim_error.raisef Sim_error.Watchdog_timeout ~where
          "step budget exhausted (%d)" max_steps;
      if st.Exec.steps land Exec.deadline_mask = 0 then
        Deadline.check ~where deadline;
      let off = pc - cb in
      let idx = off lsr 2 in
      if off < 0 || off land 3 <> 0 || idx >= n then
        decode_fault "undecodable instruction fetch at 0x%x" pc;
      let u = uops.(idx) in
      if u.code = k_undef then
        decode_fault "undecodable instruction fetch at 0x%x" pc;
      exec st o u;
      counts.(idx) <- counts.(idx) + 1;
      st.Exec.regs.(15) <- o.Exec.next_pc
    end
  done
