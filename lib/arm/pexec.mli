(** Predecoded micro-op engine.

    Compiles each static instruction once into a flat micro-op record —
    rotated immediates resolved, branch targets absolute, register lists as
    int arrays, pipeline metadata (class/read/write masks/direction)
    attached — then executes with zero per-step heap allocation.  Shares
    the flag and memory semantics of {!Exec} so results are bit-identical
    to the reference interpreter (asserted by the differential test over
    the full benchmark suite). *)

(** One predecoded instruction.  All fields are immutable and resolved at
    predecode time; the runners read the metadata fields directly. *)
type uop = private {
  code : int;               (** dispatch code; see {!code_undef} *)
  cond : Insn.cond;
  op : Insn.dp_op;
  s : bool;
  rd : int;
  rn : int;
  rm : int;
  rs : int;
  kind : Insn.shift_kind;
  amount : int;
  imm : int;                (** resolved DP immediate / mem offset / swi # *)
  carry : int;              (** immediate carry: [-1] keep C, else 0/1 *)
  load : bool;
  width : Insn.mem_width;
  signed : bool;
  writeback : bool;
  link : bool;
  acc : int;                (** MLA accumulator register, [-1] = none *)
  rlist : int array;        (** push/pop register list *)
  nregs : int;
  target : int;             (** resolved B target *)
  fall : int;               (** fall-through pc *)
  pc8 : int;                (** what reading r15 yields *)
  lr_val : int;             (** return address stored by BL / JALR *)
  align : int;              (** pc alignment mask, [lnot (isize - 1)] *)
  src_pc : int;
  cls : int;                (** pipeline class, {!Pf_cpu.Trace.cls_code} numbering *)
  reads : int;              (** source-register mask ({!Insn.read_mask}) *)
  writes : int;             (** destination-register mask *)
  backward : bool;          (** backward branch (static prediction) *)
  why : string;             (** undef diagnostic *)
}

val code_undef : int
(** Dispatch code of non-executable slots (data words, corrupted decoder
    entries).  {!exec} raises [Decode_fault] on them; fetch loops test
    [u.code = code_undef] to fault with their own message. *)

(** {2 Dispatch codes}

    The [code] field's values, exported for the basic-block compiler
    ({!Bexec}), which classifies micro-ops (terminator? DP family?
    pc-writing?) at block-build time.  [k_dp_imm .. k_dp_shift_reg] are
    contiguous from 0, so [code <= k_dp_shift_reg] tests DP-family
    membership. *)

val k_dp_imm : int
val k_dp_reg : int
val k_dp_shift_imm : int
val k_dp_shift_reg : int
val k_mem : int
val k_mem_reg : int
val k_mul : int
val k_push : int
val k_pop : int
val k_b : int
val k_bx : int
val k_swi : int
val k_jalr : int

type program = {
  uops : uop array;         (** indexed by static slot, like [Image.insns] *)
  code_base : int;
  entry : int;
}

val of_insn : isize:int -> pc:int -> Insn.t -> uop
(** Predecode one instruction located at [pc].  [isize] is the encoded
    size in bytes (4 for ARM, 2 for FITS micro-ops), controlling the
    fall-through pc, branch-and-link return address and pc alignment. *)

val dp_value :
  isize:int ->
  pc:int ->
  cond:Insn.cond ->
  op:Insn.dp_op ->
  s:bool ->
  rd:int ->
  rn:int ->
  value:int ->
  uop
(** Data-processing with a raw 32-bit operand from the FITS immediate
    dictionary: the predecoded form of {!Exec.execute_dp_value}. *)

val jalr : pc:int -> rm:int -> uop
(** FITS expansion-group return branch: [lr := pc + 2; pc := rm land -2]. *)

val undef : isize:int -> pc:int -> why:string -> uop

val compile : Image.t -> program
(** Predecode a whole ARM image (data words become {!undef} slots). *)

val exec : Exec.t -> Exec.outcome -> uop -> unit
(** Execute one micro-op: same state updates and outcome fields as
    {!Exec.execute}, no heap allocation. *)

val elide_flags : uop -> uop
(** Copy of a micro-op with [s = false]: same register-file semantics, no
    condition-flag writes.  The block compiler applies it to S-suffixed
    ops whose flag results are provably dead within their basic block;
    pipeline metadata is unchanged so the event stream is identical. *)

val exec_dp_nr : Exec.t -> Exec.outcome -> uop -> unit
(** Execute a DP-family micro-op ([code <= k_dp_shift_reg]) known to be
    unconditional and non-pc-writing — the block compiler's straight-line
    fast shape.  Skips the condition test and the outcome resets {!exec}
    performs; the caller owns the pc.  Calling it on any other micro-op is
    undefined (the compiler's shape analysis is the proof obligation). *)

val run : ?max_steps:int -> ?deadline:Pf_util.Deadline.t -> program -> Exec.t -> unit
(** Fetch-execute loop over a predecoded program: the counterpart of
    {!Exec.run} without a per-step callback — same watchdog, deadline
    polling and fault behaviour. *)

val run_counting :
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  program ->
  Exec.t ->
  counts:int array ->
  unit
(** {!run} plus a per-slot execution histogram ([counts] is indexed like
    [program.uops]) — the profiling loop used by FITS synthesis. *)
