open Pf_kir.Ast
module A = Pf_arm.Insn

exception Compile_error of string

let error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type home = Hreg of A.reg | Hslot of int

(* Expression results: the register holding the value, and whether that
   register is a scratch this expression allocated (and must be freed). *)
type value = { reg : A.reg; owned : bool }

let scratch_regs = [| 0; 1; 2; 3; 12; 11 |]

type state = {
  mutable items : Mach.item list;       (* reversed *)
  homes : (string, home) Hashtbl.t;
  mutable nslots : int;
  mutable next_label : int;
  mutable depth : int;                   (* scratch stack depth *)
  mutable loops : (Mach.label * Mach.label) list;  (* (break, continue) *)
  epilogue : Mach.label;
}

let emit st item = st.items <- item :: st.items
let emit_i st insn = emit st (Mach.Insn insn)

let fresh_label st =
  st.next_label <- st.next_label + 1;
  st.next_label

let alloc st =
  if st.depth >= Array.length scratch_regs then
    error "expression too deep for the scratch stack";
  let r = scratch_regs.(st.depth) in
  st.depth <- st.depth + 1;
  r

let free st (v : value) = if v.owned then st.depth <- st.depth - 1

let home st x =
  match Hashtbl.find_opt st.homes x with
  | Some h -> h
  | None -> error "no home for variable %s" x

(* Materialize a 32-bit constant into a given register. *)
let load_const_into st rd c =
  let c = Pf_util.Bits.u32 c in
  match A.encode_imm_operand c with
  | Some op2 ->
      emit_i st (A.Dp { cond = AL; op = MOV; s = false; rd; rn = 0; op2 })
  | None -> (
      match A.encode_imm_operand (Pf_util.Bits.u32 (lnot c)) with
      | Some op2 ->
          emit_i st (A.Dp { cond = AL; op = MVN; s = false; rd; rn = 0; op2 })
      | None -> emit st (Mach.Load_const (rd, c)))

let slot_offset slot = 4 * slot

let dp ?(cond = A.AL) ?(s = false) op rd rn op2 =
  A.Dp { cond; op; s; rd; rn; op2 }

let mov ?(cond = A.AL) rd op2 = dp ~cond MOV rd 0 op2

(* KIR comparison -> ARM condition code (for "branch if true"). *)
let cc_of_cmp = function
  | Eq -> A.EQ
  | Ne -> A.NE
  | Lt -> A.LT
  | Le -> A.LE
  | Gt -> A.GT
  | Ge -> A.GE
  | Ult -> A.CC
  | Ule -> A.LS
  | Ugt -> A.HI
  | Uge -> A.CS

let invert = function
  | A.EQ -> A.NE | A.NE -> A.EQ | A.CS -> A.CC | A.CC -> A.CS
  | A.MI -> A.PL | A.PL -> A.MI | A.VS -> A.VC | A.VC -> A.VS
  | A.HI -> A.LS | A.LS -> A.HI | A.GE -> A.LT | A.LT -> A.GE
  | A.GT -> A.LE | A.LE -> A.GT | A.AL -> error "cannot invert AL"

let shift_kind_of = function
  | Shl -> Some A.LSL
  | Shr -> Some A.LSR
  | Sar -> Some A.ASR
  | Add | Sub | Mul | Div | Rem | Udiv | Urem | And | Or | Xor -> None

let rec eval st (e : expr) : value =
  match e with
  | Int c ->
      let rd = alloc st in
      load_const_into st rd c;
      { reg = rd; owned = true }
  | Var x -> (
      match home st x with
      | Hreg r -> { reg = r; owned = false }
      | Hslot slot ->
          let rd = alloc st in
          emit_i st
            (A.Mem { cond = AL; load = true; width = Word; signed = false;
                     rd; rn = A.sp; offset = Ofs_imm (slot_offset slot);
                     writeback = false });
          { reg = rd; owned = true })
  | Global_addr g ->
      let rd = alloc st in
      emit st (Mach.Load_global (rd, g));
      { reg = rd; owned = true }
  | Load { scale; signed; addr } -> eval_load st scale signed addr
  | Binop (op, a, b) -> eval_binop st op a b
  | Unop (Neg, a) ->
      let va = eval st a in
      free st va;
      let rd = alloc st in
      emit_i st (dp RSB rd va.reg (Imm { value = 0; rot = 0 }));
      { reg = rd; owned = true }
  | Unop (Bnot, a) ->
      let op2, frees = op2_of st a in
      List.iter (free st) frees;
      let rd = alloc st in
      emit_i st (dp MVN rd 0 op2);
      { reg = rd; owned = true }
  | Cmp (op, a, b) ->
      let va = eval st a in
      let op2, frees = op2_of st b in
      emit_i st (dp CMP 0 va.reg op2);
      List.iter (free st) frees;
      free st va;
      let rd = alloc st in
      emit_i st (mov rd (Imm { value = 0; rot = 0 }));
      emit_i st (mov ~cond:(cc_of_cmp op) rd (Imm { value = 1; rot = 0 }));
      { reg = rd; owned = true }
  | Call _ -> error "unnormalized call in expression position"

(* Build an ARM operand2 for [e], fusing immediates and shifts. *)
and op2_of st (e : expr) : A.operand2 * value list =
  match e with
  | Int c when A.encode_imm_operand (Pf_util.Bits.u32 c) <> None ->
      (Option.get (A.encode_imm_operand (Pf_util.Bits.u32 c)), [])
  | Binop (sop, x, Int n) when shift_kind_of sop <> None && n >= 0 && n <= 31
    ->
      let kind = Option.get (shift_kind_of sop) in
      let vx = eval st x in
      if n = 0 then (A.Reg vx.reg, [ vx ])
      else (A.Reg_shift (vx.reg, kind, n), [ vx ])
  | Binop (sop, x, amt) when shift_kind_of sop <> None -> (
      match amt with
      | Int n -> (
          (* KIR takes the low byte of the amount, then saturates at 32 *)
          let kind = Option.get (shift_kind_of sop) in
          let n = n land 0xFF in
          if n = 0 then
            let vx = eval st x in
            (A.Reg vx.reg, [ vx ])
          else if n <= 31 then
            let vx = eval st x in
            (A.Reg_shift (vx.reg, kind, n), [ vx ])
          else if kind = A.ASR then
            let vx = eval st x in
            (A.Reg_shift (vx.reg, A.ASR, 31), [ vx ])
          else
            let rd = alloc st in
            load_const_into st rd 0;
            (A.Reg rd, [ { reg = rd; owned = true } ]))
      | _ ->
          let kind = Option.get (shift_kind_of sop) in
          let vx = eval st x in
          let vy = eval st amt in
          (A.Reg_shift_reg (vx.reg, kind, vy.reg), [ vy; vx ]))
  | _ ->
      let v = eval st e in
      (A.Reg v.reg, [ v ])

and eval_binop st op a b =
  let commutative = match op with Add | Mul | And | Or | Xor -> true | _ -> false in
  let imm_encodable c = A.encode_imm_operand (Pf_util.Bits.u32 c) <> None in
  match op with
  | Div | Rem | Udiv | Urem -> error "division must be expanded before codegen"
  | Shl | Shr | Sar ->
      (* a shift as a value: mov rd, a <shift> b *)
      let op2, frees = op2_of st (Binop (op, a, b)) in
      List.iter (free st) frees;
      let rd = alloc st in
      emit_i st (mov rd op2);
      { reg = rd; owned = true }
  | Mul ->
      let va = eval st a in
      let vb = eval st b in
      free st vb;
      free st va;
      let rd = alloc st in
      emit_i st (A.Mul { cond = AL; s = false; rd; rm = va.reg; rs = vb.reg;
                         acc = None });
      { reg = rd; owned = true }
  | Add | Sub | And | Or | Xor -> (
      (* put a constant operand on the right when commutative *)
      let a, b =
        match (a, b) with
        | Int _, other when commutative -> (other, a)
        | _ -> (a, b)
      in
      match (op, a, b) with
      | Sub, Int c, x when imm_encodable c ->
          (* c - x: reverse subtract *)
          let vx = eval st x in
          free st vx;
          let rd = alloc st in
          emit_i st
            (dp RSB rd vx.reg (Option.get (A.encode_imm_operand c)));
          { reg = rd; owned = true }
      | _ ->
          let arm_op, b =
            match (op, b) with
            | Add, Int c when c < 0 && imm_encodable (-c) -> (A.SUB, Int (-c))
            | Sub, Int c when c < 0 && imm_encodable (-c) -> (A.ADD, Int (-c))
            | Add, _ -> (A.ADD, b)
            | Sub, _ -> (A.SUB, b)
            | Xor, _ -> (A.EOR, b)
            | Or, _ -> (A.ORR, b)
            | And, Int c
              when (not (imm_encodable c))
                   && imm_encodable (Pf_util.Bits.u32 (lnot c)) ->
                (A.BIC, Int (Pf_util.Bits.u32 (lnot c)))
            | And, _ -> (A.AND, b)
            | (Mul | Div | Rem | Udiv | Urem | Shl | Shr | Sar), _ ->
                Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal
                  ~where:"armgen.codegen"
                  "non-dp operator reached dp lowering"
          in
          let va = eval st a in
          let op2, frees = op2_of st b in
          List.iter (free st) frees;
          free st va;
          let rd = alloc st in
          emit_i st (dp arm_op rd va.reg op2);
          { reg = rd; owned = true })

and eval_load st scale signed addr =
  let width = match scale with W8 -> A.Byte | W16 -> A.Half | W32 -> A.Word in
  (* "extra" addressing (half / signed byte) has a tighter offset range and
     no shifted-register form *)
  let extra = scale = W16 || (scale = W8 && signed) in
  let max_imm = if extra then 0xFF else 0xFFF in
  let base_plus_offset () : value * A.mem_offset * value list =
    match addr with
    | Binop (Add, b, Int c) when c >= -max_imm && c <= max_imm ->
        let vb = eval st b in
        (vb, A.Ofs_imm c, [])
    | Binop (Sub, b, Int c) when c >= -max_imm && c <= max_imm ->
        let vb = eval st b in
        (vb, A.Ofs_imm (-c), [])
    | Binop (Add, b, Binop (Shl, idx, Int n))
      when (not extra) && n >= 1 && n <= 3 ->
        let vb = eval st b in
        let vi = eval st idx in
        (vb, A.Ofs_reg (vi.reg, A.LSL, n), [ vi ])
    | Binop (Add, b, idx) ->
        let vb = eval st b in
        let vi = eval st idx in
        (vb, A.Ofs_reg (vi.reg, A.LSL, 0), [ vi ])
    | _ ->
        let va = eval st addr in
        (va, A.Ofs_imm 0, [])
  in
  let vb, offset, extra_frees = base_plus_offset () in
  List.iter (free st) extra_frees;
  free st vb;
  let rd = alloc st in
  emit_i st
    (A.Mem { cond = AL; load = true; width; signed; rd; rn = vb.reg; offset;
             writeback = false });
  { reg = rd; owned = true }

(* Store [value] register to the home of [x]. *)
let assign_home st x r =
  match home st x with
  | Hreg h -> if h <> r then emit_i st (mov h (A.Reg r))
  | Hslot slot ->
      emit_i st
        (A.Mem { cond = AL; load = false; width = Word; signed = false;
                 rd = r; rn = A.sp; offset = Ofs_imm (slot_offset slot);
                 writeback = false })

(* Move a simple expression straight into a specific register (used for
   call arguments; post-normalization arguments are always simple). *)
let move_simple_into st rd (e : expr) =
  match e with
  | Int c -> load_const_into st rd c
  | Var x -> (
      match home st x with
      | Hreg h -> if h <> rd then emit_i st (mov rd (A.Reg h))
      | Hslot slot ->
          emit_i st
            (A.Mem { cond = AL; load = true; width = Word; signed = false;
                     rd; rn = A.sp; offset = Ofs_imm (slot_offset slot);
                     writeback = false }))
  | Global_addr g -> emit st (Mach.Load_global (rd, g))
  | Load _ | Binop _ | Unop _ | Cmp _ | Call _ ->
      error "call argument not simple (missing normalization?)"

let compile_call st f args ~dst =
  if List.length args > 4 then error "call to %s with more than 4 args" f;
  List.iteri (fun j a -> move_simple_into st j a) args;
  emit st (Mach.Call f);
  match dst with None -> () | Some x -> assign_home st x 0

(* Compile a condition: fall through when [c] holds, branch to
   [false_target] when it does not. *)
let compile_cond st c ~false_target =
  match c with
  | Int 0 -> emit st (Mach.Branch { cond = AL; target = false_target })
  | Int _ -> ()
  | Cmp (op, a, b) ->
      let va = eval st a in
      let op2, frees = op2_of st b in
      emit_i st (dp CMP 0 va.reg op2);
      List.iter (free st) frees;
      free st va;
      emit st (Mach.Branch { cond = invert (cc_of_cmp op); target = false_target })
  | _ ->
      let v = eval st c in
      emit_i st (dp CMP 0 v.reg (Imm { value = 0; rot = 0 }));
      free st v;
      emit st (Mach.Branch { cond = A.EQ; target = false_target })

let hidden_bound x = x ^ "#hi"

let rec compile_stmt st (s : stmt) =
  assert (st.depth = 0);
  match s with
  | Let (x, Call (f, args)) | Assign (x, Call (f, args)) ->
      compile_call st f args ~dst:(Some x)
  | Let (x, e) | Assign (x, e) ->
      let v = eval st e in
      assign_home st x v.reg;
      free st v
  | Expr (Call (f, args)) -> compile_call st f args ~dst:None
  | Expr e ->
      let v = eval st e in
      free st v
  | Store { scale; addr; value } ->
      let width =
        match scale with W8 -> A.Byte | W16 -> A.Half | W32 -> A.Word
      in
      let vv = eval st value in
      let extra = scale = W16 in
      let max_imm = if extra then 0xFF else 0xFFF in
      let vb, offset, extra_frees =
        match addr with
        | Binop (Add, b, Int c) when c >= -max_imm && c <= max_imm ->
            let vb = eval st b in
            (vb, A.Ofs_imm c, [])
        | Binop (Sub, b, Int c) when c >= -max_imm && c <= max_imm ->
            let vb = eval st b in
            (vb, A.Ofs_imm (-c), [])
        | Binop (Add, b, Binop (Shl, idx, Int n))
          when (not extra) && n >= 1 && n <= 3 ->
            let vb = eval st b in
            let vi = eval st idx in
            (vb, A.Ofs_reg (vi.reg, A.LSL, n), [ vi ])
        | Binop (Add, b, idx) ->
            let vb = eval st b in
            let vi = eval st idx in
            (vb, A.Ofs_reg (vi.reg, A.LSL, 0), [ vi ])
        | _ ->
            let va = eval st addr in
            (va, A.Ofs_imm 0, [])
      in
      emit_i st
        (A.Mem { cond = AL; load = false; width; signed = false; rd = vv.reg;
                 rn = vb.reg; offset; writeback = false });
      List.iter (free st) extra_frees;
      free st vb;
      free st vv
  | If (c, t, []) ->
      let l_end = fresh_label st in
      compile_cond st c ~false_target:l_end;
      compile_block st t;
      emit st (Mach.Label l_end)
  | If (c, t, e) ->
      let l_else = fresh_label st in
      let l_end = fresh_label st in
      compile_cond st c ~false_target:l_else;
      compile_block st t;
      emit st (Mach.Branch { cond = AL; target = l_end });
      emit st (Mach.Label l_else);
      compile_block st e;
      emit st (Mach.Label l_end)
  | While (c, body) ->
      let l_head = fresh_label st in
      let l_end = fresh_label st in
      emit st (Mach.Label l_head);
      compile_cond st c ~false_target:l_end;
      st.loops <- (l_end, l_head) :: st.loops;
      compile_block st body;
      st.loops <- List.tl st.loops;
      emit st (Mach.Branch { cond = AL; target = l_head });
      emit st (Mach.Label l_end)
  | For (x, lo, hi, body) ->
      let v = eval st lo in
      assign_home st x v.reg;
      free st v;
      (match hi with
      | Int _ -> ()
      | _ ->
          let vh = eval st hi in
          assign_home st (hidden_bound x) vh.reg;
          free st vh);
      let l_head = fresh_label st in
      let l_inc = fresh_label st in
      let l_end = fresh_label st in
      emit st (Mach.Label l_head);
      let vx = eval st (Var x) in
      let op2, frees =
        match hi with
        | Int c -> op2_of st (Int c)
        | _ -> op2_of st (Var (hidden_bound x))
      in
      emit_i st (dp CMP 0 vx.reg op2);
      List.iter (free st) frees;
      free st vx;
      emit st (Mach.Branch { cond = A.GE; target = l_end });
      st.loops <- (l_end, l_inc) :: st.loops;
      compile_block st body;
      st.loops <- List.tl st.loops;
      emit st (Mach.Label l_inc);
      (match home st x with
      | Hreg h -> emit_i st (dp ADD h h (Imm { value = 1; rot = 0 }))
      | Hslot _ ->
          let v = eval st (Var x) in
          free st v;
          let rd = alloc st in
          emit_i st (dp ADD rd v.reg (Imm { value = 1; rot = 0 }));
          assign_home st x rd;
          st.depth <- st.depth - 1);
      emit st (Mach.Branch { cond = AL; target = l_head });
      emit st (Mach.Label l_end)
  | Return (Some e) ->
      let v = eval st e in
      if v.reg <> 0 then emit_i st (mov 0 (A.Reg v.reg));
      free st v;
      emit st (Mach.Branch { cond = AL; target = st.epilogue })
  | Return None ->
      load_const_into st 0 0;
      emit st (Mach.Branch { cond = AL; target = st.epilogue })
  | Break -> (
      match st.loops with
      | (brk, _) :: _ -> emit st (Mach.Branch { cond = AL; target = brk })
      | [] -> error "break outside loop")
  | Continue -> (
      match st.loops with
      | (_, cont) :: _ -> emit st (Mach.Branch { cond = AL; target = cont })
      | [] -> error "continue outside loop")
  | Print_int e ->
      let v = eval st e in
      if v.reg <> 0 then emit_i st (mov 0 (A.Reg v.reg));
      free st v;
      emit_i st (A.Swi { cond = AL; number = 1 })
  | Print_char e ->
      let v = eval st e in
      if v.reg <> 0 then emit_i st (mov 0 (A.Reg v.reg));
      free st v;
      emit_i st (A.Swi { cond = AL; number = 2 })

and compile_block st stmts = List.iter (compile_stmt st) stmts

(* Collect every local of the function, in first-binding order. *)
let collect_locals (f : func) =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let add x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      order := x :: !order
    end
  in
  List.iter add f.params;
  let rec stmt = function
    | Let (x, _) -> add x
    | For (x, _, hi, body) ->
        add x;
        (match hi with Int _ -> () | _ -> add (hidden_bound x));
        List.iter stmt body
    | If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | While (_, body) -> List.iter stmt body
    | Assign _ | Store _ | Expr _ | Return _ | Break | Continue
    | Print_int _ | Print_char _ ->
        ()
  in
  List.iter stmt f.body;
  List.rev !order

let home_registers = [ 4; 5; 6; 7; 8; 9; 10 ]

let compile_fun (f : func) : Mach.fundef =
  let locals = collect_locals f in
  let homes = Hashtbl.create 16 in
  let nregs = List.length home_registers in
  List.iteri
    (fun idx x ->
      let h =
        if idx < nregs then Hreg (List.nth home_registers idx)
        else Hslot (idx - nregs)
      in
      Hashtbl.replace homes x h)
    locals;
  let nslots = max 0 (List.length locals - nregs) in
  let st =
    { items = []; homes; nslots; next_label = 0; depth = 0; loops = [];
      epilogue = 0 }
  in
  let st = { st with epilogue = fresh_label st } in
  compile_block st f.body;
  (* fall-through return: r0 = 0 *)
  load_const_into st 0 0;
  emit st (Mach.Label st.epilogue);
  let body_items = List.rev st.items in
  let used = Mach.callee_saved_used body_items in
  let used =
    List.sort_uniq compare
      (used
      @ List.filter_map
          (fun p ->
            match Hashtbl.find_opt homes p with
            | Some (Hreg r) -> Some r
            | Some (Hslot _) | None -> None)
          f.params)
  in
  let has_call =
    List.exists (function Mach.Call _ -> true | _ -> false) body_items
  in
  let frame_bytes = 4 * st.nslots in
  let prologue =
    List.concat
      [
        (if has_call then [ Mach.Insn (A.Push { cond = AL; regs = used @ [ A.lr ] }) ]
         else if used <> [] then [ Mach.Insn (A.Push { cond = AL; regs = used }) ]
         else []);
        (if frame_bytes > 0 then
           [ Mach.Insn
               (dp SUB A.sp A.sp
                  (Option.get (A.encode_imm_operand frame_bytes))) ]
         else []);
        List.concat
          (List.mapi
             (fun j p ->
               match Hashtbl.find_opt homes p with
               | Some (Hreg h) ->
                   if h = j then [] else [ Mach.Insn (mov h (A.Reg j)) ]
               | Some (Hslot slot) ->
                   [ Mach.Insn
                       (A.Mem { cond = AL; load = false; width = Word;
                                signed = false; rd = j; rn = A.sp;
                                offset = Ofs_imm (slot_offset slot);
                                writeback = false }) ]
               | None -> [])
             f.params);
      ]
  in
  let epilogue_items =
    List.concat
      [
        (if frame_bytes > 0 then
           [ Mach.Insn
               (dp ADD A.sp A.sp
                  (Option.get (A.encode_imm_operand frame_bytes))) ]
         else []);
        (if has_call then [ Mach.Insn (A.Pop { cond = AL; regs = used @ [ A.pc ] }) ]
         else
           List.concat
             [
               (if used <> [] then [ Mach.Insn (A.Pop { cond = AL; regs = used }) ]
                else []);
               [ Mach.Insn (A.Bx { cond = AL; rm = A.lr }) ];
             ]);
      ]
  in
  { Mach.fname = f.name; items = prologue @ body_items @ epilogue_items }

let compile_program (p : program) = List.map compile_fun p.funcs
