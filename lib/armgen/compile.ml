let program ?code_base ?data_base ?mem_size ?(unroll = 1)
    (p : Pf_kir.Ast.program) =
  Pf_kir.Validate.check_exn p;
  let p = Pf_kir.Transform.unroll ~factor:unroll p in
  let p = Runtime.expand_div p in
  let p = Normalize.program p in
  let fundefs = Codegen.compile_program p in
  Link.link ?code_base ?data_base ?mem_size fundefs p.globals

let run ?max_steps image =
  let st = Pf_arm.Exec.create image in
  Pf_arm.Pexec.run ?max_steps (Pf_arm.Pexec.compile image) st;
  Pf_arm.Exec.output st
