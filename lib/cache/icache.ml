open Pf_util

type config = {
  size_bytes : int;
  block_bytes : int;
  assoc : int;
}

let config ?(block_bytes = 32) ?(assoc = 32) ~size_bytes () =
  { size_bytes; block_bytes; assoc }

let sets c =
  let blocks = c.size_bytes / c.block_bytes in
  let s = blocks / c.assoc in
  if s = 0 then 1 else s

let tag_bits c = 32 - Bits.log2_exact (sets c) - Bits.log2_exact c.block_bytes

type t = {
  cfg : config;
  nsets : int;
  block_shift : int;
  (* tags.(set * assoc + way); -1 = invalid.  Ways kept in MRU-first order
     so the common hit is found on the first probe. *)
  tags : int array;
  mutable accesses : int;
  mutable misses : int;
  mutable compulsory : int;
  mutable capacity : int;
  mutable conflict : int;
  mutable out_toggles : int;
  mutable idx_toggles : int;
  mutable refills : int;
  mutable last_out : int;
  mutable last_idx : int;
  seen : (int, unit) Hashtbl.t option;     (* blocks ever touched *)
  shadow : (int, int) Hashtbl.t option;    (* block -> last-use time *)
  shadow_capacity : int;
  mutable time : int;
  (* fault injection: (at_access, slot, bit) tag flips applied the first
     time the access counter reaches at_access *)
  mutable pending_flips : (int * int * int) list;
  mutable flips_applied : int;
}

let create ?(classify = false) cfg =
  if not (Bits.is_power_of_two cfg.size_bytes) then
    invalid_arg "Icache.create: size not a power of two";
  if not (Bits.is_power_of_two cfg.block_bytes) then
    invalid_arg "Icache.create: block not a power of two";
  let nsets = sets cfg in
  if nsets * cfg.assoc * cfg.block_bytes <> cfg.size_bytes then
    invalid_arg "Icache.create: size / block / assoc inconsistent";
  {
    cfg;
    nsets;
    block_shift = Bits.log2_exact cfg.block_bytes;
    tags = Array.make (nsets * cfg.assoc) (-1);
    accesses = 0;
    misses = 0;
    compulsory = 0;
    capacity = 0;
    conflict = 0;
    out_toggles = 0;
    idx_toggles = 0;
    refills = 0;
    last_out = 0;
    last_idx = 0;
    seen = (if classify then Some (Hashtbl.create 1024) else None);
    shadow = (if classify then Some (Hashtbl.create 1024) else None);
    shadow_capacity = cfg.size_bytes / cfg.block_bytes;
    time = 0;
    pending_flips = [];
    flips_applied = 0;
  }

type result = {
  hit : bool;
  toggles : int;
  refilled_words : int;
}

let classify_miss t block =
  match (t.seen, t.shadow) with
  | Some seen, Some shadow ->
      if not (Hashtbl.mem seen block) then begin
        Hashtbl.replace seen block ();
        t.compulsory <- t.compulsory + 1
      end
      else if Hashtbl.mem shadow block then
        (* present in the fully-associative shadow: a conflict miss *)
        t.conflict <- t.conflict + 1
      else t.capacity <- t.capacity + 1
  | _ -> ()

let shadow_touch t block =
  match t.shadow with
  | None -> ()
  | Some shadow ->
      if
        (not (Hashtbl.mem shadow block))
        && Hashtbl.length shadow >= t.shadow_capacity
      then begin
        (* evict the least recently used shadow entry *)
        let lru_block = ref (-1) and lru_time = ref max_int in
        Hashtbl.iter
          (fun b tm ->
            if tm < !lru_time then begin
              lru_time := tm;
              lru_block := b
            end)
          shadow;
        Hashtbl.remove shadow !lru_block
      end;
      Hashtbl.replace shadow block t.time

let slots t = t.nsets * t.cfg.assoc

let schedule_tag_flip t ~at_access ~slot ~bit =
  if slot < 0 || slot >= slots t then
    invalid_arg "Icache.schedule_tag_flip: slot out of range";
  t.pending_flips <- (at_access, slot, bit) :: t.pending_flips

let flips_applied t = t.flips_applied

let apply_due_flips t =
  match t.pending_flips with
  | [] -> ()
  | _ ->
      let due, rest =
        List.partition (fun (at, _, _) -> at <= t.accesses) t.pending_flips
      in
      t.pending_flips <- rest;
      List.iter
        (fun (_, slot, bit) ->
          (* a flip only matters on a valid line: an invalid way has no
             stored tag to corrupt *)
          if t.tags.(slot) >= 0 then begin
            t.tags.(slot) <- t.tags.(slot) lxor (1 lsl bit);
            t.flips_applied <- t.flips_applied + 1
          end)
        due

let access t ~addr ~data =
  t.accesses <- t.accesses + 1;
  apply_due_flips t;
  t.time <- t.time + 1;
  let block = addr lsr t.block_shift in
  let set = block land (t.nsets - 1) in
  let tag = block lsr Bits.log2_exact t.nsets in
  let idx_t = Bits.hamming set t.last_idx in
  let out_t = Bits.hamming data t.last_out in
  t.idx_toggles <- t.idx_toggles + idx_t;
  t.last_idx <- set;
  t.out_toggles <- t.out_toggles + out_t;
  t.last_out <- data;
  let base = set * t.cfg.assoc in
  let rec find way = if way >= t.cfg.assoc then -1
    else if t.tags.(base + way) = tag then way
    else find (way + 1)
  in
  let way = find 0 in
  let hit = way >= 0 in
  let refilled_words = ref 0 in
  if hit then begin
    (* move to front (MRU) *)
    if way > 0 then begin
      let v = t.tags.(base + way) in
      Array.blit t.tags base t.tags (base + 1) way;
      t.tags.(base) <- v
    end
  end
  else begin
    t.misses <- t.misses + 1;
    refilled_words := t.cfg.block_bytes / 4;
    t.refills <- t.refills + !refilled_words;
    classify_miss t block;
    (* insert at MRU, evict LRU (last way) *)
    Array.blit t.tags base t.tags (base + 1) (t.cfg.assoc - 1);
    t.tags.(base) <- tag
  end;
  shadow_touch t block;
  { hit; toggles = idx_t + out_t; refilled_words = !refilled_words }

let stats_accesses t = t.accesses
let stats_misses t = t.misses
let stats_compulsory t = t.compulsory
let stats_capacity t = t.capacity
let stats_conflict t = t.conflict
let output_toggles t = t.out_toggles
let addr_toggles t = t.idx_toggles
let refill_words t = t.refills

let miss_rate_per_million t =
  if t.accesses = 0 then 0.0
  else 1_000_000.0 *. float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.compulsory <- 0;
  t.capacity <- 0;
  t.conflict <- 0;
  t.out_toggles <- 0;
  t.idx_toggles <- 0;
  t.refills <- 0
