open Pf_util

type config = {
  size_bytes : int;
  block_bytes : int;
  assoc : int;
}

(* Geometry validation.  DSE grids cross-product their axes, so degenerate
   corners (a 1 KB cache asked for 32 ways of 64 B blocks has fewer lines
   than ways) are routine inputs here, not programming errors: report every
   offending field at once through a structured Sim_error the explorer and
   the CLI can classify. *)
let validate c =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if c.size_bytes <= 0 || not (Bits.is_power_of_two c.size_bytes) then
    add "size_bytes=%d is not a positive power of two" c.size_bytes;
  if c.block_bytes < 4 || not (Bits.is_power_of_two c.block_bytes) then
    add "block_bytes=%d is not a power of two >= 4 (one fetch word)"
      c.block_bytes;
  if c.assoc < 1 || not (Bits.is_power_of_two c.assoc) then
    add "assoc=%d is not a positive power of two" c.assoc;
  (* line/set arithmetic is only meaningful once the fields above are sane *)
  if !problems = [] then begin
    if c.size_bytes < c.block_bytes then
      add "size_bytes=%d is smaller than one block (block_bytes=%d): zero lines"
        c.size_bytes c.block_bytes
    else begin
      let lines = c.size_bytes / c.block_bytes in
      if c.assoc > lines then
        add
          "assoc=%d exceeds the %d lines of a %d B cache with %d B blocks: \
           zero sets"
          c.assoc lines c.size_bytes c.block_bytes
    end
  end;
  match List.rev !problems with
  | [] -> ()
  | ps ->
      Sim_error.raisef Sim_error.Invalid_config ~where:"cache.icache"
        "degenerate cache geometry: %s" (String.concat "; " ps)

let config ?(block_bytes = 32) ?(assoc = 32) ~size_bytes () =
  let c = { size_bytes; block_bytes; assoc } in
  validate c;
  c

let sets c = c.size_bytes / c.block_bytes / c.assoc

let tag_bits c = 32 - Bits.log2_exact (sets c) - Bits.log2_exact c.block_bytes

(* Address decomposition, exposed so trace-level evaluators (the
   all-geometry DSE sweep) index their stack-distance profiles exactly the
   way [access_fast] indexes the tag array. *)

let block_of_addr c ~addr = addr lsr Bits.log2_exact c.block_bytes
let set_of_block c ~block = block land (sets c - 1)
let tag_of_block c ~block = block lsr Bits.log2_exact (sets c)

(* The activity (toggle) model: Hamming distance between consecutive set
   indices on the decoder path, and between consecutive words on the
   output bus.  [access_fast] charges exactly these per access; external
   cache models (the sweep kernel's per-profile accounting) go through
   the same two functions to stay bit-compatible. *)
let[@inline] index_toggle ~last_idx ~idx = Bits.hamming idx last_idx
let[@inline] output_toggle ~last_out ~out = Bits.hamming out last_out

(* Fully-associative shadow cache for miss classification, kept as an
   intrusive doubly-linked recency list (sentinel-based) plus a block ->
   node table.  Touch and evict are O(1); the previous implementation
   stored last-use times and scanned the whole table for the minimum on
   every eviction, which made --classify sweeps quadratic-ish in shadow
   capacity.  Since use times were unique and strictly increasing, evicting
   the list tail removes exactly the block the time scan would have. *)
type lru_node = {
  blk : int;
  mutable prev : lru_node;
  mutable next : lru_node;
}

type lru = {
  head : lru_node;  (* sentinel: [head.next] = MRU, [head.prev] = LRU *)
  nodes : (int, lru_node) Hashtbl.t;
  capacity : int;
}

let lru_create capacity =
  let rec s = { blk = min_int; prev = s; next = s } in
  { head = s; nodes = Hashtbl.create 1024; capacity }

let lru_unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let lru_push_front l n =
  n.next <- l.head.next;
  n.prev <- l.head;
  l.head.next.prev <- n;
  l.head.next <- n

let lru_touch l b =
  match Hashtbl.find_opt l.nodes b with
  | Some n ->
      lru_unlink n;
      lru_push_front l n
  | None ->
      if Hashtbl.length l.nodes >= l.capacity then begin
        let tail = l.head.prev in
        lru_unlink tail;
        Hashtbl.remove l.nodes tail.blk
      end;
      let n = { blk = b; prev = l.head; next = l.head } in
      Hashtbl.replace l.nodes b n;
      lru_push_front l n

type t = {
  cfg : config;
  nsets : int;
  block_shift : int;
  set_shift : int;          (* log2 nsets: tag = block lsr set_shift *)
  assoc : int;
  refill_block_words : int; (* block_bytes / 4 *)
  (* tags.(set * assoc + way); -1 = invalid.  Ways kept in MRU-first order
     so the common hit is found on the first probe. *)
  tags : int array;
  mutable accesses : int;
  mutable misses : int;
  mutable compulsory : int;
  mutable capacity : int;
  mutable conflict : int;
  mutable out_toggles : int;
  mutable idx_toggles : int;
  mutable refills : int;
  mutable last_out : int;
  mutable last_idx : int;
  seen : (int, unit) Hashtbl.t option;     (* blocks ever touched *)
  shadow : lru option;
  (* fault injection: (at_access, slot, bit) tag flips applied the first
     time the access counter reaches at_access *)
  mutable pending_flips : (int * int * int) list;
  mutable flips_applied : int;
}

let create ?(classify = false) cfg =
  (* [config] already validated, but a record literal can bypass it *)
  validate cfg;
  let nsets = sets cfg in
  {
    cfg;
    nsets;
    block_shift = Bits.log2_exact cfg.block_bytes;
    set_shift = Bits.log2_exact nsets;
    assoc = cfg.assoc;
    refill_block_words = cfg.block_bytes / 4;
    tags = Array.make (nsets * cfg.assoc) (-1);
    accesses = 0;
    misses = 0;
    compulsory = 0;
    capacity = 0;
    conflict = 0;
    out_toggles = 0;
    idx_toggles = 0;
    refills = 0;
    last_out = 0;
    last_idx = 0;
    seen = (if classify then Some (Hashtbl.create 1024) else None);
    shadow =
      (if classify then Some (lru_create (cfg.size_bytes / cfg.block_bytes))
       else None);
    pending_flips = [];
    flips_applied = 0;
  }

type result = {
  hit : bool;
  toggles : int;
  refilled_words : int;
}

let classify_miss t block =
  match (t.seen, t.shadow) with
  | Some seen, Some l ->
      if not (Hashtbl.mem seen block) then begin
        Hashtbl.replace seen block ();
        t.compulsory <- t.compulsory + 1
      end
      else if Hashtbl.mem l.nodes block then
        (* present in the fully-associative shadow: a conflict miss *)
        t.conflict <- t.conflict + 1
      else t.capacity <- t.capacity + 1
  | _ -> ()

let slots t = t.nsets * t.cfg.assoc

let schedule_tag_flip t ~at_access ~slot ~bit =
  if slot < 0 || slot >= slots t then
    invalid_arg "Icache.schedule_tag_flip: slot out of range";
  t.pending_flips <- (at_access, slot, bit) :: t.pending_flips

let flips_applied t = t.flips_applied

let apply_due_flips t =
  match t.pending_flips with
  | [] -> ()
  | _ ->
      let due, rest =
        List.partition (fun (at, _, _) -> at <= t.accesses) t.pending_flips
      in
      t.pending_flips <- rest;
      List.iter
        (fun (_, slot, bit) ->
          (* a flip only matters on a valid line: an invalid way has no
             stored tag to corrupt *)
          if t.tags.(slot) >= 0 then begin
            t.tags.(slot) <- t.tags.(slot) lxor (1 lsl bit);
            t.flips_applied <- t.flips_applied + 1
          end)
        due

let access_fast t ~addr ~data =
  t.accesses <- t.accesses + 1;
  (match t.pending_flips with [] -> () | _ -> apply_due_flips t);
  let block = addr lsr t.block_shift in
  let set = block land (t.nsets - 1) in
  let tag = block lsr t.set_shift in
  let idx_t = index_toggle ~last_idx:t.last_idx ~idx:set in
  let out_t = output_toggle ~last_out:t.last_out ~out:data in
  t.idx_toggles <- t.idx_toggles + idx_t;
  t.last_idx <- set;
  t.out_toggles <- t.out_toggles + out_t;
  t.last_out <- data;
  let assoc = t.assoc in
  let base = set * assoc in
  let tags = t.tags in
  (* way search + MRU rotate run once per fetched word; indices are within
     [base, base+assoc) ⊂ [0, nsets*assoc) = length tags by construction,
     so unsafe accesses (and a hand rotate instead of the Array.blit C
     call) are sound *)
  let way = ref 0 in
  while !way < assoc && Array.unsafe_get tags (base + !way) <> tag do
    incr way
  done;
  if !way < assoc then begin
    (* hit: move to front (MRU) *)
    let w = !way in
    if w > 0 then begin
      for j = w downto 1 do
        Array.unsafe_set tags (base + j)
          (Array.unsafe_get tags (base + j - 1))
      done;
      Array.unsafe_set tags base tag
    end;
    (match t.shadow with None -> () | Some l -> lru_touch l block);
    ((idx_t + out_t) lsl 16) lor 1
  end
  else begin
    t.misses <- t.misses + 1;
    let rw = t.refill_block_words in
    t.refills <- t.refills + rw;
    (match t.seen with None -> () | Some _ -> classify_miss t block);
    (* insert at MRU, evict LRU (last way) *)
    Array.blit tags base tags (base + 1) (assoc - 1);
    tags.(base) <- tag;
    (match t.shadow with None -> () | Some l -> lru_touch l block);
    ((idx_t + out_t) lsl 16) lor (rw lsl 1)
  end

(* [access_fast] minus the switching-activity model: no index/output
   Hamming toggles, no bus state.  Tag array, MRU order, miss counters,
   classification and pending flips evolve identically, so the hit/miss
   sequence is bit-identical to [access_fast] on the same address stream.
   Only sound on an instance whose toggle counters are never read AND
   whose every access goes through this entry point (skipping the
   [last_idx]/[last_out] updates desynchronizes any later toggle
   computation): the D-cache qualifies — the pipeline consumes only its
   miss counts, and power accounting models the I-cache alone. *)
let access_count t ~addr =
  t.accesses <- t.accesses + 1;
  (match t.pending_flips with [] -> () | _ -> apply_due_flips t);
  let block = addr lsr t.block_shift in
  let set = block land (t.nsets - 1) in
  let tag = block lsr t.set_shift in
  let assoc = t.assoc in
  let base = set * assoc in
  let tags = t.tags in
  let way = ref 0 in
  while !way < assoc && Array.unsafe_get tags (base + !way) <> tag do
    incr way
  done;
  if !way < assoc then begin
    let w = !way in
    if w > 0 then begin
      for j = w downto 1 do
        Array.unsafe_set tags (base + j)
          (Array.unsafe_get tags (base + j - 1))
      done;
      Array.unsafe_set tags base tag
    end;
    (match t.shadow with None -> () | Some l -> lru_touch l block);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.refills <- t.refills + t.refill_block_words;
    (match t.seen with None -> () | Some _ -> classify_miss t block);
    Array.blit tags base tags (base + 1) (assoc - 1);
    tags.(base) <- tag;
    (match t.shadow with None -> () | Some l -> lru_touch l block);
    false
  end

let line_of_addr t ~addr = addr lsr t.block_shift

(* Snooping invalidate: drop the line holding [addr] if present.  The
   multicore coherence layer calls this on every remote core's private
   D-cache when a shared-region store propagates — write-through with
   invalidate, the simplest protocol that keeps private caches coherent.
   Later ways shift up so the MRU-first order stays compact (an invalid
   way in the middle would end the way search early on [access_count]'s
   linear probe only by accident of tag value).  The shadow LRU is left
   alone: it models a fully-associative cache of the same capacity for
   miss *classification*, and a coherence invalidation is not a capacity
   or conflict phenomenon — D-caches never classify anyway. *)
let invalidate_addr t ~addr =
  let block = addr lsr t.block_shift in
  let set = block land (t.nsets - 1) in
  let tag = block lsr t.set_shift in
  let assoc = t.assoc in
  let base = set * assoc in
  let tags = t.tags in
  let way = ref 0 in
  while !way < assoc && Array.unsafe_get tags (base + !way) <> tag do
    incr way
  done;
  if !way < assoc then begin
    for j = !way to assoc - 2 do
      Array.unsafe_set tags (base + j) (Array.unsafe_get tags (base + j + 1))
    done;
    tags.(base + assoc - 1) <- -1;
    true
  end
  else false

(* Same-line fast path for the block-compiled engine and sequential
   straight-line fetch: the caller proves (by tracking [line_of_addr]
   values) that the immediately preceding access to this cache touched the
   same cache line.  Under that precondition the outcome of [access_fast]
   is fully determined — both its hit and its miss path leave the touched
   line at way 0 (MRU-first order), so this access is a way-0 hit; the set
   index equals [last_idx], so the decoder Hamming toggle is 0; and the
   shadow-LRU touch is idempotent (the block is already at the recency
   front).  The only state that changes is the access counter and the
   output-bus toggle stream.  Pending tag flips take the slow path: a flip
   can corrupt the way-0 tag between two sequential fetches and its due
   time is a function of the access counter — and after [access_fast]
   handles it, the matched-or-refilled tag is back at way 0, re-arming the
   precondition.  Counter-for-counter identical to [access_fast]; the
   replay-equivalence and three-way differential tests assert it. *)
let access_seq t ~addr ~data =
  match t.pending_flips with
  | _ :: _ -> access_fast t ~addr ~data
  | [] ->
      t.accesses <- t.accesses + 1;
      let out_t = output_toggle ~last_out:t.last_out ~out:data in
      t.out_toggles <- t.out_toggles + out_t;
      t.last_out <- data;
      (match t.shadow with
      | None -> ()
      | Some l -> lru_touch l (addr lsr t.block_shift));
      (out_t lsl 16) lor 1

let has_pending_flips t = t.pending_flips <> []
let block_bytes t = t.cfg.block_bytes

(* Bulk form of [naccesses] same-line sequential hits.  Preconditions
   (caller-proved, see the mli): every access is to the line of the
   immediately preceding access, so each is a guaranteed way-0 MRU hit
   with zero index toggles (same set), refills nothing, and leaves the
   shadow recency list unchanged (the block is already at the front —
   [lru_touch] is idempotent there).  [toggles] must be the Hamming sum
   of the accessed word sequence against its predecessors and [last_out]
   the final word driven on the bus.  No pending tag flips: the access
   counter jumps by [naccesses], so a flip falling due inside the run
   would be applied late — callers check [has_pending_flips] and take the
   per-access path instead. *)
let access_seq_run t ~naccesses ~toggles ~last_out =
  t.accesses <- t.accesses + naccesses;
  t.out_toggles <- t.out_toggles + toggles;
  t.last_out <- last_out

let access t ~addr ~data =
  let r = access_fast t ~addr ~data in
  {
    hit = r land 1 = 1;
    toggles = r lsr 16;
    refilled_words = (r lsr 1) land 0x7FFF;
  }

let stats_accesses t = t.accesses
let stats_misses t = t.misses
let stats_compulsory t = t.compulsory
let stats_capacity t = t.capacity
let stats_conflict t = t.conflict
let output_toggles t = t.out_toggles
let addr_toggles t = t.idx_toggles
let refill_words t = t.refills

let miss_rate_per_million t =
  if t.accesses = 0 then 0.0
  else 1_000_000.0 *. float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.compulsory <- 0;
  t.capacity <- 0;
  t.conflict <- 0;
  t.out_toggles <- 0;
  t.idx_toggles <- 0;
  t.refills <- 0;
  (* toggle baselines are part of the stats stream: left stale, the first
     access after a reset would charge Hamming distance against the
     previous stream's last word/index *)
  t.last_out <- 0;
  t.last_idx <- 0
