(** Set-associative instruction cache simulator with LRU replacement.

    Beyond hit/miss bookkeeping it records the *activity* the power model
    needs (paper §4.2: sim-panalyzer ties power to gate switching per
    microarchitectural access):

    - output-bus toggles: Hamming distance between consecutive words driven
      onto the fetch bus;
    - address-path toggles: Hamming distance between consecutive set
      indices (decoder switching);
    - refill traffic: words written into the array on each miss.

    Misses are optionally classified compulsory / capacity / conflict
    against a fully-associative shadow cache of the same capacity. *)

type config = {
  size_bytes : int;
  block_bytes : int;
  assoc : int;
}

val config : ?block_bytes:int -> ?assoc:int -> size_bytes:int -> unit -> config
(** Defaults match the StrongARM-class I-cache: 32-byte blocks, 32-way.
    Validates the geometry (see {!validate}) before returning it. *)

val validate : config -> unit
(** Raises a [Pf_util.Sim_error] of kind [Invalid_config] listing {e every}
    offending field when the geometry is degenerate: non-power-of-two
    [size_bytes], [block_bytes] (or block smaller than one 4-byte fetch
    word) or [assoc], a cache smaller than one block, or an associativity
    exceeding the line count (zero sets).  Design-space grids hit these
    corners routinely; the structured error lets callers classify and
    skip them instead of crashing mid-sweep. *)

val sets : config -> int
val tag_bits : config -> int

(** {2 Address decomposition and activity model}

    The exact functions {!access_fast} applies per access, exposed so
    trace-level cache evaluators (the all-geometry DSE sweep kernel)
    decompose addresses and charge toggles identically. *)

val block_of_addr : config -> addr:int -> int
(** Block number of a byte address: [addr lsr log2 block_bytes]. *)

val set_of_block : config -> block:int -> int
(** Set index (bit selection): [block land (sets - 1)]. *)

val tag_of_block : config -> block:int -> int
(** Stored tag: [block lsr log2 sets]. *)

val index_toggle : last_idx:int -> idx:int -> int
(** Decoder-path activity of one access: Hamming distance between
    consecutive set indices. *)

val output_toggle : last_out:int -> out:int -> int
(** Output-bus activity of one access: Hamming distance between
    consecutive fetched words.  Both toggle baselines start at 0
    (a fresh cache charges [popcount] of the first index/word). *)

type t

val create : ?classify:bool -> config -> t
(** [classify] (default false) enables the shadow cache for miss
    classification; it costs extra simulation time. *)

type result = {
  hit : bool;
  toggles : int;        (** output + index toggles of this access *)
  refilled_words : int; (** words brought in by this access (0 on hit) *)
}

val access : t -> addr:int -> data:int -> result
(** [access t ~addr ~data] simulates a fetch of the 32-bit word [data] at
    byte address [addr].  [data] is what the cache drives onto its output
    bus (the simulator knows it from the image; a real cache would read it
    from the array). *)

val access_fast : t -> addr:int -> data:int -> int
(** Exactly {!access}, but the result is packed into one immediate int so
    the per-fetch hot path allocates nothing: bit 0 = hit, bits 1-15 =
    refilled words, bits 16 and up = toggles.  {!access} is a wrapper
    around this. *)

val access_count : t -> addr:int -> bool
(** {!access_fast} minus the switching-activity model: returns the hit
    bit alone and skips the index/output Hamming toggles and bus-state
    updates.  Tag array, MRU order, miss counters, classification and
    pending flips evolve identically, so the hit/miss sequence on any
    address stream is bit-identical.  Only sound on an instance whose
    toggle counters are never read and whose {e every} access goes
    through this entry point — the pipeline's D-cache, whose misses are
    the only thing the timing model consumes (power accounting models
    the I-cache alone). *)

val line_of_addr : t -> addr:int -> int
(** Cache-line number of a byte address under this instance's geometry
    ([addr lsr log2 block_bytes]) — the value callers track to prove the
    {!access_seq} precondition. *)

val access_seq : t -> addr:int -> data:int -> int
(** Same contract and packed result as {!access_fast}, specialized to an
    access whose line ({!line_of_addr}) equals that of the immediately
    preceding access to this cache.  Under that precondition the line is a
    guaranteed way-0 MRU hit with zero index toggles, so only the access
    counter and the output-toggle stream advance — one Hamming distance
    instead of a way search, an MRU rotate and a decoder toggle.  Falls
    back to {!access_fast} internally while tag flips are pending.
    Calling it when the precondition does not hold silently corrupts the
    simulation; the block-compiled engine is its only intended caller. *)

val access_seq_run : t -> naccesses:int -> toggles:int -> last_out:int -> unit
(** Bulk form of [naccesses] consecutive {!access_seq}-eligible fetches:
    every access touches the line of the immediately preceding access (so
    each is a guaranteed way-0 hit with zero index toggles and an
    unchanged shadow recency front), [toggles] is the output-bus Hamming
    sum of the fetched word sequence, and [last_out] the final word on
    the bus.  Counter-for-counter identical to the per-access calls under
    those preconditions — only the access counter, the output-toggle
    total and the bus baseline advance.  Callers must check
    {!has_pending_flips} first: the access counter jumps by [naccesses],
    which would defer a flip falling due inside the run. *)

val invalidate_addr : t -> addr:int -> bool
(** Drop the cache line holding byte address [addr] if it is resident;
    returns whether a line was actually invalidated.  This is the D-side
    coherence hook: the multicore machine's write-through snooping layer
    invalidates the written line in every {e other} core's private
    D-cache so a later read there must re-fetch the (already propagated)
    data.  Remaining ways keep their MRU-first order; statistics and the
    classification shadow are untouched (an invalidation is neither a
    capacity nor a conflict event). *)

val has_pending_flips : t -> bool
(** Are tag flips scheduled but not yet applied?  While true, batched
    accessors ({!access_seq_run}) are unsound and callers must take the
    per-access path. *)

val block_bytes : t -> int
(** Line size in bytes of this instance's geometry (callers compute line
    spans without re-deriving the config). *)

val stats_accesses : t -> int
val stats_misses : t -> int
val stats_compulsory : t -> int
val stats_capacity : t -> int
val stats_conflict : t -> int

val output_toggles : t -> int
(** Total Hamming distance accumulated on the output bus. *)

val addr_toggles : t -> int
(** Total Hamming distance accumulated on the set-index path. *)

val refill_words : t -> int
(** Words moved into the array by misses. *)

val miss_rate_per_million : t -> float

val reset_stats : t -> unit
(** Clear counters — including the toggle baselines, so the next access
    starts a fresh Hamming stream — but keep cache contents (for warmup
    discard). *)

(** {2 Fault injection}

    Soft errors in the tag array.  A flipped tag turns future probes of
    that line into spurious misses (or, rarely, false hits against a
    neighbouring address); the simulator models the timing and power
    consequences — instruction {e data} corruption is modeled at the
    decoder level, not here. *)

val slots : t -> int
(** Total tag slots ([sets * assoc]); the injector's address space. *)

val schedule_tag_flip : t -> at_access:int -> slot:int -> bit:int -> unit
(** Flip [bit] of the tag stored in [slot] once the access counter
    reaches [at_access].  Flips aimed at invalid (empty) lines are
    dropped — there is no stored tag to corrupt. *)

val flips_applied : t -> int
(** How many scheduled flips actually landed on a valid line. *)
