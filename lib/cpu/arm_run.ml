module A = Pf_arm.Insn
module Px = Pf_arm.Pexec

module Meta = struct
  let classify (i : A.t) =
    match i with
    | A.B _ | A.Bx _ -> Pipeline.Branch
    | A.Mul _ -> Pipeline.Mul
    | A.Mem { load = true; _ } | A.Pop _ -> Pipeline.Load
    | A.Mem { load = false; _ } | A.Push _ -> Pipeline.Store
    | A.Swi _ -> Pipeline.System
    | A.Dp _ -> if A.writes_pc i then Pipeline.Branch else Pipeline.Alu

  let read_mask = A.read_mask
  let write_mask = A.write_mask
end

type meta = {
  cls : Pipeline.insn_class;
  reads : int;
  writes : int;
  backward : bool;   (* direct backward branch, for the static predictor *)
}

let build_meta (image : Pf_arm.Image.t) =
  Array.map
    (function
      | Some i ->
          Some
            { cls = Meta.classify i;
              reads = Meta.read_mask i;
              writes = Meta.write_mask i;
              backward =
                (match i with A.B { offset; _ } -> offset < 0 | _ -> false) }
      | None -> None)
    image.Pf_arm.Image.insns

type engine = Reference | Predecoded | Compiled

type result = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  output : string;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

let default_cache_cfg = Pf_cache.Icache.config ~size_bytes:(16 * 1024) ()

let dcache_cfg = Trace.dcache_cfg

let where = "arm.exec"

let fetch_fault pc =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
    "undecodable instruction fetch at 0x%x" pc

(* Specialized fetch-execute-issue loops over a predecoded program: the
   shell of [Exec.run] (same watchdog, deadline polling, fault conditions)
   with the pipeline call inlined and the [trace] option dispatch hoisted
   out of the loop.  Nothing in the body allocates. *)
let run_predecoded ~max_steps ~deadline ~trace (p : Px.program)
    (st : Pf_arm.Exec.t) pipe =
  let o = Pf_arm.Exec.outcome () in
  let uops = p.Px.uops in
  let n = Array.length uops in
  let cb = p.Px.code_base in
  let regs = st.Pf_arm.Exec.regs in
  match trace with
  | None ->
      while not st.Pf_arm.Exec.halted do
        let pc = regs.(15) in
        if pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
        else begin
          if st.Pf_arm.Exec.steps >= max_steps then
            Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout ~where
              "step budget exhausted (%d)" max_steps;
          if st.Pf_arm.Exec.steps land Pf_arm.Exec.deadline_mask = 0 then
            Pf_util.Deadline.check ~where deadline;
          let off = pc - cb in
          let idx = off lsr 2 in
          if off < 0 || off land 3 <> 0 || idx >= n then fetch_fault pc;
          let u = uops.(idx) in
          if u.Px.code = Px.code_undef then fetch_fault pc;
          Px.exec st o u;
          regs.(15) <- o.Pf_arm.Exec.next_pc;
          Pipeline.issue pipe ~backward:u.Px.backward
            ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:pc ~size:4
            ~cls:(Trace.cls_of_code u.Px.cls) ~reads:u.Px.reads
            ~writes:u.Px.writes ~taken:o.Pf_arm.Exec.branch_taken
            ~mem_words:o.Pf_arm.Exec.mem_words
        end
      done
  | Some t ->
      while not st.Pf_arm.Exec.halted do
        let pc = regs.(15) in
        if pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
        else begin
          if st.Pf_arm.Exec.steps >= max_steps then
            Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout ~where
              "step budget exhausted (%d)" max_steps;
          if st.Pf_arm.Exec.steps land Pf_arm.Exec.deadline_mask = 0 then
            Pf_util.Deadline.check ~where deadline;
          let off = pc - cb in
          let idx = off lsr 2 in
          if off < 0 || off land 3 <> 0 || idx >= n then fetch_fault pc;
          let u = uops.(idx) in
          if u.Px.code = Px.code_undef then fetch_fault pc;
          Px.exec st o u;
          regs.(15) <- o.Pf_arm.Exec.next_pc;
          let cls = Trace.cls_of_code u.Px.cls in
          let taken = o.Pf_arm.Exec.branch_taken in
          let mem_words = o.Pf_arm.Exec.mem_words in
          Pipeline.issue pipe ~backward:u.Px.backward
            ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:pc ~size:4
            ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken ~mem_words;
          Trace.record t ~addr:pc ~cls ~reads:u.Px.reads ~writes:u.Px.writes
            ~taken ~backward:u.Px.backward
            ~dmisses:(Pipeline.last_dcache_misses pipe)
            ~mem_words
        end
      done

(* Block-compiled driver: dispatch once per basic block ([Pf_arm.Bexec]),
   with the watchdog, deadline poll and fault conditions moved to block
   granularity — except when a step-budget exhaustion or a deadline poll
   would land {e inside} the next block, or the block is a legality
   fallback, in which case ONE instruction is executed with the exact
   per-instruction body above, so every raise and every poll happens at
   precisely the same step count and pc as [run_predecoded].  Within a
   fused block, per-instruction work is driven by the compiler's shapes:
   dead compares only count and issue, straight-line DP ops skip the
   condition test and outcome resets, and only the terminator's dynamic
   next-pc is consulted for control flow. *)
let run_compiled ~max_steps ~deadline ~trace (p : Px.program)
    (st : Pf_arm.Exec.t) pipe ~words =
  let o = Pf_arm.Exec.outcome () in
  let uops = p.Px.uops in
  let n = Array.length uops in
  let cb = p.Px.code_base in
  let regs = st.Pf_arm.Exec.regs in
  let cx = Cexec.create ~isize:4 ~code_base:cb (Pf_arm.Bexec.create uops) in
  let dmask = Pf_arm.Exec.deadline_mask in
  let sh_dp = Pf_arm.Bexec.sh_dp in
  let seq_tog = Pipeline.seq_toggle_prefix ~words in
  let wbase = cb lsr 2 in
  (* run-scan cursors, hoisted so block dispatch allocates nothing *)
  let i = ref 0 and j = ref 0 in
  match trace with
  | None ->
      while not st.Pf_arm.Exec.halted do
        let pc = regs.(15) in
        if pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
        else begin
          let off = pc - cb in
          let idx = off lsr 2 in
          if off < 0 || off land 3 <> 0 || idx >= n then fetch_fault pc;
          let cbk = Cexec.block_at cx idx in
          let bb = cbk.Cexec.bb in
          let len = bb.Pf_arm.Bexec.len in
          let steps = st.Pf_arm.Exec.steps in
          if
            bb.Pf_arm.Bexec.fallback
            || steps + len > max_steps
            || (steps + dmask) land lnot dmask < steps + len
          then begin
            (* boundary mode: one exact per-instruction step *)
            if steps >= max_steps then
              Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout
                ~where "step budget exhausted (%d)" max_steps;
            if steps land dmask = 0 then Pf_util.Deadline.check ~where deadline;
            let u = uops.(idx) in
            if u.Px.code = Px.code_undef then fetch_fault pc;
            Px.exec st o u;
            regs.(15) <- o.Pf_arm.Exec.next_pc;
            Pipeline.issue pipe ~backward:u.Px.backward
              ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:pc ~size:4
              ~cls:(Trace.cls_of_code u.Px.cls) ~reads:u.Px.reads
              ~writes:u.Px.writes ~taken:o.Pf_arm.Exec.branch_taken
              ~mem_words:o.Pf_arm.Exec.mem_words
          end
          else begin
            bb.Pf_arm.Bexec.execs <- bb.Pf_arm.Bexec.execs + 1;
            let xu = bb.Pf_arm.Bexec.xuops in
            let shapes = bb.Pf_arm.Bexec.shapes in
            let pairs = cbk.Cexec.pairs in
            (* Maximal runs of ALU-shaped instructions execute first, then
               issue as one span: execution never reads the pipeline and
               the span issue never reads architectural state, and neither
               a dead compare nor a straight-line DP op can fault, so the
               reordering within a run is unobservable.  [pairs] holds the
               run's packed (addr, meta) events, precomputed at
               block-compile time. *)
            i := 0;
            while !i < len do
              let sh = Array.unsafe_get shapes !i in
              if sh <= sh_dp then begin
                j := !i + 1;
                while !j < len && Array.unsafe_get shapes !j <= sh_dp do
                  incr j
                done;
                for k = !i to !j - 1 do
                  if Array.unsafe_get shapes k = sh_dp then
                    Px.exec_dp_nr st o (Array.unsafe_get xu k)
                  else st.Pf_arm.Exec.steps <- st.Pf_arm.Exec.steps + 1
                done;
                Pipeline.issue_alu_seq_span pipe ~ev:pairs ~pos:(2 * !i)
                  ~n:(!j - !i) ~size:4 ~seq_tog ~wbase;
                i := !j
              end
              else begin
                let u = Array.unsafe_get xu !i in
                Px.exec st o u;
                Pipeline.issue pipe ~backward:u.Px.backward
                  ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1)
                  ~addr:(pc + (!i lsl 2)) ~size:4
                  ~cls:(Trace.cls_of_code u.Px.cls) ~reads:u.Px.reads
                  ~writes:u.Px.writes ~taken:o.Pf_arm.Exec.branch_taken
                  ~mem_words:o.Pf_arm.Exec.mem_words;
                incr i
              end
            done;
            regs.(15) <-
              (if bb.Pf_arm.Bexec.has_term then o.Pf_arm.Exec.next_pc
               else pc + (len lsl 2))
          end
        end
      done
  | Some t ->
      while not st.Pf_arm.Exec.halted do
        let pc = regs.(15) in
        if pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
        else begin
          let off = pc - cb in
          let idx = off lsr 2 in
          if off < 0 || off land 3 <> 0 || idx >= n then fetch_fault pc;
          let cbk = Cexec.block_at cx idx in
          let bb = cbk.Cexec.bb in
          let len = bb.Pf_arm.Bexec.len in
          let steps = st.Pf_arm.Exec.steps in
          if
            bb.Pf_arm.Bexec.fallback
            || steps + len > max_steps
            || (steps + dmask) land lnot dmask < steps + len
          then begin
            if steps >= max_steps then
              Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout
                ~where "step budget exhausted (%d)" max_steps;
            if steps land dmask = 0 then Pf_util.Deadline.check ~where deadline;
            let u = uops.(idx) in
            if u.Px.code = Px.code_undef then fetch_fault pc;
            Px.exec st o u;
            regs.(15) <- o.Pf_arm.Exec.next_pc;
            let cls = Trace.cls_of_code u.Px.cls in
            let taken = o.Pf_arm.Exec.branch_taken in
            let mem_words = o.Pf_arm.Exec.mem_words in
            Pipeline.issue pipe ~backward:u.Px.backward
              ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:pc ~size:4
              ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken ~mem_words;
            Trace.record t ~addr:pc ~cls ~reads:u.Px.reads ~writes:u.Px.writes
              ~taken ~backward:u.Px.backward
              ~dmisses:(Pipeline.last_dcache_misses pipe)
              ~mem_words
          end
          else begin
            bb.Pf_arm.Bexec.execs <- bb.Pf_arm.Bexec.execs + 1;
            let xu = bb.Pf_arm.Bexec.xuops in
            let shapes = bb.Pf_arm.Bexec.shapes in
            let metas = cbk.Cexec.metas in
            let pairs = cbk.Cexec.pairs in
            (* same run-scan as the untraced loop; each ALU span also
               bulk-records its precomputed (addr, meta) pairs *)
            i := 0;
            while !i < len do
              let sh = Array.unsafe_get shapes !i in
              if sh <= sh_dp then begin
                j := !i + 1;
                while !j < len && Array.unsafe_get shapes !j <= sh_dp do
                  incr j
                done;
                for k = !i to !j - 1 do
                  if Array.unsafe_get shapes k = sh_dp then
                    Px.exec_dp_nr st o (Array.unsafe_get xu k)
                  else st.Pf_arm.Exec.steps <- st.Pf_arm.Exec.steps + 1
                done;
                Pipeline.issue_alu_seq_span pipe ~ev:pairs ~pos:(2 * !i)
                  ~n:(!j - !i) ~size:4 ~seq_tog ~wbase;
                let tid =
                  if cbk.Cexec.tid >= 0 then cbk.Cexec.tid
                  else begin
                    let id = Trace.register_pairs t pairs in
                    cbk.Cexec.tid <- id;
                    id
                  end
                in
                Trace.record_span t ~tid ~pos:(2 * !i) ~n:(!j - !i);
                i := !j
              end
              else begin
                let u = Array.unsafe_get xu !i in
                let m = Array.unsafe_get metas !i in
                let a = pc + (!i lsl 2) in
                Px.exec st o u;
                let taken = o.Pf_arm.Exec.branch_taken in
                let mem_words = o.Pf_arm.Exec.mem_words in
                Pipeline.issue pipe ~backward:u.Px.backward
                  ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:a
                  ~size:4 ~cls:(Trace.cls_of_code u.Px.cls) ~reads:u.Px.reads
                  ~writes:u.Px.writes ~taken ~mem_words;
                Trace.record_packed t ~addr:a
                  ~meta:
                    (m
                    lor Trace.dynamic_meta ~taken ~mem_words
                          ~dmisses:(Pipeline.last_dcache_misses pipe));
                incr i
              end
            done;
            regs.(15) <-
              (if bb.Pf_arm.Bexec.has_term then o.Pf_arm.Exec.next_pc
               else pc + (len lsl 2))
          end
        end
      done

let run ?(engine = Predecoded) ?cache ?(cache_cfg = default_cache_cfg)
    ?pipeline_cfg ?power_params ?(classify = false) ?max_steps ?deadline
    ?trace (image : Pf_arm.Image.t) =
  let cache =
    match cache with
    | Some c -> c
    | None -> Pf_cache.Icache.create ~classify cache_cfg
  in
  let dcache = Pf_cache.Icache.create dcache_cfg in
  let geometry = Pf_power.Geometry.of_config cache_cfg in
  let account = Pf_power.Account.create ?params:power_params geometry in
  let fetch_data addr = Pf_arm.Image.word_at image addr in
  let pipe =
    Pipeline.create ?config:pipeline_cfg ~dcache ~cache ~account ~fetch_data
      ()
  in
  let st = Pf_arm.Exec.create image in
  (match engine with
  | Predecoded ->
      let p = Px.compile image in
      let max_steps =
        match max_steps with Some n -> n | None -> 500_000_000
      in
      run_predecoded ~max_steps ~deadline ~trace p st pipe
  | Compiled ->
      let p = Px.compile image in
      let max_steps =
        match max_steps with Some n -> n | None -> 500_000_000
      in
      run_compiled ~max_steps ~deadline ~trace p st pipe
        ~words:image.Pf_arm.Image.words
  | Reference ->
      let metas = build_meta image in
      let code_base = image.Pf_arm.Image.code_base in
      Pf_arm.Exec.run ?max_steps ?deadline st ~on_step:(fun _ ~pc insn o ->
          let m =
            match metas.((pc - code_base) lsr 2) with
            | Some m -> m
            | None ->
                Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal
                  ~where:"cpu.arm_run" "no metadata for pc 0x%x" pc
          in
          ignore insn;
          let taken = o.Pf_arm.Exec.branch_taken in
          let mem_addr = o.Pf_arm.Exec.mem_addr in
          let mem_words = o.Pf_arm.Exec.mem_words in
          Pipeline.issue pipe ~backward:m.backward ~mem_addr ~dmisses:(-1)
            ~addr:pc ~size:4 ~cls:m.cls ~reads:m.reads ~writes:m.writes
            ~taken ~mem_words;
          match trace with
          | Some t ->
              Trace.record t ~addr:pc ~cls:m.cls ~reads:m.reads
                ~writes:m.writes ~taken ~backward:m.backward
                ~dmisses:(Pipeline.last_dcache_misses pipe)
                ~mem_words
          | None -> ()));
  (match trace with
  | Some t ->
      Trace.set_dcache_rate t (Pf_cache.Icache.miss_rate_per_million dcache)
  | None -> ());
  {
    instructions = Pipeline.instructions pipe;
    cycles = Pipeline.cycles pipe;
    ipc = Pipeline.ipc pipe;
    fetch_accesses = Pipeline.fetch_accesses pipe;
    output = Pf_arm.Exec.output st;
    cache_accesses = Pf_cache.Icache.stats_accesses cache;
    cache_misses = Pf_cache.Icache.stats_misses cache;
    miss_rate_per_million = Pf_cache.Icache.miss_rate_per_million cache;
    dcache_miss_rate_pm = Pf_cache.Icache.miss_rate_per_million dcache;
    power = Pf_power.Account.report account;
  }

let replay ?pipeline_cfg ?power_params ?classify ~cache_cfg ~output
    (image : Pf_arm.Image.t) trace =
  let s =
    Trace.replay ?pipeline_cfg ?power_params ?classify
      ~seq:
        ( Pipeline.seq_toggle_prefix ~words:image.Pf_arm.Image.words,
          image.Pf_arm.Image.code_base lsr 2 )
      ~cache_cfg
      ~fetch_data:(fun addr -> Pf_arm.Image.word_at image addr)
      trace
  in
  {
    instructions = s.Trace.instructions;
    cycles = s.Trace.cycles;
    ipc =
      (if s.Trace.cycles = 0 then 0.0
       else float_of_int s.Trace.instructions /. float_of_int s.Trace.cycles);
    fetch_accesses = s.Trace.fetch_accesses;
    output;
    cache_accesses = s.Trace.cache_accesses;
    cache_misses = s.Trace.cache_misses;
    miss_rate_per_million = s.Trace.miss_rate_per_million;
    dcache_miss_rate_pm = s.Trace.dcache_miss_rate_pm;
    power = s.Trace.power;
  }
