(** Run an ARM image through the full stack: architectural interpreter +
    I-cache + pipeline timing + power accounting.  This produces the ARM16
    and ARM8 data points of the paper's four simulated configurations. *)

type result = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  output : string;              (** program's printed output *)
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
      (** the fixed 8 KB data cache (constant across configurations) *)
  power : Pf_power.Account.report;
}

val dcache_cfg : Pf_cache.Icache.config
(** The fixed SA-1100-like 8 KB data cache used by both runners. *)

(** Which interpreter drives the run.  [Predecoded] (the default) executes
    {!Pf_arm.Pexec} micro-ops — statically decoded once, allocation-free
    per step; [Compiled] additionally groups them into basic blocks
    ({!Pf_arm.Bexec}) and dispatches per block, with dead flag writes
    elided, the per-instruction condition/bounds/outcome work hoisted and
    watchdog/deadline checks honored at exact per-instruction granularity
    via a boundary single-step mode; [Reference] walks
    {!Pf_arm.Exec.run} re-deriving everything per dynamic step.  Results
    — cycles, toggles, every power float, recorded traces, outputs, fault
    pcs — are bit-identical across all three; the reference engine is
    kept as the differential-testing oracle. *)
type engine = Reference | Predecoded | Compiled

val run :
  ?engine:engine ->
  ?cache:Pf_cache.Icache.t ->
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?trace:Trace.t ->
  Pf_arm.Image.t ->
  result
(** Default cache: 16 KB, 32-byte blocks, 32-way (the SA-1100 I-cache).
    [cache] substitutes a pre-built I-cache instance (e.g. one created
    with [~classify:true] for miss-class inspection); otherwise a fresh
    one is built from [cache_cfg].
    [deadline] is the wall-clock watchdog, polled inside the execute loop.
    [trace] (created with [isize:4]) additionally records every retired
    instruction so other cache geometries can be {!replay}ed without
    re-executing. *)

val replay :
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  cache_cfg:Pf_cache.Icache.config ->
  output:string ->
  Pf_arm.Image.t ->
  Trace.t ->
  result
(** Re-run a recorded trace through a fresh cache/pipeline/power stack of
    a (typically different) geometry.  Produces bit-identical statistics
    to a direct {!run} of the same image with [cache_cfg]: the pipeline
    sees the same [issue] sequence either way.  [output] is the program
    output captured by the recording run (replay does not execute). *)

(** Per-instruction metadata used by the timing model; exposed for the FITS
    runner which shares the pipeline. *)
module Meta : sig
  val classify : Pf_arm.Insn.t -> Pipeline.insn_class
  val read_mask : Pf_arm.Insn.t -> int
  val write_mask : Pf_arm.Insn.t -> int
end
