(* Compiled-block layer shared by the ARM and FITS drivers: pairs each
   lazily built Bexec block with the per-instruction static trace metas
   (Trace packing lives up here — lib/arm cannot depend on lib/cpu).  The
   metas double as the packed event stream: [pairs] interleaves each
   instruction's fetch address with its static meta word, which is
   exactly the span layout [Pipeline.issue_alu_span] consumes and the
   table layout [Trace.register_pairs] aliases — so a fused ALU run
   costs one span call and one two-int block-granular trace event
   instead of per-instruction issue and packing. *)

type cblock = {
  bb : Pf_arm.Bexec.block;
  metas : int array;
      (* static_meta per instruction, from the ORIGINAL uop: identical
         class/masks/direction whether or not the executed form was
         flag-elided *)
  pairs : int array;
      (* (addr, static meta) per instruction: the packed ALU-event span /
         registered-table source for straight-line stretches *)
  mutable tid : int;
      (* [Trace.register_pairs] id of [pairs] in the run's trace, -1
         until first recorded (a Cexec.t serves exactly one run, hence at
         most one trace) *)
}

type t = {
  bx : Pf_arm.Bexec.t;
  isize : int;
  code_base : int;
  cblocks : cblock option array;
}

let create ~isize ~code_base bx =
  { bx; isize; code_base; cblocks = Array.make (Pf_arm.Bexec.slots bx) None }

let build t s =
  let bb = Pf_arm.Bexec.block_at t.bx s in
  let metas =
    Array.map
      (fun (u : Pf_arm.Pexec.uop) ->
        Trace.static_meta ~cls_code:u.Pf_arm.Pexec.cls
          ~backward:u.Pf_arm.Pexec.backward ~reads:u.Pf_arm.Pexec.reads
          ~writes:u.Pf_arm.Pexec.writes)
      bb.Pf_arm.Bexec.orig
  in
  let len = bb.Pf_arm.Bexec.len in
  let start = t.code_base + (s * t.isize) in
  let pairs = Array.make (2 * len) 0 in
  for i = 0 to len - 1 do
    pairs.(2 * i) <- start + (i * t.isize);
    pairs.((2 * i) + 1) <- metas.(i)
  done;
  { bb; metas; pairs; tid = -1 }

let block_at t s =
  match Array.unsafe_get t.cblocks s with
  | Some cb -> cb
  | None ->
      let cb = build t s in
      t.cblocks.(s) <- Some cb;
      cb

let bexec t = t.bx
