(** Compiled-block tables for the [Compiled] engine: each
    {!Pf_arm.Bexec.block} paired with precomputed per-instruction
    {!Trace.static_meta} words and the packed (addr, meta) event pairs
    those imply, so recording drivers emit block-granular trace events
    ({!Trace.record_span} into the registered [pairs] table) and dispatch
    fused ALU runs as single {!Pipeline.issue_alu_span} calls.  Lazily
    built, like the underlying block table. *)

type cblock = {
  bb : Pf_arm.Bexec.block;
  metas : int array;
      (** [Trace.static_meta] of each instruction (original micro-op
          metadata); index-aligned with [bb.xuops]/[bb.shapes] *)
  pairs : int array;
      (** [2 * len] ints: slot [2i] the fetch address of instruction [i]
          (a block-compile-time constant — blocks are straight-line),
          slot [2i+1] = [metas.(i)].  Exactly the event layout
          {!Pipeline.issue_alu_span} consumes and {!Trace.register_pairs}
          aliases for the span of instructions \[i, i+n). *)
  mutable tid : int;
      (** {!Trace.register_pairs} id of [pairs] in the run's trace; -1
          until the block first records *)
}

type t

val create : isize:int -> code_base:int -> Pf_arm.Bexec.t -> t
(** [isize] (4 = ARM, 2 = FITS) and [code_base] place each block's
    instructions at their fetch addresses
    [code_base + isize * (bb.start + i)] in the packed [pairs]. *)

val block_at : t -> int -> cblock
(** The compiled block with leader slot [s], built and cached on first
    use. *)

val bexec : t -> Pf_arm.Bexec.t
(** The underlying block table (probe statistics). *)
