type insn_class = Alu | Mul | Load | Store | Branch | System

type predictor = No_prediction | Btfn

type config = {
  dual_issue : bool;
  miss_penalty : int;
  branch_penalty : int;
  load_use_bubble : int;
  mul_extra : int;
  ldm_word_extra : int;
  fetch_buffer : bool;
  predictor : predictor;
}

let sa1100 =
  {
    dual_issue = true;
    miss_penalty = 24;
    branch_penalty = 2;
    load_use_bubble = 1;
    mul_extra = 2;
    ldm_word_extra = 1;
    fetch_buffer = true;
    predictor = Btfn;
  }

type t = {
  cfg : config;
  cache : Pf_cache.Icache.t;
  dcache : Pf_cache.Icache.t option;
  account : Pf_power.Account.t;
  fetch_data : int -> int;
  mutable cycles : int;
  mutable instrs : int;
  mutable fetches : int;
  mutable last_fetch_addr : int;       (* aligned word address, -1 = none *)
  mutable last_fetch_line : int;       (* I-cache line of that word, -1 = none *)
  mutable pair_slot_free : bool;       (* current cycle can take a 2nd insn *)
  mutable slot_writes : int;           (* writes of the 1st insn this cycle *)
  mutable slot_mem : bool;
  mutable prev_load_writes : int;      (* writes of the last load *)
  mutable last_dmisses : int;          (* D-cache misses of the last issue *)
  (* scratch accumulators for the span kernels; zero outside a span call.
     They live on [t] rather than in locals so the kernels allocate
     nothing: without flambda, a [ref] captured by a flush closure is a
     heap cell, and at the measured 1.5-2.7 events per ALU span that
     allocation dominated the per-event savings. *)
  mutable sp_acc : int;
  mutable sp_tog : int;
  mutable sp_ref : int;
  mutable sp_cyc : int;
  mutable sp_ins : int;
  mutable sp_room : int;
  mutable sp_i : int;
}

let create ?(config = sa1100) ?dcache ~cache ~account ~fetch_data () =
  {
    cfg = config;
    cache;
    dcache;
    account;
    fetch_data;
    cycles = 0;
    instrs = 0;
    fetches = 0;
    last_fetch_addr = -1;
    last_fetch_line = -1;
    pair_slot_free = false;
    slot_writes = 0;
    slot_mem = false;
    prev_load_writes = 0;
    last_dmisses = 0;
    sp_acc = 0;
    sp_tog = 0;
    sp_ref = 0;
    sp_cyc = 0;
    sp_ins = 0;
    sp_room = 0;
    sp_i = 0;
  }

let spend t n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    Pf_power.Account.on_cycles t.account n
  end

(* The back-end penalty arithmetic is exposed as pure functions of the
   config and the (geometry-invariant) event fields: the all-geometry
   sweep kernel (Pf_dse.Sweep) recomputes per-window cycle counts from
   trace events alone and must charge exactly what [issue] charges. *)

let[@inline] mispredicted cfg ~cls ~taken ~backward =
  (* backward-taken/forward-not-taken static prediction: a correctly
     predicted direct branch pays no redirect (the paper leans on MiBench
     branches being "easily predictable"); indirect branches (backward =
     false, taken) always pay *)
  match cfg.predictor with
  | No_prediction -> taken
  | Btfn -> ( match cls with Branch -> taken <> backward | _ -> taken)

let[@inline] extra_cycles cfg ~cls ~taken ~backward ~mem_words =
  (match cls with Mul -> cfg.mul_extra | _ -> 0)
  + (if mem_words > 1 then (mem_words - 1) * cfg.ldm_word_extra else 0)
  + if mispredicted cfg ~cls ~taken ~backward then cfg.branch_penalty else 0

(* One I-cache access for the word at [word_addr], returning the miss
   stall.  Sequential code stays on one cache line for many fetches; when
   the previous fetch touched the same line the access is routed through
   [Icache.access_seq] (guaranteed way-0 hit, no way search / MRU rotate /
   index toggle) — bit-identical counters, a fraction of the cost.  The
   line gate is deliberately {e not} cleared on taken branches: the
   redirect invalidates the fetch-buffer word, but the line it fetched
   from is still the cache's most recent access, so a branch targeting the
   same line (tight loops) keeps the fast path. *)
let[@inline] fetch_word t word_addr =
  let data = t.fetch_data word_addr in
  let line = Pf_cache.Icache.line_of_addr t.cache ~addr:word_addr in
  let r =
    if line = t.last_fetch_line then
      Pf_cache.Icache.access_seq t.cache ~addr:word_addr ~data
    else Pf_cache.Icache.access_fast t.cache ~addr:word_addr ~data
  in
  t.last_fetch_line <- line;
  Pf_power.Account.on_access t.account ~toggles:(r lsr 16)
    ~refilled_words:((r lsr 1) land 0x7FFF);
  t.fetches <- t.fetches + 1;
  t.last_fetch_addr <- word_addr;
  if r land 1 = 0 then t.cfg.miss_penalty else 0

(* Count misses of a [words]-word D-cache walk starting at [base].
   Top-level and fully applied so the per-word loop carries its counter in
   a register instead of a heap-allocated [ref]. *)
let rec dcache_walk d base w words acc =
  if w >= words then acc
  else
    let hit =
      Pf_cache.Icache.access_count d ~addr:((base + (4 * w)) land lnot 3)
    in
    dcache_walk d base (w + 1) words (if hit then acc else acc + 1)

let issue t ~backward ~mem_addr ~dmisses ~addr ~size ~cls ~reads ~writes
    ~taken ~mem_words =
  t.instrs <- t.instrs + 1;
  (* fetch: one I-cache access per new 32-bit word *)
  let word_addr = addr land lnot 3 in
  let fetch_stall =
    if word_addr <> t.last_fetch_addr || not t.cfg.fetch_buffer then
      fetch_word t word_addr
    else 0
  in
  ignore size;
  (* NB: class tests are pattern matches, not [=] — polymorphic equality
     on a variant is an out-of-line [caml_equal] call, and issue runs once
     per dynamic instruction *)
  let is_mem = match cls with Load | Store -> true | _ -> false in
  let is_branch = match cls with Branch -> true | _ -> false in
  let is_mul = match cls with Mul -> true | _ -> false in
  let is_load = match cls with Load -> true | _ -> false in
  (* data side: the D-cache is identical in every configuration (S5: only
     the I-cache varies); misses stall like instruction refills.  A replay
     passes the recorded miss count via [dmisses] instead of re-simulating
     the D-cache — same stream, same misses, by construction. *)
  let dm =
    if dmisses >= 0 then dmisses
    else
      match t.dcache with
      | Some d when is_mem && mem_addr >= 0 -> dcache_walk d mem_addr 0 mem_words 0
      | Some _ | None -> 0
  in
  t.last_dmisses <- dm;
  let stall =
    if dm > 0 then fetch_stall + (dm * t.cfg.miss_penalty) else fetch_stall
  in
  (* load-use bubble against the previous instruction *)
  let bubble =
    if t.prev_load_writes land reads <> 0 then t.cfg.load_use_bubble else 0
  in
  let can_pair =
    t.cfg.dual_issue && t.pair_slot_free && stall = 0 && bubble = 0
    && reads land t.slot_writes = 0
    && (not (is_mem && t.slot_mem))
    && not is_branch
  in
  if can_pair then begin
    (* issues in the already-open cycle *)
    t.pair_slot_free <- false;
    spend t stall
  end
  else begin
    spend t (1 + stall + bubble);
    t.pair_slot_free <- t.cfg.dual_issue && (not is_branch) && not is_mul;
    t.slot_writes <- writes;
    t.slot_mem <- is_mem
  end;
  (* back-end penalties close the pairing window *)
  let extra = extra_cycles t.cfg ~cls ~taken ~backward ~mem_words in
  if extra > 0 then begin
    spend t extra;
    t.pair_slot_free <- false
  end;
  if taken then
    (* redirect: the fetch buffer does not survive a taken branch *)
    t.last_fetch_addr <- -1;
  t.prev_load_writes <- (if is_load then writes else 0);
  Pf_power.Account.on_retire t.account

(* [issue] specialized to the dominant event shape: a non-memory,
   non-branch Alu instruction with no D-cache misses ([cls = Alu],
   [taken = backward = false], [mem_words = 0], [dmisses = 0],
   [mem_addr = -1]).  Every branch of [issue] is resolved under those
   constants — no mul/ldm/branch extras, no redirect, no D-cache walk —
   leaving the fetch gate, the load-use bubble and the pairing state
   machine.  The block-compiled engine and the trace replayer route
   eligible events here; cycle-for-cycle identity with [issue] is asserted
   by the three-way differential tests. *)
let issue_alu t ~addr ~size ~reads ~writes =
  t.instrs <- t.instrs + 1;
  let word_addr = addr land lnot 3 in
  let stall =
    if word_addr <> t.last_fetch_addr || not t.cfg.fetch_buffer then
      fetch_word t word_addr
    else 0
  in
  ignore size;
  t.last_dmisses <- 0;
  let bubble =
    if t.prev_load_writes land reads <> 0 then t.cfg.load_use_bubble else 0
  in
  if
    t.cfg.dual_issue && t.pair_slot_free && stall = 0 && bubble = 0
    && reads land t.slot_writes = 0
  then t.pair_slot_free <- false
  else begin
    spend t (1 + stall + bubble);
    t.pair_slot_free <- t.cfg.dual_issue;
    t.slot_writes <- writes;
    t.slot_mem <- false
  end;
  t.prev_load_writes <- 0;
  Pf_power.Account.on_retire t.account

(* Span-batched [issue_alu]: [n] consecutive ALU-shaped events packed two
   ints each into [ev] at [pos] — slot 0 the fetch address, slot 1 a meta
   word whose bits 11-27 are the read mask and bits 28-44 the write mask
   (the [Trace] packed-event layout with every dynamic field zero; the two
   modules share the layout within this library).  Equivalent to calling
   [issue_alu] once per event, but the pipeline/pairing state lives in
   locals for the whole span and the power accounting is flushed in
   peak-window-sized batches ([Account.on_block]) instead of three calls
   per instruction.  Cache counters stay exact per access — every fetch
   still goes through [Icache.access_seq]/[access_fast] — so miss stalls,
   toggle streams and the shadow LRU are untouched.  The trace replayer
   and the block-compiled engines feed their ALU runs through here; the
   three-way differential and replay-equivalence tests pin the
   bit-identity. *)
let flush_span t =
  Pf_power.Account.on_block t.account ~accesses:t.sp_acc ~toggles:t.sp_tog
    ~refilled_words:t.sp_ref ~cycles:t.sp_cyc ~insns:t.sp_ins;
  t.cycles <- t.cycles + t.sp_cyc;
  t.sp_acc <- 0;
  t.sp_tog <- 0;
  t.sp_ref <- 0;
  t.sp_cyc <- 0;
  t.sp_ins <- 0;
  t.sp_room <- Pf_power.Account.window_room t.account

let issue_alu_span t ~ev ~pos ~n =
  let cfg = t.cfg in
  let dual = cfg.dual_issue in
  let gate = cfg.fetch_buffer in
  t.sp_room <- Pf_power.Account.window_room t.account;
  for k = 0 to n - 1 do
    let i = pos + (2 * k) in
    let addr = Array.unsafe_get ev i in
    let meta = Array.unsafe_get ev (i + 1) in
    let word_addr = addr land lnot 3 in
    let stall =
      if word_addr <> t.last_fetch_addr || not gate then begin
        let data = t.fetch_data word_addr in
        let line = Pf_cache.Icache.line_of_addr t.cache ~addr:word_addr in
        let r =
          if line = t.last_fetch_line then
            Pf_cache.Icache.access_seq t.cache ~addr:word_addr ~data
          else Pf_cache.Icache.access_fast t.cache ~addr:word_addr ~data
        in
        t.last_fetch_line <- line;
        t.last_fetch_addr <- word_addr;
        t.fetches <- t.fetches + 1;
        t.sp_acc <- t.sp_acc + 1;
        t.sp_tog <- t.sp_tog + (r lsr 16);
        t.sp_ref <- t.sp_ref + ((r lsr 1) land 0x7FFF);
        if r land 1 = 0 then cfg.miss_penalty else 0
      end
      else 0
    in
    let reads = (meta lsr 11) land 0x1FFFF in
    let bubble =
      if t.prev_load_writes land reads <> 0 then cfg.load_use_bubble else 0
    in
    if
      dual && t.pair_slot_free && stall = 0 && bubble = 0
      && reads land t.slot_writes = 0
    then t.pair_slot_free <- false
    else begin
      t.sp_cyc <- t.sp_cyc + 1 + stall + bubble;
      t.pair_slot_free <- dual;
      t.slot_writes <- (meta lsr 28) land 0x1FFFF;
      t.slot_mem <- false
    end;
    t.prev_load_writes <- 0;
    t.sp_ins <- t.sp_ins + 1;
    if t.sp_ins = t.sp_room then flush_span t
  done;
  if t.sp_ins > 0 then flush_span t;
  t.instrs <- t.instrs + n;
  if n > 0 then t.last_dmisses <- 0

(* Per-word output-bus toggle prefix over a code segment: [st.(w)] is the
   Hamming sum of transitions words.(0)->words.(1)->...->words.(w), so a
   sequential fetch of words (a, b] charges [st.(b) - st.(a)].  The first
   word of any run is excluded — its toggle depends on whatever the bus
   last carried and is charged at runtime. *)
let seq_toggle_prefix ~words =
  let n = Array.length words in
  let st = Array.make (max n 1) 0 in
  for w = 1 to n - 1 do
    st.(w) <- st.(w - 1) + Pf_util.Bits.hamming words.(w - 1) words.(w)
  done;
  st

(* Line-batched [issue_alu_span] for spans whose fetch addresses are
   STRICTLY SEQUENTIAL (each event [size] bytes after the previous — true
   of any straight-line run of retirements, which is exactly what an ALU
   span is).  The first access of every cache line runs through the real
   per-access path (misses, refills, index toggles, shadow LRU all exact);
   the remaining words of that line are then guaranteed way-0 hits with
   zero index toggles and an unchanged recency front, so they collapse
   into one [Icache.access_seq_run] whose output-bus toggle sum comes from
   the precomputed prefix [seq_tog] ([seq_toggle_prefix] of the code
   words, index-based at [wbase] = code_base/4).  Batches are additionally
   cut at peak-window boundaries so every power window closes on exactly
   the same retirement, with exactly the same window sums, as the
   per-access path.  Falls back to the per-event span when the fetch
   buffer is disabled (every instruction re-accesses the cache) or tag
   flips are pending (their due times read the access counter). *)
let issue_alu_seq_span t ~ev ~pos ~n ~size ~seq_tog ~wbase =
  if (not t.cfg.fetch_buffer) || Pf_cache.Icache.has_pending_flips t.cache
  then issue_alu_span t ~ev ~pos ~n
  else begin
    let cfg = t.cfg in
    let dual = cfg.dual_issue in
    let lmask = Pf_cache.Icache.block_bytes t.cache - 1 in
    t.sp_room <- Pf_power.Account.window_room t.account;
    t.sp_i <- 0;
    while t.sp_i < n do
      (* head event: may fetch (line-crossing, miss-capable) or reuse the
         fetch buffer; runs the exact per-access path *)
      let p = pos + (2 * t.sp_i) in
      let addr = Array.unsafe_get ev p in
      let meta = Array.unsafe_get ev (p + 1) in
      let word_addr = addr land lnot 3 in
      let stall =
        if word_addr <> t.last_fetch_addr then begin
          let data = t.fetch_data word_addr in
          let line = Pf_cache.Icache.line_of_addr t.cache ~addr:word_addr in
          let r =
            if line = t.last_fetch_line then
              Pf_cache.Icache.access_seq t.cache ~addr:word_addr ~data
            else Pf_cache.Icache.access_fast t.cache ~addr:word_addr ~data
          in
          t.last_fetch_line <- line;
          t.last_fetch_addr <- word_addr;
          t.fetches <- t.fetches + 1;
          t.sp_acc <- t.sp_acc + 1;
          t.sp_tog <- t.sp_tog + (r lsr 16);
          t.sp_ref <- t.sp_ref + ((r lsr 1) land 0x7FFF);
          if r land 1 = 0 then cfg.miss_penalty else 0
        end
        else 0
      in
      let reads = (meta lsr 11) land 0x1FFFF in
      let bubble =
        if t.prev_load_writes land reads <> 0 then cfg.load_use_bubble
        else 0
      in
      (if
         dual && t.pair_slot_free && stall = 0 && bubble = 0
         && reads land t.slot_writes = 0
       then t.pair_slot_free <- false
       else begin
         t.sp_cyc <- t.sp_cyc + 1 + stall + bubble;
         t.pair_slot_free <- dual;
         t.slot_writes <- (meta lsr 28) land 0x1FFFF;
         t.slot_mem <- false
       end);
      t.prev_load_writes <- 0;
      t.sp_ins <- t.sp_ins + 1;
      if t.sp_ins = t.sp_room then flush_span t;
      t.sp_i <- t.sp_i + 1;
      (* tail events within the head's (now resident, front-of-recency)
         line: guaranteed hits, zero stall, zero bubble
         ([prev_load_writes] is 0 past the head), capped by the open power
         window; the line never changes so [last_fetch_line] stands *)
      if t.sp_i < n then begin
        let line_end = t.last_fetch_addr lor lmask in
        let a1 = addr + size in
        if a1 <= line_end then begin
          let cnt =
            min
              (min (((line_end - a1) / size) + 1) (t.sp_room - t.sp_ins))
              (n - t.sp_i)
          in
          let last = a1 + ((cnt - 1) * size) in
          let wprev = t.last_fetch_addr lsr 2 in
          let wlast = last lsr 2 in
          let nacc = wlast - wprev in
          if nacc > 0 then begin
            let tog =
              Array.unsafe_get seq_tog (wlast - wbase)
              - Array.unsafe_get seq_tog (wprev - wbase)
            in
            Pf_cache.Icache.access_seq_run t.cache ~naccesses:nacc
              ~toggles:tog ~last_out:(t.fetch_data (last land lnot 3));
            t.fetches <- t.fetches + nacc;
            t.sp_acc <- t.sp_acc + nacc;
            t.sp_tog <- t.sp_tog + tog;
            t.last_fetch_addr <- last land lnot 3
          end;
          let q0 = p + 3 in
          for z = 0 to cnt - 1 do
            let m = Array.unsafe_get ev (q0 + (2 * z)) in
            let reads = (m lsr 11) land 0x1FFFF in
            if dual && t.pair_slot_free && reads land t.slot_writes = 0 then
              t.pair_slot_free <- false
            else begin
              t.sp_cyc <- t.sp_cyc + 1;
              t.pair_slot_free <- dual;
              t.slot_writes <- (m lsr 28) land 0x1FFFF;
              t.slot_mem <- false
            end
          done;
          t.sp_ins <- t.sp_ins + cnt;
          if t.sp_ins = t.sp_room then flush_span t;
          t.sp_i <- t.sp_i + cnt
        end
      end
    done;
    if t.sp_ins > 0 then flush_span t;
    t.instrs <- t.instrs + n;
    if n > 0 then t.last_dmisses <- 0
  end

let cycles t = t.cycles
let instructions t = t.instrs
let last_dcache_misses t = t.last_dmisses
let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.instrs /. float_of_int t.cycles
let fetch_accesses t = t.fetches
