type insn_class = Alu | Mul | Load | Store | Branch | System

type predictor = No_prediction | Btfn

type config = {
  dual_issue : bool;
  miss_penalty : int;
  branch_penalty : int;
  load_use_bubble : int;
  mul_extra : int;
  ldm_word_extra : int;
  fetch_buffer : bool;
  predictor : predictor;
}

let sa1100 =
  {
    dual_issue = true;
    miss_penalty = 24;
    branch_penalty = 2;
    load_use_bubble = 1;
    mul_extra = 2;
    ldm_word_extra = 1;
    fetch_buffer = true;
    predictor = Btfn;
  }

type t = {
  cfg : config;
  cache : Pf_cache.Icache.t;
  dcache : Pf_cache.Icache.t option;
  account : Pf_power.Account.t;
  fetch_data : int -> int;
  mutable cycles : int;
  mutable instrs : int;
  mutable fetches : int;
  mutable last_fetch_addr : int;       (* aligned word address, -1 = none *)
  mutable pair_slot_free : bool;       (* current cycle can take a 2nd insn *)
  mutable slot_writes : int;           (* writes of the 1st insn this cycle *)
  mutable slot_mem : bool;
  mutable prev_load_writes : int;      (* writes of the last load *)
  mutable last_dmisses : int;          (* D-cache misses of the last issue *)
}

let create ?(config = sa1100) ?dcache ~cache ~account ~fetch_data () =
  {
    cfg = config;
    cache;
    dcache;
    account;
    fetch_data;
    cycles = 0;
    instrs = 0;
    fetches = 0;
    last_fetch_addr = -1;
    pair_slot_free = false;
    slot_writes = 0;
    slot_mem = false;
    prev_load_writes = 0;
    last_dmisses = 0;
  }

let spend t n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    Pf_power.Account.on_cycles t.account n
  end

(* The back-end penalty arithmetic is exposed as pure functions of the
   config and the (geometry-invariant) event fields: the all-geometry
   sweep kernel (Pf_dse.Sweep) recomputes per-window cycle counts from
   trace events alone and must charge exactly what [issue] charges. *)

let[@inline] mispredicted cfg ~cls ~taken ~backward =
  (* backward-taken/forward-not-taken static prediction: a correctly
     predicted direct branch pays no redirect (the paper leans on MiBench
     branches being "easily predictable"); indirect branches (backward =
     false, taken) always pay *)
  match cfg.predictor with
  | No_prediction -> taken
  | Btfn -> ( match cls with Branch -> taken <> backward | _ -> taken)

let[@inline] extra_cycles cfg ~cls ~taken ~backward ~mem_words =
  (match cls with Mul -> cfg.mul_extra | _ -> 0)
  + (if mem_words > 1 then (mem_words - 1) * cfg.ldm_word_extra else 0)
  + if mispredicted cfg ~cls ~taken ~backward then cfg.branch_penalty else 0

let issue t ~backward ~mem_addr ~dmisses ~addr ~size ~cls ~reads ~writes
    ~taken ~mem_words =
  t.instrs <- t.instrs + 1;
  (* fetch: one I-cache access per new 32-bit word *)
  let word_addr = addr land lnot 3 in
  let stall = ref 0 in
  if word_addr <> t.last_fetch_addr || not t.cfg.fetch_buffer then begin
    let data = t.fetch_data word_addr in
    let r = Pf_cache.Icache.access_fast t.cache ~addr:word_addr ~data in
    Pf_power.Account.on_access t.account ~toggles:(r lsr 16)
      ~refilled_words:((r lsr 1) land 0x7FFF);
    t.fetches <- t.fetches + 1;
    t.last_fetch_addr <- word_addr;
    if r land 1 = 0 then stall := !stall + t.cfg.miss_penalty
  end;
  ignore size;
  (* NB: class tests are pattern matches, not [=] — polymorphic equality
     on a variant is an out-of-line [caml_equal] call, and issue runs once
     per dynamic instruction *)
  let is_mem = match cls with Load | Store -> true | _ -> false in
  let is_branch = match cls with Branch -> true | _ -> false in
  let is_mul = match cls with Mul -> true | _ -> false in
  let is_load = match cls with Load -> true | _ -> false in
  (* data side: the D-cache is identical in every configuration (S5: only
     the I-cache varies); misses stall like instruction refills.  A replay
     passes the recorded miss count via [dmisses] instead of re-simulating
     the D-cache — same stream, same misses, by construction. *)
  let dm =
    if dmisses >= 0 then dmisses
    else
      match t.dcache with
      | Some d when is_mem && mem_addr >= 0 ->
          let m = ref 0 in
          for w = 0 to mem_words - 1 do
            let r =
              Pf_cache.Icache.access_fast d
                ~addr:((mem_addr + (4 * w)) land lnot 3)
                ~data:0
            in
            if r land 1 = 0 then incr m
          done;
          !m
      | Some _ | None -> 0
  in
  t.last_dmisses <- dm;
  if dm > 0 then stall := !stall + (dm * t.cfg.miss_penalty);
  (* load-use bubble against the previous instruction *)
  let bubble =
    if t.prev_load_writes land reads <> 0 then t.cfg.load_use_bubble else 0
  in
  let can_pair =
    t.cfg.dual_issue && t.pair_slot_free && !stall = 0 && bubble = 0
    && reads land t.slot_writes = 0
    && (not (is_mem && t.slot_mem))
    && not is_branch
  in
  if can_pair then begin
    (* issues in the already-open cycle *)
    t.pair_slot_free <- false;
    spend t !stall
  end
  else begin
    spend t (1 + !stall + bubble);
    t.pair_slot_free <- t.cfg.dual_issue && (not is_branch) && not is_mul;
    t.slot_writes <- writes;
    t.slot_mem <- is_mem
  end;
  (* back-end penalties close the pairing window *)
  let extra = extra_cycles t.cfg ~cls ~taken ~backward ~mem_words in
  if extra > 0 then begin
    spend t extra;
    t.pair_slot_free <- false
  end;
  if taken then
    (* redirect: the fetch buffer does not survive a taken branch *)
    t.last_fetch_addr <- -1;
  t.prev_load_writes <- (if is_load then writes else 0);
  Pf_power.Account.on_retire t.account

let cycles t = t.cycles
let instructions t = t.instrs
let last_dcache_misses t = t.last_dmisses
let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.instrs /. float_of_int t.cycles
let fetch_accesses t = t.fetches
