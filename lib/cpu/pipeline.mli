(** SA-1100-class in-order dual-issue timing model.

    The paper's simulated core is "a dual-issue, in-order machine" with a
    maximum IPC of 2 (§6.4.2), modeled after the StrongARM SA-1100 at
    200 MHz.  This module charges cycles per retired instruction:

    - up to two instructions issue per cycle when the second has no RAW
      dependence on the first, at most one is a memory operation, and the
      first is neither a branch nor a multiply;
    - a taken branch pays a redirect penalty;
    - a load feeding the immediately following instruction pays a bubble;
    - multiplies and multi-word load/store multiple pay extra cycles;
    - every instruction-fetch word goes through the I-cache; a miss stalls
      the front end for the refill latency.

    The pipeline owns the fetch path: it decides when a new 32-bit word
    must be read from the I-cache.  16-bit (FITS) instructions that fall in
    the word fetched by the previous instruction reuse the fetch buffer —
    the mechanism by which halved code size halves fetch traffic. *)

type insn_class = Alu | Mul | Load | Store | Branch | System

type predictor =
  | No_prediction   (** every taken branch pays the redirect *)
  | Btfn
      (** static backward-taken / forward-not-taken prediction: only
          mispredicted direct branches (and all indirect ones) pay *)

type config = {
  dual_issue : bool;
  miss_penalty : int;       (** cycles to refill a line from memory *)
  branch_penalty : int;     (** redirect cycles on a taken branch *)
  load_use_bubble : int;
  mul_extra : int;
  ldm_word_extra : int;     (** extra cycles per additional LDM/STM word *)
  fetch_buffer : bool;
      (** when false, every instruction re-reads the cache even within the
          same 32-bit word — the ablation that removes FITS' fetch-traffic
          halving *)
  predictor : predictor;
}

val sa1100 : config
(** 200 MHz StrongARM-like defaults: dual issue, 24-cycle miss penalty,
    2-cycle taken-branch redirect, 1-cycle load-use bubble, 2 extra cycles
    per multiply. *)

val mispredicted :
  config -> cls:insn_class -> taken:bool -> backward:bool -> bool
(** Does this retirement pay the redirect penalty?  Pure function of the
    config and geometry-invariant event fields — the exact predicate
    {!issue} applies, exposed so trace-level evaluators (the all-geometry
    DSE sweep) charge identical penalties. *)

val extra_cycles :
  config ->
  cls:insn_class ->
  taken:bool ->
  backward:bool ->
  mem_words:int ->
  int
(** Back-end penalty cycles of one retirement (multiply latency, extra
    LDM/STM words, branch redirect) — exactly what {!issue} spends after
    the issue slot itself.  Like {!mispredicted}, shared with trace-level
    evaluators. *)

type t

val create :
  ?config:config ->
  ?dcache:Pf_cache.Icache.t ->
  cache:Pf_cache.Icache.t ->
  account:Pf_power.Account.t ->
  fetch_data:(int -> int) ->
  unit ->
  t
(** [fetch_data addr] must return the 32-bit word stored at the aligned
    code address [addr] (it is what the cache drives on its output bus).
    [dcache] (optional) models the data side: every memory word moved
    goes through it and misses stall for [miss_penalty]; it is held
    constant across the paper's four configurations, so it affects
    absolute cycle counts but no I-cache comparison. *)

val issue :
  t ->
  backward:bool ->
  mem_addr:int ->
  dmisses:int ->
  addr:int ->
  size:int ->
  cls:insn_class ->
  reads:int ->
  writes:int ->
  taken:bool ->
  mem_words:int ->
  unit
(** Account one retired instruction.  [size] is 4 (ARM) or 2 (FITS);
    [reads]/[writes] are register bitmasks; [taken] marks a taken branch;
    [mem_words] the words a memory instruction transfers; [backward]
    (direct branches only, false otherwise) feeds the static predictor.
    [mem_addr] is the effective address, [-1] if none.  [dmisses >= 0]
    bypasses the D-cache model and charges that many recorded miss
    stalls instead — the trace-replay path, where the D-cache outcome is
    already known to be identical; pass [-1] to simulate the D-cache.
    All arguments are required: a [Some]-boxed optional would allocate on
    every dynamic instruction. *)

val cycles : t -> int
val instructions : t -> int
val ipc : t -> float
val fetch_accesses : t -> int

val last_dcache_misses : t -> int
(** D-cache misses charged by the most recent {!issue} (what a recording
    run stores in the trace). *)
