(** SA-1100-class in-order dual-issue timing model.

    The paper's simulated core is "a dual-issue, in-order machine" with a
    maximum IPC of 2 (§6.4.2), modeled after the StrongARM SA-1100 at
    200 MHz.  This module charges cycles per retired instruction:

    - up to two instructions issue per cycle when the second has no RAW
      dependence on the first, at most one is a memory operation, and the
      first is neither a branch nor a multiply;
    - a taken branch pays a redirect penalty;
    - a load feeding the immediately following instruction pays a bubble;
    - multiplies and multi-word load/store multiple pay extra cycles;
    - every instruction-fetch word goes through the I-cache; a miss stalls
      the front end for the refill latency.

    The pipeline owns the fetch path: it decides when a new 32-bit word
    must be read from the I-cache.  16-bit (FITS) instructions that fall in
    the word fetched by the previous instruction reuse the fetch buffer —
    the mechanism by which halved code size halves fetch traffic. *)

type insn_class = Alu | Mul | Load | Store | Branch | System

type predictor =
  | No_prediction   (** every taken branch pays the redirect *)
  | Btfn
      (** static backward-taken / forward-not-taken prediction: only
          mispredicted direct branches (and all indirect ones) pay *)

type config = {
  dual_issue : bool;
  miss_penalty : int;       (** cycles to refill a line from memory *)
  branch_penalty : int;     (** redirect cycles on a taken branch *)
  load_use_bubble : int;
  mul_extra : int;
  ldm_word_extra : int;     (** extra cycles per additional LDM/STM word *)
  fetch_buffer : bool;
      (** when false, every instruction re-reads the cache even within the
          same 32-bit word — the ablation that removes FITS' fetch-traffic
          halving *)
  predictor : predictor;
}

val sa1100 : config
(** 200 MHz StrongARM-like defaults: dual issue, 24-cycle miss penalty,
    2-cycle taken-branch redirect, 1-cycle load-use bubble, 2 extra cycles
    per multiply. *)

val mispredicted :
  config -> cls:insn_class -> taken:bool -> backward:bool -> bool
(** Does this retirement pay the redirect penalty?  Pure function of the
    config and geometry-invariant event fields — the exact predicate
    {!issue} applies, exposed so trace-level evaluators (the all-geometry
    DSE sweep) charge identical penalties. *)

val extra_cycles :
  config ->
  cls:insn_class ->
  taken:bool ->
  backward:bool ->
  mem_words:int ->
  int
(** Back-end penalty cycles of one retirement (multiply latency, extra
    LDM/STM words, branch redirect) — exactly what {!issue} spends after
    the issue slot itself.  Like {!mispredicted}, shared with trace-level
    evaluators. *)

type t

val create :
  ?config:config ->
  ?dcache:Pf_cache.Icache.t ->
  cache:Pf_cache.Icache.t ->
  account:Pf_power.Account.t ->
  fetch_data:(int -> int) ->
  unit ->
  t
(** [fetch_data addr] must return the 32-bit word stored at the aligned
    code address [addr] (it is what the cache drives on its output bus).
    [dcache] (optional) models the data side: every memory word moved
    goes through it and misses stall for [miss_penalty]; it is held
    constant across the paper's four configurations, so it affects
    absolute cycle counts but no I-cache comparison. *)

val issue :
  t ->
  backward:bool ->
  mem_addr:int ->
  dmisses:int ->
  addr:int ->
  size:int ->
  cls:insn_class ->
  reads:int ->
  writes:int ->
  taken:bool ->
  mem_words:int ->
  unit
(** Account one retired instruction.  [size] is 4 (ARM) or 2 (FITS);
    [reads]/[writes] are register bitmasks; [taken] marks a taken branch;
    [mem_words] the words a memory instruction transfers; [backward]
    (direct branches only, false otherwise) feeds the static predictor.
    [mem_addr] is the effective address, [-1] if none.  [dmisses >= 0]
    bypasses the D-cache model and charges that many recorded miss
    stalls instead — the trace-replay path, where the D-cache outcome is
    already known to be identical; pass [-1] to simulate the D-cache.
    All arguments are required: a [Some]-boxed optional would allocate on
    every dynamic instruction. *)

val issue_alu : t -> addr:int -> size:int -> reads:int -> writes:int -> unit
(** {!issue} specialized to the dominant event: a plain Alu instruction —
    [cls = Alu], [taken = backward = false], [mem_words = 0],
    [mem_addr = -1], [dmisses = 0].  Behaviour is cycle-for-cycle and
    counter-for-counter identical to calling {!issue} with those
    constants; only the work of re-deriving them is gone.  Callers (the
    block-compiled engine, the trace replayer's Alu fast path) must prove
    the event has exactly this shape. *)

val issue_alu_span : t -> ev:int array -> pos:int -> n:int -> unit
(** Span-batched {!issue_alu}: [n] consecutive ALU-shaped events, packed
    two ints each into [ev] starting at [pos] — slot 0 the fetch address,
    slot 1 a meta word with the read mask in bits 11-27 and the write
    mask in bits 28-44 and every other bit zero (the {!Trace} packed
    event layout for an eligible event; {!Trace.static_meta} of an Alu
    instruction produces exactly this).  Bit-identical to [n] separate
    {!issue_alu} calls: fetches still hit the I-cache access-by-access
    (miss stalls and toggle streams are exact), while the pairing state
    runs in locals and the power accounting is applied in peak-window
    bounded batches ({!Pf_power.Account.on_block}).  The trace replayer
    and the block-compiled engines feed their ALU runs through here. *)

val seq_toggle_prefix : words:int array -> int array
(** Output-bus toggle prefix of a code segment: entry [w] is the Hamming
    sum of the word transitions [words.(0) -> ... -> words.(w)], so a
    sequential fetch of words [(a, b]] charges entry [b] minus entry [a].
    Computed once per run/replay and fed to {!issue_alu_seq_span}. *)

val issue_alu_seq_span :
  t ->
  ev:int array ->
  pos:int ->
  n:int ->
  size:int ->
  seq_tog:int array ->
  wbase:int ->
  unit
(** {!issue_alu_span} specialized to spans whose fetch addresses are
    strictly sequential — event [k] exactly [size] bytes after event
    [k-1], the shape of every straight-line retirement run.  The first
    access of each cache line takes the real per-access path (misses,
    refills, index toggles and shadow LRU exact); the rest of the line's
    words are guaranteed way-0 hits and collapse into one bulk cache
    update whose output-bus toggles come from [seq_tog]
    ({!seq_toggle_prefix} of the code words; [wbase] = code_base / 4
    offsets addresses into it).  Batches are cut at peak-power-window
    boundaries, so windows close on the same retirements with the same
    sums as per-access accounting.  Bit-identical to {!issue_alu_span};
    falls back to it when the fetch buffer is disabled or tag flips are
    pending.  Callers must prove sequentiality — the drivers' block event
    pairs are sequential by construction, and the trace replayer checks
    addresses while scanning spans. *)

val cycles : t -> int
val instructions : t -> int
val ipc : t -> float
val fetch_accesses : t -> int

val last_dcache_misses : t -> int
(** D-cache misses charged by the most recent {!issue} (what a recording
    run stores in the trace). *)
