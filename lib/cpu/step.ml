module Px = Pf_arm.Pexec

(* Per-core single-instruction stepper.

   The sequential engines ([Arm_run], [Pf_fits.Run]) own their whole
   fetch-execute loop: they run one program to completion.  A multicore
   machine needs the OPPOSITE control inversion — a scheduler picks which
   core advances next, one instruction at a time — without forking the
   engine semantics.  [Step] is [Arm_run.run_predecoded]'s loop body (and
   its FITS twin's) factored into a resumable object: same watchdog, same
   deadline polling, same fault conditions, same [Pipeline.issue] call,
   executed once per [step].  A core carries its own architectural state,
   predecoded micro-ops, private I-cache/D-cache, pipeline and power
   account, so per-core PowerFITS accounting falls out unchanged; the
   machine layer sums the per-core reports.

   One [step] of a single-core machine is bit-identical to one iteration
   of the sequential predecoded loops (the mc test suite pins ARM cores
   against [Arm_run.run ~engine:Predecoded] field by field, floats by
   their IEEE bits). *)

type result = {
  instructions : int;
  src_instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  output : string;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

type t = {
  st : Pf_arm.Exec.t;
  o : Pf_arm.Exec.outcome;
  uops : Px.uop array;
  n : int;
  code_base : int;
  isize : int;
  ishift : int;             (* log2 isize: slot = offset lsr ishift *)
  align_mask : int;         (* isize - 1 *)
  pipe : Pipeline.t;
  cache : Pf_cache.Icache.t;
  dcache : Pf_cache.Icache.t;
  account : Pf_power.Account.t;
  max_steps : int;
  deadline : Pf_util.Deadline.t option;
  trace : Trace.t option;
  (* FITS source-retirement bookkeeping; empty arrays on ARM cores (every
     retirement is its own source instruction) *)
  src_first : bool array;
  src_single : bool array;
  mutable pc : int;
  mutable steps : int;
  mutable src_retired : int;
  mutable src_one : int;
}

let where = "cpu.step"

let fetch_fault pc =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
    "instruction fetch outside code at 0x%x" pc

let default_cache_cfg = Pf_cache.Icache.config ~size_bytes:(16 * 1024) ()

let create ?(cache_cfg = default_cache_cfg) ?pipeline_cfg ?power_params
    ?(classify = false) ?(max_steps = 500_000_000) ?deadline ?trace ?src
    ~isize ~code_base ~words ~entry ~uops st =
  if isize <> 2 && isize <> 4 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "isize must be 2 (FITS) or 4 (ARM), got %d" isize;
  let cache = Pf_cache.Icache.create ~classify cache_cfg in
  let dcache = Pf_cache.Icache.create Trace.dcache_cfg in
  let geometry = Pf_power.Geometry.of_config cache_cfg in
  let account = Pf_power.Account.create ?params:power_params geometry in
  let fetch_data addr = words.((addr - code_base) lsr 2) in
  let pipe =
    Pipeline.create ?config:pipeline_cfg ~dcache ~cache ~account ~fetch_data
      ()
  in
  let src_first, src_single =
    match src with
    | Some (f, s) ->
        if Array.length f <> Array.length uops
           || Array.length s <> Array.length uops
        then
          Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
            "src metadata length %d/%d does not match %d micro-op slots"
            (Array.length f) (Array.length s) (Array.length uops);
        (f, s)
    | None -> ([||], [||])
  in
  {
    st;
    o = Pf_arm.Exec.outcome ();
    uops;
    n = Array.length uops;
    code_base;
    isize;
    ishift = (if isize = 4 then 2 else 1);
    align_mask = isize - 1;
    pipe;
    cache;
    dcache;
    account;
    max_steps;
    deadline;
    trace;
    src_first;
    src_single;
    pc = entry;
    steps = 0;
    src_retired = 0;
    src_one = 0;
  }

let of_image ?cache_cfg ?pipeline_cfg ?power_params ?classify ?max_steps
    ?deadline ?trace (image : Pf_arm.Image.t) =
  let p = Px.compile image in
  create ?cache_cfg ?pipeline_cfg ?power_params ?classify ?max_steps
    ?deadline ?trace ~isize:4 ~code_base:p.Px.code_base
    ~words:image.Pf_arm.Image.words ~entry:p.Px.entry ~uops:p.Px.uops
    (Pf_arm.Exec.create image)

let halted t = t.st.Pf_arm.Exec.halted
let steps t = t.steps
let state t = t.st
let dcache t = t.dcache
let pc t = t.pc

let step t =
  let st = t.st in
  if not st.Pf_arm.Exec.halted then begin
    let pc = t.pc in
    if pc = Pf_arm.Exec.halt_sentinel then begin
      st.Pf_arm.Exec.halted <- true;
      (* don't let [stored_addr] report the previous instruction's store *)
      t.o.Pf_arm.Exec.mem_addr <- -1
    end
    else begin
      if t.steps >= t.max_steps then
        Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout ~where
          "step budget exhausted (%d)" t.max_steps;
      if t.steps land Pf_arm.Exec.deadline_mask = 0 then
        Pf_util.Deadline.check ~where t.deadline;
      let off = pc - t.code_base in
      let idx = off lsr t.ishift in
      if off < 0 || off land t.align_mask <> 0 || idx >= t.n then
        fetch_fault pc;
      let u = t.uops.(idx) in
      if u.Px.code = Px.code_undef then
        Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
          "undecodable slot at 0x%x: %s" pc u.Px.why;
      let o = t.o in
      Px.exec st o u;
      t.pc <- o.Pf_arm.Exec.next_pc;
      (* the ARM loop keeps the pc in r15; the FITS loop keeps it in a
         local and leaves r15 untouched (r15 reads go through the
         precomputed [pc8]) — match each exactly *)
      if t.isize = 4 then st.Pf_arm.Exec.regs.(15) <- o.Pf_arm.Exec.next_pc;
      let cls = Trace.cls_of_code u.Px.cls in
      let taken = o.Pf_arm.Exec.branch_taken in
      let mem_words = o.Pf_arm.Exec.mem_words in
      Pipeline.issue t.pipe ~backward:u.Px.backward
        ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:pc ~size:t.isize
        ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken ~mem_words;
      (match t.trace with
      | None -> ()
      | Some tr ->
          Trace.record tr ~addr:pc ~cls ~reads:u.Px.reads ~writes:u.Px.writes
            ~taken ~backward:u.Px.backward
            ~dmisses:(Pipeline.last_dcache_misses t.pipe)
            ~mem_words);
      if Array.length t.src_first > 0 then begin
        if t.src_first.(idx) then begin
          t.src_retired <- t.src_retired + 1;
          if t.src_single.(idx) then t.src_one <- t.src_one + 1
        end
      end;
      t.steps <- t.steps + 1
    end
  end

let stored_addr t =
  let o = t.o in
  if o.Pf_arm.Exec.mem_addr >= 0 && not o.Pf_arm.Exec.mem_is_load then
    o.Pf_arm.Exec.mem_addr
  else -1

let stored_words t =
  if stored_addr t < 0 then 0 else max 1 t.o.Pf_arm.Exec.mem_words

let result t =
  let cycles = Pipeline.cycles t.pipe in
  let src =
    if Array.length t.src_first > 0 then t.src_retired
    else Pipeline.instructions t.pipe
  in
  (match t.trace with
  | Some tr ->
      Trace.set_dcache_rate tr
        (Pf_cache.Icache.miss_rate_per_million t.dcache)
  | None -> ());
  {
    instructions = Pipeline.instructions t.pipe;
    src_instructions = src;
    cycles;
    ipc = (if cycles = 0 then 0.0 else float_of_int src /. float_of_int cycles);
    fetch_accesses = Pipeline.fetch_accesses t.pipe;
    output = Pf_arm.Exec.output t.st;
    cache_accesses = Pf_cache.Icache.stats_accesses t.cache;
    cache_misses = Pf_cache.Icache.stats_misses t.cache;
    miss_rate_per_million = Pf_cache.Icache.miss_rate_per_million t.cache;
    dcache_miss_rate_pm = Pf_cache.Icache.miss_rate_per_million t.dcache;
    power = Pf_power.Account.report t.account;
  }
