(** Per-core single-instruction stepper: the sequential predecoded loop
    body ({!Arm_run} and its FITS twin) factored into a resumable object,
    so a multicore scheduler can interleave cores one instruction at a
    time without forking the engine semantics.

    Each [t] is one core: architectural state, predecoded micro-ops,
    private I-cache, private D-cache, pipeline and power account.  One
    {!step} performs exactly one iteration of the sequential loops — same
    watchdog, same deadline polling (every [Exec.deadline_mask + 1]
    steps), same fault conditions, same {!Pipeline.issue} call, optional
    {!Trace.record} — so a single-core machine is bit-identical to
    [Arm_run.run ~engine:Predecoded] / [Pf_fits.Run.run ~engine:Predecoded]
    field by field (floats by their IEEE bits; the mc test suite pins
    this).  Per-core PowerFITS accounting falls out unchanged; the
    machine layer ({!Pf_mc.Machine}) sums the per-core reports. *)

type result = {
  instructions : int;       (** retired instructions at this core's isize *)
  src_instructions : int;
      (** ARM-source instructions: equals [instructions] on ARM cores,
          counts first-of-group slots on FITS cores *)
  cycles : int;
  ipc : float;              (** source instructions per cycle *)
  fetch_accesses : int;
  output : string;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

type t

val default_cache_cfg : Pf_cache.Icache.config
(** 16 KB, the ARM baseline geometry ({!Arm_run.default_cache_cfg}). *)

val create :
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?trace:Trace.t ->
  ?src:bool array * bool array ->
  isize:int ->
  code_base:int ->
  words:int array ->
  entry:int ->
  uops:Pf_arm.Pexec.uop array ->
  Pf_arm.Exec.t ->
  t
(** Build a core over an already-predecoded stream.  [isize] is 4 (ARM)
    or 2 (FITS); [words] backs sequential-fetch toggle accounting and is
    indexed from [code_base] in 32-bit words.  [src], for FITS cores,
    gives per-slot (first-of-group, group-is-singleton) flags indexed
    like [uops] — they drive the source-instruction counts the FITS
    runner reports.  [max_steps] (default 500 million) is the per-core
    watchdog; [trace] must be created with the matching [isize]. *)

val of_image :
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?trace:Trace.t ->
  Pf_arm.Image.t ->
  t
(** ARM convenience: predecode the image ({!Pf_arm.Pexec.compile}), make
    a fresh {!Pf_arm.Exec.t} and wrap them as an [isize]-4 core. *)

val step : t -> unit
(** Advance the core by exactly one instruction (or by the halt
    transition when the pc reaches the sentinel).  No-op once halted.
    Raises the engines' structured errors ([Watchdog_timeout],
    [Decode_fault], deadline expiry) under [where = "cpu.step"]. *)

val halted : t -> bool

val steps : t -> int
(** Instructions retired so far (the watchdog counter). *)

val pc : t -> int

val state : t -> Pf_arm.Exec.t
(** The architectural state — shared-memory layers read and write its
    [mem] directly. *)

val dcache : t -> Pf_cache.Icache.t
(** The private D-cache, exposed so a coherence layer can snoop
    ({!Pf_cache.Icache.invalidate_addr}). *)

val stored_addr : t -> int
(** Lowest byte address written by the most recent {!step}, or [-1] if it
    executed no store.  Multi-word stores (push) cover
    [\[stored_addr, stored_addr + 4 * stored_words)]. *)

val stored_words : t -> int
(** Words written by the most recent step's store ([0] if none; byte and
    half stores report [1] — the containing word). *)

val result : t -> result
(** Snapshot of the core's counters, output and power report, assembled
    exactly as the sequential runners assemble theirs.  Also publishes
    the D-cache miss rate into the core's trace, as the runners do. *)
