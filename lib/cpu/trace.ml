(* Two ints per event, stored in fixed-size chunks so recording never
   copies what is already written (a doubling flat array would).

     slot 0: fetch pc
     slot 1: packed meta — cls(3) | taken(1) | backward(1) | mem_words(6)
             | reads(17) | writes(17) | dmisses(6)

   Register masks are 17 bits wide: r0-r14 plus the over-provisioned FITS
   scratch register (index 16).  [dmisses] is the D-cache miss count the
   recording run observed for this event: the 8 KB D-cache is identical
   in every configuration, so a replay charges the recorded stalls
   instead of re-simulating the data side (and the trace needs no memory
   addresses at all). *)

let ints_per_event = 2

type t = {
  isize : int;
  chunk_events : int;
  mutable chunks : int array array;
  mutable nchunks : int;      (* chunks in use *)
  mutable cur : int array;    (* == chunks.(nchunks - 1) *)
  mutable cur_used : int;     (* ints used in [cur] *)
  mutable len : int;          (* total events *)
  mutable dcache_rate_pm : float;
      (* the recording run's D-cache miss rate, carried to replays *)
}

let create ?(chunk_events = 65536) ~isize () =
  if chunk_events <= 0 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
      ~where:"cpu.trace" "chunk_events must be positive (got %d)" chunk_events;
  let first = Array.make (chunk_events * ints_per_event) 0 in
  {
    isize;
    chunk_events;
    chunks = [| first |];
    nchunks = 1;
    cur = first;
    cur_used = 0;
    len = 0;
    dcache_rate_pm = 0.0;
  }

let isize t = t.isize
let length t = t.len
let set_dcache_rate t pm = t.dcache_rate_pm <- pm
let dcache_rate t = t.dcache_rate_pm

(* Packed-meta field decoders, shared by [replay] and by trace-level
   evaluators (the all-geometry DSE sweep) so both read the exact same
   event fields.  Layout documented at the top of this file. *)
let[@inline] meta_cls_code m = m land 0x7
let[@inline] meta_taken m = m land 0x8 <> 0
let[@inline] meta_backward m = m land 0x10 <> 0
let[@inline] meta_mem_words m = (m lsr 5) land 0x3F
let[@inline] meta_reads m = (m lsr 11) land 0x1FFFF
let[@inline] meta_writes m = (m lsr 28) land 0x1FFFF
let[@inline] meta_dmisses m = (m lsr 45) land 0x3F

let iter t f =
  let full = t.chunk_events * ints_per_event in
  for ci = 0 to t.nchunks - 1 do
    let chunk = t.chunks.(ci) in
    let used = if ci = t.nchunks - 1 then t.cur_used else full in
    let i = ref 0 in
    while !i < used do
      f chunk.(!i) chunk.(!i + 1);
      i := !i + 2
    done
  done

let cls_code : Pipeline.insn_class -> int = function
  | Pipeline.Alu -> 0
  | Pipeline.Mul -> 1
  | Pipeline.Load -> 2
  | Pipeline.Store -> 3
  | Pipeline.Branch -> 4
  | Pipeline.System -> 5

let cls_of_code = function
  | 0 -> Pipeline.Alu
  | 1 -> Pipeline.Mul
  | 2 -> Pipeline.Load
  | 3 -> Pipeline.Store
  | 4 -> Pipeline.Branch
  | _ -> Pipeline.System

let grow t =
  if t.nchunks = Array.length t.chunks then begin
    let spine = Array.make (2 * t.nchunks) [||] in
    Array.blit t.chunks 0 spine 0 t.nchunks;
    t.chunks <- spine
  end;
  let c = Array.make (t.chunk_events * ints_per_event) 0 in
  t.chunks.(t.nchunks) <- c;
  t.nchunks <- t.nchunks + 1;
  t.cur <- c;
  t.cur_used <- 0

let record t ~addr ~cls ~reads ~writes ~taken ~backward ~dmisses ~mem_words =
  if t.cur_used = t.chunk_events * ints_per_event then grow t;
  let meta =
    cls_code cls
    lor (Bool.to_int taken lsl 3)
    lor (Bool.to_int backward lsl 4)
    lor (mem_words lsl 5)
    lor (reads lsl 11)
    lor (writes lsl 28)
    lor (dmisses lsl 45)
  in
  let i = t.cur_used in
  t.cur.(i) <- addr;
  t.cur.(i + 1) <- meta;
  t.cur_used <- i + 2;
  t.len <- t.len + 1

type stats = {
  instructions : int;
  cycles : int;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

(* the SA-1100's 8 KB data cache, identical in all four configurations *)
let dcache_cfg = Pf_cache.Icache.config ~size_bytes:(8 * 1024) ()

let replay ?pipeline_cfg ?power_params ?(classify = false) ?cache ~cache_cfg
    ~fetch_data t =
  let cache =
    match cache with
    | Some c -> c
    | None -> Pf_cache.Icache.create ~classify cache_cfg
  in
  let geometry = Pf_power.Geometry.of_config cache_cfg in
  let account = Pf_power.Account.create ?params:power_params geometry in
  (* no [dcache]: the data side is driven from the recorded miss counts *)
  let pipe =
    Pipeline.create ?config:pipeline_cfg ~cache ~account ~fetch_data ()
  in
  let size = t.isize in
  let full = t.chunk_events * ints_per_event in
  for ci = 0 to t.nchunks - 1 do
    let chunk = t.chunks.(ci) in
    let used = if ci = t.nchunks - 1 then t.cur_used else full in
    let i = ref 0 in
    while !i < used do
      let addr = chunk.(!i) in
      let meta = chunk.(!i + 1) in
      Pipeline.issue pipe
        ~backward:(meta_backward meta)
        ~mem_addr:(-1)
        ~dmisses:(meta_dmisses meta)
        ~addr ~size
        ~cls:(cls_of_code (meta_cls_code meta))
        ~reads:(meta_reads meta)
        ~writes:(meta_writes meta)
        ~taken:(meta_taken meta)
        ~mem_words:(meta_mem_words meta);
      i := !i + 2
    done
  done;
  {
    instructions = Pipeline.instructions pipe;
    cycles = Pipeline.cycles pipe;
    fetch_accesses = Pipeline.fetch_accesses pipe;
    cache_accesses = Pf_cache.Icache.stats_accesses cache;
    cache_misses = Pf_cache.Icache.stats_misses cache;
    miss_rate_per_million = Pf_cache.Icache.miss_rate_per_million cache;
    dcache_miss_rate_pm = t.dcache_rate_pm;
    power = Pf_power.Account.report account;
  }
