(* Two ints per event, stored in fixed-size chunks so recording never
   copies what is already written (a doubling flat array would).

     slot 0: fetch pc
     slot 1: packed meta — cls(3) | taken(1) | backward(1) | mem_words(6)
             | reads(17) | writes(17) | dmisses(6)

   Register masks are 17 bits wide: r0-r14 plus the over-provisioned FITS
   scratch register (index 16).  [dmisses] is the D-cache miss count the
   recording run observed for this event: the 8 KB D-cache is identical
   in every configuration, so a replay charges the recorded stalls
   instead of re-simulating the data side (and the trace needs no memory
   addresses at all).

   Block-granular events: the block-compiled engines emit a fused ALU run
   as ONE two-int event — slot 0 is [-1 - tid] (negative, so per-insn
   events, whose slot 0 is a non-negative pc, are unambiguous), where
   [tid] indexes a pairs table registered once per static block via
   [register_pairs]; slot 1 packs the run's offset in that table (low 32
   bits) and its event count (high bits).  Every consumer ([iter],
   [replay], and through them the DSE sweep) expands a block event to the
   identical per-instruction (pc, meta) stream the table holds — the
   compression is invisible outside this module, but a recording writes
   and a replay reads two ints per RUN instead of two per instruction,
   and the tables stay cache-hot across the block's executions. *)

let ints_per_event = 2

type t = {
  isize : int;
  chunk_events : int;
  mutable chunks : int array array;
  mutable nchunks : int;      (* chunks in use *)
  mutable cur : int array;    (* == chunks.(nchunks - 1) *)
  mutable cur_used : int;     (* ints used in [cur] *)
  mutable len : int;          (* total events *)
  mutable dcache_rate_pm : float;
      (* the recording run's D-cache miss rate, carried to replays *)
  mutable ptabs : int array array;  (* registered block pairs tables *)
  mutable nptabs : int;
}

let create ?(chunk_events = 65536) ~isize () =
  if chunk_events <= 0 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
      ~where:"cpu.trace" "chunk_events must be positive (got %d)" chunk_events;
  let first = Array.make (chunk_events * ints_per_event) 0 in
  {
    isize;
    chunk_events;
    chunks = [| first |];
    nchunks = 1;
    cur = first;
    cur_used = 0;
    len = 0;
    dcache_rate_pm = 0.0;
    ptabs = [||];
    nptabs = 0;
  }

let isize t = t.isize
let length t = t.len
let set_dcache_rate t pm = t.dcache_rate_pm <- pm
let dcache_rate t = t.dcache_rate_pm

(* Packed-meta field decoders, shared by [replay] and by trace-level
   evaluators (the all-geometry DSE sweep) so both read the exact same
   event fields.  Layout documented at the top of this file. *)
let[@inline] meta_cls_code m = m land 0x7
let[@inline] meta_taken m = m land 0x8 <> 0
let[@inline] meta_backward m = m land 0x10 <> 0
let[@inline] meta_mem_words m = (m lsr 5) land 0x3F
let[@inline] meta_reads m = (m lsr 11) land 0x1FFFF
let[@inline] meta_writes m = (m lsr 28) land 0x1FFFF
let[@inline] meta_dmisses m = (m lsr 45) land 0x3F

let[@inline] span_pos w = w land 0xFFFFFFFF
let[@inline] span_n w = w lsr 32

let iter t f =
  let full = t.chunk_events * ints_per_event in
  for ci = 0 to t.nchunks - 1 do
    let chunk = t.chunks.(ci) in
    let used = if ci = t.nchunks - 1 then t.cur_used else full in
    let i = ref 0 in
    while !i < used do
      let a = chunk.(!i) in
      if a >= 0 then f a chunk.(!i + 1)
      else begin
        (* block event: expand the referenced run of table pairs *)
        let tab = t.ptabs.(-1 - a) in
        let w = chunk.(!i + 1) in
        let pos = span_pos w and n = span_n w in
        for k = 0 to n - 1 do
          f tab.(pos + (2 * k)) tab.(pos + (2 * k) + 1)
        done
      end;
      i := !i + 2
    done
  done

(* Per-slot execution counts of the recorded stream.  The trace is the
   executed instruction sequence, so for an ARM recording this equals
   what a dedicated counting run ([Synthesis.dyn_counts_of_run]'s
   [Pexec.run_counting]) produces — the harness derives its synthesis
   profile from the trace it just recorded instead of executing the
   program a fifth time. *)
let exec_counts t ~base ~n =
  let counts = Array.make n 0 in
  let shift = if t.isize = 4 then 2 else 1 in
  iter t (fun addr _ ->
      let w = (addr - base) asr shift in
      if w >= 0 && w < n then counts.(w) <- counts.(w) + 1);
  counts

let cls_code : Pipeline.insn_class -> int = function
  | Pipeline.Alu -> 0
  | Pipeline.Mul -> 1
  | Pipeline.Load -> 2
  | Pipeline.Store -> 3
  | Pipeline.Branch -> 4
  | Pipeline.System -> 5

let cls_of_code = function
  | 0 -> Pipeline.Alu
  | 1 -> Pipeline.Mul
  | 2 -> Pipeline.Load
  | 3 -> Pipeline.Store
  | 4 -> Pipeline.Branch
  | _ -> Pipeline.System

let grow t =
  if t.nchunks = Array.length t.chunks then begin
    let spine = Array.make (2 * t.nchunks) [||] in
    Array.blit t.chunks 0 spine 0 t.nchunks;
    t.chunks <- spine
  end;
  let c = Array.make (t.chunk_events * ints_per_event) 0 in
  t.chunks.(t.nchunks) <- c;
  t.nchunks <- t.nchunks + 1;
  t.cur <- c;
  t.cur_used <- 0

let record t ~addr ~cls ~reads ~writes ~taken ~backward ~dmisses ~mem_words =
  if t.cur_used = t.chunk_events * ints_per_event then grow t;
  let meta =
    cls_code cls
    lor (Bool.to_int taken lsl 3)
    lor (Bool.to_int backward lsl 4)
    lor (mem_words lsl 5)
    lor (reads lsl 11)
    lor (writes lsl 28)
    lor (dmisses lsl 45)
  in
  let i = t.cur_used in
  t.cur.(i) <- addr;
  t.cur.(i + 1) <- meta;
  t.cur_used <- i + 2;
  t.len <- t.len + 1

(* Pre-packed recording for the block-compiled engine: the static part of
   an event's meta word is a per-instruction constant computed once at
   block-compile time; the runtime patches in the dynamic fields and
   appends.  [record t ...] and [record_packed t ~meta:(static_meta ...
   lor dynamic bits)] produce identical words by construction. *)

let[@inline] static_meta ~cls_code ~backward ~reads ~writes =
  cls_code
  lor (Bool.to_int backward lsl 4)
  lor (reads lsl 11)
  lor (writes lsl 28)

let[@inline] dynamic_meta ~taken ~mem_words ~dmisses =
  (Bool.to_int taken lsl 3) lor (mem_words lsl 5) lor (dmisses lsl 45)

let record_packed t ~addr ~meta =
  if t.cur_used = t.chunk_events * ints_per_event then grow t;
  let i = t.cur_used in
  t.cur.(i) <- addr;
  t.cur.(i + 1) <- meta;
  t.cur_used <- i + 2;
  t.len <- t.len + 1

(* Block-granular recording: the compiled engines register each static
   block's precomputed (addr, meta) pairs table once, then append a fused
   ALU run as a single two-int reference into it (encoding documented at
   the top of this file).  [iter] and [replay] expand the reference to
   the identical per-instruction stream [n] [record_packed] calls would
   have produced. *)
let register_pairs t pairs =
  if t.nptabs = Array.length t.ptabs then begin
    let spine = Array.make (max 8 (2 * t.nptabs)) [||] in
    Array.blit t.ptabs 0 spine 0 t.nptabs;
    t.ptabs <- spine
  end;
  t.ptabs.(t.nptabs) <- pairs;
  t.nptabs <- t.nptabs + 1;
  t.nptabs - 1

let record_span t ~tid ~pos ~n =
  if t.cur_used = t.chunk_events * ints_per_event then grow t;
  let i = t.cur_used in
  t.cur.(i) <- -1 - tid;
  t.cur.(i + 1) <- pos lor (n lsl 32);
  t.cur_used <- i + 2;
  t.len <- t.len + n

type stats = {
  instructions : int;
  cycles : int;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

(* the SA-1100's 8 KB data cache, identical in all four configurations *)
let dcache_cfg = Pf_cache.Icache.config ~size_bytes:(8 * 1024) ()

let replay ?pipeline_cfg ?power_params ?(classify = false) ?cache ?seq
    ~cache_cfg ~fetch_data t =
  let cache =
    match cache with
    | Some c -> c
    | None -> Pf_cache.Icache.create ~classify cache_cfg
  in
  let geometry = Pf_power.Geometry.of_config cache_cfg in
  let account = Pf_power.Account.create ?params:power_params geometry in
  (* no [dcache]: the data side is driven from the recorded miss counts *)
  let pipe =
    Pipeline.create ?config:pipeline_cfg ~cache ~account ~fetch_data ()
  in
  let size = t.isize in
  let full = t.chunk_events * ints_per_event in
  (* Events whose low bits and dmisses field are all zero are exactly the
     shape [Pipeline.issue_alu] covers (cls = Alu, not taken, forward,
     no memory words, no D-cache misses) — the dominant event class in
     every benchmark.  Consecutive such events form a span dispatched as
     one [Pipeline.issue_alu_span] call (local pairing state, batched
     power accounting); a span cut by a chunk boundary is replayed as two
     spans, which is equivalent — span boundaries carry no state. *)
  let alu_mask = 0x7FF lor (0x3F lsl 45) in
  (* span-scan cursors, hoisted so the scan allocates nothing per span *)
  let i = ref 0 and j = ref 0 and expect = ref 0 in
  for ci = 0 to t.nchunks - 1 do
    let chunk = t.chunks.(ci) in
    let used = if ci = t.nchunks - 1 then t.cur_used else full in
    i := 0;
    while !i < used do
      let addr = chunk.(!i) in
      let meta = chunk.(!i + 1) in
      if addr < 0 then begin
        (* block event: the referenced pairs are an ALU-shaped,
           strictly sequential run by construction, so they dispatch to
           the span kernels with no scanning at all *)
        let tab = t.ptabs.(-1 - addr) in
        let pos = span_pos meta and n = span_n meta in
        (match seq with
        | Some (seq_tog, wbase) ->
            Pipeline.issue_alu_seq_span pipe ~ev:tab ~pos ~n ~size ~seq_tog
              ~wbase
        | None -> Pipeline.issue_alu_span pipe ~ev:tab ~pos ~n);
        i := !i + 2
      end
      else if meta land alu_mask = 0 then begin
        (match seq with
        | Some (seq_tog, wbase) ->
            (* extend the span only while addresses stay sequential, the
               precondition of the line-batched kernel (a straight-line
               run always is; the check keeps exactness unconditional) *)
            j := !i + 2;
            expect := addr + size;
            while
              !j < used
              && Array.unsafe_get chunk (!j + 1) land alu_mask = 0
              && Array.unsafe_get chunk !j = !expect
            do
              j := !j + 2;
              expect := !expect + size
            done;
            Pipeline.issue_alu_seq_span pipe ~ev:chunk ~pos:!i
              ~n:((!j - !i) lsr 1) ~size ~seq_tog ~wbase;
            i := !j
        | None ->
            j := !i + 2;
            (* the slot-0 sign test also stops the scan at block events,
               whose slot 1 is not a meta word *)
            while
              !j < used
              && Array.unsafe_get chunk !j >= 0
              && Array.unsafe_get chunk (!j + 1) land alu_mask = 0
            do
              j := !j + 2
            done;
            Pipeline.issue_alu_span pipe ~ev:chunk ~pos:!i
              ~n:((!j - !i) lsr 1);
            i := !j)
      end
      else begin
        Pipeline.issue pipe
          ~backward:(meta_backward meta)
          ~mem_addr:(-1)
          ~dmisses:(meta_dmisses meta)
          ~addr ~size
          ~cls:(cls_of_code (meta_cls_code meta))
          ~reads:(meta_reads meta)
          ~writes:(meta_writes meta)
          ~taken:(meta_taken meta)
          ~mem_words:(meta_mem_words meta);
        i := !i + 2
      end
    done
  done;
  {
    instructions = Pipeline.instructions pipe;
    cycles = Pipeline.cycles pipe;
    fetch_accesses = Pipeline.fetch_accesses pipe;
    cache_accesses = Pf_cache.Icache.stats_accesses cache;
    cache_misses = Pf_cache.Icache.stats_misses cache;
    miss_rate_per_million = Pf_cache.Icache.miss_rate_per_million cache;
    dcache_miss_rate_pm = t.dcache_rate_pm;
    power = Pf_power.Account.report account;
  }
