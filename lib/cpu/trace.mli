(** Compact instruction-stream traces: execute once, replay through many
    cache geometries.

    The paper's four configurations pair two instruction streams (ARM,
    FITS) with two I-cache sizes (16 KB, 8 KB).  The stream a program
    executes is a function of the ISA alone — cache geometry changes
    timing and power, never architectural behaviour — so the harness
    executes each ISA once, recording everything the timing/power stack
    consumes, and replays the recording through the other geometry.
    "Application Specific Cache Simulation Analysis for ASIP" (PAPERS.md)
    applies the same trace-once/replay-many structure to its cache design
    space sweep.

    A trace stores exactly the arguments of each {!Pipeline.issue} call:
    fetch address, instruction class, read/write register masks,
    taken/backward branch bits, memory word count — plus the observed
    D-cache miss count, so a replay charges the recorded data-side stalls
    instead of re-simulating the (configuration-invariant) D-cache.
    Storage is a chunked flat [int array] — two ints per retired
    instruction, no per-event allocation — so recording costs a few stores
    per instruction and a 10M-instruction trace takes ~160 MB at worst
    and typically far less. *)

type t

val create : ?chunk_events:int -> isize:int -> unit -> t
(** Fresh empty trace for instructions of [isize] bytes (4 = ARM,
    2 = FITS).  [chunk_events] (default 65536) sizes the growth unit. *)

val isize : t -> int

val length : t -> int
(** Retired instructions recorded so far. *)

val cls_code : Pipeline.insn_class -> int
(** Stable numbering of instruction classes (Alu = 0 ... System = 5) used
    in packed trace events and by {!Pf_arm.Pexec} metadata. *)

val cls_of_code : int -> Pipeline.insn_class
(** Inverse of {!cls_code}; out-of-range codes map to [System]. *)

val record :
  t ->
  addr:int ->
  cls:Pipeline.insn_class ->
  reads:int ->
  writes:int ->
  taken:bool ->
  backward:bool ->
  dmisses:int ->
  mem_words:int ->
  unit
(** Append one event.  Arguments mirror {!Pipeline.issue}; [dmisses] is
    the D-cache miss count the recording pipeline observed for this event
    ({!Pipeline.last_dcache_misses}, recorded {e after} issuing). *)

val static_meta :
  cls_code:int -> backward:bool -> reads:int -> writes:int -> int
(** The static (per-static-instruction constant) part of a packed meta
    word: class, branch direction and register masks, with the dynamic
    fields (taken, mem_words, dmisses) zero.  The block-compiled engine
    computes this once per instruction at block-compile time. *)

val dynamic_meta : taken:bool -> mem_words:int -> dmisses:int -> int
(** The dynamic part of a packed meta word; [static_meta ... lor
    dynamic_meta ...] equals what {!record} packs from the same fields. *)

val record_packed : t -> addr:int -> meta:int -> unit
(** Append one event whose meta word is already packed ({!static_meta}
    [lor] {!dynamic_meta}).  Identical trace bytes to {!record}; exists so
    a compiled block pays two stores per instruction instead of re-packing
    seven fields. *)

val register_pairs : t -> int array -> int
(** Register a compiled block's pairs table — (addr, meta) two ints per
    instruction, [record_packed]'s layout, ALU-shaped and strictly
    sequential — returning the table id {!record_span} references.  The
    table is aliased, not copied: it must not change for the life of the
    trace (the engines' tables are block-compile-time constants). *)

val record_span : t -> tid:int -> pos:int -> n:int -> unit
(** Append a fused ALU run of [n] events as ONE block-granular trace
    event referencing [n] pairs of registered table [tid] starting at int
    offset [pos].  Consumers expand it to exactly the stream [n]
    {!record_packed} calls of those pairs would have recorded; the
    recording itself is two stores regardless of [n]. *)

val set_dcache_rate : t -> float -> unit
(** Store the recording run's final D-cache miss rate (per million);
    replays report it verbatim — the data-side stream is identical in
    every configuration, so re-measuring it would only cost time. *)

val dcache_rate : t -> float
(** The stored D-cache miss rate (per million); what {!replay} reports as
    [dcache_miss_rate_pm]. *)

(** {2 Raw event iteration}

    Trace-level evaluators (the all-geometry DSE sweep kernel) process
    events without driving a pipeline object per geometry.  They read the
    same packed events through the same decoders [replay] uses. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f addr meta] for every recorded event in order.
    [meta] is the packed metadata word; decode it with the [meta_*]
    accessors below. *)

val meta_cls_code : int -> int
(** Instruction-class code of a packed meta word (see {!cls_of_code}). *)

val meta_taken : int -> bool
val meta_backward : int -> bool
val meta_mem_words : int -> int
val meta_reads : int -> int
val meta_writes : int -> int

val meta_dmisses : int -> int
(** Recorded D-cache miss count of the event (what [replay] passes to
    {!Pipeline.issue} as [dmisses]). *)

val exec_counts : t -> base:int -> n:int -> int array
(** Per-slot execution counts of the recorded stream: slot
    [(addr - base) / isize] of an [n]-slot code segment.  For an ARM
    recording this is bit-identical to the per-word profile a dedicated
    counting run produces — the trace {e is} the executed sequence —
    letting the harness feed instruction-set synthesis without a separate
    profiling execution. *)

(** What a replay measures — the cache/timing/power half of a runner's
    result record.  Identical to what the same instruction stream produces
    when simulated directly: replay drives the same [Pipeline.issue]
    sequence with the same arguments. *)
type stats = {
  instructions : int;
  cycles : int;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

val dcache_cfg : Pf_cache.Icache.config
(** The fixed SA-1100-like 8 KB data cache shared by every configuration
    (simulated by recording runs only; replays use the recorded misses). *)

val replay :
  ?pipeline_cfg:Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?cache:Pf_cache.Icache.t ->
  ?seq:int array * int ->
  cache_cfg:Pf_cache.Icache.config ->
  fetch_data:(int -> int) ->
  t ->
  stats
(** Drive a fresh I-cache ([cache_cfg]), pipeline and power account with
    the recorded stream; data-side stalls come from the recorded miss
    counts.  [fetch_data] must be the same word-at-address function the
    execute phase used (the image is immutable, so the words driven onto
    the fetch bus are reproduced exactly).  [cache] substitutes a
    pre-built I-cache instance, as in the direct runners.  [seq] =
    [(Pipeline.seq_toggle_prefix of the code words, code_base / 4)]
    routes sequential ALU runs through the line-batched span kernel
    ({!Pipeline.issue_alu_seq_span}) — identical results, several times
    faster; omit it and replay uses the per-access span path. *)
