open Pf_util

type variant = Arm | Fits of int option

let variant_label = function
  | Arm -> "arm"
  | Fits None -> "fits"
  | Fits (Some b) -> Printf.sprintf "fits@%d" b

let variant_is_arm = function Arm -> true | Fits _ -> false

type metrics = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
  gate_count : int;
}

type point = {
  variant : variant;
  geometry : Pf_cache.Icache.config;
  metrics : metrics;
}

type bench_run = {
  name : string;
  category : string;
  points : point list;
  replayed_events : int;
  outputs_consistent : bool;
}

type row = {
  bench : string;
  outcome : (bench_run, Sim_error.t) result;
  elapsed_s : float;
}

type t = {
  space : Space.t;
  geometries : Pf_cache.Icache.config list;
  variants : variant list;
  rows : row list;
  completed : int;
  total : int;
  jobs : int;
  engine : Space.engine;
}

(* Per-point power: the coefficients scale analytically with the read
   width (Account.Params.for_geometry) and the gate count enters through
   the geometry itself.  At both paper points the scaled params equal the
   defaults exactly, so those grid entries coincide bit-for-bit with the
   harness numbers. *)
let params_for cfg =
  Pf_power.Account.Params.for_geometry (Pf_power.Geometry.of_config cfg)

let gates_for cfg = (Pf_power.Geometry.of_config cfg).Pf_power.Geometry.gate_count

let metrics_of_arm cfg (r : Pf_cpu.Arm_run.result) =
  {
    instructions = r.Pf_cpu.Arm_run.instructions;
    cycles = r.Pf_cpu.Arm_run.cycles;
    ipc = r.Pf_cpu.Arm_run.ipc;
    fetch_accesses = r.Pf_cpu.Arm_run.fetch_accesses;
    cache_accesses = r.Pf_cpu.Arm_run.cache_accesses;
    cache_misses = r.Pf_cpu.Arm_run.cache_misses;
    miss_rate_pm = r.Pf_cpu.Arm_run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_cpu.Arm_run.dcache_miss_rate_pm;
    power = r.Pf_cpu.Arm_run.power;
    gate_count = gates_for cfg;
  }

let metrics_of_fits cfg (r : Pf_fits.Run.result) =
  {
    (* source (ARM) instructions, as everywhere in the reporting stack:
       IPC and per-instruction ratios compare like with like *)
    instructions = r.Pf_fits.Run.arm_instructions;
    cycles = r.Pf_fits.Run.cycles;
    ipc = r.Pf_fits.Run.ipc;
    fetch_accesses = r.Pf_fits.Run.fetch_accesses;
    cache_accesses = r.Pf_fits.Run.cache_accesses;
    cache_misses = r.Pf_fits.Run.cache_misses;
    miss_rate_pm = r.Pf_fits.Run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_fits.Run.dcache_miss_rate_pm;
    power = r.Pf_fits.Run.power;
    gate_count = gates_for cfg;
  }

let arm_sweep ~image ~output ~geometries trace =
  List.map
    (fun g ->
      let r =
        Pf_cpu.Arm_run.replay ~power_params:(params_for g) ~cache_cfg:g
          ~output image trace
      in
      { variant = Arm; geometry = g; metrics = metrics_of_arm g r })
    geometries

let fits_sweep ~dict_budget ~like ~geometries tr trace =
  List.map
    (fun g ->
      let r =
        Pf_fits.Run.replay ~power_params:(params_for g) ~cache_cfg:g ~like tr
          trace
      in
      { variant = Fits dict_budget; geometry = g; metrics = metrics_of_fits g r })
    geometries

(* Single-pass engine: one Sweep.run per recorded trace evaluates every
   geometry at once.  The metrics are assembled with exactly the
   expressions the replay runners use ([Arm_run.replay] /
   [Fits.Run.replay]), so a point is bit-identical whichever engine
   produced it — the sweep-vs-replay equivalence is asserted by
   test/test_dse.ml and by `powerfits explore --cross-check`. *)

let metrics_of_stats cfg ~instructions (s : Pf_cpu.Trace.stats) =
  {
    instructions;
    cycles = s.Pf_cpu.Trace.cycles;
    ipc =
      (if s.Pf_cpu.Trace.cycles = 0 then 0.0
       else float_of_int instructions /. float_of_int s.Pf_cpu.Trace.cycles);
    fetch_accesses = s.Pf_cpu.Trace.fetch_accesses;
    cache_accesses = s.Pf_cpu.Trace.cache_accesses;
    cache_misses = s.Pf_cpu.Trace.cache_misses;
    miss_rate_pm = s.Pf_cpu.Trace.miss_rate_per_million;
    dcache_miss_rate_pm = s.Pf_cpu.Trace.dcache_miss_rate_pm;
    power = s.Pf_cpu.Trace.power;
    gate_count = gates_for cfg;
  }

let arm_sweep_1pass ~image ~geometries trace =
  let r =
    Sweep.run ~params_of:params_for ~geometries
      ~fetch_data:(fun addr -> Pf_arm.Image.word_at image addr)
      trace
  in
  List.mapi
    (fun i g ->
      let s = r.Sweep.stats.(i) in
      {
        variant = Arm;
        geometry = g;
        metrics =
          metrics_of_stats g ~instructions:s.Pf_cpu.Trace.instructions s;
      })
    geometries

let fits_sweep_1pass ~dict_budget ~(like : Pf_fits.Run.result) ~geometries
    (tr : Pf_fits.Translate.t) trace =
  let code_base = tr.Pf_fits.Translate.code_base in
  let words = tr.Pf_fits.Translate.words in
  let r =
    Sweep.run ~params_of:params_for ~geometries
      ~fetch_data:(fun addr -> words.((addr - code_base) lsr 2))
      trace
  in
  List.mapi
    (fun i g ->
      {
        variant = Fits dict_budget;
        geometry = g;
        metrics =
          metrics_of_stats g
            ~instructions:like.Pf_fits.Run.arm_instructions
            r.Sweep.stats.(i);
      })
    geometries

(* A benchmark's recorded executions, separated from the geometry sweeps
   so the expensive half can be shared: the traces and translations are a
   function of (program, max_steps, dict budgets) alone — geometry never
   enters — so one recording serves any number of geometry evaluations
   (the serve daemon shares them across explore-point requests).  Traces
   and images are immutable once recorded; sweeping a recording only
   reads it, so concurrent sweeps of a shared recording are safe. *)
type recording = {
  rec_name : string;
  rec_category : string;
  rec_image : Pf_arm.Image.t;
  rec_arm_trace : Pf_cpu.Trace.t;
  rec_arm_output : string;
  rec_fits :
    (int option * Pf_fits.Translate.t * Pf_cpu.Trace.t * Pf_fits.Run.result)
    list;
  rec_consistent : bool;
}

(* 1 + |dict_budgets| recording executions under the block-compiled
   engine (results are engine-invariant; the compiled engine is just the
   fastest way to produce them).  The ARM recording doubles as the
   profiling run — [Trace.exec_counts] of its trace is bit-identical to
   a dedicated counting execution — so synthesis costs no extra run. *)
let record ?(scale = 1) ?max_steps ?deadline ~dict_budgets
    (b : Pf_mibench.Registry.benchmark) =
  let check () = Deadline.check ~where:"dse.explore" deadline in
  let p = b.Pf_mibench.Registry.program ~scale in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  check ();
  let arm_trace = Pf_cpu.Trace.create ~isize:4 () in
  let arm_r =
    Pf_cpu.Arm_run.run ~engine:Pf_cpu.Arm_run.Compiled
      ~cache_cfg:Space.recording_point ?max_steps ?deadline ~trace:arm_trace
      image
  in
  check ();
  let dyn_counts =
    Pf_cpu.Trace.exec_counts arm_trace ~base:image.Pf_arm.Image.code_base
      ~n:(Array.length image.Pf_arm.Image.words)
  in
  let reference_output = arm_r.Pf_cpu.Arm_run.output in
  let consistent = ref true in
  let fits =
    List.map
      (fun budget ->
        let syn =
          match budget with
          | None -> Pf_fits.Synthesis.synthesize image ~dyn_counts
          | Some dict_budget ->
              Pf_fits.Synthesis.synthesize_suite ~dict_budget
                [
                  {
                    Pf_fits.Synthesis.p_image = image;
                    p_dyn_counts = dyn_counts;
                    p_mult = 1;
                  };
                ]
        in
        let tr =
          Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image
        in
        check ();
        let ftrace = Pf_cpu.Trace.create ~isize:2 () in
        let f_r =
          Pf_fits.Run.run ~engine:Pf_fits.Run.Compiled
            ~cache_cfg:Space.recording_point ?max_steps ?deadline
            ~trace:ftrace tr
        in
        check ();
        if f_r.Pf_fits.Run.output <> reference_output then
          consistent := false;
        (budget, tr, ftrace, f_r))
      dict_budgets
  in
  {
    rec_name = b.Pf_mibench.Registry.name;
    rec_category = b.Pf_mibench.Registry.category;
    rec_image = image;
    rec_arm_trace = arm_trace;
    rec_arm_output = reference_output;
    rec_fits = fits;
    rec_consistent = !consistent;
  }

(* The geometry half: replay (or single-pass sweep) a recording through
   every grid point.  Read-only on the recording. *)
let sweep_recording ?(engine = Space.Replay) ~geometries (r : recording) =
  let n_geoms = List.length geometries in
  let arm_points =
    match engine with
    | Space.Replay ->
        arm_sweep ~image:r.rec_image ~output:r.rec_arm_output ~geometries
          r.rec_arm_trace
    | Space.Sweep ->
        arm_sweep_1pass ~image:r.rec_image ~geometries r.rec_arm_trace
  in
  let replayed = ref (n_geoms * Pf_cpu.Trace.length r.rec_arm_trace) in
  let fits_points =
    List.concat_map
      (fun (budget, tr, ftrace, f_r) ->
        replayed := !replayed + (n_geoms * Pf_cpu.Trace.length ftrace);
        match engine with
        | Space.Replay ->
            fits_sweep ~dict_budget:budget ~like:f_r ~geometries tr ftrace
        | Space.Sweep ->
            fits_sweep_1pass ~dict_budget:budget ~like:f_r ~geometries tr
              ftrace)
      r.rec_fits
  in
  {
    name = r.rec_name;
    category = r.rec_category;
    points = arm_points @ fits_points;
    replayed_events = !replayed;
    outputs_consistent = r.rec_consistent;
  }

let run_benchmark ?scale ?max_steps ?deadline ?engine ?recording ~geometries
    ~dict_budgets (b : Pf_mibench.Registry.benchmark) =
  let r =
    match recording with
    | Some r -> r
    | None -> record ?scale ?max_steps ?deadline ~dict_budgets b
  in
  sweep_recording ?engine ~geometries r

let default_wall_clock_s = 600.

let run ?(scale = 1) ?max_steps ?(wall_clock_s = default_wall_clock_s) ?jobs
    ?engine ?(benchmarks = Pf_mibench.Registry.all) space =
  Space.validate space;
  let geometries = Space.geometries space in
  let dict_budgets = space.Space.dict_budgets in
  let variants = Arm :: List.map (fun b -> Fits b) dict_budgets in
  let engine =
    match engine with Some e -> e | None -> Space.choose_engine space
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let rows =
    Pool.map ~jobs
      (fun (b : Pf_mibench.Registry.benchmark) ->
        let t0 = Unix.gettimeofday () in
        let deadline = Deadline.after ~seconds:wall_clock_s in
        let outcome =
          Sim_error.protect ~where:("dse." ^ b.Pf_mibench.Registry.name)
            (fun () ->
              run_benchmark ~scale ?max_steps ~deadline ~engine ~geometries
                ~dict_budgets b)
        in
        {
          bench = b.Pf_mibench.Registry.name;
          outcome;
          elapsed_s = Unix.gettimeofday () -. t0;
        })
      benchmarks
  in
  let completed =
    List.fold_left
      (fun c r -> if Result.is_ok r.outcome then c + 1 else c)
      0 rows
  in
  {
    space;
    geometries;
    variants;
    rows;
    completed;
    total = List.length rows;
    jobs;
    engine;
  }

let completed_runs t =
  List.filter_map
    (fun r -> match r.outcome with Ok b -> Some b | Error _ -> None)
    t.rows

let replayed_events t =
  List.fold_left
    (fun acc b -> acc + b.replayed_events)
    0 (completed_runs t)

let diverged t =
  List.exists (fun b -> not b.outputs_consistent) (completed_runs t)

let banner t =
  let b = Buffer.create 256 in
  Printf.bprintf b "%d of %d benchmarks completed (jobs=%d, engine=%s)"
    t.completed t.total t.jobs
    (Space.engine_label t.engine);
  List.iter
    (fun r ->
      match r.outcome with
      | Ok br ->
          if not br.outputs_consistent then
            Printf.bprintf b "\n  %s: DIVERGED (outputs differ from reference)"
              r.bench
      | Error e ->
          Printf.bprintf b "\n  %s: FAILED %s" r.bench (Sim_error.to_string e))
    t.rows;
  Buffer.contents b

(* ---- aggregation and frontiers ----------------------------------------- *)

let add_report (a : Pf_power.Account.report) (b : Pf_power.Account.report) =
  {
    Pf_power.Account.switching = a.Pf_power.Account.switching +. b.Pf_power.Account.switching;
    internal = a.Pf_power.Account.internal +. b.Pf_power.Account.internal;
    leakage = a.Pf_power.Account.leakage +. b.Pf_power.Account.leakage;
    total = a.Pf_power.Account.total +. b.Pf_power.Account.total;
    peak_power = Float.max a.Pf_power.Account.peak_power b.Pf_power.Account.peak_power;
    cycles = a.Pf_power.Account.cycles + b.Pf_power.Account.cycles;
  }

(* Suite aggregate per (variant, geometry): counts and energies sum;
   rates are recomputed from the summed counts (never averaged); the
   D-cache rate — constant per benchmark across geometries — is an
   instruction-weighted mean, and the weighted sum is finalized below.
   Rows are folded in suite order, so the float sums are performed in a
   fixed order regardless of --jobs. *)
let aggregate t =
  match completed_runs t with
  | [] -> []
  | first :: rest ->
      let acc =
        Array.of_list
          (List.map
             (fun p ->
               ( p.variant,
                 p.geometry,
                 {
                   p.metrics with
                   dcache_miss_rate_pm =
                     p.metrics.dcache_miss_rate_pm
                     *. float_of_int p.metrics.instructions;
                 } ))
             first.points)
      in
      List.iter
        (fun br ->
          List.iteri
            (fun i p ->
              let v, g, m = acc.(i) in
              (* completed rows all share the variant × geometry shape;
                 a mismatch means the explorer itself is broken *)
              if v <> p.variant || g <> p.geometry then
                Sim_error.raisef Sim_error.Internal ~where:"dse.explore"
                  "aggregate: point shape mismatch at index %d" i;
              acc.(i) <-
                ( v,
                  g,
                  {
                    instructions = m.instructions + p.metrics.instructions;
                    cycles = m.cycles + p.metrics.cycles;
                    ipc = 0.0;
                    fetch_accesses =
                      m.fetch_accesses + p.metrics.fetch_accesses;
                    cache_accesses =
                      m.cache_accesses + p.metrics.cache_accesses;
                    cache_misses = m.cache_misses + p.metrics.cache_misses;
                    miss_rate_pm = 0.0;
                    dcache_miss_rate_pm =
                      m.dcache_miss_rate_pm
                      +. p.metrics.dcache_miss_rate_pm
                         *. float_of_int p.metrics.instructions;
                    power = add_report m.power p.metrics.power;
                    gate_count = m.gate_count;
                  } ))
            br.points)
        rest;
      Array.to_list acc
      |> List.map (fun (variant, geometry, m) ->
             let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
             {
               variant;
               geometry;
               metrics =
                 {
                   m with
                   ipc = fdiv m.instructions m.cycles;
                   miss_rate_pm =
                     1_000_000.0 *. fdiv m.cache_misses m.cache_accesses;
                   dcache_miss_rate_pm =
                     (if m.instructions = 0 then 0.0
                      else
                        m.dcache_miss_rate_pm /. float_of_int m.instructions);
                 };
             })

let objectives p =
  {
    Pareto.energy = p.metrics.power.Pf_power.Account.total;
    ipc = p.metrics.ipc;
    miss_rate_pm = p.metrics.miss_rate_pm;
    area = float_of_int p.metrics.gate_count;
  }

let frontier_of points =
  Pareto.frontier (List.map (fun p -> (p, objectives p)) points)

(* ---- emitters ---------------------------------------------------------- *)

let f17 x = Printf.sprintf "%.17g" x

let on_frontier front p =
  List.exists (fun (q, _) -> q == p) front.Pareto.frontier

let csv_point buf ~group front (p : point) =
  let m = p.metrics in
  let pw = m.power in
  Printf.bprintf buf "%s,%s,%d,%d,%d,%d,%d,%s,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%d,%d\n"
    group
    (variant_label p.variant)
    p.geometry.Pf_cache.Icache.size_bytes
    p.geometry.Pf_cache.Icache.block_bytes
    p.geometry.Pf_cache.Icache.assoc m.instructions m.cycles (f17 m.ipc)
    m.fetch_accesses m.cache_accesses m.cache_misses (f17 m.miss_rate_pm)
    (f17 m.dcache_miss_rate_pm)
    (f17 pw.Pf_power.Account.switching)
    (f17 pw.Pf_power.Account.internal)
    (f17 pw.Pf_power.Account.leakage)
    (f17 pw.Pf_power.Account.total)
    (f17 (Pf_power.Account.avg_power pw))
    (f17 pw.Pf_power.Account.peak_power)
    m.gate_count
    (if on_frontier front p then 1 else 0)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "bench,variant,size_bytes,block_bytes,assoc,instructions,cycles,ipc,\
     fetch_accesses,cache_accesses,cache_misses,miss_rate_pm,\
     dcache_miss_rate_pm,e_switching,e_internal,e_leakage,e_total,\
     avg_power,peak_power,gates,pareto\n";
  List.iter
    (fun br ->
      let front = frontier_of br.points in
      List.iter (csv_point buf ~group:br.name front) br.points)
    (completed_runs t);
  (match aggregate t with
  | [] -> ()
  | pts ->
      let front = frontier_of pts in
      List.iter (csv_point buf ~group:"suite" front) pts);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_point buf front (p : point) =
  let m = p.metrics in
  let pw = m.power in
  Printf.bprintf buf
    "{\"variant\": \"%s\", \"size_bytes\": %d, \"block_bytes\": %d, \
     \"assoc\": %d, \"instructions\": %d, \"cycles\": %d, \"ipc\": %s, \
     \"fetch_accesses\": %d, \"cache_accesses\": %d, \"cache_misses\": %d, \
     \"miss_rate_pm\": %s, \"dcache_miss_rate_pm\": %s, \"e_switching\": %s, \
     \"e_internal\": %s, \"e_leakage\": %s, \"e_total\": %s, \
     \"avg_power\": %s, \"peak_power\": %s, \"gates\": %d, \"pareto\": %s}"
    (variant_label p.variant)
    p.geometry.Pf_cache.Icache.size_bytes
    p.geometry.Pf_cache.Icache.block_bytes
    p.geometry.Pf_cache.Icache.assoc m.instructions m.cycles (f17 m.ipc)
    m.fetch_accesses m.cache_accesses m.cache_misses (f17 m.miss_rate_pm)
    (f17 m.dcache_miss_rate_pm)
    (f17 pw.Pf_power.Account.switching)
    (f17 pw.Pf_power.Account.internal)
    (f17 pw.Pf_power.Account.leakage)
    (f17 pw.Pf_power.Account.total)
    (f17 (Pf_power.Account.avg_power pw))
    (f17 pw.Pf_power.Account.peak_power)
    m.gate_count
    (if on_frontier front p then "true" else "false")

let json_points buf pts =
  let front = frontier_of pts in
  Buffer.add_string buf "[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      json_point buf front p)
    pts;
  Buffer.add_string buf "]"

let to_json t =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf "{\n  \"schema\": 1,\n  \"jobs\": %d,\n  \"engine\": \"%s\",\n"
    t.jobs
    (Space.engine_label t.engine);
  Printf.bprintf buf "  \"geometries\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun g -> Printf.sprintf "\"%s\"" (Space.label g))
          t.geometries));
  Printf.bprintf buf "  \"variants\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun v -> Printf.sprintf "\"%s\"" (variant_label v))
          t.variants));
  Buffer.add_string buf "  \"benchmarks\": [\n";
  let first = ref true in
  List.iter
    (fun br ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"category\": \"%s\", \
         \"outputs_consistent\": %b, \"replayed_events\": %d, \"points\": "
        (json_escape br.name) (json_escape br.category) br.outputs_consistent
        br.replayed_events;
      json_points buf br.points;
      Buffer.add_string buf "}")
    (completed_runs t);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"failed\": [";
  let firstf = ref true in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok _ -> ()
      | Error e ->
          if not !firstf then Buffer.add_string buf ", ";
          firstf := false;
          Printf.bprintf buf "{\"bench\": \"%s\", \"error\": \"%s\"}"
            (json_escape r.bench)
            (json_escape (Sim_error.to_string e)))
    t.rows;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf "  \"suite\": ";
  (match aggregate t with
  | [] -> Buffer.add_string buf "[]"
  | pts -> json_points buf pts);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
