open Pf_util

type variant = Arm | Fits of int option

let variant_label = function
  | Arm -> "arm"
  | Fits None -> "fits"
  | Fits (Some b) -> Printf.sprintf "fits@%d" b

let variant_is_arm = function Arm -> true | Fits _ -> false

type metrics = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
  gate_count : int;
}

type point = {
  variant : variant;
  geometry : Pf_cache.Icache.config;
  metrics : metrics;
}

type bench_run = {
  name : string;
  category : string;
  points : point list;
  replayed_events : int;
  outputs_consistent : bool;
}

type row = {
  bench : string;
  outcome : (bench_run, Sim_error.t) result;
  elapsed_s : float;
}

type t = {
  space : Space.t;
  geometries : Pf_cache.Icache.config list;
  variants : variant list;
  rows : row list;
  completed : int;
  total : int;
  jobs : int;
  engine : Space.engine;
}

(* Per-point power: the coefficients scale analytically with the read
   width (Account.Params.for_geometry) and the gate count enters through
   the geometry itself.  At both paper points the scaled params equal the
   defaults exactly, so those grid entries coincide bit-for-bit with the
   harness numbers. *)
let params_for cfg =
  Pf_power.Account.Params.for_geometry (Pf_power.Geometry.of_config cfg)

let gates_for cfg = (Pf_power.Geometry.of_config cfg).Pf_power.Geometry.gate_count

let metrics_of_arm cfg (r : Pf_cpu.Arm_run.result) =
  {
    instructions = r.Pf_cpu.Arm_run.instructions;
    cycles = r.Pf_cpu.Arm_run.cycles;
    ipc = r.Pf_cpu.Arm_run.ipc;
    fetch_accesses = r.Pf_cpu.Arm_run.fetch_accesses;
    cache_accesses = r.Pf_cpu.Arm_run.cache_accesses;
    cache_misses = r.Pf_cpu.Arm_run.cache_misses;
    miss_rate_pm = r.Pf_cpu.Arm_run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_cpu.Arm_run.dcache_miss_rate_pm;
    power = r.Pf_cpu.Arm_run.power;
    gate_count = gates_for cfg;
  }

let metrics_of_fits cfg (r : Pf_fits.Run.result) =
  {
    (* source (ARM) instructions, as everywhere in the reporting stack:
       IPC and per-instruction ratios compare like with like *)
    instructions = r.Pf_fits.Run.arm_instructions;
    cycles = r.Pf_fits.Run.cycles;
    ipc = r.Pf_fits.Run.ipc;
    fetch_accesses = r.Pf_fits.Run.fetch_accesses;
    cache_accesses = r.Pf_fits.Run.cache_accesses;
    cache_misses = r.Pf_fits.Run.cache_misses;
    miss_rate_pm = r.Pf_fits.Run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_fits.Run.dcache_miss_rate_pm;
    power = r.Pf_fits.Run.power;
    gate_count = gates_for cfg;
  }

let arm_sweep ~image ~output ~geometries trace =
  List.map
    (fun g ->
      let r =
        Pf_cpu.Arm_run.replay ~power_params:(params_for g) ~cache_cfg:g
          ~output image trace
      in
      { variant = Arm; geometry = g; metrics = metrics_of_arm g r })
    geometries

let fits_sweep ~dict_budget ~like ~geometries tr trace =
  List.map
    (fun g ->
      let r =
        Pf_fits.Run.replay ~power_params:(params_for g) ~cache_cfg:g ~like tr
          trace
      in
      { variant = Fits dict_budget; geometry = g; metrics = metrics_of_fits g r })
    geometries

(* Single-pass engine: one Sweep.run per recorded trace evaluates every
   geometry at once.  The metrics are assembled with exactly the
   expressions the replay runners use ([Arm_run.replay] /
   [Fits.Run.replay]), so a point is bit-identical whichever engine
   produced it — the sweep-vs-replay equivalence is asserted by
   test/test_dse.ml and by `powerfits explore --cross-check`. *)

let metrics_of_stats cfg ~instructions (s : Pf_cpu.Trace.stats) =
  {
    instructions;
    cycles = s.Pf_cpu.Trace.cycles;
    ipc =
      (if s.Pf_cpu.Trace.cycles = 0 then 0.0
       else float_of_int instructions /. float_of_int s.Pf_cpu.Trace.cycles);
    fetch_accesses = s.Pf_cpu.Trace.fetch_accesses;
    cache_accesses = s.Pf_cpu.Trace.cache_accesses;
    cache_misses = s.Pf_cpu.Trace.cache_misses;
    miss_rate_pm = s.Pf_cpu.Trace.miss_rate_per_million;
    dcache_miss_rate_pm = s.Pf_cpu.Trace.dcache_miss_rate_pm;
    power = s.Pf_cpu.Trace.power;
    gate_count = gates_for cfg;
  }

let arm_sweep_1pass ~image ~geometries trace =
  let r =
    Sweep.run ~params_of:params_for ~geometries
      ~fetch_data:(fun addr -> Pf_arm.Image.word_at image addr)
      trace
  in
  List.mapi
    (fun i g ->
      let s = r.Sweep.stats.(i) in
      {
        variant = Arm;
        geometry = g;
        metrics =
          metrics_of_stats g ~instructions:s.Pf_cpu.Trace.instructions s;
      })
    geometries

let fits_sweep_1pass ~dict_budget ~(like : Pf_fits.Run.result) ~geometries
    (tr : Pf_fits.Translate.t) trace =
  let code_base = tr.Pf_fits.Translate.code_base in
  let words = tr.Pf_fits.Translate.words in
  let r =
    Sweep.run ~params_of:params_for ~geometries
      ~fetch_data:(fun addr -> words.((addr - code_base) lsr 2))
      trace
  in
  List.mapi
    (fun i g ->
      {
        variant = Fits dict_budget;
        geometry = g;
        metrics =
          metrics_of_stats g
            ~instructions:like.Pf_fits.Run.arm_instructions
            r.Sweep.stats.(i);
      })
    geometries

(* One benchmark: 1 + |dict_budgets| recording executions, each replayed
   through every geometry.  The replays are the cheap part — no
   architectural simulation, no D-cache, just cache/pipeline/power driven
   by the recorded stream. *)
let run_benchmark ?(scale = 1) ?max_steps ?deadline ?(engine = Space.Replay)
    ~geometries ~dict_budgets (b : Pf_mibench.Registry.benchmark) =
  let check () = Deadline.check ~where:"dse.explore" deadline in
  let n_geoms = List.length geometries in
  let p = b.Pf_mibench.Registry.program ~scale in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  check ();
  let dyn_counts, reference_output =
    Pf_fits.Synthesis.dyn_counts_of_run ?max_steps ?deadline image
  in
  check ();
  let arm_trace = Pf_cpu.Trace.create ~isize:4 () in
  let arm_r =
    Pf_cpu.Arm_run.run ~cache_cfg:Space.recording_point ?max_steps ?deadline
      ~trace:arm_trace image
  in
  check ();
  let arm_points =
    match engine with
    | Space.Replay ->
        arm_sweep ~image ~output:arm_r.Pf_cpu.Arm_run.output ~geometries
          arm_trace
    | Space.Sweep -> arm_sweep_1pass ~image ~geometries arm_trace
  in
  let consistent = ref (arm_r.Pf_cpu.Arm_run.output = reference_output) in
  let replayed = ref (n_geoms * Pf_cpu.Trace.length arm_trace) in
  let fits_points =
    List.concat_map
      (fun budget ->
        let syn =
          match budget with
          | None -> Pf_fits.Synthesis.synthesize image ~dyn_counts
          | Some dict_budget ->
              Pf_fits.Synthesis.synthesize_suite ~dict_budget
                [
                  {
                    Pf_fits.Synthesis.p_image = image;
                    p_dyn_counts = dyn_counts;
                    p_mult = 1;
                  };
                ]
        in
        let tr =
          Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image
        in
        check ();
        let ftrace = Pf_cpu.Trace.create ~isize:2 () in
        let f_r =
          Pf_fits.Run.run ~cache_cfg:Space.recording_point ?max_steps
            ?deadline ~trace:ftrace tr
        in
        check ();
        if f_r.Pf_fits.Run.output <> reference_output then consistent := false;
        replayed := !replayed + (n_geoms * Pf_cpu.Trace.length ftrace);
        match engine with
        | Space.Replay ->
            fits_sweep ~dict_budget:budget ~like:f_r ~geometries tr ftrace
        | Space.Sweep ->
            fits_sweep_1pass ~dict_budget:budget ~like:f_r ~geometries tr
              ftrace)
      dict_budgets
  in
  {
    name = b.Pf_mibench.Registry.name;
    category = b.Pf_mibench.Registry.category;
    points = arm_points @ fits_points;
    replayed_events = !replayed;
    outputs_consistent = !consistent;
  }

let default_wall_clock_s = 600.

let run ?(scale = 1) ?max_steps ?(wall_clock_s = default_wall_clock_s) ?jobs
    ?engine ?(benchmarks = Pf_mibench.Registry.all) space =
  Space.validate space;
  let geometries = Space.geometries space in
  let dict_budgets = space.Space.dict_budgets in
  let variants = Arm :: List.map (fun b -> Fits b) dict_budgets in
  let engine =
    match engine with Some e -> e | None -> Space.choose_engine space
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let rows =
    Pool.map ~jobs
      (fun (b : Pf_mibench.Registry.benchmark) ->
        let t0 = Unix.gettimeofday () in
        let deadline = Deadline.after ~seconds:wall_clock_s in
        let outcome =
          Sim_error.protect ~where:("dse." ^ b.Pf_mibench.Registry.name)
            (fun () ->
              run_benchmark ~scale ?max_steps ~deadline ~engine ~geometries
                ~dict_budgets b)
        in
        {
          bench = b.Pf_mibench.Registry.name;
          outcome;
          elapsed_s = Unix.gettimeofday () -. t0;
        })
      benchmarks
  in
  let completed =
    List.fold_left
      (fun c r -> if Result.is_ok r.outcome then c + 1 else c)
      0 rows
  in
  {
    space;
    geometries;
    variants;
    rows;
    completed;
    total = List.length rows;
    jobs;
    engine;
  }

let completed_runs t =
  List.filter_map
    (fun r -> match r.outcome with Ok b -> Some b | Error _ -> None)
    t.rows

let replayed_events t =
  List.fold_left
    (fun acc b -> acc + b.replayed_events)
    0 (completed_runs t)

let diverged t =
  List.exists (fun b -> not b.outputs_consistent) (completed_runs t)

let banner t =
  let b = Buffer.create 256 in
  Printf.bprintf b "%d of %d benchmarks completed (jobs=%d, engine=%s)"
    t.completed t.total t.jobs
    (Space.engine_label t.engine);
  List.iter
    (fun r ->
      match r.outcome with
      | Ok br ->
          if not br.outputs_consistent then
            Printf.bprintf b "\n  %s: DIVERGED (outputs differ from reference)"
              r.bench
      | Error e ->
          Printf.bprintf b "\n  %s: FAILED %s" r.bench (Sim_error.to_string e))
    t.rows;
  Buffer.contents b

(* ---- aggregation and frontiers ----------------------------------------- *)

let add_report (a : Pf_power.Account.report) (b : Pf_power.Account.report) =
  {
    Pf_power.Account.switching = a.Pf_power.Account.switching +. b.Pf_power.Account.switching;
    internal = a.Pf_power.Account.internal +. b.Pf_power.Account.internal;
    leakage = a.Pf_power.Account.leakage +. b.Pf_power.Account.leakage;
    total = a.Pf_power.Account.total +. b.Pf_power.Account.total;
    peak_power = Float.max a.Pf_power.Account.peak_power b.Pf_power.Account.peak_power;
    cycles = a.Pf_power.Account.cycles + b.Pf_power.Account.cycles;
  }

(* Suite aggregate per (variant, geometry): counts and energies sum;
   rates are recomputed from the summed counts (never averaged); the
   D-cache rate — constant per benchmark across geometries — is an
   instruction-weighted mean, and the weighted sum is finalized below.
   Rows are folded in suite order, so the float sums are performed in a
   fixed order regardless of --jobs. *)
let aggregate t =
  match completed_runs t with
  | [] -> []
  | first :: rest ->
      let acc =
        Array.of_list
          (List.map
             (fun p ->
               ( p.variant,
                 p.geometry,
                 {
                   p.metrics with
                   dcache_miss_rate_pm =
                     p.metrics.dcache_miss_rate_pm
                     *. float_of_int p.metrics.instructions;
                 } ))
             first.points)
      in
      List.iter
        (fun br ->
          List.iteri
            (fun i p ->
              let v, g, m = acc.(i) in
              (* completed rows all share the variant × geometry shape;
                 a mismatch means the explorer itself is broken *)
              if v <> p.variant || g <> p.geometry then
                Sim_error.raisef Sim_error.Internal ~where:"dse.explore"
                  "aggregate: point shape mismatch at index %d" i;
              acc.(i) <-
                ( v,
                  g,
                  {
                    instructions = m.instructions + p.metrics.instructions;
                    cycles = m.cycles + p.metrics.cycles;
                    ipc = 0.0;
                    fetch_accesses =
                      m.fetch_accesses + p.metrics.fetch_accesses;
                    cache_accesses =
                      m.cache_accesses + p.metrics.cache_accesses;
                    cache_misses = m.cache_misses + p.metrics.cache_misses;
                    miss_rate_pm = 0.0;
                    dcache_miss_rate_pm =
                      m.dcache_miss_rate_pm
                      +. p.metrics.dcache_miss_rate_pm
                         *. float_of_int p.metrics.instructions;
                    power = add_report m.power p.metrics.power;
                    gate_count = m.gate_count;
                  } ))
            br.points)
        rest;
      Array.to_list acc
      |> List.map (fun (variant, geometry, m) ->
             let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
             {
               variant;
               geometry;
               metrics =
                 {
                   m with
                   ipc = fdiv m.instructions m.cycles;
                   miss_rate_pm =
                     1_000_000.0 *. fdiv m.cache_misses m.cache_accesses;
                   dcache_miss_rate_pm =
                     (if m.instructions = 0 then 0.0
                      else
                        m.dcache_miss_rate_pm /. float_of_int m.instructions);
                 };
             })

let objectives p =
  {
    Pareto.energy = p.metrics.power.Pf_power.Account.total;
    ipc = p.metrics.ipc;
    miss_rate_pm = p.metrics.miss_rate_pm;
    area = float_of_int p.metrics.gate_count;
  }

let frontier_of points =
  Pareto.frontier (List.map (fun p -> (p, objectives p)) points)

(* ---- emitters ---------------------------------------------------------- *)

let f17 x = Printf.sprintf "%.17g" x

let on_frontier front p =
  List.exists (fun (q, _) -> q == p) front.Pareto.frontier

let csv_point buf ~group front (p : point) =
  let m = p.metrics in
  let pw = m.power in
  Printf.bprintf buf "%s,%s,%d,%d,%d,%d,%d,%s,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%d,%d\n"
    group
    (variant_label p.variant)
    p.geometry.Pf_cache.Icache.size_bytes
    p.geometry.Pf_cache.Icache.block_bytes
    p.geometry.Pf_cache.Icache.assoc m.instructions m.cycles (f17 m.ipc)
    m.fetch_accesses m.cache_accesses m.cache_misses (f17 m.miss_rate_pm)
    (f17 m.dcache_miss_rate_pm)
    (f17 pw.Pf_power.Account.switching)
    (f17 pw.Pf_power.Account.internal)
    (f17 pw.Pf_power.Account.leakage)
    (f17 pw.Pf_power.Account.total)
    (f17 (Pf_power.Account.avg_power pw))
    (f17 pw.Pf_power.Account.peak_power)
    m.gate_count
    (if on_frontier front p then 1 else 0)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "bench,variant,size_bytes,block_bytes,assoc,instructions,cycles,ipc,\
     fetch_accesses,cache_accesses,cache_misses,miss_rate_pm,\
     dcache_miss_rate_pm,e_switching,e_internal,e_leakage,e_total,\
     avg_power,peak_power,gates,pareto\n";
  List.iter
    (fun br ->
      let front = frontier_of br.points in
      List.iter (csv_point buf ~group:br.name front) br.points)
    (completed_runs t);
  (match aggregate t with
  | [] -> ()
  | pts ->
      let front = frontier_of pts in
      List.iter (csv_point buf ~group:"suite" front) pts);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_point buf front (p : point) =
  let m = p.metrics in
  let pw = m.power in
  Printf.bprintf buf
    "{\"variant\": \"%s\", \"size_bytes\": %d, \"block_bytes\": %d, \
     \"assoc\": %d, \"instructions\": %d, \"cycles\": %d, \"ipc\": %s, \
     \"fetch_accesses\": %d, \"cache_accesses\": %d, \"cache_misses\": %d, \
     \"miss_rate_pm\": %s, \"dcache_miss_rate_pm\": %s, \"e_switching\": %s, \
     \"e_internal\": %s, \"e_leakage\": %s, \"e_total\": %s, \
     \"avg_power\": %s, \"peak_power\": %s, \"gates\": %d, \"pareto\": %s}"
    (variant_label p.variant)
    p.geometry.Pf_cache.Icache.size_bytes
    p.geometry.Pf_cache.Icache.block_bytes
    p.geometry.Pf_cache.Icache.assoc m.instructions m.cycles (f17 m.ipc)
    m.fetch_accesses m.cache_accesses m.cache_misses (f17 m.miss_rate_pm)
    (f17 m.dcache_miss_rate_pm)
    (f17 pw.Pf_power.Account.switching)
    (f17 pw.Pf_power.Account.internal)
    (f17 pw.Pf_power.Account.leakage)
    (f17 pw.Pf_power.Account.total)
    (f17 (Pf_power.Account.avg_power pw))
    (f17 pw.Pf_power.Account.peak_power)
    m.gate_count
    (if on_frontier front p then "true" else "false")

let json_points buf pts =
  let front = frontier_of pts in
  Buffer.add_string buf "[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      json_point buf front p)
    pts;
  Buffer.add_string buf "]"

let to_json t =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf "{\n  \"schema\": 1,\n  \"jobs\": %d,\n  \"engine\": \"%s\",\n"
    t.jobs
    (Space.engine_label t.engine);
  Printf.bprintf buf "  \"geometries\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun g -> Printf.sprintf "\"%s\"" (Space.label g))
          t.geometries));
  Printf.bprintf buf "  \"variants\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun v -> Printf.sprintf "\"%s\"" (variant_label v))
          t.variants));
  Buffer.add_string buf "  \"benchmarks\": [\n";
  let first = ref true in
  List.iter
    (fun br ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"category\": \"%s\", \
         \"outputs_consistent\": %b, \"replayed_events\": %d, \"points\": "
        (json_escape br.name) (json_escape br.category) br.outputs_consistent
        br.replayed_events;
      json_points buf br.points;
      Buffer.add_string buf "}")
    (completed_runs t);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"failed\": [";
  let firstf = ref true in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok _ -> ()
      | Error e ->
          if not !firstf then Buffer.add_string buf ", ";
          firstf := false;
          Printf.bprintf buf "{\"bench\": \"%s\", \"error\": \"%s\"}"
            (json_escape r.bench)
            (json_escape (Sim_error.to_string e)))
    t.rows;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf "  \"suite\": ";
  (match aggregate t with
  | [] -> Buffer.add_string buf "[]"
  | pts -> json_points buf pts);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
