(** Evaluate a {!Space} over the benchmark suite via trace replay or the
    single-pass sweep kernel.

    Each benchmark executes {e once per ISA variant} at the fixed
    {!Space.recording_point}, recording the retired stream; every grid
    geometry is then evaluated from that recording, either by a cheap
    {!Pf_cpu.Trace} replay per geometry (2 executions + 2·N replays per
    benchmark on the default variant axis, never 2 + 2·N executions) or —
    for dense grids — by ONE {!Sweep} pass per trace that measures all
    geometries simultaneously with bit-identical results.  The engine is
    chosen per space ({!Space.choose_engine}) unless forced via
    [?engine].  Per-point power uses
    {!Pf_power.Account.Params.for_geometry}, so coefficients scale
    analytically with the read width while both paper geometries see the
    calibrated defaults unchanged — the ARM16/ARM8/FITS16/FITS8 grid
    points reproduce the harness numbers bit-for-bit (asserted by
    test/test_dse.ml).

    Benchmarks fan out on {!Pf_util.Pool} with per-benchmark fault
    isolation ({!Pf_util.Sim_error.protect} + a monotonic deadline), and
    every reported artifact — points, aggregates, frontiers, emitters —
    is a deterministic function of the space and suite, independent of
    [--jobs]. *)

type variant = Arm | Fits of int option
(** An instruction-stream variant: the source ARM stream, or a FITS
    synthesis with the given dictionary budget ([None] = uncapped). *)

val variant_label : variant -> string
(** ["arm"], ["fits"], or ["fits@<budget>"]. *)

val variant_is_arm : variant -> bool

type metrics = {
  instructions : int;   (** source (ARM) instructions for both ISAs *)
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
  gate_count : int;     (** area proxy of this geometry *)
}

type point = {
  variant : variant;
  geometry : Pf_cache.Icache.config;
  metrics : metrics;
}

type bench_run = {
  name : string;
  category : string;
  points : point list;
      (** variant-major ({!variant} order), geometry order within —
          the canonical {!Space.geometries} order *)
  replayed_events : int;
      (** trace events evaluated: Σ trace length × geometries — counted
          identically under both engines (the sweep evaluates every
          geometry per pass), so it stays the unit of explore throughput
          in the bench gate *)
  outputs_consistent : bool;
      (** every recording run printed the reference output *)
}

type row = {
  bench : string;
  outcome : (bench_run, Pf_util.Sim_error.t) result;
  elapsed_s : float;
}

type t = {
  space : Space.t;
  geometries : Pf_cache.Icache.config list;
  variants : variant list;
  rows : row list;       (** one per benchmark, in suite order *)
  completed : int;
  total : int;
  jobs : int;
  engine : Space.engine; (** how geometries were evaluated *)
}

val default_wall_clock_s : float
(** Per-benchmark wall-clock budget (600 s), as in the harness sweep. *)

val run :
  ?scale:int ->
  ?max_steps:int ->
  ?wall_clock_s:float ->
  ?jobs:int ->
  ?engine:Space.engine ->
  ?benchmarks:Pf_mibench.Registry.benchmark list ->
  Space.t ->
  t
(** Explore the space over [benchmarks] (default: the full 21-benchmark
    suite) with [jobs] worker domains.  [engine] forces the evaluation
    engine; by default {!Space.choose_engine} picks per space (replay
    for sparse grids, single-pass sweep for dense ones) — results are
    bit-identical either way.  A failing benchmark is isolated into its
    row ([Error]); it never aborts the sweep. *)

type recording
(** A benchmark's recorded executions — image, per-ISA traces,
    translations, recording-run results — separated from the geometry
    sweeps.  A recording is a function of (program, [max_steps],
    [dict_budgets]) alone; cache geometry never enters, so one recording
    serves any number of geometry evaluations.  Immutable once built:
    sweeping only reads it, so a recording may be shared across domains
    (the serve daemon shares them across explore-point requests). *)

val record :
  ?scale:int ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  dict_budgets:int option list ->
  Pf_mibench.Registry.benchmark ->
  recording
(** The expensive half of {!run_benchmark}: 1 + |dict_budgets| recording
    executions under the block-compiled engine (results are
    engine-invariant), with the synthesis profile derived from the ARM
    trace ({!Pf_cpu.Trace.exec_counts}) instead of a dedicated counting
    run.  Unprotected; exceptions (including watchdogs) propagate. *)

val sweep_recording :
  ?engine:Space.engine ->
  geometries:Pf_cache.Icache.config list ->
  recording ->
  bench_run
(** The geometry half: evaluate every grid point from the recording, by
    per-geometry replay (default) or the single-pass [Sweep] kernel —
    bit-identical either way.  Read-only on the recording. *)

val run_benchmark :
  ?scale:int ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?engine:Space.engine ->
  ?recording:recording ->
  geometries:Pf_cache.Icache.config list ->
  dict_budgets:int option list ->
  Pf_mibench.Registry.benchmark ->
  bench_run
(** One benchmark, unprotected (exceptions propagate) — {!run} wraps
    this.  [engine] defaults to [Replay].  [recording] substitutes an
    existing {!record} result (its [scale]/[max_steps]/[dict_budgets]
    must match the arguments, which then go unused). *)

val arm_sweep :
  image:Pf_arm.Image.t ->
  output:string ->
  geometries:Pf_cache.Icache.config list ->
  Pf_cpu.Trace.t ->
  point list
(** Replay a recorded ARM trace through every geometry — the DSE inner
    loop, exposed so test/test_alloc.ml can assert it allocates O(grid),
    not O(trace events). *)

val fits_sweep :
  dict_budget:int option ->
  like:Pf_fits.Run.result ->
  geometries:Pf_cache.Icache.config list ->
  Pf_fits.Translate.t ->
  Pf_cpu.Trace.t ->
  point list
(** FITS counterpart of {!arm_sweep}; [like] is the recording run. *)

(** {2 Derived views} *)

val completed_runs : t -> bench_run list
val replayed_events : t -> int
val diverged : t -> bool
(** True when any completed benchmark printed non-reference output —
    the CLI maps this to exit code 3, as [run]/[figures] do. *)

val banner : t -> string
(** Completion summary plus any failed or diverged benchmarks. *)

val aggregate : t -> point list
(** Suite-aggregate point per (variant, geometry), in point order:
    counts, energies and cycles sum over completed benchmarks (in suite
    order, so float sums are order-fixed); IPC and the I-cache miss rate
    are recomputed from the sums; the (geometry-invariant) D-cache rate
    is an instruction-weighted mean. *)

val objectives : point -> Pareto.objectives
(** (total energy, IPC, miss rate, gate count) of one point. *)

val frontier_of : point list -> point Pareto.front
(** {!Pareto.frontier} over {!objectives}, preserving point order. *)

(** {2 Emitters} *)

val to_csv : t -> string
(** One row per (benchmark, variant, geometry) plus a ["suite"] aggregate
    group; the [pareto] column marks frontier membership within each
    group.  Floats print with ["%.17g"] (lossless round-trip). *)

val to_json : t -> string
(** Same content as {!to_csv}, as a single JSON document with per-
    benchmark point arrays, the suite aggregate, and failed rows. *)
