type objectives = {
  energy : float;
  ipc : float;
  miss_rate_pm : float;
  area : float;
}

(* a dominates b: no objective worse, at least one strictly better.
   Energy, miss rate and area are minimized; IPC is maximized.  Two points
   with identical objectives do not dominate each other, so exact ties all
   stay on the frontier — dropping one would make the result depend on
   enumeration order. *)
let dominates a b =
  a.energy <= b.energy && a.ipc >= b.ipc
  && a.miss_rate_pm <= b.miss_rate_pm
  && a.area <= b.area
  && (a.energy < b.energy || a.ipc > b.ipc
     || a.miss_rate_pm < b.miss_rate_pm
     || a.area < b.area)

type 'a front = {
  frontier : ('a * objectives) list;
  dominated : int;
  total : int;
}

(* O(n²) pairwise scan; the grids here are tens of points per benchmark,
   and the result is trivially deterministic: frontier membership is a
   property of the point set, and order is inherited from the input list
   (itself the canonical Space order), so any --jobs value — indeed any
   evaluation order — yields the identical frontier. *)
let frontier points =
  let arr = Array.of_list points in
  let n = Array.length arr in
  let on_front i =
    let _, oi = arr.(i) in
    let rec go j =
      j >= n || ((i = j || not (dominates (snd arr.(j)) oi)) && go (j + 1))
    in
    go 0
  in
  let frontier = ref [] in
  let dominated = ref 0 in
  for i = n - 1 downto 0 do
    if on_front i then frontier := arr.(i) :: !frontier
    else incr dominated
  done;
  { frontier = !frontier; dominated = !dominated; total = n }
