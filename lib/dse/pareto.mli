(** Deterministic Pareto-frontier extraction over cache design points.

    Objectives follow the study's axes of merit: total I-cache energy,
    miss rate and an area proxy (gate count) are minimized, IPC is
    maximized.  A point is on the frontier iff no other point is at least
    as good on every objective and strictly better on one. *)

type objectives = {
  energy : float;        (** total I-cache energy — minimize *)
  ipc : float;           (** source instructions per cycle — maximize *)
  miss_rate_pm : float;  (** I-cache misses per million fetches — minimize *)
  area : float;          (** gate-count area proxy — minimize *)
}

val dominates : objectives -> objectives -> bool
(** [dominates a b] — [a] is no worse than [b] everywhere and strictly
    better somewhere.  Points with identical objectives do not dominate
    each other, so exact ties all survive (dropping one would make the
    frontier depend on enumeration order). *)

type 'a front = {
  frontier : ('a * objectives) list;
      (** non-dominated points, in input order *)
  dominated : int;
  total : int;
}

val frontier : ('a * objectives) list -> 'a front
(** Frontier membership is a property of the point {e set}; output order
    is inherited from the input list.  Callers pass points in the
    canonical {!Space.geometries} order, making the result independent of
    worker count and evaluation order — the jobs-independence the
    harness guarantees for everything it reports. *)
