open Pf_util

type t = {
  sizes : int list;
  blocks : int list;
  assocs : int list;
  dict_budgets : int option list;
}

let where = "dse.space"

(* Axis order is part of the contract: every consumer (the explorer, the
   emitters, the frontier) sees geometries in the same sorted order, so
   reports are a pure function of the space — never of enumeration or
   scheduling accidents. *)
let sort_axis = List.sort_uniq compare

let sort_budgets =
  List.sort_uniq (fun a b ->
      match (a, b) with
      | None, None -> 0
      | None, Some _ -> -1 (* uncapped first: the paper's per-app flow *)
      | Some _, None -> 1
      | Some x, Some y -> compare x y)

let feasible ~size ~block ~assoc = size >= block && assoc <= size / block

let validate t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check_axis name ~min_v xs =
    if xs = [] then add "%s axis is empty" name
    else
      List.iter
        (fun v ->
          if v < min_v || not (Bits.is_power_of_two v) then
            add "%s entry %d is not a power of two >= %d" name v min_v)
        xs
  in
  check_axis "sizes" ~min_v:64 t.sizes;
  check_axis "blocks" ~min_v:4 t.blocks;
  check_axis "assocs" ~min_v:1 t.assocs;
  if t.dict_budgets = [] then add "dict_budgets axis is empty"
  else
    List.iter
      (function
        | None -> ()
        | Some b ->
            if b < 1 then add "dict budget %d is not positive" b)
      t.dict_budgets;
  if
    !problems = []
    && not
         (List.exists
            (fun size ->
              List.exists
                (fun block ->
                  List.exists
                    (fun assoc -> feasible ~size ~block ~assoc)
                    t.assocs)
                t.blocks)
            t.sizes)
  then add "no feasible geometry: every size/block/assoc combination is degenerate";
  match List.rev !problems with
  | [] -> ()
  | ps ->
      Sim_error.raisef Sim_error.Invalid_config ~where "invalid space: %s"
        (String.concat "; " ps)

let make ?(blocks = [ 32 ]) ?(assocs = [ 32 ]) ?(dict_budgets = [ None ])
    ~sizes () =
  let t =
    {
      sizes = sort_axis sizes;
      blocks = sort_axis blocks;
      assocs = sort_axis assocs;
      dict_budgets = sort_budgets dict_budgets;
    }
  in
  validate t;
  t

let combos t = List.length t.sizes * List.length t.blocks * List.length t.assocs

let geometries t =
  List.concat_map
    (fun size ->
      List.concat_map
        (fun block ->
          List.filter_map
            (fun assoc ->
              if feasible ~size ~block ~assoc then
                Some
                  (Pf_cache.Icache.config ~size_bytes:size ~block_bytes:block
                     ~assoc ())
              else None)
            t.assocs)
        t.blocks)
    t.sizes

type cardinality = {
  combos : int;
  feasible : int;
  skipped : int;
  variants : int;
  points : int;
}

let cardinality t =
  let combos = combos t in
  let feasible = List.length (geometries t) in
  let variants = 1 + List.length t.dict_budgets in
  {
    combos;
    feasible;
    skipped = combos - feasible;
    variants;
    points = feasible * variants;
  }

(* ---- evaluation engine ------------------------------------------------- *)

type engine = Replay | Sweep

let engine_label = function Replay -> "replay" | Sweep -> "sweep"

let engine_of_string = function
  | "replay" -> Ok Replay
  | "sweep" -> Ok Sweep
  | s -> Error (Printf.sprintf "unknown engine %S (expected replay or sweep)" s)

(* Distinct (block size, set count) pairs across the feasible geometries:
   the single-pass kernel maintains one stack-distance profile per pair,
   and its per-trace cost is O(events * profiles) against replay's
   O(events * geometries). *)
let profiles t =
  geometries t
  |> List.map (fun (c : Pf_cache.Icache.config) ->
         (c.Pf_cache.Icache.block_bytes, Pf_cache.Icache.sets c))
  |> List.sort_uniq compare |> List.length

(* The sweep engine pays a constant factor per profile for its stack
   bookkeeping, so it only wins once geometries meaningfully outnumber
   profiles (i.e. the grid has several associativities per (block, sets)
   pair).  The threshold deliberately leaves the small named grids
   (smoke: 6 geometries / 6 profiles, full: 36 / 20) on the replay
   engine: their published benchmark baselines stay comparable, and the
   replay path keeps exercising its role as the differential oracle. *)
let choose_engine t =
  let c = cardinality t in
  if c.feasible >= 2 * profiles t then Sweep else Replay

type cost = {
  executions : int;
  replays : int;
  points_total : int;
  engine : engine;
  profiles : int;
  sweep_passes : int;
}

let cost ~benchmarks t =
  let c = cardinality t in
  {
    executions = benchmarks * c.variants;
    replays = benchmarks * c.variants * c.feasible;
    points_total = benchmarks * c.points;
    engine = choose_engine t;
    profiles = profiles t;
    sweep_passes = benchmarks * c.variants;
  }

(* ---- named points ------------------------------------------------------ *)

let cache_16k = Pf_cache.Icache.config ~size_bytes:(16 * 1024) ()
let cache_8k = Pf_cache.Icache.config ~size_bytes:(8 * 1024) ()

(* Traces are recorded at the 16 K paper point; any valid geometry would
   record the identical stream (geometry never changes architectural
   behaviour), this one just makes the recording run double as the ARM16 /
   FITS16 data point when someone inspects it. *)
let recording_point = cache_16k

let paper_point ~arm (cfg : Pf_cache.Icache.config) =
  if cfg = cache_16k then Some (if arm then "ARM16" else "FITS16")
  else if cfg = cache_8k then Some (if arm then "ARM8" else "FITS8")
  else None

(* ---- named grids ------------------------------------------------------- *)

let k n = n * 1024

let smoke = make ~sizes:[ k 4; k 8; k 16 ] ~assocs:[ 8; 32 ] ()

let full =
  make
    ~sizes:[ k 1; k 2; k 4; k 8; k 16; k 32 ]
    ~blocks:[ 16; 32 ] ~assocs:[ 2; 8; 32 ] ()

(* Every power-of-two size from 64 B to 8 MB, blocks 4..256 B, ways
   1..1024: 1386 corners, 1058 feasible geometries.  Far past what
   per-geometry replay can afford over a full suite, and exactly what
   the single-pass sweep engine is for — the thousand-point frontier. *)
let dense =
  let pows lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i)) in
  make ~sizes:(pows 6 23) ~blocks:(pows 2 8) ~assocs:(pows 0 10) ()

(* ---- parsing ----------------------------------------------------------- *)

let split ~on s = String.split_on_char on s |> List.map String.trim

let parse_size s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else
    let scaled, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v when v > 0 -> Some (v * scaled)
    | _ -> None

let parse_axis ~what s =
  let entries = split ~on:',' s in
  let parsed = List.map parse_size entries in
  if List.exists (fun v -> v = None) parsed || parsed = [] then
    Error (Printf.sprintf "cannot parse %s axis %S" what s)
  else Ok (List.filter_map Fun.id parsed)

let parse_budgets s =
  let entry e =
    if e = "none" || e = "off" then Ok None
    else
      match int_of_string_opt e with
      | Some v when v > 0 -> Ok (Some v)
      | _ -> Error (Printf.sprintf "cannot parse dict budget %S" e)
  in
  let rec go = function
    | [] -> Ok []
    | e :: rest -> (
        match entry e with
        | Error _ as err -> err
        | Ok v -> Result.map (fun vs -> v :: vs) (go rest))
  in
  go (split ~on:',' s)

let of_string s =
  match String.trim s with
  | "smoke" -> Ok smoke
  | "full" -> Ok full
  | "dense" -> Ok dense
  | spec -> (
      let kvs =
        split ~on:';' spec
        |> List.filter (fun s -> s <> "")
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | Some i ->
                   ( String.trim (String.sub kv 0 i),
                     String.sub kv (i + 1) (String.length kv - i - 1) )
               | None -> (kv, ""))
      in
      let rec build sizes blocks assocs budgets = function
        | [] -> (
            match sizes with
            | None -> Error "grid spec needs a sizes= axis"
            | Some sizes -> (
                try
                  Ok
                    (make ?blocks ?assocs ?dict_budgets:budgets ~sizes ())
                with Sim_error.Error e -> Error (Sim_error.to_string e)))
        | ("sizes", v) :: rest -> (
            match parse_axis ~what:"sizes" v with
            | Error _ as e -> e
            | Ok xs -> build (Some xs) blocks assocs budgets rest)
        | ("blocks", v) :: rest -> (
            match parse_axis ~what:"blocks" v with
            | Error _ as e -> e
            | Ok xs -> build sizes (Some xs) assocs budgets rest)
        | ("assocs", v) :: rest -> (
            match parse_axis ~what:"assocs" v with
            | Error _ as e -> e
            | Ok xs -> build sizes blocks (Some xs) budgets rest)
        | ("dicts", v) :: rest -> (
            match parse_budgets v with
            | Error _ as e -> e
            | Ok xs -> build sizes blocks assocs (Some xs) rest)
        | (key, _) :: _ ->
            Error
              (Printf.sprintf
                 "unknown grid key %S (expected smoke, full, or \
                  sizes=/blocks=/assocs=/dicts=)"
                 key)
      in
      build None None None None kvs)

(* ---- labels ------------------------------------------------------------ *)

let label (c : Pf_cache.Icache.config) =
  let size =
    if c.size_bytes mod 1024 = 0 then
      Printf.sprintf "%dK" (c.size_bytes / 1024)
    else Printf.sprintf "%dB" c.size_bytes
  in
  Printf.sprintf "%s/%dB/%dw" size c.block_bytes c.assoc

let describe ~benchmarks t =
  let c = cardinality t in
  let co = cost ~benchmarks t in
  let axis xs = String.concat "," (List.map string_of_int xs) in
  let budgets =
    String.concat ","
      (List.map
         (function None -> "none" | Some b -> string_of_int b)
         t.dict_budgets)
  in
  let work =
    match co.engine with
    | Replay -> Printf.sprintf "%d trace replays" co.replays
    | Sweep ->
        (* one annotated pass per recorded trace covers every geometry;
           quoting N replays here would overstate dense-grid cost by the
           geometries/profiles ratio *)
        Printf.sprintf
          "%d single-pass sweeps over %d stack profiles (replay engine \
           would need %d replays)"
          co.sweep_passes co.profiles co.replays
  in
  Printf.sprintf
    "sizes={%s} blocks={%s} assocs={%s} dicts={%s}: %d geometries (%d \
     infeasible corners skipped) x %d ISA variants x %d benchmarks -> %d \
     executions + %s [engine: %s], %d points"
    (axis t.sizes) (axis t.blocks) (axis t.assocs) budgets c.feasible
    c.skipped c.variants benchmarks co.executions work
    (engine_label co.engine) co.points_total
