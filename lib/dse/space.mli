(** Declarative description of the cache-geometry design space.

    The paper evaluates four fixed configurations (ARM16/ARM8/FITS16/
    FITS8); this module makes the implicit space around them explicit — a
    grid of cache size × block size × associativity, crossed with FITS
    synthesis knobs (the shared-dictionary budget) — and answers the
    before-launch questions: is the grid well-formed, how many points is
    it, and what will evaluating it cost in executions and replays.

    All axes are kept sorted and deduplicated, so every consumer
    enumerates the space in one canonical order: results are a function
    of the space alone, never of axis spelling or worker scheduling. *)

type t = {
  sizes : int list;         (** cache sizes, bytes *)
  blocks : int list;        (** block (line) sizes, bytes *)
  assocs : int list;        (** associativities (ways) *)
  dict_budgets : int option list;
      (** FITS dictionary budgets; [None] = uncapped per-application
          synthesis (the paper's flow), [Some b] caps the dictionary at
          [b] entries via {!Pf_fits.Synthesis.synthesize_suite} *)
}

val make :
  ?blocks:int list ->
  ?assocs:int list ->
  ?dict_budgets:int option list ->
  sizes:int list ->
  unit ->
  t
(** Sorts and deduplicates every axis, then {!validate}s.  Defaults:
    32-byte blocks, 32 ways, uncapped dictionary — the paper's fixed
    organization, so [make ~sizes:[8*1024; 16*1024] ()] is exactly the
    paper's cache axis. *)

val validate : t -> unit
(** Raises [Pf_util.Sim_error] ([Invalid_config]) listing every problem:
    an empty axis, a non-power-of-two entry (sizes ≥ 64, blocks ≥ 4,
    assocs ≥ 1), a non-positive dictionary budget, or a space whose every
    size/block/assoc combination is degenerate. *)

val geometries : t -> Pf_cache.Icache.config list
(** The feasible cache geometries of the grid, in canonical (size, block,
    assoc) lexicographic order.  Infeasible corners of the cross product
    (cache smaller than a block, more ways than lines) are skipped
    deterministically — see {!cardinality.skipped}; every returned config
    passes {!Pf_cache.Icache.validate}. *)

type cardinality = {
  combos : int;    (** raw size × block × assoc cross product *)
  feasible : int;  (** geometries surviving the feasibility filter *)
  skipped : int;   (** infeasible corners dropped ([combos - feasible]) *)
  variants : int;  (** ISA variants: 1 (ARM) + one FITS per dict budget *)
  points : int;    (** [feasible * variants] per benchmark *)
}

val cardinality : t -> cardinality

(** {2 Evaluation engine}

    How recorded traces are turned into per-geometry statistics:
    [Replay] drives a fresh cache/pipeline/power stack through the trace
    once per geometry; [Sweep] makes one stack-distance annotated pass
    per trace that evaluates every geometry simultaneously
    ({!Pf_dse.Sweep}).  Both produce bit-identical statistics. *)

type engine = Replay | Sweep

val engine_label : engine -> string
(** ["replay"] / ["sweep"]. *)

val engine_of_string : string -> (engine, string) result
(** Parse an [--engine] argument. *)

val profiles : t -> int
(** Distinct (block size, set count) pairs among the feasible
    geometries — the number of Mattson stack-distance profiles one sweep
    pass maintains.  Sweep cost scales with this, replay cost with
    {!cardinality.feasible}. *)

val choose_engine : t -> engine
(** [Sweep] when the grid is dense enough to pay off (feasible
    geometries at least twice the profile count), [Replay] otherwise.
    The named [smoke] and [full] grids choose [Replay]; [dense] chooses
    [Sweep]. *)

type cost = {
  executions : int;   (** recording runs: benchmarks × variants *)
  replays : int;      (** trace replays the [Replay] engine would do:
                          executions × geometries *)
  points_total : int; (** evaluated (benchmark, variant, geometry) points *)
  engine : engine;    (** {!choose_engine} for this space *)
  profiles : int;     (** stack profiles per sweep pass ({!profiles}) *)
  sweep_passes : int; (** annotated passes the [Sweep] engine would do:
                          one per recorded trace = [executions] *)
}

val cost : benchmarks:int -> t -> cost
(** What {!Explore.run} will do for a [benchmarks]-program suite: each
    benchmark executes once per ISA variant (recording a trace); the
    trace is then either replayed once per geometry (replay engine:
    2 executions + 2·N replays per benchmark on the default variant
    axis) or swept once covering all geometries at once (sweep engine:
    2 executions + 2 passes per benchmark). *)

(** {2 Named points and grids} *)

val cache_16k : Pf_cache.Icache.config
(** The paper's 16 KB, 32-byte-block, 32-way SA-1100 I-cache — the ARM16
    / FITS16 grid point.  The single source of these constants:
    [Pf_harness.Experiment] and the CLI alias them from here. *)

val cache_8k : Pf_cache.Icache.config
(** The paper's 8 KB variant — the ARM8 / FITS8 grid point. *)

val recording_point : Pf_cache.Icache.config
(** Geometry used for the one recording execution per ISA ({!cache_16k});
    any valid geometry records the same stream, since geometry never
    changes architectural behaviour. *)

val paper_point : arm:bool -> Pf_cache.Icache.config -> string option
(** ["ARM16"], ["ARM8"], ["FITS16"] or ["FITS8"] when the (ISA, geometry)
    pair is one of the paper's four configurations; [None] elsewhere.
    Drives the "paper points" annotation of [powerfits explore]. *)

val smoke : t
(** Tiny CI grid: {4, 8, 16} KB × {8, 32} ways × 32 B blocks — 6
    geometries including both paper points. *)

val full : t
(** The headline grid: {1..32} KB × {2, 8, 32} ways × {16, 32} B blocks —
    36 geometries including both paper points. *)

val dense : t
(** The full-resolution grid: every power-of-two size 64 B – 8 MB ×
    blocks 4–256 B × ways 1–1024 — 1058 feasible geometries (of 1386
    corners), including both paper points.  Sized for the single-pass
    sweep engine; see {!choose_engine}. *)

val of_string : string -> (t, string) result
(** Parse a [--grid] argument: ["smoke"], ["full"], ["dense"], or a spec
    of the form
    ["sizes=1k,2k,16k;blocks=16,32;assocs=2,32;dicts=none,96"] (sizes and
    blocks accept a [k] suffix; [dicts] accepts ["none"] for the uncapped
    flow).  Validation problems come back as [Error msg]. *)

(** {2 Presentation} *)

val label : Pf_cache.Icache.config -> string
(** Short geometry tag, e.g. ["16K/32B/32w"]. *)

val describe : benchmarks:int -> t -> string
(** One-line pre-launch summary: axes, feasible/skipped counts, variants,
    and the execution/replay cost for a [benchmarks]-program run. *)
