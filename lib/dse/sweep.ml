(* Single-pass all-geometry cache evaluation (Mattson stack distances).

   One annotated pass over a recorded trace reproduces, bit-for-bit, what
   [Trace.replay] measures for EVERY geometry of a grid at once.  The key
   structural facts, each verified against the modules that own them:

   - The I-cache ([Icache.access_fast]) is exact LRU kept in MRU-first
     order: a hit rotates the way to the front, a miss inserts at the
     front and drops the last way.  That is precisely Mattson's stack
     algorithm, so one MRU-ordered stack per set, per (block size,
     set count) pair, yields the hit/miss outcome for ALL associativities
     simultaneously: an access at stack position [pos] hits every cache
     with [assoc > pos] (LRU inclusion).

   - Which accesses happen at all (the fetch-buffer filter), the words
     driven on the output bus, D-cache stalls, load-use bubbles and
     back-end penalties are functions of the trace alone — geometry
     never feeds back into the instruction stream.  Only three things
     vary per geometry: fetch hit/miss, set-index toggles (shared by all
     lanes of a (block, nsets) profile) and the dual-issue pairing
     stream, which depends on geometry only through hit/miss.

   - Pairing ([Pipeline.issue]) admits a per-lane recurrence.  With
     [compat] collecting the geometry-invariant conditions (previous
     instruction left the pair slot open, no data stall, no bubble, no
     RAW against the previous instruction's writes, not a second memory
     op, not a branch), instruction i pairs at lane L iff

       compat_i  &&  hit_i(L)  &&  not paired_{i-1}(L)

     The slot state consulted by [compat] is the PREVIOUS instruction's
     writes/mem class: [issue] updates slot_writes/slot_mem on every
     unpaired instruction, and lanes where the previous instruction
     paired are exactly the lanes masked off by [not paired_{i-1}].
     This evaluates for all lanes of a profile at once as word-parallel
     bit operations on lane masks.

   - Power accounting ([Account]) is pure integer counting with energies
     evaluated in closed form, and peak windows close every
     [peak_window_insns] retirements — an instruction-aligned boundary
     that falls on the same trace index for every geometry.  Summing the
     per-instruction cycle charges of [issue] over a window:

       cycles_w(L) = events_w - paired_w(L) + bubbles_w + extras_w
                     + miss_penalty * (dmisses_w + fetch_misses_w(L))

     so a window's power sample needs only per-lane paired/miss counts
     on top of shared sums, and [Account.window_power] /
     [Account.report_of_counts] reproduce the replay's floats exactly.

   Per-profile stacks are clamped to the code's block-number span: if the
   span fits in fewer sets than the geometry has, distinct blocks cannot
   collide in a set anyway ([s_eff] = pow2(span) preserves the grouping
   because two distinct in-span blocks differ by less than s_eff), and
   stack depth beyond the maximum associativity of the profile (or the
   most distinct blocks a set can see) only records accesses that miss
   at every lane.  This keeps a thousand-geometry sweep's working set at
   O(code span) per profile instead of O(sets * assoc).

   Two structural shortcuts keep the per-event cost sublinear in the
   profile count (133 profiles on the dense grid):

   - Shift gating.  Profiles are grouped by block shift; a fetch whose
     block number is unchanged for a shift is a position-0 hit in every
     profile of that group — no stack search, no bucket write (bucket 0
     never feeds the miss suffix sums), no index toggle (same index).
     Sequential fetches change on average ~1 of the 7 shifts, so the
     expensive search loop runs over a handful of profiles per event.

   - Word-packed pairing.  Every profile's lane mask is first-fit packed
     into 62-bit machine words shared across profiles, so the per-event
     pairing recurrence and its bit-sliced counters run over ~N/62 words
     instead of one mask per profile.  Hit masks are maintained in the
     packed words incrementally: a changed profile writes its (suffix)
     hit mask into its segment; the next unchanged fetch OR-restores the
     group's segments to full.  Non-compat events only set a lazy
     "pairing state is zero" flag instead of clearing every word. *)

open Pf_util
module Icache = Pf_cache.Icache
module Account = Pf_power.Account

let where = "dse.sweep"

(* Lane masks live in one immediate int; 62 keeps clear of the sign bit.
   Profiles with more associativity points than this are split into
   chunks that each re-run the (cheap) stack search. *)
let max_lanes = 62

type miss_classes = { compulsory : int; capacity : int; conflict : int }

type result = {
  stats : Pf_cpu.Trace.stats array;
  classes : miss_classes array option;
}

(* One (block_shift, nsets) stack-distance profile covering <= max_lanes
   geometries (lanes), sorted by ascending associativity so that the
   lanes hitting at stack position [pos] are a suffix of the lane set. *)
type profile = {
  block_shift : int;
  nsets : int;             (* real set count: the index-toggle stream *)
  s_mask : int;            (* s_eff - 1; stack set = block land s_mask *)
  depth : int;             (* tracked stack depth per set *)
  stack : int array;       (* s_eff * depth block numbers, -1 = empty *)
  lanes : int array;       (* global lane ids, ascending assoc *)
  nlanes : int;
  full_mask : int;         (* (1 lsl nlanes) - 1 *)
  bidx_of_pos : int array; (* #lanes with assoc <= pos, pos < depth *)
  w_buckets : int array;   (* nlanes+1 window counters indexed by bidx *)
  mutable last_idx : int;  (* set-index toggle baseline (starts 0) *)
  mutable w_idx_tog : int; (* window index toggles *)
  mutable idx_tog_tot : int;
  shift_id : int;          (* index into the classify-mode shadows *)
}

(* Classify mode: shared per block size.  [seen] is the set of blocks
   ever fetched (a first touch misses at every lane: all caches start
   cold).  The fully-associative recency list gives the FA stack
   distance d; a missing lane's shadow cache of capacity C (its line
   count) contains the block iff d < C, reproducing [classify_miss]'s
   compulsory / conflict / capacity decision and its ordering (classify
   first, touch after, touch on hits too). *)
type fa_node = { mutable prev : fa_node; mutable next : fa_node }

type shadow = {
  shift : int;
  seen : (int, unit) Hashtbl.t;
  fa : (int, fa_node) Hashtbl.t;
  head : fa_node;          (* sentinel; head.next = MRU *)
  mutable cur_first : bool;
  mutable cur_dfa : int;   (* FA stack distance of the current fetch *)
}

let shadow_create shift =
  let rec s = { prev = s; next = s } in
  { shift; seen = Hashtbl.create 256; fa = Hashtbl.create 256; head = s;
    cur_first = false; cur_dfa = max_int }

let fa_distance sh node =
  let d = ref 0 in
  let n = ref sh.head.next in
  while !n != node do
    incr d;
    n := !n.next
  done;
  !d

let fa_touch sh b =
  match Hashtbl.find_opt sh.fa b with
  | Some n ->
      n.prev.next <- n.next;
      n.next.prev <- n.prev;
      n.next <- sh.head.next;
      n.prev <- sh.head;
      sh.head.next.prev <- n;
      sh.head.next <- n
  | None ->
      let n = { prev = sh.head; next = sh.head.next } in
      Hashtbl.replace sh.fa b n;
      sh.head.next.prev <- n;
      sh.head.next <- n

let pow2_ge n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let rec chunks k = function
  | [] -> []
  | l ->
      let rec take n = function
        | x :: tl when n > 0 ->
            let a, b = take (n - 1) tl in
            (x :: a, b)
        | rest -> ([], rest)
      in
      let a, b = take k l in
      a :: chunks k b

(* Add a pairing mask into the bit-sliced counters at [off]: a carry-save
   add of one bit per lane, O(log window) word operations.  The counters
   live in one flat array of [nslices] words per packed pairing word. *)
let[@inline] slices_add slices off pm =
  let carry = ref pm in
  let k = ref off in
  while !carry <> 0 do
    let s = Array.unsafe_get slices !k in
    Array.unsafe_set slices !k (s lxor !carry);
    carry := s land !carry;
    incr k
  done

let[@inline] slices_get slices off nslices bit =
  let v = ref 0 in
  for k = 0 to nslices - 1 do
    v := !v lor (((Array.unsafe_get slices (off + k) lsr bit) land 1) lsl k)
  done;
  !v

let run ?(pipeline_cfg = Pf_cpu.Pipeline.sa1100) ?(classify = false)
    ?(params_of = fun (_ : Icache.config) -> Account.Params.default)
    ~geometries ~fetch_data trace =
  let cfgs = Array.of_list geometries in
  let nl = Array.length cfgs in
  if nl = 0 then
    { stats = [||]; classes = (if classify then Some [||] else None) }
  else begin
    Array.iter Icache.validate cfgs;
    let geoms = Array.map Pf_power.Geometry.of_config cfgs in
    let params = Array.map params_of cfgs in
    let kwin = params.(0).Account.Params.peak_window_insns in
    Array.iter
      (fun (p : Account.Params.t) ->
        if p.Account.Params.peak_window_insns <> kwin then
          Sim_error.raisef Sim_error.Invalid_config ~where
            "peak_window_insns must be uniform across geometries \
             (got %d and %d): windows must close on the same trace index \
             in every lane"
            kwin p.Account.Params.peak_window_insns)
      params;
    if kwin <= 0 then
      Sim_error.raisef Sim_error.Invalid_config ~where
        "peak_window_insns must be positive (got %d)" kwin;
    let nslices =
      let rec bits k n = if k = 0 then n else bits (k lsr 1) (n + 1) in
      bits kwin 1
    in
    let lane_assoc = Array.map (fun c -> c.Icache.assoc) cfgs in
    let lane_bw = Array.map (fun c -> c.Icache.block_bytes / 4) cfgs in
    let lane_lines =
      Array.map (fun c -> c.Icache.size_bytes / c.Icache.block_bytes) cfgs
    in
    let lane_prof = Array.make nl (-1) in
    let comp = Array.make nl 0 in
    let cap = Array.make nl 0 in
    let conf = Array.make nl 0 in
    (* prepass: the code's word-address span bounds every profile's
       useful stack size *)
    let min_w = ref max_int and max_w = ref min_int in
    Pf_cpu.Trace.iter trace (fun addr _ ->
        let w = addr land lnot 3 in
        if w < !min_w then min_w := w;
        if w > !max_w then max_w := w);
    (* group lanes into (block_shift, nsets) profiles *)
    let groups : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
    for l = nl - 1 downto 0 do
      let key =
        (Bits.log2_exact cfgs.(l).Icache.block_bytes, Icache.sets cfgs.(l))
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (l :: prev)
    done;
    let shifts = Hashtbl.create 8 in
    let shadows = ref [] in
    let nshadows = ref 0 in
    let shift_id shift =
      match Hashtbl.find_opt shifts shift with
      | Some i -> i
      | None ->
          let i = !nshadows in
          Hashtbl.replace shifts shift i;
          shadows := shadow_create shift :: !shadows;
          incr nshadows;
          i
    in
    let profs =
      Hashtbl.fold
        (fun (block_shift, nsets) ids acc ->
          let ids =
            List.sort
              (fun a b -> compare lane_assoc.(a) lane_assoc.(b))
              ids
          in
          List.fold_left
            (fun acc ids ->
              let lanes = Array.of_list ids in
              let nlanes = Array.length lanes in
              let maxd = lane_assoc.(lanes.(nlanes - 1)) in
              let span =
                if !min_w > !max_w then 1
                else
                  (!max_w lsr block_shift) - (!min_w lsr block_shift) + 1
              in
              let s_eff = min nsets (pow2_ge span) in
              let t_max = ((span - 1) / s_eff) + 1 in
              let depth = max 1 (min maxd t_max) in
              let bidx_of_pos =
                Array.init depth (fun pos ->
                    let n = ref 0 in
                    Array.iter
                      (fun l -> if lane_assoc.(l) <= pos then incr n)
                      lanes;
                    !n)
              in
              {
                block_shift;
                nsets;
                s_mask = s_eff - 1;
                depth;
                stack = Array.make (s_eff * depth) (-1);
                lanes;
                nlanes;
                full_mask = (1 lsl nlanes) - 1;
                bidx_of_pos;
                w_buckets = Array.make (nlanes + 1) 0;
                last_idx = 0;
                w_idx_tog = 0;
                idx_tog_tot = 0;
                shift_id = (if classify then shift_id block_shift else -1);
              }
              :: acc)
            acc (chunks max_lanes ids))
        groups []
    in
    let profs = Array.of_list profs in
    (* sort by shift so each shift's profiles form one contiguous run,
       the unit of the shift-gating fast path below *)
    Array.sort
      (fun a b -> compare (a.block_shift, a.nsets) (b.block_shift, b.nsets))
      profs;
    let np = Array.length profs in
    Array.iteri
      (fun pi p ->
        Array.iter (fun l -> lane_prof.(l) <- pi) p.lanes)
      profs;
    (* shift groups: contiguous [grp_lo, grp_hi] runs of profiles that
       share a block shift, each with its own previous-block gate *)
    let ngrp = ref 0 in
    for pi = 0 to np - 1 do
      if pi = 0 || profs.(pi).block_shift <> profs.(pi - 1).block_shift
      then incr ngrp
    done;
    let ngrp = !ngrp in
    let grp_shift = Array.make ngrp 0 in
    let grp_lo = Array.make ngrp 0 in
    let grp_hi = Array.make ngrp 0 in
    let g = ref (-1) in
    for pi = 0 to np - 1 do
      if pi = 0 || profs.(pi).block_shift <> profs.(pi - 1).block_shift
      then begin
        incr g;
        grp_shift.(!g) <- profs.(pi).block_shift;
        grp_lo.(!g) <- pi
      end;
      grp_hi.(!g) <- pi
    done;
    let grp_prev = Array.make ngrp (-1) in
    let grp_dirty = Array.make ngrp false in
    (* first-fit pack every profile's lane mask into shared 62-bit
       pairing words; a profile's lanes stay contiguous in one word *)
    let pwA = Array.make np 0 in (* packed word index per profile *)
    let poA = Array.make np 0 in (* bit offset within the word *)
    let segF = Array.make np 0 in (* full_mask lsl offset *)
    let nw = ref 0 in
    let used = Array.make np 0 in
    for pi = 0 to np - 1 do
      let n = profs.(pi).nlanes in
      let w = ref 0 in
      while !w < !nw && used.(!w) + n > max_lanes do incr w done;
      if !w = !nw then incr nw;
      pwA.(pi) <- !w;
      poA.(pi) <- used.(!w);
      segF.(pi) <- profs.(pi).full_mask lsl used.(!w);
      used.(!w) <- used.(!w) + n
    done;
    let nw = !nw in
    let pk_hm = Array.make nw 0 in (* current hit mask, per packed word *)
    let pk_pp = Array.make nw 0 in (* lanes where the previous event paired *)
    let pk_full = Array.make nw 0 in
    for pi = 0 to np - 1 do
      pk_full.(pwA.(pi)) <- pk_full.(pwA.(pi)) lor segF.(pi)
    done;
    Array.blit pk_full 0 pk_hm 0 nw;
    let pk_slices = Array.make (nw * nslices) 0 in
    let pp_zero = ref true in
    (* classify-mode scratch: the profiles of the current fetch with a
       nonzero bucket (only those contribute misses to classify) *)
    let chg_pi = Array.make (if classify then np else 1) 0 in
    let chg_bidx = Array.make (if classify then np else 1) 0 in
    let nchg = ref 0 in
    let shadows = Array.of_list (List.rev !shadows) in
    (* dense lane order: profile-major positions so the window-close
       loop walks every per-lane array sequentially instead of
       scattering through geometry order.  [perm] maps dense position
       -> lane id; [dpos] inverts it for the cold result assembly. *)
    let lane_base = Array.make np 0 in
    let perm = Array.make nl 0 in
    let doff = ref 0 in
    for pi = 0 to np - 1 do
      lane_base.(pi) <- !doff;
      let p = profs.(pi) in
      for li = 0 to p.nlanes - 1 do
        perm.(!doff + li) <- p.lanes.(li)
      done;
      doff := !doff + p.nlanes
    done;
    let dpos = Array.make nl 0 in
    Array.iteri (fun i l -> dpos.(l) <- i) perm;
    (* Per-lane power coefficients, prefetched into dense float arrays:
       the window close evaluates peak power once per lane per window,
       and in Closure mode (no flambda) a cross-module call to
       [Account.window_power] boxes its float result — ~2 words per
       call, a per-event allocation at sweep scale.  The formula below
       is the exact operation order of [Account.window_power] /
       [Account.switching_energy]; the sweep-vs-replay QCheck
       differential pins the bit-identity. *)
    let k_acc =
      Array.init nl (fun i ->
          params.(perm.(i)).Account.Params.k_access)
    in
    let k_out =
      Array.init nl (fun i ->
          params.(perm.(i)).Account.Params.k_output)
    in
    let k_ref =
      Array.init nl (fun i ->
          params.(perm.(i)).Account.Params.k_refill_per_bit)
    in
    let k_int =
      Array.init nl (fun i ->
          Account.internal_per_cycle params.(perm.(i)) geoms.(perm.(i)))
    in
    let k_lkg =
      Array.init nl (fun i ->
          Account.leakage_per_cycle params.(perm.(i)) geoms.(perm.(i)))
    in
    let bw_d = Array.init nl (fun i -> lane_bw.(perm.(i))) in
    (* per-lane accumulators in dense order; peaks in flat float arrays
       stay unboxed *)
    let lane_cycles = Array.make nl 0 in
    let lane_misses = Array.make nl 0 in
    let lane_peak = Array.make nl 0.0 in
    (* peak pre-filter: a window can only raise lane i's peak if
       sw/cyc > lane_peak - k_int - k_lkg; [lane_thr] caches that bound
       shaved by a relative 1e-6 (plus an absolute epsilon around zero),
       6 orders beyond float rounding, so the cheap multiply test below
       never rejects a window the exact comparison would accept.  The
       exact [Account.window_power] comparison still decides. *)
    let lane_thr = Array.make nl neg_infinity in
    (* shared (geometry-invariant) state *)
    let cfg = pipeline_cfg in
    let mp = cfg.Pf_cpu.Pipeline.miss_penalty in
    let dual = cfg.Pf_cpu.Pipeline.dual_issue in
    let fbuf = cfg.Pf_cpu.Pipeline.fetch_buffer in
    let last_fetch = ref (-1) in
    let last_out = ref 0 in
    let open_prev = ref false in
    let prev_writes = ref 0 in
    let prev_mem = ref false in
    let prev_load_writes = ref 0 in
    (* window sums (shared) and running totals *)
    let w_events = ref 0 in
    let w_acc = ref 0 in
    let w_out_tog = ref 0 in
    let w_bubbles = ref 0 in
    let w_extras = ref 0 in
    let w_dm = ref 0 in
    let tot_acc = ref 0 in
    let tot_out_tog = ref 0 in
    (* the default 32-instruction window needs 7 bit slices; unrolled
       extraction with the slice words in registers beats the generic
       per-lane loop by ~2x, and any window size up to 256 fits *)
    let slice_unroll = nslices <= 8 in
    let close_window () =
      let we = !w_events in
      if we > 0 then begin
        let shared = !w_bubbles + !w_extras + (mp * !w_dm) in
        let f_acc = float_of_int !w_acc in
        for pi = 0 to np - 1 do
          let p = profs.(pi) in
          let soff = pwA.(pi) * nslices in
          let lane0 = poA.(pi) in
          let s0 = Array.unsafe_get pk_slices soff in
          let s1 =
            if nslices > 1 then Array.unsafe_get pk_slices (soff + 1) else 0
          in
          let s2 =
            if nslices > 2 then Array.unsafe_get pk_slices (soff + 2) else 0
          in
          let s3 =
            if nslices > 3 then Array.unsafe_get pk_slices (soff + 3) else 0
          in
          let s4 =
            if nslices > 4 then Array.unsafe_get pk_slices (soff + 4) else 0
          in
          let s5 =
            if nslices > 5 then Array.unsafe_get pk_slices (soff + 5) else 0
          in
          let s6 =
            if nslices > 6 then Array.unsafe_get pk_slices (soff + 6) else 0
          in
          let s7 =
            if nslices > 7 then Array.unsafe_get pk_slices (soff + 7) else 0
          in
          (* zero exactly when none of THIS profile's lanes paired in
             the window: the extraction can be skipped wholesale *)
          let sall =
            (s0 lor s1 lor s2 lor s3 lor s4 lor s5 lor s6 lor s7)
            land Array.unsafe_get segF pi
          in
          let w_tog = !w_out_tog + p.w_idx_tog in
          let f_tog = float_of_int w_tog in
          let bk = p.w_buckets in
          let lb = Array.unsafe_get lane_base pi in
          let missrun = ref 0 in
          for li = p.nlanes - 1 downto 0 do
            missrun := !missrun + Array.unsafe_get bk (li + 1);
            let i = lb + li in
            let bit = lane0 + li in
            let paired =
              if sall = 0 then 0
              else if slice_unroll then
                ((s0 lsr bit) land 1)
                lor (((s1 lsr bit) land 1) lsl 1)
                lor (((s2 lsr bit) land 1) lsl 2)
                lor (((s3 lsr bit) land 1) lsl 3)
                lor (((s4 lsr bit) land 1) lsl 4)
                lor (((s5 lsr bit) land 1) lsl 5)
                lor (((s6 lsr bit) land 1) lsl 6)
                lor (((s7 lsr bit) land 1) lsl 7)
              else slices_get pk_slices soff nslices bit
            in
            let mw = !missrun in
            let cyc = we - paired + shared + (mp * mw) in
            lane_cycles.(i) <- lane_cycles.(i) + cyc;
            lane_misses.(i) <- lane_misses.(i) + mw;
            if cyc > 0 then begin
              (* [Account.window_power], operation for operation (see
                 the coefficient prefetch above for why it is inlined
                 by hand) *)
              let fcyc = float_of_int cyc in
              let sw =
                (k_acc.(i) *. f_acc)
                +. (k_out.(i) *. f_tog)
                +. (k_ref.(i) *. float_of_int (mw * bw_d.(i) * 32))
              in
              if sw > lane_thr.(i) *. fcyc then begin
                let pw = (sw /. fcyc) +. k_int.(i) +. k_lkg.(i) in
                if pw > lane_peak.(i) then begin
                  lane_peak.(i) <- pw;
                  let v = pw -. k_int.(i) -. k_lkg.(i) in
                  lane_thr.(i) <- v -. (Float.abs v *. 1e-6) -. 1e-12
                end
              end
            end
          done;
          p.idx_tog_tot <- p.idx_tog_tot + p.w_idx_tog;
          p.w_idx_tog <- 0;
          Array.fill p.w_buckets 0 (p.nlanes + 1) 0
        done;
        Array.fill pk_slices 0 (nw * nslices) 0;
        tot_acc := !tot_acc + !w_acc;
        tot_out_tog := !tot_out_tog + !w_out_tog;
        w_events := 0;
        w_acc := 0;
        w_out_tog := 0;
        w_bubbles := 0;
        w_extras := 0;
        w_dm := 0
      end
    in
    Pf_cpu.Trace.iter trace (fun addr meta ->
        let word = addr land lnot 3 in
        let fetched = word <> !last_fetch || not fbuf in
        if fetched then begin
          let data = fetch_data word in
          w_acc := !w_acc + 1;
          w_out_tog :=
            !w_out_tog + Icache.output_toggle ~last_out:!last_out ~out:data;
          last_out := data;
          last_fetch := word;
          if classify then nchg := 0;
          for g = 0 to ngrp - 1 do
            let b = word lsr Array.unsafe_get grp_shift g in
            if b <> Array.unsafe_get grp_prev g then begin
              Array.unsafe_set grp_prev g b;
              Array.unsafe_set grp_dirty g true;
              for pi = Array.unsafe_get grp_lo g
                    to Array.unsafe_get grp_hi g do
                let p = Array.unsafe_get profs pi in
                let st = p.stack in
                let d = p.depth in
                let base = (b land p.s_mask) * d in
                let bidx =
                  (* position 0 means assoc > 0 everywhere: bucket 0 *)
                  if Array.unsafe_get st base = b then 0
                  else begin
                    (* empty (-1) slots are contiguous at the tail, so
                       the first one proves b is not tracked: stop the
                       scan there, and rotating up to it (instead of
                       the full depth) shifts only real entries — the
                       dropped tail stays all-empty either way *)
                    let j = ref 1 in
                    while
                      !j < d
                      && (let x = Array.unsafe_get st (base + !j) in
                          x <> b && x >= 0)
                    do
                      incr j
                    done;
                    let pos = !j in
                    let hit =
                      pos < d && Array.unsafe_get st (base + pos) = b
                    in
                    (* rotate the hit prefix (or, on a miss, the whole
                       occupied prefix) down one and install b at MRU —
                       the same move-to-front [access_fast] performs *)
                    let stop = if pos < d then pos else d - 1 in
                    for k = stop downto 1 do
                      Array.unsafe_set st (base + k)
                        (Array.unsafe_get st (base + k - 1))
                    done;
                    Array.unsafe_set st base b;
                    if hit then p.bidx_of_pos.(pos) else p.nlanes
                  end
                in
                let w = Array.unsafe_get pwA pi in
                (if bidx > 0 then begin
                   (* bucket 0 is never read by the miss suffix sums,
                      so only nonzero buckets are recorded *)
                   p.w_buckets.(bidx) <- p.w_buckets.(bidx) + 1;
                   let hm = (p.full_mask lsr bidx) lsl bidx in
                   Array.unsafe_set pk_hm w
                     (Array.unsafe_get pk_hm w
                      land lnot (Array.unsafe_get segF pi)
                     lor (hm lsl Array.unsafe_get poA pi));
                   if classify then begin
                     chg_pi.(!nchg) <- pi;
                     chg_bidx.(!nchg) <- bidx;
                     incr nchg
                   end
                 end
                 else
                   Array.unsafe_set pk_hm w
                     (Array.unsafe_get pk_hm w lor Array.unsafe_get segF pi));
                let idx = b land (p.nsets - 1) in
                p.w_idx_tog <-
                  p.w_idx_tog + Icache.index_toggle ~last_idx:p.last_idx ~idx;
                p.last_idx <- idx
              done
            end
            else if Array.unsafe_get grp_dirty g then begin
              (* unchanged block: a position-0 hit in every profile of
                 the group — restore the hit-mask segments to full once,
                 then the group costs one compare per fetch *)
              Array.unsafe_set grp_dirty g false;
              for pi = Array.unsafe_get grp_lo g
                    to Array.unsafe_get grp_hi g do
                let w = Array.unsafe_get pwA pi in
                Array.unsafe_set pk_hm w
                  (Array.unsafe_get pk_hm w lor Array.unsafe_get segF pi)
              done
            end
          done;
          if classify then begin
            (* mirror [classify_miss]: decide classes against the
               pre-touch shadow state, then touch (hits touch too) *)
            for si = 0 to Array.length shadows - 1 do
              let sh = shadows.(si) in
              let b = word lsr sh.shift in
              sh.cur_first <- not (Hashtbl.mem sh.seen b);
              sh.cur_dfa <-
                (match Hashtbl.find_opt sh.fa b with
                | Some n -> fa_distance sh n
                | None -> max_int)
            done;
            for ci = 0 to !nchg - 1 do
              let p = profs.(chg_pi.(ci)) in
              let bidx = chg_bidx.(ci) in
              let sh = shadows.(p.shift_id) in
              for li = 0 to bidx - 1 do
                let l = p.lanes.(li) in
                if sh.cur_first then comp.(l) <- comp.(l) + 1
                else if sh.cur_dfa < lane_lines.(l) then
                  conf.(l) <- conf.(l) + 1
                else cap.(l) <- cap.(l) + 1
              done
            done;
            for si = 0 to Array.length shadows - 1 do
              let sh = shadows.(si) in
              let b = word lsr sh.shift in
              if sh.cur_first then Hashtbl.replace sh.seen b ();
              fa_touch sh b
            done
          end
        end;
        let dm = Pf_cpu.Trace.meta_dmisses meta in
        w_dm := !w_dm + dm;
        let reads = Pf_cpu.Trace.meta_reads meta in
        let writes = Pf_cpu.Trace.meta_writes meta in
        let ccode = Pf_cpu.Trace.meta_cls_code meta in
        let is_branch = ccode = 4 in
        let is_mul = ccode = 1 in
        let is_load = ccode = 2 in
        let is_mem = is_load || ccode = 3 in
        let bubble =
          if !prev_load_writes land reads <> 0 then cfg.Pf_cpu.Pipeline.load_use_bubble
          else 0
        in
        w_bubbles := !w_bubbles + bubble;
        let compat =
          !open_prev && dm = 0 && bubble = 0
          && reads land !prev_writes = 0
          && (not (is_mem && !prev_mem))
          && not is_branch
        in
        (if compat then begin
           (* a non-fetched event hits every lane: pair against the
              all-ones masks instead of rebuilding pk_hm *)
           let hmarr = if fetched then pk_hm else pk_full in
           if !pp_zero then begin
             pp_zero := false;
             for w = 0 to nw - 1 do
               let pm = Array.unsafe_get hmarr w in
               Array.unsafe_set pk_pp w pm;
               if pm <> 0 then slices_add pk_slices (w * nslices) pm
             done
           end
           else
             for w = 0 to nw - 1 do
               let pm =
                 Array.unsafe_get hmarr w
                 land lnot (Array.unsafe_get pk_pp w)
               in
               Array.unsafe_set pk_pp w pm;
               if pm <> 0 then slices_add pk_slices (w * nslices) pm
             done
         end
         else
           (* lazily mark the pairing state cleared instead of zeroing
              every word on every non-compat event *)
           pp_zero := true);
        let taken = Pf_cpu.Trace.meta_taken meta in
        let extra =
          Pf_cpu.Pipeline.extra_cycles cfg
            ~cls:(Pf_cpu.Trace.cls_of_code ccode)
            ~taken
            ~backward:(Pf_cpu.Trace.meta_backward meta)
            ~mem_words:(Pf_cpu.Trace.meta_mem_words meta)
        in
        w_extras := !w_extras + extra;
        open_prev := dual && (not is_branch) && (not is_mul) && extra = 0;
        prev_writes := writes;
        prev_mem := is_mem;
        if taken then last_fetch := -1;
        prev_load_writes := (if is_load then writes else 0);
        incr w_events;
        if !w_events = kwin then close_window ());
    close_window ();
    let f = !tot_acc in
    let n = Pf_cpu.Trace.length trace in
    let dpm = Pf_cpu.Trace.dcache_rate trace in
    let stats =
      Array.init nl (fun l ->
          let i = dpos.(l) in
          let m = lane_misses.(i) in
          let cycles = lane_cycles.(i) in
          {
            Pf_cpu.Trace.instructions = n;
            cycles;
            fetch_accesses = f;
            cache_accesses = f;
            cache_misses = m;
            miss_rate_per_million =
              (if f = 0 then 0.0
               else 1_000_000.0 *. float_of_int m /. float_of_int f);
            dcache_miss_rate_pm = dpm;
            power =
              Account.report_of_counts ~params:params.(l) geoms.(l)
                ~accesses:f
                ~toggles:(!tot_out_tog + profs.(lane_prof.(l)).idx_tog_tot)
                ~refill_words:(m * lane_bw.(l))
                ~cycles ~peak:lane_peak.(i);
          })
    in
    let classes =
      if classify then
        Some
          (Array.init nl (fun l ->
               { compulsory = comp.(l); capacity = cap.(l);
                 conflict = conf.(l) }))
      else None
    in
    { stats; classes }
  end
