(** Single-pass all-geometry cache simulation (Mattson stack distances).

    {!run} makes ONE annotated pass over a recorded trace and produces,
    for every cache geometry of a grid simultaneously, statistics that
    are bit-identical to what {!Pf_cpu.Trace.replay} measures geometry
    by geometry — hits, misses, cycle counts, toggle activity, energy
    breakdown and instruction-windowed peak power.

    The kernel exploits three properties of the simulated machine (see
    the implementation header for the correctness argument, and
    DESIGN.md for the full derivation):

    - the I-cache is exact LRU, so one Mattson stack-distance profile
      per (block size, set count) pair resolves hit/miss for all
      associativities at once (LRU inclusion);
    - the instruction stream, fetch filtering, output-bus words and
      data-side stalls are geometry-invariant, so they are computed once
      and shared by all lanes;
    - dual-issue pairing and power accounting admit per-lane recurrences
      evaluated word-parallel over lane bitmasks, with peak windows
      closing on instruction-aligned (hence geometry-invariant) trace
      indices.

    Cost is O(events x profiles) time and O(code span) space per
    profile, instead of replay's O(events x geometries) — on dense
    grids (many associativities and sizes per block size) this is an
    order of magnitude faster than per-geometry replay.  The replay
    path remains the differential-testing oracle. *)

(** Miss classification of one geometry (lane), produced only when
    [classify] is set: same definitions as the {!Pf_cache.Icache}
    shadow-cache classifier (compulsory = first touch of the block;
    conflict = resident in a fully-associative cache of equal capacity;
    capacity = the rest). *)
type miss_classes = { compulsory : int; capacity : int; conflict : int }

type result = {
  stats : Pf_cpu.Trace.stats array;
      (** one per input geometry, in input order; each bit-identical to
          [Trace.replay ~cache_cfg:geometry ...] of the same trace *)
  classes : miss_classes array option;
      (** [Some] iff [classify] was set; parallel to [stats] *)
}

val run :
  ?pipeline_cfg:Pf_cpu.Pipeline.config ->
  ?classify:bool ->
  ?params_of:(Pf_cache.Icache.config -> Pf_power.Account.Params.t) ->
  geometries:Pf_cache.Icache.config list ->
  fetch_data:(int -> int) ->
  Pf_cpu.Trace.t ->
  result
(** Evaluate every geometry of [geometries] against the trace in one
    pass.  [fetch_data] must be the recording run's word-at-address
    function, exactly as for {!Pf_cpu.Trace.replay}.  [params_of] maps
    each geometry to its power parameters (default: the same
    [Account.Params.default] a bare replay uses; the explorer passes
    [Account.Params.for_geometry]).  All parameter sets must agree on
    [peak_window_insns] — peak windows must close at the same trace
    index in every lane — otherwise a [Sim_error] of kind
    [Invalid_config] is raised.  [classify] (default false) additionally
    classifies every miss per lane; this engages a slower shared-shadow
    path and is meant for differential tests, not hot sweeps.
    Geometries are validated ({!Pf_cache.Icache.validate}); duplicates
    are allowed and evaluated independently. *)
