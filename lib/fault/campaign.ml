open Pf_util

type outcome = Clean | Detected | Silent | Divergent | Crashed

type report = {
  target : Injector.target;
  rate : float;
  seed : int;
  trials : int;
  parity : bool;
  baseline : Pf_fits.Run.result;
  flips : int;
  entries_corrupted : int;
  parity_detectable : int;
  clean : int;
  detected : int;
  silent : int;
  divergent : int;
  crashed : int;
  crash_kinds : (string * int) list;
}

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let default_cache_cfg = Pf_cache.Icache.config ~size_bytes:(16 * 1024) ()

let run ?(trials = 20) ?(parity = false) ?max_steps
    ?(cache_cfg = default_cache_cfg) ?jobs ~target ~rate ~seed ~reference
    (tr : Pf_fits.Translate.t) =
  let baseline = Pf_fits.Run.run ~cache_cfg tr in
  let budget =
    match max_steps with
    | Some m -> m
    | None ->
        (* corrupted control flow can loop: give trials generous but
           bounded headroom over the healthy instruction count *)
        max 10_000_000 (4 * baseline.Pf_fits.Run.fits_instructions)
  in
  let rng = Rng.create seed in
  (* Split every trial's generator from the parent stream up front, in
     trial order, so the per-trial streams — and therefore the whole
     campaign — are identical whether trials then run sequentially or
     across a pool of domains. *)
  let trngs = Array.make (max trials 0) rng in
  for i = 0 to trials - 1 do
    trngs.(i) <- Rng.split rng
  done;
  let one_trial trng =
    let run_trial, trial_stats, icache_detected =
      match (target : Injector.target) with
      | Injector.Decoder ->
          let tr', t = Injector.corrupt_decoder trng ~rate ~parity tr in
          ( (fun () -> Pf_fits.Run.run ~cache_cfg ~max_steps:budget tr'),
            (fun () -> t), false )
      | Injector.Dict ->
          let tr', t = Injector.corrupt_dict trng ~rate ~parity tr in
          ( (fun () -> Pf_fits.Run.run ~cache_cfg ~max_steps:budget tr'),
            (fun () -> t), false )
      | Injector.Icache ->
          let cache = Pf_cache.Icache.create cache_cfg in
          let t =
            Injector.schedule_icache_flips trng ~rate ~parity
              ~accesses:baseline.Pf_fits.Run.cache_accesses ~cfg:cache_cfg
              cache
          in
          ( (fun () ->
              Pf_fits.Run.run ~cache ~cache_cfg ~max_steps:budget tr),
            (fun () -> t),
            parity && t.Injector.parity_detectable > 0 )
      | Injector.Regs ->
          let hook, summary = Injector.regs_hook trng ~rate in
          ( (fun () ->
              Pf_fits.Run.run ~cache_cfg ~max_steps:budget ~on_step:hook tr),
            summary, false )
    in
    let result = Sim_error.protect ~where:"fault.campaign" run_trial in
    (result, trial_stats (), icache_detected)
  in
  let outcomes = Pf_harness.Pool.map ?jobs one_trial (Array.to_list trngs) in
  let flips = ref 0 and corrupted = ref 0 and detectable = ref 0 in
  let clean = ref 0 and detected = ref 0 and silent = ref 0 in
  let divergent = ref 0 and crashed = ref 0 in
  let crash_kinds = Hashtbl.create 4 in
  List.iter
    (fun (result, t, icache_detected) ->
      flips := !flips + t.Injector.flips;
      corrupted := !corrupted + t.Injector.entries_corrupted;
      detectable := !detectable + t.Injector.parity_detectable;
      match result with
      | Ok r ->
          if t.Injector.flips = 0 then incr clean
          else if r.Pf_fits.Run.output <> reference then incr divergent
          else if icache_detected then incr detected
          else incr silent
      | Error e ->
          if has_substring ~sub:"parity" e.Sim_error.detail then
            incr detected
          else begin
            incr crashed;
            let k = Sim_error.kind_name e.Sim_error.kind in
            Hashtbl.replace crash_kinds k
              (1 + Option.value ~default:0 (Hashtbl.find_opt crash_kinds k))
          end)
    outcomes;
  let crash_kinds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) crash_kinds []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    target; rate; seed; trials; parity; baseline;
    flips = !flips;
    entries_corrupted = !corrupted;
    parity_detectable = !detectable;
    clean = !clean;
    detected = !detected;
    silent = !silent;
    divergent = !divergent;
    crashed = !crashed;
    crash_kinds;
  }

let to_string r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "fault campaign: target=%s rate=%g seed=%d trials=%d parity=%s\n"
    (Injector.target_name r.target)
    r.rate r.seed r.trials
    (if r.parity then "on" else "off");
  Printf.bprintf b
    "  injected: %d bit flips across %d entries (%d parity-detectable)\n"
    r.flips r.entries_corrupted r.parity_detectable;
  Printf.bprintf b "  outcomes: detected=%d silent=%d divergent=%d crashed=%d clean=%d\n"
    r.detected r.silent r.divergent r.crashed r.clean;
  List.iter
    (fun (k, n) -> Printf.bprintf b "    crash kind %-18s %d\n" k n)
    r.crash_kinds;
  if r.entries_corrupted > 0 then
    Printf.bprintf b "  parity coverage: %.1f%% of corrupted entries\n"
      (100.0
      *. float_of_int r.parity_detectable
      /. float_of_int r.entries_corrupted);
  Printf.bprintf b "  baseline: %d fits insns, %d cycles\n"
    r.baseline.Pf_fits.Run.fits_instructions r.baseline.Pf_fits.Run.cycles;
  Buffer.contents b
