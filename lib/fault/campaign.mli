(** SEU-sensitivity campaigns: run a translated benchmark many times under
    seeded injection and classify each trial's outcome.

    Outcome taxonomy (per trial):
    - [Clean]: the random draw planted no flips; the run is bit-identical
      to the baseline.
    - [Detected]: a parity-protected structure caught the corruption (the
      machine trapped on a poisoned decoder/dictionary entry, or the
      cache invalidated a flipped line).
    - [Silent]: flips landed but the program still printed the reference
      output (dead entry, masked value, or timing-only perturbation).
    - [Divergent]: the program completed with {e wrong} output — silent
      data corruption, the worst case.
    - [Crashed]: the simulation raised a structured error (decode fault,
      memory fault, watchdog) before completing. *)

type outcome = Clean | Detected | Silent | Divergent | Crashed

type report = {
  target : Injector.target;
  rate : float;
  seed : int;
  trials : int;
  parity : bool;
  baseline : Pf_fits.Run.result;
      (** the uninjected run; with [rate = 0.] every trial reproduces it *)
  flips : int;                  (** total bit flips across all trials *)
  entries_corrupted : int;
  parity_detectable : int;      (** entries a parity bit would flag *)
  clean : int;
  detected : int;
  silent : int;
  divergent : int;
  crashed : int;
  crash_kinds : (string * int) list;
      (** [Sim_error] kind name -> count, most frequent first *)
}

val run :
  ?trials:int ->
  ?parity:bool ->
  ?max_steps:int ->
  ?cache_cfg:Pf_cache.Icache.config ->
  ?jobs:int ->
  target:Injector.target ->
  rate:float ->
  seed:int ->
  reference:string ->
  Pf_fits.Translate.t ->
  report
(** [run ~target ~rate ~seed ~reference tr] executes the baseline once,
    then [trials] (default 20) independently-seeded injection runs.  Each
    trial draws its generator with {!Pf_util.Rng.split} from a parent
    seeded with [seed], so the whole campaign replays exactly; the splits
    happen up front in trial order, which keeps the report independent of
    [jobs] (default {!Pf_harness.Pool.default_jobs}) when trials run on a
    pool of worker domains.  Runaway
    corrupted programs are cut off by a step budget derived from the
    baseline (override with [max_steps]) and surface as [Crashed] with a
    watchdog kind.  [reference] is the golden program output. *)

val to_string : report -> string
(** Multi-line human-readable breakdown. *)
