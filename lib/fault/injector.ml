open Pf_util
module T = Pf_fits.Translate
module D = Pf_fits.Decode
module M = Pf_fits.Mapping
module S = Pf_fits.Spec

type target = Decoder | Dict | Icache | Regs

let target_name = function
  | Decoder -> "decoder"
  | Dict -> "dict"
  | Icache -> "icache"
  | Regs -> "regs"

let target_of_string = function
  | "decoder" -> Some Decoder
  | "dict" -> Some Dict
  | "icache" -> Some Icache
  | "regs" -> Some Regs
  | _ -> None

type trial = {
  flips : int;
  entries_corrupted : int;
  parity_detectable : int;
}

let no_trial = { flips = 0; entries_corrupted = 0; parity_detectable = 0 }

(* Which bits of a [width]-wide entry flip this trial.  One draw per bit
   keeps the stream position independent of earlier outcomes, so a given
   seed always corrupts the same bits. *)
let flip_bits rng ~rate ~width =
  let bits = ref [] in
  for b = 0 to width - 1 do
    if Rng.float rng 1.0 < rate then bits := b :: !bits
  done;
  !bits

let mask_of_bits = List.fold_left (fun m b -> m lor (1 lsl b)) 0

(* ---- decoder ----------------------------------------------------------- *)

let corrupt_decoder rng ~rate ~parity (tr : T.t) =
  let spec = tr.T.spec in
  let flips = ref 0 and corrupted = ref 0 and detectable = ref 0 in
  let insns =
    Array.map
      (fun (fi : T.finsn) ->
        match flip_bits rng ~rate ~width:D.word_bits with
        | [] -> fi
        | bits ->
            flips := !flips + List.length bits;
            incr corrupted;
            let odd = List.length bits land 1 = 1 in
            if odd then incr detectable;
            let micro =
              if parity && odd then
                M.M_undef "parity mismatch in decoder entry"
              else
                let f =
                  D.unpack (D.pack (D.fields_of fi) lxor mask_of_bits bits)
                in
                if D.faithful spec fi then
                  match D.decode spec f with
                  | D.Micro m -> m
                  | D.Undefined why -> M.M_undef why
                else M.M_undef "corrupted control word (lossy entry)"
            in
            { fi with T.micro })
      tr.T.insns
  in
  ( { tr with T.insns },
    { flips = !flips; entries_corrupted = !corrupted;
      parity_detectable = !detectable } )

(* ---- dictionary -------------------------------------------------------- *)

let references_dict spec (fi : T.finsn) =
  fi.T.opid >= 0
  && fi.T.opid < Array.length spec.S.ops
  &&
  let od = spec.S.ops.(fi.T.opid) in
  od.S.imm = S.Imm_dict || od.S.fmt = S.Fmt_movd

let corrupt_dict rng ~rate ~parity (tr : T.t) =
  let spec = tr.T.spec in
  let n = Array.length spec.S.dict in
  let hit = Array.make n false in
  let odd = Array.make n false in
  let flips = ref 0 and corrupted = ref 0 and detectable = ref 0 in
  let dict =
    Array.mapi
      (fun i v ->
        match flip_bits rng ~rate ~width:32 with
        | [] -> v
        | bits ->
            flips := !flips + List.length bits;
            incr corrupted;
            hit.(i) <- true;
            odd.(i) <- List.length bits land 1 = 1;
            if odd.(i) then incr detectable;
            Bits.u32 (v lxor mask_of_bits bits))
      spec.S.dict
  in
  let spec' = { spec with S.dict } in
  let insns =
    Array.map
      (fun (fi : T.finsn) ->
        let slot = fi.T.operand in
        if
          references_dict spec fi
          && slot >= 0 && slot < n && hit.(slot)
        then
          let micro =
            if parity && odd.(slot) then
              M.M_undef "parity mismatch in dictionary entry"
            else if D.faithful spec fi then
              match D.decode spec' (D.fields_of fi) with
              | D.Micro m -> m
              | D.Undefined why -> M.M_undef why
            else M.M_undef "corrupted dictionary operand (lossy entry)"
          in
          { fi with T.micro }
        else fi)
      tr.T.insns
  in
  ( { tr with T.spec = spec'; T.insns },
    { flips = !flips; entries_corrupted = !corrupted;
      parity_detectable = !detectable } )

(* ---- I-cache tags ------------------------------------------------------ *)

let schedule_icache_flips rng ~rate ~parity ~accesses ~cfg cache =
  let nslots = Pf_cache.Icache.slots cache in
  let tag_bits = Pf_cache.Icache.tag_bits cfg in
  let flips = ref 0 and corrupted = ref 0 and detectable = ref 0 in
  for slot = 0 to nslots - 1 do
    match flip_bits rng ~rate ~width:tag_bits with
    | [] -> ()
    | bits ->
        flips := !flips + List.length bits;
        incr corrupted;
        let odd = List.length bits land 1 = 1 in
        if odd then incr detectable;
        (* parity catches odd-flip slots: the line is invalidated and
           refetched clean, so the corrupt tag never serves a probe *)
        if not (parity && odd) then
          List.iter
            (fun bit ->
              let at_access = 1 + Rng.int rng (max 1 accesses) in
              Pf_cache.Icache.schedule_tag_flip cache ~at_access ~slot ~bit)
            bits
  done;
  { flips = !flips; entries_corrupted = !corrupted;
    parity_detectable = !detectable }

(* ---- register file ----------------------------------------------------- *)

let regs_hook rng ~rate =
  let flips = ref 0 in
  let hook (st : Pf_arm.Exec.t) ~steps:_ =
    if Rng.float rng 1.0 < rate then begin
      let r = Rng.int rng 16 in
      let bit = Rng.int rng 32 in
      st.Pf_arm.Exec.regs.(r) <-
        Bits.u32 (st.Pf_arm.Exec.regs.(r) lxor (1 lsl bit));
      incr flips
    end
  in
  let summary () =
    { flips = !flips; entries_corrupted = !flips; parity_detectable = 0 }
  in
  (hook, summary)
