(** Seeded single-event-upset injector for the FITS simulation stack.

    The paper's central hardware structures — the programmable decoder
    SRAM, the immediate dictionary, the I-cache tag array — are exactly
    the state most exposed to soft errors, and mis-programming any of
    them silently changes the machine's instruction set.  This module
    plants reproducible bit flips in each of those structures (plus the
    architectural register file), always through an explicit
    {!Pf_util.Rng} stream so a campaign is replayable from its seed.

    The parity variants model a parity-protected array: a flip that
    changes an odd number of bits in one protected entry is {e detected}
    (the entry is poisoned to a trapping state, or the cache line is
    invalidated and refetched); an even number of flips in the same entry
    escapes — the classic coverage gap this subsystem exists to
    measure. *)

type target =
  | Decoder  (** per-instruction control words of the programmable decoder *)
  | Dict     (** 32-bit immediate-dictionary entries *)
  | Icache   (** I-cache tag array *)
  | Regs     (** architectural register file, flipped during execution *)

val target_name : target -> string
val target_of_string : string -> target option

(** Static summary of what one injection pass planted. *)
type trial = {
  flips : int;             (** individual bit flips injected *)
  entries_corrupted : int; (** protected entries (decoder rows, dictionary
                               slots, tag slots) hit by at least one flip *)
  parity_detectable : int; (** of those, entries with an odd flip count —
                               what a parity bit per entry would catch *)
}

val no_trial : trial

val corrupt_decoder :
  Pf_util.Rng.t -> rate:float -> parity:bool -> Pf_fits.Translate.t ->
  Pf_fits.Translate.t * trial
(** Flip each bit of each instruction's control word
    ({!Pf_fits.Decode.word_bits} wide) with probability [rate], then
    re-decode the corrupted fields into new micro-operations.  Entries
    whose stored fields cannot faithfully reproduce their micro-operation
    (see {!Pf_fits.Decode.faithful}) are poisoned to [M_undef] when hit.
    With [parity], detected (odd-flip) entries trap on fetch instead of
    executing corrupted semantics. *)

val corrupt_dict :
  Pf_util.Rng.t -> rate:float -> parity:bool -> Pf_fits.Translate.t ->
  Pf_fits.Translate.t * trial
(** Flip bits of the 32-bit dictionary values, then re-decode every
    instruction whose operand field indexes a corrupted slot. *)

val schedule_icache_flips :
  Pf_util.Rng.t -> rate:float -> parity:bool -> accesses:int ->
  cfg:Pf_cache.Icache.config -> Pf_cache.Icache.t -> trial
(** Plant tag-array flips, each scheduled at a uniformly random access
    count in [\[1, accesses\]].  With [parity], detected (odd-flip) slots
    are invalidated-and-refetched rather than corrupted, so they are not
    scheduled at all. *)

val regs_hook :
  Pf_util.Rng.t -> rate:float ->
  (Pf_arm.Exec.t -> steps:int -> unit) * (unit -> trial)
(** Per-step register-file injector for {!Pf_fits.Run.run}'s [on_step]:
    with probability [rate] per retired instruction, flips one random bit
    of one random architectural register.  The second component reports
    what happened once the run finishes. *)
