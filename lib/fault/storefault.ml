(* Store-fault campaign: prove the artifact store's two invariants under
   injected faults —

     1. no committed entry is ever lost (crash-at-any-point during a new
        write leaves every previously committed record readable, and the
        interrupted write is all-or-nothing);
     2. no corrupt entry is ever served (any single-byte flip or
        truncation of a record file is detected by the framing/CRC and
        quarantined, never decoded into a payload).

   Two trial families, each in a fresh store directory:

   - crash trials: seed the store with K committed records, then attempt
     one more write with the {!Pf_util.Atomic_file} crash hook armed at
     each crash point in turn; reopen (recovery scan) and verify.
   - corruption trials: seed records, then damage one record file in
     place (seeded bit flip, truncation, extension) and verify the next
     [get] refuses and quarantines it while all untouched records still
     read back intact. *)

module S = Pf_serve.Store
module AF = Pf_util.Atomic_file

type trial = {
  label : string;
  survived : bool;
  detail : string;  (** what was verified, or what went wrong *)
}

type report = {
  trials : trial list;
  total : int;
  survived : int;
  crash_points : int;
  corruptions : int;
  quarantined_total : int;
}

let err fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal ~where:"fault.storefault"
    fmt

(* deterministic seed corpus: key/payload pairs with enough bytes to give
   bit flips room, including binary payload bytes *)
let seed_entries n =
  List.init n (fun i ->
      let key = Printf.sprintf "storefault/key-%03d" i in
      let payload =
        Printf.sprintf "{\"trial\":%d,\"payload\":\"%s\"}" i
          (String.init 64 (fun j -> Char.chr ((i + (j * 7)) land 0xFF))
          |> String.to_seq
          |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
          |> List.of_seq |> String.concat "")
      in
      (key, payload))

let fresh_dir root label n =
  let dir = Filename.concat root (Printf.sprintf "%s-%03d" label n) in
  dir

let populate dir entries =
  let store, _ = S.open_ ~fsync:false dir in
  List.iter (fun (key, payload) -> S.put store ~key payload) entries;
  S.close store;
  store

let verify_intact store entries =
  List.for_all
    (fun (key, payload) -> S.get store ~key = Some payload)
    entries

(* ---- crash trials ---- *)

let crash_trial ~root ~n ~committed point =
  let dir = fresh_dir root "crash" n in
  let entries = seed_entries committed in
  ignore (populate dir entries);
  let victim_key = "storefault/victim" in
  let victim_payload = String.make 256 '\x5A' in
  (* arm the hook for the next write only *)
  let armed = ref true in
  let crash p =
    if p = point && !armed then (
      armed := false;
      true)
    else false
  in
  let store, _ = S.open_ ~fsync:false ~crash dir in
  let crashed =
    match S.put store ~key:victim_key victim_payload with
    | () -> false
    | exception AF.Crash p when p = point -> true
  in
  (* simulate process death: abandon the handle without close; reopen and
     run recovery *)
  let store2, recovery = S.open_ ~fsync:false dir in
  let committed_ok = verify_intact store2 entries in
  let victim = S.get store2 ~key:victim_key in
  (* all-or-nothing: before the rename the victim must be absent, after
     it it must be complete *)
  let victim_ok =
    match point with
    | AF.Mid_write | AF.After_write | AF.Before_rename -> victim = None
    | AF.After_rename -> victim = Some victim_payload
  in
  let no_temp_residue =
    recovery.S.recovered_quarantined = 0
    (* torn temp files are swept, not quarantined: they were never
       committed, so they are residue, not corruption *)
  in
  let survived = crashed && committed_ok && victim_ok && no_temp_residue in
  S.close store2;
  {
    label = Printf.sprintf "crash@%s" (AF.crash_point_name point);
    survived;
    detail =
      Printf.sprintf
        "crashed=%b committed_intact=%b victim_%s=%b swept_temps=%d \
         quarantined=%d"
        crashed committed_ok
        (match point with AF.After_rename -> "complete" | _ -> "absent")
        victim_ok recovery.S.swept_temps recovery.S.recovered_quarantined;
  }

(* ---- corruption trials ---- *)

type damage = Flip of int | Truncate of int | Extend of int

let damage_label = function
  | Flip b -> Printf.sprintf "flip-bit-%d" b
  | Truncate n -> Printf.sprintf "truncate-%d" n
  | Extend n -> Printf.sprintf "extend-%d" n

let apply_damage path = function
  | Flip bit ->
      let ic = open_in_bin path in
      let bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let len = String.length bytes in
      let byte = bit / 8 mod len in
      let b = Bytes.of_string bytes in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc
  | Truncate n ->
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let keep = max 0 (len - n) in
      let bytes = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc
  | Extend n ->
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 path
      in
      output_string oc (String.make n '\x00');
      close_out oc

let corruption_trial ~root ~n ~committed damage =
  let dir = fresh_dir root "corrupt" n in
  let entries = seed_entries committed in
  ignore (populate dir entries);
  let victim_key, _ = List.nth entries (n mod committed) in
  let victim_path =
    Filename.concat (Filename.concat dir "objects") (S.key_hash victim_key ^ ".rec")
  in
  if not (Sys.file_exists victim_path) then err "seed record %s missing" victim_path;
  apply_damage victim_path damage;
  let store, _ = S.open_ ~fsync:false dir in
  (* the recovery scan may already have quarantined it; either way a get
     must refuse *)
  let got = S.get store ~key:victim_key in
  (* exact length + CRC cover every byte of the record, so any of these
     damages must make the lookup miss — never return a payload, right
     or wrong *)
  let detected = got = None in
  let others_ok =
    List.for_all
      (fun (key, payload) ->
        key = victim_key || S.get store ~key = Some payload)
      entries
  in
  let quarantined = S.quarantined store >= 1 in
  let survived = detected && others_ok && quarantined in
  S.close store;
  {
    label = damage_label damage;
    survived;
    detail =
      Printf.sprintf "detected=%b others_intact=%b quarantined=%d" detected
        others_ok (S.quarantined store);
  }

(* ---- the campaign ---- *)

let run ?(committed = 6) ?(flips_per_record = 16) ~dir ~seed () =
  let rng = Pf_util.Rng.create seed in
  let crash_trials =
    List.mapi
      (fun n point -> crash_trial ~root:dir ~n ~committed point)
      AF.all_crash_points
  in
  let record_bytes =
    (* size of a seeded record file, for drawing in-range bit positions *)
    String.length
      (S.encode_record
         ~key:(fst (List.hd (seed_entries 1)))
         (snd (List.hd (seed_entries 1))))
  in
  let damages =
    List.init flips_per_record (fun _ ->
        Flip (Pf_util.Rng.int rng (record_bytes * 8)))
    @ [ Truncate 1; Truncate 4; Truncate (record_bytes / 2); Extend 1; Extend 16 ]
  in
  let corruption_trials =
    List.mapi
      (fun n damage -> corruption_trial ~root:dir ~n ~committed damage)
      damages
  in
  let trials = crash_trials @ corruption_trials in
  let survived = List.length (List.filter (fun (t : trial) -> t.survived) trials) in
  {
    trials;
    total = List.length trials;
    survived;
    crash_points = List.length crash_trials;
    corruptions = List.length corruption_trials;
    quarantined_total =
      List.length (List.filter (fun (t : trial) -> t.survived) corruption_trials);
  }

let banner r =
  let failed = List.filter (fun (t : trial) -> not t.survived) r.trials in
  let lines =
    Printf.sprintf
      "storefault: %d/%d trials survived (%d crash points, %d corruptions)"
      r.survived r.total r.crash_points r.corruptions
    :: List.map (fun t -> Printf.sprintf "  FAILED %s: %s" t.label t.detail)
         failed
  in
  String.concat "\n" lines
