(** Store-fault campaign: crash and corruption injection against the
    {!Pf_serve.Store} artifact store.

    Proves the store's two robustness invariants under injected faults:

    + {b no committed entry is lost}: for every
      {!Pf_util.Atomic_file.crash_point}, crashing a write there and
      re-opening the store (recovery scan) leaves every previously
      committed record readable, and the interrupted write is
      all-or-nothing — absent before the publishing rename, complete
      after it;
    + {b no corrupt entry is served}: a seeded single-bit flip,
      truncation or extension of a committed record file makes the next
      lookup miss and quarantines the record, while every untouched
      record still reads back intact.

    Each trial runs in a fresh subdirectory of the campaign [dir], so
    trials are independent and the whole campaign replays exactly from
    its [seed]. *)

type trial = {
  label : string;  (** e.g. ["crash@mid-write"], ["flip-bit-1312"] *)
  survived : bool;
  detail : string;  (** what was verified, or what went wrong *)
}

type report = {
  trials : trial list;
  total : int;
  survived : int;  (** the campaign passes iff [survived = total] *)
  crash_points : int;
  corruptions : int;
  quarantined_total : int;  (** corruption trials that quarantined *)
}

val run :
  ?committed:int ->
  ?flips_per_record:int ->
  dir:string ->
  seed:int ->
  unit ->
  report
(** [run ~dir ~seed ()] seeds each trial store with [committed] (default
    6) records, runs one crash trial per crash point and
    [flips_per_record] (default 16) seeded bit-flip trials plus fixed
    truncation/extension trials.  [dir] must be writable scratch space;
    trial stores are left on disk for inspection. *)

val banner : report -> string
(** One summary line plus one line per failed trial. *)
