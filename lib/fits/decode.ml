module A = Pf_arm.Insn
open Pf_util

type fields = {
  opid : int;
  rc : int;
  ra : int;
  operand : int;
}

let opid_bits = 8
let reg_bits = 5
let operand_bits = 12
let word_bits = opid_bits + (2 * reg_bits) + operand_bits

let fields_of (fi : Translate.finsn) =
  { opid = fi.Translate.opid; rc = fi.Translate.rc; ra = fi.Translate.ra;
    operand = fi.Translate.operand land ((1 lsl operand_bits) - 1) }

let pack f =
  f.opid
  lor (f.rc lsl opid_bits)
  lor (f.ra lsl (opid_bits + reg_bits))
  lor (f.operand lsl (opid_bits + (2 * reg_bits)))

let unpack w =
  {
    opid = w land ((1 lsl opid_bits) - 1);
    rc = (w lsr opid_bits) land ((1 lsl reg_bits) - 1);
    ra = (w lsr (opid_bits + reg_bits)) land ((1 lsl reg_bits) - 1);
    operand =
      (w lsr (opid_bits + (2 * reg_bits))) land ((1 lsl operand_bits) - 1);
  }

type result =
  | Micro of Mapping.micro
  | Undefined of string

let undef fmt = Format.kasprintf (fun s -> Undefined s) fmt

(* A register field is valid up to the over-provisioned scratch register. *)
let reg_ok r = r >= 0 && r <= Spec.temp_reg

let check_reg r k = if reg_ok r then k r else undef "register field %d" r

let dict_value spec i k =
  if i >= 0 && i < Array.length spec.Spec.dict then k spec.Spec.dict.(i)
  else undef "dictionary index %d out of range" i

(* An immediate data-processing operand carrying [v]: prefer the rotated
   8-bit form (exactly what the source instruction carried), fall back to
   the full-width dictionary path. *)
let dp_imm ~cond ~op ~s ~rd ~rn v =
  match A.encode_imm_operand (Bits.u32 v) with
  | Some op2 -> Micro (Mapping.M_exec (A.Dp { cond; op; s; rd; rn; op2 }))
  | None ->
      Micro
        (Mapping.M_dp32 { op; s; rd; rn; value = Bits.u32 v; cond })

let decode_sys spec (f : fields) (sys : Spec.system_op) =
  match sys with
  | Spec.Sys_swi ->
      Micro (Mapping.M_exec (A.Swi { cond = A.AL; number = f.operand land 0xFF }))
  | Spec.Sys_bx ->
      check_reg f.operand (fun rm ->
          Micro (Mapping.M_exec (A.Bx { cond = A.AL; rm })))
  | Spec.Sys_jalr -> check_reg f.operand (fun rm -> Micro (Mapping.M_jalr rm))
  | Spec.Sys_push _ ->
      if f.operand < Array.length spec.Spec.reglists then
        Micro
          (Mapping.M_exec
             (A.Push { cond = A.AL; regs = spec.Spec.reglists.(f.operand) }))
      else undef "register-list index %d out of range" f.operand
  | Spec.Sys_pop _ ->
      if f.operand < Array.length spec.Spec.reglists then
        Micro
          (Mapping.M_exec
             (A.Pop { cond = A.AL; regs = spec.Spec.reglists.(f.operand) }))
      else undef "register-list index %d out of range" f.operand
  | Spec.Sys_skip _ -> (
      let code = (f.operand lsr 4) land 0xF in
      let count = f.operand land 0xF in
      match Pf_arm.Encode.cond_of_code code with
      | Some cond ->
          Micro
            (Mapping.M_exec
               (A.B { cond; link = false; offset = (2 * count) - 2 }))
      | None -> undef "bad skip condition code %d" code)

let decode_dp spec (od : Spec.opdef) (f : fields) ~op
    ~(shape : Opkey.shape) ~s ~two_op =
  let cond = od.Spec.cond in
  if not (reg_ok f.rc) then undef "register field %d" f.rc
  else
    let rd, rn =
      match op with
      | A.TST | A.TEQ | A.CMP | A.CMN -> (0, f.rc)
      | A.MOV | A.MVN -> (f.rc, 0)
      | _ -> if two_op then (f.rc, f.rc) else (f.rc, f.ra)
    in
    if (not two_op) && not (reg_ok f.ra) then undef "register field %d" f.ra
    else
      let exec op2 =
        Micro (Mapping.M_exec (A.Dp { cond; op; s; rd; rn; op2 }))
      in
      match shape with
      | Opkey.Sh_reg -> check_reg f.operand (fun rm -> exec (A.Reg rm))
      | Opkey.Sh_imm -> (
          match od.Spec.imm with
          | Spec.Imm_lit { scale } ->
              dp_imm ~cond ~op ~s ~rd ~rn (f.operand lsl scale)
          | Spec.Imm_dict ->
              dict_value spec f.operand (dp_imm ~cond ~op ~s ~rd ~rn)
          | Spec.Imm_none -> undef "immediate shape on an Imm_none opcode")
      | Opkey.Sh_shift_imm (kind, amt) ->
          if two_op then
            match od.Spec.imm with
            | Spec.Imm_lit _ ->
                (* amount in the field; destructive source (rm = rc).  For
                   non-move operations the shifted register is not encoded
                   and rc is the decoder's only candidate — translation
                   marks such entries unfaithful via {!faithful}. *)
                let n =
                  if amt = Spec.shift_amount_wildcard then f.operand land 0xF
                  else amt
                in
                exec (A.Reg_shift (f.rc, kind, n))
            | Spec.Imm_none | Spec.Imm_dict ->
                let n = if amt = Spec.shift_amount_wildcard then 0 else amt in
                check_reg f.operand (fun rm ->
                    exec (A.Reg_shift (rm, kind, n)))
          else if od.Spec.imm <> Spec.Imm_none then
            (* rm in ra, amount in the field; rn is not encoded *)
            let n =
              if amt = Spec.shift_amount_wildcard then f.operand land 0xF
              else amt
            in
            exec (A.Reg_shift (f.ra, kind, n))
          else
            let n = if amt = Spec.shift_amount_wildcard then 0 else amt in
            check_reg f.operand (fun rm -> exec (A.Reg_shift (rm, kind, n)))
      | Opkey.Sh_shift_reg kind ->
          (* the shifted register is destructive (rd = rm) in the two-op
             form and unencoded in the three-op form; rc is the decoder's
             reconstruction either way *)
          check_reg f.operand (fun rs ->
              exec (A.Reg_shift_reg (f.rc, kind, rs)))

let decode_key spec (od : Spec.opdef) (f : fields) (key : Opkey.t) =
  match key with
  | Opkey.K_dp { op; shape; s; two_op } ->
      decode_dp spec od f ~op ~shape ~s ~two_op
  | Opkey.K_mul { acc } ->
      if not (reg_ok f.rc && reg_ok f.operand) then
        undef "register field out of range in multiply"
      else if od.Spec.fmt = Spec.Fmt_operate2 then
        Micro
          (Mapping.M_exec
             (A.Mul { cond = od.Spec.cond; s = false; rd = f.rc; rm = f.rc;
                      rs = f.operand; acc = None }))
      else if not (reg_ok f.ra) then undef "register field %d" f.ra
      else
        Micro
          (Mapping.M_exec
             (A.Mul { cond = od.Spec.cond; s = false; rd = f.rc; rm = f.ra;
                      rs = f.operand;
                      acc = (if acc then Some f.rc else None) }))
  | Opkey.K_mem { load; width; signed; mode; writeback } ->
      if not (reg_ok f.rc && reg_ok f.ra) then
        undef "register field out of range in memory access"
      else
        let mem offset =
          Micro
            (Mapping.M_exec
               (A.Mem { cond = od.Spec.cond; load; width; signed; rd = f.rc;
                        rn = f.ra; offset; writeback }))
        in
        (match mode with
        | Opkey.M_imm -> (
            match od.Spec.imm with
            | Spec.Imm_lit { scale } -> mem (A.Ofs_imm (f.operand lsl scale))
            | Spec.Imm_dict ->
                dict_value spec f.operand (fun v -> mem (A.Ofs_imm v))
            | Spec.Imm_none -> undef "displacement on an Imm_none opcode")
        | Opkey.M_reg ->
            check_reg f.operand (fun rx -> mem (A.Ofs_reg (rx, A.LSL, 0)))
        | Opkey.M_reg_shift k ->
            check_reg f.operand (fun rx -> mem (A.Ofs_reg (rx, A.LSL, k))))
  | Opkey.K_branch { cond = _; link } ->
      let off = Bits.sign_extend ~width:12 (f.operand land 0xFFF) * 2 in
      Micro (Mapping.M_exec (A.B { cond = A.AL; link; offset = off }))
  | Opkey.K_bx | Opkey.K_swi | Opkey.K_push | Opkey.K_pop ->
      undef "system operation without a system descriptor"

let decode spec (f : fields) =
  if f.opid < 0 || f.opid >= Array.length spec.Spec.ops then
    undef "opcode id %d out of range" f.opid
  else
    let od = spec.Spec.ops.(f.opid) in
    match od.Spec.sys with
    | Some sys -> decode_sys spec f sys
    | None -> (
        match od.Spec.fmt with
        | Spec.Fmt_bcc -> (
            match Pf_arm.Encode.cond_of_code f.rc with
            | Some cond ->
                let off =
                  Bits.sign_extend ~width:8 (f.operand land 0xFF) * 2
                in
                Micro
                  (Mapping.M_exec (A.B { cond; link = false; offset = off }))
            | None -> undef "bad branch condition code %d" f.rc)
        | Spec.Fmt_movd ->
            if not (reg_ok f.rc) then undef "register field %d" f.rc
            else
              dict_value spec f.operand (fun v ->
                  Micro
                    (Mapping.M_dp32
                       { op = A.MOV; s = false; rd = f.rc; rn = 0; value = v;
                         cond = A.AL }))
        | Spec.Fmt_operate2 | Spec.Fmt_operate3 | Spec.Fmt_memory
        | Spec.Fmt_branch12 | Spec.Fmt_system -> (
            match od.Spec.key with
            | Some key -> decode_key spec od f key
            | None -> undef "opcode %s has no operation key" od.Spec.name))

(* ---- equivalence ------------------------------------------------------- *)

let commutative = function
  | A.ADD | A.ADC | A.AND | A.ORR | A.EOR | A.TST | A.CMN -> true
  | _ -> false

let ignores_rd = function
  | A.TST | A.TEQ | A.CMP | A.CMN -> true
  | _ -> false

let ignores_rn = function A.MOV | A.MVN -> true | _ -> false

let op2_equiv a b =
  a = b
  ||
  match (a, b) with
  | A.Imm _, A.Imm _ -> A.operand2_value a = A.operand2_value b
  | _ -> false

let dp_equiv ~cond ~op ~s ~rd ~rn ~op2 ~cond' ~op' ~s' ~rd' ~rn' ~op2' =
  cond = cond' && op = op' && s = s'
  && (ignores_rd op || rd = rd')
  &&
  if ignores_rn op then op2_equiv op2 op2'
  else
    (rn = rn' && op2_equiv op2 op2')
    || commutative op
       &&
       match (op2, op2') with
       | A.Reg a, A.Reg b -> rn = b && a = rn'
       | _ -> false

let micro_equiv (m1 : Mapping.micro) (m2 : Mapping.micro) =
  match (m1, m2) with
  | Mapping.M_exec (A.Dp { cond; op; s; rd; rn; op2 }),
    Mapping.M_exec (A.Dp { cond = cond'; op = op'; s = s'; rd = rd';
                           rn = rn'; op2 = op2' }) ->
      dp_equiv ~cond ~op ~s ~rd ~rn ~op2 ~cond' ~op' ~s' ~rd' ~rn' ~op2'
  | Mapping.M_exec (A.Mul { cond; s; rd; rm; rs; acc }),
    Mapping.M_exec (A.Mul { cond = cond'; s = s'; rd = rd'; rm = rm';
                            rs = rs'; acc = acc' }) ->
      cond = cond' && s = s' && rd = rd' && acc = acc'
      && ((rm = rm' && rs = rs') || (rm = rs' && rs = rm'))
  | Mapping.M_exec a, Mapping.M_exec b -> a = b
  | Mapping.M_dp32 { op; s; rd; rn; value; cond },
    Mapping.M_dp32 { op = op'; s = s'; rd = rd'; rn = rn'; value = value';
                     cond = cond' } ->
      op = op' && s = s' && rd = rd' && rn = rn' && value = value'
      && cond = cond'
  | ( Mapping.M_exec (A.Dp { cond; op; s; rd; rn; op2 }),
      Mapping.M_dp32 { op = op'; s = s'; rd = rd'; rn = rn'; value;
                       cond = cond' } )
  | ( Mapping.M_dp32 { op = op'; s = s'; rd = rd'; rn = rn'; value;
                       cond = cond' },
      Mapping.M_exec (A.Dp { cond; op; s; rd; rn; op2 }) ) ->
      dp_equiv ~cond ~op ~s ~rd ~rn ~op2 ~cond' ~op' ~s' ~rd' ~rn'
        ~op2':(A.Imm { value; rot = 0 })
      && A.operand2_value op2 = Some value
  | Mapping.M_jalr a, Mapping.M_jalr b -> a = b
  | Mapping.M_undef _, Mapping.M_undef _ -> true
  | _ -> false

let faithful spec (fi : Translate.finsn) =
  match decode spec (fields_of fi) with
  | Micro m -> micro_equiv m fi.Translate.micro
  | Undefined _ -> false
