(** Field-level model of the programmable decoder.

    Translation stores, for every 16-bit instruction, the raw control
    fields a real FITS decoder SRAM row would hold — opcode id,
    destination register, second register, operand ({!Translate.finsn}).
    This module turns those fields {e back} into a micro-operation, which
    is what makes fault injection meaningful: flipping a bit in a control
    field and re-decoding yields exactly the corrupted behaviour a soft
    error in the decoder array would produce.

    Decoding is best-effort: a handful of expansion forms are {e lossy}
    (the fields do not determine the micro-operation — e.g. a three-operand
    shift-by-register drops one source register, and expansion
    representatives like TEQ-via-TST reuse another opcode's entry).
    {!faithful} identifies them; the injector poisons such entries to
    {!Mapping.M_undef} instead of guessing. *)

type fields = {
  opid : int;     (** index into [Spec.ops], 8 bits *)
  rc : int;       (** destination / compare register, 5 bits *)
  ra : int;       (** second register field, 5 bits *)
  operand : int;  (** register / literal / dictionary index / argument,
                      up to 12 bits *)
}

val opid_bits : int
val reg_bits : int
val operand_bits : int

val word_bits : int
(** Total control-word width ([opid_bits + 2*reg_bits + operand_bits]);
    the bit universe the injector draws from. *)

val fields_of : Translate.finsn -> fields

val pack : fields -> int
(** Pack into a [word_bits]-wide integer (opid in the low bits). *)

val unpack : int -> fields

type result =
  | Micro of Mapping.micro
  | Undefined of string
      (** the fields do not name a valid operation — out-of-range opcode,
          register number above the scratch register, dictionary index
          past the table, or an unencodable condition *)

val decode : Spec.t -> fields -> result
(** Reconstruct the micro-operation the programmable decoder emits for
    these control fields.  Uses [spec] for the opcode table, immediate
    dictionary and register-list table, so it must be the {e final} spec
    carried by the translation ([t.spec]). *)

val micro_equiv : Mapping.micro -> Mapping.micro -> bool
(** Architectural equivalence, tolerating representation differences a
    re-decode legitimately introduces: commutative operand swaps,
    immediate re-encodings with the same value, ignored fields (rd of a
    compare, rn of a move). *)

val faithful : Spec.t -> Translate.finsn -> bool
(** Does re-decoding this instruction's stored fields reproduce its
    stored micro-operation?  True for all direct (one-to-one) mappings
    and almost all expansion steps; false only for the lossy forms listed
    above. *)
