module A = Pf_arm.Insn
open Pf_util

type oprd =
  | O_none
  | O_reg of int
  | O_lit of int
  | O_dictval of int
  | O_arg of int

type micro =
  | M_exec of A.t
  | M_dp32 of { op : A.dp_op; s : bool; rd : int; rn : int; value : int;
                cond : A.cond }
  | M_jalr of int
  | M_undef of string

type fdesc = {
  op : Spec.opdef;
  rc : int;
  ra : int;
  oprd : oprd;
  micro : micro;
}

type plan =
  | P_seq of fdesc list
  | P_branch of { cond : A.cond; link : bool; arm_target : int }

exception Unmappable of string

let unmappable fmt = Format.kasprintf (fun s -> raise (Unmappable s)) fmt

let internal fmt = Sim_error.raisef Sim_error.Internal ~where:"fits.mapping" fmt

let tr = Spec.temp_reg

(* ---- coverage ---------------------------------------------------------- *)

let lit_fits ~scale v = v >= 0 && v land ((1 lsl scale) - 1) = 0
                        && v lsr scale <= 15

let dict_head_index spec v =
  match Spec.dict_index spec v with
  | Some i when i < 16 -> Some i
  | Some _ | None -> None

(* Does opdef [od] cover [insn] one-to-one? *)
let op_covers spec (od : Spec.opdef) (insn : A.t) =
  match od.Spec.key with
  | None -> false
  | Some okey -> (
      let pk = Opkey.of_insn insn in
      if od.Spec.cond <> pk.Opkey.cond then false
      else
        match (okey, insn) with
        | Opkey.K_dp { op = kop; shape = kshape; s = ks; two_op = ktwo },
          A.Dp { op; s; rd; op2; _ } -> (
            if kop <> op || ks <> s then false
            else
              let two_op_insn =
                match pk.Opkey.key with
                | Opkey.K_dp { two_op; _ } -> two_op
                | _ -> false
              in
              if ktwo && not two_op_insn then false
              else
                (* destructive shift sub-ops additionally need rd = rm *)
                (* A two-operand MOV-class shift is destructive (rd = rm)
                   only when the amount occupies the literal field; with
                   the amount baked into the sub-opcode both fields are
                   free, and shift-by-register always needs rd = rm (three
                   registers cannot fit two fields). *)
                let destructive_src_ok rm =
                  (not ktwo)
                  ||
                  match op with
                  | A.MOV | A.MVN -> (
                      match kshape with
                      | Opkey.Sh_shift_imm _ ->
                          (match od.Spec.imm with
                          | Spec.Imm_lit _ -> rd = rm
                          | Spec.Imm_none | Spec.Imm_dict -> true)
                      | Opkey.Sh_shift_reg _ -> rd = rm
                      | Opkey.Sh_reg | Opkey.Sh_imm -> true)
                  | _ -> true
                in
                match (kshape, op2) with
                | Opkey.Sh_reg, A.Reg _ -> true
                | Opkey.Sh_imm, A.Imm _ -> (
                    let v =
                      match A.operand2_value op2 with
                      | Some v -> v
                      | None -> internal "Sh_imm key over non-immediate op2"
                    in
                    match od.Spec.imm with
                    | Spec.Imm_lit { scale } -> lit_fits ~scale v
                    | Spec.Imm_dict -> dict_head_index spec v <> None
                    | Spec.Imm_none -> false)
                | Opkey.Sh_shift_imm (k1, amt), A.Reg_shift (rm, k2, n) ->
                    k1 = k2
                    && (if amt = Spec.shift_amount_wildcard then n <= 15
                        else amt = n)
                    && destructive_src_ok rm
                | Opkey.Sh_shift_reg k1, A.Reg_shift_reg (rm, k2, _) ->
                    k1 = k2 && destructive_src_ok rm
                | (Opkey.Sh_reg | Opkey.Sh_imm | Opkey.Sh_shift_imm _
                  | Opkey.Sh_shift_reg _), _ ->
                    false)
        | Opkey.K_mul { acc = kacc }, A.Mul { rd; rm; rs; acc; _ } -> (
            match (kacc, acc) with
            | false, None ->
                if od.Spec.fmt = Spec.Fmt_operate2 then rd = rm || rd = rs
                else true
            | true, Some rn -> rn = rd
            | false, Some _ | true, None -> false)
        | Opkey.K_mem { load = kload; width = kwidth; signed = ksigned;
                        mode = kmode; writeback = kwb },
          A.Mem { load; width; signed; offset; writeback; _ } -> (
            kload = load && kwidth = width && ksigned = signed
            && kwb = writeback
            &&
            match (kmode, offset) with
            | Opkey.M_imm, A.Ofs_imm ofs -> (
                match od.Spec.imm with
                | Spec.Imm_lit { scale } -> lit_fits ~scale ofs
                | Spec.Imm_dict -> dict_head_index spec ofs <> None
                | Spec.Imm_none -> false)
            | Opkey.M_reg, A.Ofs_reg (_, A.LSL, 0) -> true
            | Opkey.M_reg_shift k, A.Ofs_reg (_, A.LSL, n) -> k = n && n > 0
            | (Opkey.M_imm | Opkey.M_reg | Opkey.M_reg_shift _), _ -> false)
        | Opkey.K_push, A.Push { regs; _ } | Opkey.K_pop, A.Pop { regs; _ }
          ->
            Spec.reglist_index spec regs <> None
        | Opkey.K_bx, A.Bx _ -> true
        | Opkey.K_swi, A.Swi { number; _ } -> number <= 0xFF
        | Opkey.K_branch { cond = kcond; link = klink }, A.B { cond; link; _ }
          ->
            kcond = cond && klink = link
        | ( ( Opkey.K_dp _ | Opkey.K_mul _ | Opkey.K_mem _ | Opkey.K_push
            | Opkey.K_pop | Opkey.K_branch _ | Opkey.K_bx | Opkey.K_swi ),
            _ ) ->
            false)

let covered spec insn =
  let n = Array.length spec.Spec.ops in
  let rec go i =
    if i >= n then None
    else if op_covers spec spec.Spec.ops.(i) insn then Some spec.Spec.ops.(i)
    else go (i + 1)
  in
  go 0

(* ---- direct (one-to-one) fdesc construction --------------------------- *)

let direct spec (od : Spec.opdef) (insn : A.t) =
  let fd rc ra oprd = { op = od; rc; ra; oprd; micro = M_exec insn } in
  match insn with
  | A.Dp { op; rd; rn; op2; _ } -> (
      let dest =
        match op with
        | A.TST | A.TEQ | A.CMP | A.CMN -> rn
        | _ -> rd
      in
      let commutative =
        match op with A.ADD | A.AND | A.ORR | A.EOR -> true | _ -> false
      in
      let oprd =
        match op2 with
        | A.Reg rm ->
            (* destructive commutative form reads the other source *)
            if commutative && rm = rd && rd <> rn
               && od.Spec.fmt = Spec.Fmt_operate2
            then O_reg rn
            else O_reg rm
        | A.Imm _ -> (
            let v = Option.get (A.operand2_value op2) in
            match od.Spec.imm with
            | Spec.Imm_lit { scale } -> O_lit (v lsr scale)
            | Spec.Imm_dict -> O_dictval v
            | Spec.Imm_none -> internal "immediate operand on Imm_none opdef")
        | A.Reg_shift (rm, _, n) -> (
            match od.Spec.imm with
            | Spec.Imm_lit _ -> O_lit n (* amount in the field *)
            | Spec.Imm_none | Spec.Imm_dict -> O_reg rm)
        | A.Reg_shift_reg (_, _, rs) -> O_reg rs
      in
      match od.Spec.fmt with
      | Spec.Fmt_operate2 -> fd dest 0 oprd
      | Spec.Fmt_operate3 -> (
          match op2 with
          | A.Reg_shift (rm, _, _) when od.Spec.imm <> Spec.Imm_none ->
              (* amount in oprd, rm in ra *)
              fd dest rm oprd
          | _ -> fd dest rn oprd)
      | Spec.Fmt_memory | Spec.Fmt_branch12 | Spec.Fmt_bcc | Spec.Fmt_movd
      | Spec.Fmt_system ->
          internal "data-processing mapped to a non-operate format")
  | A.Mul { rd; rm; rs; acc; _ } -> (
      match od.Spec.fmt with
      | Spec.Fmt_operate2 -> fd rd 0 (O_reg (if rd = rm then rs else rm))
      | Spec.Fmt_operate3 ->
          ignore acc;
          fd rd rm (O_reg rs)
      | _ -> internal "multiply mapped to a non-operate format")
  | A.Mem { rd; rn; offset; _ } -> (
      match offset with
      | A.Ofs_imm ofs -> (
          match od.Spec.imm with
          | Spec.Imm_lit { scale } -> fd rd rn (O_lit (ofs lsr scale))
          | Spec.Imm_dict -> fd rd rn (O_dictval ofs)
          | Spec.Imm_none -> internal "memory displacement on Imm_none opdef")
      | A.Ofs_reg (rx, _, _) -> fd rd rn (O_reg rx))
  | A.Push { regs; _ } | A.Pop { regs; _ } -> (
      match Spec.reglist_index spec regs with
      | Some idx -> fd 0 0 (O_arg idx)
      | None -> internal "register list vanished from the table")
  | A.Bx { rm; _ } -> fd 0 0 (O_arg rm)
  | A.Swi { number; _ } -> fd 0 0 (O_arg number)
  | A.B _ -> internal "direct mapping requested for a branch"

(* ---- expansion building blocks ---------------------------------------- *)

let sis spec = spec.Spec.sis

let step op ~rc ?(ra = 0) ~oprd micro = { op; rc; ra; oprd; micro }

let mov_rr spec ~rd ~rm =
  step (sis spec).Spec.mov_rr ~rc:rd ~oprd:(O_reg rm)
    (M_exec (A.Dp { cond = A.AL; op = A.MOV; s = false; rd; rn = 0;
                    op2 = A.Reg rm }))

let seq_materialize spec ~reg v =
  let v = Bits.u32 v in
  if v <= 15 then
    step (sis spec).Spec.mov_ri ~rc:reg ~oprd:(O_lit v)
      (M_exec
         (A.Dp { cond = A.AL; op = A.MOV; s = false; rd = reg; rn = 0;
                 op2 = A.Imm { value = v; rot = 0 } }))
  else
    step (sis spec).Spec.movd8 ~rc:reg ~oprd:(O_dictval v)
      (M_dp32 { op = A.MOV; s = false; rd = reg; rn = 0; value = v;
                cond = A.AL })

let shift2i spec ~rd kind n =
  let od =
    match kind with
    | A.LSL -> (sis spec).Spec.lsl2i
    | A.LSR -> (sis spec).Spec.lsr2i
    | A.ASR -> (sis spec).Spec.asr2i
    | A.ROR -> (sis spec).Spec.ror2i
  in
  step od ~rc:rd ~oprd:(O_lit n)
    (M_exec (A.Dp { cond = A.AL; op = A.MOV; s = false; rd; rn = 0;
                    op2 = A.Reg_shift (rd, kind, n) }))

let shift2r spec ~rd kind rs =
  let od =
    match kind with
    | A.LSL -> (sis spec).Spec.lsl2r
    | A.LSR -> (sis spec).Spec.lsr2r
    | A.ASR -> (sis spec).Spec.asr2r
    | A.ROR -> (sis spec).Spec.ror2r
  in
  step od ~rc:rd ~oprd:(O_reg rs)
    (M_exec (A.Dp { cond = A.AL; op = A.MOV; s = false; rd; rn = 0;
                    op2 = A.Reg_shift_reg (rd, kind, rs) }))

let add2 spec ~rd ~rm =
  step (sis spec).Spec.add2 ~rc:rd ~oprd:(O_reg rm)
    (M_exec (A.Dp { cond = A.AL; op = A.ADD; s = false; rd; rn = rd;
                    op2 = A.Reg rm }))

(* Compute the value of [op2] into register [dst] (assumed distinct from
   the shift-source registers unless it equals the base register itself). *)
let operand_into spec ~dst (op2 : A.operand2) =
  match op2 with
  | A.Reg rm -> if rm = dst then [] else [ mov_rr spec ~rd:dst ~rm ]
  | A.Imm _ ->
      [ seq_materialize spec ~reg:dst (Option.get (A.operand2_value op2)) ]
  | A.Reg_shift (rm, k, n) ->
      let m = if rm = dst then [] else [ mov_rr spec ~rd:dst ~rm ] in
      if n = 0 then m
      else if n <= 15 then m @ [ shift2i spec ~rd:dst k n ]
      else m @ [ shift2i spec ~rd:dst k 15; shift2i spec ~rd:dst k (n - 15) ]
  | A.Reg_shift_reg (rm, k, rs) ->
      let m = if rm = dst then [] else [ mov_rr spec ~rd:dst ~rm ] in
      m @ [ shift2r spec ~rd:dst k rs ]

let cond_code = Pf_arm.Encode.cond_code

let seq_skip spec ~cond ~count =
  if count > 15 then unmappable "skip of %d instructions" count;
  let inv =
    match cond with
    | A.AL -> unmappable "skip with AL condition"
    | c -> (
        (* invert *)
        match c with
        | A.EQ -> A.NE | A.NE -> A.EQ | A.CS -> A.CC | A.CC -> A.CS
        | A.MI -> A.PL | A.PL -> A.MI | A.VS -> A.VC | A.VC -> A.VS
        | A.HI -> A.LS | A.LS -> A.HI | A.GE -> A.LT | A.LT -> A.GE
        | A.GT -> A.LE | A.LE -> A.GT | A.AL -> internal "cannot invert AL")
  in
  step (sis spec).Spec.skip ~rc:0
    ~oprd:(O_arg ((cond_code inv lsl 4) lor count))
    (M_exec (A.B { cond = inv; link = false; offset = (2 * count) - 2 }))

(* ---- expansion of uncovered instructions ------------------------------ *)

let two_op_dp (od_pick : A.dp_op -> Spec.opdef) ~op ~s ~rd ~x =
  (* rd := rd OP x, with the original flag behaviour *)
  step (od_pick op) ~rc:rd ~oprd:(O_reg x)
    (M_exec (A.Dp { cond = A.AL; op; s; rd; rn = rd; op2 = A.Reg x }))

let arith_sub2op spec op =
  let s = sis spec in
  match op with
  | A.AND -> s.Spec.and2
  | A.EOR -> s.Spec.eor2
  | A.SUB -> s.Spec.sub2
  | A.ADD -> s.Spec.add2
  | A.ADC -> s.Spec.adc2
  | A.SBC -> s.Spec.sbc2
  | A.ORR -> s.Spec.orr2
  | A.BIC -> s.Spec.bic2
  | A.RSB | A.RSC -> s.Spec.sub2 (* representatives; micro is exact *)
  | A.TST -> s.Spec.tst_rr
  | A.TEQ -> s.Spec.tst_rr
  | A.CMP -> s.Spec.cmp_rr
  | A.CMN -> s.Spec.cmn_rr
  | A.MOV -> s.Spec.mov_rr
  | A.MVN -> s.Spec.mvn_rr

let expand_dp spec ~op ~s ~rd ~rn ~op2 =
  let pick = arith_sub2op spec in
  match op with
  | A.MOV when (not s) && (match op2 with A.Imm _ -> true | _ -> false) ->
      (* constant move: one dictionary load *)
      [ seq_materialize spec ~reg:rd (Option.get (A.operand2_value op2)) ]
  | A.MOV
    when (not s)
         && (match op2 with
            | A.Reg_shift_reg (_, _, rs) -> rs <> rd
            | A.Reg _ | A.Imm _ | A.Reg_shift _ -> true) ->
      (* build the operand straight into the destination *)
      let steps = operand_into spec ~dst:rd op2 in
      if steps = [] then [ mov_rr spec ~rd ~rm:rd ] else steps
  | A.MOV | A.MVN ->
      (* compute (possibly shifted/immediate) operand, then move *)
      let pre = operand_into spec ~dst:tr op2 in
      pre
      @ [ step (pick op) ~rc:rd ~oprd:(O_reg tr)
            (M_exec (A.Dp { cond = A.AL; op; s; rd; rn = 0; op2 = A.Reg tr }))
        ]
  | A.TST | A.TEQ | A.CMP | A.CMN ->
      let pre = operand_into spec ~dst:tr op2 in
      pre
      @ [ step (pick op) ~rc:rn ~oprd:(O_reg tr)
            (M_exec
               (A.Dp { cond = A.AL; op; s = true; rd = 0; rn;
                       op2 = A.Reg tr }))
        ]
  | A.RSB | A.RSC ->
      (* rd := x - rn (- borrow): compute x into a temp, subtract rn *)
      let pre = operand_into spec ~dst:tr op2 in
      let sub_op = if op = A.RSB then A.SUB else A.SBC in
      pre
      @ [ step (pick op) ~rc:tr ~oprd:(O_reg rn)
            (M_exec
               (A.Dp { cond = A.AL; op = sub_op; s; rd = tr; rn = tr;
                       op2 = A.Reg rn }));
          mov_rr spec ~rd ~rm:tr
        ]
  | A.AND | A.EOR | A.SUB | A.ADD | A.ADC | A.SBC | A.ORR | A.BIC -> (
      let commutative =
        match op with A.ADD | A.AND | A.ORR | A.EOR -> true | _ -> false
      in
      (* commutative destructive form: swap so rd = rn *)
      let rn, op2 =
        match op2 with
        | A.Reg rm when commutative && rd = rm && rd <> rn -> (rm, A.Reg rn)
        | _ -> (rn, op2)
      in
      let x_plain = match op2 with A.Reg rm -> Some rm | _ -> None in
      match x_plain with
      | Some x when rd = rn ->
          [ two_op_dp pick ~op ~s ~rd ~x ]
      | Some x when rd <> x ->
          [ mov_rr spec ~rd ~rm:rn; two_op_dp pick ~op ~s ~rd ~x ]
      | Some x ->
          (* rd = x <> rn: stash the operand first *)
          [ mov_rr spec ~rd:tr ~rm:x;
            mov_rr spec ~rd ~rm:rn;
            two_op_dp pick ~op ~s ~rd ~x:tr ]
      | None ->
          let pre = operand_into spec ~dst:tr op2 in
          if rd = rn then pre @ [ two_op_dp pick ~op ~s ~rd ~x:tr ]
          else
            pre
            @ [ mov_rr spec ~rd ~rm:rn; two_op_dp pick ~op ~s ~rd ~x:tr ])

let mem_via_temp spec ~load ~width ~signed ~rd =
  (* the effective address is in [tr]; emit the access itself *)
  let s = sis spec in
  let mem od ~dest ~base ~ofs w =
    step od ~rc:dest ~ra:base ~oprd:(O_lit ofs)
      (M_exec
         (A.Mem { cond = A.AL; load; width = w; signed = false; rd = dest;
                  rn = base; offset = A.Ofs_imm ofs; writeback = false }))
  in
  match (load, width, signed) with
  | true, A.Word, _ -> [ mem s.Spec.ldrw ~dest:rd ~base:tr ~ofs:0 A.Word ]
  | false, A.Word, _ -> [ mem s.Spec.strw ~dest:rd ~base:tr ~ofs:0 A.Word ]
  | true, A.Byte, false -> [ mem s.Spec.ldrb ~dest:rd ~base:tr ~ofs:0 A.Byte ]
  | false, A.Byte, _ -> [ mem s.Spec.strb ~dest:rd ~base:tr ~ofs:0 A.Byte ]
  | true, A.Byte, true ->
      [ mem s.Spec.ldrb ~dest:rd ~base:tr ~ofs:0 A.Byte;
        shift2i spec ~rd A.LSL 24;
        shift2i spec ~rd A.ASR 24 ]
  | true, A.Half, false ->
      (* high byte first, then reuse tr for the low byte *)
      [ mem s.Spec.ldrb ~dest:rd ~base:tr ~ofs:1 A.Byte;
        shift2i spec ~rd A.LSL 8;
        mem s.Spec.ldrb ~dest:tr ~base:tr ~ofs:0 A.Byte;
        step s.Spec.orr2 ~rc:rd ~oprd:(O_reg tr)
          (M_exec
             (A.Dp { cond = A.AL; op = A.ORR; s = false; rd; rn = rd;
                     op2 = A.Reg tr })) ]
  | true, A.Half, true ->
      [ mem s.Spec.ldrb ~dest:rd ~base:tr ~ofs:1 A.Byte;
        shift2i spec ~rd A.LSL 8;
        mem s.Spec.ldrb ~dest:tr ~base:tr ~ofs:0 A.Byte;
        step s.Spec.orr2 ~rc:rd ~oprd:(O_reg tr)
          (M_exec
             (A.Dp { cond = A.AL; op = A.ORR; s = false; rd; rn = rd;
                     op2 = A.Reg tr }));
        shift2i spec ~rd A.LSL 16;
        shift2i spec ~rd A.ASR 16 ]
  | false, A.Half, _ ->
      (* store low byte, rotate to expose the high byte, restore *)
      [ mem s.Spec.strb ~dest:rd ~base:tr ~ofs:0 A.Byte;
        shift2i spec ~rd A.ROR 8;
        mem s.Spec.strb ~dest:rd ~base:tr ~ofs:1 A.Byte;
        shift2i spec ~rd A.ROR 24 ]

let expand_mem spec ~load ~width ~signed ~rd ~rn ~offset ~writeback =
  (* compute the effective address into tr *)
  let addr =
    match offset with
    | A.Ofs_imm ofs ->
        [ seq_materialize spec ~reg:tr ofs; add2 spec ~rd:tr ~rm:rn ]
    | A.Ofs_reg (rx, k, n) ->
        operand_into spec ~dst:tr (if n = 0 then A.Reg rx
                                   else A.Reg_shift (rx, k, n))
        @ [ add2 spec ~rd:tr ~rm:rn ]
  in
  let wb = if writeback then [ mov_rr spec ~rd:rn ~rm:tr ] else [] in
  addr @ wb @ mem_via_temp spec ~load ~width ~signed ~rd

let expand_mul spec ~rd ~rm ~rs ~acc ~s =
  let sgroup = sis spec in
  let mul2 ~dest ~other =
    step sgroup.Spec.mul2 ~rc:dest ~oprd:(O_reg other)
      (M_exec (A.Mul { cond = A.AL; s; rd = dest; rm = dest; rs = other;
                       acc = None }))
  in
  match acc with
  | None ->
      if rd = rm then [ mul2 ~dest:rd ~other:rs ]
      else if rd = rs then [ mul2 ~dest:rd ~other:rm ]
      else [ mov_rr spec ~rd ~rm; mul2 ~dest:rd ~other:rs ]
  | Some rn ->
      (* rd := rm*rs + rn using the scratch register *)
      [ mov_rr spec ~rd:tr ~rm;
        mul2 ~dest:tr ~other:rs;
        add2 spec ~rd:tr ~rm:rn;
        mov_rr spec ~rd ~rm:tr ]

let strip_cond (insn : A.t) : A.t =
  match insn with
  | A.Dp d -> A.Dp { d with cond = A.AL }
  | A.Mul m -> A.Mul { m with cond = A.AL }
  | A.Mem m -> A.Mem { m with cond = A.AL }
  | A.Push p -> A.Push { p with cond = A.AL }
  | A.Pop p -> A.Pop { p with cond = A.AL }
  | A.B b -> A.B { b with cond = A.AL }
  | A.Bx b -> A.Bx { b with cond = A.AL }
  | A.Swi s -> A.Swi { s with cond = A.AL }

let expand spec (insn : A.t) =
  match insn with
  | A.Dp { op; s; rd; rn; op2; _ } -> expand_dp spec ~op ~s ~rd ~rn ~op2
  | A.Mul { s; rd; rm; rs; acc; _ } -> expand_mul spec ~rd ~rm ~rs ~acc ~s
  | A.Mem { load; width; signed; rd; rn; offset; writeback; _ } ->
      expand_mem spec ~load ~width ~signed ~rd ~rn ~offset ~writeback
  | A.Push _ | A.Pop _ ->
      unmappable "register-list table overflow (more than 256 lists)"
  | A.Bx _ | A.Swi _ | A.B _ ->
      unmappable "unexpected expansion request for %s" (A.to_string insn)

let plan spec ~pc (insn : A.t) =
  match insn with
  | A.B { cond; link; offset } ->
      P_branch { cond; link; arm_target = pc + 8 + offset }
  | _ -> (
      match covered spec insn with
      | Some od -> P_seq [ direct spec od insn ]
      | None ->
          let cond = A.cond_of insn in
          if cond <> A.AL then begin
            let base = strip_cond insn in
            let inner =
              match covered spec base with
              | Some od -> [ direct spec od base ]
              | None -> expand spec base
            in
            P_seq (seq_skip spec ~cond ~count:(List.length inner) :: inner)
          end
          else P_seq (expand spec insn))

let plan_length = function
  | P_seq l -> List.length l
  | P_branch _ -> 1

(* PC-relative literal-pool loads are the one place ARM code reads its own
   code segment.  FITS replaces the pool with the immediate dictionary
   (paper §3.3): the load becomes a single MovD carrying the pool's value,
   so it is resolved against the image here. *)
let pool_load (image : Pf_arm.Image.t) ~pc (insn : A.t) =
  match insn with
  | A.Mem { cond = A.AL; load = true; width = A.Word; signed = false; rd;
            rn = 15; offset = A.Ofs_imm ofs; writeback = false } ->
      Some (rd, Pf_arm.Image.word_at image (pc + 8 + ofs))
  | _ -> None

let plan_in_image spec image ~pc insn =
  match pool_load image ~pc insn with
  | Some (rd, value) -> P_seq [ seq_materialize spec ~reg:rd value ]
  | None -> plan spec ~pc insn
