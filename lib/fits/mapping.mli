(** Per-instruction mapping from the ARM-like ISA onto a synthesized FITS
    specification: the decision procedure behind the paper's Figure 3/4
    one-to-one mapping rates.

    An ARM instruction maps {e one-to-one} when some synthesized opcode
    covers it — same operation key, matching predicate, operands that fit
    the 16-bit fields (literal in range, immediate present in the head of
    the dictionary, register list in the table).  Anything else {e expands}
    into a short sequence of BIS/SIS instructions using the
    over-provisioned scratch register; expansions preserve the exact
    architectural semantics including flags (the final step of a sequence
    carries the original operation). *)

module A = Pf_arm.Insn

type oprd =
  | O_none
  | O_reg of int
  | O_lit of int        (** raw (descaled) 4-bit field value *)
  | O_dictval of int    (** 32-bit value; its dictionary index is the field *)
  | O_arg of int        (** 8-bit argument (system / movd formats) *)

(** What the programmable decoder turns the 16-bit word into. *)
type micro =
  | M_exec of A.t       (** an ordinary micro-operation *)
  | M_dp32 of { op : A.dp_op; s : bool; rd : int; rn : int; value : int;
                cond : A.cond }
      (** data-processing with a full 32-bit dictionary operand *)
  | M_jalr of int       (** call through register: lr := pc+2; pc := reg *)
  | M_undef of string
      (** poisoned decoder entry (fault injection): executing it raises a
          [Decode_fault]; the payload describes the corruption *)

type fdesc = {
  op : Spec.opdef;
  rc : int;
  ra : int;
  oprd : oprd;
  micro : micro;
}

type plan =
  | P_seq of fdesc list
      (** address-independent mapping; length 1 = one-to-one *)
  | P_branch of { cond : A.cond; link : bool; arm_target : int }
      (** B/BL: form chosen during layout (near direct / far expansion) *)

exception Unmappable of string
(** Raised when no finite expansion exists (e.g. register-list table
    overflow) — indicates a synthesis capacity bug, not a program bug. *)

val op_covers : Spec.t -> Spec.opdef -> A.t -> bool
val covered : Spec.t -> A.t -> Spec.opdef option

val plan : Spec.t -> pc:int -> A.t -> plan
(** [pc] is the ARM address of the instruction (for branch targets). *)

val plan_length : plan -> int
(** Sequence length; branches count optimistically as 1 (near form). *)

val seq_skip : Spec.t -> cond:A.cond -> count:int -> fdesc
(** The SK (skip-unless-cond) instruction used for predication fallback
    and far conditional branches; exposed for the layout phase. *)

val seq_materialize : Spec.t -> reg:int -> int -> fdesc
(** One instruction putting an arbitrary 32-bit constant in a register
    (short literal or dictionary load); exposed for far-branch layout. *)

val pool_load : Pf_arm.Image.t -> pc:int -> A.t -> (int * int) option
(** Recognize a PC-relative literal-pool load and resolve (rd, value). *)

val plan_in_image : Spec.t -> Pf_arm.Image.t -> pc:int -> A.t -> plan
(** Like {!plan}, but translates literal-pool loads into dictionary loads
    (the paper's immediate-synthesis mechanism). *)
