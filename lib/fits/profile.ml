module A = Pf_arm.Insn
open Pf_util

type t = {
  static_keys : (Opkey.predicated, int) Hashtbl.t;
  dyn_keys : (Opkey.predicated, int) Hashtbl.t;
  imm_op_static : Stats.histogram;
  imm_op_dyn : Stats.histogram;
  mem_ofs_static : Stats.histogram;
  mem_ofs_dyn : Stats.histogram;
  branch_disp_static : Stats.histogram;
  reg_static : Stats.histogram;
  reg_dyn : Stats.histogram;
  mutable static_insns : int;
  mutable dyn_insns : int;
}

let create () =
  {
    static_keys = Hashtbl.create 128;
    dyn_keys = Hashtbl.create 128;
    imm_op_static = Stats.histogram ();
    imm_op_dyn = Stats.histogram ();
    mem_ofs_static = Stats.histogram ();
    mem_ofs_dyn = Stats.histogram ();
    branch_disp_static = Stats.histogram ();
    reg_static = Stats.histogram ();
    reg_dyn = Stats.histogram ();
    static_insns = 0;
    dyn_insns = 0;
  }

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + n)
  | None -> Hashtbl.add tbl key n

let add t ?(dyn_weight = 0) (i : A.t) =
  let pk = Opkey.of_insn i in
  t.static_insns <- t.static_insns + 1;
  t.dyn_insns <- t.dyn_insns + dyn_weight;
  bump t.static_keys pk 1;
  if dyn_weight > 0 then bump t.dyn_keys pk dyn_weight;
  (* immediate fields, by category *)
  (match i with
  | A.Dp { op2 = A.Imm _ as op2; _ } -> (
      match A.operand2_value op2 with
      | Some v ->
          Stats.add t.imm_op_static v;
          if dyn_weight > 0 then Stats.add t.imm_op_dyn ~weight:dyn_weight v
      | None -> ())
  | A.Mem { offset = A.Ofs_imm ofs; _ } ->
      Stats.add t.mem_ofs_static ofs;
      if dyn_weight > 0 then Stats.add t.mem_ofs_dyn ~weight:dyn_weight ofs
  | A.B { offset; _ } -> Stats.add t.branch_disp_static offset
  | A.Dp _ | A.Mem _ | A.Mul _ | A.Push _ | A.Pop _ | A.Bx _ | A.Swi _ -> ());
  (* register pressure *)
  let regs = A.regs_read i @ A.regs_written i in
  List.iter
    (fun r ->
      Stats.add t.reg_static r;
      if dyn_weight > 0 then Stats.add t.reg_dyn ~weight:dyn_weight r)
    regs

let of_image (image : Pf_arm.Image.t) =
  let t = create () in
  Array.iter
    (function Some i -> add t i | None -> ())
    image.Pf_arm.Image.insns;
  t

let of_image_counts (image : Pf_arm.Image.t) ~counts =
  let t = create () in
  Array.iteri
    (fun idx insn ->
      match insn with
      | Some i -> add t ~dyn_weight:counts.(idx) i
      | None -> ())
    image.Pf_arm.Image.insns;
  t

let profile_run ?max_steps (image : Pf_arm.Image.t) =
  let nwords = Array.length image.Pf_arm.Image.words in
  let counts = Array.make nwords 0 in
  let st = Pf_arm.Exec.create image in
  Pf_arm.Pexec.run_counting ?max_steps (Pf_arm.Pexec.compile image) st
    ~counts;
  (of_image_counts image ~counts, Pf_arm.Exec.output st)

(* ---- the profile algebra ------------------------------------------------ *)

(* Merging is plain integer addition on every component, so it is
   commutative and associative up to the semantic equality below, and
   [create ()] is its unit — the laws the multi-program synthesis relies
   on (and test/test_multi.ml checks with QCheck). *)

let hist_merge_into dst src =
  List.iter (fun (k, w) -> Stats.add dst ~weight:w k) (Stats.sorted_desc src)

let tbl_merge_into dst src = Hashtbl.iter (fun k n -> bump dst k n) src

let merge a b =
  let t = create () in
  tbl_merge_into t.static_keys a.static_keys;
  tbl_merge_into t.static_keys b.static_keys;
  tbl_merge_into t.dyn_keys a.dyn_keys;
  tbl_merge_into t.dyn_keys b.dyn_keys;
  hist_merge_into t.imm_op_static a.imm_op_static;
  hist_merge_into t.imm_op_static b.imm_op_static;
  hist_merge_into t.imm_op_dyn a.imm_op_dyn;
  hist_merge_into t.imm_op_dyn b.imm_op_dyn;
  hist_merge_into t.mem_ofs_static a.mem_ofs_static;
  hist_merge_into t.mem_ofs_static b.mem_ofs_static;
  hist_merge_into t.mem_ofs_dyn a.mem_ofs_dyn;
  hist_merge_into t.mem_ofs_dyn b.mem_ofs_dyn;
  hist_merge_into t.branch_disp_static a.branch_disp_static;
  hist_merge_into t.branch_disp_static b.branch_disp_static;
  hist_merge_into t.reg_static a.reg_static;
  hist_merge_into t.reg_static b.reg_static;
  hist_merge_into t.reg_dyn a.reg_dyn;
  hist_merge_into t.reg_dyn b.reg_dyn;
  t.static_insns <- a.static_insns + b.static_insns;
  t.dyn_insns <- a.dyn_insns + b.dyn_insns;
  t

let merge_all ps = List.fold_left merge (create ()) ps

let scale t k =
  if k < 0 then
    Sim_error.raisef Sim_error.Invalid_config ~where:"fits.profile"
      "Profile.scale: negative factor %d" k;
  let r = create () in
  tbl_merge_into r.static_keys t.static_keys;
  Hashtbl.iter (fun key n -> bump r.dyn_keys key (n * k)) t.dyn_keys;
  hist_merge_into r.imm_op_static t.imm_op_static;
  hist_merge_into r.mem_ofs_static t.mem_ofs_static;
  hist_merge_into r.branch_disp_static t.branch_disp_static;
  hist_merge_into r.reg_static t.reg_static;
  List.iter
    (fun (key, w) -> Stats.add r.imm_op_dyn ~weight:(w * k) key)
    (Stats.sorted_desc t.imm_op_dyn);
  List.iter
    (fun (key, w) -> Stats.add r.mem_ofs_dyn ~weight:(w * k) key)
    (Stats.sorted_desc t.mem_ofs_dyn);
  List.iter
    (fun (key, w) -> Stats.add r.reg_dyn ~weight:(w * k) key)
    (Stats.sorted_desc t.reg_dyn);
  r.static_insns <- t.static_insns;
  r.dyn_insns <- t.dyn_insns * k;
  r

(* Semantic equality: hashtable/histogram internals (insertion order,
   zero-weight residue) must not distinguish profiles, so everything is
   compared through a canonical sorted view that drops zero entries. *)
let equal a b =
  let canon_tbl tbl =
    Hashtbl.fold (fun k n acc -> if n = 0 then acc else (k, n) :: acc) tbl []
    |> List.sort compare
  in
  let canon_hist h =
    List.filter (fun (_, w) -> w <> 0) (Stats.sorted_desc h)
    |> List.sort compare
  in
  a.static_insns = b.static_insns
  && a.dyn_insns = b.dyn_insns
  && canon_tbl a.static_keys = canon_tbl b.static_keys
  && canon_tbl a.dyn_keys = canon_tbl b.dyn_keys
  && canon_hist a.imm_op_static = canon_hist b.imm_op_static
  && canon_hist a.imm_op_dyn = canon_hist b.imm_op_dyn
  && canon_hist a.mem_ofs_static = canon_hist b.mem_ofs_static
  && canon_hist a.mem_ofs_dyn = canon_hist b.mem_ofs_dyn
  && canon_hist a.branch_disp_static = canon_hist b.branch_disp_static
  && canon_hist a.reg_static = canon_hist b.reg_static
  && canon_hist a.reg_dyn = canon_hist b.reg_dyn

let dyn_key_count t pk =
  match Hashtbl.find_opt t.dyn_keys pk with Some c -> c | None -> 0

let static_key_count t pk =
  match Hashtbl.find_opt t.static_keys pk with Some c -> c | None -> 0

let keys_by_dyn_weight t =
  let all = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace all k ()) t.static_keys;
  Hashtbl.iter (fun k _ -> Hashtbl.replace all k ()) t.dyn_keys;
  Hashtbl.fold (fun k () acc -> (k, dyn_key_count t k) :: acc) all []
  |> List.sort (fun (k1, w1) (k2, w2) ->
         if w1 <> w2 then compare w2 w1 else compare k1 k2)

let registers_by_use t =
  List.init 16 Fun.id
  |> List.sort (fun a b ->
         compare (Stats.count t.reg_dyn b) (Stats.count t.reg_dyn a))

let summary t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "static instructions: %d\n" t.static_insns;
  Printf.bprintf buf "dynamic instructions: %d\n" t.dyn_insns;
  Printf.bprintf buf "distinct operation keys: %d\n"
    (Hashtbl.length t.static_keys);
  Printf.bprintf buf "top keys by dynamic weight:\n";
  List.iteri
    (fun i (pk, w) ->
      if i < 15 then
        Printf.bprintf buf "  %-14s%s  dyn=%-10d static=%d\n"
          (Opkey.to_string pk.Opkey.key)
          (match pk.Opkey.cond with
          | A.AL -> ""
          | c -> "?" ^ A.cond_suffix c)
          w (static_key_count t pk))
    (keys_by_dyn_weight t);
  Printf.bprintf buf "distinct operate immediates: %d (static)\n"
    (Stats.distinct t.imm_op_static);
  Printf.bprintf buf "distinct memory offsets: %d (static)\n"
    (Stats.distinct t.mem_ofs_static);
  Buffer.contents buf
