(** The FITS profiler (paper §3.2, the "profile" stage of Figure 1).

    Produces "an extensive requirement analysis related to each element
    that makes up an instruction set": opcode usage (by {!Opkey.t}),
    predication, operand shapes, immediate-field value distributions split
    into the three categories of §3.3 (operate immediates, memory
    displacements, branch displacements), and register pressure.  Both
    static (code image) and dynamic (execution-weighted) views are kept —
    static drives code size, dynamic drives power and performance. *)

open Pf_util

type t = {
  static_keys : (Opkey.predicated, int) Hashtbl.t;
  dyn_keys : (Opkey.predicated, int) Hashtbl.t;
  imm_op_static : Stats.histogram;   (** operate-immediate values *)
  imm_op_dyn : Stats.histogram;
  mem_ofs_static : Stats.histogram;  (** memory displacement bytes *)
  mem_ofs_dyn : Stats.histogram;
  branch_disp_static : Stats.histogram; (** branch displacement bytes *)
  reg_static : Stats.histogram;      (** register numbers read/written *)
  reg_dyn : Stats.histogram;
  mutable static_insns : int;
  mutable dyn_insns : int;
}

val create : unit -> t

val add : t -> ?dyn_weight:int -> Pf_arm.Insn.t -> unit
(** Record one static instruction executed [dyn_weight] times
    (0 = never executed; it still counts statically). *)

val of_image : Pf_arm.Image.t -> t
(** Static-only profile of an image. *)

val of_image_counts : Pf_arm.Image.t -> counts:int array -> t
(** Full static+dynamic profile from per-word execution counts already
    measured (e.g. {!Synthesis.dyn_counts_of_run}) — no execution. *)

val profile_run :
  ?max_steps:int -> Pf_arm.Image.t -> t * string
(** Execute the image once and return the full static+dynamic profile and
    the program output (so callers can validate the run). *)

(** {2 Profile algebra}

    Profiles of different programs combine by component-wise integer
    addition, giving the suite profile the multi-program synthesis of
    {!Pf_multi} feeds through the BIS/SIS/AIS machinery.  [merge] is
    commutative and associative modulo {!equal}, with [create ()] as its
    unit (property-tested in test/test_multi.ml). *)

val merge : t -> t -> t
(** Component-wise sum of two profiles; inputs are not mutated. *)

val merge_all : t list -> t
(** Fold of {!merge} over the list; [merge_all [] = create ()] and
    [equal (merge_all [p]) p]. *)

val scale : t -> int -> t
(** [scale t k] multiplies every {e dynamic} count by [k] (static counts
    describe the code image and are left untouched) — the per-program
    weighting hook of {!Pf_multi.Weighting}.
    @raise Pf_util.Sim_error.Error on a negative factor. *)

val equal : t -> t -> bool
(** Semantic equality: canonical (sorted, zero-entry-free) comparison of
    every component, independent of hashtable internals. *)

val dyn_key_count : t -> Opkey.predicated -> int
val static_key_count : t -> Opkey.predicated -> int

val keys_by_dyn_weight : t -> (Opkey.predicated * int) list
(** All observed keys, heaviest dynamic count first. *)

val registers_by_use : t -> int list
(** Register numbers sorted by descending dynamic use. *)

val summary : t -> string
(** Human-readable profile report. *)
