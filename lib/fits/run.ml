module A = Pf_arm.Insn
module Px = Pf_arm.Pexec
module P = Pf_cpu.Pipeline

type result = {
  fits_instructions : int;
  arm_instructions : int;
  dyn_one_to_one_pct : float;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  output : string;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

type meta = {
  cls : P.insn_class;
  reads : int;
  writes : int;
  backward : bool;
}

let meta_of_micro (m : Mapping.micro) =
  match m with
  | Mapping.M_exec insn ->
      {
        cls = Pf_cpu.Arm_run.Meta.classify insn;
        reads = A.read_mask insn;
        writes = A.write_mask insn;
        backward =
          (match insn with A.B { offset; _ } -> offset < 0 | _ -> false);
      }
  | Mapping.M_dp32 { rd; rn; op; _ } ->
      let reads = match op with A.MOV | A.MVN -> 0 | _ -> A.reg_bit rn in
      { cls = P.Alu; reads; writes = A.reg_bit rd; backward = false }
  | Mapping.M_jalr rm ->
      { cls = P.Branch; reads = A.reg_bit rm; writes = A.reg_bit A.lr;
        backward = false }
  | Mapping.M_undef _ ->
      (* never issued: dispatch raises before reaching the pipeline *)
      { cls = P.Alu; reads = 0; writes = 0; backward = false }

(* Predecode the translated stream: one micro-op per 16-bit slot, pipeline
   metadata attached (same classes and masks as [meta_of_micro]). *)
let predecode (tr : Translate.t) =
  let code_base = tr.Translate.code_base in
  Array.mapi
    (fun idx fi ->
      let pc = code_base + (2 * idx) in
      match fi.Translate.micro with
      | Mapping.M_exec insn -> Px.of_insn ~isize:2 ~pc insn
      | Mapping.M_dp32 { op; s; rd; rn; value; cond } ->
          Px.dp_value ~isize:2 ~pc ~cond ~op ~s ~rd ~rn ~value
      | Mapping.M_jalr rm -> Px.jalr ~pc ~rm
      | Mapping.M_undef why -> Px.undef ~isize:2 ~pc ~why)
    tr.Translate.insns

type engine = Pf_cpu.Arm_run.engine = Reference | Predecoded | Compiled

let default_cache_cfg = Pf_cache.Icache.config ~size_bytes:(16 * 1024) ()

let where = "fits.run"

let outside_fault pc =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
    "FITS fetch outside code at 0x%x" pc

let budget_fault max_steps =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Watchdog_timeout ~where
    "FITS step budget exhausted (%d)" max_steps

let run ?(engine = Predecoded) ?cache ?(cache_cfg = default_cache_cfg)
    ?pipeline_cfg ?power_params ?(classify = false)
    ?(max_steps = 500_000_000) ?deadline ?on_step ?trace (tr : Translate.t) =
  let cache =
    match cache with
    | Some c -> c
    | None -> Pf_cache.Icache.create ~classify cache_cfg
  in
  let dcache = Pf_cache.Icache.create Pf_cpu.Arm_run.dcache_cfg in
  let geometry = Pf_power.Geometry.of_config cache_cfg in
  let account = Pf_power.Account.create ?params:power_params geometry in
  let code_base = tr.Translate.code_base in
  let words = tr.Translate.words in
  let fetch_data addr = words.((addr - code_base) lsr 2) in
  let pipe =
    P.create ?config:pipeline_cfg ~dcache ~cache ~account ~fetch_data ()
  in
  let insns = tr.Translate.insns in
  let ninsns = Array.length insns in
  let st = Pf_arm.Exec.create tr.Translate.image in
  let o = Pf_arm.Exec.outcome () in
  let pc = ref tr.Translate.entry in
  let steps = ref 0 in
  let src_retired = ref 0 in
  let src_one = ref 0 in
  let no_hook = match on_step with None -> true | Some _ -> false in
  (match engine with
  | Compiled when no_hook -> begin
      (* Block-compiled driver: the FITS counterpart of
         [Arm_run.run_compiled] — 16-bit slots, the local step counter as
         the budget, per-block source-instruction bookkeeping summed from
         [Translate.first]/[group_len] once at first dispatch, and the
         FITS-specific fault messages in boundary mode.  Watchdog and
         deadline behaviour is made exact the same way: when a budget
         exhaustion or a deadline poll would land inside the next block
         (or the block is a legality fallback), one instruction runs with
         the exact per-instruction body. *)
      let uops = predecode tr in
      let cx =
        Pf_cpu.Cexec.create ~isize:2 ~code_base (Pf_arm.Bexec.create uops)
      in
      let dmask = Pf_arm.Exec.deadline_mask in
      let sh_dp = Pf_arm.Bexec.sh_dp in
      let seq_tog = P.seq_toggle_prefix ~words in
      let wbase = code_base lsr 2 in
      (* per-block source-retirement sums, filled at first dispatch *)
      let src_tab = Array.make ninsns (-1) in
      let one_tab = Array.make ninsns 0 in
      let fill_src idx len =
        let a = ref 0 and b = ref 0 in
        for i = idx to idx + len - 1 do
          let fi = insns.(i) in
          if fi.Translate.first then begin
            incr a;
            if fi.Translate.group_len = 1 then incr b
          end
        done;
        src_tab.(idx) <- !a;
        one_tab.(idx) <- !b
      in
      let step_boundary idx =
        (* one exact per-instruction step: same checks, same faults, same
           step counts as the predecoded loop bodies *)
        if !steps >= max_steps then budget_fault max_steps;
        if !steps land dmask = 0 then Pf_util.Deadline.check ~where deadline;
        let u = uops.(idx) in
        if u.Px.code = Px.code_undef then
          Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
            "corrupted decoder entry at 0x%x: %s" !pc u.Px.why;
        Px.exec st o u;
        u
      in
      let finish_boundary idx =
        let fi = insns.(idx) in
        if fi.Translate.first then begin
          incr src_retired;
          if fi.Translate.group_len = 1 then incr src_one
        end;
        incr steps;
        pc := o.Pf_arm.Exec.next_pc
      in
      (* run-scan cursors, hoisted so block dispatch allocates nothing *)
      let i = ref 0 and j = ref 0 in
      match trace with
      | None ->
          while not st.Pf_arm.Exec.halted do
            if !pc = Pf_arm.Exec.halt_sentinel then
              st.Pf_arm.Exec.halted <- true
            else begin
              let idx = (!pc - code_base) asr 1 in
              if idx < 0 || idx >= ninsns then outside_fault !pc;
              let cbk = Pf_cpu.Cexec.block_at cx idx in
              let bb = cbk.Pf_cpu.Cexec.bb in
              let len = bb.Pf_arm.Bexec.len in
              let s0 = !steps in
              if
                bb.Pf_arm.Bexec.fallback
                || s0 + len > max_steps
                || (s0 + dmask) land lnot dmask < s0 + len
              then begin
                let u = step_boundary idx in
                P.issue pipe ~backward:u.Px.backward
                  ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:!pc
                  ~size:2
                  ~cls:(Pf_cpu.Trace.cls_of_code u.Px.cls)
                  ~reads:u.Px.reads ~writes:u.Px.writes
                  ~taken:o.Pf_arm.Exec.branch_taken
                  ~mem_words:o.Pf_arm.Exec.mem_words;
                finish_boundary idx
              end
              else begin
                bb.Pf_arm.Bexec.execs <- bb.Pf_arm.Bexec.execs + 1;
                if src_tab.(idx) < 0 then fill_src idx len;
                let xu = bb.Pf_arm.Bexec.xuops in
                let shapes = bb.Pf_arm.Bexec.shapes in
                let pairs = cbk.Pf_cpu.Cexec.pairs in
                (* run-scan, as in [Arm_run.run_compiled]: maximal ALU runs
                   execute first (dead compares do nothing at all — the
                   local step counter is authoritative here), then issue as
                   one span from the precomputed pairs *)
                i := 0;
                while !i < len do
                  let sh = Array.unsafe_get shapes !i in
                  if sh <= sh_dp then begin
                    j := !i + 1;
                    while !j < len && Array.unsafe_get shapes !j <= sh_dp do
                      incr j
                    done;
                    for k = !i to !j - 1 do
                      if Array.unsafe_get shapes k = sh_dp then
                        Px.exec_dp_nr st o (Array.unsafe_get xu k)
                    done;
                    P.issue_alu_seq_span pipe ~ev:pairs ~pos:(2 * !i)
                      ~n:(!j - !i) ~size:2 ~seq_tog ~wbase;
                    i := !j
                  end
                  else begin
                    let u = Array.unsafe_get xu !i in
                    Px.exec st o u;
                    P.issue pipe ~backward:u.Px.backward
                      ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1)
                      ~addr:(!pc + (!i lsl 1)) ~size:2
                      ~cls:(Pf_cpu.Trace.cls_of_code u.Px.cls)
                      ~reads:u.Px.reads ~writes:u.Px.writes
                      ~taken:o.Pf_arm.Exec.branch_taken
                      ~mem_words:o.Pf_arm.Exec.mem_words;
                    incr i
                  end
                done;
                steps := s0 + len;
                src_retired := !src_retired + src_tab.(idx);
                src_one := !src_one + one_tab.(idx);
                pc :=
                  (if bb.Pf_arm.Bexec.has_term then o.Pf_arm.Exec.next_pc
                   else !pc + (len lsl 1))
              end
            end
          done
      | Some t ->
          while not st.Pf_arm.Exec.halted do
            if !pc = Pf_arm.Exec.halt_sentinel then
              st.Pf_arm.Exec.halted <- true
            else begin
              let idx = (!pc - code_base) asr 1 in
              if idx < 0 || idx >= ninsns then outside_fault !pc;
              let cbk = Pf_cpu.Cexec.block_at cx idx in
              let bb = cbk.Pf_cpu.Cexec.bb in
              let len = bb.Pf_arm.Bexec.len in
              let s0 = !steps in
              if
                bb.Pf_arm.Bexec.fallback
                || s0 + len > max_steps
                || (s0 + dmask) land lnot dmask < s0 + len
              then begin
                let u = step_boundary idx in
                let cls = Pf_cpu.Trace.cls_of_code u.Px.cls in
                let taken = o.Pf_arm.Exec.branch_taken in
                let mem_words = o.Pf_arm.Exec.mem_words in
                P.issue pipe ~backward:u.Px.backward
                  ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:!pc
                  ~size:2 ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken
                  ~mem_words;
                Pf_cpu.Trace.record t ~addr:!pc ~cls ~reads:u.Px.reads
                  ~writes:u.Px.writes ~taken ~backward:u.Px.backward
                  ~dmisses:(P.last_dcache_misses pipe) ~mem_words;
                finish_boundary idx
              end
              else begin
                bb.Pf_arm.Bexec.execs <- bb.Pf_arm.Bexec.execs + 1;
                if src_tab.(idx) < 0 then fill_src idx len;
                let xu = bb.Pf_arm.Bexec.xuops in
                let shapes = bb.Pf_arm.Bexec.shapes in
                let metas = cbk.Pf_cpu.Cexec.metas in
                let pairs = cbk.Pf_cpu.Cexec.pairs in
                (* same run-scan as the untraced loop; ALU spans also
                   bulk-record their precomputed (addr, meta) pairs *)
                i := 0;
                while !i < len do
                  let sh = Array.unsafe_get shapes !i in
                  if sh <= sh_dp then begin
                    j := !i + 1;
                    while !j < len && Array.unsafe_get shapes !j <= sh_dp do
                      incr j
                    done;
                    for k = !i to !j - 1 do
                      if Array.unsafe_get shapes k = sh_dp then
                        Px.exec_dp_nr st o (Array.unsafe_get xu k)
                    done;
                    P.issue_alu_seq_span pipe ~ev:pairs ~pos:(2 * !i)
                      ~n:(!j - !i) ~size:2 ~seq_tog ~wbase;
                    let tid =
                      if cbk.Pf_cpu.Cexec.tid >= 0 then cbk.Pf_cpu.Cexec.tid
                      else begin
                        let id = Pf_cpu.Trace.register_pairs t pairs in
                        cbk.Pf_cpu.Cexec.tid <- id;
                        id
                      end
                    in
                    Pf_cpu.Trace.record_span t ~tid ~pos:(2 * !i)
                      ~n:(!j - !i);
                    i := !j
                  end
                  else begin
                    let u = Array.unsafe_get xu !i in
                    let m = Array.unsafe_get metas !i in
                    let a = !pc + (!i lsl 1) in
                    Px.exec st o u;
                    let taken = o.Pf_arm.Exec.branch_taken in
                    let mem_words = o.Pf_arm.Exec.mem_words in
                    P.issue pipe ~backward:u.Px.backward
                      ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:a
                      ~size:2
                      ~cls:(Pf_cpu.Trace.cls_of_code u.Px.cls)
                      ~reads:u.Px.reads ~writes:u.Px.writes ~taken ~mem_words;
                    Pf_cpu.Trace.record_packed t ~addr:a
                      ~meta:
                        (m
                        lor Pf_cpu.Trace.dynamic_meta ~taken ~mem_words
                              ~dmisses:(P.last_dcache_misses pipe));
                    incr i
                  end
                done;
                steps := s0 + len;
                src_retired := !src_retired + src_tab.(idx);
                src_one := !src_one + one_tab.(idx);
                pc :=
                  (if bb.Pf_arm.Bexec.has_term then o.Pf_arm.Exec.next_pc
                   else !pc + (len lsl 1))
              end
            end
          done
    end
  | Predecoded | Compiled -> begin
      let uops = predecode tr in
      (* the [trace] / [on_step] option dispatch is hoisted out of the
         loop: the common paths (plain run, recording run) execute
         specialized bodies with no per-step option matching *)
      match (trace, on_step) with
      | None, None ->
          while not st.Pf_arm.Exec.halted do
            if !pc = Pf_arm.Exec.halt_sentinel then
              st.Pf_arm.Exec.halted <- true
            else begin
              if !steps >= max_steps then budget_fault max_steps;
              if !steps land Pf_arm.Exec.deadline_mask = 0 then
                Pf_util.Deadline.check ~where deadline;
              let idx = (!pc - code_base) asr 1 in
              if idx < 0 || idx >= ninsns then outside_fault !pc;
              let u = uops.(idx) in
              if u.Px.code = Px.code_undef then
                Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault
                  ~where "corrupted decoder entry at 0x%x: %s" !pc u.Px.why;
              Px.exec st o u;
              P.issue pipe ~backward:u.Px.backward
                ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:!pc
                ~size:2
                ~cls:(Pf_cpu.Trace.cls_of_code u.Px.cls)
                ~reads:u.Px.reads ~writes:u.Px.writes
                ~taken:o.Pf_arm.Exec.branch_taken
                ~mem_words:o.Pf_arm.Exec.mem_words;
              let fi = insns.(idx) in
              if fi.Translate.first then begin
                incr src_retired;
                if fi.Translate.group_len = 1 then incr src_one
              end;
              incr steps;
              pc := o.Pf_arm.Exec.next_pc
            end
          done
      | Some t, None ->
          while not st.Pf_arm.Exec.halted do
            if !pc = Pf_arm.Exec.halt_sentinel then
              st.Pf_arm.Exec.halted <- true
            else begin
              if !steps >= max_steps then budget_fault max_steps;
              if !steps land Pf_arm.Exec.deadline_mask = 0 then
                Pf_util.Deadline.check ~where deadline;
              let idx = (!pc - code_base) asr 1 in
              if idx < 0 || idx >= ninsns then outside_fault !pc;
              let u = uops.(idx) in
              if u.Px.code = Px.code_undef then
                Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault
                  ~where "corrupted decoder entry at 0x%x: %s" !pc u.Px.why;
              Px.exec st o u;
              let cls = Pf_cpu.Trace.cls_of_code u.Px.cls in
              let taken = o.Pf_arm.Exec.branch_taken in
              let mem_words = o.Pf_arm.Exec.mem_words in
              P.issue pipe ~backward:u.Px.backward
                ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:!pc
                ~size:2 ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken
                ~mem_words;
              Pf_cpu.Trace.record t ~addr:!pc ~cls ~reads:u.Px.reads
                ~writes:u.Px.writes ~taken ~backward:u.Px.backward
                ~dmisses:(P.last_dcache_misses pipe) ~mem_words;
              let fi = insns.(idx) in
              if fi.Translate.first then begin
                incr src_retired;
                if fi.Translate.group_len = 1 then incr src_one
              end;
              incr steps;
              pc := o.Pf_arm.Exec.next_pc
            end
          done
      | _ ->
          (* rare paths (fault-injection [on_step] hook): per-step option
             matching is fine here *)
          while not st.Pf_arm.Exec.halted do
            if !pc = Pf_arm.Exec.halt_sentinel then
              st.Pf_arm.Exec.halted <- true
            else begin
              if !steps >= max_steps then budget_fault max_steps;
              if !steps land Pf_arm.Exec.deadline_mask = 0 then
                Pf_util.Deadline.check ~where deadline;
              let idx = (!pc - code_base) asr 1 in
              if idx < 0 || idx >= ninsns then outside_fault !pc;
              let u = uops.(idx) in
              if u.Px.code = Px.code_undef then
                Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault
                  ~where "corrupted decoder entry at 0x%x: %s" !pc u.Px.why;
              Px.exec st o u;
              let cls = Pf_cpu.Trace.cls_of_code u.Px.cls in
              let taken = o.Pf_arm.Exec.branch_taken in
              let mem_words = o.Pf_arm.Exec.mem_words in
              P.issue pipe ~backward:u.Px.backward
                ~mem_addr:o.Pf_arm.Exec.mem_addr ~dmisses:(-1) ~addr:!pc
                ~size:2 ~cls ~reads:u.Px.reads ~writes:u.Px.writes ~taken
                ~mem_words;
              (match trace with
              | Some t ->
                  Pf_cpu.Trace.record t ~addr:!pc ~cls ~reads:u.Px.reads
                    ~writes:u.Px.writes ~taken ~backward:u.Px.backward
                    ~dmisses:(P.last_dcache_misses pipe) ~mem_words
              | None -> ());
              let fi = insns.(idx) in
              if fi.Translate.first then begin
                incr src_retired;
                if fi.Translate.group_len = 1 then incr src_one
              end;
              incr steps;
              (match on_step with None -> () | Some f -> f st ~steps:!steps);
              pc := o.Pf_arm.Exec.next_pc
            end
          done
    end
  | Reference ->
      let metas = Array.map (fun fi -> meta_of_micro fi.Translate.micro) insns in
      while not st.Pf_arm.Exec.halted do
        if !pc = Pf_arm.Exec.halt_sentinel then st.Pf_arm.Exec.halted <- true
        else begin
          if !steps >= max_steps then budget_fault max_steps;
          if !steps land Pf_arm.Exec.deadline_mask = 0 then
            Pf_util.Deadline.check ~where deadline;
          let idx = (!pc - code_base) asr 1 in
          if idx < 0 || idx >= ninsns then outside_fault !pc;
          let fi = insns.(idx) in
          (match fi.Translate.micro with
          | Mapping.M_exec insn -> Pf_arm.Exec.execute ~isize:2 st ~pc:!pc insn o
          | Mapping.M_dp32 { op; s; rd; rn; value; cond } ->
              Pf_arm.Exec.execute_dp_value ~isize:2 st ~pc:!pc ~cond ~op ~s
                ~rd ~rn ~value o
          | Mapping.M_jalr rm ->
              st.Pf_arm.Exec.steps <- st.Pf_arm.Exec.steps + 1;
              st.Pf_arm.Exec.regs.(A.lr) <- !pc + 2;
              o.Pf_arm.Exec.executed <- true;
              o.Pf_arm.Exec.branch_taken <- true;
              o.Pf_arm.Exec.next_pc <- st.Pf_arm.Exec.regs.(rm) land lnot 1;
              o.Pf_arm.Exec.mem_addr <- -1;
              o.Pf_arm.Exec.mem_words <- 0
          | Mapping.M_undef why ->
              Pf_util.Sim_error.raisef Pf_util.Sim_error.Decode_fault ~where
                "corrupted decoder entry at 0x%x: %s" !pc why);
          let m = metas.(idx) in
          let taken = o.Pf_arm.Exec.branch_taken in
          let mem_addr = o.Pf_arm.Exec.mem_addr in
          let mem_words = o.Pf_arm.Exec.mem_words in
          P.issue pipe ~backward:m.backward ~mem_addr ~dmisses:(-1) ~addr:!pc
            ~size:2 ~cls:m.cls ~reads:m.reads ~writes:m.writes ~taken
            ~mem_words;
          (match trace with
          | Some t ->
              Pf_cpu.Trace.record t ~addr:!pc ~cls:m.cls ~reads:m.reads
                ~writes:m.writes ~taken ~backward:m.backward
                ~dmisses:(P.last_dcache_misses pipe) ~mem_words
          | None -> ());
          if fi.Translate.first then begin
            incr src_retired;
            if fi.Translate.group_len = 1 then incr src_one
          end;
          incr steps;
          (match on_step with None -> () | Some f -> f st ~steps:!steps);
          pc := o.Pf_arm.Exec.next_pc
        end
      done);
  (match trace with
  | Some t ->
      Pf_cpu.Trace.set_dcache_rate t
        (Pf_cache.Icache.miss_rate_per_million dcache)
  | None -> ());
  let cycles = P.cycles pipe in
  {
    fits_instructions = !steps;
    arm_instructions = !src_retired;
    dyn_one_to_one_pct =
      (if !src_retired = 0 then 0.0
       else 100.0 *. float_of_int !src_one /. float_of_int !src_retired);
    cycles;
    ipc =
      (if cycles = 0 then 0.0
       else float_of_int !src_retired /. float_of_int cycles);
    fetch_accesses = P.fetch_accesses pipe;
    output = Pf_arm.Exec.output st;
    cache_accesses = Pf_cache.Icache.stats_accesses cache;
    cache_misses = Pf_cache.Icache.stats_misses cache;
    miss_rate_per_million = Pf_cache.Icache.miss_rate_per_million cache;
    dcache_miss_rate_pm = Pf_cache.Icache.miss_rate_per_million dcache;
    power = Pf_power.Account.report account;
  }

let replay ?pipeline_cfg ?power_params ?classify ~cache_cfg ~like
    (tr : Translate.t) trace =
  let code_base = tr.Translate.code_base in
  let words = tr.Translate.words in
  let s =
    Pf_cpu.Trace.replay ?pipeline_cfg ?power_params ?classify
      ~seq:(Pf_cpu.Pipeline.seq_toggle_prefix ~words, code_base lsr 2)
      ~cache_cfg
      ~fetch_data:(fun addr -> words.((addr - code_base) lsr 2))
      trace
  in
  {
    fits_instructions = like.fits_instructions;
    arm_instructions = like.arm_instructions;
    dyn_one_to_one_pct = like.dyn_one_to_one_pct;
    cycles = s.Pf_cpu.Trace.cycles;
    ipc =
      (if s.Pf_cpu.Trace.cycles = 0 then 0.0
       else
         float_of_int like.arm_instructions
         /. float_of_int s.Pf_cpu.Trace.cycles);
    fetch_accesses = s.Pf_cpu.Trace.fetch_accesses;
    output = like.output;
    cache_accesses = s.Pf_cpu.Trace.cache_accesses;
    cache_misses = s.Pf_cpu.Trace.cache_misses;
    miss_rate_per_million = s.Pf_cpu.Trace.miss_rate_per_million;
    dcache_miss_rate_pm = s.Pf_cpu.Trace.dcache_miss_rate_pm;
    power = s.Pf_cpu.Trace.power;
  }
