(** Execute a translated FITS program on the simulated SA-1100-class core:
    the FITS16/FITS8 configurations of the paper's evaluation.

    The programmable decoder is modeled by the per-instruction micro-
    operations produced at translation time; architectural state and
    semantics are shared with the ARM runner ({!Pf_arm.Exec}), and the
    timing, I-cache and power models are the same {!Pf_cpu.Pipeline} /
    {!Pf_cache.Icache} / {!Pf_power.Account} instances the ARM runner
    uses.  The only differences are the ones the paper studies: 16-bit
    instructions (two per 32-bit fetch) and the synthesized encodings on
    the fetch path. *)

type result = {
  fits_instructions : int;    (** 16-bit instructions retired *)
  arm_instructions : int;     (** source instructions they implement *)
  dyn_one_to_one_pct : float; (** Figure 4: dynamic 1-to-1 mapping rate *)
  cycles : int;
  ipc : float;                (** source (ARM) instructions per cycle *)
  fetch_accesses : int;
  output : string;
  cache_accesses : int;
  cache_misses : int;
  miss_rate_per_million : float;
  dcache_miss_rate_pm : float;
      (** the fixed 8 KB data cache (constant across configurations) *)
  power : Pf_power.Account.report;
}

type engine = Pf_cpu.Arm_run.engine = Reference | Predecoded | Compiled
(** Interpreter choice, shared with the ARM runner: [Predecoded] (default)
    executes the stream via {!Pf_arm.Pexec} micro-ops with no per-step
    allocation; [Compiled] dispatches per basic block ({!Pf_arm.Bexec})
    with dead-flag elision and exact boundary-mode watchdog/deadline
    semantics (when [on_step] is supplied the per-instruction path is
    used, since the hook observes every step); [Reference] dispatches
    {!Mapping.micro} through {!Pf_arm.Exec.execute} each step.
    Bit-identical results across all three. *)

val predecode : Translate.t -> Pf_arm.Pexec.uop array
(** Predecode the translated 16-bit stream: one micro-op per slot
    (indexed like [Translate.insns]), with the same pipeline metadata the
    runners attach.  Exported for the multicore per-core stepper
    ({!Pf_cpu.Step}), which drives FITS cores through the identical
    micro-op semantics without owning a run loop of its own. *)

val run :
  ?engine:engine ->
  ?cache:Pf_cache.Icache.t ->
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pf_cpu.Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?on_step:(Pf_arm.Exec.t -> steps:int -> unit) ->
  ?trace:Pf_cpu.Trace.t ->
  Translate.t ->
  result
(** [cache] supplies a pre-built I-cache instance (the fault injector uses
    this to schedule tag flips); its geometry must match [cache_cfg], which
    still drives the power model.  [on_step] is called after every retired
    16-bit instruction with the architectural state — the register-file
    injection hook.  Both default to off and cost nothing when unused.
    [deadline] is the wall-clock watchdog, polled in the execute loop
    every [Pf_arm.Exec.deadline_mask + 1] steps.  [trace] (created with
    [isize:2]) records the retired stream for {!replay}. *)

val replay :
  ?pipeline_cfg:Pf_cpu.Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?classify:bool ->
  cache_cfg:Pf_cache.Icache.config ->
  like:result ->
  Translate.t ->
  Pf_cpu.Trace.t ->
  result
(** Replay a recorded FITS stream through a fresh cache/pipeline/power
    stack of another geometry; bit-identical to a direct {!run} with the
    same [cache_cfg].  Execution-derived fields (instruction counts,
    mapping rate, program output) are carried over from [like], the
    result of the recording run. *)
