module A = Pf_arm.Insn
open Pf_util

let log_src = Logs.Src.create "pf.fits.synthesis" ~doc:"FITS ISA synthesis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  spec : Spec.t;
  ais : Spec.opdef list;
  candidates_considered : int;
  datapath_off : float;
  dict_spilled : int;
}

type program = {
  p_image : Pf_arm.Image.t;
  p_dyn_counts : int array;
  p_mult : int;
}

let dyn_counts_of_run ?max_steps ?deadline (image : Pf_arm.Image.t) =
  let counts = Array.make (Array.length image.Pf_arm.Image.words) 0 in
  let st = Pf_arm.Exec.create image in
  Pf_arm.Pexec.run_counting ?max_steps ?deadline
    (Pf_arm.Pexec.compile image) st ~counts;
  (counts, Pf_arm.Exec.output st)

let mem_scale_of (w : A.mem_width) =
  match w with A.Word -> 2 | A.Half -> 1 | A.Byte -> 0

(* One static instruction with its address, dynamic weight, and owning
   image (multi-program synthesis mixes sites from several images; every
   mapping query must resolve literal pools against the right one). *)
type site = { img : Pf_arm.Image.t; pc : int; insn : A.t; dyn : int }

let sites_of_program { p_image = image; p_dyn_counts; p_mult } =
  if p_mult < 1 then
    Sim_error.raisef Sim_error.Invalid_config ~where:"fits.synthesis"
      "program weight multiplier must be >= 1 (got %d)" p_mult;
  let out = ref [] in
  Array.iteri
    (fun idx insn ->
      match insn with
      | Some insn ->
          let pc = image.Pf_arm.Image.code_base + (idx * 4) in
          out :=
            { img = image; pc; insn; dyn = p_mult * p_dyn_counts.(idx) }
            :: !out
      | None -> ())
    image.Pf_arm.Image.insns;
  Array.of_list (List.rev !out)

let sites_of_suite programs =
  Array.concat (List.map sites_of_program programs)

let sites_of image ~dyn_counts =
  sites_of_program { p_image = image; p_dyn_counts = dyn_counts; p_mult = 1 }

(* ---- dictionary head and register lists -------------------------------- *)

let dict_head_of sites =
  let h = Stats.histogram () in
  Array.iter
    (fun { insn; dyn; _ } ->
      match insn with
      | A.Dp { op2 = A.Imm _ as op2; _ } -> (
          match A.operand2_value op2 with
          | Some v when v > 15 -> Stats.add h ~weight:(dyn + 1) v
          | Some _ | None -> ())
      | A.Mem { offset = A.Ofs_imm ofs; width; rn; _ } ->
          (* displacements beyond the direct field also compete for the
             dictionary head (S3.3: category-based immediate synthesis) *)
          let scale = mem_scale_of width in
          if rn <> 15 && not (ofs >= 0 && ofs lsr scale <= 15
                              && ofs land ((1 lsl scale) - 1) = 0)
          then Stats.add h ~weight:(dyn + 1) ofs
      | _ -> ())
    sites;
  Stats.top h 16 |> List.map fst |> Array.of_list

let reglists_of sites =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun { insn; _ } ->
      match insn with
      | A.Push { regs; _ } | A.Pop { regs; _ } ->
          if not (Hashtbl.mem seen regs) then begin
            Hashtbl.add seen regs ();
            out := regs :: !out
          end
      | _ -> ())
    sites;
  Array.of_list (List.rev !out)

(* ---- candidate generation ---------------------------------------------- *)

type cand = {
  name : string;
  key : Opkey.t;
  cond : A.cond;
  imm : Spec.imm_policy;
  fmt : Spec.format;
}

let mem_scale = mem_scale_of

(* Candidates that could cover [insn] one-to-one if allocated. *)
let candidates_for (insn : A.t) : cand list =
  let cond = A.cond_of insn in
  let dp_name op s two shape_str imm =
    Printf.sprintf "%s%s%s.%s%s" (A.dp_name op)
      (if s then "s" else "")
      (if two then "2" else "3")
      shape_str
      (match (imm : Spec.imm_policy) with
      | Spec.Imm_dict -> "d"
      | Spec.Imm_lit _ | Spec.Imm_none -> "")
    ^ (match cond with A.AL -> "" | c -> "?" ^ A.cond_suffix c)
  in
  match insn with
  | A.Dp { op; s; rd; rn; op2; _ } -> (
      let two_op =
        match op with
        | A.MOV | A.MVN | A.TST | A.TEQ | A.CMP | A.CMN -> true
        | _ -> rd = rn
      in
      let mk ?(two = false) shape shape_str imm =
        {
          name = dp_name op s two shape_str imm;
          key = Opkey.K_dp { op; shape; s; two_op = two };
          cond;
          imm;
          fmt = (if two then Spec.Fmt_operate2 else Spec.Fmt_operate3);
        }
      in
      match op2 with
      | A.Reg _ ->
          [ mk Opkey.Sh_reg "rr" Spec.Imm_none ]
          @ (if two_op then [ mk ~two:true Opkey.Sh_reg "rr" Spec.Imm_none ]
             else [])
      | A.Imm _ -> (
          match A.operand2_value op2 with
          | Some v ->
              (if v <= 15 then
                 [ mk Opkey.Sh_imm "ri" (Spec.Imm_lit { scale = 0 }) ]
                 @ (if two_op then
                      [ mk ~two:true Opkey.Sh_imm "ri"
                          (Spec.Imm_lit { scale = 0 }) ]
                    else [])
               else [])
              @ [ mk Opkey.Sh_imm "ri" Spec.Imm_dict ]
              @ (if two_op then
                   [ mk ~two:true Opkey.Sh_imm "ri" Spec.Imm_dict ]
                 else [])
          | None -> [])
      | A.Reg_shift (_, k, n) ->
          let kname = String.lowercase_ascii (A.shift_name k) in
          (* amount baked into the opcode: a three-operand form *)
          [ mk (Opkey.Sh_shift_imm (k, n))
              (Printf.sprintf "r%s%d" kname n)
              Spec.Imm_none ]
          (* destructive form: the amount bakes into a cheap sub-op *)
          @ (if two_op then
               [ mk ~two:true
                   (Opkey.Sh_shift_imm (k, n))
                   (Printf.sprintf "r%s%d" kname n)
                   Spec.Imm_none ]
             else [])
          @
          (* for moves: generic shift-by-literal (amount in the field) *)
          (match op with
          | A.MOV | A.MVN when n <= 15 ->
              [ mk
                  (Opkey.Sh_shift_imm (k, Spec.shift_amount_wildcard))
                  (kname ^ "i")
                  (Spec.Imm_lit { scale = 0 }) ]
          | _ -> [])
      | A.Reg_shift_reg (_, k, _) ->
          let kname = String.lowercase_ascii (A.shift_name k) in
          [ mk (Opkey.Sh_shift_reg k) ("r" ^ kname ^ "r") Spec.Imm_none ]
          @ (if two_op then
               [ mk ~two:true (Opkey.Sh_shift_reg k) ("r" ^ kname ^ "r")
                   Spec.Imm_none ]
             else []))
  | A.Mul { acc; _ } ->
      [
        {
          name = (if acc = None then "mul3" else "mla3");
          key = Opkey.K_mul { acc = acc <> None };
          cond;
          imm = Spec.Imm_none;
          fmt = Spec.Fmt_operate3;
        };
      ]
  | A.Mem { load; width; signed; offset; writeback; _ } ->
      let mode, imm, suffix =
        match offset with
        | A.Ofs_imm _ ->
            ( Opkey.M_imm,
              Spec.Imm_lit { scale = mem_scale width },
              "+i" )
        | A.Ofs_reg (_, A.LSL, 0) -> (Opkey.M_reg, Spec.Imm_none, "+r")
        | A.Ofs_reg (_, A.LSL, n) ->
            (Opkey.M_reg_shift n, Spec.Imm_none, Printf.sprintf "+r<<%d" n)
        | A.Ofs_reg (_, (A.LSR | A.ASR | A.ROR), _) ->
            (Opkey.M_reg, Spec.Imm_none, "+r")
      in
      let base_name policy_suffix =
        Printf.sprintf "%s.%s%s%s%s"
          (if load then "ldr" else "str")
          (Opkey.width_str width signed)
          suffix policy_suffix
          (if writeback then "!" else "")
      in
      (match offset with
      | A.Ofs_reg (_, (A.LSR | A.ASR | A.ROR), _) -> []
      | _ ->
          [
            {
              name = base_name "";
              key = Opkey.K_mem { load; width; signed; mode; writeback };
              cond;
              imm;
              fmt = Spec.Fmt_memory;
            };
          ]
          @
          (* dictionary-displacement variant for immediate addressing *)
          (match offset with
          | A.Ofs_imm _ ->
              [
                {
                  name = base_name "d";
                  key = Opkey.K_mem { load; width; signed; mode; writeback };
                  cond;
                  imm = Spec.Imm_dict;
                  fmt = Spec.Fmt_memory;
                };
              ]
          | _ -> []))
  | A.Push _ | A.Pop _ | A.B _ | A.Bx _ | A.Swi _ -> []

(* ---- allocation --------------------------------------------------------- *)

(* Free encoding space of the base spec: groups 11-15 and the spare
   operate2/system sub-slots (group 1 subs 11-15; group 10 subs 6-15). *)
type space = {
  mutable free_groups : int list;
  mutable free_slots : (int * int) list;
}

let base_space ?(ais_groups = 5) () =
  {
    free_groups =
      List.filteri (fun i _ -> i < ais_groups) [ 11; 12; 13; 14; 15 ];
    free_slots =
      List.map (fun s -> (1, s)) [ 11; 12; 13; 14; 15 ]
      @ List.map (fun s -> (10, s)) [ 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
  }

let take_group sp =
  match sp.free_groups with
  | g :: tl ->
      sp.free_groups <- tl;
      Some g
  | [] -> None

let take_slot sp =
  match sp.free_slots with
  | gs :: tl ->
      sp.free_slots <- tl;
      Some gs
  | [] -> (
      (* open a fresh operate2 group: 16 new sub-slots *)
      match take_group sp with
      | Some g ->
          sp.free_slots <- List.map (fun s -> (g, s)) (List.init 15 (fun i -> i + 1));
          Some (g, 0)
      | None -> None)

let opdef_of_cand ~id ~group ~sub (c : cand) : Spec.opdef =
  {
    Spec.id;
    name = c.name;
    key = Some c.key;
    cond = c.cond;
    imm = c.imm;
    fmt = c.fmt;
    group;
    sub;
    sys = None;
  }

let data_plane (image : Pf_arm.Image.t) ~dyn_counts =
  let sites = sites_of image ~dyn_counts in
  (dict_head_of sites, reglists_of sites)

let synthesize_suite ?(static_weight = 1.0) ?(ais_groups = 5)
    ?(dict_head = 16) ?(allow_two_op_ais = true) ?dict_budget
    (programs : program list) =
  let sites = sites_of_suite programs in
  let total_dyn = Array.fold_left (fun a s -> a + s.dyn) 0 sites in
  let avg_dyn =
    if Array.length sites = 0 then 1.0
    else float_of_int total_dyn /. float_of_int (Array.length sites)
  in
  let weight s = float_of_int s.dyn +. (static_weight *. avg_dyn) in
  let dict_head_vals = dict_head_of sites in
  let dict_head_vals =
    Array.sub dict_head_vals 0 (min dict_head (Array.length dict_head_vals))
  in
  let reglists = reglists_of sites in
  let base = Spec.base ~dict_head:dict_head_vals ~reglists in
  (* current mapping length per site under the evolving spec *)
  let len = Array.make (Array.length sites) 1 in
  let compute_lens spec =
    Array.iteri
      (fun i s ->
        len.(i) <-
          Mapping.plan_length
            (Mapping.plan_in_image spec s.img ~pc:s.pc s.insn))
      sites
  in
  compute_lens base;
  (* candidate pool with per-site coverage lists *)
  let cand_tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i s ->
      if len.(i) > 1 then
        List.iter
          (fun c ->
            let cell =
              match Hashtbl.find_opt cand_tbl (c.key, c.cond, c.imm, c.fmt)
              with
              | Some cell -> cell
              | None ->
                  let cell = (c, ref []) in
                  Hashtbl.add cand_tbl (c.key, c.cond, c.imm, c.fmt) cell;
                  cell
            in
            let _, sites_ref = cell in
            sites_ref := i :: !sites_ref)
          (candidates_for s.insn))
    sites;
  let candidates =
    Hashtbl.fold (fun _ (c, sr) acc -> (c, !sr) :: acc) cand_tbl []
    |> List.filter (fun ((c : cand), _) ->
           allow_two_op_ais || c.fmt <> Spec.Fmt_operate2)
  in
  let candidates_considered = List.length candidates in
  (* verify candidate coverage exactly with a trial opdef *)
  let trial_covers spec (c : cand) i =
    let od = opdef_of_cand ~id:(-1) ~group:0 ~sub:0 c in
    ignore spec;
    Mapping.op_covers spec od sites.(i).insn
  in
  let sp = base_space ~ais_groups () in
  let ais = ref [] in
  let next_id = ref (Array.length base.Spec.ops) in
  let spec = ref base in
  let remaining = ref candidates in
  let continue_alloc = ref true in
  while !continue_alloc do
    (* benefit of each remaining candidate under current lens *)
    let scored =
      List.filter_map
        (fun (c, site_idxs) ->
          let b =
            List.fold_left
              (fun acc i ->
                if len.(i) > 1 && trial_covers !spec c i then
                  acc +. (weight sites.(i) *. float_of_int (len.(i) - 1))
                else acc)
              0.0 site_idxs
          in
          if b > 0.0 then Some (c, site_idxs, b) else None)
        !remaining
    in
    let sorted =
      List.sort (fun (_, _, b1) (_, _, b2) -> compare b2 b1) scored
    in
    (* place the most beneficial candidate that still fits; skipping an
       unplaceable operate3/memory candidate must not strand cheaper
       sub-op candidates further down the list *)
    let rec place_first = function
      | [] -> None
      | (c, _, _) :: tl -> (
          let placed =
            match c.fmt with
            | Spec.Fmt_operate2 -> take_slot sp
            | _ -> ( match take_group sp with
                     | Some g -> Some (g, 0)
                     | None -> None)
          in
          match placed with
          | Some (group, sub) -> Some (c, group, sub)
          | None -> place_first tl)
    in
    (match place_first sorted with
    | None -> continue_alloc := false
    | Some (best, group, sub) ->
        let od = opdef_of_cand ~id:!next_id ~group ~sub best in
        Log.debug (fun m ->
            m "AIS pick: %s -> slot %d.%d" best.name group sub);
        incr next_id;
        ais := od :: !ais;
        spec := Spec.with_ais !spec [ od ];
        compute_lens !spec;
        remaining := List.filter (fun (c, _) -> c <> best) !remaining);
    if !remaining = [] then continue_alloc := false
  done;
  let spec = !spec in
  (* extend the dictionary with every value final plans require *)
  let needed = Stats.histogram () in
  Array.iter
    (fun s ->
      match Mapping.plan_in_image spec s.img ~pc:s.pc s.insn with
      | Mapping.P_seq fds ->
          List.iter
            (fun (fd : Mapping.fdesc) ->
              match fd.Mapping.oprd with
              | Mapping.O_dictval v -> Stats.add needed ~weight:(s.dyn + 1) v
              | _ -> ())
            fds
      | Mapping.P_branch _ -> ())
    sites;
  let head = Array.to_list spec.Spec.dict in
  let extra =
    Stats.sorted_desc needed
    |> List.map fst
    |> List.filter (fun v -> not (List.mem v head))
  in
  let total = List.length head + List.length extra in
  (* Without a [dict_budget] the union of required values must fit outright
     (per-application synthesis: overflow is a capacity bug).  With one, a
     suite whose union exceeds the budget keeps the hottest values and
     spills the rest — a spilled value simply stays per-program: translate
     appends it to the reloadable dictionary tail of any program that
     needs it (the §3.1 data-plane upgrade path). *)
  let dict, dict_spilled =
    match dict_budget with
    | None ->
        if total > Spec.dict_capacity then
          raise
            (Mapping.Unmappable
               (Printf.sprintf "dictionary overflow: %d values" total));
        (head @ extra, 0)
    | Some b ->
        let budget = min b Spec.dict_capacity in
        if total <= budget then (head @ extra, 0)
        else
          let keep = max 0 (budget - List.length head) in
          ( head @ List.filteri (fun i _ -> i < keep) extra,
            List.length extra - keep )
  in
  let spec = { spec with Spec.dict = Array.of_list dict } in
  (* datapath deactivation: units never named by the synthesized ISA can be
     powered off.  Units = the 16 dp ops + multiplier + each memory width
     on each port + the barrel shifter's four modes. *)
  let used = Hashtbl.create 32 in
  let mark u = Hashtbl.replace used u () in
  Array.iter
    (fun (od : Spec.opdef) ->
      match od.Spec.key with
      | Some (Opkey.K_dp { op; shape; _ }) ->
          mark (`Dp op);
          (match shape with
          | Opkey.Sh_shift_imm (k, _) | Opkey.Sh_shift_reg k -> mark (`Shift k)
          | Opkey.Sh_reg | Opkey.Sh_imm -> ())
      | Some (Opkey.K_mul { acc }) -> mark (if acc then `Mla else `Mul)
      | Some (Opkey.K_mem { load; width; _ }) -> mark (`Mem (load, width))
      | Some (Opkey.K_push | Opkey.K_pop) -> mark `Stack
      | Some (Opkey.K_branch _ | Opkey.K_bx | Opkey.K_swi) | None -> ())
    spec.Spec.ops;
  let total_units = 16 + 2 + 6 + 4 + 1 in
  let used_units = Hashtbl.length used in
  let off_fraction =
    float_of_int (total_units - used_units) /. float_of_int total_units
  in
  (* the datapath is a modest slice of non-cache chip power *)
  let datapath_off = 0.12 *. off_fraction in
  Log.info (fun m ->
      m "synthesized %d AIS opcodes from %d candidates; dictionary %d          entries; datapath-off estimate %.3f"
        (List.length !ais) candidates_considered
        (Array.length spec.Spec.dict) datapath_off);
  {
    spec;
    ais = List.rev !ais;
    candidates_considered;
    datapath_off;
    dict_spilled;
  }

let synthesize ?static_weight ?ais_groups ?dict_head ?allow_two_op_ais
    (image : Pf_arm.Image.t) ~dyn_counts =
  synthesize_suite ?static_weight ?ais_groups ?dict_head ?allow_two_op_ais
    [ { p_image = image; p_dyn_counts = dyn_counts; p_mult = 1 } ]
