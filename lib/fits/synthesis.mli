(** Instruction-set synthesis: the "synthesize" stage of Figure 1.

    Given an image and its dynamic execution weights, construct the
    application's FITS specification:

    + collect the immediate-dictionary head (the 16 hottest operate
      immediates, per the utilization-based heuristic of §3.3) and the
      register-list table;
    + start from the fixed BIS/SIS base ({!Spec.base});
    + generate application-specific candidates from every instruction the
      base does not cover: three-operand forms, shift-baked forms,
      literal/dictionary immediate variants, extra addressing modes, and
      predicated variants;
    + greedily allocate the remaining opcode groups and sub-op slots by
      benefit = (dynamic weight + smoothed static weight) x (expansion
      length - 1), re-evaluating as coverage changes;
    + extend the dictionary with every value the final translation plans
      will need. *)

type result = {
  spec : Spec.t;
  ais : Spec.opdef list;            (** the allocated AIS, in pick order *)
  candidates_considered : int;
  datapath_off : float;
      (** estimated fraction of non-cache chip power removed by
          deactivating datapath units the synthesized ISA never maps
          (paper §3.2); feeds {!Pf_power.Chip}. *)
}

val synthesize :
  ?static_weight:float ->
  ?ais_groups:int ->
  ?dict_head:int ->
  ?allow_two_op_ais:bool ->
  Pf_arm.Image.t ->
  dyn_counts:int array ->
  result
(** [dyn_counts] gives the execution count of each code word (as produced
    by {!Profile.profile_run}'s underlying run, or all zeros for
    static-only synthesis).  [static_weight] scales how much code size
    matters relative to dynamic frequency (default 1.0 = one average
    dynamic instruction per static occurrence).

    Ablation knobs: [ais_groups] (0-5) limits the free opcode groups the
    AIS may claim; [dict_head] (0-16) limits the directly-indexable
    dictionary entries; [allow_two_op_ais] disables the two-operand
    sub-op candidates of the S3.3 heuristic. *)

val data_plane :
  Pf_arm.Image.t -> dyn_counts:int array -> int array * Pf_arm.Insn.reg list array
(** The per-application decoder *data* (dictionary head, register-list
    table) without any opcode synthesis — what a deployed FITS part would
    reload when its application is upgraded (§3.1).  Combine with
    {!Spec.with_data_plane} to study cross-application ISA reuse. *)

val dyn_counts_of_run :
  ?max_steps:int -> ?deadline:Pf_util.Deadline.t -> Pf_arm.Image.t ->
  int array * string
(** Execute once, returning per-word execution counts and the program
    output. *)
