(** Instruction-set synthesis: the "synthesize" stage of Figure 1.

    Given an image and its dynamic execution weights, construct the
    application's FITS specification:

    + collect the immediate-dictionary head (the 16 hottest operate
      immediates, per the utilization-based heuristic of §3.3) and the
      register-list table;
    + start from the fixed BIS/SIS base ({!Spec.base});
    + generate application-specific candidates from every instruction the
      base does not cover: three-operand forms, shift-baked forms,
      literal/dictionary immediate variants, extra addressing modes, and
      predicated variants;
    + greedily allocate the remaining opcode groups and sub-op slots by
      benefit = (dynamic weight + smoothed static weight) x (expansion
      length - 1), re-evaluating as coverage changes;
    + extend the dictionary with every value the final translation plans
      will need. *)

type result = {
  spec : Spec.t;
  ais : Spec.opdef list;            (** the allocated AIS, in pick order *)
  candidates_considered : int;
  datapath_off : float;
      (** estimated fraction of non-cache chip power removed by
          deactivating datapath units the synthesized ISA never maps
          (paper §3.2); feeds {!Pf_power.Chip}. *)
  dict_spilled : int;
      (** required dictionary values dropped to respect [dict_budget]
          (always 0 without a budget); spilled values fall back to the
          per-program reloadable dictionary tail at translation time *)
}

(** One weighted program of a multi-program synthesis.  [p_mult] is an
    integer multiplier applied to every dynamic count of this program
    ({!Pf_multi.Weighting} computes it from the suite weighting scheme);
    1 leaves raw dynamic-instruction counts. *)
type program = {
  p_image : Pf_arm.Image.t;
  p_dyn_counts : int array;
  p_mult : int;
}

val synthesize :
  ?static_weight:float ->
  ?ais_groups:int ->
  ?dict_head:int ->
  ?allow_two_op_ais:bool ->
  Pf_arm.Image.t ->
  dyn_counts:int array ->
  result
(** [dyn_counts] gives the execution count of each code word (as produced
    by {!Profile.profile_run}'s underlying run, or all zeros for
    static-only synthesis).  [static_weight] scales how much code size
    matters relative to dynamic frequency (default 1.0 = one average
    dynamic instruction per static occurrence).

    Ablation knobs: [ais_groups] (0-5) limits the free opcode groups the
    AIS may claim; [dict_head] (0-16) limits the directly-indexable
    dictionary entries; [allow_two_op_ais] disables the two-operand
    sub-op candidates of the S3.3 heuristic. *)

val synthesize_suite :
  ?static_weight:float ->
  ?ais_groups:int ->
  ?dict_head:int ->
  ?allow_two_op_ais:bool ->
  ?dict_budget:int ->
  program list ->
  result
(** Multi-program synthesis: one shared specification covering every
    program of the suite.  Candidate sites from all images enter one
    merged pool (each with its own literal-pool context), the benefit
    function weights each site by [p_mult × dyn], and the dictionary head
    and register-list table are collected suite-wide.  With a single
    program and [p_mult = 1] this is exactly {!synthesize} (which is
    implemented on top of it).

    [dict_budget] caps the shared dictionary (head + suite extension):
    when the union of required values exceeds it, the hottest values are
    kept and the rest are reported in {!result.dict_spilled} instead of
    raising — spilled values land in the per-program reloadable tail when
    that program is translated.  Without [dict_budget], overflow beyond
    {!Spec.dict_capacity} raises [Mapping.Unmappable] as in the
    per-application flow. *)

val data_plane :
  Pf_arm.Image.t -> dyn_counts:int array -> int array * Pf_arm.Insn.reg list array
(** The per-application decoder *data* (dictionary head, register-list
    table) without any opcode synthesis — what a deployed FITS part would
    reload when its application is upgraded (§3.1).  Combine with
    {!Spec.with_data_plane} to study cross-application ISA reuse. *)

val dyn_counts_of_run :
  ?max_steps:int -> ?deadline:Pf_util.Deadline.t -> Pf_arm.Image.t ->
  int array * string
(** Execute once, returning per-word execution counts and the program
    output. *)
