module A = Pf_arm.Insn
open Pf_util

type finsn = {
  word : int;
  micro : Mapping.micro;
  opid : int;
  rc : int;
  ra : int;
  operand : int;
  first : bool;
  group_len : int;
  src_pc : int;
}

type stats = {
  arm_insns : int;
  fits_insns : int;
  one_to_one : int;
  expansion_hist : (int * int) list;
  code_bytes_arm : int;
  code_bytes_fits : int;
}

type reload = {
  dict_appended : int;
  reglists_appended : int;
  reload_bits : int;
}

type t = {
  spec : Spec.t;
  image : Pf_arm.Image.t;
  insns : finsn array;
  words : int array;
  code_base : int;
  entry : int;
  addr_of_arm : (int, int) Hashtbl.t;
  stats : stats;
  reload : reload;
}

(* decoder data-plane SRAM row widths: dictionary entries hold a 32-bit
   immediate, register-list entries a 16-bit r0-r15 membership mask *)
let dict_entry_bits = 32
let reglist_entry_bits = 16

let data_plane_bits (spec : Spec.t) =
  (dict_entry_bits * Array.length spec.Spec.dict)
  + (reglist_entry_bits * Array.length spec.Spec.reglists)

(* branch demotion levels *)
type blevel = Near | Skip_near | Absolute

type site = {
  pc : int;                       (* ARM address *)
  insn : A.t;
  plan : Mapping.plan;
  mutable level : blevel;         (* branches only *)
  mutable fits_addr : int;
  mutable len : int;              (* FITS instructions *)
}

let tr = Spec.temp_reg

let internal fmt =
  Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal ~where:"fits.translate"
    fmt

let branch_len (cond : A.cond) level ~link =
  ignore link;
  match (level, cond) with
  | Near, _ -> 1
  | Skip_near, A.AL -> 1 (* unconditional branches skip this level *)
  | Skip_near, _ -> 2
  | Absolute, A.AL -> 2
  | Absolute, _ -> 3

let site_len s =
  match s.plan with
  | Mapping.P_seq l -> List.length l
  | Mapping.P_branch { cond; link; _ } -> branch_len cond s.level ~link

(* signed field check, in 16-bit units *)
let fits_disp ~bits offset =
  offset land 1 = 0 && Bits.fits_signed ~width:bits (offset asr 1)

let layout spec (image : Pf_arm.Image.t) =
  let sites =
    Array.to_list image.Pf_arm.Image.insns
    |> List.mapi (fun idx insn ->
           match insn with
           | Some insn ->
               let pc = image.Pf_arm.Image.code_base + (idx * 4) in
               Some
                 { pc; insn;
                   plan = Mapping.plan_in_image spec image ~pc insn;
                   level = Near; fits_addr = 0; len = 0 }
           | None -> None)
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  let addr_of_arm = Hashtbl.create (Array.length sites) in
  let code_base = image.Pf_arm.Image.code_base in
  let assign_addrs () =
    let a = ref code_base in
    Array.iter
      (fun s ->
        s.fits_addr <- !a;
        s.len <- site_len s;
        Hashtbl.replace addr_of_arm s.pc !a;
        a := !a + (2 * s.len))
      sites;
    !a - code_base
  in
  (* demote branches until the layout is stable *)
  let changed = ref true in
  let total = ref 0 in
  while !changed do
    changed := false;
    total := assign_addrs ();
    Array.iter
      (fun s ->
        match s.plan with
        | Mapping.P_branch { cond; link = _; arm_target } -> (
            match Hashtbl.find_opt addr_of_arm arm_target with
            | None ->
                raise
                  (Mapping.Unmappable
                     (Printf.sprintf "branch into a literal pool at 0x%x"
                        arm_target))
            | Some target ->
                let promote_to lvl =
                  if s.level < lvl then begin
                    s.level <- lvl;
                    changed := true
                  end
                in
                (match (s.level, cond) with
                | Near, A.AL ->
                    if not (fits_disp ~bits:12 (target - s.fits_addr - 4))
                    then promote_to Absolute
                | Near, _ ->
                    if not (fits_disp ~bits:8 (target - s.fits_addr - 4))
                    then promote_to Skip_near
                | Skip_near, _ ->
                    (* the b.al sits one slot after the skip *)
                    if not (fits_disp ~bits:12 (target - (s.fits_addr + 2) - 4))
                    then promote_to Absolute
                | Absolute, _ -> ()))
        | Mapping.P_seq _ -> ())
      sites
  done;
  (sites, addr_of_arm, !total)

let branch_fdescs spec ~site_addr ~target ~cond ~link level :
    Mapping.fdesc list =
  let sis = spec.Spec.sis in
  let near_op c = if c = A.AL then (if link then sis.Spec.bl_al else sis.Spec.b_al) else sis.Spec.bcc in
  let near ~at c : Mapping.fdesc =
    let offset = target - at - 4 in
    let od = near_op c in
    let oprd, rc =
      match od.Spec.fmt with
      | Spec.Fmt_branch12 ->
          (Mapping.O_lit ((offset asr 1) land 0xFFF), 0)
      | Spec.Fmt_bcc ->
          (Mapping.O_lit ((offset asr 1) land 0xFF), Pf_arm.Encode.cond_code c)
      | _ -> internal "near branch over a non-branch format"
    in
    { Mapping.op = od; rc; ra = 0; oprd;
      micro = Mapping.M_exec (A.B { cond = c; link; offset }) }
  in
  match (level, cond) with
  | Near, c -> [ near ~at:site_addr c ]
  | Skip_near, (A.EQ | A.NE | A.CS | A.CC | A.MI | A.PL | A.VS | A.VC
               | A.HI | A.LS | A.GE | A.LT | A.GT | A.LE as c) ->
      [ Mapping.seq_skip spec ~cond:c ~count:1; near ~at:(site_addr + 2) A.AL ]
  | (Skip_near | Absolute), _ ->
      let jump =
        if link then
          { Mapping.op = sis.Spec.jalr; rc = 0; ra = 0;
            oprd = Mapping.O_arg tr; micro = Mapping.M_jalr tr }
        else
          { Mapping.op = sis.Spec.bx; rc = 0; ra = 0;
            oprd = Mapping.O_arg tr;
            micro = Mapping.M_exec (A.Bx { cond = A.AL; rm = tr }) }
      in
      let seq =
        [ Mapping.seq_materialize spec ~reg:tr target; jump ]
      in
      if cond = A.AL then seq
      else Mapping.seq_skip spec ~cond ~count:2 :: seq

(* assign dictionary indices, extending beyond the synthesis dictionary if
   layout introduced new values (e.g. absolute branch targets) *)
let build_dict spec fdescs_all =
  let dict = ref (Array.to_list spec.Spec.dict) in
  let index v =
    let v = Bits.u32 v in
    let rec find i = function
      | [] ->
          dict := !dict @ [ v ];
          i
      | x :: _ when x = v -> i
      | _ :: tl -> find (i + 1) tl
    in
    find 0 !dict
  in
  List.iter
    (fun (fd : Mapping.fdesc) ->
      match fd.Mapping.oprd with
      | Mapping.O_dictval v -> ignore (index v)
      | _ -> ())
    fdescs_all;
  let arr = Array.of_list !dict in
  if Array.length arr > Spec.dict_capacity then
    raise
      (Mapping.Unmappable
         (Printf.sprintf "dictionary overflow after layout: %d entries"
            (Array.length arr)));
  arr

let encode_fdesc spec dict_idx (fd : Mapping.fdesc) =
  let field_of_reg r = r land 0xF in
  let oprd =
    match fd.Mapping.oprd with
    | Mapping.O_none -> 0
    | Mapping.O_reg r -> field_of_reg r
    | Mapping.O_lit v -> v
    | Mapping.O_dictval v -> dict_idx v
    | Mapping.O_arg a -> a land 0xFF
  in
  Spec.encode spec fd.Mapping.op ~rc:(field_of_reg fd.Mapping.rc)
    ~ra:(field_of_reg fd.Mapping.ra) ~oprd

(* The untruncated control fields that a real programmable decoder's SRAM
   row would hold for this instruction: unlike the packed 16-bit word,
   register fields keep 5 bits (the over-provisioned scratch register is
   representable) and the operand keeps its pre-masking value.  Fault
   injection flips bits here; {!Decode} turns the fields back into a
   micro-operation. *)
let raw_operand dict_idx (fd : Mapping.fdesc) =
  match fd.Mapping.oprd with
  | Mapping.O_none -> 0
  | Mapping.O_reg r -> r
  | Mapping.O_lit v -> v
  | Mapping.O_dictval v -> dict_idx v
  | Mapping.O_arg a -> a

(* The register-list table is, like the dictionary, per-program decoder
   *data* (§3.1): translating a program under a foreign spec reloads the
   table with the lists that program pushes and pops.  Append every list
   the image uses that the spec does not already carry; the 8-bit operand
   field bounds the table at 256 entries.  A spec synthesized for this
   program already carries all its lists, so this is the identity on the
   per-application flow. *)
let reglist_capacity = 256

let extend_reglists (spec : Spec.t) (image : Pf_arm.Image.t) =
  let extra = ref [] in
  let known regs =
    Spec.reglist_index spec regs <> None || List.mem regs !extra
  in
  Array.iter
    (fun insn ->
      match insn with
      | Some (A.Push { regs; _ } | A.Pop { regs; _ }) ->
          if not (known regs) then extra := regs :: !extra
      | Some _ | None -> ())
    image.Pf_arm.Image.insns;
  if !extra = [] then spec
  else begin
    let reglists =
      Array.append spec.Spec.reglists (Array.of_list (List.rev !extra))
    in
    if Array.length reglists > reglist_capacity then
      raise
        (Mapping.Unmappable
           (Printf.sprintf
              "register-list table overflow after reload: %d lists"
              (Array.length reglists)));
    { spec with Spec.reglists }
  end

let translate (spec : Spec.t) (image : Pf_arm.Image.t) =
  let dict_before = Array.length spec.Spec.dict in
  let reglists_before = Array.length spec.Spec.reglists in
  let spec = extend_reglists spec image in
  let sites, addr_of_arm, code_bytes_fits = layout spec image in
  (* produce the final fdesc lists *)
  let per_site =
    Array.map
      (fun s ->
        match s.plan with
        | Mapping.P_seq l -> (s, l)
        | Mapping.P_branch { cond; link; arm_target } ->
            let target = Hashtbl.find addr_of_arm arm_target in
            ( s,
              branch_fdescs spec ~site_addr:s.fits_addr ~target ~cond ~link
                s.level ))
      sites
  in
  let all_fdescs =
    Array.to_list per_site |> List.concat_map (fun (_, l) -> l)
  in
  let dict = build_dict spec all_fdescs in
  let spec = { spec with Spec.dict } in
  let dict_idx v =
    match Spec.dict_index spec v with
    | Some i -> i
    | None -> internal "value 0x%x missing from the built dictionary" v
  in
  let insns =
    Array.to_list per_site
    |> List.concat_map (fun (s, fds) ->
           let n = List.length fds in
           List.mapi
             (fun i (fd : Mapping.fdesc) ->
               {
                 word = encode_fdesc spec dict_idx fd;
                 micro = fd.Mapping.micro;
                 opid = fd.Mapping.op.Spec.id;
                 rc = fd.Mapping.rc;
                 ra = fd.Mapping.ra;
                 operand = raw_operand dict_idx fd;
                 first = i = 0;
                 group_len = n;
                 src_pc = s.pc;
               })
             fds)
    |> Array.of_list
  in
  (* pack 16-bit instructions into 32-bit fetch words (little-endian) *)
  let nwords = (Array.length insns + 1) / 2 in
  let words =
    Array.init nwords (fun w ->
        let lo = insns.(2 * w).word in
        let hi =
          if (2 * w) + 1 < Array.length insns then insns.((2 * w) + 1).word
          else 0
        in
        lo lor (hi lsl 16))
  in
  let arm_insns =
    Array.fold_left
      (fun acc insn -> match insn with Some _ -> acc + 1 | None -> acc)
      0 image.Pf_arm.Image.insns
  in
  let one_to_one =
    Array.fold_left (fun acc (s, _) -> if s.len = 1 then acc + 1 else acc) 0
      per_site
  in
  let hist = Hashtbl.create 8 in
  Array.iter
    (fun (s, _) ->
      if s.len > 1 then
        Hashtbl.replace hist s.len
          (1 + Option.value ~default:0 (Hashtbl.find_opt hist s.len)))
    per_site;
  let expansion_hist =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [] |> List.sort compare
  in
  let stats =
    {
      arm_insns;
      fits_insns = Array.length insns;
      one_to_one;
      expansion_hist;
      code_bytes_arm = Pf_arm.Image.code_size_bytes image;
      code_bytes_fits;
    }
  in
  let entry =
    match Hashtbl.find_opt addr_of_arm image.Pf_arm.Image.entry with
    | Some a -> a
    | None ->
        internal "entry point 0x%x was not translated"
          image.Pf_arm.Image.entry
  in
  let reload =
    let dict_appended = Array.length spec.Spec.dict - dict_before in
    let reglists_appended =
      Array.length spec.Spec.reglists - reglists_before
    in
    {
      dict_appended;
      reglists_appended;
      reload_bits =
        (dict_entry_bits * dict_appended)
        + (reglist_entry_bits * reglists_appended);
    }
  in
  {
    spec;
    image;
    insns;
    words;
    code_base = image.Pf_arm.Image.code_base;
    entry;
    addr_of_arm;
    stats;
    reload;
  }

let static_mapping_rate t =
  if t.stats.arm_insns = 0 then 0.0
  else
    100.0 *. float_of_int t.stats.one_to_one /. float_of_int t.stats.arm_insns

let code_size_saving t =
  Stats.saving
    ~baseline:(float_of_int t.stats.code_bytes_arm)
    (float_of_int t.stats.code_bytes_fits)

let disassemble t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i fi ->
      let addr = t.code_base + (2 * i) in
      let od = t.spec.Spec.ops.(fi.opid) in
      let micro_str =
        match fi.micro with
        | Mapping.M_exec insn -> A.to_string insn
        | Mapping.M_dp32 { op; rd; value; _ } ->
            Printf.sprintf "%s r%d, =%d" (A.dp_name op) rd value
        | Mapping.M_jalr r -> Printf.sprintf "jalr r%d" r
        | Mapping.M_undef why -> Printf.sprintf "<undef: %s>" why
      in
      Buffer.add_string buf
        (Printf.sprintf "  %06x:  %04x  %-12s ; %s%s\n" addr fi.word
           od.Spec.name micro_str
           (if fi.first && fi.group_len > 1 then
              Printf.sprintf "  [1-to-%d]" fi.group_len
            else "")))
    t.insns;
  Buffer.contents buf
