(** ARM-to-FITS binary translation (the "compile/configure" stages of
    Figure 1, from the translation angle the paper evaluates in §6.1).

    Translation walks the ARM image in address order, maps every
    instruction through {!Mapping}, lays out the resulting 16-bit stream,
    and resolves branches.  Branch forms are chosen iteratively: a branch
    starts in its short form and is demoted (skip-prefixed, then
    absolute-via-dictionary) when its displacement does not fit; demotion
    only grows code, so the loop converges.

    The result carries everything the FITS runner and the figures need:
    encoded 16-bit words (packed in pairs for the 32-bit fetch path),
    per-instruction micro-operations, the ARM-to-FITS address map, and the
    static mapping statistics of Figure 3. *)

type finsn = {
  word : int;                (** 16-bit encoding *)
  micro : Mapping.micro;     (** decoder output, branch offsets in FITS space *)
  opid : int;                (** Spec op id *)
  rc : int;                  (** destination/compare field, 5 bits raw *)
  ra : int;                  (** second register field, 5 bits raw *)
  operand : int;             (** operand field before format masking *)
  first : bool;              (** first FITS instruction of its ARM source *)
  group_len : int;           (** how many FITS instructions the source took *)
  src_pc : int;              (** ARM address of the source instruction *)
}

type stats = {
  arm_insns : int;
  fits_insns : int;
  one_to_one : int;          (** sources with group_len = 1 *)
  expansion_hist : (int * int) list;  (** (n, count of sources), n >= 2 *)
  code_bytes_arm : int;      (** ARM code segment incl. literal pools *)
  code_bytes_fits : int;
}

(** Decoder data-plane reload traffic incurred by this translation: the
    dictionary and register-list entries appended beyond what the input
    spec already carried (the §3.1 per-program reload).  A spec
    synthesized for this very program reloads nothing; a shared or
    foreign spec pays [reload_bits] of decoder-SRAM writes, chargeable at
    {!Pf_power.Account.Params.k_refill_per_bit}. *)
type reload = {
  dict_appended : int;       (** dictionary entries added (32 bits each) *)
  reglists_appended : int;   (** register lists added (16-bit masks) *)
  reload_bits : int;         (** 32·dict_appended + 16·reglists_appended *)
}

type t = {
  spec : Spec.t;             (** with the final (possibly extended) dictionary *)
  image : Pf_arm.Image.t;    (** the source image (provides data segment) *)
  insns : finsn array;
  words : int array;         (** packed pairs: what the I-cache fetches *)
  code_base : int;
  entry : int;               (** FITS address of _start *)
  addr_of_arm : (int, int) Hashtbl.t;  (** ARM address -> FITS address *)
  stats : stats;
  reload : reload;
}

val data_plane_bits : Spec.t -> int
(** Total decoder data-plane size of a spec in bits (32 per dictionary
    entry + 16 per register-list entry) — the cost of loading its tables
    into the programmable decoder from scratch, e.g. at a phase switch. *)

val translate : Spec.t -> Pf_arm.Image.t -> t

val static_mapping_rate : t -> float
(** Percentage of ARM instructions mapped one-to-one (Figure 3). *)

val code_size_saving : t -> float
(** Percentage code-size reduction vs the ARM image (Figure 5). *)

val disassemble : t -> string
