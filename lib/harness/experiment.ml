type per_config = {
  instructions : int;
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;
  dcache_miss_rate_pm : float;
  power : Pf_power.Account.report;
}

type bench_result = {
  name : string;
  category : string;
  arm16 : per_config;
  arm8 : per_config;
  fits16 : per_config;
  fits8 : per_config;
  static_map_pct : float;
  dyn_map_pct : float;
  expansion_hist : (int * int) list;
  code_arm : int;
  code_thumb : int;
  code_fits : int;
  datapath_off : float;
  ais_ops : int;
  dict_entries : int;
  outputs_consistent : bool;
}

(* The paper's two cache organizations are just named points of the
   exploration grid — a single definition site keeps the harness, the
   multi-program study and the DSE sweeps on literally the same configs. *)
let cache_16k = Pf_dse.Space.cache_16k
let cache_8k = Pf_dse.Space.cache_8k

let of_arm (r : Pf_cpu.Arm_run.result) =
  {
    instructions = r.Pf_cpu.Arm_run.instructions;
    cycles = r.Pf_cpu.Arm_run.cycles;
    ipc = r.Pf_cpu.Arm_run.ipc;
    fetch_accesses = r.Pf_cpu.Arm_run.fetch_accesses;
    cache_misses = r.Pf_cpu.Arm_run.cache_misses;
    miss_rate_pm = r.Pf_cpu.Arm_run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_cpu.Arm_run.dcache_miss_rate_pm;
    power = r.Pf_cpu.Arm_run.power;
  }

let of_fits (r : Pf_fits.Run.result) =
  {
    instructions = r.Pf_fits.Run.arm_instructions;
    cycles = r.Pf_fits.Run.cycles;
    ipc = r.Pf_fits.Run.ipc;
    fetch_accesses = r.Pf_fits.Run.fetch_accesses;
    cache_misses = r.Pf_fits.Run.cache_misses;
    miss_rate_pm = r.Pf_fits.Run.miss_rate_per_million;
    dcache_miss_rate_pm = r.Pf_fits.Run.dcache_miss_rate_pm;
    power = r.Pf_fits.Run.power;
  }

(* Each ISA executes exactly once: the 16 KB run records the instruction
   stream, and the 8 KB data point replays it through the smaller cache.
   Cache geometry cannot change architectural behaviour, so the replayed
   statistics are bit-identical to a direct simulation (asserted by the
   replay-equivalence tests) at roughly half the cost — 2 executions plus
   2 cheap replays instead of 4 executions.

   The ARM recording doubles as the profiling run: synthesis needs
   per-word dynamic counts, and the recorded trace IS the executed
   sequence, so [Trace.exec_counts] recovers counts bit-identical to a
   dedicated [dyn_counts_of_run] execution (pinned by the synthesis
   tests) without executing the program an extra time.  The ARM side
   therefore runs first and the reference output is the ARM run's output;
   cross-ISA consistency is still asserted against the FITS runs, and
   cross-ENGINE architectural identity is pinned by the three-way
   differential tests. *)
let engine_fits : Pf_cpu.Arm_run.engine -> Pf_fits.Run.engine = function
  | Pf_cpu.Arm_run.Reference -> Pf_fits.Run.Reference
  | Pf_cpu.Arm_run.Predecoded -> Pf_fits.Run.Predecoded
  | Pf_cpu.Arm_run.Compiled -> Pf_fits.Run.Compiled

let run_benchmark ?(scale = 1) ?(classify = false)
    ?(engine = Pf_cpu.Arm_run.Predecoded) ?max_steps ?deadline
    (b : Pf_mibench.Registry.benchmark) =
  let check () = Pf_util.Deadline.check ~where:"harness.experiment" deadline in
  let p = b.Pf_mibench.Registry.program ~scale in
  let image =
    Pf_armgen.Compile.program ~unroll:b.Pf_mibench.Registry.unroll p
  in
  check ();
  let arm_trace = Pf_cpu.Trace.create ~isize:4 () in
  let arm16_r =
    Pf_cpu.Arm_run.run ~engine ~cache_cfg:cache_16k ~classify ?max_steps
      ?deadline ~trace:arm_trace image
  in
  let arm8_r =
    Pf_cpu.Arm_run.replay ~cache_cfg:cache_8k ~classify
      ~output:arm16_r.Pf_cpu.Arm_run.output image arm_trace
  in
  check ();
  let dyn_counts =
    Pf_cpu.Trace.exec_counts arm_trace ~base:image.Pf_arm.Image.code_base
      ~n:(Array.length image.Pf_arm.Image.words)
  in
  let reference_output = arm16_r.Pf_cpu.Arm_run.output in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  check ();
  let thumb = Pf_thumb.Translate.estimate image in
  let fits_trace = Pf_cpu.Trace.create ~isize:2 () in
  let fits16_r =
    Pf_fits.Run.run ~engine:(engine_fits engine) ~cache_cfg:cache_16k
      ~classify ?max_steps ?deadline ~trace:fits_trace tr
  in
  let fits8_r =
    Pf_fits.Run.replay ~cache_cfg:cache_8k ~classify ~like:fits16_r tr
      fits_trace
  in
  let outputs_consistent =
    arm8_r.Pf_cpu.Arm_run.output = reference_output
    && fits16_r.Pf_fits.Run.output = reference_output
    && fits8_r.Pf_fits.Run.output = reference_output
  in
  {
    name = b.Pf_mibench.Registry.name;
    category = b.Pf_mibench.Registry.category;
    arm16 = of_arm arm16_r;
    arm8 = of_arm arm8_r;
    fits16 = of_fits fits16_r;
    fits8 = of_fits fits8_r;
    static_map_pct = Pf_fits.Translate.static_mapping_rate tr;
    dyn_map_pct = fits16_r.Pf_fits.Run.dyn_one_to_one_pct;
    expansion_hist = tr.Pf_fits.Translate.stats.Pf_fits.Translate.expansion_hist;
    code_arm = Pf_arm.Image.code_size_bytes image;
    code_thumb = thumb.Pf_thumb.Translate.thumb_bytes;
    code_fits = tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits;
    datapath_off = syn.Pf_fits.Synthesis.datapath_off;
    ais_ops = List.length syn.Pf_fits.Synthesis.ais;
    dict_entries = Array.length tr.Pf_fits.Translate.spec.Pf_fits.Spec.dict;
    outputs_consistent;
  }

(* ---- crash-proof sweep ------------------------------------------------- *)

type sweep_row = {
  bench : string;
  outcome : (bench_result, Pf_util.Sim_error.t) result;
  retried : bool;
  elapsed_s : float;
}

type sweep = {
  rows : sweep_row list;
  completed : int;
  total : int;
  jobs : int;
}

let default_wall_clock_s = 600.

(* The wall-clock watchdog is a monotonic deadline polled by the execute
   loops (and at every phase boundary of [run_benchmark]).  The PR-1
   SIGALRM interval-timer watchdog could not survive parallelism: POSIX
   delivers signals to the main domain only, so a wedged benchmark inside
   a worker domain would have hung the whole sweep. *)
let run_isolated ?(scale = 1) ?max_steps
    ?(wall_clock_s = default_wall_clock_s) ?classify ?engine
    (b : Pf_mibench.Registry.benchmark) =
  let t0 = Unix.gettimeofday () in
  let attempt scale =
    let deadline = Pf_util.Deadline.after ~seconds:wall_clock_s in
    Pf_util.Sim_error.protect
      ~where:("harness." ^ b.Pf_mibench.Registry.name)
      (fun () -> run_benchmark ~scale ?max_steps ?classify ?engine ~deadline b)
  in
  let finish outcome retried =
    {
      bench = b.Pf_mibench.Registry.name;
      outcome;
      retried;
      elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  match attempt scale with
  | Ok r -> finish (Ok r) false
  | Error { Pf_util.Sim_error.kind = Pf_util.Sim_error.Watchdog_timeout; _ }
    when scale > 1 ->
      (* transient trip: retry once at reduced scale *)
      finish (attempt (max 1 (scale / 2))) true
  | Error e -> finish (Error e) false

let run_all ?scale ?max_steps ?wall_clock_s ?classify ?engine
    ?(benchmarks = Pf_mibench.Registry.all) ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let rows =
    Pool.map ~jobs
      (fun b ->
        run_isolated ?scale ?max_steps ?wall_clock_s ?classify ?engine b)
      benchmarks
  in
  let completed, total =
    List.fold_left
      (fun (c, t) r ->
        ((if Result.is_ok r.outcome then c + 1 else c), t + 1))
      (0, 0) rows
  in
  { rows; completed; total; jobs }

let completed_results sweep =
  List.filter_map
    (fun r -> match r.outcome with Ok b -> Some b | Error _ -> None)
    sweep.rows

let banner sweep =
  let b = Buffer.create 256 in
  Printf.bprintf b "%d of %d benchmarks completed (jobs=%d)" sweep.completed
    sweep.total sweep.jobs;
  List.iter
    (fun r ->
      match r.outcome with
      | Ok _ -> if r.retried then Printf.bprintf b "
  %s: completed after watchdog retry at reduced scale" r.bench
      | Error e ->
          Printf.bprintf b "
  %s: FAILED %s%s" r.bench
            (Pf_util.Sim_error.to_string e)
            (if r.retried then " (after retry)" else ""))
    sweep.rows;
  Buffer.contents b

let power_rows results =
  List.filter_map
    (fun (b : Pf_mibench.Registry.benchmark) ->
      if not b.Pf_mibench.Registry.power_study then None
      else
        match
          List.find_opt
            (fun r -> r.name = b.Pf_mibench.Registry.name)
            results
        with
        | Some r -> Some { r with name = b.Pf_mibench.Registry.result_name }
        | None -> None)
    Pf_mibench.Registry.all
