(** The paper's experimental setup (§5): each benchmark is compiled to the
    ARM-like ISA, profiled, FITS-synthesized and translated, then simulated
    on four processor configurations that differ only in ISA and I-cache
    size — ARM16, ARM8, FITS16, FITS8 (16 KB / 8 KB, 32-byte blocks,
    32-way, SA-1100-like dual-issue core at a fixed clock).

    Every run cross-checks program output across all configurations: a
    result is only reported if the ARM and FITS executions printed exactly
    the same thing. *)

type per_config = {
  instructions : int;     (** source (ARM) instructions retired *)
  cycles : int;
  ipc : float;
  fetch_accesses : int;
  cache_misses : int;
  miss_rate_pm : float;   (** misses per million accesses (Figure 13) *)
  dcache_miss_rate_pm : float;
      (** the fixed 8 KB data cache (constant across configurations) *)
  power : Pf_power.Account.report;
}

type bench_result = {
  name : string;
  category : string;
  arm16 : per_config;
  arm8 : per_config;
  fits16 : per_config;
  fits8 : per_config;
  static_map_pct : float;        (** Figure 3 *)
  dyn_map_pct : float;           (** Figure 4 *)
  expansion_hist : (int * int) list;
  code_arm : int;
  code_thumb : int;
  code_fits : int;
  datapath_off : float;          (** Figure 12's decoder-deactivation term *)
  ais_ops : int;
  dict_entries : int;
  outputs_consistent : bool;
}

val cache_16k : Pf_cache.Icache.config
val cache_8k : Pf_cache.Icache.config
(** Aliases of {!Pf_dse.Space.cache_16k} / {!Pf_dse.Space.cache_8k}: the
    paper's configurations are named points of the exploration grid. *)

val of_arm : Pf_cpu.Arm_run.result -> per_config
val of_fits : Pf_fits.Run.result -> per_config
(** Project a runner result onto the shared per-configuration record
    (used by the multi-program harness, which assembles its own rows). *)

val run_benchmark :
  ?scale:int ->
  ?classify:bool ->
  ?engine:Pf_cpu.Arm_run.engine ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  Pf_mibench.Registry.benchmark ->
  bench_result
(** Full pipeline for one benchmark (default scale 1): compile, then
    simulate the four configurations as two recorded executions (ARM16,
    FITS16) plus two trace replays (ARM8, FITS8) — cache geometry cannot
    change architectural behaviour, so the replayed statistics are
    bit-identical to direct simulation.  The ARM16 recording doubles as
    the profiling run: synthesis consumes {!Pf_cpu.Trace.exec_counts} of
    its trace, which is bit-identical to a dedicated counting execution.
    [engine] (default [Predecoded]) selects the execution engine for both
    recording runs; every engine retires the identical architectural
    stream (three-way differential tests), so results do not depend on
    it.  [max_steps] is a per-run step watchdog and [deadline] a
    wall-clock one, polled inside the execute loops and at phase
    boundaries; exhaustion of either raises a [Watchdog_timeout]
    {!Pf_util.Sim_error.Error}. *)

(** {2 Crash-proof parallel sweep}

    One corrupted or runaway benchmark must not take down the other 20:
    {!run_all} isolates every benchmark behind {!Pf_util.Sim_error.protect}
    and a wall-clock/step watchdog, records per-benchmark outcomes, and
    retries a watchdog trip once at reduced scale before giving up on that
    row.  Rows run on a {!Pool} of worker domains (the watchdog is a
    monotonic deadline precisely so it works off the main domain); row
    order, and everything else a sweep reports, is independent of [jobs].
    Figures are then drawn from whatever survived. *)

type sweep_row = {
  bench : string;
  outcome : (bench_result, Pf_util.Sim_error.t) result;
  retried : bool;   (** a watchdog trip triggered the reduced-scale retry *)
  elapsed_s : float;
      (** wall-clock spent on this row, retry included (bench trajectory) *)
}

type sweep = {
  rows : sweep_row list;
  completed : int;
  total : int;
  jobs : int;       (** worker domains the sweep actually used *)
}

val default_wall_clock_s : float
(** Per-benchmark wall-clock budget of {!run_all} (600 s). *)

val run_isolated :
  ?scale:int ->
  ?max_steps:int ->
  ?wall_clock_s:float ->
  ?classify:bool ->
  ?engine:Pf_cpu.Arm_run.engine ->
  Pf_mibench.Registry.benchmark ->
  sweep_row
(** One benchmark under full isolation: any simulation failure — including
    stack overflow, out-of-memory and the watchdogs — comes back as
    [Error], never as an exception. *)

val run_all :
  ?scale:int ->
  ?max_steps:int ->
  ?wall_clock_s:float ->
  ?classify:bool ->
  ?engine:Pf_cpu.Arm_run.engine ->
  ?benchmarks:Pf_mibench.Registry.benchmark list ->
  ?jobs:int ->
  unit ->
  sweep
(** All 21 benchmarks (Figures 3-5 use these), each isolated.
    [benchmarks] narrows the sweep (tests use this to force failures
    without paying for the full suite).  [jobs] (default
    {!Pool.default_jobs}) sets the worker-domain count; [jobs:1] is the
    sequential sweep, and results are identical for every value. *)

val completed_results : sweep -> bench_result list
(** The surviving rows, in sweep order. *)

val banner : sweep -> string
(** ["N of M benchmarks completed (jobs=K)"], plus one line per failed or
    retried row. *)

val power_rows : bench_result list -> bench_result list
(** Restrict to the 19-benchmark power suite, reporting each row under
    its {!Pf_mibench.Registry.benchmark.result_name}. *)
