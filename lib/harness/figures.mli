(** Reproduction of every figure in the paper's evaluation (§6).

    Each function turns experiment results into a {!figure}: labeled rows
    (one per benchmark), named series (one per processor configuration or
    component), and the across-suite average the paper quotes in its
    text.  [render] prints the same rows/series a reader would take off
    the paper's charts. *)

type figure = {
  id : string;            (** "fig3" ... "fig14" *)
  title : string;
  unit_ : string;         (** "%", "IPC", "misses/M", ... *)
  series : string list;
  rows : (string * float list) list;   (** benchmark -> one value/series *)
  average : float list;
}

val make :
  id:string -> title:string -> unit_:string -> series:string list ->
  (string * float list) list -> figure
(** Assemble a figure from labeled rows, computing the across-suite
    average per series (every row must carry one value per series). *)

val render : figure -> string

val fig3 : Experiment.bench_result list -> figure
(** ARM-to-FITS static mapping rate (all 21 benchmarks). *)

val fig4 : Experiment.bench_result list -> figure
(** ARM-to-FITS dynamic mapping rate. *)

val fig5 : Experiment.bench_result list -> figure
(** Code size footprint normalized to ARM (ARM / THUMB / FITS). *)

val fig6 : Experiment.bench_result list -> figure list
(** I-cache power breakdown per configuration (four sub-figures:
    switching / internal / leakage shares). *)

val fig7 : Experiment.bench_result list -> figure
(** Switching power saving vs ARM16. *)

val fig8 : Experiment.bench_result list -> figure
(** Internal power saving vs ARM16. *)

val fig9 : Experiment.bench_result list -> figure
(** Leakage power saving vs ARM16. *)

val fig10 : Experiment.bench_result list -> figure
(** Peak power saving vs ARM16. *)

val fig11 : Experiment.bench_result list -> figure
(** Total I-cache power saving vs ARM16. *)

val fig12 : Experiment.bench_result list -> figure
(** Total chip power saving vs ARM16 (27 % I-cache share + datapath
    deactivation). *)

val fig13 : Experiment.bench_result list -> figure
(** I-cache miss rate, misses per million accesses, all four configs. *)

val fig14 : Experiment.bench_result list -> figure
(** Instructions per cycle, all four configs. *)

val power_figures : Experiment.bench_result list -> figure list
(** Figures 6-14 (expects the 19-benchmark power rows). *)

val mapping_figures : Experiment.bench_result list -> figure list
(** Figures 3-5 (expects all 21 benchmarks). *)
