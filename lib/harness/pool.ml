(* The implementation moved to Pf_util.Pool so layers below the harness
   (pf_dse's explorer) can use the same worker pool; this module keeps
   the historical [Pf_harness.Pool] name alive for existing callers. *)
include Pf_util.Pool
