(** Re-export of {!Pf_util.Pool}, the fixed-size domain worker pool.

    The implementation lives in [pf_util] so lower layers (the
    design-space explorer in [pf_dse]) can share it; the harness keeps
    this alias because every sweep entry point historically takes its
    pool from [Pf_harness.Pool]. *)

include module type of Pf_util.Pool
