open Ast

let i n = Int n
let v s = Var s
let gaddr s = Global_addr s

let ( +% ) a b = Binop (Add, a, b)
let ( -% ) a b = Binop (Sub, a, b)
let ( *% ) a b = Binop (Mul, a, b)
let ( /% ) a b = Binop (Div, a, b)
let ( %+ ) a b = Binop (Rem, a, b)
let udiv a b = Binop (Udiv, a, b)
let urem a b = Binop (Urem, a, b)
let band a b = Binop (And, a, b)
let bor a b = Binop (Or, a, b)
let bxor a b = Binop (Xor, a, b)
let bnot a = Unop (Bnot, a)
let neg a = Unop (Neg, a)
let shl a b = Binop (Shl, a, b)
let shr a b = Binop (Shr, a, b)
let sar a b = Binop (Sar, a, b)

let ( =% ) a b = Cmp (Eq, a, b)
let ( <>% ) a b = Cmp (Ne, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ult a b = Cmp (Ult, a, b)
let ule a b = Cmp (Ule, a, b)
let ugt a b = Cmp (Ugt, a, b)
let uge a b = Cmp (Uge, a, b)

let load8u addr = Load { scale = W8; signed = false; addr }
let load8s addr = Load { scale = W8; signed = true; addr }
let load16u addr = Load { scale = W16; signed = false; addr }
let load16s addr = Load { scale = W16; signed = true; addr }
let load32 addr = Load { scale = W32; signed = false; addr }

let idx8 g e = load8u (Global_addr g +% e)
let idx16 g e = load16u (Global_addr g +% Binop (Shl, e, Int 1))
let idx32 g e = load32 (Global_addr g +% Binop (Shl, e, Int 2))

let call f args = Call (f, args)

let let_ x e = Let (x, e)
let set x e = Assign (x, e)
let incr_ x = Assign (x, Var x +% Int 1)
let add_ x e = Assign (x, Var x +% e)

let store8 addr value = Store { scale = W8; addr; value }
let store16 addr value = Store { scale = W16; addr; value }
let store32 addr value = Store { scale = W32; addr; value }

let setidx8 g index value = store8 (Global_addr g +% index) value

let setidx16 g index value =
  store16 (Global_addr g +% Binop (Shl, index, Int 1)) value

let setidx32 g index value =
  store32 (Global_addr g +% Binop (Shl, index, Int 2)) value

let if_ c t f = If (c, t, f)
let when_ c t = If (c, t, [])
let while_ c body = While (c, body)
let for_ x lo hi body = For (x, lo, hi, body)
let do_ f args = Expr (Call (f, args))
let ret e = Return (Some e)
let ret0 = Return None
let break_ = Break
let continue_ = Continue
let print_int e = Print_int e
let print_char e = Print_char e

let func name params body = { name; params; body }

let garray gname gscale length = { gname; gscale; length; init = None }

let garray_init gname gscale init =
  { gname; gscale; length = Array.length init; init = Some init }

let program globals funcs = { funcs; globals }

(* Multicore surface: litmus kernels mark ordering points with [fence],
   compiled as a single word store to the reserved [__sync] global.  On a
   single core it is an ordinary (harmless) store; the multicore
   coherence layer recognizes the address and treats the store as a
   drain point — a no-op under sequential consistency, a store-buffer
   flush under a TSO-style model.  Every core of a shared-memory machine
   must declare the same globals in the same order (the linker lays
   globals out in declaration order, so identical lists give identical
   shared addresses); [shared_program] enforces that by construction. *)
let sync_global_name = "__sync"
let sync_global = garray sync_global_name W32 1
let fence = store32 (gaddr sync_global_name) (i 0)
let shared_program globals funcs = { funcs; globals = globals @ [ sync_global ] }
