(** Combinators for writing KIR programs compactly.

    The benchmark sources in [pf_mibench] are written against this module;
    open it locally ([let open Pf_kir.Build in ...]) to get infix operators
    for the common arithmetic and comparison forms. *)

open Ast

(** {1 Expressions} *)

val i : int -> expr
val v : string -> expr
val gaddr : string -> expr

val ( +% ) : expr -> expr -> expr
val ( -% ) : expr -> expr -> expr
val ( *% ) : expr -> expr -> expr
val ( /% ) : expr -> expr -> expr
(* signed division *)
val ( %+ ) : expr -> expr -> expr
(* signed remainder *)
val udiv : expr -> expr -> expr
val urem : expr -> expr -> expr

val band : expr -> expr -> expr
val bor : expr -> expr -> expr
val bxor : expr -> expr -> expr
val bnot : expr -> expr
val neg : expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
(* logical *)
val sar : expr -> expr -> expr
(* arithmetic *)
val ( =% ) : expr -> expr -> expr
val ( <>% ) : expr -> expr -> expr
val ( <% ) : expr -> expr -> expr
(* signed *)
val ( <=% ) : expr -> expr -> expr
val ( >% ) : expr -> expr -> expr
val ( >=% ) : expr -> expr -> expr
val ult : expr -> expr -> expr
val ule : expr -> expr -> expr
val ugt : expr -> expr -> expr
val uge : expr -> expr -> expr

val load8u : expr -> expr
val load8s : expr -> expr
val load16u : expr -> expr
val load16s : expr -> expr
val load32 : expr -> expr

val idx8 : string -> expr -> expr
(* [idx8 g e] loads element [e] of byte-array global [g]. *)
val idx16 : string -> expr -> expr
val idx32 : string -> expr -> expr

val call : string -> expr list -> expr
(* {1 Statements} *)
val let_ : string -> expr -> stmt
val set : string -> expr -> stmt
val incr_ : string -> stmt
(* x := x + 1 *)
val add_ : string -> expr -> stmt
(* x := x + e *)
val store8 : expr -> expr -> stmt
(* [store8 addr value] *)
val store16 : expr -> expr -> stmt
val store32 : expr -> expr -> stmt

val setidx8 : string -> expr -> expr -> stmt
(* [setidx8 g index value] stores into byte-array global [g]. *)
val setidx16 : string -> expr -> expr -> stmt
val setidx32 : string -> expr -> expr -> stmt

val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
val do_ : string -> expr list -> stmt
(* call for effect *)
val ret : expr -> stmt
val ret0 : stmt
val break_ : stmt
val continue_ : stmt
val print_int : expr -> stmt
val print_char : expr -> stmt
(* {1 Definitions} *)
val func : string -> string list -> stmt list -> func

val garray : string -> scale -> int -> global
(* Zero-initialized global array. *)
val garray_init : string -> scale -> int array -> global

val program : global list -> func list -> program

(* {1 Multicore surface}

   Kernels destined for the shared-memory multicore machine ([lib/mc])
   communicate through identically-declared globals and mark ordering
   points with [fence]. *)

val sync_global_name : string
(* ["__sync"]: the reserved global whose stores the multicore coherence
   layer interprets as fences.  Kernels must not use it for data. *)

val sync_global : global
(* One-word W32 global named {!sync_global_name}. *)

val fence : stmt
(* A word store to {!sync_global}.  On a single core: an ordinary store.
   On the multicore machine: a drain point — no-op under sequential
   consistency, a store-buffer flush under a TSO-style model.  Programs
   using it must declare {!sync_global} (see {!shared_program}). *)

val shared_program : global list -> func list -> program
(* [program] with {!sync_global} appended to the globals.  Every core of
   a shared-memory machine must build its program with the SAME globals
   list (the linker lays globals out in declaration order, so identical
   lists yield identical shared addresses across the per-core images). *)
