open Ast

type error = { where : string; what : string }

let check (p : program) =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let arity = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem arity f.name then
        err f.name "duplicate function definition"
      else Hashtbl.add arity f.name (List.length f.params);
      if List.length f.params > 4 then
        err f.name "more than 4 parameters (ABI passes args in r0-r3)")
    p.funcs;
  let globals = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem globals g.gname then
        err g.gname "duplicate global definition"
      else Hashtbl.add globals g.gname g;
      if g.length <= 0 then err g.gname "global with non-positive length";
      match g.init with
      | Some a when Array.length a > g.length ->
          err g.gname "initializer longer than the array"
      | Some _ | None -> ())
    p.globals;
  (match Hashtbl.find_opt arity entry_name with
  | None -> err entry_name "missing entry function"
  | Some 0 -> ()
  | Some _ -> err entry_name "entry function must take no parameters");
  let check_func f =
    let where = f.name in
    let declared = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace declared x ()) f.params;
    let rec expr = function
      | Int _ -> ()
      | Var x ->
          if not (Hashtbl.mem declared x) then
            err where "use of undeclared variable %s" x
      | Global_addr g ->
          if not (Hashtbl.mem globals g) then
            err where "use of undeclared global %s" g
      | Load { addr; _ } -> expr addr
      | Binop (_, a, b) | Cmp (_, a, b) ->
          expr a;
          expr b
      | Unop (_, a) -> expr a
      | Call (fn, args) ->
          (match Hashtbl.find_opt arity fn with
          | None -> err where "call to undefined function %s" fn
          | Some n ->
              if n <> List.length args then
                err where "call to %s with %d args (expects %d)" fn
                  (List.length args) n);
          List.iter expr args
    in
    let rec stmt ~in_loop = function
      | Let (x, e) ->
          expr e;
          Hashtbl.replace declared x ()
      | Assign (x, e) ->
          expr e;
          if not (Hashtbl.mem declared x) then
            err where "assignment to undeclared variable %s" x
      | Store { addr; value; _ } ->
          expr addr;
          expr value
      | If (c, t, e) ->
          expr c;
          List.iter (stmt ~in_loop) t;
          List.iter (stmt ~in_loop) e
      | While (c, body) ->
          expr c;
          List.iter (stmt ~in_loop:true) body
      | For (x, lo, hi, body) ->
          expr lo;
          expr hi;
          Hashtbl.replace declared x ();
          List.iter (stmt ~in_loop:true) body
      | Expr e | Print_int e | Print_char e -> expr e
      | Return (Some e) -> expr e
      | Return None -> ()
      | Break | Continue ->
          if not in_loop then err where "break/continue outside a loop"
    in
    List.iter (stmt ~in_loop:false) f.body
  in
  List.iter check_func p.funcs;
  match !errors with [] -> Ok () | l -> Error (List.rev l)

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error ({ where; what } :: _) ->
      invalid_arg (Printf.sprintf "KIR validation: %s: %s" where what)
  | Error [] ->
      Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal
        ~where:"kir.validate" "check returned Error []"
