(* Write-through snooping-invalidate coherence over the shared data
   segment.

   Each core owns a full private [Bytes.t] memory (its [Exec.t] state is
   untouched sequential-engine state); coherence is maintained by
   propagation: after a core executes a store into the shared window
   [base, limit), the containing word(s) are copied from the writer's
   memory into every other core's memory, and the affected line(s) are
   snooped out of every other core's private D-cache.  Because the
   machine advances one instruction at a time under one scheduler and
   every shared store becomes globally visible before the next slice,
   the shared region behaves as a single sequentially consistent memory
   — the operational model [Model] with store-buffer capacity 0.

   Word-granular copy is sound for byte and half stores too: a sub-word
   store reports the containing word's span ([Exec] effective addresses
   are in-bounds and the copy is of whole aligned words), and copying
   bytes the writer did not change is idempotent — every core already
   agreed on them, by induction.

   A store to [sync_addr] (the KIR [__sync] global, see
   {!Pf_kir.Build.fence}) is counted as a fence.  Under this write-
   through layer it is semantically a no-op — there is no buffered state
   to drain — but the count lets litmus harnesses confirm fences
   executed, and a future store-buffer (TSO) layer turns the same marker
   into its drain point. *)

type stats = {
  mutable stores_through : int;
  mutable words_propagated : int;
  mutable invalidations : int;
  mutable fences : int;
}

type t = {
  base : int;
  limit : int;
  sync_addr : int;
  mems : Bytes.t array;
  dcaches : Pf_cache.Icache.t array;
  stats : stats;
}

let where = "mc.coherence"

let create ?(sync_addr = -1) ~base ~limit ~mems ~dcaches () =
  if limit < base then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "shared window [0x%x, 0x%x) is inverted" base limit;
  if Array.length mems <> Array.length dcaches then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "%d memories vs %d dcaches" (Array.length mems) (Array.length dcaches);
  {
    base;
    limit;
    sync_addr;
    mems;
    dcaches;
    stats =
      { stores_through = 0; words_propagated = 0; invalidations = 0;
        fences = 0 };
  }

let stats t = t.stats
let in_shared t ~addr = addr >= t.base && addr < t.limit

let post_store t ~core ~addr ~words =
  if in_shared t ~addr then begin
    let s = t.stats in
    s.stores_through <- s.stores_through + 1;
    if addr = t.sync_addr then s.fences <- s.fences + 1;
    let lo = addr land lnot 3 in
    let nw = max 1 words in
    let nbytes = nw * 4 in
    let src = t.mems.(core) in
    for c = 0 to Array.length t.mems - 1 do
      if c <> core then begin
        Bytes.blit src lo t.mems.(c) lo nbytes;
        s.words_propagated <- s.words_propagated + nw;
        (* snoop each written word; [invalidate_addr] hits a line at most
           once (later words of the same line miss), so the count is
           exact line invalidations *)
        let dc = t.dcaches.(c) in
        for w = 0 to nw - 1 do
          if Pf_cache.Icache.invalidate_addr dc ~addr:(lo + (w * 4)) then
            s.invalidations <- s.invalidations + 1
        done
      end
    done
  end
