(** Write-through snooping-invalidate coherence over a shared data
    window.

    Cores keep full private memories; after a core stores into
    [\[base, limit)], {!post_store} copies the containing aligned word(s)
    from the writer's memory into every other core's memory and
    invalidates the affected line(s) in every other core's private
    D-cache ({!Pf_cache.Icache.invalidate_addr}).  One store becomes
    globally visible before the next scheduler slice, so the shared
    window is sequentially consistent — the operational {!Model} with
    store-buffer capacity 0 (the litmus suite checks exactly this).

    Stores to [sync_addr] ({!Pf_kir.Build.fence} markers) are counted as
    fences; under write-through they drain nothing, but a store-buffer
    (TSO) layer would drain at the same marker. *)

type stats = {
  mutable stores_through : int;   (** shared-window stores propagated *)
  mutable words_propagated : int; (** words copied to other cores *)
  mutable invalidations : int;    (** D-cache lines snooped out *)
  mutable fences : int;           (** [sync_addr] stores observed *)
}

type t

val create :
  ?sync_addr:int ->
  base:int ->
  limit:int ->
  mems:Bytes.t array ->
  dcaches:Pf_cache.Icache.t array ->
  unit ->
  t
(** [mems.(i)]/[dcaches.(i)] belong to core [i]; the arrays must have
    equal length.  [sync_addr] defaults to [-1] (no fence marker).
    Raises [Invalid_config] on an inverted window or mismatched
    arrays. *)

val in_shared : t -> addr:int -> bool

val post_store : t -> core:int -> addr:int -> words:int -> unit
(** Propagate the store core [core] just executed at [addr] ([words]
    words, [0]/[1] for scalar stores — byte and half stores propagate
    their containing word).  Outside the shared window: no-op. *)

val stats : t -> stats
