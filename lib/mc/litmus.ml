(* Litmus harness: classic weak-memory tests as KIR kernels on the
   multicore machine, observed outcomes checked against the operational
   model.

   Each model thread becomes one core's KIR program: [W (x, v)] is a
   word store to global [x], [R x] prints the loaded value ([print_int]
   — the per-core output IS the observation), [F] is the
   {!Pf_kir.Build.fence} marker store.  Every core declares the SAME
   globals list (the linker lays globals out in declaration order, so
   shared variables land at identical addresses in every per-core
   image); the shared window given to the coherence layer is exactly the
   globals segment, and final values are read back from core 0's memory
   after quiescence — all memories agree there, by write-through
   induction.

   A sweep runs many seeded interleavings (fanned out with
   [Pf_util.Pool], one machine per seed — deterministic per seed, merged
   in seed order, so the histogram is independent of [--jobs]) and
   checks every observed outcome string against
   [Model.allowed ~sb_capacity:0]: the machine implements sequential
   consistency, so any outcome outside the SC set is a coherence bug. *)

module Px = Pf_arm.Pexec

type prepared_core = {
  image : Pf_arm.Image.t;
  uops : Px.uop array;
  code_base : int;
  words : int array;
  entry : int;
}

type prepared = {
  test : Model.test;
  pcores : prepared_core array;
  shared : Machine.shared;
  var_addrs : (string * int) list;
}

let where = "mc.litmus"

let kir_of_thread ~globals ops =
  let open Pf_kir.Build in
  let stmts =
    List.map
      (function
        | Model.W (x, v) -> setidx32 x (i 0) (i v)
        | Model.R x -> print_int (idx32 x (i 0))
        | Model.F -> fence)
      ops
  in
  shared_program globals [ func "main" [] (stmts @ [ ret0 ]) ]

let prepare (test : Model.test) =
  let vars = Model.vars test in
  let globals =
    List.map
      (fun x ->
        match List.assoc_opt x test.Model.init with
        | Some v -> Pf_kir.Build.garray_init x Pf_kir.Ast.W32 [| v |]
        | None -> Pf_kir.Build.garray x Pf_kir.Ast.W32 1)
      vars
  in
  let pcores =
    Array.map
      (fun ops ->
        let image = Pf_armgen.Compile.program (kir_of_thread ~globals ops) in
        let p = Px.compile image in
        {
          image;
          uops = p.Px.uops;
          code_base = p.Px.code_base;
          words = image.Pf_arm.Image.words;
          entry = p.Px.entry;
        })
      test.Model.threads
  in
  let img0 = pcores.(0).image in
  let names = Pf_kir.Build.sync_global_name :: vars in
  (* identical globals lists must give identical layouts; check, don't
     assume *)
  Array.iter
    (fun pc ->
      List.iter
        (fun x ->
          if Pf_arm.Image.symbol pc.image x <> Pf_arm.Image.symbol img0 x then
            Pf_util.Sim_error.raisef Pf_util.Sim_error.Internal ~where
              "global %s lands at different addresses across cores" x)
        names)
    pcores;
  let addr x = Pf_arm.Image.symbol img0 x in
  let var_addrs = List.map (fun x -> (x, addr x)) vars in
  let sync_addr = addr Pf_kir.Build.sync_global_name in
  let lo =
    List.fold_left (fun a (_, x) -> min a x) sync_addr var_addrs
  in
  let hi =
    List.fold_left (fun a (_, x) -> max a (x + 4)) (sync_addr + 4) var_addrs
  in
  { test; pcores; shared = { Machine.base = lo; limit = hi; sync_addr };
    var_addrs }

let reads_of_output out =
  String.split_on_char '\n' out
  |> List.filter (fun s -> s <> "")
  |> List.map int_of_string

let run_one prepared ~policy ~seed =
  let steps =
    Array.map
      (fun pc ->
        Pf_cpu.Step.create ~isize:4 ~code_base:pc.code_base ~words:pc.words
          ~entry:pc.entry ~uops:pc.uops
          (Pf_arm.Exec.create pc.image))
      prepared.pcores
  in
  let cores =
    Array.mapi (fun i s -> (Printf.sprintf "t%d" i, s)) steps
  in
  let sched =
    Sched.create ~policy ~ncores:(Array.length steps) seed
  in
  let m = Machine.create ~shared:prepared.shared ~sched cores in
  Machine.run m;
  let reads =
    Array.map
      (fun s -> reads_of_output (Pf_arm.Exec.output (Pf_cpu.Step.state s)))
      steps
  in
  let st0 = Pf_cpu.Step.state steps.(0) in
  let finals =
    List.map (fun (x, a) -> (x, Pf_arm.Exec.load_word st0 a))
      prepared.var_addrs
  in
  { Model.reads; finals }

type result = {
  name : string;
  seeds : int;
  policy : Sched.policy;
  observed : (string * int) list;  (* outcome -> count, sorted *)
  allowed : string list;           (* the model's SC set *)
  forbidden : (string * int) list; (* observed but not allowed *)
}

let run ?(policy = Sched.Seeded_random) ?(seeds = 1000) ?jobs
    (test : Model.test) =
  let prepared = prepare test in
  let outcomes =
    Pf_util.Pool.map ?jobs
      (fun seed -> Model.outcome_to_string (run_one prepared ~policy ~seed))
      (List.init seeds (fun k -> k))
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace tbl s
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    outcomes;
  let observed =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let allowed = Model.allowed_strings ~sb_capacity:0 test in
  let forbidden =
    List.filter (fun (o, _) -> not (List.mem o allowed)) observed
  in
  { name = test.Model.name; seeds; policy; observed; allowed; forbidden }

(* The classic suite.  Two-letter names follow the litmus literature. *)

let w x v = Model.W (x, v)
let r x = Model.R x

let sb =
  { Model.name = "SB"; init = [];
    threads = [| [ w "x" 1; r "y" ]; [ w "y" 1; r "x" ] |] }
(* store buffering: r_x = r_y = 0 needs store-load reordering —
   forbidden under SC, allowed under TSO *)

let mp =
  { Model.name = "MP"; init = [];
    threads = [| [ w "x" 1; w "y" 1 ]; [ r "y"; r "x" ] |] }
(* message passing: seeing the flag (y=1) but not the data (x=0) is
   forbidden under SC and TSO alike *)

let lb =
  { Model.name = "LB"; init = [];
    threads = [| [ r "x"; w "y" 1 ]; [ r "y"; w "x" 1 ] |] }
(* load buffering: r_x = r_y = 1 needs load-store reordering — forbidden
   under SC and TSO *)

let coww =
  { Model.name = "CoWW"; init = [];
    threads = [| [ w "x" 1; w "x" 2 ]; [ w "x" 3 ] |] }
(* coherence (write-write): final x is 2 or 3, never 1 *)

let corr =
  { Model.name = "CoRR"; init = [];
    threads = [| [ w "x" 1 ]; [ r "x"; r "x" ] |] }
(* coherence (read-read): once 1 is seen, reading 0 again is forbidden *)

let sb_fence =
  { Model.name = "SB+fences"; init = [];
    threads = [| [ w "x" 1; Model.F; r "y" ]; [ w "y" 1; Model.F; r "x" ] |]
  }
(* fenced store buffering: the fences drain, so r_x = r_y = 0 is
   forbidden even under TSO *)

let iriw =
  { Model.name = "IRIW"; init = [];
    threads =
      [| [ w "x" 1 ]; [ w "y" 1 ];
         [ r "x"; r "y" ]; [ r "y"; r "x" ] |] }
(* independent reads of independent writes: the two reader threads must
   agree on the write order under SC (and TSO) *)

let tests = [ sb; mp; lb; coww; corr; sb_fence; iriw ]

let find name =
  List.find_opt
    (fun t -> String.lowercase_ascii t.Model.name = String.lowercase_ascii name)
    tests
