(** Litmus harness: classic weak-memory tests as KIR kernels on the
    multicore machine, checked against the operational {!Model}.

    Each model thread becomes one core's KIR program ([W] = word store
    to a shared global, [R] = [print_int] of its load — the per-core
    output is the observation, [F] = the {!Pf_kir.Build.fence} marker);
    every core declares the same globals so shared variables land at
    identical addresses.  A sweep runs many seeded interleavings and
    checks each observed outcome against [Model.allowed ~sb_capacity:0]
    — the machine's write-through coherence is sequentially consistent,
    so anything outside the SC set is a coherence bug. *)

type result = {
  name : string;
  seeds : int;
  policy : Sched.policy;
  observed : (string * int) list;
      (** outcome ({!Model.outcome_to_string}) -> count, sorted *)
  allowed : string list;            (** the model's SC outcome set *)
  forbidden : (string * int) list;  (** observed outcomes outside it *)
}

val run :
  ?policy:Sched.policy -> ?seeds:int -> ?jobs:int -> Model.test -> result
(** Sweep [seeds] interleavings (default 1000, seeds [0..seeds-1]) under
    [policy] (default {!Sched.Seeded_random}).  Machines are fanned out
    across [jobs] worker domains, one machine per seed; each machine is
    deterministic in its seed and results merge in seed order, so the
    histogram is byte-identical at any [jobs]. *)

(** {1 The suite} *)

val sb : Model.test
(** Store buffering: [(0, 0)] needs store-load reordering — forbidden
    under SC, allowed under TSO. *)

val mp : Model.test
(** Message passing: flag seen but not the data is forbidden under SC
    and TSO alike. *)

val lb : Model.test
(** Load buffering: [(1, 1)] needs load-store reordering. *)

val coww : Model.test
(** Coherence, write-write: final [x] is 2 or 3, never 1. *)

val corr : Model.test
(** Coherence, read-read: once 1 is seen, 0 cannot be read again. *)

val sb_fence : Model.test
(** Store buffering with fences: [(0, 0)] forbidden even under TSO. *)

val iriw : Model.test
(** Independent reads of independent writes: the reader threads must
    agree on the write order. *)

val tests : Model.test list

val find : string -> Model.test option
(** Case-insensitive lookup by test name. *)
