(* The multicore machine: N per-core steppers ({!Pf_cpu.Step}), one
   deterministic scheduler, an optional coherence layer over the shared
   data window.

   The machine itself is strictly single-domain — one core advances per
   slice, picked by [Sched] — so a run (including every per-core trace
   recording) is a pure function of the construction arguments and the
   scheduler seed.  Sweeps parallelize ACROSS machines (seeds, configs)
   with [Pf_util.Pool], never inside one.

   Power: each core carries its own PowerFITS I-cache account; the
   machine report sums the energy components (energies are additive) and
   takes the max of the per-core cycle counts (cores run concurrently,
   one slice = one core-cycle of progress attributed to that core).  The
   summed peak is an upper bound on machine peak power — per-core peak
   windows need not coincide in time. *)

type core = { label : string; step : Pf_cpu.Step.t }

type shared = { base : int; limit : int; sync_addr : int }

type t = {
  cores : core array;
  sched : Sched.t;
  coherence : Coherence.t option;
  mutable slices : int;
}

type power = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;
  peak_power : float;
}

type report = {
  cores : (string * Pf_cpu.Step.result) array;
  instructions : int;
  src_instructions : int;
  cycles : int;
  slices : int;
  power : power;
  coherence : Coherence.stats option;
}

let where = "mc.machine"

let create ?shared ~sched cores =
  if Array.length cores = 0 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "machine needs at least one core";
  if Sched.ncores sched <> Array.length cores then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "scheduler is for %d cores, machine has %d" (Sched.ncores sched)
      (Array.length cores);
  let cores =
    Array.map (fun (label, step) -> { label; step }) cores
  in
  let coherence =
    match shared with
    | None -> None
    | Some { base; limit; sync_addr } ->
        Some
          (Coherence.create ~sync_addr ~base ~limit
             ~mems:
               (Array.map
                  (fun c -> (Pf_cpu.Step.state c.step).Pf_arm.Exec.mem)
                  cores)
             ~dcaches:(Array.map (fun c -> Pf_cpu.Step.dcache c.step) cores)
             ())
  in
  { cores; sched; coherence; slices = 0 }

let ncores (t : t) = Array.length t.cores
let core (t : t) i = t.cores.(i).step
let label (t : t) i = t.cores.(i).label
let slices (t : t) = t.slices

let all_halted (t : t) =
  Array.for_all (fun c -> Pf_cpu.Step.halted c.step) t.cores

let step (t : t) =
  let runnable c = not (Pf_cpu.Step.halted t.cores.(c).step) in
  match Sched.next t.sched ~runnable with
  | None -> false
  | Some c ->
      let s = t.cores.(c).step in
      Pf_cpu.Step.step s;
      t.slices <- t.slices + 1;
      (match t.coherence with
      | Some coh ->
          let a = Pf_cpu.Step.stored_addr s in
          if a >= 0 then
            Coherence.post_store coh ~core:c ~addr:a
              ~words:(Pf_cpu.Step.stored_words s)
      | None -> ());
      true

let run t = while step t do () done

let report (t : t) =
  let results =
    Array.map (fun c -> (c.label, Pf_cpu.Step.result c.step)) t.cores
  in
  let sum f = Array.fold_left (fun a (_, r) -> a +. f r) 0.0 results in
  let sumi f = Array.fold_left (fun a (_, r) -> a + f r) 0 results in
  let maxi f = Array.fold_left (fun a (_, r) -> max a (f r)) 0 results in
  {
    cores = results;
    instructions = sumi (fun r -> r.Pf_cpu.Step.instructions);
    src_instructions = sumi (fun r -> r.Pf_cpu.Step.src_instructions);
    cycles = maxi (fun r -> r.Pf_cpu.Step.cycles);
    slices = t.slices;
    power =
      {
        switching =
          sum (fun r -> r.Pf_cpu.Step.power.Pf_power.Account.switching);
        internal =
          sum (fun r -> r.Pf_cpu.Step.power.Pf_power.Account.internal);
        leakage = sum (fun r -> r.Pf_cpu.Step.power.Pf_power.Account.leakage);
        total = sum (fun r -> r.Pf_cpu.Step.power.Pf_power.Account.total);
        peak_power =
          sum (fun r -> r.Pf_cpu.Step.power.Pf_power.Account.peak_power);
      };
    coherence = Option.map Coherence.stats t.coherence;
  }

(* Core builders over the existing engine front ends. *)

let arm_core ?cache_cfg ?pipeline_cfg ?power_params ?max_steps ?deadline
    ?trace image =
  Pf_cpu.Step.of_image ?cache_cfg ?pipeline_cfg ?power_params ?max_steps
    ?deadline ?trace image

let fits_core ?cache_cfg ?pipeline_cfg ?power_params ?max_steps ?deadline
    ?trace image =
  (* per-core application-specific synthesis: profile the ARM image,
     synthesize its FITS spec, translate, predecode — the sequential
     FITS flow, one decoder configuration per core *)
  let dyn_counts, _ = Pf_fits.Synthesis.dyn_counts_of_run image in
  let syn = Pf_fits.Synthesis.synthesize image ~dyn_counts in
  let tr = Pf_fits.Translate.translate syn.Pf_fits.Synthesis.spec image in
  let uops = Pf_fits.Run.predecode tr in
  let insns = tr.Pf_fits.Translate.insns in
  let first = Array.map (fun fi -> fi.Pf_fits.Translate.first) insns in
  let single =
    Array.map (fun fi -> fi.Pf_fits.Translate.group_len = 1) insns
  in
  Pf_cpu.Step.create ?cache_cfg ?pipeline_cfg ?power_params ?max_steps
    ?deadline ?trace ~src:(first, single) ~isize:2
    ~code_base:tr.Pf_fits.Translate.code_base ~words:tr.Pf_fits.Translate.words
    ~entry:tr.Pf_fits.Translate.entry ~uops
    (Pf_arm.Exec.create tr.Pf_fits.Translate.image)
