(** The shared-memory multicore machine.

    N per-core steppers ({!Pf_cpu.Step}) advance one instruction at a
    time under a deterministic {!Sched}; an optional {!Coherence} layer
    keeps the shared data window consistent.  The machine is strictly
    single-domain: a run — including every per-core trace recording — is
    a pure function of its construction arguments and the scheduler
    seed, independent of any surrounding [--jobs] fan-out.

    Each core carries its own PowerFITS I-cache power account; the
    machine report sums energy components across cores (energies are
    additive), takes the max of per-core cycles, and reports the summed
    per-core peaks as an upper bound on machine peak power. *)

type shared = {
  base : int;      (** first shared byte address *)
  limit : int;     (** one past the last shared byte *)
  sync_addr : int; (** fence-marker word ([-1] for none) *)
}

type t

val create : ?shared:shared -> sched:Sched.t -> (string * Pf_cpu.Step.t) array -> t
(** One [(label, core)] per core, in core-index order; the scheduler
    must be for exactly this many cores.  With [shared], a write-through
    snooping coherence layer is built over the cores' memories and
    D-caches.  Raises [Invalid_config] on zero cores or a core-count
    mismatch. *)

val ncores : t -> int
val core : t -> int -> Pf_cpu.Step.t
val label : t -> int -> string

val step : t -> bool
(** Advance one scheduler slice: pick a runnable core, execute one
    instruction, propagate its store (if any and shared).  [false] when
    no core is runnable. *)

val run : t -> unit
(** {!step} until quiescent.  Per-core watchdogs/deadlines bound it. *)

val all_halted : t -> bool

val slices : t -> int
(** Scheduler slices executed so far. *)

type power = {
  switching : float;
  internal : float;
  leakage : float;
  total : float;
  peak_power : float;  (** sum of per-core peaks: an upper bound *)
}

type report = {
  cores : (string * Pf_cpu.Step.result) array;
  instructions : int;      (** summed retirements (per-core isize) *)
  src_instructions : int;  (** summed ARM-source retirements *)
  cycles : int;            (** max across cores *)
  slices : int;
  power : power;
  coherence : Coherence.stats option;
}

val report : t -> report

(** {1 Core builders} *)

val arm_core :
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pf_cpu.Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?trace:Pf_cpu.Trace.t ->
  Pf_arm.Image.t ->
  Pf_cpu.Step.t
(** An ARM core over a compiled image ({!Pf_cpu.Step.of_image}). *)

val fits_core :
  ?cache_cfg:Pf_cache.Icache.config ->
  ?pipeline_cfg:Pf_cpu.Pipeline.config ->
  ?power_params:Pf_power.Account.Params.t ->
  ?max_steps:int ->
  ?deadline:Pf_util.Deadline.t ->
  ?trace:Pf_cpu.Trace.t ->
  Pf_arm.Image.t ->
  Pf_cpu.Step.t
(** A FITS core: profile the ARM image, synthesize its application-
    specific spec, translate and predecode — one decoder configuration
    per core, the paper's per-application flow.  The profiling run
    executes the image once sequentially (single-core), so building a
    FITS core is only meaningful for kernels whose sequential execution
    terminates. *)
