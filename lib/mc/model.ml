(* Operational weak-memory model: exhaustive outcome enumeration for
   litmus tests.

   A test is a handful of threads, each a short straight-line program of
   shared-variable writes, reads and fences.  The machine state is the
   global memory plus one bounded FIFO store buffer per thread:

   - [W (x, v)]: with buffer capacity 0 the write goes straight to
     global memory (sequential consistency); otherwise it enters the
     thread's buffer (enabled only when the buffer has room).
   - [R x]: reads the newest buffered value of [x] from the thread's OWN
     buffer (store forwarding), falling back to global memory — other
     threads' buffers are invisible.
   - [F]: enabled only when the thread's own buffer is empty (a fence
     orders by forcing a drain first).
   - drain: any thread's oldest buffered write may retire to global
     memory at any point (this is the reordering source).

   Capacity 0 is SC — exactly what the write-through [Coherence] layer
   implements; a large capacity is TSO (store-load reordering, own-store
   forwarding, no IRIW-style independent-read divergence beyond what
   FIFO buffers allow).  The litmus harness checks machine-observed
   outcomes against [allowed ~sb_capacity:0]; the TSO sets are exercised
   by the unit tests so the next PR's store-buffer layer lands against
   an already-tested reference.

   Enumeration is a DFS over the (tiny) state space with memoization on
   the full state — including the read history, since two states that
   differ only in past reads yield different outcomes. *)

type op =
  | W of string * int
  | R of string
  | F

type test = {
  name : string;
  threads : op list array;
  init : (string * int) list;
}

type outcome = {
  reads : int list array;
  finals : (string * int) list;
}

let outcome_to_string o =
  let b = Buffer.create 64 in
  Array.iteri
    (fun i rs ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ':';
      Buffer.add_string b (String.concat "," (List.map string_of_int rs)))
    o.reads;
  Buffer.add_string b " |";
  List.iter
    (fun (x, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" x v))
    o.finals;
  Buffer.contents b

let vars_of test =
  let m = ref [] in
  let add x = if not (List.mem x !m) then m := x :: !m in
  List.iter (fun (x, _) -> add x) test.init;
  Array.iter
    (List.iter (function W (x, _) -> add x | R x -> add x | F -> ()))
    test.threads;
  List.sort compare !m

let allowed ~sb_capacity test =
  let nt = Array.length test.threads in
  let progs = Array.map Array.of_list test.threads in
  let vars = vars_of test in
  let init_mem =
    List.map
      (fun x ->
        (x, match List.assoc_opt x test.init with Some v -> v | None -> 0))
      vars
  in
  let seen = Hashtbl.create 997 in
  let outs : (string, outcome) Hashtbl.t = Hashtbl.create 97 in
  let key idx bufs mem reads =
    let b = Buffer.create 96 in
    Array.iter (fun i -> Buffer.add_string b (string_of_int i);
                 Buffer.add_char b ';') idx;
    Array.iter
      (fun bl ->
        List.iter
          (fun (x, v) ->
            Buffer.add_string b x;
            Buffer.add_char b '=';
            Buffer.add_string b (string_of_int v);
            Buffer.add_char b ',')
          bl;
        Buffer.add_char b ';')
      bufs;
    List.iter
      (fun (_, v) ->
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b ',')
      mem;
    Buffer.add_char b ';';
    Array.iter
      (fun rs ->
        List.iter
          (fun v ->
            Buffer.add_string b (string_of_int v);
            Buffer.add_char b ',')
          rs;
        Buffer.add_char b ';')
      reads;
    Buffer.contents b
  in
  let write mem x v =
    List.map (fun (y, w) -> if String.equal y x then (y, v) else (y, w)) mem
  in
  let rec fwd x = function
    | [] -> None
    | (y, v) :: rest -> (
        (* newest-first: a later buffer entry shadows an earlier one, so
           keep scanning and prefer the deepest match *)
        match fwd x rest with
        | Some _ as r -> r
        | None -> if String.equal y x then Some v else None)
  in
  let with_elt a i v =
    let a' = Array.copy a in
    a'.(i) <- v;
    a'
  in
  let rec go idx bufs mem reads =
    let k = key idx bufs mem reads in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      let all_done = ref true in
      for ti = 0 to nt - 1 do
        let p = progs.(ti) in
        if idx.(ti) < Array.length p then begin
          all_done := false;
          match p.(idx.(ti)) with
          | W (x, v) ->
              if sb_capacity = 0 then
                go (with_elt idx ti (idx.(ti) + 1)) bufs (write mem x v) reads
              else if List.length bufs.(ti) < sb_capacity then
                go
                  (with_elt idx ti (idx.(ti) + 1))
                  (with_elt bufs ti (bufs.(ti) @ [ (x, v) ]))
                  mem reads
              (* full buffer: blocked until a drain transition frees room *)
          | R x ->
              let v =
                match fwd x bufs.(ti) with
                | Some v -> v
                | None -> List.assoc x mem
              in
              go
                (with_elt idx ti (idx.(ti) + 1))
                bufs mem
                (with_elt reads ti (reads.(ti) @ [ v ]))
          | F -> if bufs.(ti) = [] then
                go (with_elt idx ti (idx.(ti) + 1)) bufs mem reads
        end;
        match bufs.(ti) with
        | (x, v) :: rest ->
            all_done := false;
            go idx (with_elt bufs ti rest) (write mem x v) reads
        | [] -> ()
      done;
      if !all_done then begin
        let o = { reads = Array.map (fun r -> r) reads; finals = mem } in
        let s = outcome_to_string o in
        if not (Hashtbl.mem outs s) then Hashtbl.add outs s o
      end
    end
  in
  go (Array.make nt 0)
    (Array.make nt [])
    init_mem
    (Array.make nt []);
  Hashtbl.fold (fun s o acc -> (s, o) :: acc) outs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let allowed_strings ~sb_capacity test =
  List.map fst (allowed ~sb_capacity test)

let vars = vars_of
