(** Operational weak-memory model: exhaustive outcome enumeration for
    litmus tests.

    State = global shared memory + one bounded FIFO store buffer per
    thread.  [sb_capacity = 0] is sequential consistency (writes hit
    global memory atomically — exactly what the write-through
    {!Coherence} layer implements); a large capacity is TSO: store-load
    reordering via buffered own writes, store forwarding from the
    thread's own buffer, fences drain.  The litmus harness checks every
    machine-observed outcome against the SC set; the TSO sets back the
    unit tests so a future store-buffer layer lands against an
    already-tested reference. *)

type op =
  | W of string * int  (** store a constant to a shared variable *)
  | R of string        (** read a shared variable (value is recorded) *)
  | F                  (** fence: drains the thread's own store buffer *)

type test = {
  name : string;
  threads : op list array;
  init : (string * int) list;  (** unlisted variables start at 0 *)
}

type outcome = {
  reads : int list array;      (** per thread, in program order *)
  finals : (string * int) list;(** final memory, sorted by variable *)
}

val outcome_to_string : outcome -> string
(** Canonical form, e.g. ["0:1,0 1: | x=1 y=1"] — thread read lists,
    then final memory.  The litmus harness prints machine observations
    through this same function, so set membership is string equality. *)

val allowed : sb_capacity:int -> test -> (string * outcome) list
(** All reachable outcomes, keyed by {!outcome_to_string}, sorted and
    deduplicated.  Enumeration is a memoized DFS; litmus-sized tests
    (2-4 threads, 2-3 ops each) are a few thousand states. *)

val allowed_strings : sb_capacity:int -> test -> string list

val vars : test -> string list
(** Every shared variable the test mentions, sorted — the globals list
    the litmus harness declares (identically) on every core. *)
