(* Deterministic core interleaving.

   The multicore machine is a single-domain simulator: exactly one core
   advances per slice, chosen here.  Both policies are pure functions of
   (seed, query history), so a machine run — including every per-core
   trace recording — is bit-identical for a given seed no matter how many
   worker domains a surrounding sweep uses ([--jobs] parallelizes across
   seeds, never inside a machine). *)

type policy = Round_robin | Seeded_random

let policy_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "random" | "seeded-random" -> Some Seeded_random
  | _ -> None

let policy_to_string = function
  | Round_robin -> "rr"
  | Seeded_random -> "random"

type t = {
  policy : policy;
  ncores : int;
  rng : Pf_util.Rng.t;
  mutable cursor : int;
}

let where = "mc.sched"

let create ?(policy = Round_robin) ~ncores seed =
  if ncores < 1 then
    Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config ~where
      "machine needs at least one core (got %d)" ncores;
  { policy; ncores; rng = Pf_util.Rng.create seed; cursor = 0 }

let ncores t = t.ncores

let next t ~runnable =
  match t.policy with
  | Round_robin ->
      (* scan from the cursor so halted cores are skipped fairly *)
      let rec scan k =
        if k = t.ncores then None
        else
          let c = (t.cursor + k) mod t.ncores in
          if runnable c then begin
            t.cursor <- (c + 1) mod t.ncores;
            Some c
          end
          else scan (k + 1)
      in
      scan 0
  | Seeded_random ->
      let n = ref 0 in
      for c = 0 to t.ncores - 1 do
        if runnable c then incr n
      done;
      if !n = 0 then None
      else begin
        (* pick the k-th runnable core: one rng draw per slice, so the
           draw sequence depends only on how many slices ran, keeping
           replays aligned even as cores halt *)
        let k = Pf_util.Rng.int t.rng !n in
        let c = ref 0 and seen = ref 0 and res = ref (-1) in
        while !res < 0 do
          if runnable !c then
            if !seen = k then res := !c else incr seen;
          incr c
        done;
        Some !res
      end
