(** Deterministic core-interleaving scheduler.

    One core advances per machine slice; this module picks which.  Both
    policies are pure functions of the seed and the query history, so a
    machine run is bit-identical for a given seed and independent of any
    surrounding [--jobs] fan-out (which parallelizes across seeds, never
    inside a machine). *)

type policy =
  | Round_robin   (** cyclic scan, skipping non-runnable cores *)
  | Seeded_random (** uniform over runnable cores, one {!Pf_util.Rng} draw
                      per slice *)

val policy_of_string : string -> policy option
(** ["rr"]/["round-robin"] and ["random"]/["seeded-random"]. *)

val policy_to_string : policy -> string

type t

val create : ?policy:policy -> ncores:int -> int -> t
(** [create ~ncores seed].  Raises [Invalid_config] when [ncores < 1].
    [policy] defaults to {!Round_robin} (the seed is then unused but
    still fixed, so switching policies never perturbs anything else). *)

val ncores : t -> int

val next : t -> runnable:(int -> bool) -> int option
(** The core to advance next, or [None] when no core is runnable (the
    machine has quiesced).  [runnable] is queried with core indices in
    [0, ncores). *)
