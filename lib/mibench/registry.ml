type benchmark = {
  name : string;
  result_name : string;
  category : string;
  program : scale:int -> Pf_kir.Ast.program;
  power_study : bool;
  unroll : int;
}

let bench ?result_name ?(power_study = true) ?(unroll = 1) name category
    program =
  {
    name;
    result_name = Option.value result_name ~default:name;
    category;
    program;
    power_study;
    unroll;
  }

let all =
  [
    (* automotive *)
    bench ~power_study:false ~unroll:4 Basicmath.name "automotive" (fun ~scale ->
        Basicmath.program ~scale);
    bench ~unroll:2 Bitcount.name "automotive" (fun ~scale -> Bitcount.program ~scale);
    bench ~unroll:2 Qsort_bench.name "automotive" (fun ~scale ->
        Qsort_bench.program ~scale);
    bench ~unroll:6 Susan.name "automotive" (fun ~scale -> Susan.program ~scale);
    (* consumer *)
    bench ~unroll:16 Jpeg.name "consumer" (fun ~scale -> Jpeg.program ~scale);
    bench ~unroll:12 Lame.name "consumer" (fun ~scale -> Lame.program ~scale);
    (* network *)
    bench ~unroll:4 Dijkstra.name "network" (fun ~scale -> Dijkstra.program ~scale);
    bench ~unroll:2 Patricia.name "network" (fun ~scale -> Patricia.program ~scale);
    (* office *)
    bench ~unroll:2 Stringsearch.name "office" (fun ~scale ->
        Stringsearch.program ~scale);
    bench ~unroll:3 Ispell.name "office" (fun ~scale -> Ispell.program ~scale);
    (* security *)
    bench ~unroll:4 Blowfish.name_encode "security" (fun ~scale ->
        Blowfish.program_encode ~scale);
    bench ~unroll:4 Blowfish.name_decode "security" (fun ~scale ->
        Blowfish.program_decode ~scale);
    bench ~unroll:8 Rijndael.name_encode "security" (fun ~scale ->
        Rijndael.program_encode ~scale);
    bench ~unroll:8 Rijndael.name_decode "security" (fun ~scale ->
        Rijndael.program_decode ~scale);
    bench ~unroll:8 Sha1.name "security" (fun ~scale -> Sha1.program ~scale);
    (* telecomm *)
    bench ~unroll:2 Adpcm.name_encode "telecomm" (fun ~scale ->
        Adpcm.program_encode ~scale);
    bench ~unroll:2 Adpcm.name_decode "telecomm" (fun ~scale ->
        Adpcm.program_decode ~scale);
    bench ~unroll:1 Crc32.name "telecomm" (fun ~scale -> Crc32.program ~scale);
    bench ~unroll:4 Fft.name "telecomm" (fun ~scale -> Fft.program ~scale);
    bench ~power_study:false ~unroll:12 Gsm.name_encode "telecomm" (fun ~scale ->
        Gsm.program_encode ~scale);
    (* the paper's power figures report gsm.decode as plain "gsm" *)
    bench ~result_name:"gsm" ~unroll:12 Gsm.name_decode "telecomm"
      (fun ~scale -> Gsm.program_decode ~scale);
  ]

(* The registry is a namespace: benchmark names and result-name aliases
   must resolve unambiguously, or sweeps and the CLI would silently pick
   whichever entry happened to be listed first.  Checked once at module
   init so a bad edit to [all] fails every entry point immediately. *)
let () =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let claim kind n =
    (match Hashtbl.find_opt seen n with
    | Some prior ->
        Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
          ~where:"mibench.registry"
          "duplicate benchmark name %S (registered as %s, again as %s)" n
          prior kind
    | None -> ());
    Hashtbl.add seen n kind
  in
  List.iter
    (fun b ->
      claim "a benchmark name" b.name;
      if b.result_name <> b.name then
        claim "a result-name alias" b.result_name)
    all

let power_suite =
  List.filter_map
    (fun b ->
      if b.power_study then Some { b with name = b.result_name } else None)
    all

let names = List.map (fun b -> b.name) all

let find_opt name =
  List.find_opt (fun b -> b.name = name || b.result_name = name) all

let find_exn name =
  match find_opt name with
  | Some b -> b
  | None ->
      Pf_util.Sim_error.raisef Pf_util.Sim_error.Invalid_config
        ~where:"mibench.registry" "unknown benchmark %S; valid names: %s"
        name (String.concat ", " names)

let find name =
  match find_opt name with Some b -> b | None -> raise Not_found
