(** The benchmark suite: 21 MiBench-workalike programs (paper §5).

    Categories follow MiBench: automotive, consumer, network, office,
    security, telecomm.  The power study uses 19 of them — [basicmath]
    and [gsm.encode] are dropped and [gsm.decode] is renamed to [gsm],
    exactly as the paper describes. *)

type benchmark = {
  name : string;
  result_name : string;
      (** name under which results are reported in the power figures;
          equal to [name] for every benchmark except [gsm.decode], which
          the paper reports as plain ["gsm"] *)
  category : string;
  program : scale:int -> Pf_kir.Ast.program;
  power_study : bool;   (** member of the 19-benchmark power suite *)
  unroll : int;
      (** loop-unroll factor used when compiling this benchmark — larger
          for the codec-class programs whose real binaries carry big
          unrolled loops (jpeg, lame, gsm, sha, rijndael) *)
}

val all : benchmark list
(** The full 21-benchmark suite, grouped by category.  Benchmark names and
    result-name aliases are asserted unique at module init (a duplicate
    raises an [Invalid_config] {!Pf_util.Sim_error.Error}). *)

val power_suite : benchmark list
(** The 19 benchmarks of the power figures; [gsm.decode] appears under the
    name ["gsm"]. *)

val names : string list
(** Every benchmark [name], in suite order. *)

val find_opt : string -> benchmark option
(** Look up by [name] or [result_name] ([find_opt "gsm"] resolves via the
    alias). *)

val find_exn : string -> benchmark
(** Like {!find_opt} but raises a structured [Invalid_config]
    {!Pf_util.Sim_error.Error} for unknown names, whose detail lists every
    valid name — the lookup the CLI and the multi-program harness use. *)

val find : string -> benchmark
(** @raise Not_found for unknown names (legacy interface; prefer
    {!find_exn}). *)
