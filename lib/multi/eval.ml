module E = Pf_harness.Experiment
module F = Pf_harness.Figures

type isa = Per_app | Shared | Loo

let isa_label = function
  | Per_app -> "per-app"
  | Shared -> "shared"
  | Loo -> "LOO"

type cell = {
  cell_isa : isa;
  fits16 : E.per_config;
  fits8 : E.per_config;
  static_map_pct : float;
  dyn_map_pct : float;
  code_fits : int;
  dict_entries : int;
  spilled_imms : int;
  output_ok : bool;
}

(* One (program, spec) evaluation: translate under the spec, execute the
   FITS16 configuration recording a trace, replay it through the 8 KB
   cache, and cross-check both outputs against the profiling reference.
   [spilled_imms] counts the dictionary entries translation had to append
   beyond the spec's own dictionary — the per-program reloadable tail. *)
let eval_cell ~isa spec (p : Suite.prepared) =
  let tr = Pf_fits.Translate.translate spec p.Suite.image in
  let trace = Pf_cpu.Trace.create ~isize:2 () in
  let r16 = Pf_fits.Run.run ~cache_cfg:E.cache_16k ~trace tr in
  let r8 = Pf_fits.Run.replay ~cache_cfg:E.cache_8k ~like:r16 tr trace in
  let dict_entries =
    Array.length tr.Pf_fits.Translate.spec.Pf_fits.Spec.dict
  in
  {
    cell_isa = isa;
    fits16 = E.of_fits r16;
    fits8 = E.of_fits r8;
    static_map_pct = Pf_fits.Translate.static_mapping_rate tr;
    dyn_map_pct = r16.Pf_fits.Run.dyn_one_to_one_pct;
    code_fits =
      tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits;
    dict_entries;
    spilled_imms =
      max 0 (dict_entries - Array.length spec.Pf_fits.Spec.dict);
    output_ok =
      r16.Pf_fits.Run.output = p.Suite.reference_output
      && r8.Pf_fits.Run.output = p.Suite.reference_output;
  }

type row = {
  r_bench : string;
  r_category : string;
  r_code_arm : int;
  r_arm16 : E.per_config;
  r_per_app : cell;
  r_shared : cell;
  r_loo : cell option;
}

type row_outcome = {
  ro_bench : string;
  ro_outcome : (row, Pf_util.Sim_error.t) result;
}

type campaign = {
  c_shared : Suite.shared;
  c_rows : row_outcome list;
  c_completed : int;
  c_total : int;
  c_jobs : int;
  c_loo : bool;
}

let loo_spec ~weighting ~dict_budget ps held_out =
  let rest = List.filter (fun q -> Suite.name q <> held_out) ps in
  let syn =
    Pf_fits.Synthesis.synthesize_suite ~dict_budget
      (Suite.programs ~weighting rest)
  in
  syn.Pf_fits.Synthesis.spec

let run ?(weighting = Weighting.Dyn_count)
    ?(dict_budget = Suite.default_dict_budget) ?(loo = false) ?scale ?jobs
    benches =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Pf_harness.Pool.default_jobs ()
  in
  let ps = Suite.prepare ?scale ~jobs benches in
  let shared = Suite.synthesize_shared ~weighting ~dict_budget ps in
  (* Leave-one-out specs are synthesized in parallel: each is a fresh
     suite synthesis over the other programs, with the same weighting and
     dictionary budget as the full-suite spec.  Weighting validation is
     deliberately skipped here — a Custom scheme still (correctly) names
     the held-out program. *)
  let loo_specs =
    if not loo then List.map (fun _ -> None) ps
    else
      Pf_harness.Pool.map ~jobs
        (fun p ->
          Some (loo_spec ~weighting ~dict_budget ps (Suite.name p)))
        ps
  in
  let rows =
    Pf_harness.Pool.map ~jobs
      (fun (p, lspec) ->
        let bench = Suite.name p in
        let outcome =
          Pf_util.Sim_error.protect ~where:("multi." ^ bench) (fun () ->
              let syn =
                Pf_fits.Synthesis.synthesize p.Suite.image
                  ~dyn_counts:p.Suite.dyn_counts
              in
              let arm16_r =
                Pf_cpu.Arm_run.run ~cache_cfg:E.cache_16k p.Suite.image
              in
              let per_app =
                eval_cell ~isa:Per_app syn.Pf_fits.Synthesis.spec p
              in
              let shared_c = eval_cell ~isa:Shared shared.Suite.spec p in
              let loo_c = Option.map (fun s -> eval_cell ~isa:Loo s p) lspec in
              {
                r_bench = bench;
                r_category = p.Suite.bench.Pf_mibench.Registry.category;
                r_code_arm = Pf_arm.Image.code_size_bytes p.Suite.image;
                r_arm16 = E.of_arm arm16_r;
                r_per_app = per_app;
                r_shared = shared_c;
                r_loo = loo_c;
              })
        in
        { ro_bench = bench; ro_outcome = outcome })
      (List.combine ps loo_specs)
  in
  let completed =
    List.fold_left
      (fun c r -> if Result.is_ok r.ro_outcome then c + 1 else c)
      0 rows
  in
  {
    c_shared = shared;
    c_rows = rows;
    c_completed = completed;
    c_total = List.length rows;
    c_jobs = jobs;
    c_loo = loo;
  }

let ok_rows c =
  List.filter_map
    (fun r -> match r.ro_outcome with Ok row -> Some row | Error _ -> None)
    c.c_rows

let failed c =
  List.filter_map
    (fun r ->
      match r.ro_outcome with
      | Ok _ -> None
      | Error e -> Some (r.ro_bench, Pf_util.Sim_error.to_string e))
    c.c_rows

let divergent c =
  List.filter_map
    (fun row ->
      let cells =
        row.r_per_app :: row.r_shared
        :: (match row.r_loo with Some l -> [ l ] | None -> [])
      in
      if List.for_all (fun cl -> cl.output_ok) cells then None
      else Some row.r_bench)
    (ok_rows c)

(* ---- reporting --------------------------------------------------------- *)

let avg_power (p : E.per_config) =
  p.E.power.Pf_power.Account.total /. float_of_int p.E.cycles

(* FITS8 total I-cache power saving vs the program's own ARM16 baseline —
   the figure-11 metric, which is where a shared ISA's degradation shows. *)
let power_saving_pct row cl =
  Pf_util.Stats.saving ~baseline:(avg_power row.r_arm16) (avg_power cl.fits8)

let table c =
  let cell_rows row =
    let one cl =
      [
        row.r_bench;
        isa_label cl.cell_isa;
        string_of_int cl.code_fits;
        Pf_util.Table.pct cl.static_map_pct;
        Pf_util.Table.pct cl.dyn_map_pct;
        Printf.sprintf "%.0f" cl.fits8.E.miss_rate_pm;
        Pf_util.Table.f2 cl.fits8.E.ipc;
        Pf_util.Table.pct (power_saving_pct row cl);
        (if cl.output_ok then "ok" else "DIVERGED");
      ]
    in
    one row.r_per_app :: one row.r_shared
    :: (match row.r_loo with Some l -> [ one l ] | None -> [])
  in
  Pf_util.Table.render
    ~header:
      [
        "benchmark"; "ISA"; "code B"; "static 1-1 %"; "dyn 1-1 %";
        "miss/M (8K)"; "IPC (8K)"; "pwr sav %"; "output";
      ]
    (List.concat_map cell_rows (ok_rows c))

let mean_saving rows select =
  Pf_util.Stats.mean
    (List.filter_map
       (fun row ->
         Option.map (fun cl -> power_saving_pct row cl) (select row))
       rows)

let summary c =
  let rows = ok_rows c in
  let b = Buffer.create 256 in
  if rows = [] then Buffer.add_string b "no completed rows"
  else begin
    let per_app = mean_saving rows (fun r -> Some r.r_per_app) in
    let shared = mean_saving rows (fun r -> Some r.r_shared) in
    Printf.bprintf b
      "mean FITS8 I-cache power saving vs ARM16: per-app %.1f %%, shared \
       %.1f %% (%.1f pp cost of generality)"
      per_app shared (per_app -. shared);
    if c.c_loo then begin
      let loo = mean_saving rows (fun r -> r.r_loo) in
      Printf.bprintf b
        ", leave-one-out %.1f %% (%.1f pp vs per-app)" loo (per_app -. loo)
    end
  end;
  Buffer.contents b

let banner c =
  let b = Buffer.create 256 in
  Printf.bprintf b "%d of %d programs evaluated (jobs=%d, %s weighting%s)"
    c.c_completed c.c_total c.c_jobs
    (Weighting.to_string c.c_shared.Suite.weighting)
    (if c.c_loo then ", with leave-one-out" else "");
  List.iter
    (fun (name, err) -> Printf.bprintf b "\n  %s: FAILED %s" name err)
    (failed c);
  List.iter
    (fun name -> Printf.bprintf b "\n  %s: OUTPUT DIVERGED" name)
    (divergent c);
  Buffer.contents b

let figures c =
  let rows = ok_rows c in
  let series =
    "per-app" :: "shared"
    :: (if c.c_loo then [ "LOO" ] else [])
  in
  let per_row f row =
    let vals =
      f row row.r_per_app :: f row row.r_shared
      :: (match row.r_loo with Some l -> [ f row l ] | None -> [])
    in
    (row.r_bench, vals)
  in
  let fig ~id ~title ~unit_ f =
    F.make ~id ~title ~unit_ ~series (List.map (per_row f) rows)
  in
  [
    fig ~id:"multi-code" ~title:"Code size footprint (normalized to ARM)"
      ~unit_:"%" (fun row cl ->
        100.0 *. float_of_int cl.code_fits /. float_of_int row.r_code_arm);
    fig ~id:"multi-power" ~title:"Total I-cache power saving (FITS8 vs ARM16)"
      ~unit_:"%" power_saving_pct;
    fig ~id:"multi-miss" ~title:"I-cache miss rate (FITS8)"
      ~unit_:"misses/M accesses" (fun _ cl -> cl.fits8.E.miss_rate_pm);
    fig ~id:"multi-ipc" ~title:"Instructions per cycle (FITS8)" ~unit_:"IPC"
      (fun _ cl -> cl.fits8.E.ipc);
  ]
