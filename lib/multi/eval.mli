(** Generality evaluation: every program simulated under per-app, shared,
    and leave-one-out ISAs.

    The campaign answers the deployment question the per-application flow
    cannot: how much of the paper's power saving survives when one
    synthesized ISA must serve a whole suite ({e shared}), and how well
    such an ISA generalizes to a program that was excluded from its
    synthesis ({e leave-one-out}).  Every cell reuses the trace-once/
    replay-many scheme (one FITS16 execution, one 8 KB replay) and
    cross-checks program output against the profiling reference. *)

type isa = Per_app | Shared | Loo

val isa_label : isa -> string

(** One (program, spec) evaluation. *)
type cell = {
  cell_isa : isa;
  fits16 : Pf_harness.Experiment.per_config;
  fits8 : Pf_harness.Experiment.per_config;
  static_map_pct : float;
  dyn_map_pct : float;
  code_fits : int;
  dict_entries : int;   (** after per-program dictionary extension *)
  spilled_imms : int;   (** entries appended beyond the spec's dictionary *)
  output_ok : bool;     (** both runs matched the profiling reference *)
}

val eval_cell : isa:isa -> Pf_fits.Spec.t -> Suite.prepared -> cell
(** Translate the program under [spec], execute FITS16 recording a trace,
    replay FITS8, cross-check outputs.  Deterministic: equal inputs give
    a bit-identical cell (the differential test relies on this). *)

type row = {
  r_bench : string;
  r_category : string;
  r_code_arm : int;
  r_arm16 : Pf_harness.Experiment.per_config;  (** power baseline *)
  r_per_app : cell;
  r_shared : cell;
  r_loo : cell option;   (** present when the campaign ran leave-one-out *)
}

type row_outcome = {
  ro_bench : string;
  ro_outcome : (row, Pf_util.Sim_error.t) result;
}

type campaign = {
  c_shared : Suite.shared;
  c_rows : row_outcome list;   (** one per program, in input order *)
  c_completed : int;
  c_total : int;
  c_jobs : int;
  c_loo : bool;
}

val loo_spec :
  weighting:Weighting.t -> dict_budget:int -> Suite.prepared list ->
  string -> Pf_fits.Spec.t
(** The ISA synthesized from every prepared program {e except} the named
    one (same weighting and dictionary budget as the full-suite spec). *)

val run :
  ?weighting:Weighting.t ->
  ?dict_budget:int ->
  ?loo:bool ->
  ?scale:int ->
  ?jobs:int ->
  Pf_mibench.Registry.benchmark list ->
  campaign
(** Full campaign: prepare each benchmark once, synthesize the shared
    spec (plus one leave-one-out spec per program when [loo]), then
    evaluate every program under its per-app, the shared, and (when
    [loo]) its leave-one-out ISA.  Each program's evaluation is isolated
    behind {!Pf_util.Sim_error.protect}.  All three stages run on an
    order-preserving domain pool: results are bit-identical for every
    [jobs] value.  Defaults: [Dyn_count] weighting,
    {!Suite.default_dict_budget}, no LOO, scale 1. *)

val ok_rows : campaign -> row list
val failed : campaign -> (string * string) list
(** Failed programs as [(name, error)] pairs. *)

val divergent : campaign -> string list
(** Programs with at least one cell whose output mismatched the
    reference. *)

val table : campaign -> string
(** Per-program, per-ISA table: code bytes, static/dynamic 1-to-1 rates,
    FITS8 miss rate and IPC, FITS8-vs-ARM16 total power saving, output
    status. *)

val summary : campaign -> string
(** Mean power-saving degradation: per-app vs shared (and LOO), in
    percentage points — the cost of generality. *)

val banner : campaign -> string

val figures : campaign -> Pf_harness.Figures.figure list
(** Code size, power saving, miss rate and IPC, one series per ISA. *)
