module R = Pf_mibench.Registry
module P = Pf_fits.Profile

type prepared = {
  bench : R.benchmark;
  image : Pf_arm.Image.t;
  dyn_counts : int array;
  profile : P.t;
  reference_output : string;
}

let name p = p.bench.R.name

let prepare_one ?(scale = 1) (b : R.benchmark) =
  let prog = b.R.program ~scale in
  let image = Pf_armgen.Compile.program ~unroll:b.R.unroll prog in
  let dyn_counts, reference_output =
    Pf_fits.Synthesis.dyn_counts_of_run image
  in
  let profile = P.of_image_counts image ~counts:dyn_counts in
  { bench = b; image; dyn_counts; profile; reference_output }

let prepare ?scale ?jobs benches =
  Pf_harness.Pool.map ?jobs (fun b -> prepare_one ?scale b) benches

let multiplier weighting p =
  Weighting.multiplier weighting ~name:(name p)
    ~dyn_insns:p.profile.P.dyn_insns

let programs ~weighting ps =
  List.map
    (fun p ->
      {
        Pf_fits.Synthesis.p_image = p.image;
        p_dyn_counts = p.dyn_counts;
        p_mult = multiplier weighting p;
      })
    ps

let merged_profile ?(weighting = Weighting.Dyn_count) ps =
  P.merge_all (List.map (fun p -> P.scale p.profile (multiplier weighting p)) ps)

(* ---- per-program coverage under a shared spec -------------------------- *)

type coverage = {
  cov_name : string;
  static_map_pct : float;
  dyn_map_pct : float;
  code_bytes_fits : int;
  code_saving_pct : float;
  dict_entries : int;
  spilled_imms : int;
}

(* Execution-count-weighted 1-to-1 rate, computed from the translation's
   group structure and the recorded per-word counts: every execution of a
   source instruction takes the same mapping, so this equals what a full
   simulation under the spec measures dynamically. *)
let dyn_map_pct_of (tr : Pf_fits.Translate.t) ~(image : Pf_arm.Image.t)
    ~dyn_counts =
  let base = image.Pf_arm.Image.code_base in
  let one = ref 0 and total = ref 0 in
  Array.iter
    (fun (fi : Pf_fits.Translate.finsn) ->
      if fi.Pf_fits.Translate.first then begin
        let idx = (fi.Pf_fits.Translate.src_pc - base) / 4 in
        let d =
          if idx >= 0 && idx < Array.length dyn_counts then dyn_counts.(idx)
          else 0
        in
        total := !total + d;
        if fi.Pf_fits.Translate.group_len = 1 then one := !one + d
      end)
    tr.Pf_fits.Translate.insns;
  if !total = 0 then 0.0
  else 100.0 *. float_of_int !one /. float_of_int !total

let coverage_of ~shared_dict_entries spec (p : prepared) =
  let tr = Pf_fits.Translate.translate spec p.image in
  let dict_entries =
    Array.length tr.Pf_fits.Translate.spec.Pf_fits.Spec.dict
  in
  {
    cov_name = name p;
    static_map_pct = Pf_fits.Translate.static_mapping_rate tr;
    dyn_map_pct = dyn_map_pct_of tr ~image:p.image ~dyn_counts:p.dyn_counts;
    code_bytes_fits =
      tr.Pf_fits.Translate.stats.Pf_fits.Translate.code_bytes_fits;
    code_saving_pct = Pf_fits.Translate.code_size_saving tr;
    dict_entries;
    spilled_imms = max 0 (dict_entries - shared_dict_entries);
  }

(* ---- shared-ISA synthesis ---------------------------------------------- *)

type shared = {
  spec : Pf_fits.Spec.t;
  synthesis : Pf_fits.Synthesis.result;
  weighting : Weighting.t;
  coverage : coverage list;
}

(* Leave a 64-entry reloadable tail for the values an individual program
   (including one outside the synthesis set) still needs at translation
   time — the §3.1 data-plane reload headroom. *)
let default_dict_budget = Pf_fits.Spec.dict_capacity - 64

let synthesize_shared ?(weighting = Weighting.Dyn_count)
    ?(dict_budget = default_dict_budget) ps =
  Weighting.validate weighting ~names:(List.map name ps);
  let syn =
    Pf_fits.Synthesis.synthesize_suite ~dict_budget (programs ~weighting ps)
  in
  let spec = syn.Pf_fits.Synthesis.spec in
  let shared_dict_entries = Array.length spec.Pf_fits.Spec.dict in
  {
    spec;
    synthesis = syn;
    weighting;
    coverage = List.map (coverage_of ~shared_dict_entries spec) ps;
  }

let coverage_table sh =
  let rows =
    List.map
      (fun c ->
        [
          c.cov_name;
          Pf_util.Table.pct c.static_map_pct;
          Pf_util.Table.pct c.dyn_map_pct;
          string_of_int c.code_bytes_fits;
          Pf_util.Table.pct c.code_saving_pct;
          string_of_int c.dict_entries;
          string_of_int c.spilled_imms;
        ])
      sh.coverage
  in
  Printf.sprintf
    "shared ISA (%s weighting): %d AIS opcodes, %d dictionary entries, %d \
     spilled at synthesis\n%s"
    (Weighting.to_string sh.weighting)
    (List.length sh.synthesis.Pf_fits.Synthesis.ais)
    (Array.length sh.spec.Pf_fits.Spec.dict)
    sh.synthesis.Pf_fits.Synthesis.dict_spilled
    (Pf_util.Table.render
       ~header:
         [
           "program"; "static 1-1 %"; "dyn 1-1 %"; "code B"; "code sav %";
           "dict"; "spilled";
         ]
       rows)
