(** Multi-program suites: prepared benchmarks, weighted profile merging,
    and shared-ISA synthesis.

    A {e prepared} benchmark has been compiled and executed once — its
    image, per-word dynamic counts, profile and reference output are all
    captured, so every downstream consumer (merging, synthesis, LOO
    evaluation) reuses the same measurement.  Preparation is the only
    stage that executes ARM code; everything after it is deterministic
    arithmetic on the captured counts. *)

type prepared = {
  bench : Pf_mibench.Registry.benchmark;
  image : Pf_arm.Image.t;
  dyn_counts : int array;   (** per-code-word execution counts *)
  profile : Pf_fits.Profile.t;
  reference_output : string;  (** output of the profiling ARM run *)
}

val name : prepared -> string

val prepare :
  ?scale:int -> ?jobs:int -> Pf_mibench.Registry.benchmark list ->
  prepared list
(** Compile and profile each benchmark once (in parallel over [jobs]
    domains; result order matches input order and is independent of
    [jobs]). *)

val multiplier : Weighting.t -> prepared -> int
(** The integer weight applied to this program's dynamic counts. *)

val programs : weighting:Weighting.t -> prepared list ->
  Pf_fits.Synthesis.program list
(** The weighted synthesis inputs for {!Pf_fits.Synthesis.synthesize_suite}. *)

val merged_profile : ?weighting:Weighting.t -> prepared list -> Pf_fits.Profile.t
(** The suite's merged profile: each program's profile scaled by its
    weight and folded with {!Pf_fits.Profile.merge_all}.  Defaults to
    [Dyn_count]. *)

(** Per-program coverage of a shared spec, measured by translating the
    program under it. *)
type coverage = {
  cov_name : string;
  static_map_pct : float;   (** ARM insns mapped 1-to-1, static *)
  dyn_map_pct : float;      (** same, weighted by execution counts *)
  code_bytes_fits : int;
  code_saving_pct : float;
  dict_entries : int;       (** dictionary after per-program extension *)
  spilled_imms : int;
      (** entries this program added beyond the shared dictionary — the
          reloadable per-program tail of §3.1 *)
}

type shared = {
  spec : Pf_fits.Spec.t;
  synthesis : Pf_fits.Synthesis.result;
  weighting : Weighting.t;
  coverage : coverage list;  (** one per input program, in input order *)
}

val default_dict_budget : int
(** Shared-dictionary budget used by {!synthesize_shared}:
    [Spec.dict_capacity - 64], leaving a 64-entry reloadable tail for
    values an individual program (including a held-out one) still needs
    at translation time. *)

val coverage_of : shared_dict_entries:int -> Pf_fits.Spec.t -> prepared -> coverage

val synthesize_shared :
  ?weighting:Weighting.t -> ?dict_budget:int -> prepared list -> shared
(** One ISA for the whole suite: weighted sites from every program feed a
    single {!Pf_fits.Synthesis.synthesize_suite} run, then every program
    is translated under the resulting spec to measure its coverage.
    Defaults: [Dyn_count] weighting, {!default_dict_budget}.
    @raise Pf_util.Sim_error.Error if the weighting does not validate
    against the suite's names. *)

val coverage_table : shared -> string
(** Human-readable per-program coverage table with a summary banner. *)
